//===- sim/ScalarInterp.h - Reference execution of the scalar loop -------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes the original (unvectorized) loop directly over a Memory image.
/// This is the semantic oracle: every simdized program must leave memory
/// bit-identical to what this interpreter produces (how Section 5.4's
/// "results were verified" is realized here).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SIM_SCALARINTERP_H
#define SIMDIZE_SIM_SCALARINTERP_H

namespace simdize {

namespace ir {
class Loop;
} // namespace ir

namespace sim {

class Memory;
class MemoryLayout;

/// Runs \p L sequentially (i = 0 .. ub-1, statements in order) over \p Mem.
/// Arithmetic wraps modulo 2^(8*D), matching the vector unit's lanes.
void runScalarLoop(const ir::Loop &L, const MemoryLayout &Layout, Memory &Mem);

} // namespace sim
} // namespace simdize

#endif // SIMDIZE_SIM_SCALARINTERP_H
