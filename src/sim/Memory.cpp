//===- sim/Memory.cpp -----------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "sim/Memory.h"

#include "ir/Loop.h"
#include "support/MathExtras.h"
#include "support/RNG.h"

#include <cassert>

using namespace simdize;
using namespace simdize::sim;

MemoryLayout::MemoryLayout(const ir::Loop &L, unsigned VectorLen)
    : VectorLen(VectorLen) {
  // Leave 4V of guard at the front, then place arrays in declaration order,
  // each at the smallest address >= the previous end + 4V that realizes the
  // declared alignment. 4V absorbs the worst-case overreach of epilogue
  // expression evaluation (up to three chunks past a stream's end) and of
  // prologue right-shift evaluation (one chunk before its start).
  int64_t Cursor = 4 * static_cast<int64_t>(VectorLen);
  for (const auto &A : L.getArrays()) {
    // Alignments are declared modulo the widest width the loop may be
    // compiled at; a layout for a narrower V realizes them modulo V (the
    // target's truncation rule — only the position within a register is
    // observable).
    int64_t Align = nonNegMod(A->getAlignment(), VectorLen);
    int64_t Base = alignTo(Cursor, VectorLen) + Align;
    if (Base < Cursor)
      Base += VectorLen;
    assert(nonNegMod(Base, VectorLen) == Align &&
           "layout failed to realize the declared alignment");
    BaseAddr[A.get()] = Base;
    Cursor = Base + A->getSizeInBytes() + 4 * static_cast<int64_t>(VectorLen);
  }
  TotalSize = alignTo(Cursor + 4 * static_cast<int64_t>(VectorLen), VectorLen);
}

int64_t MemoryLayout::baseOf(const ir::Array *A) const {
  auto It = BaseAddr.find(A);
  assert(It != BaseAddr.end() && "array not placed by this layout");
  return It->second;
}

bool MemoryLayout::covers(const ir::Loop &L) const {
  for (const auto &A : L.getArrays())
    if (!BaseAddr.count(A.get()))
      return false;
  return true;
}

int64_t Memory::readElem(int64_t Addr, unsigned ElemSize) const {
  assert(Addr >= 0 &&
         static_cast<uint64_t>(Addr) + ElemSize <= Bytes.size() &&
         "read out of bounds");
  uint64_t V = 0;
  for (unsigned K = 0; K < ElemSize; ++K)
    V |= static_cast<uint64_t>(Bytes[static_cast<size_t>(Addr) + K]) << (8 * K);
  // Sign-extend from ElemSize * 8 bits.
  unsigned Shift = 64 - 8 * ElemSize;
  return static_cast<int64_t>(V << Shift) >> Shift;
}

void Memory::writeElem(int64_t Addr, unsigned ElemSize, int64_t Value) {
  assert(Addr >= 0 &&
         static_cast<uint64_t>(Addr) + ElemSize <= Bytes.size() &&
         "write out of bounds");
  for (unsigned K = 0; K < ElemSize; ++K)
    Bytes[static_cast<size_t>(Addr) + K] =
        static_cast<uint8_t>(static_cast<uint64_t>(Value) >> (8 * K));
}

void Memory::fillPattern(uint64_t Seed) {
  RNG Rng(Seed);
  for (auto &B : Bytes)
    B = static_cast<uint8_t>(Rng.next());
}
