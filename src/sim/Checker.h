//===- sim/Checker.h - End-to-end correctness oracle ----------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a simdized program and the scalar reference over identical memory
/// images and demands a bit-identical result — including guard bytes
/// between arrays, so stray writes are caught. This is the machinery behind
/// the paper's coverage analysis ("the results were verified", Section 5.4)
/// and behind every correctness test in this repository.
///
/// The scalar side of the check — layout, patterned image, reference run —
/// depends only on (loop, seed, vector length), not on the program under
/// test. ReferenceImage captures it once; OracleCache shares it across the
/// ~24 configurations the fuzzer checks per seed, so the scalar interpreter
/// and the pattern fill run once per seed instead of once per config.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SIM_CHECKER_H
#define SIMDIZE_SIM_CHECKER_H

#include "sim/Machine.h"
#include "sim/Memory.h"

#include <memory>
#include <string>
#include <vector>

namespace simdize {

namespace ir {
class Loop;
} // namespace ir

namespace sim {

/// Outcome of one verification run.
struct CheckResult {
  bool Ok = false;
  std::string Message; ///< Failure description when !Ok.
  ExecStats Stats;     ///< Vector execution statistics (valid when Ok).
  /// True when the failure was the VVerifier rejecting the program rather
  /// than a memory mismatch; the fuzzer's failure-kind tagging keys on
  /// this instead of matching message strings.
  bool VerifierFailed = false;
};

/// Optional provenance attached to mismatch diagnostics so that bulk runs
/// (the fuzzer, the experiment suites) produce triageable reports without
/// a debugger: which scheme/policy produced the program being checked.
struct CheckContext {
  std::string Scheme; ///< e.g. "LAZY-sp" or "DOM opt=off".
};

/// Per-check switches.
struct CheckOptions {
  /// Maintain exact per-(array, chunk) load and store provenance in the
  /// returned ExecStats (what NeverLoadTwiceTest and the heatmap
  /// inspect). Costs a map insert per dynamic access; bulk throughput
  /// paths leave it off.
  bool TrackChunkLoads = false;
  /// Maintain per-VInst-PC execution counts (ExecStats::PCCounts) with
  /// setup/body/epilogue attribution. The reference engine maintains them
  /// regardless.
  bool TrackPCCounts = false;
  /// Execute on the byte-at-a-time reference interpreter instead of the
  /// decoded engine — for differential testing of the engines themselves.
  bool UseReferenceEngine = false;
};

/// The program-independent half of one verification: the memory layout,
/// the patterned initial image, and the scalar interpreter's output for a
/// given (loop, vector length, seed). Computing it dominates the cost of
/// checkSimdization, so bulk callers build it once and check many programs
/// against it.
class ReferenceImage {
public:
  ReferenceImage(const ir::Loop &L, unsigned VectorLen, uint64_t Seed);

  const MemoryLayout &getLayout() const { return Layout; }
  const Memory &getInitial() const { return Initial; }
  const Memory &getExpected() const { return Expected; }
  unsigned getVectorLen() const { return Layout.getVectorLen(); }
  uint64_t getSeed() const { return Seed; }

private:
  MemoryLayout Layout;
  Memory Initial;
  Memory Expected;
  uint64_t Seed;
};

/// Lazily-built ReferenceImages for one (loop, seed), keyed by vector
/// length (all fuzzer configs use V = 16, so this normally holds a single
/// entry). References returned by get() stay valid for the cache lifetime.
class OracleCache {
public:
  OracleCache(const ir::Loop &L, uint64_t Seed) : L(L), Seed(Seed) {}

  const ReferenceImage &get(unsigned VectorLen);

private:
  const ir::Loop &L;
  uint64_t Seed;
  std::vector<std::unique_ptr<ReferenceImage>> Images;
};

/// Verifies that \p P computes exactly what the loop behind \p Ref
/// computes: runs \p P (on the decoded engine unless \p Opts says
/// otherwise) over a copy of the initial image and compares bit-for-bit
/// against the precomputed scalar result. \p L is used only to attribute a
/// mismatching byte to an array element and its owning statement; it must
/// be the loop \p Ref was built from.
CheckResult checkSimdization(const ir::Loop &L, const vir::VProgram &P,
                             const ReferenceImage &Ref,
                             const CheckContext *Ctx = nullptr,
                             const CheckOptions &Opts = {});

/// Convenience overload that builds the ReferenceImage in place from a
/// pseudo-random memory image derived from \p Seed. Chunk-load tracking is
/// on, matching the historical behavior tests rely on. On a mismatch the
/// diagnostic names the byte, the owning array element, the statement that
/// stores to that array, and — when \p Ctx is given — the scheme under
/// test.
CheckResult checkSimdization(const ir::Loop &L, const vir::VProgram &P,
                             uint64_t Seed,
                             const CheckContext *Ctx = nullptr);

} // namespace sim
} // namespace simdize

#endif // SIMDIZE_SIM_CHECKER_H
