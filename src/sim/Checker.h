//===- sim/Checker.h - End-to-end correctness oracle ----------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a simdized program and the scalar reference over identical memory
/// images and demands a bit-identical result — including guard bytes
/// between arrays, so stray writes are caught. This is the machinery behind
/// the paper's coverage analysis ("the results were verified", Section 5.4)
/// and behind every correctness test in this repository.
///
/// The scalar side of the check — layout, patterned image, reference run —
/// depends only on (loop, seed, vector length), not on the program under
/// test. ReferenceImage captures it once; OracleCache shares it across the
/// ~24 configurations the fuzzer checks per seed, so the scalar interpreter
/// and the pattern fill run once per seed instead of once per config.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SIM_CHECKER_H
#define SIMDIZE_SIM_CHECKER_H

#include "sim/Machine.h"
#include "sim/Memory.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

namespace simdize {

namespace ir {
class Loop;
} // namespace ir

namespace sim {

/// Outcome of one verification run.
struct CheckResult {
  bool Ok = false;
  std::string Message; ///< Failure description when !Ok.
  ExecStats Stats;     ///< Vector execution statistics (valid when Ok).
  /// True when the failure was the VVerifier rejecting the program rather
  /// than a memory mismatch; the fuzzer's failure-kind tagging keys on
  /// this instead of matching message strings.
  bool VerifierFailed = false;
};

/// Optional provenance attached to mismatch diagnostics so that bulk runs
/// (the fuzzer, the experiment suites) produce triageable reports without
/// a debugger: which scheme/policy produced the program being checked.
struct CheckContext {
  std::string Scheme; ///< e.g. "LAZY-sp" or "DOM opt=off".
};

/// Per-check switches.
struct CheckOptions {
  /// Maintain exact per-(array, chunk) load and store provenance in the
  /// returned ExecStats (what NeverLoadTwiceTest and the heatmap
  /// inspect). Costs a map insert per dynamic access; bulk throughput
  /// paths leave it off.
  bool TrackChunkLoads = false;
  /// Maintain per-VInst-PC execution counts (ExecStats::PCCounts) with
  /// setup/body/epilogue attribution. The reference engine maintains them
  /// regardless.
  bool TrackPCCounts = false;
  /// Execute on the byte-at-a-time reference interpreter instead of the
  /// decoded engine — for differential testing of the engines themselves.
  bool UseReferenceEngine = false;
};

/// The program-independent half of one verification: the memory layout,
/// the patterned initial image, and the scalar interpreter's output for a
/// given (loop, vector length, seed). Computing it dominates the cost of
/// checkSimdization, so bulk callers build it once and check many programs
/// against it.
class ReferenceImage {
public:
  ReferenceImage(const ir::Loop &L, unsigned VectorLen, uint64_t Seed);

  /// Rebinds \p Src to \p L, a different parse of the same canonical
  /// loop: layout placement is deterministic in (canonical text, V), so
  /// the patterned and expected images carry over byte-for-byte and only
  /// the pointer-keyed layout is rebuilt — the expensive scalar reference
  /// run is skipped. The content-addressed cache uses this when a request
  /// hits an image another loop instance built.
  ReferenceImage(const ir::Loop &L, const ReferenceImage &Src);

  const MemoryLayout &getLayout() const { return Layout; }
  const Memory &getInitial() const { return Initial; }
  const Memory &getExpected() const { return Expected; }
  unsigned getVectorLen() const { return Layout.getVectorLen(); }
  uint64_t getSeed() const { return Seed; }

private:
  MemoryLayout Layout;
  Memory Initial;
  Memory Expected;
  uint64_t Seed;
};

/// Thread-safe, content-addressed generalization of the per-(loop, seed)
/// OracleCache: ReferenceImages shared across loops, seeds, and widths,
/// keyed by (LoopKey, VectorLen, Seed), where LoopKey is any stable hash
/// of the loop's canonical text (0 is fine when the caller owns a single
/// loop). Entries are handed out as shared_ptr so LRU eviction never
/// invalidates a borrower; MaxEntries of 0 means unbounded. The compile
/// server keys this by its content hash so millions of check requests
/// re-verify a small working set of loops without rebuilding the scalar
/// oracle each time.
class ReferenceImageCache {
public:
  struct Stats {
    int64_t Hits = 0;
    int64_t Misses = 0;
    int64_t Evictions = 0;
    /// Hits whose image was built by a different parse of the same loop
    /// and had to be rebound (layout rebuilt, scalar run still skipped).
    int64_t Rebinds = 0;
  };

  explicit ReferenceImageCache(size_t MaxEntries = 256) : Max(MaxEntries) {}

  /// Returns the image for (LoopKey, VectorLen, Seed), building it from
  /// \p L outside the cache lock on a miss. Concurrent misses on one key
  /// may build twice; the first insert wins (images are deterministic, so
  /// the loser is byte-identical and simply dropped).
  std::shared_ptr<const ReferenceImage>
  get(uint64_t LoopKey, const ir::Loop &L, unsigned VectorLen, uint64_t Seed);

  Stats stats() const;
  size_t size() const;
  void clear();

private:
  struct Slot {
    std::shared_ptr<const ReferenceImage> Img;
    uint64_t Tick = 0;
  };

  mutable std::mutex Mu;
  std::map<std::tuple<uint64_t, unsigned, uint64_t>, Slot> Map;
  size_t Max;
  uint64_t Tick = 0;
  Stats St;
};

/// Lazily-built ReferenceImages for one (loop, seed), keyed by vector
/// length (all fuzzer configs use V = 16, so this normally holds a single
/// entry). A thin veneer over an unbounded ReferenceImageCache, so
/// references returned by get() stay valid for the cache lifetime.
class OracleCache {
public:
  OracleCache(const ir::Loop &L, uint64_t Seed)
      : L(L), Seed(Seed), Cache(/*MaxEntries=*/0) {}

  const ReferenceImage &get(unsigned VectorLen) {
    return *Cache.get(/*LoopKey=*/0, L, VectorLen, Seed);
  }

private:
  const ir::Loop &L;
  uint64_t Seed;
  ReferenceImageCache Cache;
};

/// Verifies that \p P computes exactly what the loop behind \p Ref
/// computes: runs \p P (on the decoded engine unless \p Opts says
/// otherwise) over a copy of the initial image and compares bit-for-bit
/// against the precomputed scalar result. \p L is used only to attribute a
/// mismatching byte to an array element and its owning statement; it must
/// be the loop \p Ref was built from.
CheckResult checkSimdization(const ir::Loop &L, const vir::VProgram &P,
                             const ReferenceImage &Ref,
                             const CheckContext *Ctx = nullptr,
                             const CheckOptions &Opts = {});

/// Convenience overload that builds the ReferenceImage in place from a
/// pseudo-random memory image derived from \p Seed. Chunk-load tracking is
/// on, matching the historical behavior tests rely on. On a mismatch the
/// diagnostic names the byte, the owning array element, the statement that
/// stores to that array, and — when \p Ctx is given — the scheme under
/// test.
CheckResult checkSimdization(const ir::Loop &L, const vir::VProgram &P,
                             uint64_t Seed,
                             const CheckContext *Ctx = nullptr);

} // namespace sim
} // namespace simdize

#endif // SIMDIZE_SIM_CHECKER_H
