//===- sim/Checker.h - End-to-end correctness oracle ----------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a simdized program and the scalar reference over identical memory
/// images and demands a bit-identical result — including guard bytes
/// between arrays, so stray writes are caught. This is the machinery behind
/// the paper's coverage analysis ("the results were verified", Section 5.4)
/// and behind every correctness test in this repository.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SIM_CHECKER_H
#define SIMDIZE_SIM_CHECKER_H

#include "sim/Machine.h"

#include <string>

namespace simdize {

namespace ir {
class Loop;
} // namespace ir

namespace sim {

/// Outcome of one verification run.
struct CheckResult {
  bool Ok = false;
  std::string Message; ///< Failure description when !Ok.
  ExecStats Stats;     ///< Vector execution statistics (valid when Ok).
};

/// Optional provenance attached to mismatch diagnostics so that bulk runs
/// (the fuzzer, the experiment suites) produce triageable reports without
/// a debugger: which scheme/policy produced the program being checked.
struct CheckContext {
  std::string Scheme; ///< e.g. "LAZY-sp" or "DOM opt=off".
};

/// Verifies that \p P computes exactly what \p L computes, starting from a
/// pseudo-random memory image derived from \p Seed. On a mismatch the
/// diagnostic names the byte, the owning array element, the statement that
/// stores to that array, and — when \p Ctx is given — the scheme under
/// test.
CheckResult checkSimdization(const ir::Loop &L, const vir::VProgram &P,
                             uint64_t Seed,
                             const CheckContext *Ctx = nullptr);

} // namespace sim
} // namespace simdize

#endif // SIMDIZE_SIM_CHECKER_H
