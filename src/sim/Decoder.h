//===- sim/Decoder.h - Pre-decoded high-throughput execution engine ------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fast execution engine behind every bulk evaluation loop (the fuzzer,
/// the coverage sweep, the OPD tables). A vir::VProgram is decoded once per
/// (program, layout) into a flat, cache-friendly instruction array:
///
///  * array bases are resolved to raw byte offsets into the Memory image,
///    so address evaluation is one multiply-add with no hash lookup;
///  * the ScalarOperand reg/imm discrimination is collapsed at decode time
///    by materializing every immediate into a constant slot appended to the
///    scalar register file — at run time every scalar operand is a plain
///    register read, branch-free;
///  * VBinOp dispatches through a kernel pointer specialized per
///    (BinOpKind, ElemSize) that operates on typed lanes instead of
///    assembling lanes byte-by-byte;
///  * per-block static OpCounts are computed once at decode time; the
///    steady state multiplies them by the iteration count instead of
///    bumping a counter per executed instruction.
///
/// Blocks containing predicated instructions fall back to per-instruction
/// accounting (their dynamic counts depend on register values), and exact
/// per-chunk load provenance (ExecStats::ChunkLoads) is maintained only
/// when ExecOptions::TrackChunkLoads asks for it — the tests that assert
/// the never-load-twice guarantee do; the fuzzer's throughput path does
/// not.
///
/// The byte-at-a-time interpreter in Machine.{h,cpp} stays as the reference
/// implementation; tests/EngineEquivalenceTest.cpp differentially checks
/// this engine against it (bit-identical memory, ExecStats, and OpCounts).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SIM_DECODER_H
#define SIMDIZE_SIM_DECODER_H

#include "sim/Machine.h"
#include "vir/VProgram.h"

#include <cstdint>
#include <vector>

namespace simdize {

namespace ir {
class Array;
} // namespace ir

namespace sim {

class Memory;
class MemoryLayout;

namespace detail {

/// Specialized vector-compute kernel: Dst = A <op> B over typed lanes.
using BinOpKernel = void (*)(uint8_t *Dst, const uint8_t *A,
                             const uint8_t *B, unsigned VectorLen);

/// Decoded opcodes. Memory operands, scalar operands, and SBase are fully
/// resolved, so several VOpcodes collapse into one decoded kind.
enum class DKind : uint8_t {
  Load,      ///< VDst = VectorLen bytes at truncate(AddrBase + S[Idx]*Scale)
  Store,     ///< bytes at truncate(AddrBase + S[Idx]*Scale) = VSrc1
  Splat,     ///< VDst = replicate S[SOp1] across ElemSize lanes
  ShiftPair, ///< VDst = bytes [S, S+V) of VSrc1 ++ VSrc2, S = S[SOp1]
  Splice,    ///< VDst = first S of VSrc1, rest of VSrc2, S = S[SOp1]
  BinOp,     ///< VDst = Kernel(VSrc1, VSrc2) (VBinOp and VCmp both land
             ///< here — a compare is just a kernel producing lane masks)
  Select,    ///< VDst = bytewise (VSrc2 & VSrc1) | (VSrc3 & ~VSrc1)
  Copy,      ///< VDst = VSrc1
  SSet,      ///< S[SDst] = Imm (SConst, and SBase with the base resolved)
  SBinOp,    ///< S[SDst] = S[SOp1] <ScalarOp> S[SOp2]
  SCmp,      ///< S[SDst] = S[SOp1] <CmpOp> S[SOp2] ? 1 : 0
};

/// One decoded instruction. Flat and trivially copyable; scalar operand
/// fields are indices into the extended scalar slot file.
struct DInst {
  DKind Kind = DKind::Copy;
  vir::OpCategory Category = vir::OpCategory::Copy;
  uint8_t ElemSize = 4;                        ///< Splat lane width.
  int32_t Pred = -1;                           ///< Slot, or -1 if none.
  uint32_t VDst = 0, VSrc1 = 0, VSrc2 = 0;
  uint32_t VSrc3 = 0;                          ///< Select's untaken input.
  uint32_t SDst = 0, SOp1 = 0, SOp2 = 0;       ///< Scalar slots.
  uint32_t Idx = 0;       ///< Address index slot (the zero slot when none).
  int64_t AddrBase = 0;   ///< Resolved base byte offset incl. elem offset.
  int64_t Scale = 0;      ///< Element size multiplier for the index.
  int64_t Imm = 0;        ///< SSet payload.
  BinOpKernel Kernel = nullptr;
  vir::SBinOpKind ScalarOp = vir::SBinOpKind::Add;
  vir::SCmpKind CmpOp = vir::SCmpKind::EQ;
  const ir::Array *Base = nullptr; ///< ChunkLoads provenance (slow path).
};

/// A decoded straight-line block with its decode-time accounting.
struct DBlock {
  std::vector<DInst> Insts;
  /// Sum of every instruction's category, valid as a dynamic count only
  /// when !HasPredicated (a skipped predicated instruction is not charged).
  OpCounts StaticCounts;
  bool HasPredicated = false;
};

} // namespace detail

/// Per-run switches of the decoded engine.
struct ExecOptions {
  /// Maintain the exact per-(array, chunk) load and store counts of the
  /// reference interpreter. Off by default: the map insert per dynamic
  /// access is the single most expensive part of the reference engine's
  /// hot loop.
  bool TrackChunkLoads = false;
  /// Maintain ExecStats::PCCounts (per-instruction execution counts with
  /// setup/body/epilogue attribution). The steady state stays batched —
  /// an unpredicated body instruction executes exactly once per
  /// iteration, so its count is the iteration count.
  bool TrackPCCounts = false;
};

/// A vir::VProgram decoded against one MemoryLayout. Immutable once built;
/// one decode serves any number of runs (the checker reuses it across
/// memory images). Holds raw ir::Array pointers for provenance only, so it
/// must not outlive the loop the layout was built from.
class DecodedProgram {
public:
  DecodedProgram(const vir::VProgram &P, const MemoryLayout &Layout);

  unsigned getVectorLen() const { return VectorLen; }

  /// Total decoded instructions across all three blocks.
  size_t getNumInsts() const {
    return Setup.Insts.size() + Body.Insts.size() + Epilogue.Insts.size();
  }

  /// Static per-iteration operation counts of the steady body (decode-time
  /// accounting; what the fast path multiplies by the iteration count).
  const OpCounts &getBodyStaticCounts() const { return Body.StaticCounts; }

  /// True when the steady body needs per-instruction accounting.
  bool bodyHasPredicated() const { return Body.HasPredicated; }

private:
  friend class DecodedRunner;

  /// Returns the slot holding \p Op's value at run time: the register's
  /// own slot, or a (deduplicated) constant slot for immediates.
  uint32_t slotOf(const vir::ScalarOperand &Op);

  /// Returns a slot pre-loaded with \p Value before Setup runs.
  uint32_t constSlot(int64_t Value);

  detail::DInst decodeInst(const vir::VInst &I, const MemoryLayout &Layout);
  void decodeBlock(const vir::Block &B, const MemoryLayout &Layout,
                   detail::DBlock &Out);

  unsigned VectorLen;
  unsigned NumVRegs;
  uint32_t NumSlots;     ///< Program scalar regs + appended constant slots.
  uint32_t IndexSlot;
  uint32_t LBSlot = 0, UBSlot = 0;
  int64_t LoopStep;
  /// (slot, value) bindings applied before Setup: constant slots, the
  /// trip-count parameter, and scalar parameters.
  std::vector<std::pair<uint32_t, int64_t>> InitialBindings;
  std::vector<std::pair<int64_t, uint32_t>> ConstSlots; ///< Dedup table.

  detail::DBlock Setup;
  detail::DBlock Body;
  detail::DBlock Epilogue;
};

/// Executes \p DP over \p Mem and returns statistics identical to what
/// sim::runProgram produces for the original program — except that
/// ExecStats::ChunkLoads is populated only when \p Opts asks for it.
ExecStats runDecoded(const DecodedProgram &DP, Memory &Mem,
                     const ExecOptions &Opts = {});

} // namespace sim
} // namespace simdize

#endif // SIMDIZE_SIM_DECODER_H
