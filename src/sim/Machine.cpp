//===- sim/Machine.cpp ----------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "sim/Machine.h"

#include "ir/Array.h"
#include "sim/Memory.h"
#include "simdize/Target.h"
#include "support/Debug.h"
#include "support/MathExtras.h"

#include <array>
#include <cstring>
#include <vector>

using namespace simdize;
using namespace simdize::sim;
using namespace simdize::vir;

OpCounts &OpCounts::operator+=(const OpCounts &O) {
  Loads += O.Loads;
  Stores += O.Stores;
  Reorg += O.Reorg;
  Compute += O.Compute;
  Copies += O.Copies;
  Scalar += O.Scalar;
  LoopCtl += O.LoopCtl;
  CallRet += O.CallRet;
  return *this;
}

OpCounts &OpCounts::addScaled(const OpCounts &O, int64_t N) {
  Loads += O.Loads * N;
  Stores += O.Stores * N;
  Reorg += O.Reorg * N;
  Compute += O.Compute * N;
  Copies += O.Copies * N;
  Scalar += O.Scalar * N;
  LoopCtl += O.LoopCtl * N;
  CallRet += O.CallRet * N;
  return *this;
}

namespace {

constexpr unsigned MaxVectorLen = Target::MaxVectorLen;

/// One vector register, sized for the widest supported target; programs
/// execute over their own V <= MaxVectorLen bytes of it.
using VectorValue = std::array<uint8_t, MaxVectorLen>;

/// Interpreter state for one program run.
class MachineState {
public:
  MachineState(const VProgram &P, const MemoryLayout &Layout, Memory &Mem)
      : P(P), Layout(Layout), Mem(Mem), VRegs(P.getNumVRegs()),
        SRegs(P.getNumSRegs(), 0) {
    assert(P.getVectorLen() <= MaxVectorLen && "vector register too wide");
  }

  ExecStats run() {
    Stats.Counts.CallRet = 2; // One call + return per program (Sec. 5.3).

    // Bind the trip-count and scalar parameters (function arguments;
    // they cost nothing).
    if (P.hasTripCountParam())
      SRegs[P.getTripCountParam().Id] = P.getTripCountValue();
    for (auto [Reg, Value] : P.getScalarParams())
      SRegs[Reg.Id] = Value;

    // The reference engine always maintains the full per-PC profile; it
    // is the implementation the decoded engine's optional tracking is
    // differentially tested against.
    Stats.PCCounts.Setup.assign(P.getSetup().size(), 0);
    Stats.PCCounts.Body.assign(P.getBody().size(), 0);
    Stats.PCCounts.Epilogue.assign(P.getEpilogue().size(), 0);

    execBlock(P.getSetup(), Stats.PCCounts.Setup);

    int64_t I = evalOperand(P.getLowerBound());
    int64_t UB = evalOperand(P.getUpperBound());
    int64_t Step = P.getLoopStep();
    for (; I < UB; I += Step) {
      SRegs[P.getIndexReg().Id] = I;
      execBlock(P.getBody(), Stats.PCCounts.Body);
      Stats.Counts.LoopCtl += 2; // Counter update + branch.
      ++Stats.SteadyIterations;
    }
    // The epilogue sees the first unexecuted counter value.
    SRegs[P.getIndexReg().Id] = I;

    execBlock(P.getEpilogue(), Stats.PCCounts.Epilogue);
    return std::move(Stats);
  }

private:
  void execBlock(const Block &B, std::vector<int64_t> &Prof) {
    for (size_t Pc = 0; Pc < B.size(); ++Pc)
      if (execInst(B[Pc]))
        ++Prof[Pc];
  }

  int64_t evalOperand(const ScalarOperand &Op) const {
    return Op.IsReg ? SRegs[Op.Reg.Id] : Op.Imm;
  }

  /// Effective byte address of \p A (before truncation).
  int64_t evalAddr(const Address &A) const {
    int64_t Index = A.Index ? SRegs[A.Index->Id] : A.ConstIndex;
    return Layout.baseOf(A.Base) +
           (Index + A.ElemOffset) *
               static_cast<int64_t>(A.Base->getElemSize());
  }

  /// \returns true when the instruction actually executed (predicate on).
  bool execInst(const VInst &I) {
    if (I.Predicate && SRegs[I.Predicate->Id] == 0)
      return false;

    // Charge the instruction to its bucket.
    switch (I.category()) {
    case OpCategory::Load:
      ++Stats.Counts.Loads;
      break;
    case OpCategory::Store:
      ++Stats.Counts.Stores;
      break;
    case OpCategory::Reorg:
      ++Stats.Counts.Reorg;
      break;
    case OpCategory::Compute:
      ++Stats.Counts.Compute;
      break;
    case OpCategory::Copy:
      ++Stats.Counts.Copies;
      break;
    case OpCategory::Scalar:
      ++Stats.Counts.Scalar;
      break;
    }

    const int64_t V = P.getVectorLen();
    switch (I.Op) {
    case VOpcode::VLoad: {
      int64_t Chunk = alignDown(evalAddr(I.Addr), V);
      assert(Chunk >= 0 && Chunk + V <= Mem.size() && "vload out of bounds");
      std::memcpy(VRegs[I.VDst.Id].data(), Mem.data() + Chunk,
                  static_cast<size_t>(V));
      ++Stats.ChunkLoads[{I.Addr.Base, Chunk}];
      break;
    }
    case VOpcode::VStore: {
      int64_t Chunk = alignDown(evalAddr(I.Addr), V);
      assert(Chunk >= 0 && Chunk + V <= Mem.size() && "vstore out of bounds");
      std::memcpy(Mem.data() + Chunk, VRegs[I.VSrc1.Id].data(),
                  static_cast<size_t>(V));
      ++Stats.ChunkStores[{I.Addr.Base, Chunk}];
      break;
    }
    case VOpcode::VSplat: {
      int64_t Value = evalOperand(I.SOp1);
      VectorValue &Dst = VRegs[I.VDst.Id];
      for (int64_t Byte = 0; Byte < V; ++Byte)
        Dst[static_cast<size_t>(Byte)] = static_cast<uint8_t>(
            static_cast<uint64_t>(Value) >> (8 * (Byte % I.ElemSize)));
      break;
    }
    case VOpcode::VShiftPair: {
      int64_t Shift = evalOperand(I.SOp1);
      assert(Shift >= 0 && Shift <= V && "vshiftpair amount outside [0, V]");
      uint8_t Concat[2 * MaxVectorLen];
      std::memcpy(Concat, VRegs[I.VSrc1.Id].data(), static_cast<size_t>(V));
      std::memcpy(Concat + V, VRegs[I.VSrc2.Id].data(),
                  static_cast<size_t>(V));
      std::memcpy(VRegs[I.VDst.Id].data(), Concat + Shift,
                  static_cast<size_t>(V));
      break;
    }
    case VOpcode::VSplice: {
      int64_t Point = evalOperand(I.SOp1);
      assert(Point >= 0 && Point <= V && "vsplice point outside [0, V]");
      VectorValue Out = VRegs[I.VSrc2.Id];
      std::memcpy(Out.data(), VRegs[I.VSrc1.Id].data(),
                  static_cast<size_t>(Point));
      VRegs[I.VDst.Id] = Out;
      break;
    }
    case VOpcode::VBinOp: {
      const VectorValue &A = VRegs[I.VSrc1.Id];
      const VectorValue &B = VRegs[I.VSrc2.Id];
      VectorValue Out;
      unsigned D = I.ElemSize;
      for (unsigned Lane = 0; Lane < V / D; ++Lane) {
        uint64_t LHS = 0, RHS = 0;
        for (unsigned K = 0; K < D; ++K) {
          LHS |= static_cast<uint64_t>(A[Lane * D + K]) << (8 * K);
          RHS |= static_cast<uint64_t>(B[Lane * D + K]) << (8 * K);
        }
        // Sign-extended lane values for the ordered operations.
        unsigned SignShift = 64 - 8 * D;
        int64_t SLHS =
            static_cast<int64_t>(LHS << SignShift) >> SignShift;
        int64_t SRHS =
            static_cast<int64_t>(RHS << SignShift) >> SignShift;
        uint64_t Res = 0;
        switch (I.VectorOp) {
        case ir::BinOpKind::Add:
          Res = LHS + RHS;
          break;
        case ir::BinOpKind::Sub:
          Res = LHS - RHS;
          break;
        case ir::BinOpKind::Mul:
          Res = LHS * RHS;
          break;
        case ir::BinOpKind::Min:
          Res = static_cast<uint64_t>(SLHS < SRHS ? SLHS : SRHS);
          break;
        case ir::BinOpKind::Max:
          Res = static_cast<uint64_t>(SLHS > SRHS ? SLHS : SRHS);
          break;
        case ir::BinOpKind::And:
          Res = LHS & RHS;
          break;
        case ir::BinOpKind::Or:
          Res = LHS | RHS;
          break;
        case ir::BinOpKind::Xor:
          Res = LHS ^ RHS;
          break;
        }
        for (unsigned K = 0; K < D; ++K)
          Out[Lane * D + K] = static_cast<uint8_t>(Res >> (8 * K));
      }
      VRegs[I.VDst.Id] = Out;
      break;
    }
    case VOpcode::VCmp: {
      const VectorValue &A = VRegs[I.VSrc1.Id];
      const VectorValue &B = VRegs[I.VSrc2.Id];
      VectorValue Out;
      unsigned D = I.ElemSize;
      for (unsigned Lane = 0; Lane < V / D; ++Lane) {
        uint64_t LHS = 0, RHS = 0;
        for (unsigned K = 0; K < D; ++K) {
          LHS |= static_cast<uint64_t>(A[Lane * D + K]) << (8 * K);
          RHS |= static_cast<uint64_t>(B[Lane * D + K]) << (8 * K);
        }
        unsigned SignShift = 64 - 8 * D;
        int64_t SLHS = static_cast<int64_t>(LHS << SignShift) >> SignShift;
        int64_t SRHS = static_cast<int64_t>(RHS << SignShift) >> SignShift;
        bool Res = false;
        switch (I.CmpOp) {
        case SCmpKind::LT:
          Res = SLHS < SRHS;
          break;
        case SCmpKind::LE:
          Res = SLHS <= SRHS;
          break;
        case SCmpKind::GT:
          Res = SLHS > SRHS;
          break;
        case SCmpKind::GE:
          Res = SLHS >= SRHS;
          break;
        case SCmpKind::EQ:
          Res = SLHS == SRHS;
          break;
        case SCmpKind::NE:
          Res = SLHS != SRHS;
          break;
        }
        for (unsigned K = 0; K < D; ++K)
          Out[Lane * D + K] = Res ? 0xff : 0x00;
      }
      VRegs[I.VDst.Id] = Out;
      break;
    }
    case VOpcode::VSelect: {
      const VectorValue &Mask = VRegs[I.VSrc1.Id];
      const VectorValue &IfSet = VRegs[I.VSrc2.Id];
      const VectorValue &IfClear = VRegs[I.VSrc3.Id];
      VectorValue Out;
      for (int64_t Byte = 0; Byte < V; ++Byte) {
        size_t Idx = static_cast<size_t>(Byte);
        Out[Idx] = static_cast<uint8_t>((IfSet[Idx] & Mask[Idx]) |
                                        (IfClear[Idx] & ~Mask[Idx]));
      }
      VRegs[I.VDst.Id] = Out;
      break;
    }
    case VOpcode::VCopy:
      VRegs[I.VDst.Id] = VRegs[I.VSrc1.Id];
      break;
    case VOpcode::SConst:
      SRegs[I.SDst.Id] = I.Imm;
      break;
    case VOpcode::SBase:
      SRegs[I.SDst.Id] = Layout.baseOf(I.Addr.Base);
      break;
    case VOpcode::SBinOp: {
      int64_t LHS = evalOperand(I.SOp1);
      int64_t RHS = evalOperand(I.SOp2);
      switch (I.ScalarOp) {
      case SBinOpKind::Add:
        SRegs[I.SDst.Id] = LHS + RHS;
        break;
      case SBinOpKind::Sub:
        SRegs[I.SDst.Id] = LHS - RHS;
        break;
      case SBinOpKind::Mul:
        SRegs[I.SDst.Id] = LHS * RHS;
        break;
      case SBinOpKind::And:
        SRegs[I.SDst.Id] = LHS & RHS;
        break;
      case SBinOpKind::Mod:
        assert(RHS > 0 && "mod by non-positive value");
        SRegs[I.SDst.Id] = nonNegMod(LHS, RHS);
        break;
      }
      break;
    }
    case VOpcode::SCmp: {
      int64_t LHS = evalOperand(I.SOp1);
      int64_t RHS = evalOperand(I.SOp2);
      bool Res = false;
      switch (I.CmpOp) {
      case SCmpKind::LT:
        Res = LHS < RHS;
        break;
      case SCmpKind::LE:
        Res = LHS <= RHS;
        break;
      case SCmpKind::GT:
        Res = LHS > RHS;
        break;
      case SCmpKind::GE:
        Res = LHS >= RHS;
        break;
      case SCmpKind::EQ:
        Res = LHS == RHS;
        break;
      case SCmpKind::NE:
        Res = LHS != RHS;
        break;
      }
      SRegs[I.SDst.Id] = Res ? 1 : 0;
      break;
    }
    }
    return true;
  }

  const VProgram &P;
  const MemoryLayout &Layout;
  Memory &Mem;
  std::vector<VectorValue> VRegs;
  std::vector<int64_t> SRegs;
  ExecStats Stats;
};

} // namespace

ExecStats sim::runProgram(const VProgram &P, const MemoryLayout &Layout,
                          Memory &Mem) {
  return MachineState(P, Layout, Mem).run();
}
