//===- sim/Checker.cpp ----------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "sim/Checker.h"

#include "ir/IRPrinter.h"
#include "ir/Loop.h"
#include "obs/Trace.h"
#include "sim/Decoder.h"
#include "sim/ScalarInterp.h"
#include "support/Format.h"
#include "vir/VVerifier.h"

#include <optional>

using namespace simdize;
using namespace simdize::sim;

ReferenceImage::ReferenceImage(const ir::Loop &L, unsigned VectorLen,
                               uint64_t Seed)
    : Layout(L, VectorLen), Initial(Layout.getTotalSize()),
      Expected(Layout.getTotalSize()), Seed(Seed) {
  obs::Span Sp("reference-image", "sim");
  Initial.fillPattern(Seed);
  Expected = Initial;
  runScalarLoop(L, Layout, Expected);
}

ReferenceImage::ReferenceImage(const ir::Loop &L, const ReferenceImage &Src)
    : Layout(L, Src.getVectorLen()), Initial(Src.Initial),
      Expected(Src.Expected), Seed(Src.Seed) {
  assert(Layout.getTotalSize() == Src.Layout.getTotalSize() &&
         "rebinding an image across structurally different loops");
}

std::shared_ptr<const ReferenceImage>
ReferenceImageCache::get(uint64_t LoopKey, const ir::Loop &L,
                         unsigned VectorLen, uint64_t Seed) {
  std::tuple<uint64_t, unsigned, uint64_t> Key{LoopKey, VectorLen, Seed};
  std::shared_ptr<const ReferenceImage> Stale;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Map.find(Key);
    if (It != Map.end()) {
      ++St.Hits;
      It->second.Tick = ++Tick;
      // A content hit is only directly usable when its pointer-keyed
      // layout was built from this exact loop instance; an image built by
      // another parse of the same loop is rebound below (outside the
      // lock), skipping the scalar run either way.
      if (It->second.Img->getLayout().covers(L))
        return It->second.Img;
      ++St.Rebinds;
      Stale = It->second.Img;
    } else {
      ++St.Misses;
    }
  }

  if (Stale) {
    auto Rebound = std::make_shared<const ReferenceImage>(L, *Stale);
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Map.find(Key);
    if (It != Map.end()) {
      // Adopt the rebound image so the live instance serves future hits;
      // borrowers of the old shared_ptr are unaffected.
      It->second.Img = Rebound;
      It->second.Tick = ++Tick;
    }
    return Rebound;
  }

  // Build outside the lock: image construction runs the scalar
  // interpreter and must not serialize concurrent misses on other keys.
  auto Img = std::make_shared<const ReferenceImage>(L, VectorLen, Seed);

  std::lock_guard<std::mutex> Lock(Mu);
  auto [It, Inserted] = Map.try_emplace(Key);
  if (Inserted) {
    It->second.Img = std::move(Img);
  } else if (!It->second.Img->getLayout().covers(L)) {
    // A racing miss on this content key won the insert from a different
    // instance of the same loop; its pointer-keyed layout cannot serve
    // this caller. Adopt the image we just built — same content, bound
    // to this instance — so both callers leave with a covering layout.
    It->second.Img = std::move(Img);
  }
  It->second.Tick = ++Tick;
  if (Max != 0 && Map.size() > Max) {
    auto Oldest = Map.begin();
    for (auto I = Map.begin(); I != Map.end(); ++I)
      if (I->second.Tick < Oldest->second.Tick)
        Oldest = I;
    Map.erase(Oldest);
    ++St.Evictions;
  }
  return It->second.Img;
}

ReferenceImageCache::Stats ReferenceImageCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return St;
}

size_t ReferenceImageCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Map.size();
}

void ReferenceImageCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Map.clear();
}

/// Finds the statement storing to \p A; store arrays are unique per
/// statement (a simdizability precondition), so the owner is unambiguous.
static std::string owningStmt(const ir::Loop &L, const ir::Array *A) {
  const auto &Stmts = L.getStmts();
  for (size_t K = 0; K < Stmts.size(); ++K)
    if (Stmts[K]->getStoreArray() == A)
      return strf("; written by statement %zu: %s", K,
                  ir::printStmt(*Stmts[K]).c_str());
  return "; not a store target of any statement";
}

/// Locates the first mismatching byte and attributes it to an array
/// element and its owning statement.
static std::string mismatchMessage(const ir::Loop &L,
                                   const MemoryLayout &Layout,
                                   const Memory &Expected,
                                   const Memory &Actual,
                                   const std::string &Under) {
  for (int64_t Addr = 0; Addr < Expected.size(); ++Addr) {
    if (Expected.data()[Addr] != Actual.data()[Addr]) {
      std::string Where = "guard region";
      for (const auto &A : L.getArrays()) {
        int64_t Base = Layout.baseOf(A.get());
        if (Addr >= Base && Addr < Base + A->getSizeInBytes()) {
          Where = strf("%s[%lld]%s", A->getName().c_str(),
                       static_cast<long long>((Addr - Base) /
                                              A->getElemSize()),
                       owningStmt(L, A.get()).c_str());
          break;
        }
      }
      return strf(
          "memory mismatch%s at byte %lld (%s): expected 0x%02x, got "
          "0x%02x",
          Under.c_str(), static_cast<long long>(Addr), Where.c_str(),
          Expected.data()[Addr], Actual.data()[Addr]);
    }
  }
  return "memory mismatch" + Under + " (location not identified)";
}

CheckResult sim::checkSimdization(const ir::Loop &L, const vir::VProgram &P,
                                  const ReferenceImage &Ref,
                                  const CheckContext *Ctx,
                                  const CheckOptions &Opts) {
  CheckResult Result;
  obs::Span CheckSp("check", "sim");
  std::string Under =
      Ctx && !Ctx->Scheme.empty() ? " under scheme " + Ctx->Scheme : "";

  {
    obs::Span Sp("vverify", "sim");
    if (auto Err = vir::verifyProgram(P)) {
      Result.Message = "program fails verification" + Under + ": " + *Err;
      Result.VerifierFailed = true;
      return Result;
    }
  }
  assert(Ref.getVectorLen() == P.getVectorLen() &&
         "reference image built for a different vector length");

  Memory Actual = Ref.getInitial();
  if (Opts.UseReferenceEngine) {
    obs::Span Sp("execute", "sim");
    Sp.argStr("engine", "reference");
    Result.Stats = runProgram(P, Ref.getLayout(), Actual);
  } else {
    std::optional<DecodedProgram> DP;
    {
      obs::Span Sp("decode", "sim");
      DP.emplace(P, Ref.getLayout());
    }
    obs::Span Sp("execute", "sim");
    Sp.argStr("engine", "decoded");
    ExecOptions EO;
    EO.TrackChunkLoads = Opts.TrackChunkLoads;
    EO.TrackPCCounts = Opts.TrackPCCounts;
    Result.Stats = runDecoded(*DP, Actual, EO);
  }

  {
    obs::Span Sp("compare", "sim");
    if (!(Ref.getExpected() == Actual)) {
      Result.Message = mismatchMessage(L, Ref.getLayout(), Ref.getExpected(),
                                       Actual, Under);
      return Result;
    }
  }

  Result.Ok = true;
  return Result;
}

CheckResult sim::checkSimdization(const ir::Loop &L, const vir::VProgram &P,
                                  uint64_t Seed, const CheckContext *Ctx) {
  ReferenceImage Ref(L, P.getVectorLen(), Seed);
  CheckOptions Opts;
  Opts.TrackChunkLoads = true;
  return checkSimdization(L, P, Ref, Ctx, Opts);
}
