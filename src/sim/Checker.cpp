//===- sim/Checker.cpp ----------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "sim/Checker.h"

#include "ir/IRPrinter.h"
#include "ir/Loop.h"
#include "obs/Trace.h"
#include "sim/Decoder.h"
#include "sim/ScalarInterp.h"
#include "support/Format.h"
#include "vir/VVerifier.h"

#include <optional>

using namespace simdize;
using namespace simdize::sim;

ReferenceImage::ReferenceImage(const ir::Loop &L, unsigned VectorLen,
                               uint64_t Seed)
    : Layout(L, VectorLen), Initial(Layout.getTotalSize()),
      Expected(Layout.getTotalSize()), Seed(Seed) {
  obs::Span Sp("reference-image", "sim");
  Initial.fillPattern(Seed);
  Expected = Initial;
  runScalarLoop(L, Layout, Expected);
}

const ReferenceImage &OracleCache::get(unsigned VectorLen) {
  for (const auto &Img : Images)
    if (Img->getVectorLen() == VectorLen)
      return *Img;
  Images.push_back(std::make_unique<ReferenceImage>(L, VectorLen, Seed));
  return *Images.back();
}

/// Finds the statement storing to \p A; store arrays are unique per
/// statement (a simdizability precondition), so the owner is unambiguous.
static std::string owningStmt(const ir::Loop &L, const ir::Array *A) {
  const auto &Stmts = L.getStmts();
  for (size_t K = 0; K < Stmts.size(); ++K)
    if (Stmts[K]->getStoreArray() == A)
      return strf("; written by statement %zu: %s", K,
                  ir::printStmt(*Stmts[K]).c_str());
  return "; not a store target of any statement";
}

/// Locates the first mismatching byte and attributes it to an array
/// element and its owning statement.
static std::string mismatchMessage(const ir::Loop &L,
                                   const MemoryLayout &Layout,
                                   const Memory &Expected,
                                   const Memory &Actual,
                                   const std::string &Under) {
  for (int64_t Addr = 0; Addr < Expected.size(); ++Addr) {
    if (Expected.data()[Addr] != Actual.data()[Addr]) {
      std::string Where = "guard region";
      for (const auto &A : L.getArrays()) {
        int64_t Base = Layout.baseOf(A.get());
        if (Addr >= Base && Addr < Base + A->getSizeInBytes()) {
          Where = strf("%s[%lld]%s", A->getName().c_str(),
                       static_cast<long long>((Addr - Base) /
                                              A->getElemSize()),
                       owningStmt(L, A.get()).c_str());
          break;
        }
      }
      return strf(
          "memory mismatch%s at byte %lld (%s): expected 0x%02x, got "
          "0x%02x",
          Under.c_str(), static_cast<long long>(Addr), Where.c_str(),
          Expected.data()[Addr], Actual.data()[Addr]);
    }
  }
  return "memory mismatch" + Under + " (location not identified)";
}

CheckResult sim::checkSimdization(const ir::Loop &L, const vir::VProgram &P,
                                  const ReferenceImage &Ref,
                                  const CheckContext *Ctx,
                                  const CheckOptions &Opts) {
  CheckResult Result;
  obs::Span CheckSp("check", "sim");
  std::string Under =
      Ctx && !Ctx->Scheme.empty() ? " under scheme " + Ctx->Scheme : "";

  {
    obs::Span Sp("vverify", "sim");
    if (auto Err = vir::verifyProgram(P)) {
      Result.Message = "program fails verification" + Under + ": " + *Err;
      Result.VerifierFailed = true;
      return Result;
    }
  }
  assert(Ref.getVectorLen() == P.getVectorLen() &&
         "reference image built for a different vector length");

  Memory Actual = Ref.getInitial();
  if (Opts.UseReferenceEngine) {
    obs::Span Sp("execute", "sim");
    Sp.argStr("engine", "reference");
    Result.Stats = runProgram(P, Ref.getLayout(), Actual);
  } else {
    std::optional<DecodedProgram> DP;
    {
      obs::Span Sp("decode", "sim");
      DP.emplace(P, Ref.getLayout());
    }
    obs::Span Sp("execute", "sim");
    Sp.argStr("engine", "decoded");
    ExecOptions EO;
    EO.TrackChunkLoads = Opts.TrackChunkLoads;
    EO.TrackPCCounts = Opts.TrackPCCounts;
    Result.Stats = runDecoded(*DP, Actual, EO);
  }

  {
    obs::Span Sp("compare", "sim");
    if (!(Ref.getExpected() == Actual)) {
      Result.Message = mismatchMessage(L, Ref.getLayout(), Ref.getExpected(),
                                       Actual, Under);
      return Result;
    }
  }

  Result.Ok = true;
  return Result;
}

CheckResult sim::checkSimdization(const ir::Loop &L, const vir::VProgram &P,
                                  uint64_t Seed, const CheckContext *Ctx) {
  ReferenceImage Ref(L, P.getVectorLen(), Seed);
  CheckOptions Opts;
  Opts.TrackChunkLoads = true;
  return checkSimdization(L, P, Ref, Ctx, Opts);
}
