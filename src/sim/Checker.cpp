//===- sim/Checker.cpp ----------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "sim/Checker.h"

#include "ir/Loop.h"
#include "sim/Memory.h"
#include "sim/ScalarInterp.h"
#include "support/Format.h"
#include "vir/VVerifier.h"

using namespace simdize;
using namespace simdize::sim;

CheckResult sim::checkSimdization(const ir::Loop &L, const vir::VProgram &P,
                                  uint64_t Seed) {
  CheckResult Result;

  if (auto Err = vir::verifyProgram(P)) {
    Result.Message = "program fails verification: " + *Err;
    return Result;
  }

  MemoryLayout Layout(L, P.getVectorLen());
  Memory Expected(Layout.getTotalSize());
  Expected.fillPattern(Seed);
  Memory Actual = Expected;

  runScalarLoop(L, Layout, Expected);
  Result.Stats = runProgram(P, Layout, Actual);

  if (!(Expected == Actual)) {
    // Locate the first mismatching byte for the diagnostic.
    for (int64_t Addr = 0; Addr < Expected.size(); ++Addr) {
      if (Expected.data()[Addr] != Actual.data()[Addr]) {
        // Attribute the byte to an array if possible.
        std::string Where = "guard region";
        for (const auto &A : L.getArrays()) {
          int64_t Base = Layout.baseOf(A.get());
          if (Addr >= Base && Addr < Base + A->getSizeInBytes()) {
            Where = strf("%s[%lld]", A->getName().c_str(),
                         static_cast<long long>((Addr - Base) /
                                                A->getElemSize()));
            break;
          }
        }
        Result.Message = strf(
            "memory mismatch at byte %lld (%s): expected 0x%02x, got 0x%02x",
            static_cast<long long>(Addr), Where.c_str(),
            Expected.data()[Addr], Actual.data()[Addr]);
        return Result;
      }
    }
    Result.Message = "memory mismatch (location not identified)";
    return Result;
  }

  Result.Ok = true;
  return Result;
}
