//===- sim/Checker.cpp ----------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "sim/Checker.h"

#include "ir/IRPrinter.h"
#include "ir/Loop.h"
#include "sim/Memory.h"
#include "sim/ScalarInterp.h"
#include "support/Format.h"
#include "vir/VVerifier.h"

using namespace simdize;
using namespace simdize::sim;

/// Finds the statement storing to \p A; store arrays are unique per
/// statement (a simdizability precondition), so the owner is unambiguous.
static std::string owningStmt(const ir::Loop &L, const ir::Array *A) {
  const auto &Stmts = L.getStmts();
  for (size_t K = 0; K < Stmts.size(); ++K)
    if (Stmts[K]->getStoreArray() == A)
      return strf("; written by statement %zu: %s", K,
                  ir::printStmt(*Stmts[K]).c_str());
  return "; not a store target of any statement";
}

CheckResult sim::checkSimdization(const ir::Loop &L, const vir::VProgram &P,
                                  uint64_t Seed, const CheckContext *Ctx) {
  CheckResult Result;
  std::string Under =
      Ctx && !Ctx->Scheme.empty() ? " under scheme " + Ctx->Scheme : "";

  if (auto Err = vir::verifyProgram(P)) {
    Result.Message = "program fails verification" + Under + ": " + *Err;
    return Result;
  }

  MemoryLayout Layout(L, P.getVectorLen());
  Memory Expected(Layout.getTotalSize());
  Expected.fillPattern(Seed);
  Memory Actual = Expected;

  runScalarLoop(L, Layout, Expected);
  Result.Stats = runProgram(P, Layout, Actual);

  if (!(Expected == Actual)) {
    // Locate the first mismatching byte for the diagnostic.
    for (int64_t Addr = 0; Addr < Expected.size(); ++Addr) {
      if (Expected.data()[Addr] != Actual.data()[Addr]) {
        // Attribute the byte to an array and its owning statement.
        std::string Where = "guard region";
        for (const auto &A : L.getArrays()) {
          int64_t Base = Layout.baseOf(A.get());
          if (Addr >= Base && Addr < Base + A->getSizeInBytes()) {
            Where = strf("%s[%lld]%s", A->getName().c_str(),
                         static_cast<long long>((Addr - Base) /
                                                A->getElemSize()),
                         owningStmt(L, A.get()).c_str());
            break;
          }
        }
        Result.Message = strf(
            "memory mismatch%s at byte %lld (%s): expected 0x%02x, got "
            "0x%02x",
            Under.c_str(), static_cast<long long>(Addr), Where.c_str(),
            Expected.data()[Addr], Actual.data()[Addr]);
        return Result;
      }
    }
    Result.Message = "memory mismatch" + Under + " (location not identified)";
    return Result;
  }

  Result.Ok = true;
  return Result;
}
