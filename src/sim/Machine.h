//===- sim/Machine.h - Generic SIMD machine executing vector IR ----------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation target of Section 5.1: a generic 16-byte-wide SIMD unit
/// whose load-store unit supports only 16-byte aligned accesses (addresses
/// are truncated, AltiVec-style) and whose data reorganization is a
/// byte-granular two-source permute. The machine executes a VProgram over a
/// Memory image and counts every dynamic operation, categorized, to produce
/// the paper's operations-per-datum metric.
///
/// Overhead model (documented in DESIGN.md): vector memory operations use
/// register+register addressing (base materialization is a one-time Setup
/// cost), the steady loop costs 2 scalar operations per iteration
/// (counter update + branch), and one call/return pair is charged per
/// program — matching "a single function call and return, address
/// computation, and loop overhead" (Section 5.3).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SIM_MACHINE_H
#define SIMDIZE_SIM_MACHINE_H

#include "vir/VProgram.h"

#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

namespace simdize {
namespace sim {

class Memory;
class MemoryLayout;

/// Dynamic operation counts, one bucket per instruction category plus the
/// loop-control and call overhead charged by the machine itself.
struct OpCounts {
  int64_t Loads = 0;
  int64_t Stores = 0;
  int64_t Reorg = 0;   ///< vshiftpair + vsplice + vsplat
  int64_t Compute = 0; ///< vector arithmetic
  int64_t Copies = 0;  ///< software-pipelining register copies
  int64_t Scalar = 0;  ///< alignment/bound computation, predicates
  int64_t LoopCtl = 0; ///< 2 per steady iteration
  int64_t CallRet = 0; ///< 2 per program

  int64_t total() const {
    return Loads + Stores + Reorg + Compute + Copies + Scalar + LoopCtl +
           CallRet;
  }

  /// Operations per datum for a loop producing \p Datums elements. NaN
  /// when no data was produced: an empty loop has no meaningful OPD, and
  /// returning 0.0 would make it look infinitely efficient in aggregates.
  /// Consumers that average OPDs must skip NaN explicitly (the harness,
  /// the fuzzer's metrics, and obs::Registry::observe all do).
  double opd(int64_t Datums) const {
    return Datums > 0 ? static_cast<double>(total()) /
                            static_cast<double>(Datums)
                      : std::numeric_limits<double>::quiet_NaN();
  }

  OpCounts &operator+=(const OpCounts &O);

  /// Adds \p O scaled by \p N to every bucket — how the decoded engine
  /// batches steady-state accounting (static per-iteration counts times
  /// the iteration count).
  OpCounts &addScaled(const OpCounts &O, int64_t N);

  bool operator==(const OpCounts &O) const {
    return Loads == O.Loads && Stores == O.Stores && Reorg == O.Reorg &&
           Compute == O.Compute && Copies == O.Copies && Scalar == O.Scalar &&
           LoopCtl == O.LoopCtl && CallRet == O.CallRet;
  }
};

/// Per-instruction execution counts, attributed to the program section the
/// instruction lives in — the steady-vs-prologue/epilogue attribution the
/// observability layer reports. Index K counts how many times instruction
/// K of that block executed (predicated-off instructions are not counted).
struct PCProfile {
  std::vector<int64_t> Setup;
  std::vector<int64_t> Body;
  std::vector<int64_t> Epilogue;

  bool enabled() const {
    return !Setup.empty() || !Body.empty() || !Epilogue.empty();
  }
};

/// Execution statistics beyond raw op counts.
struct ExecStats {
  OpCounts Counts;
  int64_t SteadyIterations = 0;
  /// Dynamic loads per (array, aligned chunk address); lets tests verify
  /// the paper's never-load-twice guarantee.
  std::map<std::pair<const ir::Array *, int64_t>, int64_t> ChunkLoads;
  /// Dynamic stores per (array, aligned chunk address); with ChunkLoads
  /// this forms the per-(array, chunk) access heatmap.
  std::map<std::pair<const ir::Array *, int64_t>, int64_t> ChunkStores;
  /// Per-VInst-PC execution counts; populated by the reference
  /// interpreter always and by the decoded engine under
  /// ExecOptions::TrackPCCounts.
  PCProfile PCCounts;
};

/// Executes \p P over \p Mem and returns the statistics.
///
/// Programs must pass vir::verifyProgram first; the machine still checks
/// memory bounds and operand ranges with assertions.
ExecStats runProgram(const vir::VProgram &P, const MemoryLayout &Layout,
                     Memory &Mem);

} // namespace sim
} // namespace simdize

#endif // SIMDIZE_SIM_MACHINE_H
