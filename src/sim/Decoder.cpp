//===- sim/Decoder.cpp ----------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "sim/Decoder.h"

#include "ir/Array.h"
#include "sim/Memory.h"
#include "simdize/Target.h"
#include "support/Debug.h"
#include "support/MathExtras.h"

#include <array>
#include <cstring>

using namespace simdize;
using namespace simdize::sim;
using namespace simdize::sim::detail;
using namespace simdize::vir;

//===----------------------------------------------------------------------===//
// Specialized vector kernels
//===----------------------------------------------------------------------===//

namespace {

constexpr unsigned MaxVectorLen = Target::MaxVectorLen;
using VectorValue = std::array<uint8_t, MaxVectorLen>;

/// Lane-typed element-wise kernel. \p U is the unsigned lane type (wrapping
/// +,-,*,&,|,^) and \p S its signed counterpart (ordered min/max, matching
/// the sign-extended comparisons of the reference interpreter). memcpy'd
/// lane access keeps strict aliasing intact; the host is little-endian, the
/// same byte order the reference engine assembles lanes in.
template <typename U, typename S, ir::BinOpKind Kind>
void binOpKernel(uint8_t *Dst, const uint8_t *A, const uint8_t *B,
                 unsigned VectorLen) {
  const unsigned Lanes = VectorLen / sizeof(U);
  for (unsigned Lane = 0; Lane < Lanes; ++Lane) {
    U LHS, RHS, Res;
    std::memcpy(&LHS, A + Lane * sizeof(U), sizeof(U));
    std::memcpy(&RHS, B + Lane * sizeof(U), sizeof(U));
    if constexpr (Kind == ir::BinOpKind::Add)
      Res = static_cast<U>(LHS + RHS);
    else if constexpr (Kind == ir::BinOpKind::Sub)
      Res = static_cast<U>(LHS - RHS);
    else if constexpr (Kind == ir::BinOpKind::Mul)
      Res = static_cast<U>(LHS * RHS);
    else if constexpr (Kind == ir::BinOpKind::Min)
      Res = static_cast<U>(static_cast<S>(LHS) < static_cast<S>(RHS) ? LHS
                                                                     : RHS);
    else if constexpr (Kind == ir::BinOpKind::Max)
      Res = static_cast<U>(static_cast<S>(LHS) > static_cast<S>(RHS) ? LHS
                                                                     : RHS);
    else if constexpr (Kind == ir::BinOpKind::And)
      Res = static_cast<U>(LHS & RHS);
    else if constexpr (Kind == ir::BinOpKind::Or)
      Res = static_cast<U>(LHS | RHS);
    else
      Res = static_cast<U>(LHS ^ RHS);
    std::memcpy(Dst + Lane * sizeof(U), &Res, sizeof(U));
  }
}

template <typename U, typename S>
BinOpKernel kernelForKind(ir::BinOpKind Kind) {
  switch (Kind) {
  case ir::BinOpKind::Add:
    return binOpKernel<U, S, ir::BinOpKind::Add>;
  case ir::BinOpKind::Sub:
    return binOpKernel<U, S, ir::BinOpKind::Sub>;
  case ir::BinOpKind::Mul:
    return binOpKernel<U, S, ir::BinOpKind::Mul>;
  case ir::BinOpKind::Min:
    return binOpKernel<U, S, ir::BinOpKind::Min>;
  case ir::BinOpKind::Max:
    return binOpKernel<U, S, ir::BinOpKind::Max>;
  case ir::BinOpKind::And:
    return binOpKernel<U, S, ir::BinOpKind::And>;
  case ir::BinOpKind::Or:
    return binOpKernel<U, S, ir::BinOpKind::Or>;
  case ir::BinOpKind::Xor:
    return binOpKernel<U, S, ir::BinOpKind::Xor>;
  }
  simdize_unreachable("unknown vector binop kind");
}

BinOpKernel selectKernel(ir::BinOpKind Kind, unsigned ElemSize) {
  switch (ElemSize) {
  case 1:
    return kernelForKind<uint8_t, int8_t>(Kind);
  case 2:
    return kernelForKind<uint16_t, int16_t>(Kind);
  case 4:
    return kernelForKind<uint32_t, int32_t>(Kind);
  }
  simdize_unreachable("unsupported lane width");
}

/// Per-lane signed compare producing an all-ones / all-zeros lane mask,
/// matching the reference interpreter's VCmp. Same signature as binOpKernel
/// so a vcmp decodes to DKind::BinOp with a compare kernel.
template <typename U, typename S, vir::SCmpKind Kind>
void cmpKernel(uint8_t *Dst, const uint8_t *A, const uint8_t *B,
               unsigned VectorLen) {
  const unsigned Lanes = VectorLen / sizeof(U);
  for (unsigned Lane = 0; Lane < Lanes; ++Lane) {
    U LHSBits, RHSBits;
    std::memcpy(&LHSBits, A + Lane * sizeof(U), sizeof(U));
    std::memcpy(&RHSBits, B + Lane * sizeof(U), sizeof(U));
    S LHS = static_cast<S>(LHSBits);
    S RHS = static_cast<S>(RHSBits);
    bool Taken;
    if constexpr (Kind == vir::SCmpKind::LT)
      Taken = LHS < RHS;
    else if constexpr (Kind == vir::SCmpKind::LE)
      Taken = LHS <= RHS;
    else if constexpr (Kind == vir::SCmpKind::GT)
      Taken = LHS > RHS;
    else if constexpr (Kind == vir::SCmpKind::GE)
      Taken = LHS >= RHS;
    else if constexpr (Kind == vir::SCmpKind::EQ)
      Taken = LHS == RHS;
    else
      Taken = LHS != RHS;
    U Res = Taken ? static_cast<U>(~static_cast<U>(0)) : static_cast<U>(0);
    std::memcpy(Dst + Lane * sizeof(U), &Res, sizeof(U));
  }
}

template <typename U, typename S>
BinOpKernel cmpKernelForKind(vir::SCmpKind Kind) {
  switch (Kind) {
  case vir::SCmpKind::LT:
    return cmpKernel<U, S, vir::SCmpKind::LT>;
  case vir::SCmpKind::LE:
    return cmpKernel<U, S, vir::SCmpKind::LE>;
  case vir::SCmpKind::GT:
    return cmpKernel<U, S, vir::SCmpKind::GT>;
  case vir::SCmpKind::GE:
    return cmpKernel<U, S, vir::SCmpKind::GE>;
  case vir::SCmpKind::EQ:
    return cmpKernel<U, S, vir::SCmpKind::EQ>;
  case vir::SCmpKind::NE:
    return cmpKernel<U, S, vir::SCmpKind::NE>;
  }
  simdize_unreachable("unknown vector compare kind");
}

BinOpKernel selectCmpKernel(vir::SCmpKind Kind, unsigned ElemSize) {
  switch (ElemSize) {
  case 1:
    return cmpKernelForKind<uint8_t, int8_t>(Kind);
  case 2:
    return cmpKernelForKind<uint16_t, int16_t>(Kind);
  case 4:
    return cmpKernelForKind<uint32_t, int32_t>(Kind);
  }
  simdize_unreachable("unsupported lane width");
}

} // namespace

//===----------------------------------------------------------------------===//
// Decoding
//===----------------------------------------------------------------------===//

uint32_t DecodedProgram::constSlot(int64_t Value) {
  for (auto [V, Slot] : ConstSlots)
    if (V == Value)
      return Slot;
  uint32_t Slot = NumSlots++;
  ConstSlots.emplace_back(Value, Slot);
  InitialBindings.emplace_back(Slot, Value);
  return Slot;
}

uint32_t DecodedProgram::slotOf(const ScalarOperand &Op) {
  return Op.IsReg ? Op.Reg.Id : constSlot(Op.Imm);
}

DInst DecodedProgram::decodeInst(const VInst &I, const MemoryLayout &Layout) {
  DInst D;
  D.Category = I.category();
  if (I.Predicate)
    D.Pred = static_cast<int32_t>(I.Predicate->Id);

  auto decodeAddr = [&](const Address &A) {
    int64_t D_ = A.Base->getElemSize();
    if (A.Index) {
      D.AddrBase = Layout.baseOf(A.Base) + A.ElemOffset * D_;
      D.Idx = A.Index->Id;
    } else {
      D.AddrBase =
          Layout.baseOf(A.Base) + (A.ConstIndex + A.ElemOffset) * D_;
      D.Idx = constSlot(0);
    }
    D.Scale = D_;
    D.Base = A.Base;
  };

  switch (I.Op) {
  case VOpcode::VLoad:
    D.Kind = DKind::Load;
    D.VDst = I.VDst.Id;
    decodeAddr(I.Addr);
    break;
  case VOpcode::VStore:
    D.Kind = DKind::Store;
    D.VSrc1 = I.VSrc1.Id;
    decodeAddr(I.Addr);
    break;
  case VOpcode::VSplat:
    D.Kind = DKind::Splat;
    D.VDst = I.VDst.Id;
    D.SOp1 = slotOf(I.SOp1);
    D.ElemSize = static_cast<uint8_t>(I.ElemSize);
    break;
  case VOpcode::VShiftPair:
    D.Kind = DKind::ShiftPair;
    D.VDst = I.VDst.Id;
    D.VSrc1 = I.VSrc1.Id;
    D.VSrc2 = I.VSrc2.Id;
    D.SOp1 = slotOf(I.SOp1);
    break;
  case VOpcode::VSplice:
    D.Kind = DKind::Splice;
    D.VDst = I.VDst.Id;
    D.VSrc1 = I.VSrc1.Id;
    D.VSrc2 = I.VSrc2.Id;
    D.SOp1 = slotOf(I.SOp1);
    break;
  case VOpcode::VBinOp:
    D.Kind = DKind::BinOp;
    D.VDst = I.VDst.Id;
    D.VSrc1 = I.VSrc1.Id;
    D.VSrc2 = I.VSrc2.Id;
    D.Kernel = selectKernel(I.VectorOp, I.ElemSize);
    break;
  case VOpcode::VCmp:
    D.Kind = DKind::BinOp;
    D.VDst = I.VDst.Id;
    D.VSrc1 = I.VSrc1.Id;
    D.VSrc2 = I.VSrc2.Id;
    D.Kernel = selectCmpKernel(I.CmpOp, I.ElemSize);
    break;
  case VOpcode::VSelect:
    D.Kind = DKind::Select;
    D.VDst = I.VDst.Id;
    D.VSrc1 = I.VSrc1.Id;
    D.VSrc2 = I.VSrc2.Id;
    D.VSrc3 = I.VSrc3.Id;
    break;
  case VOpcode::VCopy:
    D.Kind = DKind::Copy;
    D.VDst = I.VDst.Id;
    D.VSrc1 = I.VSrc1.Id;
    break;
  case VOpcode::SConst:
    D.Kind = DKind::SSet;
    D.SDst = I.SDst.Id;
    D.Imm = I.Imm;
    break;
  case VOpcode::SBase:
    // The whole point of decoding: the base address is a constant of the
    // (program, layout) pair.
    D.Kind = DKind::SSet;
    D.SDst = I.SDst.Id;
    D.Imm = Layout.baseOf(I.Addr.Base);
    break;
  case VOpcode::SBinOp:
    D.Kind = DKind::SBinOp;
    D.SDst = I.SDst.Id;
    D.SOp1 = slotOf(I.SOp1);
    D.SOp2 = slotOf(I.SOp2);
    D.ScalarOp = I.ScalarOp;
    break;
  case VOpcode::SCmp:
    D.Kind = DKind::SCmp;
    D.SDst = I.SDst.Id;
    D.SOp1 = slotOf(I.SOp1);
    D.SOp2 = slotOf(I.SOp2);
    D.CmpOp = I.CmpOp;
    break;
  }
  return D;
}

void DecodedProgram::decodeBlock(const Block &B, const MemoryLayout &Layout,
                                 DBlock &Out) {
  Out.Insts.reserve(B.size());
  for (const VInst &I : B) {
    Out.Insts.push_back(decodeInst(I, Layout));
    Out.HasPredicated |= Out.Insts.back().Pred >= 0;
    switch (Out.Insts.back().Category) {
    case OpCategory::Load:
      ++Out.StaticCounts.Loads;
      break;
    case OpCategory::Store:
      ++Out.StaticCounts.Stores;
      break;
    case OpCategory::Reorg:
      ++Out.StaticCounts.Reorg;
      break;
    case OpCategory::Compute:
      ++Out.StaticCounts.Compute;
      break;
    case OpCategory::Copy:
      ++Out.StaticCounts.Copies;
      break;
    case OpCategory::Scalar:
      ++Out.StaticCounts.Scalar;
      break;
    }
  }
}

DecodedProgram::DecodedProgram(const VProgram &P, const MemoryLayout &Layout)
    : VectorLen(P.getVectorLen()), NumVRegs(P.getNumVRegs()),
      NumSlots(P.getNumSRegs()), IndexSlot(P.getIndexReg().Id),
      LoopStep(P.getLoopStep()) {
  assert(P.getVectorLen() <= MaxVectorLen && "vector register too wide");
  assert(Layout.getVectorLen() == P.getVectorLen() &&
         "layout built for a different vector length");

  // Function-argument bindings (they cost nothing, as in the reference).
  if (P.hasTripCountParam())
    InitialBindings.emplace_back(P.getTripCountParam().Id,
                                 P.getTripCountValue());
  for (auto [Reg, Value] : P.getScalarParams())
    InitialBindings.emplace_back(Reg.Id, Value);

  decodeBlock(P.getSetup(), Layout, Setup);
  decodeBlock(P.getBody(), Layout, Body);
  decodeBlock(P.getEpilogue(), Layout, Epilogue);

  LBSlot = slotOf(P.getLowerBound());
  UBSlot = slotOf(P.getUpperBound());
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

namespace simdize {
namespace sim {

/// One run of a decoded program. Count selects per-instruction accounting
/// (needed for predicated blocks and the one-shot setup/epilogue); Track
/// selects exact chunk-load provenance. Both are template parameters so the
/// steady-state fast path carries neither.
class DecodedRunner {
public:
  DecodedRunner(const DecodedProgram &DP, Memory &Mem)
      : DP(DP), Mem(Mem), VRegs(DP.NumVRegs), SRegs(DP.NumSlots, 0) {}

  ExecStats run(const ExecOptions &Opts) {
    Stats.Counts.CallRet = 2; // One call + return per program (Sec. 5.3).

    for (auto [Slot, Value] : DP.InitialBindings)
      SRegs[Slot] = Value;

    if (Opts.TrackPCCounts) {
      Stats.PCCounts.Setup.assign(DP.Setup.Insts.size(), 0);
      Stats.PCCounts.Body.assign(DP.Body.Insts.size(), 0);
      Stats.PCCounts.Epilogue.assign(DP.Epilogue.Insts.size(), 0);
      if (Opts.TrackChunkLoads)
        runBlocks<true, true>();
      else
        runBlocks<false, true>();
    } else if (Opts.TrackChunkLoads) {
      runBlocks<true, false>();
    } else {
      runBlocks<false, false>();
    }
    return std::move(Stats);
  }

private:
  template <bool Track, bool Prof> void runBlocks() {
    // Setup and epilogue run once: per-instruction accounting is free
    // there, and they are where predicated instructions live.
    execBlock<true, Track, Prof>(DP.Setup, Stats.PCCounts.Setup.data());

    int64_t I = SRegs[DP.LBSlot];
    const int64_t UB = SRegs[DP.UBSlot];
    const int64_t Step = DP.LoopStep;
    int64_t Iters = 0;
    if (DP.Body.HasPredicated) {
      for (; I < UB; I += Step) {
        SRegs[DP.IndexSlot] = I;
        execBlock<true, Track, Prof>(DP.Body, Stats.PCCounts.Body.data());
        ++Iters;
      }
    } else {
      // Fast path: accounting batched — one multiply below replaces two
      // counter updates per executed instruction. Profiling stays batched
      // too: with no predication every body instruction executes exactly
      // once per iteration, so its count is simply Iters (filled below).
      for (; I < UB; I += Step) {
        SRegs[DP.IndexSlot] = I;
        execBlock<false, Track, false>(DP.Body, nullptr);
        ++Iters;
      }
      Stats.Counts.addScaled(DP.Body.StaticCounts, Iters);
      if constexpr (Prof)
        for (int64_t &Count : Stats.PCCounts.Body)
          Count = Iters;
    }
    Stats.SteadyIterations = Iters;
    Stats.Counts.LoopCtl += 2 * Iters; // Counter update + branch.

    // The epilogue sees the first unexecuted counter value.
    SRegs[DP.IndexSlot] = I;
    execBlock<true, Track, Prof>(DP.Epilogue, Stats.PCCounts.Epilogue.data());
  }

  void charge(const DInst &I) {
    switch (I.Category) {
    case OpCategory::Load:
      ++Stats.Counts.Loads;
      break;
    case OpCategory::Store:
      ++Stats.Counts.Stores;
      break;
    case OpCategory::Reorg:
      ++Stats.Counts.Reorg;
      break;
    case OpCategory::Compute:
      ++Stats.Counts.Compute;
      break;
    case OpCategory::Copy:
      ++Stats.Counts.Copies;
      break;
    case OpCategory::Scalar:
      ++Stats.Counts.Scalar;
      break;
    }
  }

  template <bool Count, bool Track, bool Prof>
  void execBlock(const DBlock &B, int64_t *Prof_) {
    const int64_t V = DP.VectorLen;
    for (size_t Pc = 0, N = B.Insts.size(); Pc < N; ++Pc) {
      const DInst &I = B.Insts[Pc];
      if (I.Pred >= 0 && SRegs[static_cast<uint32_t>(I.Pred)] == 0)
        continue;
      if constexpr (Count)
        charge(I);
      if constexpr (Prof)
        ++Prof_[Pc];

      switch (I.Kind) {
      case DKind::Load: {
        int64_t Chunk =
            alignDown(I.AddrBase + SRegs[I.Idx] * I.Scale, V);
        assert(Chunk >= 0 && Chunk + V <= Mem.size() &&
               "vload out of bounds");
        std::memcpy(VRegs[I.VDst].data(), Mem.data() + Chunk,
                    static_cast<size_t>(V));
        if constexpr (Track)
          ++Stats.ChunkLoads[{I.Base, Chunk}];
        break;
      }
      case DKind::Store: {
        int64_t Chunk =
            alignDown(I.AddrBase + SRegs[I.Idx] * I.Scale, V);
        assert(Chunk >= 0 && Chunk + V <= Mem.size() &&
               "vstore out of bounds");
        std::memcpy(Mem.data() + Chunk, VRegs[I.VSrc1].data(),
                    static_cast<size_t>(V));
        if constexpr (Track)
          ++Stats.ChunkStores[{I.Base, Chunk}];
        break;
      }
      case DKind::Splat: {
        int64_t Value = SRegs[I.SOp1];
        VectorValue &Dst = VRegs[I.VDst];
        for (int64_t Byte = 0; Byte < V; ++Byte)
          Dst[static_cast<size_t>(Byte)] = static_cast<uint8_t>(
              static_cast<uint64_t>(Value) >> (8 * (Byte % I.ElemSize)));
        break;
      }
      case DKind::ShiftPair: {
        int64_t Shift = SRegs[I.SOp1];
        assert(Shift >= 0 && Shift <= V &&
               "vshiftpair amount outside [0, V]");
        uint8_t Concat[2 * MaxVectorLen];
        std::memcpy(Concat, VRegs[I.VSrc1].data(), static_cast<size_t>(V));
        std::memcpy(Concat + V, VRegs[I.VSrc2].data(),
                    static_cast<size_t>(V));
        std::memcpy(VRegs[I.VDst].data(), Concat + Shift,
                    static_cast<size_t>(V));
        break;
      }
      case DKind::Splice: {
        int64_t Point = SRegs[I.SOp1];
        assert(Point >= 0 && Point <= V && "vsplice point outside [0, V]");
        VectorValue Out = VRegs[I.VSrc2];
        std::memcpy(Out.data(), VRegs[I.VSrc1].data(),
                    static_cast<size_t>(Point));
        VRegs[I.VDst] = Out;
        break;
      }
      case DKind::BinOp:
        I.Kernel(VRegs[I.VDst].data(), VRegs[I.VSrc1].data(),
                 VRegs[I.VSrc2].data(), DP.VectorLen);
        break;
      case DKind::Select: {
        const VectorValue &Mask = VRegs[I.VSrc1];
        const VectorValue &IfSet = VRegs[I.VSrc2];
        const VectorValue &IfClear = VRegs[I.VSrc3];
        VectorValue Out;
        for (int64_t Byte = 0; Byte < V; ++Byte) {
          size_t Idx = static_cast<size_t>(Byte);
          Out[Idx] = static_cast<uint8_t>((IfSet[Idx] & Mask[Idx]) |
                                          (IfClear[Idx] & ~Mask[Idx]));
        }
        VRegs[I.VDst] = Out;
        break;
      }
      case DKind::Copy:
        VRegs[I.VDst] = VRegs[I.VSrc1];
        break;
      case DKind::SSet:
        SRegs[I.SDst] = I.Imm;
        break;
      case DKind::SBinOp: {
        int64_t LHS = SRegs[I.SOp1];
        int64_t RHS = SRegs[I.SOp2];
        switch (I.ScalarOp) {
        case SBinOpKind::Add:
          SRegs[I.SDst] = LHS + RHS;
          break;
        case SBinOpKind::Sub:
          SRegs[I.SDst] = LHS - RHS;
          break;
        case SBinOpKind::Mul:
          SRegs[I.SDst] = LHS * RHS;
          break;
        case SBinOpKind::And:
          SRegs[I.SDst] = LHS & RHS;
          break;
        case SBinOpKind::Mod:
          assert(RHS > 0 && "mod by non-positive value");
          SRegs[I.SDst] = nonNegMod(LHS, RHS);
          break;
        }
        break;
      }
      case DKind::SCmp: {
        int64_t LHS = SRegs[I.SOp1];
        int64_t RHS = SRegs[I.SOp2];
        bool Res = false;
        switch (I.CmpOp) {
        case SCmpKind::LT:
          Res = LHS < RHS;
          break;
        case SCmpKind::LE:
          Res = LHS <= RHS;
          break;
        case SCmpKind::GT:
          Res = LHS > RHS;
          break;
        case SCmpKind::GE:
          Res = LHS >= RHS;
          break;
        case SCmpKind::EQ:
          Res = LHS == RHS;
          break;
        case SCmpKind::NE:
          Res = LHS != RHS;
          break;
        }
        SRegs[I.SDst] = Res ? 1 : 0;
        break;
      }
      }
    }
  }

  const DecodedProgram &DP;
  Memory &Mem;
  std::vector<VectorValue> VRegs;
  std::vector<int64_t> SRegs;
  ExecStats Stats;
};

} // namespace sim
} // namespace simdize

ExecStats sim::runDecoded(const DecodedProgram &DP, Memory &Mem,
                          const ExecOptions &Opts) {
  return DecodedRunner(DP, Mem).run(Opts);
}
