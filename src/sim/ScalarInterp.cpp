//===- sim/ScalarInterp.cpp -----------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "sim/ScalarInterp.h"

#include "ir/Loop.h"
#include "sim/Memory.h"
#include "support/Debug.h"

using namespace simdize;
using namespace simdize::sim;

namespace {

/// Sign-extends \p Value from \p ElemSize*8 bits — the value a vector
/// lane of that width would hold.
int64_t truncToLane(int64_t Value, unsigned ElemSize) {
  unsigned Shift = 64 - 8 * ElemSize;
  return static_cast<int64_t>(static_cast<uint64_t>(Value) << Shift) >>
         Shift;
}

/// Evaluates \p E for loop iteration \p I, truncating to the lane width
/// \p D after every operation so the result matches the vector unit's
/// lane arithmetic exactly. Truncation commutes with +, -, *, and the
/// bitwise operations, but not with min/max, so it must happen at each
/// step, not only at the store.
int64_t evalExpr(const ir::Expr &E, int64_t I, const MemoryLayout &Layout,
                 const Memory &Mem, unsigned D) {
  switch (E.getKind()) {
  case ir::ExprKind::Splat:
    return truncToLane(ir::cast<ir::SplatExpr>(E).getValue(), D);
  case ir::ExprKind::Param:
    return truncToLane(
        ir::cast<ir::ParamExpr>(E).getParam()->getActualValue(), D);
  case ir::ExprKind::ArrayRef: {
    const auto &Ref = ir::cast<ir::ArrayRefExpr>(E);
    const ir::Array *A = Ref.getArray();
    int64_t Addr =
        Layout.baseOf(A) + (I + Ref.getOffset()) * A->getElemSize();
    return Mem.readElem(Addr, A->getElemSize());
  }
  case ir::ExprKind::BinOp: {
    const auto &BO = ir::cast<ir::BinOpExpr>(E);
    int64_t L = evalExpr(BO.getLHS(), I, Layout, Mem, D);
    int64_t R = evalExpr(BO.getRHS(), I, Layout, Mem, D);
    switch (BO.getOp()) {
    case ir::BinOpKind::Add:
      return truncToLane(static_cast<int64_t>(static_cast<uint64_t>(L) +
                                              static_cast<uint64_t>(R)),
                         D);
    case ir::BinOpKind::Sub:
      return truncToLane(static_cast<int64_t>(static_cast<uint64_t>(L) -
                                              static_cast<uint64_t>(R)),
                         D);
    case ir::BinOpKind::Mul:
      return truncToLane(static_cast<int64_t>(static_cast<uint64_t>(L) *
                                              static_cast<uint64_t>(R)),
                         D);
    case ir::BinOpKind::Min:
      // Loads sign-extend, so 64-bit signed comparison matches the lane
      // comparison of the vector unit.
      return L < R ? L : R;
    case ir::BinOpKind::Max:
      return L > R ? L : R;
    case ir::BinOpKind::And:
      return L & R;
    case ir::BinOpKind::Or:
      return L | R;
    case ir::BinOpKind::Xor:
      return L ^ R;
    }
    simdize_unreachable("unknown binop kind");
  }
  }
  simdize_unreachable("unknown expression kind");
}

/// Applies an associative-commutative reduction step, truncating to the
/// lane width exactly like evalExpr's binop handling.
int64_t applyReduceOp(ir::BinOpKind Op, int64_t L, int64_t R, unsigned D) {
  switch (Op) {
  case ir::BinOpKind::Add:
    return truncToLane(static_cast<int64_t>(static_cast<uint64_t>(L) +
                                            static_cast<uint64_t>(R)),
                       D);
  case ir::BinOpKind::Mul:
    return truncToLane(static_cast<int64_t>(static_cast<uint64_t>(L) *
                                            static_cast<uint64_t>(R)),
                       D);
  case ir::BinOpKind::Min:
    return L < R ? L : R;
  case ir::BinOpKind::Max:
    return L > R ? L : R;
  case ir::BinOpKind::And:
    return L & R;
  case ir::BinOpKind::Or:
    return L | R;
  case ir::BinOpKind::Xor:
    return L ^ R;
  case ir::BinOpKind::Sub:
    break;
  }
  simdize_unreachable("non-associative reduction op");
}

/// Evaluates an If statement's guard for iteration \p I.
bool evalGuard(const ir::Stmt &S, int64_t I, const MemoryLayout &Layout,
               const Memory &Mem, unsigned D) {
  int64_t L = evalExpr(S.getGuardLHS(), I, Layout, Mem, D);
  int64_t R = evalExpr(S.getGuardRHS(), I, Layout, Mem, D);
  switch (S.getCmpKind()) {
  case ir::CmpKind::LT:
    return L < R;
  case ir::CmpKind::LE:
    return L <= R;
  case ir::CmpKind::GT:
    return L > R;
  case ir::CmpKind::GE:
    return L >= R;
  case ir::CmpKind::EQ:
    return L == R;
  case ir::CmpKind::NE:
    return L != R;
  }
  simdize_unreachable("unknown comparison kind");
}

} // namespace

void sim::runScalarLoop(const ir::Loop &L, const MemoryLayout &Layout,
                        Memory &Mem) {
  unsigned D = L.getElemSize();
  for (int64_t I = 0; I < L.getUpperBound(); ++I) {
    for (const auto &S : L.getStmts()) {
      const ir::Array *A = S->getStoreArray();
      switch (S->getKind()) {
      case ir::StmtKind::Assign: {
        int64_t Value = evalExpr(S->getRHS(), I, Layout, Mem, D);
        int64_t Addr =
            Layout.baseOf(A) + (I + S->getStoreOffset()) * A->getElemSize();
        Mem.writeElem(Addr, A->getElemSize(), Value);
        break;
      }
      case ir::StmtKind::If: {
        if (!evalGuard(*S, I, Layout, Mem, D))
          break;
        int64_t Value = evalExpr(S->getRHS(), I, Layout, Mem, D);
        int64_t Addr =
            Layout.baseOf(A) + (I + S->getStoreOffset()) * A->getElemSize();
        Mem.writeElem(Addr, A->getElemSize(), Value);
        break;
      }
      case ir::StmtKind::Reduce: {
        int64_t Value = evalExpr(S->getRHS(), I, Layout, Mem, D);
        int64_t Addr =
            Layout.baseOf(A) + S->getStoreOffset() * A->getElemSize();
        int64_t Old = Mem.readElem(Addr, A->getElemSize());
        Mem.writeElem(Addr, A->getElemSize(),
                      applyReduceOp(S->getReduceOp(), Old, Value, D));
        break;
      }
      }
    }
  }
}
