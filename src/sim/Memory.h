//===- sim/Memory.h - Simulated byte-addressable memory ------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated machine's memory, plus the layout policy that places each
/// array at a base address realizing exactly the alignment its ir::Array
/// declares (base mod V == alignment). Arrays are separated by guard gaps
/// of at least 2V bytes so that the truncating vector loads and the
/// splice-back partial stores of the prologue/epilogue can never touch a
/// neighboring array — mirroring the padding a real runtime would ensure.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SIM_MEMORY_H
#define SIMDIZE_SIM_MEMORY_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace simdize {

namespace ir {
class Array;
class Loop;
} // namespace ir

namespace sim {

/// Assigns a base byte address to every array of a loop.
class MemoryLayout {
public:
  /// Places the arrays of \p L for vector length \p VectorLen.
  MemoryLayout(const ir::Loop &L, unsigned VectorLen);

  /// Base byte address of \p A. The array must belong to the loop this
  /// layout was built from.
  int64_t baseOf(const ir::Array *A) const;

  /// Whether every array of \p L was placed by this layout — i.e. the
  /// layout was built from this exact loop instance, not merely from an
  /// identically-printed one. Content-addressed caches use this to decide
  /// when a shared image must be rebound before use.
  bool covers(const ir::Loop &L) const;

  /// Total bytes of memory required, including guard gaps.
  int64_t getTotalSize() const { return TotalSize; }

  unsigned getVectorLen() const { return VectorLen; }

private:
  std::unordered_map<const ir::Array *, int64_t> BaseAddr;
  int64_t TotalSize = 0;
  unsigned VectorLen;
};

/// A flat byte-addressable memory image.
class Memory {
public:
  explicit Memory(int64_t Size) : Bytes(static_cast<size_t>(Size), 0) {}

  int64_t size() const { return static_cast<int64_t>(Bytes.size()); }

  uint8_t *data() { return Bytes.data(); }
  const uint8_t *data() const { return Bytes.data(); }

  /// Reads a signed element of \p ElemSize bytes at byte address \p Addr
  /// (little-endian), sign-extended to 64 bits.
  int64_t readElem(int64_t Addr, unsigned ElemSize) const;

  /// Writes the low \p ElemSize bytes of \p Value at byte address \p Addr.
  void writeElem(int64_t Addr, unsigned ElemSize, int64_t Value);

  /// Fills the image with a deterministic pseudo-random pattern seeded by
  /// \p Seed; used so the scalar and vector executions start from identical,
  /// non-trivial contents.
  void fillPattern(uint64_t Seed);

  bool operator==(const Memory &O) const { return Bytes == O.Bytes; }

private:
  std::vector<uint8_t> Bytes;
};

} // namespace sim
} // namespace simdize

#endif // SIMDIZE_SIM_MEMORY_H
