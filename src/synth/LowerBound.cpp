//===- synth/LowerBound.cpp -----------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "synth/LowerBound.h"

#include "ir/Loop.h"
#include "support/MathExtras.h"

#include "support/Format.h"

#include <set>
#include <string>

using namespace simdize;
using namespace simdize::synth;

namespace {

/// Identity of a load stream for reuse purposes: references of one array
/// whose element offsets are congruent modulo B read the same sequence of
/// aligned chunks (with a fixed chunk-index shift when the alignment is
/// known; with exactly equal addresses when congruent and unknown).
struct StreamId {
  const ir::Array *Arr;
  int64_t ChunkClass;

  bool operator<(const StreamId &O) const {
    return Arr != O.Arr ? Arr < O.Arr : ChunkClass < O.ChunkClass;
  }
};

int64_t floorDiv(int64_t Num, int64_t Den) {
  int64_t Q = Num / Den;
  if ((Num % Den != 0) && ((Num < 0) != (Den < 0)))
    --Q;
  return Q;
}

StreamId streamOf(const ir::Array *A, int64_t C, unsigned V) {
  if (A->isAlignmentKnown())
    return {A, floorDiv(A->getAlignment() +
                            C * static_cast<int64_t>(A->getElemSize()),
                        V)};
  // Unknown base: only congruent offsets provably share chunks; classes
  // are distinguished by c*D mod V (shifted so classes never collide with
  // the known-alignment chunk numbering — the Arr pointer already
  // separates them, so plain classes suffice).
  return {A, nonNegMod(C * static_cast<int64_t>(A->getElemSize()), V)};
}

/// Alignment descriptor of an access for distinct-alignment counting:
/// constant value, or a runtime congruence class tag.
std::string alignClassOf(const ir::Array *A, int64_t C, unsigned V) {
  int64_t Scaled = C * static_cast<int64_t>(A->getElemSize());
  if (A->isAlignmentKnown())
    return strf("c%lld", static_cast<long long>(
                             nonNegMod(A->getAlignment() + Scaled, V)));
  return strf("r%p/%lld", static_cast<const void *>(A),
              static_cast<long long>(nonNegMod(Scaled, V)));
}

bool isMisaligned(const ir::Array *A, int64_t C, unsigned V) {
  if (!A->isAlignmentKnown())
    return true; // Must be treated as misaligned.
  return nonNegMod(A->getAlignment() +
                       C * static_cast<int64_t>(A->getElemSize()),
                   V) != 0;
}

} // namespace

LowerBound synth::computeLowerBound(const ir::Loop &L, unsigned VectorLen,
                                    policies::PolicyKind Policy) {
  LowerBound LB;

  // Distinct aligned loads across the whole loop: every expression's
  // references (guards included), plus the implicit reload of an
  // if-converted statement's target stream.
  std::set<StreamId> LoadStreams;
  for (const auto &S : L.getStmts()) {
    S->forEachExpr([&](const ir::Expr &Root) {
      Root.walk([&](const ir::Expr &E) {
        if (const auto *Ref = ir::dyn_cast<ir::ArrayRefExpr>(E))
          LoadStreams.insert(
              streamOf(Ref->getArray(), Ref->getOffset(), VectorLen));
        if (ir::isa<ir::BinOpExpr>(E))
          ++LB.Compute;
      });
    });
    switch (S->getKind()) {
    case ir::StmtKind::Assign:
      ++LB.Stores;
      break;
    case ir::StmtKind::If:
      // One store, the old-value reload, the comparison and the blend.
      ++LB.Stores;
      LoadStreams.insert(
          streamOf(S->getStoreArray(), S->getStoreOffset(), VectorLen));
      LB.Compute += 2;
      break;
    case ir::StmtKind::Reduce:
      // The accumulator lives in a register: no steady-state store, one
      // accumulate per iteration. The read-modify-write is epilogue work.
      ++LB.Compute;
      break;
    }
  }
  LB.DistinctLoads = static_cast<int64_t>(LoadStreams.size());

  if (Policy == policies::PolicyKind::Zero) {
    // Deterministic: one shift per misaligned stream. Load shifts are
    // shared by relatively aligned references of one array (they realign
    // to the same offset 0 from the same offset), so count per distinct
    // stream; store shifts are per statement.
    std::set<StreamId> Misaligned;
    for (const auto &S : L.getStmts()) {
      S->forEachExpr([&](const ir::Expr &Root) {
        Root.walk([&](const ir::Expr &E) {
          if (const auto *Ref = ir::dyn_cast<ir::ArrayRefExpr>(E))
            if (isMisaligned(Ref->getArray(), Ref->getOffset(), VectorLen))
              Misaligned.insert(
                  streamOf(Ref->getArray(), Ref->getOffset(), VectorLen));
        });
      });
      if (S->isIf() &&
          isMisaligned(S->getStoreArray(), S->getStoreOffset(), VectorLen))
        Misaligned.insert(
            streamOf(S->getStoreArray(), S->getStoreOffset(), VectorLen));
    }
    LB.Shifts = static_cast<int64_t>(Misaligned.size());
    for (const auto &S : L.getStmts())
      if (!S->isReduce() &&
          isMisaligned(S->getStoreArray(), S->getStoreOffset(), VectorLen))
        ++LB.Shifts;
    return LB;
  }

  // General minimum: per statement, one fewer shift than distinct access
  // alignments (loads plus the store — for a reduction, the mandated
  // offset-0 accumulation lane in place of a store stream).
  for (const auto &S : L.getStmts()) {
    std::set<std::string> Aligns;
    if (S->isReduce())
      Aligns.insert("c0");
    else
      Aligns.insert(
          alignClassOf(S->getStoreArray(), S->getStoreOffset(), VectorLen));
    S->forEachExpr([&](const ir::Expr &Root) {
      Root.walk([&](const ir::Expr &E) {
        if (const auto *Ref = ir::dyn_cast<ir::ArrayRefExpr>(E))
          Aligns.insert(
              alignClassOf(Ref->getArray(), Ref->getOffset(), VectorLen));
      });
    });
    LB.Shifts += static_cast<int64_t>(Aligns.size()) - 1;
  }
  return LB;
}
