//===- synth/LoopSynth.cpp ------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "synth/LoopSynth.h"

#include "ir/IRBuilder.h"
#include "support/Format.h"
#include "support/MathExtras.h"
#include "support/RNG.h"

#include <set>
#include <vector>

using namespace simdize;
using namespace simdize::synth;

uint64_t synth::benchmarkLoopSeed(uint64_t SuiteSeed, unsigned K) {
  // Decorrelate suite seeds from loop indices with a splitmix64-style mix.
  RNG Rng(SuiteSeed * 0x9e3779b97f4a7c15ULL + K + 1);
  return Rng.next();
}

ir::Loop synth::synthesizeLoop(const SynthParams &Params) {
  RNG Rng(Params.Seed);
  ir::Loop L;
  unsigned V = Params.VectorLen;
  unsigned D = ir::elemSize(Params.Ty);
  unsigned B = V / D;

  // The single, randomly selected alignment the bias pulls toward.
  auto DrawAny = [&]() -> int64_t {
    if (Params.NaturalAlignment)
      return Rng.uniformInt(0, B - 1) * D;
    return Rng.uniformInt(0, V - 1);
  };
  int64_t BiasedAlign = DrawAny();
  auto DrawAlignment = [&]() -> int64_t {
    if (Rng.withProbability(Params.Bias))
      return BiasedAlign;
    return DrawAny();
  };

  // Arrays need to cover every access i + c for i < n and the epilogue's
  // truncated-chunk loads; verifyLoop demands c >= 0 and n - 1 + c within
  // bounds, so size them for the largest possible offset.
  int64_t MaxOffset = Params.MaxExtraOffset + B;
  int64_t ArraySize = Params.TripCount + MaxOffset + 1;

  // Creates an array whose base alignment makes reference [i + C] have the
  // requested stream alignment.
  unsigned NameCounter = 0;
  auto CreateArray = [&](int64_t RefAlign, int64_t C,
                         const char *Prefix) -> ir::Array * {
    int64_t BaseAlign = nonNegMod(RefAlign - C * static_cast<int64_t>(D), V);
    return L.createArray(strf("%s%u", Prefix, NameCounter++), Params.Ty,
                         ArraySize, static_cast<unsigned>(BaseAlign),
                         Params.AlignKnown);
  };

  std::vector<ir::Array *> LoadPool;

  for (unsigned S = 0; S < Params.Statements; ++S) {
    std::set<const ir::Array *> UsedInStmt;

    // Draws one load reference: with probability r a reused pool array (as
    // long as the statement does not reference it yet), else a fresh one.
    auto DrawLoadRef = [&]() -> std::unique_ptr<ir::Expr> {
      int64_t RefAlign = DrawAlignment();
      ir::Array *Arr = nullptr;
      int64_t C = 0;
      if (!LoadPool.empty() && Rng.withProbability(Params.Reuse)) {
        // Up to a few attempts to find one not yet used in this statement.
        for (int Attempt = 0; Attempt < 4 && !Arr; ++Attempt) {
          ir::Array *Candidate = LoadPool[static_cast<size_t>(
              Rng.uniformInt(0, static_cast<int64_t>(LoadPool.size()) - 1))];
          if (!UsedInStmt.count(Candidate))
            Arr = Candidate;
        }
        if (Arr) {
          // The smallest c realizing the requested reference alignment
          // against the fixed base: c = (RefAlign - base) / D (mod B).
          // Using the minimal representative keeps two references with
          // equal alignments on the *same* chunk stream, matching how the
          // Section 5.3 bound counts distinct aligned loads. With
          // byte-granular bases the requested alignment may be
          // unreachable; fall back to a fresh array then.
          int64_t Diff = nonNegMod(RefAlign - Arr->getAlignment(), V);
          if (Diff % D == 0)
            C = Diff / D;
          else
            Arr = nullptr;
        }
      }
      if (!Arr) {
        C = Rng.uniformInt(0, Params.MaxExtraOffset);
        Arr = CreateArray(RefAlign, C, "ld");
        LoadPool.push_back(Arr);
      }
      UsedInStmt.insert(Arr);
      return ir::ref(Arr, C);
    };

    std::unique_ptr<ir::Expr> RHS;
    for (unsigned J = 0; J < Params.LoadsPerStmt; ++J) {
      auto Ref = DrawLoadRef();
      RHS = RHS ? ir::add(std::move(RHS), std::move(Ref)) : std::move(Ref);
    }
    if (!RHS)
      RHS = ir::splat(Rng.uniformInt(-100, 100));

    // The extra draws below are guarded so that disabled axes leave the
    // random stream — and thus every historical seed's loop — untouched.
    if (Params.ReduceProb > 0 && Rng.withProbability(Params.ReduceProb)) {
      // Reductions demand a compile-time, naturally aligned accumulator;
      // the cell index is absolute and the array is never loaded or stored
      // elsewhere (fresh, not pooled).
      static const ir::BinOpKind ReduceOps[] = {
          ir::BinOpKind::Add, ir::BinOpKind::Mul, ir::BinOpKind::Min,
          ir::BinOpKind::Max, ir::BinOpKind::And, ir::BinOpKind::Or,
          ir::BinOpKind::Xor};
      ir::BinOpKind Op = ReduceOps[static_cast<size_t>(
          Rng.uniformInt(0, static_cast<int64_t>(std::size(ReduceOps)) - 1))];
      int64_t AccAlign = Rng.uniformInt(0, B - 1) * D;
      ir::Array *Acc =
          L.createArray(strf("acc%u", NameCounter++), Params.Ty, ArraySize,
                        static_cast<unsigned>(AccAlign), /*AlignKnown=*/true);
      int64_t Cell = Rng.uniformInt(0, MaxOffset);
      L.addReduceStmt(Acc, Cell, Op, std::move(RHS));
      continue;
    }

    // Store arrays are fresh and never loaded (simdizability precondition).
    int64_t StoreC = Rng.uniformInt(0, Params.MaxExtraOffset);
    ir::Array *StoreArr = CreateArray(DrawAlignment(), StoreC, "st");

    if (Params.GuardProb > 0 && Rng.withProbability(Params.GuardProb)) {
      // Guard: drawn reference against a constant or a second reference.
      // Pool draws can never alias the fresh store target, as the verifier
      // requires.
      std::unique_ptr<ir::Expr> GuardLHS = DrawLoadRef();
      std::unique_ptr<ir::Expr> GuardRHS =
          Rng.withProbability(0.5)
              ? DrawLoadRef()
              : std::unique_ptr<ir::Expr>(ir::splat(Rng.uniformInt(-50, 50)));
      static const ir::CmpKind Cmps[] = {ir::CmpKind::LT, ir::CmpKind::LE,
                                         ir::CmpKind::GT, ir::CmpKind::GE,
                                         ir::CmpKind::EQ, ir::CmpKind::NE};
      ir::CmpKind Cmp = Cmps[static_cast<size_t>(
          Rng.uniformInt(0, static_cast<int64_t>(std::size(Cmps)) - 1))];
      L.addIfStmt(StoreArr, StoreC, std::move(RHS), std::move(GuardLHS), Cmp,
                  std::move(GuardRHS));
      continue;
    }

    L.addStmt(StoreArr, StoreC, std::move(RHS));
  }

  L.setUpperBound(Params.TripCount, Params.UBKnown);
  return L;
}
