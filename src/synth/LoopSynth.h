//===- synth/LoopSynth.h - Synthesized loop benchmarks --------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the benchmark generator of Section 5.3: loops synthesized
/// from (l, s, n, b, r) — loads per statement, statement count, trip
/// count, alignment bias, and array reuse ratio. The alignment of each
/// memory reference is drawn randomly with probability b of hitting a
/// single randomly selected biased alignment; every reference inside one
/// statement names a distinct array; with probability r a load reuses an
/// array created earlier (possibly by another statement). Add is the sole
/// arithmetic operation, as in the paper ("all arithmetic operations are
/// essentially the same for alignment handling").
///
/// Generation is fully deterministic in Seed.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SYNTH_LOOPSYNTH_H
#define SIMDIZE_SYNTH_LOOPSYNTH_H

#include "ir/Loop.h"

#include <cstdint>

namespace simdize {
namespace synth {

/// The (l, s, n, b, r) tuple plus the knobs our experiments vary.
struct SynthParams {
  unsigned Statements = 1;     ///< s
  unsigned LoadsPerStmt = 2;   ///< l
  int64_t TripCount = 1000;    ///< n
  double Bias = 0.3;           ///< b, probability of the biased alignment
  double Reuse = 0.3;          ///< r, probability a load reuses an array
  ir::ElemType Ty = ir::ElemType::Int32;
  bool AlignKnown = true;      ///< Compile-time vs. runtime alignment runs.
  bool UBKnown = true;         ///< Compile-time vs. runtime loop bounds.
  uint64_t Seed = 1;

  /// Reference offsets c are drawn from [0, MaxExtraOffset + B); keeping
  /// the range modest keeps array footprints small without losing any
  /// alignment generality.
  unsigned MaxExtraOffset = 4;

  /// When false, array bases land on arbitrary *byte* boundaries instead
  /// of element-size multiples — the Section 7 extension exercised by the
  /// NonNaturalAlign tests.
  bool NaturalAlignment = true;

  /// Probability a statement is generated as a guarded (if-converted)
  /// assignment; the guard compares a drawn reference against another
  /// reference or a constant. 0 disables guards and leaves the random
  /// stream byte-identical to pre-guard generators.
  double GuardProb = 0.0;

  /// Probability a statement is generated as a reduction into a fresh
  /// naturally aligned accumulator array with a compile-time alignment
  /// (the simdizability precondition for reductions). Takes precedence
  /// over GuardProb for the statements it claims.
  double ReduceProb = 0.0;

  /// Vector byte-width V the loop is synthesized for: alignments are drawn
  /// in [0, V), trip counts scale with B = V / D, and array footprints are
  /// sized so every width <= V can compile the loop. A loop synthesized at
  /// the widest width of a sweep is valid at every narrower width (the
  /// layout truncates alignments mod V).
  unsigned VectorLen = 16;
};

/// Generates one loop.
ir::Loop synthesizeLoop(const SynthParams &Params);

/// The seed of the K-th loop of a benchmark ("each benchmark consists of
/// 50 distinct loops with identical (l, s, n, b, r) characteristics").
uint64_t benchmarkLoopSeed(uint64_t SuiteSeed, unsigned K);

} // namespace synth
} // namespace simdize

#endif // SIMDIZE_SYNTH_LOOPSYNTH_H
