//===- synth/LowerBound.h - The paper's per-loop LB cost model ------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lower bound of operations per datum defined in Section 5.3, against
/// which measured simdized code is compared. Per simdized iteration it
/// charges:
///
///  * one vector load per *distinct* 16-byte-aligned load in the loop
///    (references of one array that provably hit the same aligned chunks
///    count once) and one vector store per statement;
///  * the minimum data reorganization: per statement, n-1 vshiftpairs for
///    n distinct access alignments — except under zero-shift, whose shift
///    count is fully deterministic: one per misaligned stream, and with
///    runtime alignments every stream must be treated as misaligned;
///  * the arithmetic operations;
///
/// and explicitly nothing for address computation, constant generation, or
/// loop overhead.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SYNTH_LOWERBOUND_H
#define SIMDIZE_SYNTH_LOWERBOUND_H

#include "policies/ShiftPolicy.h"

#include <cstdint>

namespace simdize {

namespace ir {
class Loop;
} // namespace ir

namespace synth {

/// Per-simdized-iteration lower bound breakdown.
struct LowerBound {
  int64_t DistinctLoads = 0;
  int64_t Stores = 0;
  int64_t Shifts = 0;
  int64_t Compute = 0;

  int64_t totalPerIteration() const {
    return DistinctLoads + Stores + Shifts + Compute;
  }

  /// Operations per datum: per-iteration total over B datums per statement.
  double opd(unsigned BlockingFactor, unsigned Statements) const {
    return static_cast<double>(totalPerIteration()) /
           (static_cast<double>(BlockingFactor) *
            static_cast<double>(Statements));
  }
};

/// Computes the bound for \p L under \p Policy and vector length
/// \p VectorLen. Runtime alignments are read off the loop's arrays.
LowerBound computeLowerBound(const ir::Loop &L, unsigned VectorLen,
                             policies::PolicyKind Policy);

} // namespace synth
} // namespace simdize

#endif // SIMDIZE_SYNTH_LOWERBOUND_H
