//===- lower/simdize_vec.h - Portable AltiVec-style intrinsics shim ------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A plain-C++ model of the AltiVec operations the emitted kernels use
/// (Section 2.2 maps the generic data reorganization operations onto
/// them). Self-contained so that code produced by emitAltiVecKernel
/// compiles and runs anywhere; on a real VMX/AltiVec machine each function
/// corresponds one-to-one to a hardware intrinsic:
///
///   sv_ld / sv_st        vec_ld / vec_st   (addresses truncated to 16)
///   sv_sld<N>            vec_sld           (shift left double, immediate)
///   sv_perm              vec_perm          (indices mod 32)
///   sv_lvsl              vec_lvsl          (load-vector-for-shift-left)
///   sv_sel               vec_sel
///   sv_splat_i8/16/32    vec_splat*
///   sv_add/sub/mul_*     vec_add/vec_sub/vec_mladd-style arithmetic
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_LOWER_SIMDIZE_VEC_H
#define SIMDIZE_LOWER_SIMDIZE_VEC_H

#include <cstdint>
#include <cstring>

/// One 16-byte vector register.
struct sv_t {
  unsigned char B[16];
};

/// Truncating vector load: the low 4 address bits are ignored, exactly
/// like lvx.
inline sv_t sv_ld(const unsigned char *Addr) {
  uintptr_t P = reinterpret_cast<uintptr_t>(Addr) & ~static_cast<uintptr_t>(15);
  sv_t V;
  std::memcpy(V.B, reinterpret_cast<const unsigned char *>(P), 16);
  return V;
}

/// Truncating vector store (stvx).
inline void sv_st(unsigned char *Addr, sv_t V) {
  uintptr_t P = reinterpret_cast<uintptr_t>(Addr) & ~static_cast<uintptr_t>(15);
  std::memcpy(reinterpret_cast<unsigned char *>(P), V.B, 16);
}

/// vec_perm: byte K of the result is byte Sel.B[K] (mod 32) of A ++ B.
inline sv_t sv_perm(sv_t A, sv_t B, sv_t Sel) {
  unsigned char Concat[32];
  std::memcpy(Concat, A.B, 16);
  std::memcpy(Concat + 16, B.B, 16);
  sv_t Out;
  for (int K = 0; K < 16; ++K)
    Out.B[K] = Concat[Sel.B[K] & 31];
  return Out;
}

/// vec_lvsl-style permute-vector constructor: {Shift, Shift+1, ...}.
/// Valid for Shift in [0, 16]; 16 selects the second source whole.
inline sv_t sv_lvsl(long Shift) {
  sv_t Out;
  for (int K = 0; K < 16; ++K)
    Out.B[K] = static_cast<unsigned char>(Shift + K);
  return Out;
}

/// vec_sld: bytes [N, N+16) of A ++ B, immediate N in [0, 16].
template <int N> inline sv_t sv_sld(sv_t A, sv_t B) {
  static_assert(N >= 0 && N <= 16, "shift immediate out of range");
  return sv_perm(A, B, sv_lvsl(N));
}

/// vec_sel: byte-granular here (the emitted masks are byte masks).
inline sv_t sv_sel(sv_t A, sv_t B, sv_t Mask) {
  sv_t Out;
  for (int K = 0; K < 16; ++K)
    Out.B[K] = static_cast<unsigned char>((A.B[K] & ~Mask.B[K]) |
                                          (B.B[K] & Mask.B[K]));
  return Out;
}

/// Splice mask: bytes below Point select the first operand of sv_sel.
inline sv_t sv_splice_mask(long Point) {
  sv_t Out;
  for (int K = 0; K < 16; ++K)
    Out.B[K] = K < Point ? 0x00 : 0xFF;
  return Out;
}

namespace simdize_vec_detail {

template <typename Lane, typename Fn> inline sv_t lanewise(sv_t A, sv_t B,
                                                           Fn F) {
  sv_t Out;
  for (unsigned K = 0; K < 16 / sizeof(Lane); ++K) {
    Lane X, Y;
    std::memcpy(&X, A.B + K * sizeof(Lane), sizeof(Lane));
    std::memcpy(&Y, B.B + K * sizeof(Lane), sizeof(Lane));
    Lane R = F(X, Y);
    std::memcpy(Out.B + K * sizeof(Lane), &R, sizeof(Lane));
  }
  return Out;
}

template <typename Lane> inline sv_t splat(long Value) {
  sv_t Out;
  Lane V = static_cast<Lane>(Value);
  for (unsigned K = 0; K < 16 / sizeof(Lane); ++K)
    std::memcpy(Out.B + K * sizeof(Lane), &V, sizeof(Lane));
  return Out;
}

} // namespace simdize_vec_detail

// Wrap-around lane arithmetic (unsigned lanes give exact two's-complement
// wrap-around).
#define SIMDIZE_VEC_BINOP(NAME, LANE, EXPR)                                  \
  inline sv_t NAME(sv_t A, sv_t B) {                                        \
    return simdize_vec_detail::lanewise<LANE>(                              \
        A, B, [](LANE X, LANE Y) -> LANE { return EXPR; });                 \
  }

SIMDIZE_VEC_BINOP(sv_add_i8, uint8_t, X + Y)
SIMDIZE_VEC_BINOP(sv_sub_i8, uint8_t, X - Y)
SIMDIZE_VEC_BINOP(sv_mul_i8, uint8_t, X *Y)
SIMDIZE_VEC_BINOP(sv_and_i8, uint8_t, X &Y)
SIMDIZE_VEC_BINOP(sv_or_i8, uint8_t, X | Y)
SIMDIZE_VEC_BINOP(sv_xor_i8, uint8_t, X ^ Y)
SIMDIZE_VEC_BINOP(sv_add_i16, uint16_t, X + Y)
SIMDIZE_VEC_BINOP(sv_sub_i16, uint16_t, X - Y)
SIMDIZE_VEC_BINOP(sv_mul_i16, uint16_t, X *Y)
SIMDIZE_VEC_BINOP(sv_and_i16, uint16_t, X &Y)
SIMDIZE_VEC_BINOP(sv_or_i16, uint16_t, X | Y)
SIMDIZE_VEC_BINOP(sv_xor_i16, uint16_t, X ^ Y)
SIMDIZE_VEC_BINOP(sv_add_i32, uint32_t, X + Y)
SIMDIZE_VEC_BINOP(sv_sub_i32, uint32_t, X - Y)
SIMDIZE_VEC_BINOP(sv_mul_i32, uint32_t, X *Y)
SIMDIZE_VEC_BINOP(sv_and_i32, uint32_t, X &Y)
SIMDIZE_VEC_BINOP(sv_or_i32, uint32_t, X | Y)
SIMDIZE_VEC_BINOP(sv_xor_i32, uint32_t, X ^ Y)

// Signed lane comparisons, matching vec_min / vec_max.
SIMDIZE_VEC_BINOP(sv_min_i8, int8_t, X < Y ? X : Y)
SIMDIZE_VEC_BINOP(sv_max_i8, int8_t, X > Y ? X : Y)
SIMDIZE_VEC_BINOP(sv_min_i16, int16_t, X < Y ? X : Y)
SIMDIZE_VEC_BINOP(sv_max_i16, int16_t, X > Y ? X : Y)
SIMDIZE_VEC_BINOP(sv_min_i32, int32_t, X < Y ? X : Y)
SIMDIZE_VEC_BINOP(sv_max_i32, int32_t, X > Y ? X : Y)

// Signed lane compares producing an all-ones / all-zeros lane mask
// (vec_cmpgt-style; the inputs to sv_sel in if-converted kernels).
#define SIMDIZE_VEC_CMP(NAME, OP)                                            \
  SIMDIZE_VEC_BINOP(NAME##_i8, int8_t, X OP Y ? int8_t(-1) : int8_t(0))     \
  SIMDIZE_VEC_BINOP(NAME##_i16, int16_t, X OP Y ? int16_t(-1) : int16_t(0)) \
  SIMDIZE_VEC_BINOP(NAME##_i32, int32_t, X OP Y ? int32_t(-1) : int32_t(0))

SIMDIZE_VEC_CMP(sv_cmp_lt, <)
SIMDIZE_VEC_CMP(sv_cmp_le, <=)
SIMDIZE_VEC_CMP(sv_cmp_gt, >)
SIMDIZE_VEC_CMP(sv_cmp_ge, >=)
SIMDIZE_VEC_CMP(sv_cmp_eq, ==)
SIMDIZE_VEC_CMP(sv_cmp_ne, !=)

#undef SIMDIZE_VEC_CMP
#undef SIMDIZE_VEC_BINOP

inline sv_t sv_splat_i8(long V) { return simdize_vec_detail::splat<uint8_t>(V); }
inline sv_t sv_splat_i16(long V) {
  return simdize_vec_detail::splat<uint16_t>(V);
}
inline sv_t sv_splat_i32(long V) {
  return simdize_vec_detail::splat<uint32_t>(V);
}

#endif // SIMDIZE_LOWER_SIMDIZE_VEC_H
