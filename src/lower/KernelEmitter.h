//===- lower/KernelEmitter.h - Shared kernel-emission scaffolding ---------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backend-independent half of lowering a vir::VProgram to compilable
/// C++: the kernel signature convention, register declarations, parameter
/// binding, the Setup / steady-loop / Epilogue skeleton, scalar-instruction
/// rendering, and predication/comment wrapping. Target backends (the
/// AltiVec shim emitter and the native x86 emitter) subclass this and
/// provide only the vector-instruction selection, so the two emitters
/// cannot drift on the parts that define the ABI.
///
/// Two ABIs are emitted from the same scaffolding:
///
///   void FnName(unsigned char *<array0>, ..., long <param0>, ..., long ub)
///
/// — one byte pointer per array of the loop in declaration order, one
/// `long` per scalar parameter, then the trip count — and, on request, an
/// `extern "C"` memory-image wrapper
///
///   void FnName_image(unsigned char *Image, const long *Args)
///
/// that bakes in the sim::MemoryLayout base offsets and forwards
/// Args = [<param0>, ..., ub], so a dlopen'd kernel can run directly on a
/// dumped sim::Memory image.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_LOWER_KERNELEMITTER_H
#define SIMDIZE_LOWER_KERNELEMITTER_H

#include "vir/VInst.h"

#include <cstdint>
#include <string>
#include <vector>

namespace simdize {

namespace ir {
class Loop;
} // namespace ir
namespace vir {
class VProgram;
} // namespace vir

namespace lower {

/// Renders one program's instructions as C++ statements. Subclasses
/// provide the vector type name and the vector-instruction selection;
/// everything that defines the calling convention lives here.
class KernelEmitter {
public:
  KernelEmitter(const vir::VProgram &P, const ir::Loop &L) : P(P), L(L) {}
  virtual ~KernelEmitter() = default;

  /// Renders the complete kernel function `FnName`.
  std::string emitKernel(const std::string &FnName) const;

  /// The shared signature (no trailing `{`):
  ///   void FnName(unsigned char *<array0>, ..., long <param0>, ..., long ub)
  static std::string signature(const ir::Loop &L, const std::string &FnName);

  /// The `extern "C"` memory-image adapter for \p FnName. \p ArrayBases
  /// are the byte offsets of \p L's arrays inside the image, in array
  /// declaration order (sim::MemoryLayout::baseOf). The wrapper's second
  /// argument packs [<param0>, ..., ub].
  static std::string emitImageWrapper(const ir::Loop &L,
                                      const std::string &FnName,
                                      const std::vector<int64_t> &ArrayBases);

protected:
  /// The C++ type of one vector register ("sv_t", "vx_t", ...).
  virtual std::string vectorType() const = 0;

  /// Renders one vector-category instruction (VLoad, VStore, VSplat,
  /// VShiftPair, VSplice, VBinOp) as a statement, without predication or
  /// comment decoration.
  virtual std::string vectorStmt(const vir::VInst &I) const = 0;

  /// A scalar operand: "s<reg>" or the immediate.
  std::string operand(const vir::ScalarOperand &Op) const;

  /// Byte address of a stride-one access.
  std::string address(const vir::Address &A) const;

  static const char *laneSuffix(unsigned ElemSize);

  const vir::VProgram &P;
  const ir::Loop &L;

private:
  std::string stmt(const vir::VInst &I) const;
  std::string bareStmt(const vir::VInst &I) const;
};

} // namespace lower
} // namespace simdize

#endif // SIMDIZE_LOWER_KERNELEMITTER_H
