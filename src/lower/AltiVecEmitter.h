//===- lower/AltiVecEmitter.h - Lowering vector IR to AltiVec-style C++ --===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The target-specific half of the SIMD code generation phase: maps the
/// generic operations onto AltiVec's instruction repertoire the way
/// Section 2.2 describes — vshiftpair becomes vec_sld for compile-time
/// amounts or vec_perm with a vec_lvsl-built permute vector for runtime
/// ones, vsplice becomes vec_sel with a mask, vsplat becomes vec_splat —
/// emitted as compilable C++ over the portable shim in simdize_vec.h (one
/// shim function per real intrinsic). The emitted kernel takes one byte
/// pointer per array plus the trip count, so integration tests compile it
/// with the system compiler and run it against the scalar oracle.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_LOWER_ALTIVECEMITTER_H
#define SIMDIZE_LOWER_ALTIVECEMITTER_H

#include <string>

namespace simdize {

namespace ir {
class Loop;
} // namespace ir
namespace vir {
class VProgram;
} // namespace vir

namespace lower {

/// Outcome of lowering: the kernel source, or the reason the program has
/// no AltiVec rendering.
struct LowerResult {
  std::string Code;
  std::string Error;
  bool ok() const { return Error.empty(); }
};

/// Renders \p P as a C++ function \p FnName. The signature is
///   void FnName(unsigned char *<array0>, ..., long ub);
/// with one pointer per array of \p L, in declaration order. Pointers must
/// be placed so that each array's byte address realizes its declared
/// alignment modulo 16.
///
/// AltiVec registers are 16 bytes; programs simdized for any other target
/// width are rejected with a diagnostic (never miscompiled) — vec_sld,
/// vec_lvsl, and the vec_sel masks all bake in V = 16 semantics.
LowerResult emitAltiVecKernel(const vir::VProgram &P, const ir::Loop &L,
                              const std::string &FnName);

} // namespace lower
} // namespace simdize

#endif // SIMDIZE_LOWER_ALTIVECEMITTER_H
