//===- lower/KernelEmitter.cpp --------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "lower/KernelEmitter.h"

#include "ir/Loop.h"
#include "support/Debug.h"
#include "support/Format.h"
#include "vir/VProgram.h"

using namespace simdize;
using namespace simdize::lower;
using namespace simdize::vir;

std::string KernelEmitter::signature(const ir::Loop &L,
                                     const std::string &FnName) {
  // Signature: one byte pointer per array, one long per scalar
  // parameter, then the trip count.
  std::string Out = "void " + FnName + "(";
  for (const auto &A : L.getArrays())
    Out += strf("unsigned char *%s, ", A->getName().c_str());
  for (const auto &Prm : L.getParams())
    Out += strf("long %s, ", Prm->getName().c_str());
  Out += "long ub)";
  return Out;
}

std::string KernelEmitter::emitKernel(const std::string &FnName) const {
  std::string Out = signature(L, FnName) + " {\n";
  Out += "  (void)ub;\n";

  // Register declarations. Only registers the program references are
  // declared: dead-code elimination leaves renumbering gaps, and the
  // emitted kernel must compile cleanly under -Wall -Wextra -Werror.
  std::vector<bool> VUsed(P.getNumVRegs(), false);
  std::vector<bool> SUsed(P.getNumSRegs(), false);
  auto MarkV = [&](VRegId R) {
    if (R.isValid() && R.Id < VUsed.size())
      VUsed[R.Id] = true;
  };
  auto MarkS = [&](SRegId R) {
    if (R.isValid() && R.Id < SUsed.size())
      SUsed[R.Id] = true;
  };
  auto MarkOp = [&](const ScalarOperand &Op) {
    if (Op.IsReg)
      MarkS(Op.Reg);
  };
  auto MarkInst = [&](const VInst &I) {
    MarkV(I.VDst);
    MarkV(I.VSrc1);
    MarkV(I.VSrc2);
    MarkV(I.VSrc3);
    MarkS(I.SDst);
    MarkOp(I.SOp1);
    MarkOp(I.SOp2);
    if (I.Addr.Index)
      MarkS(*I.Addr.Index);
    if (I.Predicate)
      MarkS(*I.Predicate);
  };
  for (const VInst &I : P.getSetup())
    MarkInst(I);
  for (const VInst &I : P.getBody())
    MarkInst(I);
  for (const VInst &I : P.getEpilogue())
    MarkInst(I);
  MarkS(P.getIndexReg());
  MarkOp(P.getLowerBound());
  MarkOp(P.getUpperBound());
  if (P.hasTripCountParam())
    MarkS(P.getTripCountParam());
  for (auto [Reg, Value] : P.getScalarParams()) {
    (void)Value;
    MarkS(Reg);
  }

  std::string VDecl, SDecl;
  for (unsigned K = 0; K < P.getNumVRegs(); ++K)
    if (VUsed[K])
      VDecl += strf("%s v%u{}", VDecl.empty() ? "" : ",", K);
  for (unsigned K = 0; K < P.getNumSRegs(); ++K)
    if (SUsed[K])
      SDecl += strf("%s s%u = 0", SDecl.empty() ? "" : ",", K);
  if (!VDecl.empty())
    Out += "  " + vectorType() + VDecl + ";\n";
  if (!SDecl.empty())
    Out += "  long" + SDecl + ";\n";
  if (P.hasTripCountParam())
    Out += strf("  s%u = ub;\n", P.getTripCountParam().Id);
  // Bind scalar parameters positionally: declaration order matches the
  // order CodeGenContext declared their registers in.
  {
    size_t Next = 0;
    for (auto [Reg, Value] : P.getScalarParams()) {
      (void)Value;
      if (Next < L.getParams().size())
        Out += strf("  s%u = %s;\n", Reg.Id,
                    L.getParams()[Next++]->getName().c_str());
    }
  }

  for (const VInst &I : P.getSetup())
    Out += "  " + stmt(I) + "\n";

  Out += strf("  for (s%u = %s; s%u < %s; s%u += %u) {\n",
              P.getIndexReg().Id, operand(P.getLowerBound()).c_str(),
              P.getIndexReg().Id, operand(P.getUpperBound()).c_str(),
              P.getIndexReg().Id, P.getLoopStep());
  for (const VInst &I : P.getBody())
    Out += "    " + stmt(I) + "\n";
  Out += "  }\n";

  for (const VInst &I : P.getEpilogue())
    Out += "  " + stmt(I) + "\n";
  Out += "}\n";
  return Out;
}

std::string
KernelEmitter::emitImageWrapper(const ir::Loop &L, const std::string &FnName,
                                const std::vector<int64_t> &ArrayBases) {
  std::string Out;
  Out += "extern \"C\" void " + FnName +
         "_image(unsigned char *Image, const long *Args) {\n";
  Out += "  " + FnName + "(";
  for (size_t K = 0; K < L.getArrays().size(); ++K)
    Out += strf("Image + %lld, ", static_cast<long long>(ArrayBases[K]));
  for (size_t K = 0; K < L.getParams().size(); ++K)
    Out += strf("Args[%zu], ", K);
  Out += strf("Args[%zu]);\n", L.getParams().size());
  Out += "}\n";
  return Out;
}

std::string KernelEmitter::operand(const ScalarOperand &Op) const {
  if (Op.IsReg)
    return strf("s%u", Op.Reg.Id);
  return strf("%lld", static_cast<long long>(Op.Imm));
}

std::string KernelEmitter::address(const Address &A) const {
  std::string Index = A.Index
                          ? strf("s%u", A.Index->Id)
                          : strf("%lld", static_cast<long long>(A.ConstIndex));
  return strf("%s + %u * ((%s) + (%lld))", A.Base->getName().c_str(),
              A.Base->getElemSize(), Index.c_str(),
              static_cast<long long>(A.ElemOffset));
}

const char *KernelEmitter::laneSuffix(unsigned ElemSize) {
  switch (ElemSize) {
  case 1:
    return "i8";
  case 2:
    return "i16";
  case 4:
    return "i32";
  }
  simdize_unreachable("unsupported lane width");
}

std::string KernelEmitter::stmt(const VInst &I) const {
  std::string S = bareStmt(I);
  if (I.Predicate)
    S = strf("if (s%u) { ", I.Predicate->Id) + S + " }";
  if (!I.Comment.empty())
    S += "  // " + I.Comment;
  return S;
}

std::string KernelEmitter::bareStmt(const VInst &I) const {
  switch (I.Op) {
  case VOpcode::VLoad:
  case VOpcode::VStore:
  case VOpcode::VSplat:
  case VOpcode::VShiftPair:
  case VOpcode::VSplice:
  case VOpcode::VBinOp:
  case VOpcode::VCmp:
  case VOpcode::VSelect:
    return vectorStmt(I);
  case VOpcode::VCopy:
    return strf("v%u = v%u;", I.VDst.Id, I.VSrc1.Id);
  case VOpcode::SConst:
    return strf("s%u = %lld;", I.SDst.Id, static_cast<long long>(I.Imm));
  case VOpcode::SBase:
    return strf("s%u = (long)(uintptr_t)%s;", I.SDst.Id,
                I.Addr.Base->getName().c_str());
  case VOpcode::SBinOp: {
    std::string A = operand(I.SOp1), B = operand(I.SOp2);
    switch (I.ScalarOp) {
    case SBinOpKind::Add:
      return strf("s%u = (%s) + (%s);", I.SDst.Id, A.c_str(), B.c_str());
    case SBinOpKind::Sub:
      return strf("s%u = (%s) - (%s);", I.SDst.Id, A.c_str(), B.c_str());
    case SBinOpKind::Mul:
      return strf("s%u = (%s) * (%s);", I.SDst.Id, A.c_str(), B.c_str());
    case SBinOpKind::And:
      return strf("s%u = (%s) & (%s);", I.SDst.Id, A.c_str(), B.c_str());
    case SBinOpKind::Mod:
      return strf("s%u = (((%s) %% (%s)) + (%s)) %% (%s);", I.SDst.Id,
                  A.c_str(), B.c_str(), B.c_str(), B.c_str());
    }
    simdize_unreachable("unknown scalar binop");
  }
  case VOpcode::SCmp: {
    const char *Cmp = nullptr;
    switch (I.CmpOp) {
    case SCmpKind::LT:
      Cmp = "<";
      break;
    case SCmpKind::LE:
      Cmp = "<=";
      break;
    case SCmpKind::GT:
      Cmp = ">";
      break;
    case SCmpKind::GE:
      Cmp = ">=";
      break;
    case SCmpKind::EQ:
      Cmp = "==";
      break;
    case SCmpKind::NE:
      Cmp = "!=";
      break;
    }
    return strf("s%u = ((%s) %s (%s)) ? 1 : 0;", I.SDst.Id,
                operand(I.SOp1).c_str(), Cmp, operand(I.SOp2).c_str());
  }
  }
  simdize_unreachable("unknown opcode");
}
