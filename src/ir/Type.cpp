//===- ir/Type.cpp --------------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "ir/Type.h"

#include "support/Debug.h"

using namespace simdize;
using namespace simdize::ir;

unsigned ir::elemSize(ElemType Ty) {
  switch (Ty) {
  case ElemType::Int8:
    return 1;
  case ElemType::Int16:
    return 2;
  case ElemType::Int32:
    return 4;
  }
  simdize_unreachable("unknown element type");
}

const char *ir::elemTypeName(ElemType Ty) {
  switch (Ty) {
  case ElemType::Int8:
    return "i8";
  case ElemType::Int16:
    return "i16";
  case ElemType::Int32:
    return "i32";
  }
  simdize_unreachable("unknown element type");
}
