//===- ir/Loop.cpp --------------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "ir/Loop.h"

#include <cassert>

using namespace simdize;
using namespace simdize::ir;

Array *Loop::createArray(std::string Name, ElemType Ty, int64_t NumElems,
                         unsigned Alignment, bool AlignmentKnown) {
  Arrays.push_back(std::make_unique<Array>(std::move(Name), Ty, NumElems,
                                           Alignment, AlignmentKnown));
  return Arrays.back().get();
}

Param *Loop::createParam(std::string Name, int64_t ActualValue) {
  Params.push_back(std::make_unique<Param>(std::move(Name), ActualValue));
  return Params.back().get();
}

Stmt &Loop::addStmt(const Array *StoreArray, int64_t StoreOffset,
                    std::unique_ptr<Expr> RHS) {
  Stmts.push_back(
      std::make_unique<Stmt>(StoreArray, StoreOffset, std::move(RHS)));
  return *Stmts.back();
}

Stmt &Loop::addIfStmt(const Array *StoreArray, int64_t StoreOffset,
                      std::unique_ptr<Expr> RHS,
                      std::unique_ptr<Expr> GuardLHS, CmpKind Cmp,
                      std::unique_ptr<Expr> GuardRHS) {
  Stmts.push_back(std::make_unique<Stmt>(StoreArray, StoreOffset,
                                         std::move(RHS), std::move(GuardLHS),
                                         Cmp, std::move(GuardRHS)));
  return *Stmts.back();
}

Stmt &Loop::addReduceStmt(const Array *AccArray, int64_t AccIndex, BinOpKind Op,
                          std::unique_ptr<Expr> RHS) {
  Stmts.push_back(
      std::make_unique<Stmt>(AccArray, AccIndex, Op, std::move(RHS)));
  return *Stmts.back();
}

std::unique_ptr<Expr> ir::cloneExprRemap(
    const Expr &E,
    const std::unordered_map<const Array *, const Array *> &Arrays,
    const std::unordered_map<const Param *, const Param *> &Params) {
  switch (E.getKind()) {
  case ExprKind::ArrayRef: {
    const auto &Ref = cast<ArrayRefExpr>(E);
    const Array *A = Ref.getArray();
    if (auto It = Arrays.find(A); It != Arrays.end())
      A = It->second;
    return std::make_unique<ArrayRefExpr>(A, Ref.getOffset());
  }
  case ExprKind::Splat:
    return E.clone();
  case ExprKind::Param: {
    const Param *P = cast<ParamExpr>(E).getParam();
    if (auto It = Params.find(P); It != Params.end())
      P = It->second;
    return std::make_unique<ParamExpr>(P);
  }
  case ExprKind::BinOp: {
    const auto &BO = cast<BinOpExpr>(E);
    return std::make_unique<BinOpExpr>(
        BO.getOp(), cloneExprRemap(BO.getLHS(), Arrays, Params),
        cloneExprRemap(BO.getRHS(), Arrays, Params));
  }
  }
  assert(false && "unknown expression kind");
  return nullptr;
}

Loop ir::cloneLoop(const Loop &L) {
  Loop Copy;
  std::unordered_map<const Array *, const Array *> ArrayMap;
  std::unordered_map<const Param *, const Param *> ParamMap;
  for (const auto &A : L.getArrays())
    ArrayMap[A.get()] =
        Copy.createArray(A->getName(), A->getElemType(), A->getNumElems(),
                         A->getAlignment(), A->isAlignmentKnown());
  for (const auto &P : L.getParams())
    ParamMap[P.get()] = Copy.createParam(P->getName(), P->getActualValue());
  for (const auto &S : L.getStmts()) {
    const Array *Store = ArrayMap.at(S->getStoreArray());
    auto RHS = cloneExprRemap(S->getRHS(), ArrayMap, ParamMap);
    switch (S->getKind()) {
    case StmtKind::Assign:
      Copy.addStmt(Store, S->getStoreOffset(), std::move(RHS));
      break;
    case StmtKind::If:
      Copy.addIfStmt(Store, S->getStoreOffset(), std::move(RHS),
                     cloneExprRemap(S->getGuardLHS(), ArrayMap, ParamMap),
                     S->getCmpKind(),
                     cloneExprRemap(S->getGuardRHS(), ArrayMap, ParamMap));
      break;
    case StmtKind::Reduce:
      Copy.addReduceStmt(Store, S->getStoreOffset(), S->getReduceOp(),
                         std::move(RHS));
      break;
    }
  }
  Copy.setUpperBound(L.getUpperBound(), L.isUpperBoundKnown());
  return Copy;
}

unsigned Loop::getElemSize() const {
  assert(!Arrays.empty() && "loop references no arrays");
  return Arrays.front()->getElemSize();
}

ElemType Loop::getElemType() const {
  assert(!Arrays.empty() && "loop references no arrays");
  return Arrays.front()->getElemType();
}
