//===- ir/Loop.cpp --------------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "ir/Loop.h"

#include <cassert>

using namespace simdize;
using namespace simdize::ir;

Array *Loop::createArray(std::string Name, ElemType Ty, int64_t NumElems,
                         unsigned Alignment, bool AlignmentKnown) {
  Arrays.push_back(std::make_unique<Array>(std::move(Name), Ty, NumElems,
                                           Alignment, AlignmentKnown));
  return Arrays.back().get();
}

Param *Loop::createParam(std::string Name, int64_t ActualValue) {
  Params.push_back(std::make_unique<Param>(std::move(Name), ActualValue));
  return Params.back().get();
}

Stmt &Loop::addStmt(const Array *StoreArray, int64_t StoreOffset,
                    std::unique_ptr<Expr> RHS) {
  Stmts.push_back(
      std::make_unique<Stmt>(StoreArray, StoreOffset, std::move(RHS)));
  return *Stmts.back();
}

unsigned Loop::getElemSize() const {
  assert(!Arrays.empty() && "loop references no arrays");
  return Arrays.front()->getElemSize();
}

ElemType Loop::getElemType() const {
  assert(!Arrays.empty() && "loop references no arrays");
  return Arrays.front()->getElemType();
}
