//===- ir/Expr.cpp --------------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "ir/Expr.h"

#include "support/Debug.h"

using namespace simdize;
using namespace simdize::ir;

void Expr::walk(const std::function<void(const Expr &)> &Fn) const {
  Fn(*this);
  if (const auto *BO = dyn_cast<BinOpExpr>(*this)) {
    BO->getLHS().walk(Fn);
    BO->getRHS().walk(Fn);
  }
}

std::unique_ptr<Expr> ArrayRefExpr::clone() const {
  return std::make_unique<ArrayRefExpr>(Arr, Offset);
}

bool ArrayRefExpr::equals(const Expr &Other) const {
  const auto *O = dyn_cast<ArrayRefExpr>(Other);
  return O && O->Arr == Arr && O->Offset == Offset;
}

std::unique_ptr<Expr> SplatExpr::clone() const {
  return std::make_unique<SplatExpr>(Value);
}

std::unique_ptr<Expr> ParamExpr::clone() const {
  return std::make_unique<ParamExpr>(P);
}

bool ParamExpr::equals(const Expr &Other) const {
  const auto *O = dyn_cast<ParamExpr>(Other);
  return O && O->P == P;
}

bool SplatExpr::equals(const Expr &Other) const {
  const auto *O = dyn_cast<SplatExpr>(Other);
  return O && O->Value == Value;
}

const char *ir::binOpSpelling(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Add:
    return "+";
  case BinOpKind::Sub:
    return "-";
  case BinOpKind::Mul:
    return "*";
  case BinOpKind::Min:
    return "min";
  case BinOpKind::Max:
    return "max";
  case BinOpKind::And:
    return "&";
  case BinOpKind::Or:
    return "|";
  case BinOpKind::Xor:
    return "^";
  }
  simdize_unreachable("unknown binop kind");
}

const char *ir::binOpMnemonic(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Add:
    return "add";
  case BinOpKind::Sub:
    return "sub";
  case BinOpKind::Mul:
    return "mul";
  case BinOpKind::Min:
    return "min";
  case BinOpKind::Max:
    return "max";
  case BinOpKind::And:
    return "and";
  case BinOpKind::Or:
    return "or";
  case BinOpKind::Xor:
    return "xor";
  }
  simdize_unreachable("unknown binop kind");
}

bool ir::isAssociativeCommutative(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Add:
  case BinOpKind::Mul:
  case BinOpKind::Min:
  case BinOpKind::Max:
  case BinOpKind::And:
  case BinOpKind::Or:
  case BinOpKind::Xor:
    return true;
  case BinOpKind::Sub:
    return false;
  }
  simdize_unreachable("unknown binop kind");
}

std::unique_ptr<Expr> BinOpExpr::clone() const {
  return std::make_unique<BinOpExpr>(Op, LHS->clone(), RHS->clone());
}

bool BinOpExpr::equals(const Expr &Other) const {
  const auto *O = dyn_cast<BinOpExpr>(Other);
  return O && O->Op == Op && O->LHS->equals(*LHS) && O->RHS->equals(*RHS);
}
