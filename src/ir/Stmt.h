//===- ir/Stmt.h - Kinded loop statements ---------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A loop body is a sequence of kinded statements, simdized statement by
/// statement with shared loop bounds (Section 4.3):
///
///   Assign   Store[i + StoreOffset] = RHS
///   If       if (GuardLHS <cmp> GuardRHS) Store[i + StoreOffset] = RHS
///   Reduce   Acc[StoreOffset] <op>= RHS      (StoreOffset is absolute)
///
/// If statements are if-converted: the simdizer lowers the guard to a
/// per-lane comparison mask and blends the new value with the target's old
/// value, so every lane is stored unconditionally with unchanged bytes in
/// guard-false lanes. Reduce statements accumulate into one fixed array
/// cell with an associative-commutative operation; the simdizer keeps a
/// vector accumulator and folds it across lanes after the loop.
///
/// Every consumer dispatches through StmtKind (or visitStmt / forEachExpr
/// below) rather than assuming the single-assign shape.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_IR_STMT_H
#define SIMDIZE_IR_STMT_H

#include "ir/Expr.h"

#include <memory>

namespace simdize {
namespace ir {

/// The statement kinds of a loop body.
enum class StmtKind { Assign, If, Reduce };

/// Comparison predicates of an If statement's guard.
enum class CmpKind { LT, LE, GT, GE, EQ, NE };

/// Source spelling of \p K ("<", "<=", ">", ">=", "==", "!=").
const char *cmpSpelling(CmpKind K);

/// Short mnemonic of \p K ("lt", "le", ...) for logs and VM listings.
const char *cmpMnemonic(CmpKind K);

/// One statement of a loop body.
class Stmt {
public:
  /// Assign: Store[i + StoreOffset] = RHS.
  Stmt(const Array *StoreArray, int64_t StoreOffset, std::unique_ptr<Expr> RHS)
      : Kind(StmtKind::Assign), StoreArray(StoreArray),
        StoreOffset(StoreOffset), RHS(std::move(RHS)) {
    assert(StoreArray && "statement needs a store target");
    assert(this->RHS && "statement needs an RHS");
  }

  /// If: if (GuardLHS <Cmp> GuardRHS) Store[i + StoreOffset] = RHS.
  Stmt(const Array *StoreArray, int64_t StoreOffset, std::unique_ptr<Expr> RHS,
       std::unique_ptr<Expr> GuardLHS, CmpKind Cmp,
       std::unique_ptr<Expr> GuardRHS)
      : Kind(StmtKind::If), StoreArray(StoreArray), StoreOffset(StoreOffset),
        RHS(std::move(RHS)), GuardLHS(std::move(GuardLHS)),
        GuardRHS(std::move(GuardRHS)), Cmp(Cmp) {
    assert(StoreArray && "statement needs a store target");
    assert(this->RHS && "statement needs an RHS");
    assert(this->GuardLHS && this->GuardRHS && "guard needs both operands");
  }

  /// Reduce: StoreArray[StoreOffset] <Op>= RHS, StoreOffset absolute.
  Stmt(const Array *AccArray, int64_t AccIndex, BinOpKind Op,
       std::unique_ptr<Expr> RHS)
      : Kind(StmtKind::Reduce), StoreArray(AccArray), StoreOffset(AccIndex),
        RHS(std::move(RHS)), ReduceOp(Op) {
    assert(AccArray && "reduction needs an accumulator array");
    assert(this->RHS && "statement needs an RHS");
    assert(isAssociativeCommutative(Op) &&
           "reduction op must be associative and commutative");
  }

  StmtKind getKind() const { return Kind; }
  bool isAssign() const { return Kind == StmtKind::Assign; }
  bool isIf() const { return Kind == StmtKind::If; }
  bool isReduce() const { return Kind == StmtKind::Reduce; }

  const Array *getStoreArray() const { return StoreArray; }
  /// Assign/If: the store stream offset c of Store[i+c]. Reduce: the
  /// absolute accumulator index k of Acc[k].
  int64_t getStoreOffset() const { return StoreOffset; }
  const Expr &getRHS() const { return *RHS; }
  Expr &getRHS() { return *RHS; }

  /// Replaces the RHS; used by the reassociation pass.
  void setRHS(std::unique_ptr<Expr> E) {
    assert(E && "statement needs an RHS");
    RHS = std::move(E);
  }
  std::unique_ptr<Expr> takeRHS() { return std::move(RHS); }

  const Expr &getGuardLHS() const {
    assert(isIf() && "guard on a non-If statement");
    return *GuardLHS;
  }
  const Expr &getGuardRHS() const {
    assert(isIf() && "guard on a non-If statement");
    return *GuardRHS;
  }
  CmpKind getCmpKind() const {
    assert(isIf() && "guard on a non-If statement");
    return Cmp;
  }

  BinOpKind getReduceOp() const {
    assert(isReduce() && "reduce op on a non-Reduce statement");
    return ReduceOp;
  }

  /// Visits every expression tree of the statement (guard operands first,
  /// then the RHS), whatever the kind. The workhorse for consumers that
  /// analyze references without caring about statement shape.
  template <typename Fn> void forEachExpr(Fn F) const {
    if (isIf()) {
      F(*GuardLHS);
      F(*GuardRHS);
    }
    F(*RHS);
  }
  template <typename Fn> void forEachExpr(Fn F) {
    if (isIf()) {
      F(*GuardLHS);
      F(*GuardRHS);
    }
    F(*RHS);
  }

private:
  StmtKind Kind;
  const Array *StoreArray;
  int64_t StoreOffset;
  std::unique_ptr<Expr> RHS;
  std::unique_ptr<Expr> GuardLHS; ///< If only.
  std::unique_ptr<Expr> GuardRHS; ///< If only.
  CmpKind Cmp = CmpKind::LT;      ///< If only.
  BinOpKind ReduceOp = BinOpKind::Add; ///< Reduce only.
};

/// Kind dispatch: calls V.visitAssign/visitIf/visitReduce for \p S. All
/// three cases must return the same type.
template <typename Visitor>
decltype(auto) visitStmt(const Stmt &S, Visitor &&V) {
  switch (S.getKind()) {
  case StmtKind::If:
    return V.visitIf(S);
  case StmtKind::Reduce:
    return V.visitReduce(S);
  case StmtKind::Assign:
    break;
  }
  return V.visitAssign(S);
}

} // namespace ir
} // namespace simdize

#endif // SIMDIZE_IR_STMT_H
