//===- ir/Stmt.h - Loop statements ----------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A statement is `Store[i + StoreOffset] = RHS`, evaluated for every loop
/// iteration i. Multi-statement loops (Section 4.3) are simdized statement
/// by statement with shared loop bounds.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_IR_STMT_H
#define SIMDIZE_IR_STMT_H

#include "ir/Expr.h"

#include <memory>

namespace simdize {
namespace ir {

/// One assignment statement of a loop body.
class Stmt {
public:
  Stmt(const Array *StoreArray, int64_t StoreOffset, std::unique_ptr<Expr> RHS)
      : StoreArray(StoreArray), StoreOffset(StoreOffset), RHS(std::move(RHS)) {
    assert(StoreArray && "statement needs a store target");
    assert(this->RHS && "statement needs an RHS");
  }

  const Array *getStoreArray() const { return StoreArray; }
  int64_t getStoreOffset() const { return StoreOffset; }
  const Expr &getRHS() const { return *RHS; }
  Expr &getRHS() { return *RHS; }

  /// Replaces the RHS; used by the reassociation pass.
  void setRHS(std::unique_ptr<Expr> E) {
    assert(E && "statement needs an RHS");
    RHS = std::move(E);
  }
  std::unique_ptr<Expr> takeRHS() { return std::move(RHS); }

private:
  const Array *StoreArray;
  int64_t StoreOffset;
  std::unique_ptr<Expr> RHS;
};

} // namespace ir
} // namespace simdize

#endif // SIMDIZE_IR_STMT_H
