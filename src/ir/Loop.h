//===- ir/Loop.h - The innermost loop being simdized ----------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level IR object: a normalized innermost loop
///   for (i = 0; i < ub; ++i) { stmt_1; ...; stmt_s; }
/// owning its arrays and statements. The trip count may be compile-time
/// known or a runtime value (Section 4.4 handles unknown bounds).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_IR_LOOP_H
#define SIMDIZE_IR_LOOP_H

#include "ir/Array.h"
#include "ir/Stmt.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace simdize {
namespace ir {

/// A normalized loop with counter i in [0, ub).
class Loop {
public:
  Loop() = default;
  Loop(const Loop &) = delete;
  Loop &operator=(const Loop &) = delete;
  Loop(Loop &&) = default;
  Loop &operator=(Loop &&) = default;

  /// Creates and owns a new array.
  Array *createArray(std::string Name, ElemType Ty, int64_t NumElems,
                     unsigned Alignment, bool AlignmentKnown);

  /// Creates and owns a new runtime scalar parameter.
  Param *createParam(std::string Name, int64_t ActualValue);

  /// Appends a plain assignment StoreArray[i+StoreOffset] = RHS.
  Stmt &addStmt(const Array *StoreArray, int64_t StoreOffset,
                std::unique_ptr<Expr> RHS);

  /// Appends a guarded assignment
  ///   if (GuardLHS <Cmp> GuardRHS) StoreArray[i+StoreOffset] = RHS.
  Stmt &addIfStmt(const Array *StoreArray, int64_t StoreOffset,
                  std::unique_ptr<Expr> RHS, std::unique_ptr<Expr> GuardLHS,
                  CmpKind Cmp, std::unique_ptr<Expr> GuardRHS);

  /// Appends a reduction AccArray[AccIndex] <Op>= RHS (AccIndex absolute).
  Stmt &addReduceStmt(const Array *AccArray, int64_t AccIndex, BinOpKind Op,
                      std::unique_ptr<Expr> RHS);

  /// Sets the trip count; \p Known selects compile-time vs. runtime bound.
  void setUpperBound(int64_t UB, bool Known) {
    UpperBound = UB;
    UBKnown = Known;
  }

  int64_t getUpperBound() const { return UpperBound; }
  bool isUpperBoundKnown() const { return UBKnown; }

  const std::vector<std::unique_ptr<Array>> &getArrays() const {
    return Arrays;
  }
  const std::vector<std::unique_ptr<Param>> &getParams() const {
    return Params;
  }
  const std::vector<std::unique_ptr<Stmt>> &getStmts() const { return Stmts; }
  std::vector<std::unique_ptr<Stmt>> &getStmts() { return Stmts; }

  /// The common element size D of every reference in the loop, in bytes.
  /// Requires at least one array.
  unsigned getElemSize() const;

  /// The common element type of every reference in the loop.
  ElemType getElemType() const;

private:
  std::vector<std::unique_ptr<Array>> Arrays;
  std::vector<std::unique_ptr<Param>> Params;
  std::vector<std::unique_ptr<Stmt>> Stmts;
  int64_t UpperBound = 0;
  bool UBKnown = true;
};

/// Deep-copies \p L: fresh arrays and params with identical properties,
/// statements cloned with references remapped onto the copies. Loop itself
/// is move-only (statements hold raw Array pointers), so this is the one
/// way to duplicate a loop — the fuzzer's shrinker uses it to derive
/// reduced candidates without destroying the original.
Loop cloneLoop(const Loop &L);

/// Clones \p E with every array and parameter reference remapped through
/// the given tables; entries missing from a table keep the original
/// pointer. Exposed for IR rewriters that graft expression trees from one
/// loop into another.
std::unique_ptr<Expr>
cloneExprRemap(const Expr &E,
               const std::unordered_map<const Array *, const Array *> &Arrays,
               const std::unordered_map<const Param *, const Param *> &Params);

} // namespace ir
} // namespace simdize

#endif // SIMDIZE_IR_LOOP_H
