//===- ir/Expr.h - Expression trees of the scalar loop IR ----------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Right-hand-side expressions of loop statements. Three node kinds match
/// the paper's assumptions (Section 4.1): stride-one array references
/// A[i+c], loop-invariant scalars (which simdize to vsplat), and binary
/// arithmetic. LLVM-style isa<>/cast<>-via-kind dispatch is used instead of
/// RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_IR_EXPR_H
#define SIMDIZE_IR_EXPR_H

#include "ir/Array.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>

namespace simdize {
namespace ir {

/// Discriminator for Expr subclasses.
enum class ExprKind {
  ArrayRef,
  Splat,
  Param,
  BinOp,
};

/// A loop-invariant runtime scalar (a kernel parameter such as a blend
/// factor). The simdizer sees only its name; ActualValue exists so the
/// simulator can run the program, exactly like a runtime trip count.
class Param {
public:
  Param(std::string Name, int64_t ActualValue)
      : Name(std::move(Name)), ActualValue(ActualValue) {}

  const std::string &getName() const { return Name; }
  int64_t getActualValue() const { return ActualValue; }

private:
  std::string Name;
  int64_t ActualValue;
};

/// Base class of all RHS expression nodes.
class Expr {
public:
  virtual ~Expr() = default;

  ExprKind getKind() const { return Kind; }

  /// Deep-copies this expression tree.
  virtual std::unique_ptr<Expr> clone() const = 0;

  /// Structural equality (same shape, arrays, offsets, constants).
  virtual bool equals(const Expr &Other) const = 0;

  /// Invokes \p Fn on this node and every descendant, preorder.
  void walk(const std::function<void(const Expr &)> &Fn) const;

protected:
  explicit Expr(ExprKind Kind) : Kind(Kind) {}

private:
  ExprKind Kind;
};

/// A stride-one array reference A[i + Offset], where i is the loop counter.
class ArrayRefExpr : public Expr {
public:
  ArrayRefExpr(const Array *Arr, int64_t Offset)
      : Expr(ExprKind::ArrayRef), Arr(Arr), Offset(Offset) {
    assert(Arr && "array reference needs an array");
  }

  const Array *getArray() const { return Arr; }
  int64_t getOffset() const { return Offset; }

  std::unique_ptr<Expr> clone() const override;
  bool equals(const Expr &Other) const override;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::ArrayRef;
  }

private:
  const Array *Arr;
  int64_t Offset;
};

/// A loop-invariant scalar value, replicated across all vector slots when
/// simdized (stream offset ⊥ in the data reorganization graph).
class SplatExpr : public Expr {
public:
  explicit SplatExpr(int64_t Value) : Expr(ExprKind::Splat), Value(Value) {}

  int64_t getValue() const { return Value; }

  std::unique_ptr<Expr> clone() const override;
  bool equals(const Expr &Other) const override;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Splat;
  }

private:
  int64_t Value;
};

/// A loop-invariant runtime scalar used as a register stream; simdizes to
/// vsplat of a parameter register (stream offset ⊥, like SplatExpr).
class ParamExpr : public Expr {
public:
  explicit ParamExpr(const Param *P) : Expr(ExprKind::Param), P(P) {
    assert(P && "parameter reference needs a parameter");
  }

  const Param *getParam() const { return P; }

  std::unique_ptr<Expr> clone() const override;
  bool equals(const Expr &Other) const override;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Param;
  }

private:
  const Param *P;
};

/// Element-wise binary operations. All but Sub are associative and
/// commutative, which the common-offset reassociation optimization
/// exploits. Min/Max compare lanes as signed values (AltiVec's vec_min /
/// vec_max); And/Or/Xor are bitwise (vec_and / vec_or / vec_xor).
enum class BinOpKind {
  Add,
  Sub,
  Mul,
  Min,
  Max,
  And,
  Or,
  Xor,
};

/// Returns a printable operator ("+", "-", "*", "min", ...).
const char *binOpSpelling(BinOpKind Op);

/// Returns an instruction-style mnemonic ("add", "sub", "mul", "min",
/// "max", "and", "or", "xor") used by the vector IR printer and the
/// AltiVec emitter.
const char *binOpMnemonic(BinOpKind Op);

/// Returns true for operators that may be freely regrouped and reordered.
bool isAssociativeCommutative(BinOpKind Op);

/// A binary arithmetic node.
class BinOpExpr : public Expr {
public:
  BinOpExpr(BinOpKind Op, std::unique_ptr<Expr> LHS, std::unique_ptr<Expr> RHS)
      : Expr(ExprKind::BinOp), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {
    assert(this->LHS && this->RHS && "binop needs two operands");
  }

  BinOpKind getOp() const { return Op; }
  const Expr &getLHS() const { return *LHS; }
  const Expr &getRHS() const { return *RHS; }

  /// Replaces the operands; used by the reassociation pass.
  void setLHS(std::unique_ptr<Expr> E) { LHS = std::move(E); }
  void setRHS(std::unique_ptr<Expr> E) { RHS = std::move(E); }
  std::unique_ptr<Expr> takeLHS() { return std::move(LHS); }
  std::unique_ptr<Expr> takeRHS() { return std::move(RHS); }

  std::unique_ptr<Expr> clone() const override;
  bool equals(const Expr &Other) const override;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::BinOp;
  }

private:
  BinOpKind Op;
  std::unique_ptr<Expr> LHS;
  std::unique_ptr<Expr> RHS;
};

/// LLVM-style isa<> over ExprKind.
template <typename T> bool isa(const Expr &E) { return T::classof(&E); }

/// LLVM-style cast<>; asserts on kind mismatch.
template <typename T> const T &cast(const Expr &E) {
  assert(T::classof(&E) && "cast to wrong expression kind");
  return static_cast<const T &>(E);
}

/// LLVM-style dyn_cast<>; returns nullptr on kind mismatch.
template <typename T> const T *dyn_cast(const Expr &E) {
  return T::classof(&E) ? static_cast<const T *>(&E) : nullptr;
}

/// Mutable variants.
template <typename T> T &cast(Expr &E) {
  assert(T::classof(&E) && "cast to wrong expression kind");
  return static_cast<T &>(E);
}
template <typename T> T *dyn_cast(Expr &E) {
  return T::classof(&E) ? static_cast<T *>(&E) : nullptr;
}

} // namespace ir
} // namespace simdize

#endif // SIMDIZE_IR_EXPR_H
