//===- ir/Stmt.cpp --------------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "ir/Stmt.h"

using namespace simdize;
using namespace simdize::ir;

const char *ir::cmpSpelling(CmpKind K) {
  switch (K) {
  case CmpKind::LT:
    return "<";
  case CmpKind::LE:
    return "<=";
  case CmpKind::GT:
    return ">";
  case CmpKind::GE:
    return ">=";
  case CmpKind::EQ:
    return "==";
  case CmpKind::NE:
    return "!=";
  }
  assert(false && "unknown comparison kind");
  return "?";
}

const char *ir::cmpMnemonic(CmpKind K) {
  switch (K) {
  case CmpKind::LT:
    return "lt";
  case CmpKind::LE:
    return "le";
  case CmpKind::GT:
    return "gt";
  case CmpKind::GE:
    return "ge";
  case CmpKind::EQ:
    return "eq";
  case CmpKind::NE:
    return "ne";
  }
  assert(false && "unknown comparison kind");
  return "?";
}
