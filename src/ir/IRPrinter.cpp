//===- ir/IRPrinter.cpp ---------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

#include "ir/Loop.h"
#include "support/Debug.h"
#include "support/Format.h"

using namespace simdize;
using namespace simdize::ir;

static std::string printIndex(int64_t Offset) {
  if (Offset == 0)
    return "i";
  if (Offset > 0)
    return strf("i+%lld", static_cast<long long>(Offset));
  return strf("i-%lld", static_cast<long long>(-Offset));
}

std::string ir::printExpr(const Expr &E) {
  switch (E.getKind()) {
  case ExprKind::ArrayRef: {
    const auto &Ref = cast<ArrayRefExpr>(E);
    return strf("%s[%s]", Ref.getArray()->getName().c_str(),
                printIndex(Ref.getOffset()).c_str());
  }
  case ExprKind::Splat:
    return strf("%lld", static_cast<long long>(cast<SplatExpr>(E).getValue()));
  case ExprKind::Param:
    return cast<ParamExpr>(E).getParam()->getName();
  case ExprKind::BinOp: {
    const auto &BO = cast<BinOpExpr>(E);
    // Min/Max print as calls; everything else infix, with nested binops
    // parenthesized for unambiguous golden-test output.
    if (BO.getOp() == BinOpKind::Min || BO.getOp() == BinOpKind::Max)
      return strf("%s(%s, %s)", binOpSpelling(BO.getOp()),
                  printExpr(BO.getLHS()).c_str(),
                  printExpr(BO.getRHS()).c_str());
    auto Operand = [](const Expr &Op) {
      std::string S = printExpr(Op);
      // Call-syntax operands (min/max) are already unambiguous.
      if (const auto *Nested = dyn_cast<BinOpExpr>(Op);
          Nested && Nested->getOp() != BinOpKind::Min &&
          Nested->getOp() != BinOpKind::Max)
        return "(" + S + ")";
      return S;
    };
    return strf("%s %s %s", Operand(BO.getLHS()).c_str(),
                binOpSpelling(BO.getOp()), Operand(BO.getRHS()).c_str());
  }
  }
  simdize_unreachable("unknown expression kind");
}

std::string ir::printStmt(const Stmt &S) {
  switch (S.getKind()) {
  case StmtKind::Assign:
    return strf("%s[%s] = %s;", S.getStoreArray()->getName().c_str(),
                printIndex(S.getStoreOffset()).c_str(),
                printExpr(S.getRHS()).c_str());
  case StmtKind::If:
    return strf("if (%s %s %s) %s[%s] = %s;",
                printExpr(S.getGuardLHS()).c_str(),
                cmpSpelling(S.getCmpKind()), printExpr(S.getGuardRHS()).c_str(),
                S.getStoreArray()->getName().c_str(),
                printIndex(S.getStoreOffset()).c_str(),
                printExpr(S.getRHS()).c_str());
  case StmtKind::Reduce:
    // The accumulator index is absolute (no loop counter).
    return strf("%s[%lld] %s= %s;", S.getStoreArray()->getName().c_str(),
                static_cast<long long>(S.getStoreOffset()),
                binOpSpelling(S.getReduceOp()), printExpr(S.getRHS()).c_str());
  }
  simdize_unreachable("unknown statement kind");
}

std::string ir::printLoop(const Loop &L) {
  std::string Out = "// ";
  bool First = true;
  for (const auto &A : L.getArrays()) {
    if (!First)
      Out += ", ";
    First = false;
    Out += strf("%s: %s[%lld] @align %s", A->getName().c_str(),
                elemTypeName(A->getElemType()),
                static_cast<long long>(A->getNumElems()),
                A->isAlignmentKnown() ? strf("%u", A->getAlignment()).c_str()
                                      : "?");
  }
  Out += "\n";
  Out += strf("for (i = 0; i < %s; ++i) {\n",
              L.isUpperBoundKnown()
                  ? strf("%lld", static_cast<long long>(L.getUpperBound()))
                        .c_str()
                  : "ub");
  for (const auto &S : L.getStmts())
    Out += "  " + printStmt(*S) + "\n";
  Out += "}\n";
  return Out;
}
