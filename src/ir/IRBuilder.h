//===- ir/IRBuilder.h - Convenience expression construction --------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Free functions for building expression trees concisely, used by tests,
/// examples, and the loop synthesizer:
///
/// \code
///   Loop L;
///   Array *A = L.createArray("a", ElemType::Int32, 128, 12, true);
///   Array *B = L.createArray("b", ElemType::Int32, 128, 4, true);
///   Array *C = L.createArray("c", ElemType::Int32, 128, 8, true);
///   L.addStmt(A, 3, add(ref(B, 1), ref(C, 2)));   // a[i+3]=b[i+1]+c[i+2]
///   L.setUpperBound(100, /*Known=*/true);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_IR_IRBUILDER_H
#define SIMDIZE_IR_IRBUILDER_H

#include "ir/Expr.h"

#include <memory>

namespace simdize {
namespace ir {

/// Builds an array reference A[i + Offset].
std::unique_ptr<Expr> ref(const Array *A, int64_t Offset);

/// Builds a loop-invariant scalar.
std::unique_ptr<Expr> splat(int64_t Value);

/// Builds a reference to a runtime scalar parameter.
std::unique_ptr<Expr> param(const Param *P);

/// Builds LHS + RHS.
std::unique_ptr<Expr> add(std::unique_ptr<Expr> LHS, std::unique_ptr<Expr> RHS);

/// Builds LHS - RHS.
std::unique_ptr<Expr> sub(std::unique_ptr<Expr> LHS, std::unique_ptr<Expr> RHS);

/// Builds LHS * RHS.
std::unique_ptr<Expr> mul(std::unique_ptr<Expr> LHS, std::unique_ptr<Expr> RHS);

/// Builds the signed lane-wise minimum of LHS and RHS.
std::unique_ptr<Expr> min(std::unique_ptr<Expr> LHS, std::unique_ptr<Expr> RHS);

/// Builds the signed lane-wise maximum of LHS and RHS.
std::unique_ptr<Expr> max(std::unique_ptr<Expr> LHS, std::unique_ptr<Expr> RHS);

/// Builds the bitwise LHS & RHS.
std::unique_ptr<Expr> bitAnd(std::unique_ptr<Expr> LHS,
                             std::unique_ptr<Expr> RHS);

/// Builds the bitwise LHS | RHS.
std::unique_ptr<Expr> bitOr(std::unique_ptr<Expr> LHS,
                            std::unique_ptr<Expr> RHS);

/// Builds the bitwise LHS ^ RHS.
std::unique_ptr<Expr> bitXor(std::unique_ptr<Expr> LHS,
                             std::unique_ptr<Expr> RHS);

/// Builds an arbitrary binary operation.
std::unique_ptr<Expr> binOp(BinOpKind Op, std::unique_ptr<Expr> LHS,
                            std::unique_ptr<Expr> RHS);

} // namespace ir
} // namespace simdize

#endif // SIMDIZE_IR_IRBUILDER_H
