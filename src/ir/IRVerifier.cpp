//===- ir/IRVerifier.cpp --------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "ir/IRVerifier.h"

#include "ir/IRPrinter.h"
#include "ir/Loop.h"
#include "support/Format.h"

using namespace simdize;
using namespace simdize::ir;

namespace {

/// Collects the first verification failure across the loop.
class Verifier {
public:
  explicit Verifier(const Loop &L) : L(L) {}

  std::optional<std::string> run() {
    if (L.getStmts().empty())
      return "loop has no statements";
    if (L.getArrays().empty())
      return "loop references no arrays";
    if (L.getUpperBound() < 0)
      return "loop upper bound is negative";

    ElemTy = L.getArrays().front()->getElemType();
    for (const auto &A : L.getArrays())
      if (A->getElemType() != ElemTy)
        return strf("array '%s' breaks the uniform data length assumption",
                    A->getName().c_str());

    for (const auto &S : L.getStmts()) {
      if (auto Err = checkStmt(*S))
        return Err;
    }
    return std::nullopt;
  }

private:
  std::optional<std::string> checkStmt(const Stmt &S) {
    switch (S.getKind()) {
    case StmtKind::Assign:
      if (auto Err = checkAccess(S.getStoreArray(), S.getStoreOffset()))
        return Err;
      return checkExpr(S.getRHS());
    case StmtKind::If: {
      if (auto Err = checkAccess(S.getStoreArray(), S.getStoreOffset()))
        return Err;
      std::optional<std::string> Err;
      // If-conversion reloads the target stream to blend untaken lanes, so
      // neither the guard nor the RHS may observe the store target.
      S.forEachExpr([&](const Expr &E) {
        if (Err)
          return;
        if (referencesArray(E, S.getStoreArray())) {
          Err = strf("guarded statement storing to '%s' also references it",
                     S.getStoreArray()->getName().c_str());
          return;
        }
        Err = checkExpr(E);
      });
      return Err;
    }
    case StmtKind::Reduce: {
      const Array *Acc = S.getStoreArray();
      int64_t Idx = S.getStoreOffset();
      if (Idx < 0 || Idx >= Acc->getNumElems())
        return strf("reduction cell %s[%lld] is out of bounds (size %lld)",
                    Acc->getName().c_str(), static_cast<long long>(Idx),
                    static_cast<long long>(Acc->getNumElems()));
      // The accumulator cell is privatized into a register for the whole
      // loop, so no statement may load the accumulator array and no
      // non-reduction statement may store to it.
      for (const auto &Other : L.getStmts()) {
        std::optional<std::string> Err;
        Other->forEachExpr([&](const Expr &E) {
          if (!Err && referencesArray(E, Acc))
            Err = strf("reduction accumulator '%s' is also loaded",
                       Acc->getName().c_str());
        });
        if (Err)
          return Err;
        if (!Other->isReduce() && Other->getStoreArray() == Acc)
          return strf("reduction accumulator '%s' is also a store target",
                      Acc->getName().c_str());
      }
      return checkExpr(S.getRHS());
    }
    }
    return "unknown statement kind";
  }

  static bool referencesArray(const Expr &E, const Array *A) {
    bool Found = false;
    E.walk([&](const Expr &Node) {
      if (const auto *Ref = dyn_cast<ArrayRefExpr>(Node))
        if (Ref->getArray() == A)
          Found = true;
    });
    return Found;
  }

  std::optional<std::string> checkAccess(const Array *A, int64_t Offset) {
    // Every access i+Offset for i in [0, ub) must stay inside the array.
    if (Offset < 0)
      return strf("reference %s[i%lld] can access below the array base",
                  A->getName().c_str(), static_cast<long long>(Offset));
    int64_t MaxIndex = L.getUpperBound() - 1 + Offset;
    if (L.getUpperBound() > 0 && MaxIndex >= A->getNumElems())
      return strf("reference %s[i+%lld] overruns the array "
                  "(max index %lld, size %lld)",
                  A->getName().c_str(), static_cast<long long>(Offset),
                  static_cast<long long>(MaxIndex),
                  static_cast<long long>(A->getNumElems()));
    return std::nullopt;
  }

  std::optional<std::string> checkExpr(const Expr &E) {
    switch (E.getKind()) {
    case ExprKind::Splat:
    case ExprKind::Param:
      return std::nullopt;
    case ExprKind::ArrayRef: {
      const auto &Ref = cast<ArrayRefExpr>(E);
      return checkAccess(Ref.getArray(), Ref.getOffset());
    }
    case ExprKind::BinOp: {
      const auto &BO = cast<BinOpExpr>(E);
      if (auto Err = checkExpr(BO.getLHS()))
        return Err;
      return checkExpr(BO.getRHS());
    }
    }
    return "unknown expression kind";
  }

  const Loop &L;
  ElemType ElemTy = ElemType::Int32;
};

} // namespace

std::optional<std::string> ir::verifyLoop(const Loop &L) {
  return Verifier(L).run();
}
