//===- ir/IRBuilder.cpp ---------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

using namespace simdize;
using namespace simdize::ir;

std::unique_ptr<Expr> ir::ref(const Array *A, int64_t Offset) {
  return std::make_unique<ArrayRefExpr>(A, Offset);
}

std::unique_ptr<Expr> ir::splat(int64_t Value) {
  return std::make_unique<SplatExpr>(Value);
}

std::unique_ptr<Expr> ir::param(const Param *P) {
  return std::make_unique<ParamExpr>(P);
}

std::unique_ptr<Expr> ir::binOp(BinOpKind Op, std::unique_ptr<Expr> LHS,
                                std::unique_ptr<Expr> RHS) {
  return std::make_unique<BinOpExpr>(Op, std::move(LHS), std::move(RHS));
}

std::unique_ptr<Expr> ir::add(std::unique_ptr<Expr> LHS,
                              std::unique_ptr<Expr> RHS) {
  return binOp(BinOpKind::Add, std::move(LHS), std::move(RHS));
}

std::unique_ptr<Expr> ir::sub(std::unique_ptr<Expr> LHS,
                              std::unique_ptr<Expr> RHS) {
  return binOp(BinOpKind::Sub, std::move(LHS), std::move(RHS));
}

std::unique_ptr<Expr> ir::mul(std::unique_ptr<Expr> LHS,
                              std::unique_ptr<Expr> RHS) {
  return binOp(BinOpKind::Mul, std::move(LHS), std::move(RHS));
}

std::unique_ptr<Expr> ir::min(std::unique_ptr<Expr> LHS,
                              std::unique_ptr<Expr> RHS) {
  return binOp(BinOpKind::Min, std::move(LHS), std::move(RHS));
}

std::unique_ptr<Expr> ir::max(std::unique_ptr<Expr> LHS,
                              std::unique_ptr<Expr> RHS) {
  return binOp(BinOpKind::Max, std::move(LHS), std::move(RHS));
}

std::unique_ptr<Expr> ir::bitAnd(std::unique_ptr<Expr> LHS,
                                 std::unique_ptr<Expr> RHS) {
  return binOp(BinOpKind::And, std::move(LHS), std::move(RHS));
}

std::unique_ptr<Expr> ir::bitOr(std::unique_ptr<Expr> LHS,
                                std::unique_ptr<Expr> RHS) {
  return binOp(BinOpKind::Or, std::move(LHS), std::move(RHS));
}

std::unique_ptr<Expr> ir::bitXor(std::unique_ptr<Expr> LHS,
                                 std::unique_ptr<Expr> RHS) {
  return binOp(BinOpKind::Xor, std::move(LHS), std::move(RHS));
}
