//===- ir/IRVerifier.h - Structural checks on loops before simdization ---===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the assumptions of Section 4.1 that the simdization algorithm
/// relies on: stride-one references only (guaranteed by construction),
/// uniform data length across all references, naturally aligned bases, and
/// in-bounds accesses over the loop's iteration space. Returns a diagnostic
/// string instead of aborting so callers (e.g. the synthesizer's fuzzing
/// loop) can report which loop was malformed.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_IR_IRVERIFIER_H
#define SIMDIZE_IR_IRVERIFIER_H

#include <optional>
#include <string>

namespace simdize {
namespace ir {

class Loop;

/// Verifies \p L against the simdizer's preconditions.
/// \returns std::nullopt on success, or a description of the first
/// violation found.
std::optional<std::string> verifyLoop(const Loop &L);

} // namespace ir
} // namespace simdize

#endif // SIMDIZE_IR_IRVERIFIER_H
