//===- ir/ScalarCost.cpp --------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "ir/ScalarCost.h"

#include "ir/Loop.h"

using namespace simdize;
using namespace simdize::ir;

ScalarCost ir::scalarCostOfStmt(const Stmt &S) {
  ScalarCost Cost;
  S.forEachExpr([&Cost](const Expr &Root) {
    Root.walk([&Cost](const Expr &E) {
      switch (E.getKind()) {
      case ExprKind::ArrayRef:
        ++Cost.Loads;
        break;
      case ExprKind::BinOp:
        ++Cost.Arith;
        break;
      case ExprKind::Splat:
      case ExprKind::Param:
        ++Cost.Splats;
        break;
      }
    });
  });
  switch (S.getKind()) {
  case StmtKind::Assign:
    Cost.Stores = 1;
    break;
  case StmtKind::If:
    // The guard comparison is one arithmetic op; the (possibly untaken)
    // store is still charged — the ideal scalar model is branch-free.
    ++Cost.Arith;
    Cost.Stores = 1;
    break;
  case StmtKind::Reduce:
    // s op= RHS is one accumulate; the accumulator lives in a register,
    // so no per-iteration load or store is charged.
    ++Cost.Arith;
    break;
  }
  return Cost;
}

ScalarCost ir::scalarCostOfLoop(const Loop &L) {
  ScalarCost Total;
  for (const auto &S : L.getStmts()) {
    ScalarCost C = scalarCostOfStmt(*S);
    Total.Loads += C.Loads;
    Total.Arith += C.Arith;
    Total.Stores += C.Stores;
    Total.Splats += C.Splats;
  }
  return Total;
}

double ir::scalarOpd(const Loop &L) {
  if (L.getStmts().empty())
    return 0.0;
  return static_cast<double>(scalarCostOfLoop(L).total()) /
         static_cast<double>(L.getStmts().size());
}
