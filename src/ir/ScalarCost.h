//===- ir/ScalarCost.h - Ideal scalar instruction counts (SEQ baseline) --===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's speedups divide an "idealistic scalar instruction count" by
/// the simdized dynamic count (Section 5.3). The ideal count charges one
/// operation per load, per arithmetic operation, and per store, and —
/// deliberately — nothing for address computation or loop overhead. For
/// the canonical s=1, l=6 integer benchmark this yields 12 operations per
/// datum (6 loads + 5 adds + 1 store).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_IR_SCALARCOST_H
#define SIMDIZE_IR_SCALARCOST_H

#include <cstdint>

namespace simdize {
namespace ir {

class Loop;
class Stmt;

/// Per-iteration ideal scalar operation breakdown.
struct ScalarCost {
  int64_t Loads = 0;
  int64_t Arith = 0;
  int64_t Stores = 0;
  int64_t Splats = 0; ///< Loop-invariant operands; free in the ideal model.

  int64_t total() const { return Loads + Arith + Stores; }
};

/// Counts the ideal scalar operations of one statement (per iteration).
ScalarCost scalarCostOfStmt(const Stmt &S);

/// Counts the ideal scalar operations of the whole body (per iteration).
ScalarCost scalarCostOfLoop(const Loop &L);

/// Ideal scalar operations per datum: per-iteration total divided by the
/// number of datums produced per iteration (one per statement).
double scalarOpd(const Loop &L);

} // namespace ir
} // namespace simdize

#endif // SIMDIZE_IR_SCALARCOST_H
