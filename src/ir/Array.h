//===- ir/Array.h - Arrays referenced by the loop IR ---------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An Array describes one memory object accessed by stride-one references.
/// Its base alignment — the byte offset of the base address modulo the
/// vector length V — is the quantity the whole paper revolves around. The
/// alignment always exists at runtime (the simulator places the array), but
/// the simdizer may only exploit it when AlignmentKnown is set; otherwise
/// it must generate runtime-alignment code (Section 4.4).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_IR_ARRAY_H
#define SIMDIZE_IR_ARRAY_H

#include "ir/Type.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace simdize {
namespace ir {

/// One array (memory object) accessed by the loop.
class Array {
public:
  Array(std::string Name, ElemType Ty, int64_t NumElems, unsigned Alignment,
        bool AlignmentKnown)
      : Name(std::move(Name)), Ty(Ty), NumElems(NumElems),
        Alignment(Alignment), AlignmentKnown(AlignmentKnown) {
    assert(NumElems >= 0 && "array size must be nonnegative");
    // Section 4.1 assumes naturally aligned bases, but the framework also
    // supports byte-misaligned ones (a Section 7 "future issue"): their
    // streams simply carry offsets that are not lane multiples, and the
    // placement policies realign them to lane boundaries before any
    // arithmetic (see reorg::verifyGraph's lane rule).
  }

  const std::string &getName() const { return Name; }
  ElemType getElemType() const { return Ty; }
  unsigned getElemSize() const { return elemSize(Ty); }
  int64_t getNumElems() const { return NumElems; }
  int64_t getSizeInBytes() const { return NumElems * elemSize(Ty); }

  /// Byte offset of the base address modulo the vector length. This is the
  /// ground truth used by the simulator when laying out memory.
  unsigned getAlignment() const { return Alignment; }

  /// Whether the simdizer is allowed to see getAlignment(). When false the
  /// compiler must treat the alignment as a runtime value.
  bool isAlignmentKnown() const { return AlignmentKnown; }

  /// Whether the base address is a multiple of the element size — the
  /// Section 4.1 assumption. Streams of naturally aligned arrays always
  /// carry lane-multiple offsets.
  bool isNaturallyAligned() const { return Alignment % elemSize(Ty) == 0; }

private:
  std::string Name;
  ElemType Ty;
  int64_t NumElems;
  unsigned Alignment;
  bool AlignmentKnown;
};

} // namespace ir
} // namespace simdize

#endif // SIMDIZE_IR_ARRAY_H
