//===- ir/Type.h - Element types of the scalar loop IR -------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Element types for array data. The paper's evaluation packs 4 ints or 8
/// short ints into a 16-byte vector register; we additionally support
/// 1-byte elements (16 per vector), matching the "1, 2, 4 byte data types"
/// a typical SIMD unit supports (Section 2.1).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_IR_TYPE_H
#define SIMDIZE_IR_TYPE_H

namespace simdize {
namespace ir {

/// Element type of an array; all references in one loop share a single
/// element type (Section 4.1: "all memory references access data of the
/// same length").
enum class ElemType {
  Int8,
  Int16,
  Int32,
};

/// Returns the data length D in bytes of \p Ty.
unsigned elemSize(ElemType Ty);

/// Returns a printable name ("i8", "i16", "i32").
const char *elemTypeName(ElemType Ty);

} // namespace ir
} // namespace simdize

#endif // SIMDIZE_IR_TYPE_H
