//===- ir/IRPrinter.h - Textual form of the scalar loop IR ---------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints loops in a C-like syntax for diagnostics, golden tests, and the
/// examples:
///
///   // a: i32[128] @align 12, b: i32[128] @align 4, c: i32[128] @align 8
///   for (i = 0; i < 100; ++i)
///     a[i+3] = b[i+1] + c[i+2];
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_IR_IRPRINTER_H
#define SIMDIZE_IR_IRPRINTER_H

#include <string>

namespace simdize {
namespace ir {

class Expr;
class Loop;
class Stmt;

/// Renders an expression as C-like text.
std::string printExpr(const Expr &E);

/// Renders one statement as C-like text (no trailing newline).
std::string printStmt(const Stmt &S);

/// Renders the whole loop, including an array-declaration comment header.
std::string printLoop(const Loop &L);

} // namespace ir
} // namespace simdize

#endif // SIMDIZE_IR_IRPRINTER_H
