//===- obs/Metrics.h - Counters, gauges, histograms ----------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small metrics registry for the pipeline and harnesses. Three metric
/// kinds:
///
///  - counters: monotonically accumulated int64 (op counts, run totals);
///  - gauges: last-written double (OPD of the most recent run, config
///    knobs);
///  - histograms: log-bucketed distributions supporting percentile
///    queries and exact merge.
///
/// The histogram buckets values at ~7% relative resolution (16 buckets
/// per power of two). Because a sample only increments its bucket count,
/// aggregation is order-independent: merging per-seed histograms in any
/// order — or recording the samples in any interleaving across fuzz
/// shards — yields bit-identical bucket vectors, which is what makes the
/// end-of-sweep percentile report deterministic across `--jobs` values.
///
/// Metric names follow "component.measure" (e.g. "check.runs",
/// "exec.opd", "fuzz.shift_count"); docs/OBSERVABILITY.md lists them.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_OBS_METRICS_H
#define SIMDIZE_OBS_METRICS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace simdize {
namespace obs {

namespace json {
class Writer;
} // namespace json

/// Log-bucketed histogram of non-negative samples. Sub-bucket resolution
/// is 1/16th of a power of two (~7% relative error on percentile values),
/// plus a dedicated zero bucket. Deterministic under merge reordering.
class Histogram {
public:
  /// Records one sample; negative values clamp to the zero bucket.
  void add(double V) { addCount(bucketOf(V), 1); }

  /// Records \p N samples of the same value.
  void addCount(double V, int64_t N) { addCount(bucketOf(V), N); }

  /// Adds every bucket of \p Other into this histogram. Exact: the result
  /// equals recording both sample streams directly, in any order.
  void merge(const Histogram &Other);

  int64_t count() const { return Total; }
  double sum() const { return Sum; }
  double mean() const { return Total ? Sum / static_cast<double>(Total) : 0.0; }
  double min() const;
  double max() const;

  /// Value at quantile \p Q in [0,1] — the representative (geometric
  /// midpoint) of the bucket holding the Q-th sample. NaN when empty.
  double percentile(double Q) const;

  /// Writes {"count":...,"sum":...,"mean":...,"min":...,"max":...,
  /// "p50":...,"p90":...,"p99":...} as one JSON object.
  void writeJson(json::Writer &W) const;

  /// The occupied buckets as (upper edge, cumulative count) pairs in
  /// ascending edge order — the Prometheus `le` rendering. The zero
  /// bucket's edge is 0; cumulative counts are monotone by construction
  /// and the last pair's count equals count().
  std::vector<std::pair<double, int64_t>> cumulativeBuckets() const;

  bool operator==(const Histogram &O) const {
    return Total == O.Total && Sum == O.Sum && Buckets == O.Buckets;
  }

private:
  static int bucketOf(double V);
  static double representative(int Bucket);
  void addCount(int Bucket, int64_t N);

  /// Sparse bucket index → sample count. A map keeps iteration sorted so
  /// percentile scans and JSON dumps are canonical.
  std::map<int, int64_t> Buckets;
  int64_t Total = 0;
  double Sum = 0.0;
};

/// Thread-safe named-metric registry.
class Registry {
public:
  /// Adds \p Delta (default 1) to counter \p Name.
  void count(const std::string &Name, int64_t Delta = 1);
  /// Sets gauge \p Name to \p V (last write wins).
  void gauge(const std::string &Name, double V);
  /// Records \p V into histogram \p Name. NaN samples are dropped — this
  /// is where the opd-of-zero-datums convention is enforced: unset is
  /// skipped, not averaged in as zero.
  void observe(const std::string &Name, double V);

  int64_t counterValue(const std::string &Name) const;
  double gaugeValue(const std::string &Name) const;
  /// Copy of histogram \p Name (empty histogram when absent).
  Histogram histogram(const std::string &Name) const;

  /// Merges every metric of \p Other into this registry: counters add,
  /// gauges take Other's value, histograms merge exactly.
  void merge(const Registry &Other);

  /// Full registry as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{...}}}.
  /// Keys are sorted, output is deterministic.
  std::string toJson() const;

  /// A consistent copy of every metric, for renderers (Prometheus text
  /// exposition, reports) that iterate outside the registry lock.
  struct Snapshot {
    std::map<std::string, int64_t> Counters;
    std::map<std::string, double> Gauges;
    std::map<std::string, Histogram> Histograms;
  };
  Snapshot snapshot() const;

  void clear();

private:
  mutable std::mutex Mu;
  std::map<std::string, int64_t> Counters;
  std::map<std::string, double> Gauges;
  std::map<std::string, Histogram> Histograms;
};

} // namespace obs
} // namespace simdize

#endif // SIMDIZE_OBS_METRICS_H
