//===- obs/Json.cpp -------------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include "support/Format.h"

#include <cassert>
#include <cmath>
#include <cstdlib>

using namespace simdize;
using namespace simdize::obs;
using namespace simdize::obs::json;

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

std::string json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += strf("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

void Writer::separate() {
  if (IsObject.empty())
    return;
  if (IsObject.back() && !PendingKey)
    assert(false && "value emitted without a key inside an object");
  if (PendingKey) {
    PendingKey = false;
    return; // key() already placed the comma and colon.
  }
  if (HasElems.back())
    Out += ',';
  HasElems.back() = true;
}

Writer &Writer::beginObject() {
  separate();
  Out += '{';
  IsObject.push_back(true);
  HasElems.push_back(false);
  return *this;
}

Writer &Writer::endObject() {
  assert(!IsObject.empty() && IsObject.back() && !PendingKey &&
         "mismatched endObject");
  Out += '}';
  IsObject.pop_back();
  HasElems.pop_back();
  return *this;
}

Writer &Writer::beginArray() {
  separate();
  Out += '[';
  IsObject.push_back(false);
  HasElems.push_back(false);
  return *this;
}

Writer &Writer::endArray() {
  assert(!IsObject.empty() && !IsObject.back() && "mismatched endArray");
  Out += ']';
  IsObject.pop_back();
  HasElems.pop_back();
  return *this;
}

Writer &Writer::key(const std::string &K) {
  assert(!IsObject.empty() && IsObject.back() && !PendingKey &&
         "key() outside an object");
  if (HasElems.back())
    Out += ',';
  HasElems.back() = true;
  Out += '"';
  Out += escape(K);
  Out += "\":";
  PendingKey = true;
  return *this;
}

Writer &Writer::value(const std::string &V) {
  separate();
  Out += '"';
  Out += escape(V);
  Out += '"';
  return *this;
}

Writer &Writer::value(const char *V) { return value(std::string(V)); }

Writer &Writer::value(int64_t V) {
  separate();
  Out += strf("%lld", static_cast<long long>(V));
  return *this;
}

Writer &Writer::value(uint64_t V) {
  separate();
  Out += strf("%llu", static_cast<unsigned long long>(V));
  return *this;
}

Writer &Writer::value(double V) {
  if (!std::isfinite(V))
    return null();
  separate();
  Out += strf("%.17g", V);
  return *this;
}

Writer &Writer::value(bool V) {
  separate();
  Out += V ? "true" : "false";
  return *this;
}

Writer &Writer::null() {
  separate();
  Out += "null";
  return *this;
}

Writer &Writer::raw(const std::string &Fragment) {
  separate();
  Out += Fragment;
  return *this;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

const Value *Value::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      return &V;
  return nullptr;
}

namespace {

/// Recursive-descent JSON parser over a string view. Depth is bounded so a
/// malicious artifact cannot blow the stack.
class Parser {
public:
  Parser(const std::string &Text, std::string *Err) : Text(Text), Err(Err) {}

  std::optional<Value> run() {
    std::optional<Value> V = parseValue(0);
    if (!V)
      return std::nullopt;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing garbage after document");
    return V;
  }

private:
  static constexpr unsigned MaxDepth = 128;

  std::optional<Value> fail(const std::string &Why) {
    if (Err && Err->empty())
      *Err = strf("at byte %zu: %s", Pos, Why.c_str());
    return std::nullopt;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Lit) {
    size_t N = std::string(Lit).size();
    if (Text.compare(Pos, N, Lit) == 0) {
      Pos += N;
      return true;
    }
    return false;
  }

  std::optional<std::string> parseString() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string S;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return S;
      if (C == '\\') {
        if (Pos >= Text.size())
          break;
        char E = Text[Pos++];
        switch (E) {
        case '"':
          S += '"';
          break;
        case '\\':
          S += '\\';
          break;
        case '/':
          S += '/';
          break;
        case 'n':
          S += '\n';
          break;
        case 'r':
          S += '\r';
          break;
        case 't':
          S += '\t';
          break;
        case 'b':
          S += '\b';
          break;
        case 'f':
          S += '\f';
          break;
        case 'u': {
          if (Pos + 4 > Text.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned Code = 0;
          for (unsigned K = 0; K < 4; ++K) {
            char H = Text[Pos++];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= static_cast<unsigned>(H - 'A' + 10);
            else {
              fail("bad \\u escape digit");
              return std::nullopt;
            }
          }
          // UTF-8 encode (surrogate pairs are not needed by our writers).
          if (Code < 0x80) {
            S += static_cast<char>(Code);
          } else if (Code < 0x800) {
            S += static_cast<char>(0xC0 | (Code >> 6));
            S += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            S += static_cast<char>(0xE0 | (Code >> 12));
            S += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            S += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
          return std::nullopt;
        }
      } else if (static_cast<unsigned char>(C) < 0x20) {
        fail("raw control character in string");
        return std::nullopt;
      } else {
        S += C;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Value> parseValue(unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");

    char C = Text[Pos];
    Value V;
    if (C == '{') {
      ++Pos;
      V.K = Value::Kind::Object;
      skipWs();
      if (consume('}'))
        return V;
      for (;;) {
        skipWs();
        auto Key = parseString();
        if (!Key)
          return std::nullopt;
        if (!consume(':'))
          return fail("expected ':' after object key");
        auto Member = parseValue(Depth + 1);
        if (!Member)
          return std::nullopt;
        V.Obj.emplace_back(std::move(*Key), std::move(*Member));
        if (consume(','))
          continue;
        if (consume('}'))
          return V;
        return fail("expected ',' or '}' in object");
      }
    }
    if (C == '[') {
      ++Pos;
      V.K = Value::Kind::Array;
      skipWs();
      if (consume(']'))
        return V;
      for (;;) {
        auto Elem = parseValue(Depth + 1);
        if (!Elem)
          return std::nullopt;
        V.Arr.push_back(std::move(*Elem));
        if (consume(','))
          continue;
        if (consume(']'))
          return V;
        return fail("expected ',' or ']' in array");
      }
    }
    if (C == '"') {
      auto S = parseString();
      if (!S)
        return std::nullopt;
      V.K = Value::Kind::String;
      V.Str = std::move(*S);
      return V;
    }
    if (literal("true")) {
      V.K = Value::Kind::Bool;
      V.Bool = true;
      return V;
    }
    if (literal("false")) {
      V.K = Value::Kind::Bool;
      V.Bool = false;
      return V;
    }
    if (literal("null"))
      return V;

    // Number: strtod with strict syntax pre-check (JSON forbids leading
    // '+', bare '.', and hex).
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
      return fail("expected value");
    while (Pos < Text.size() &&
           ((Text[Pos] >= '0' && Text[Pos] <= '9') || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E' || Text[Pos] == '+' ||
            Text[Pos] == '-'))
      ++Pos;
    std::string Num = Text.substr(Start, Pos - Start);
    char *End = nullptr;
    double D = std::strtod(Num.c_str(), &End);
    if (End != Num.c_str() + Num.size())
      return fail("malformed number");
    V.K = Value::Kind::Number;
    V.Num = D;
    return V;
  }

  const std::string &Text;
  std::string *Err;
  size_t Pos = 0;
};

} // namespace

std::optional<Value> json::parse(const std::string &Text, std::string *Err) {
  return Parser(Text, Err).run();
}
