//===- obs/Trace.cpp ------------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Json.h"
#include "support/Format.h"

#include <algorithm>
#include <map>

using namespace simdize;
using namespace simdize::obs;

void Tracer::record(TraceEvent E) {
  std::lock_guard<std::mutex> L(Mu);
  Events.push_back(std::move(E));
}

uint32_t Tracer::tidOf(std::thread::id Id) {
  std::lock_guard<std::mutex> L(Mu);
  for (const auto &[Known, Tid] : Tids)
    if (Known == Id)
      return Tid;
  uint32_t Tid = static_cast<uint32_t>(Tids.size());
  Tids.emplace_back(Id, Tid);
  return Tid;
}

size_t Tracer::eventCount() const {
  std::lock_guard<std::mutex> L(Mu);
  return Events.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> L(Mu);
  Events.clear();
  Tids.clear();
}

std::string Tracer::chromeEventsFragment() const {
  std::vector<TraceEvent> Snapshot;
  {
    std::lock_guard<std::mutex> L(Mu);
    Snapshot = Events;
  }
  // Chrome's viewer nests same-tid "X" events by timestamp containment, but
  // only reliably when parents precede children; destruction order records
  // children first, so sort by (tid, start, -dur).
  std::stable_sort(Snapshot.begin(), Snapshot.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     if (A.Tid != B.Tid)
                       return A.Tid < B.Tid;
                     if (A.StartUs != B.StartUs)
                       return A.StartUs < B.StartUs;
                     return A.DurUs > B.DurUs;
                   });

  uint64_t Pid = TraceId ? TraceId : 1;
  std::string Out;
  bool First = true;
  for (const TraceEvent &E : Snapshot) {
    if (!First)
      Out += ',';
    First = false;
    json::Writer W(Out);
    W.beginObject()
        .field("name", E.Name)
        .field("cat", E.Cat)
        .field("ph", "X")
        .field("ts", E.StartUs)
        .field("dur", E.DurUs)
        .field("pid", Pid)
        .field("tid", static_cast<uint64_t>(E.Tid));
    if (!E.Args.empty()) {
      W.key("args").beginObject();
      for (const auto &[K, V] : E.Args) {
        // Values are pre-rendered JSON fragments; splice them verbatim.
        W.key(K);
        W.raw(V);
      }
      W.endObject();
    }
    W.endObject();
  }
  return Out;
}

std::string Tracer::toChromeJson() const {
  std::string Out = "{\"traceEvents\":[";
  Out += chromeEventsFragment();
  Out += "],\"displayTimeUnit\":\"ms\"}";
  return Out;
}

std::string Tracer::summary() const {
  struct Agg {
    int64_t Count = 0;
    int64_t TotalUs = 0;
  };
  std::map<std::string, Agg> ByName;
  {
    std::lock_guard<std::mutex> L(Mu);
    for (const TraceEvent &E : Events) {
      Agg &A = ByName[E.Name];
      ++A.Count;
      A.TotalUs += E.DurUs;
    }
  }
  std::vector<std::pair<std::string, Agg>> Rows(ByName.begin(), ByName.end());
  std::stable_sort(Rows.begin(), Rows.end(), [](const auto &A, const auto &B) {
    return A.second.TotalUs > B.second.TotalUs;
  });

  std::string Out = strf("%-28s %8s %12s %12s\n", "phase", "calls", "total_us",
                         "mean_us");
  for (const auto &[Name, A] : Rows)
    Out += strf("%-28s %8lld %12lld %12.1f\n", Name.c_str(),
                static_cast<long long>(A.Count),
                static_cast<long long>(A.TotalUs),
                A.Count ? static_cast<double>(A.TotalUs) / A.Count : 0.0);
  return Out;
}

//===----------------------------------------------------------------------===//
// Global installation
//===----------------------------------------------------------------------===//

namespace {
std::atomic<Tracer *> GlobalTracer{nullptr};
} // namespace

thread_local Tracer *obs::detail::ThreadTracer = nullptr;

void obs::installTracer(Tracer *T) {
  GlobalTracer.store(T, std::memory_order_release);
}

Tracer *obs::activeTracer() {
  return GlobalTracer.load(std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Span arguments
//===----------------------------------------------------------------------===//

void Span::arg(const char *Key, int64_t V) {
  if (T)
    Args.emplace_back(Key, strf("%lld", static_cast<long long>(V)));
}

void Span::argStr(const char *Key, const std::string &V) {
  if (!T)
    return;
  std::string Quoted = "\"";
  Quoted += json::escape(V);
  Quoted += '"';
  Args.emplace_back(Key, std::move(Quoted));
}
