//===- obs/Trace.h - Span-based pipeline tracing -------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase-level tracing of the simdization pipeline. Every pipeline stage
/// (parse, stream-offset analysis, reorganization graph, shift placement,
/// codegen, the optimization passes, the VVerifier, decode, execute,
/// check) opens a Span; when a Tracer is installed the span records a
/// Chrome trace-event "complete" event (name, category, start, duration,
/// thread), exportable with toChromeJson() and loadable in Perfetto or
/// chrome://tracing. See docs/OBSERVABILITY.md.
///
/// The subsystem is near-zero-overhead when disabled: installTracer(nullptr)
/// is the default state, and a Span on the disabled path costs one relaxed
/// atomic load and a branch — no clock reads, no allocation, no locking.
/// This is measured by the BM_PipelineTraced{Off,On} pair in bench_speed.
///
/// Tracers are thread-safe: spans from concurrent fuzz workers record
/// under a mutex and carry a small per-tracer thread id, so one trace can
/// absorb a whole --jobs=N sweep.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_OBS_TRACE_H
#define SIMDIZE_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace simdize {
namespace obs {

/// One completed span, in Chrome trace-event "X" form.
struct TraceEvent {
  const char *Name = "";  ///< Phase name; string literals only.
  const char *Cat = "";   ///< Category ("pipeline", "sim", "opt", ...).
  int64_t StartUs = 0;    ///< Microseconds since the tracer's epoch.
  int64_t DurUs = 0;      ///< Span duration in microseconds.
  uint32_t Tid = 0;       ///< Small per-tracer thread id.
  /// Optional (key, pre-rendered JSON value) arguments; values must be
  /// valid JSON fragments (use json::Writer or plain number strings).
  std::vector<std::pair<const char *, std::string>> Args;
};

/// Collects spans and renders them as Chrome trace-event JSON plus a
/// human-readable per-phase summary.
class Tracer {
public:
  Tracer() : Epoch(std::chrono::steady_clock::now()) {}

  /// Microseconds since this tracer was created.
  int64_t nowUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - Epoch)
        .count();
  }

  /// Records one completed span. Thread-safe.
  void record(TraceEvent E);

  /// Small dense id for the calling thread, allocated on first use.
  uint32_t tidOf(std::thread::id Id);

  size_t eventCount() const;

  /// Drops every recorded event (the epoch is kept).
  void clear();

  /// The full trace as a Chrome trace-event JSON document:
  /// {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,...},...]}.
  std::string toChromeJson() const;

  /// Human-readable per-phase aggregation: one line per span name with
  /// call count, total and mean duration, sorted by total descending.
  std::string summary() const;

private:
  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex Mu;
  std::vector<TraceEvent> Events;
  std::vector<std::pair<std::thread::id, uint32_t>> Tids;
};

/// \name Global tracer installation
/// The pipeline libraries reach the tracer through one global atomic
/// pointer, so enabling tracing requires no API plumbing through every
/// layer. Install before the traced work, uninstall (nullptr) before the
/// tracer is destroyed. Not owned.
/// @{
void installTracer(Tracer *T);
Tracer *activeTracer();
/// @}

/// RAII span: opens at construction, records at destruction — when a
/// tracer is installed; otherwise every member is a no-op.
class Span {
public:
  explicit Span(const char *Name, const char *Cat = "pipeline")
      : T(activeTracer()), Name(Name), Cat(Cat) {
    if (T)
      StartUs = T->nowUs();
  }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  ~Span() {
    if (!T)
      return;
    TraceEvent E;
    E.Name = Name;
    E.Cat = Cat;
    E.StartUs = StartUs;
    E.DurUs = T->nowUs() - StartUs;
    E.Tid = T->tidOf(std::this_thread::get_id());
    E.Args = std::move(Args);
    T->record(std::move(E));
  }

  /// Whether a tracer is installed — guard for argument computation that
  /// is not free.
  bool active() const { return T != nullptr; }

  /// Attaches an integer argument (no-op when disabled).
  void arg(const char *Key, int64_t V);
  /// Attaches a string argument (no-op when disabled).
  void argStr(const char *Key, const std::string &V);

private:
  Tracer *T;
  const char *Name;
  const char *Cat;
  int64_t StartUs = 0;
  std::vector<std::pair<const char *, std::string>> Args;
};

} // namespace obs
} // namespace simdize

#endif // SIMDIZE_OBS_TRACE_H
