//===- obs/Trace.h - Span-based pipeline tracing -------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase-level tracing of the simdization pipeline. Every pipeline stage
/// (parse, stream-offset analysis, reorganization graph, shift placement,
/// codegen, the optimization passes, the VVerifier, decode, execute,
/// check) opens a Span; when a Tracer is installed the span records a
/// Chrome trace-event "complete" event (name, category, start, duration,
/// thread), exportable with toChromeJson() and loadable in Perfetto or
/// chrome://tracing. See docs/OBSERVABILITY.md.
///
/// The subsystem is near-zero-overhead when disabled: installTracer(nullptr)
/// is the default state, and a Span on the disabled path costs one relaxed
/// atomic load and a branch — no clock reads, no allocation, no locking.
/// This is measured by the BM_PipelineTraced{Off,On} pair in bench_speed.
///
/// Tracers are thread-safe: spans from concurrent fuzz workers record
/// under a mutex and carry a small per-tracer thread id, so one trace can
/// absorb a whole --jobs=N sweep.
///
/// Two installation scopes coexist:
///
///  - installTracer(): one process-global tracer, what the CLI tools use
///    for whole-run traces;
///  - TraceContext: an RAII thread-local override, what the compile
///    server uses to give every concurrent request its own span tree.
///    A span binds to currentTracer() — the thread's context if one is
///    active, the global tracer otherwise — so the same instrumented
///    pipeline code serves both scopes unchanged. Contexts do not
///    propagate to spawned threads; a worker that should record into a
///    request's tracer re-installs it with its own TraceContext.
///
/// Each Tracer carries a trace id (0 when unset) rendered as the Chrome
/// "pid" field, so per-request traces group as separate process rows in
/// the viewer.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_OBS_TRACE_H
#define SIMDIZE_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace simdize {
namespace obs {

/// One completed span, in Chrome trace-event "X" form.
struct TraceEvent {
  const char *Name = "";  ///< Phase name; string literals only.
  const char *Cat = "";   ///< Category ("pipeline", "sim", "opt", ...).
  int64_t StartUs = 0;    ///< Microseconds since the tracer's epoch.
  int64_t DurUs = 0;      ///< Span duration in microseconds.
  uint32_t Tid = 0;       ///< Small per-tracer thread id.
  /// Optional (key, pre-rendered JSON value) arguments; values must be
  /// valid JSON fragments (use json::Writer or plain number strings).
  std::vector<std::pair<const char *, std::string>> Args;
};

/// Collects spans and renders them as Chrome trace-event JSON plus a
/// human-readable per-phase summary.
class Tracer {
public:
  Tracer() : Epoch(std::chrono::steady_clock::now()) {}

  /// Microseconds since this tracer was created.
  int64_t nowUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - Epoch)
        .count();
  }

  /// Records one completed span. Thread-safe.
  void record(TraceEvent E);

  /// Small dense id for the calling thread, allocated on first use.
  uint32_t tidOf(std::thread::id Id);

  size_t eventCount() const;

  /// Drops every recorded event (the epoch is kept).
  void clear();

  /// The trace/request id this tracer's events belong to; rendered as the
  /// Chrome "pid" (0 means unset and renders as pid 1).
  void setTraceId(uint64_t Id) { TraceId = Id; }
  uint64_t traceId() const { return TraceId; }

  /// The full trace as a Chrome trace-event JSON document:
  /// {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,...},...]}.
  std::string toChromeJson() const;

  /// The sorted events alone, as a comma-joined sequence of JSON objects
  /// (no enclosing brackets) — the splice a streaming trace file appends
  /// per completed request. Empty string when no events were recorded.
  std::string chromeEventsFragment() const;

  /// Human-readable per-phase aggregation: one line per span name with
  /// call count, total and mean duration, sorted by total descending.
  std::string summary() const;

private:
  std::chrono::steady_clock::time_point Epoch;
  uint64_t TraceId = 0;
  mutable std::mutex Mu;
  std::vector<TraceEvent> Events;
  std::vector<std::pair<std::thread::id, uint32_t>> Tids;
};

/// \name Global tracer installation
/// The pipeline libraries reach the tracer through one global atomic
/// pointer, so enabling tracing requires no API plumbing through every
/// layer. Install before the traced work, uninstall (nullptr) before the
/// tracer is destroyed. Not owned.
/// @{
void installTracer(Tracer *T);
Tracer *activeTracer();
/// @}

namespace detail {
/// The thread's context override; nullptr means "fall back to the global
/// tracer". Managed exclusively by TraceContext.
extern thread_local Tracer *ThreadTracer;
} // namespace detail

/// The tracer spans bind to on this thread: the innermost active
/// TraceContext's tracer, or the global one when no context is active.
inline Tracer *currentTracer() {
  Tracer *T = detail::ThreadTracer;
  return T ? T : activeTracer();
}

/// RAII thread-local tracer override: while alive, every Span opened on
/// this thread records into \p T instead of the global tracer. Contexts
/// nest (destruction restores the previous override) and are how the
/// compile server attaches each request's span tree to its own Tracer
/// while requests run concurrently. Not owned; \p T must outlive the
/// context. Thread-locals do not propagate: a worker thread serving part
/// of the request re-installs the tracer with its own TraceContext.
class TraceContext {
public:
  explicit TraceContext(Tracer *T) : Saved(detail::ThreadTracer) {
    detail::ThreadTracer = T;
  }

  TraceContext(const TraceContext &) = delete;
  TraceContext &operator=(const TraceContext &) = delete;

  ~TraceContext() { detail::ThreadTracer = Saved; }

private:
  Tracer *Saved;
};

/// The trace id of the thread's current tracer; 0 when untraced.
inline uint64_t currentTraceId() {
  Tracer *T = currentTracer();
  return T ? T->traceId() : 0;
}

/// RAII span: opens at construction, records at destruction — when a
/// tracer is current on this thread; otherwise every member is a no-op.
class Span {
public:
  explicit Span(const char *Name, const char *Cat = "pipeline")
      : T(currentTracer()), Name(Name), Cat(Cat) {
    if (T)
      StartUs = T->nowUs();
  }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  ~Span() {
    if (!T)
      return;
    TraceEvent E;
    E.Name = Name;
    E.Cat = Cat;
    E.StartUs = StartUs;
    E.DurUs = T->nowUs() - StartUs;
    E.Tid = T->tidOf(std::this_thread::get_id());
    E.Args = std::move(Args);
    T->record(std::move(E));
  }

  /// Whether a tracer is installed — guard for argument computation that
  /// is not free.
  bool active() const { return T != nullptr; }

  /// Attaches an integer argument (no-op when disabled).
  void arg(const char *Key, int64_t V);
  /// Attaches a string argument (no-op when disabled).
  void argStr(const char *Key, const std::string &V);

private:
  Tracer *T;
  const char *Name;
  const char *Cat;
  int64_t StartUs = 0;
  std::vector<std::pair<const char *, std::string>> Args;
};

} // namespace obs
} // namespace simdize

#endif // SIMDIZE_OBS_TRACE_H
