//===- obs/Prometheus.h - Text-exposition rendering of the registry ------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prometheus text-exposition-format (0.0.4) rendering of obs::Registry:
/// counters become `<name>_total`, gauges stay bare, histograms render as
/// the cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
/// Registry names ("server.request_ms") are sanitized into the metric
/// charset ([a-zA-Z0-9_:], '.' -> '_'); label values are escaped per the
/// format (backslash, double quote, newline). Output is deterministic:
/// families in sorted name order, buckets in ascending `le` order, so a
/// golden test can pin it byte for byte.
///
/// The renderer is two layers: PromWriter, a small line writer callers
/// (the compile server) use to append their own families — cache-layer
/// attribution, build info — and toPrometheusText(), which renders one
/// whole registry through it.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_OBS_PROMETHEUS_H
#define SIMDIZE_OBS_PROMETHEUS_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace simdize {
namespace obs {

class Histogram;
class Registry;

/// Maps \p Name into the Prometheus metric-name charset: '.' becomes '_',
/// any other character outside [a-zA-Z0-9_:] becomes '_', and a leading
/// digit gets a '_' prefix.
std::string prometheusName(const std::string &Name);

/// Escapes \p V for use inside a label value: backslash, double quote,
/// and newline get backslash escapes (the exposition format's rules).
std::string prometheusEscapeLabel(const std::string &V);

/// One (label, value) pair; values are raw (escaped at render time).
using PromLabels = std::vector<std::pair<std::string, std::string>>;

/// Appends exposition-format lines to a caller-owned string. Every metric
/// name passed in is prefixed with \p Prefix and sanitized.
class PromWriter {
public:
  PromWriter(std::string &Out, std::string Prefix)
      : Out(Out), Prefix(std::move(Prefix)) {}

  /// Emits the `# TYPE <name> <type>` header for a family.
  void type(const std::string &Name, const char *Type);

  /// Emits one sample line, optionally labeled. Doubles render %.17g;
  /// NaN renders as "NaN" (valid in the exposition format).
  void sample(const std::string &Name, double V,
              const PromLabels &Labels = {});

  /// Emits a full histogram family: TYPE header, cumulative buckets with
  /// the terminal +Inf, `_sum`, and `_count`.
  void histogram(const std::string &Name, const Histogram &H);

private:
  std::string &Out;
  std::string Prefix;
};

/// Renders every metric of \p Reg in exposition format with the given
/// name prefix (default matches the project namespace).
std::string toPrometheusText(const Registry &Reg,
                             const std::string &Prefix = "simdize_");

} // namespace obs
} // namespace simdize

#endif // SIMDIZE_OBS_PROMETHEUS_H
