//===- obs/DecisionLog.cpp ------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "obs/DecisionLog.h"

#include "obs/Json.h"
#include "support/Format.h"

using namespace simdize;
using namespace simdize::obs;

std::string DecisionLog::toJson() const {
  std::string Out;
  json::Writer W(Out);
  W.beginObject()
      .field("policy", Policy)
      .field("software_pipelining", SoftwarePipelining)
      .field("vector_len", VectorLen)
      .field("simdized", Simdized);
  if (!Simdized)
    W.field("error", Error).field("error_kind", ErrorKind);

  W.key("statements").beginArray();
  for (const StmtDecision &S : Stmts) {
    W.beginObject()
        .field("index", S.Index)
        .field("text", S.Text)
        .field("kind", S.Kind);
    if (S.Kind == "if")
      W.key("guard")
          .beginObject()
          .field("cmp", S.GuardCmp)
          .field("predicate_stream", S.PredicateStream)
          .endObject();
    if (S.Kind == "reduce")
      W.key("reduction")
          .beginObject()
          .field("op", S.ReduceOp)
          .field("final_shuffles", S.FinalShuffles)
          .endObject();
    W.key("accesses").beginArray();
    for (const AccessDecision &A : S.Accesses)
      W.beginObject()
          .field("array", A.Array)
          .field("elem_offset", A.ElemOffset)
          .field("stream_offset", A.StreamOffset)
          .field("is_store", A.IsStore)
          .endObject();
    W.endArray();
    W.key("shifts").beginArray();
    for (const ShiftDecision &Sh : S.Shifts)
      W.beginObject().field("from", Sh.From).field("to", Sh.To).endObject();
    W.endArray();
    W.field("predicted_shifts", S.PredictedShifts)
        .field("placed_shifts", S.PlacedShifts)
        .field("steady_shifts", S.SteadyShifts)
        .endObject();
  }
  W.endArray();

  if (Simdized) {
    W.key("shape")
        .beginObject()
        .field("lower_bound", Shape.LowerBound)
        .field("upper_bound", Shape.UpperBound)
        .field("vector_len", Shape.VectorLen)
        .field("elem_size", Shape.ElemSize)
        .field("blocking_factor", Shape.BlockingFactor)
        .field("loop_step", Shape.LoopStep)
        .field("trip_count_known", Shape.TripCountKnown)
        .field("trip_count", Shape.TripCount)
        .field("setup_insts", Shape.SetupInsts)
        .field("body_insts", Shape.BodyInsts)
        .field("epilogue_insts", Shape.EpilogueInsts)
        .field("prologue_stores", Shape.PrologueStores)
        .field("epilogue_stores", Shape.EpilogueStores)
        .endObject();
  }

  W.field("opt_ran", OptRan);
  W.key("opt_rewrites").beginArray();
  for (const OptRewriteDecision &O : OptRewrites)
    W.beginObject()
        .field("pass", O.Pass)
        .field("effect", O.Effect)
        .field("count", O.Count)
        .endObject();
  W.endArray();
  W.endObject();
  return Out;
}

std::string DecisionLog::explainText() const {
  std::string Out;
  Out += strf("== simdization decisions (policy %s%s, V=%u) ==\n",
              Policy.c_str(), SoftwarePipelining ? "+SP" : "", VectorLen);
  if (!Simdized) {
    Out += strf("  not simdized (%s): %s\n", ErrorKind.c_str(), Error.c_str());
    return Out;
  }
  for (const StmtDecision &S : Stmts) {
    Out += strf("stmt %u (%s): %s\n", S.Index, S.Kind.c_str(),
                S.Text.c_str());
    if (S.Kind == "if")
      Out += strf("  guard: cmp %s, predicate mask at stream offset %s\n",
                  S.GuardCmp.c_str(), S.PredicateStream.c_str());
    if (S.Kind == "reduce")
      Out += strf("  reduction: %s, %u lane-fold rotate round(s)\n",
                  S.ReduceOp.c_str(), S.FinalShuffles);
    for (const AccessDecision &A : S.Accesses)
      Out += strf("  %-5s %s[i%+lld]  stream offset %s\n",
                  A.IsStore ? "store" : "load", A.Array.c_str(),
                  static_cast<long long>(A.ElemOffset),
                  A.StreamOffset.c_str());
    if (S.Shifts.empty())
      Out += "  shifts: none\n";
    for (const ShiftDecision &Sh : S.Shifts)
      Out += strf("  shift: %s -> %s\n", Sh.From.c_str(), Sh.To.c_str());
    Out += strf("  shift count: predicted %u, placed %u%s; "
                "%u vshiftpair per steady iteration\n",
                S.PredictedShifts, S.PlacedShifts,
                S.PredictedShifts == S.PlacedShifts ? "" : "  ** MISMATCH **",
                S.SteadyShifts);
  }
  Out += strf("shape: steady loop [%s, %s) step %u (B=%u, V=%u, D=%u)\n",
              Shape.LowerBound.c_str(), Shape.UpperBound.c_str(),
              Shape.LoopStep, Shape.BlockingFactor, Shape.VectorLen,
              Shape.ElemSize);
  Out += strf("  trip count: %s\n",
              Shape.TripCountKnown
                  ? strf("%lld", static_cast<long long>(Shape.TripCount))
                        .c_str()
                  : "runtime");
  Out += strf("  insts: setup %u, body %u, epilogue %u\n", Shape.SetupInsts,
              Shape.BodyInsts, Shape.EpilogueInsts);
  Out += strf("  peel: %u prologue store(s), %u epilogue store(s)\n",
              Shape.PrologueStores, Shape.EpilogueStores);
  if (OptRan) {
    Out += "opt rewrites:\n";
    for (const OptRewriteDecision &O : OptRewrites)
      Out += strf("  %-22s %s %u\n", O.Pass.c_str(), O.Effect.c_str(),
                  O.Count);
  }
  return Out;
}
