//===- obs/Prometheus.cpp -------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "obs/Prometheus.h"

#include "obs/Metrics.h"
#include "support/Format.h"

#include <cmath>

using namespace simdize;
using namespace simdize::obs;

std::string obs::prometheusName(const std::string &Name) {
  std::string Out;
  Out.reserve(Name.size() + 1);
  for (char C : Name) {
    bool Valid = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                 (C >= '0' && C <= '9') || C == '_' || C == ':';
    Out += Valid ? C : '_';
  }
  if (!Out.empty() && Out[0] >= '0' && Out[0] <= '9')
    Out.insert(Out.begin(), '_');
  return Out;
}

std::string obs::prometheusEscapeLabel(const std::string &V) {
  std::string Out;
  Out.reserve(V.size());
  for (char C : V) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '"')
      Out += "\\\"";
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
  return Out;
}

namespace {

std::string formatValue(double V) {
  if (std::isnan(V))
    return "NaN";
  if (std::isinf(V))
    return V > 0 ? "+Inf" : "-Inf";
  return strf("%.17g", V);
}

void appendLabels(std::string &Out, const PromLabels &Labels) {
  if (Labels.empty())
    return;
  Out += '{';
  bool First = true;
  for (const auto &[K, V] : Labels) {
    if (!First)
      Out += ',';
    First = false;
    Out += prometheusName(K);
    Out += "=\"";
    Out += prometheusEscapeLabel(V);
    Out += '"';
  }
  Out += '}';
}

} // namespace

void PromWriter::type(const std::string &Name, const char *Type) {
  Out += "# TYPE ";
  Out += Prefix + prometheusName(Name);
  Out += ' ';
  Out += Type;
  Out += '\n';
}

void PromWriter::sample(const std::string &Name, double V,
                        const PromLabels &Labels) {
  Out += Prefix + prometheusName(Name);
  appendLabels(Out, Labels);
  Out += ' ';
  Out += formatValue(V);
  Out += '\n';
}

void PromWriter::histogram(const std::string &Name, const Histogram &H) {
  type(Name, "histogram");
  for (const auto &[Edge, Cum] : H.cumulativeBuckets())
    sample(Name + "_bucket", static_cast<double>(Cum),
           {{"le", formatValue(Edge)}});
  sample(Name + "_bucket", static_cast<double>(H.count()),
         {{"le", "+Inf"}});
  sample(Name + "_sum", H.sum());
  sample(Name + "_count", static_cast<double>(H.count()));
}

std::string obs::toPrometheusText(const Registry &Reg,
                                  const std::string &Prefix) {
  Registry::Snapshot S = Reg.snapshot();
  std::string Out;
  PromWriter W(Out, Prefix);
  for (const auto &[Name, V] : S.Counters) {
    // Prometheus counters conventionally carry a _total suffix.
    W.type(Name + "_total", "counter");
    W.sample(Name + "_total", static_cast<double>(V));
  }
  for (const auto &[Name, V] : S.Gauges) {
    W.type(Name, "gauge");
    W.sample(Name, V);
  }
  for (const auto &[Name, H] : S.Histograms)
    W.histogram(Name, H);
  return Out;
}
