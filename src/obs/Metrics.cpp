//===- obs/Metrics.cpp ----------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/Json.h"

#include <cmath>
#include <limits>

using namespace simdize;
using namespace simdize::obs;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

namespace {
/// Sub-buckets per power of two; 16 gives ~7% relative resolution.
constexpr int SubBuckets = 16;
/// Bucket index reserved for zero (and clamped negatives).
constexpr int ZeroBucket = std::numeric_limits<int>::min();
} // namespace

int Histogram::bucketOf(double V) {
  if (!(V > 0.0)) // zero, negatives, NaN
    return ZeroBucket;
  int Exp = 0;
  double Mant = std::frexp(V, &Exp); // V = Mant * 2^Exp, Mant in [0.5, 1)
  int Sub = static_cast<int>((Mant - 0.5) * 2.0 * SubBuckets);
  if (Sub >= SubBuckets)
    Sub = SubBuckets - 1;
  return Exp * SubBuckets + Sub;
}

double Histogram::representative(int Bucket) {
  if (Bucket == ZeroBucket)
    return 0.0;
  int Exp = Bucket >= 0 ? Bucket / SubBuckets
                        : -((-Bucket + SubBuckets - 1) / SubBuckets);
  int Sub = Bucket - Exp * SubBuckets;
  // Midpoint of the bucket's mantissa range [0.5 + Sub/32, 0.5 + (Sub+1)/32).
  double Mant = 0.5 + (Sub + 0.5) / (2.0 * SubBuckets);
  return std::ldexp(Mant, Exp);
}

void Histogram::addCount(int Bucket, int64_t N) {
  if (N <= 0)
    return;
  Buckets[Bucket] += N;
  Total += N;
  Sum += representative(Bucket) * static_cast<double>(N);
}

void Histogram::merge(const Histogram &Other) {
  for (const auto &[Bucket, N] : Other.Buckets) {
    Buckets[Bucket] += N;
    Total += N;
  }
  Sum += Other.Sum;
}

double Histogram::min() const {
  if (Buckets.empty())
    return std::numeric_limits<double>::quiet_NaN();
  return representative(Buckets.begin()->first);
}

double Histogram::max() const {
  if (Buckets.empty())
    return std::numeric_limits<double>::quiet_NaN();
  return representative(Buckets.rbegin()->first);
}

double Histogram::percentile(double Q) const {
  if (Total == 0)
    return std::numeric_limits<double>::quiet_NaN();
  if (Q < 0.0)
    Q = 0.0;
  if (Q > 1.0)
    Q = 1.0;
  // Rank of the Q-th sample (1-based, nearest-rank definition).
  int64_t Rank = static_cast<int64_t>(std::ceil(Q * static_cast<double>(Total)));
  if (Rank < 1)
    Rank = 1;
  int64_t Seen = 0;
  for (const auto &[Bucket, N] : Buckets) {
    Seen += N;
    if (Seen >= Rank)
      return representative(Bucket);
  }
  return representative(Buckets.rbegin()->first);
}

std::vector<std::pair<double, int64_t>> Histogram::cumulativeBuckets() const {
  std::vector<std::pair<double, int64_t>> Out;
  Out.reserve(Buckets.size());
  int64_t Cum = 0;
  for (const auto &[Bucket, N] : Buckets) {
    Cum += N;
    if (Bucket == ZeroBucket) {
      Out.emplace_back(0.0, Cum);
      continue;
    }
    // Exclusive upper edge of the bucket's mantissa range, one sub-bucket
    // above representative()'s midpoint.
    int Exp = Bucket >= 0 ? Bucket / SubBuckets
                          : -((-Bucket + SubBuckets - 1) / SubBuckets);
    int Sub = Bucket - Exp * SubBuckets;
    double Edge = std::ldexp(0.5 + (Sub + 1) / (2.0 * SubBuckets), Exp);
    Out.emplace_back(Edge, Cum);
  }
  return Out;
}

void Histogram::writeJson(json::Writer &W) const {
  W.beginObject()
      .field("count", Total)
      .field("sum", Sum)
      .field("mean", mean())
      .field("min", min())
      .field("max", max())
      .field("p50", percentile(0.50))
      .field("p90", percentile(0.90))
      .field("p99", percentile(0.99))
      .endObject();
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

void Registry::count(const std::string &Name, int64_t Delta) {
  std::lock_guard<std::mutex> L(Mu);
  Counters[Name] += Delta;
}

void Registry::gauge(const std::string &Name, double V) {
  std::lock_guard<std::mutex> L(Mu);
  Gauges[Name] = V;
}

void Registry::observe(const std::string &Name, double V) {
  if (std::isnan(V))
    return;
  std::lock_guard<std::mutex> L(Mu);
  Histograms[Name].add(V);
}

int64_t Registry::counterValue(const std::string &Name) const {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

double Registry::gaugeValue(const std::string &Name) const {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Gauges.find(Name);
  return It == Gauges.end() ? std::numeric_limits<double>::quiet_NaN()
                            : It->second;
}

Histogram Registry::histogram(const std::string &Name) const {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Histograms.find(Name);
  return It == Histograms.end() ? Histogram() : It->second;
}

void Registry::merge(const Registry &Other) {
  // Snapshot Other first so self-merge or lock-order issues cannot arise.
  std::map<std::string, int64_t> OC;
  std::map<std::string, double> OG;
  std::map<std::string, Histogram> OH;
  {
    std::lock_guard<std::mutex> L(Other.Mu);
    OC = Other.Counters;
    OG = Other.Gauges;
    OH = Other.Histograms;
  }
  std::lock_guard<std::mutex> L(Mu);
  for (const auto &[Name, V] : OC)
    Counters[Name] += V;
  for (const auto &[Name, V] : OG)
    Gauges[Name] = V;
  for (const auto &[Name, H] : OH)
    Histograms[Name].merge(H);
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> L(Mu);
  return {Counters, Gauges, Histograms};
}

std::string Registry::toJson() const {
  std::lock_guard<std::mutex> L(Mu);
  std::string Out;
  json::Writer W(Out);
  W.beginObject();
  W.key("counters").beginObject();
  for (const auto &[Name, V] : Counters)
    W.field(Name, V);
  W.endObject();
  W.key("gauges").beginObject();
  for (const auto &[Name, V] : Gauges)
    W.field(Name, V);
  W.endObject();
  W.key("histograms").beginObject();
  for (const auto &[Name, H] : Histograms) {
    W.key(Name);
    H.writeJson(W);
  }
  W.endObject();
  W.endObject();
  return Out;
}

void Registry::clear() {
  std::lock_guard<std::mutex> L(Mu);
  Counters.clear();
  Gauges.clear();
  Histograms.clear();
}
