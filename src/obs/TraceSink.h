//===- obs/TraceSink.h - Streaming Chrome-trace file writer --------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A side-channel trace file the compile server streams completed request
/// traces into: open() writes the Chrome trace-event document header,
/// append() splices one Tracer's sorted events (each request's tracer
/// carries its own trace id, rendered as the viewer's "pid" row), and
/// close() writes the trailer so the file is loadable in chrome://tracing
/// or Perfetto at any clean shutdown. Appends are serialized under a
/// mutex; the telemetry never touches response bytes.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_OBS_TRACESINK_H
#define SIMDIZE_OBS_TRACESINK_H

#include <cstdio>
#include <mutex>
#include <string>

namespace simdize {
namespace obs {

class Tracer;

/// Incrementally written Chrome trace-event JSON document. One writer per
/// file; append() is thread-safe. The destructor closes (with trailer) if
/// the caller has not.
class ChromeTraceWriter {
public:
  ChromeTraceWriter() = default;
  ~ChromeTraceWriter() { close(); }

  ChromeTraceWriter(const ChromeTraceWriter &) = delete;
  ChromeTraceWriter &operator=(const ChromeTraceWriter &) = delete;

  /// Opens \p Path and writes the document header. False (with \p Err
  /// filled when given) if the file cannot be created.
  bool open(const std::string &Path, std::string *Err = nullptr);

  bool isOpen() const { return F != nullptr; }

  /// Appends every event of \p T (no-op for an event-free tracer or a
  /// closed writer). Thread-safe.
  void append(const Tracer &T);

  /// Writes the trailer and closes the file. True when every write
  /// (including this one) succeeded. Idempotent.
  bool close();

private:
  std::mutex Mu;
  std::FILE *F = nullptr;
  bool Any = false; ///< Whether a fragment was written (comma handling).
  bool Ok = true;
};

} // namespace obs
} // namespace simdize

#endif // SIMDIZE_OBS_TRACESINK_H
