//===- obs/Json.h - Minimal JSON writer and validating parser ------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serialization substrate of the observability layer: a streaming
/// writer (used by the tracer, the metrics registry, the decision log, and
/// the fuzzer's JSONL records) and a small recursive-descent parser used
/// by tests and `simdize-tool --validate-json` to check that every emitted
/// artifact is well-formed without external tooling.
///
/// The writer produces deterministic output: keys appear in insertion
/// order and doubles are formatted with %.17g (shortest round-trippable
/// form is not needed; byte-stable output across runs is). NaN and
/// infinities are not representable in JSON and are emitted as null.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_OBS_JSON_H
#define SIMDIZE_OBS_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace simdize {
namespace obs {
namespace json {

/// Escapes \p S for inclusion in a JSON string literal (no quotes added).
std::string escape(const std::string &S);

/// Streaming JSON writer appending to a caller-owned string. Scopes are
/// explicit (beginObject/endObject, beginArray/endArray); the writer
/// inserts commas and validates key/value alternation with assertions.
class Writer {
public:
  explicit Writer(std::string &Out) : Out(Out) {}

  Writer &beginObject();
  Writer &endObject();
  Writer &beginArray();
  Writer &endArray();

  /// Emits an object key; the next emission must be its value.
  Writer &key(const std::string &K);

  Writer &value(const std::string &V);
  Writer &value(const char *V);
  Writer &value(int64_t V);
  Writer &value(uint64_t V);
  Writer &value(unsigned V) { return value(static_cast<uint64_t>(V)); }
  Writer &value(int V) { return value(static_cast<int64_t>(V)); }
  /// NaN and infinities become null (JSON has no representation for them).
  Writer &value(double V);
  Writer &value(bool V);
  Writer &null();

  /// Splices \p Fragment verbatim as one value. The caller guarantees it is
  /// a well-formed JSON value (used to re-emit pre-rendered pieces such as
  /// span arguments without reparsing).
  Writer &raw(const std::string &Fragment);

  /// key() + value() in one call.
  template <typename T> Writer &field(const std::string &K, T &&V) {
    key(K);
    return value(std::forward<T>(V));
  }

private:
  void separate();

  std::string &Out;
  /// One entry per open scope: true for objects (which alternate between
  /// keys and values), false for arrays.
  std::vector<bool> IsObject;
  /// Whether the current scope already holds at least one element.
  std::vector<bool> HasElems;
  bool PendingKey = false;
};

/// A parsed JSON value. Object keys keep insertion order so golden tests
/// can check field ordering if they care to.
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool Bool = false;
  double Num = 0.0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Object member lookup; null when absent or not an object.
  const Value *find(const std::string &Key) const;
};

/// Parses \p Text as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected). On failure returns std::nullopt and, when
/// \p Err is given, a position-attributed description.
std::optional<Value> parse(const std::string &Text, std::string *Err = nullptr);

} // namespace json
} // namespace obs
} // namespace simdize

#endif // SIMDIZE_OBS_JSON_H
