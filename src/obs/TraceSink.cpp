//===- obs/TraceSink.cpp --------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "obs/TraceSink.h"

#include "obs/Trace.h"

using namespace simdize;
using namespace simdize::obs;

bool ChromeTraceWriter::open(const std::string &Path, std::string *Err) {
  std::lock_guard<std::mutex> L(Mu);
  if (F)
    return true;
  F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    if (Err)
      *Err = "cannot open trace file " + Path;
    return false;
  }
  Ok = std::fputs("{\"traceEvents\":[", F) >= 0;
  return true;
}

void ChromeTraceWriter::append(const Tracer &T) {
  std::string Fragment = T.chromeEventsFragment();
  if (Fragment.empty())
    return;
  std::lock_guard<std::mutex> L(Mu);
  if (!F)
    return;
  if (Any)
    Ok &= std::fputc(',', F) != EOF;
  Any = true;
  Ok &= std::fputs(Fragment.c_str(), F) >= 0;
  // Flush per request: the file is a flight-data side channel and must be
  // loadable after a crash of whatever comes next.
  Ok &= std::fflush(F) == 0;
}

bool ChromeTraceWriter::close() {
  std::lock_guard<std::mutex> L(Mu);
  if (!F)
    return Ok;
  Ok &= std::fputs("],\"displayTimeUnit\":\"ms\"}\n", F) >= 0;
  Ok &= std::fclose(F) == 0;
  F = nullptr;
  return Ok;
}
