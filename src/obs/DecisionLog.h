//===- obs/DecisionLog.h - Structured simdization decision records -------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision log answers "why does the generated code look like this?"
/// with structured per-statement records: the stream offset of every
/// access (Eq. 1), each vshiftstream the policy placed, the predicted
/// shift count (policies::predictShiftCount) next to what placement
/// actually produced (reorg::countShifts) and what one steady iteration
/// executes (reorg::countSteadyShifts), the peel/prologue/epilogue shape
/// of the emitted program, and the opt-pass rewrites applied afterwards.
///
/// These are plain-data structs so the obs library stays a leaf: the
/// builder that knows the compiler types lives in codegen::explainSimdization
/// (codegen/Explain.h). Renderings: toJson() for tooling (schema in
/// docs/OBSERVABILITY.md), explainText() for `simdize-tool --explain`.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_OBS_DECISIONLOG_H
#define SIMDIZE_OBS_DECISIONLOG_H

#include <cstdint>
#include <string>
#include <vector>

namespace simdize {
namespace obs {

/// One memory access of a statement and its stream offset.
struct AccessDecision {
  std::string Array;        ///< Array name.
  int64_t ElemOffset = 0;   ///< The c of A[i+c].
  std::string StreamOffset; ///< reorg::StreamOffset::str(): "12", "rt(b+1)".
  bool IsStore = false;
};

/// One vshiftstream node a placement policy inserted.
struct ShiftDecision {
  std::string From; ///< Stream offset of the shifted operand.
  std::string To;   ///< Target offset the shift retargets to.
};

/// Everything decided for one statement.
struct StmtDecision {
  unsigned Index = 0;
  std::string Text; ///< C-like statement text (ir::printStmt).
  std::string Kind = "assign"; ///< "assign" / "if" / "reduce".
  /// If only: guard comparison mnemonic ("lt", "ge", ...).
  std::string GuardCmp;
  /// If only: post-placement stream offset of the predicate mask feeding
  /// the blend — by (C.3) it matches the blended value streams.
  std::string PredicateStream;
  /// Reduce only: accumulation op mnemonic ("add", "min", ...).
  std::string ReduceOp;
  /// Reduce only: rotate-and-combine rounds of the epilogue lane fold
  /// (log2(V/D)); each is one vshiftpair + one vop on the accumulator.
  unsigned FinalShuffles = 0;
  std::vector<AccessDecision> Accesses;
  std::vector<ShiftDecision> Shifts;
  /// policies::predictShiftCount — the policy's own contract.
  unsigned PredictedShifts = 0;
  /// reorg::countShifts after placement; must equal PredictedShifts.
  unsigned PlacedShifts = 0;
  /// vshiftpair executions per raw steady iteration
  /// (reorg::countSteadyShifts).
  unsigned SteadyShifts = 0;
};

/// Shape of the emitted program: bounds, blocking, and how many vector
/// stores each section performs (the prologue/epilogue peel).
struct LoopShapeDecision {
  std::string LowerBound; ///< Steady-loop LB ("0", "sreg:N" when runtime).
  std::string UpperBound;
  unsigned VectorLen = 0;      ///< V in bytes.
  unsigned ElemSize = 0;       ///< D in bytes.
  unsigned BlockingFactor = 0; ///< B = V / D.
  unsigned LoopStep = 0;       ///< B, or 2B after the copy-removing unroll.
  bool TripCountKnown = true;
  int64_t TripCount = 0;
  unsigned SetupInsts = 0;
  unsigned BodyInsts = 0;
  unsigned EpilogueInsts = 0;
  /// Peel shape: vector stores emitted once before/after the steady loop.
  unsigned PrologueStores = 0;
  unsigned EpilogueStores = 0;
};

/// One optimization pass and how many instructions it rewrote.
struct OptRewriteDecision {
  std::string Pass;   ///< "cse", "predictive-commoning", ...
  std::string Effect; ///< What the count counts ("removed", "replaced").
  unsigned Count = 0;
};

/// The full decision log of one simdization run.
struct DecisionLog {
  std::string Policy; ///< "ZERO" / "EAGER" / "LAZY" / "DOM".
  bool SoftwarePipelining = false;
  /// The request's Target.VectorLen; 0 until the builder records it (obs
  /// is a leaf library and must not bake in any particular width).
  unsigned VectorLen = 0;
  bool Simdized = false;
  std::string Error;     ///< Set when !Simdized.
  std::string ErrorKind; ///< "not-simdizable" / "policy-inapplicable" / ...
  std::vector<StmtDecision> Stmts;
  LoopShapeDecision Shape; ///< Valid only when Simdized.
  bool OptRan = false;
  std::vector<OptRewriteDecision> OptRewrites;

  /// One JSON object; schema documented in docs/OBSERVABILITY.md.
  std::string toJson() const;

  /// Human-readable report for `simdize-tool --explain`.
  std::string explainText() const;
};

} // namespace obs
} // namespace simdize

#endif // SIMDIZE_OBS_DECISIONLOG_H
