//===- native/NativeEmitter.h - vir::VProgram -> x86 intrinsic C++ --------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native half of the instruction selection: renders compiled
/// programs as C++ over the vx_* wrapper layer (simdize_x86.h), one
/// translation unit per (vector width, ISA) pair, many kernels per unit
/// so batch consumers (the differential ctest, the benches, the fuzzer)
/// amortize one system-compiler invocation over a whole work list. The
/// scaffolding — signature, parameter binding, loop skeleton, scalar
/// instructions — is the shared lower::KernelEmitter, so this backend
/// cannot drift from the AltiVec emitter on the ABI.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_NATIVE_NATIVEEMITTER_H
#define SIMDIZE_NATIVE_NATIVEEMITTER_H

#include "lower/AltiVecEmitter.h"
#include "native/NativeISA.h"

#include <cstdint>
#include <string>
#include <vector>

namespace simdize {

namespace ir {
class Loop;
} // namespace ir
namespace vir {
class VProgram;
} // namespace vir

namespace native {

/// One kernel of a generated module.
struct KernelSpec {
  const vir::VProgram *Program = nullptr;
  const ir::Loop *Loop = nullptr;
  /// Function name inside the module; must be unique per module.
  std::string Name;
  /// Byte offsets of Loop's arrays inside a sim::Memory image, in array
  /// declaration order (sim::MemoryLayout::baseOf). When non-empty an
  /// `extern "C" <Name>_image(unsigned char *Image, const long *Args)`
  /// adapter is emitted alongside the kernel; when empty the kernel is
  /// emitted standalone (the `--lower=native` file/stdout path).
  std::vector<int64_t> ArrayBases;
};

/// Renders one self-contained translation unit containing every kernel of
/// \p Kernels, targeting \p Isa at width \p VectorLen. Fails (with a
/// diagnostic, never a miscompile) when the ISA cannot realize the width
/// or any program was simdized for a different width.
lower::LowerResult emitNativeModule(const std::vector<KernelSpec> &Kernels,
                                    unsigned VectorLen, ISA Isa);

/// Single-kernel convenience over emitNativeModule, no image adapter.
lower::LowerResult emitNativeKernel(const vir::VProgram &P, const ir::Loop &L,
                                    const std::string &FnName, ISA Isa);

} // namespace native
} // namespace simdize

#endif // SIMDIZE_NATIVE_NATIVEEMITTER_H
