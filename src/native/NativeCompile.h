//===- native/NativeCompile.h - Compile-to-.so cache + dlopen -------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns generated kernel source into callable code: the system C++
/// compiler builds a shared object, dlopen loads it, and a two-level
/// content-hash cache (in-process handle map over an on-disk .so store)
/// makes repeated kernels — fuzz sweeps, benches, repeated test runs —
/// cost one dlopen instead of one compiler invocation. Keys are the
/// FNV-1a hash of (compiler, flags, source), so any change to either the
/// generator or the toolchain misses cleanly.
///
/// The compiler defaults to the one this project was built with
/// (SIMDIZE_NATIVE_CXX, set by CMake); the SIMDIZE_NATIVE_CXX environment
/// variable overrides it, and SIMDIZE_NATIVE_CACHE overrides the on-disk
/// store location (default: <system tmp>/simdize-native-cache).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_NATIVE_NATIVECOMPILE_H
#define SIMDIZE_NATIVE_NATIVECOMPILE_H

#include "native/NativeISA.h"

#include <cstdint>
#include <string>

namespace simdize {
namespace native {

/// A loaded shared object. Handles live for the process lifetime (the
/// cache owns them; kernels stay callable once resolved).
class CompiledModule {
public:
  explicit CompiledModule(void *Handle) : Handle(Handle) {}

  /// dlsym by exact (extern "C") name; nullptr when absent.
  void *symbol(const std::string &Name) const;

private:
  void *Handle;
};

/// Cache effectiveness counters for one process.
struct NativeCompileStats {
  uint64_t Compiles = 0;    ///< Compiler actually invoked.
  uint64_t MemoryHits = 0;  ///< Served from the in-process handle map.
  uint64_t DiskHits = 0;    ///< .so found on disk; dlopen only.
  uint64_t Failures = 0;    ///< Compiler or dlopen failed.
};

/// Compiles \p Source for \p Isa into a cached shared object and loads
/// it. Returns the loaded module, or nullptr with \p Error set (the
/// compiler's stderr when compilation failed).
const CompiledModule *compileAndLoad(const std::string &Source, ISA Isa,
                                     std::string *Error);

/// Snapshot of this process's cache counters.
NativeCompileStats nativeCompileStats();

/// The on-disk store directory currently in effect.
std::string nativeCacheDir();

} // namespace native
} // namespace simdize

#endif // SIMDIZE_NATIVE_NATIVECOMPILE_H
