//===- native/NativeRun.cpp -----------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "native/NativeRun.h"

#include "ir/Loop.h"
#include "native/NativeCompile.h"
#include "sim/Checker.h"
#include "sim/Memory.h"
#include "support/Format.h"
#include "vir/VProgram.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

using namespace simdize;
using namespace simdize::native;

ISA native::resolveISAForRun(unsigned VectorLen, ISA Requested) {
  if (isaSupportsWidth(Requested, VectorLen) && hostSupportsISA(Requested))
    return Requested;
  return bestISAForWidth(VectorLen);
}

// 64-byte alignment covers every supported V, so in-buffer offsets are
// congruent to the simulated addresses modulo the vector length; the
// padding keeps aligned_alloc's size-multiple contract.
AlignedImage::AlignedImage(int64_t Size)
    : Size(Size),
      Padded((static_cast<size_t>(Size) + 63) & ~static_cast<size_t>(63)) {
  Buf = static_cast<unsigned char *>(std::aligned_alloc(64, Padded));
  assert(Buf && "image allocation failed");
  std::memset(Buf, 0, Padded);
}

AlignedImage::~AlignedImage() { std::free(Buf); }

void AlignedImage::stageFrom(const sim::Memory &Mem) {
  assert(Mem.size() == Size && "staging a differently-sized image");
  std::memcpy(Buf, Mem.data(), static_cast<size_t>(Size));
}

void AlignedImage::copyTo(sim::Memory &Mem) const {
  assert(Mem.size() == Size && "extracting into a differently-sized image");
  std::memcpy(Mem.data(), Buf, static_cast<size_t>(Size));
}

void native::runNative(const NativeKernel &K, AlignedImage &Img) {
  assert(K.ok() && "running an unprepared kernel");
  K.Entry(Img.data(), K.Args.data());
}

void native::runNativeOnMemory(const NativeKernel &K, sim::Memory &Mem) {
  AlignedImage Img(Mem.size());
  Img.stageFrom(Mem);
  runNative(K, Img);
  Img.copyTo(Mem);
}

size_t NativeBatch::add(const ir::Loop &L, const vir::VProgram &P,
                        const sim::MemoryLayout &Layout) {
  assert(!VectorLen || VectorLen == P.getVectorLen());
  VectorLen = P.getVectorLen();

  KernelSpec Spec;
  Spec.Program = &P;
  Spec.Loop = &L;
  Spec.Name = strf("k%zu", Specs.size());
  for (const auto &A : L.getArrays())
    Spec.ArrayBases.push_back(Layout.baseOf(A.get()));

  std::vector<long> Args;
  for (const auto &Prm : L.getParams())
    Args.push_back(static_cast<long>(Prm->getActualValue()));
  Args.push_back(static_cast<long>(L.getUpperBound()));

  Specs.push_back(std::move(Spec));
  ArgPacks.push_back(std::move(Args));
  return Specs.size() - 1;
}

bool NativeBatch::compile(std::string *Error) {
  assert(!Specs.empty() && "compiling an empty batch");
  Used = resolveISAForRun(VectorLen, Requested);
  Degraded = Used != Requested;

  lower::LowerResult Lowered = emitNativeModule(Specs, VectorLen, Used);
  if (!Lowered.ok()) {
    if (Error)
      *Error = Lowered.Error;
    return false;
  }
  const CompiledModule *Module = compileAndLoad(Lowered.Code, Used, Error);
  if (!Module)
    return false;

  Kernels.clear();
  Kernels.resize(Specs.size());
  for (size_t K = 0; K < Specs.size(); ++K) {
    void *Sym = Module->symbol(Specs[K].Name + "_image");
    if (!Sym) {
      if (Error)
        *Error = "module lacks symbol " + Specs[K].Name + "_image";
      Kernels.clear();
      return false;
    }
    Kernels[K].Entry = reinterpret_cast<NativeEntry>(Sym);
    Kernels[K].Args = ArgPacks[K];
  }
  return true;
}

NativeKernel native::prepareNativeKernel(const ir::Loop &L,
                                         const vir::VProgram &P,
                                         const sim::MemoryLayout &Layout,
                                         ISA Requested, std::string *Error,
                                         ISA *UsedOut) {
  NativeBatch Batch(Requested);
  Batch.add(L, P, Layout);
  if (!Batch.compile(Error))
    return NativeKernel();
  if (UsedOut)
    *UsedOut = Batch.usedISA();
  return Batch.kernel(0);
}

std::optional<std::string>
native::diffNativeAgainstOracle(const ir::Loop &L, const vir::VProgram &P,
                                const sim::ReferenceImage &Ref,
                                std::optional<ISA> Requested) {
  ISA Want = Requested ? *Requested : bestISAForWidth(P.getVectorLen());
  std::string Error;
  ISA Used = Want;
  NativeKernel K =
      prepareNativeKernel(L, P, Ref.getLayout(), Want, &Error, &Used);
  if (!K.ok())
    return "native compile failed: " + Error;

  sim::Memory M = Ref.getInitial();
  runNativeOnMemory(K, M);
  const sim::Memory &Expected = Ref.getExpected();
  if (M == Expected)
    return std::nullopt;
  for (int64_t B = 0; B < Expected.size(); ++B)
    if (M.data()[B] != Expected.data()[B])
      return strf("native (%s) image diverges from the scalar oracle at "
                  "byte %lld: got 0x%02x, want 0x%02x",
                  isaName(Used), static_cast<long long>(B), M.data()[B],
                  Expected.data()[B]);
  return "native image diverges in size"; // unreachable with one layout
}
