//===- native/NativeCompile.cpp -------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "native/NativeCompile.h"

#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include <dlfcn.h>
#include <unistd.h>

using namespace simdize;
using namespace simdize::native;

#ifndef SIMDIZE_NATIVE_CXX
#define SIMDIZE_NATIVE_CXX "c++"
#endif
#ifndef SIMDIZE_NATIVE_INCLUDE_DIR
#error "SIMDIZE_NATIVE_INCLUDE_DIR must point at the simdize_x86.h directory"
#endif

namespace {

struct CacheState {
  std::mutex Mu;
  std::map<uint64_t, std::unique_ptr<CompiledModule>> Loaded;
  NativeCompileStats Stats;
};

CacheState &cache() {
  static CacheState S;
  return S;
}

std::string compilerPath() {
  if (const char *Env = std::getenv("SIMDIZE_NATIVE_CXX"))
    return Env;
  return SIMDIZE_NATIVE_CXX;
}

uint64_t fnv1a(uint64_t H, const std::string &S) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ULL;
  }
  return H;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

bool writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path, std::ios::binary);
  Out.write(Contents.data(), static_cast<std::streamsize>(Contents.size()));
  return Out.good();
}

} // namespace

void *CompiledModule::symbol(const std::string &Name) const {
  return dlsym(Handle, Name.c_str());
}

std::string native::nativeCacheDir() {
  if (const char *Env = std::getenv("SIMDIZE_NATIVE_CACHE"))
    return Env;
  std::error_code EC;
  std::filesystem::path Tmp = std::filesystem::temp_directory_path(EC);
  if (EC)
    Tmp = "/tmp";
  return (Tmp / "simdize-native-cache").string();
}

const CompiledModule *native::compileAndLoad(const std::string &Source,
                                             ISA Isa, std::string *Error) {
  std::string Compiler = compilerPath();
  std::string Flags = "-std=c++20 -O2 -fPIC -shared";
  for (const std::string &F : isaCompileFlags(Isa))
    Flags += " " + F;

  uint64_t Key = fnv1a(14695981039346656037ULL,
                       Compiler + "\x1f" + Flags + "\x1f" + Source);

  CacheState &C = cache();
  std::lock_guard<std::mutex> Lock(C.Mu);
  if (auto It = C.Loaded.find(Key); It != C.Loaded.end()) {
    ++C.Stats.MemoryHits;
    return It->second.get();
  }

  std::string Dir = nativeCacheDir();
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  std::string Stem = strf("%s/nk_%016llx", Dir.c_str(),
                          static_cast<unsigned long long>(Key));
  std::string So = Stem + ".so";

  if (!std::filesystem::exists(So)) {
    // Build into process-unique temporaries, then publish the .so with an
    // atomic rename so concurrent fuzz shards never load a half-written
    // object.
    std::string Tag = strf(".%ld", static_cast<long>(getpid()));
    std::string Cpp = Stem + Tag + ".cpp";
    std::string SoTmp = So + Tag;
    std::string Log = Stem + Tag + ".log";
    if (!writeFile(Cpp, Source)) {
      ++C.Stats.Failures;
      if (Error)
        *Error = "cannot write kernel source under " + Dir;
      return nullptr;
    }
    std::string Cmd =
        strf("\"%s\" %s -I \"%s\" -o \"%s\" \"%s\" 2> \"%s\"",
             Compiler.c_str(), Flags.c_str(), SIMDIZE_NATIVE_INCLUDE_DIR,
             SoTmp.c_str(), Cpp.c_str(), Log.c_str());
    int Rc = std::system(Cmd.c_str());
    if (Rc != 0) {
      ++C.Stats.Failures;
      if (Error)
        *Error = strf("'%s' failed (exit %d): %s", Compiler.c_str(), Rc,
                      readFile(Log).c_str());
      std::filesystem::remove(Cpp, EC);
      std::filesystem::remove(SoTmp, EC);
      std::filesystem::remove(Log, EC);
      return nullptr;
    }
    std::filesystem::rename(SoTmp, So, EC);
    if (EC) {
      ++C.Stats.Failures;
      if (Error)
        *Error = "cannot publish " + So + ": " + EC.message();
      return nullptr;
    }
    std::filesystem::remove(Cpp, EC);
    std::filesystem::remove(Log, EC);
    ++C.Stats.Compiles;
  } else {
    ++C.Stats.DiskHits;
  }

  void *Handle = dlopen(So.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    ++C.Stats.Failures;
    if (Error) {
      const char *Why = dlerror();
      *Error = "dlopen(" + So + ") failed: " + (Why ? Why : "unknown");
    }
    // A stale or truncated cache entry must not wedge the tier; drop it
    // so the next request recompiles.
    std::filesystem::remove(So, EC);
    return nullptr;
  }
  auto Module = std::make_unique<CompiledModule>(Handle);
  const CompiledModule *Out = Module.get();
  C.Loaded.emplace(Key, std::move(Module));
  return Out;
}

NativeCompileStats native::nativeCompileStats() {
  CacheState &C = cache();
  std::lock_guard<std::mutex> Lock(C.Mu);
  return C.Stats;
}
