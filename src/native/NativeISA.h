//===- native/NativeISA.h - ISA selection for the native backend ----------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction-set axis of the native execution tier: which wrapper
/// implementation a generated kernel compiles against (simdize_x86.h
/// selects on these), which vector widths each one can realize, what the
/// host CPU actually supports (CPUID via __builtin_cpu_supports), and the
/// degradation order — an inadmissible or unsupported request falls back
/// to the best ISA the host can run at that width, bottoming out at the
/// portable shim, which is always available. Never a crash, never a
/// silent wrong answer.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_NATIVE_NATIVEISA_H
#define SIMDIZE_NATIVE_NATIVEISA_H

#include <optional>
#include <string>
#include <vector>

namespace simdize {
namespace native {

/// The wrapper implementations of simdize_x86.h. Shim is the portable
/// scalar model (any power-of-2 V, any host); the hardware ISAs each pin
/// one register width.
enum class ISA { Shim, SSE2, AVX2, AVX512 };

inline constexpr ISA AllISAs[] = {ISA::Shim, ISA::SSE2, ISA::AVX2,
                                  ISA::AVX512};

/// Lower-case stable name: "shim", "sse2", "avx2", "avx512".
const char *isaName(ISA I);

/// Inverse of isaName (exact match); nullopt for unknown strings.
std::optional<ISA> parseISAName(const std::string &Name);

/// Whether \p I can realize vector byte width \p VectorLen: the hardware
/// ISAs pin their register width (SSE2 = 16, AVX2 = 32, AVX-512 = 64),
/// the shim takes any width a Target accepts.
bool isaSupportsWidth(ISA I, unsigned VectorLen);

/// Whether this process's CPU can execute code compiled for \p I
/// (runtime CPUID; the shim is always supported, and every hardware ISA
/// is unsupported off x86).
bool hostSupportsISA(ISA I);

/// The best host-executable ISA for \p VectorLen: the matching hardware
/// ISA when the CPU has it, the shim otherwise.
ISA bestISAForWidth(unsigned VectorLen);

/// The hardware ISA that canonically realizes \p VectorLen (16 -> SSE2,
/// 32 -> AVX2, 64 -> AVX-512), independent of host support — what
/// `--lower=native` emits for by default, so cross-compile-style kernel
/// emission works on any machine. Widths with no hardware mapping give
/// the shim.
ISA canonicalISAForWidth(unsigned VectorLen);

/// Extra compiler flags a TU generated for \p I needs.
std::vector<std::string> isaCompileFlags(ISA I);

/// The preprocessor selector simdize_x86.h keys on.
const char *isaDefine(ISA I);

} // namespace native
} // namespace simdize

#endif // SIMDIZE_NATIVE_NATIVEISA_H
