//===- native/NativeISA.cpp -----------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "native/NativeISA.h"

#include "simdize/Target.h"
#include "support/Debug.h"

using namespace simdize;
using namespace simdize::native;

const char *native::isaName(ISA I) {
  switch (I) {
  case ISA::Shim:
    return "shim";
  case ISA::SSE2:
    return "sse2";
  case ISA::AVX2:
    return "avx2";
  case ISA::AVX512:
    return "avx512";
  }
  simdize_unreachable("unknown ISA");
}

std::optional<ISA> native::parseISAName(const std::string &Name) {
  for (ISA I : AllISAs)
    if (Name == isaName(I))
      return I;
  return std::nullopt;
}

bool native::isaSupportsWidth(ISA I, unsigned VectorLen) {
  switch (I) {
  case ISA::Shim:
    return Target(VectorLen).valid();
  case ISA::SSE2:
    return VectorLen == 16;
  case ISA::AVX2:
    return VectorLen == 32;
  case ISA::AVX512:
    return VectorLen == 64;
  }
  simdize_unreachable("unknown ISA");
}

bool native::hostSupportsISA(ISA I) {
#if defined(__x86_64__) || defined(__i386__)
  switch (I) {
  case ISA::Shim:
    return true;
  case ISA::SSE2:
    return __builtin_cpu_supports("sse2");
  case ISA::AVX2:
    return __builtin_cpu_supports("avx2");
  case ISA::AVX512:
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512bw");
  }
  simdize_unreachable("unknown ISA");
#else
  return I == ISA::Shim;
#endif
}

ISA native::canonicalISAForWidth(unsigned VectorLen) {
  switch (VectorLen) {
  case 16:
    return ISA::SSE2;
  case 32:
    return ISA::AVX2;
  case 64:
    return ISA::AVX512;
  default:
    return ISA::Shim;
  }
}

ISA native::bestISAForWidth(unsigned VectorLen) {
  ISA Canonical = canonicalISAForWidth(VectorLen);
  if (Canonical != ISA::Shim && hostSupportsISA(Canonical))
    return Canonical;
  return ISA::Shim;
}

std::vector<std::string> native::isaCompileFlags(ISA I) {
  switch (I) {
  case ISA::Shim:
    return {};
  case ISA::SSE2:
    return {"-msse2"};
  case ISA::AVX2:
    return {"-mavx2"};
  case ISA::AVX512:
    return {"-mavx512f", "-mavx512bw"};
  }
  simdize_unreachable("unknown ISA");
}

const char *native::isaDefine(ISA I) {
  switch (I) {
  case ISA::Shim:
    return "SIMDIZE_NATIVE_ISA_SHIM";
  case ISA::SSE2:
    return "SIMDIZE_NATIVE_ISA_SSE2";
  case ISA::AVX2:
    return "SIMDIZE_NATIVE_ISA_AVX2";
  case ISA::AVX512:
    return "SIMDIZE_NATIVE_ISA_AVX512";
  }
  simdize_unreachable("unknown ISA");
}
