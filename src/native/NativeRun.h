//===- native/NativeRun.h - Running dlopen'd kernels on sim images --------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution side of the native tier: emit + compile + dlopen a
/// compiled program (NativeBatch amortizes one compiler invocation over
/// many kernels), then run the resulting entry points on
/// sim::Memory-compatible images. The image is staged through a 64-byte-
/// aligned buffer so in-image offsets keep their value modulo every
/// supported V on the host — the emitted SBase/alignment arithmetic and
/// the truncating loads/stores then agree bit-for-bit with the VM's
/// simulated addresses.
///
/// ISA degradation happens here: a request the host CPU (or the width)
/// cannot take falls back to bestISAForWidth, reported via usedISA() /
/// degraded(), never an error.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_NATIVE_NATIVERUN_H
#define SIMDIZE_NATIVE_NATIVERUN_H

#include "native/NativeEmitter.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace simdize {

namespace sim {
class Memory;
class MemoryLayout;
class ReferenceImage;
} // namespace sim

namespace native {

/// The image ABI every generated module exports per kernel.
using NativeEntry = void (*)(unsigned char *Image, const long *Args);

/// One runnable kernel: the resolved entry point plus its argument pack
/// [<param values>, ub], baked from the loop at preparation time.
struct NativeKernel {
  NativeEntry Entry = nullptr;
  std::vector<long> Args;
  bool ok() const { return Entry != nullptr; }
};

/// The ISA a run request actually gets: \p Requested when it can realize
/// \p VectorLen on this host, otherwise the best runnable fallback.
ISA resolveISAForRun(unsigned VectorLen, ISA Requested);

/// A reusable 64-byte-aligned staging image: allocate once, stage/run
/// many times. One-shot callers can use runNativeOnMemory instead; the
/// benches and bulk differentials hold one of these so repeated runs pay
/// a memcpy, not a fresh (page-faulting) allocation per call.
class AlignedImage {
public:
  explicit AlignedImage(int64_t Size);
  ~AlignedImage();
  AlignedImage(const AlignedImage &) = delete;
  AlignedImage &operator=(const AlignedImage &) = delete;

  unsigned char *data() { return Buf; }
  int64_t size() const { return Size; }

  /// memcpy \p Mem in (and zero the alignment padding); sizes must match.
  void stageFrom(const sim::Memory &Mem);
  /// memcpy the image back out into \p Mem.
  void copyTo(sim::Memory &Mem) const;

private:
  unsigned char *Buf = nullptr;
  int64_t Size = 0;
  size_t Padded = 0;
};

/// Runs \p K in place on \p Img (previously staged).
void runNative(const NativeKernel &K, AlignedImage &Img);

/// Runs \p K over \p Mem: copy into an aligned scratch image, execute,
/// copy back.
void runNativeOnMemory(const NativeKernel &K, sim::Memory &Mem);

/// Collects kernels into one translation unit and compiles them with a
/// single (cached) compiler invocation. Loops, programs, and layouts are
/// borrowed and must outlive compile().
class NativeBatch {
public:
  /// \p Requested is resolved per-width at compile() time; pass
  /// bestISAForWidth's choice by default.
  explicit NativeBatch(ISA Requested) : Requested(Requested) {}

  /// Adds one kernel; returns its index. Every added program must share
  /// one vector width (enforced at compile()).
  size_t add(const ir::Loop &L, const vir::VProgram &P,
             const sim::MemoryLayout &Layout);

  /// Emits, compiles, loads, and resolves every kernel. False on
  /// emission/compile/resolution failure with \p Error set.
  bool compile(std::string *Error);

  const NativeKernel &kernel(size_t Idx) const { return Kernels[Idx]; }
  size_t size() const { return Specs.size(); }

  /// Valid after compile(): the ISA the batch actually targeted, and
  /// whether that differs from the requested one.
  ISA usedISA() const { return Used; }
  bool degraded() const { return Degraded; }

private:
  ISA Requested;
  ISA Used = ISA::Shim;
  bool Degraded = false;
  unsigned VectorLen = 0;
  std::vector<KernelSpec> Specs;
  std::vector<std::vector<long>> ArgPacks;
  std::vector<NativeKernel> Kernels;
};

/// One-kernel convenience: emit + compile (content-hash cached) +
/// resolve. \p UsedOut, when given, reports the ISA after degradation.
NativeKernel prepareNativeKernel(const ir::Loop &L, const vir::VProgram &P,
                                 const sim::MemoryLayout &Layout,
                                 ISA Requested, std::string *Error,
                                 ISA *UsedOut = nullptr);

/// The native differential: runs \p P natively on \p Ref's initial image
/// and compares the full resulting image against the scalar oracle's
/// expected bytes. nullopt on bit-identity; otherwise a diagnostic
/// (first differing byte, or the compile failure). \p Requested defaults
/// to the best host ISA for the program's width.
std::optional<std::string>
diffNativeAgainstOracle(const ir::Loop &L, const vir::VProgram &P,
                        const sim::ReferenceImage &Ref,
                        std::optional<ISA> Requested = std::nullopt);

} // namespace native
} // namespace simdize

#endif // SIMDIZE_NATIVE_NATIVERUN_H
