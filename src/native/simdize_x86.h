//===- native/simdize_x86.h - Host-SIMD wrapper for emitted kernels ------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thin per-ISA wrapper layer the native backend's emitted kernels
/// compile against: one `vx_*` function per generic vector operation of
/// the VM (`sim/Machine.cpp` is the semantic reference — every function
/// here must be bit-identical to the interpreter on every input). The
/// translation unit defines SIMDIZE_NATIVE_V to the vector byte width and
/// exactly one ISA selector before including this header:
///
///   SIMDIZE_NATIVE_ISA_SHIM    portable scalar model, any power-of-2 V
///   SIMDIZE_NATIVE_ISA_SSE2    __m128i intrinsics, V = 16
///   SIMDIZE_NATIVE_ISA_AVX2    __m256i intrinsics, V = 32
///   SIMDIZE_NATIVE_ISA_AVX512  __m512i intrinsics (F+BW), V = 64
///
/// Operation semantics (all must match MachineState::execInst):
///
///   vx_ld / vx_st          address truncated to a V-byte boundary
///   vx_sld<N>              bytes [N, N+V) of A ++ B, immediate N in [0,V]
///   vx_shiftpair(A,B,S)    same with a runtime shift S in [0,V]
///   vx_splice(A,B,P)       first P bytes from A, the rest from B
///   vx_splat_i8/16/32      lane-replicated immediate (little-endian)
///   vx_add/sub/mul_*       wrap-around unsigned lane arithmetic
///   vx_min/max_*           signed lane comparisons
///   vx_and/or/xor_*        bitwise (lane width irrelevant)
///   vx_cmp_{lt,le,gt,ge,eq,ne}_*  signed lane compare to all-ones/zero mask
///   vx_sel(M,S,C)          bytewise (S & M) | (C & ~M) — the vselect blend
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_NATIVE_SIMDIZE_X86_H
#define SIMDIZE_NATIVE_SIMDIZE_X86_H

#ifndef SIMDIZE_NATIVE_V
#error "define SIMDIZE_NATIVE_V to the vector byte width before including"
#endif

#include <cstdint>
#include <cstring>

//===----------------------------------------------------------------------===//
// Portable shim: scalar model of the operations, any power-of-2 V. The
// always-available fallback ISA (and the only one off x86).
//===----------------------------------------------------------------------===//
#if defined(SIMDIZE_NATIVE_ISA_SHIM)

/// One V-byte vector register.
struct vx_t {
  unsigned char B[SIMDIZE_NATIVE_V];
};

inline vx_t vx_ld(const unsigned char *Addr) {
  uintptr_t P = reinterpret_cast<uintptr_t>(Addr) &
                ~static_cast<uintptr_t>(SIMDIZE_NATIVE_V - 1);
  vx_t V;
  std::memcpy(V.B, reinterpret_cast<const unsigned char *>(P),
              SIMDIZE_NATIVE_V);
  return V;
}

inline void vx_st(unsigned char *Addr, vx_t V) {
  uintptr_t P = reinterpret_cast<uintptr_t>(Addr) &
                ~static_cast<uintptr_t>(SIMDIZE_NATIVE_V - 1);
  std::memcpy(reinterpret_cast<unsigned char *>(P), V.B, SIMDIZE_NATIVE_V);
}

inline vx_t vx_shiftpair(vx_t A, vx_t B, long S) {
  unsigned char Concat[2 * SIMDIZE_NATIVE_V];
  std::memcpy(Concat, A.B, SIMDIZE_NATIVE_V);
  std::memcpy(Concat + SIMDIZE_NATIVE_V, B.B, SIMDIZE_NATIVE_V);
  vx_t Out;
  std::memcpy(Out.B, Concat + S, SIMDIZE_NATIVE_V);
  return Out;
}

template <int N> inline vx_t vx_sld(vx_t A, vx_t B) {
  static_assert(N >= 0 && N <= SIMDIZE_NATIVE_V,
                "shift immediate out of range");
  return vx_shiftpair(A, B, N);
}

inline vx_t vx_splice(vx_t A, vx_t B, long P) {
  vx_t Out;
  for (int K = 0; K < SIMDIZE_NATIVE_V; ++K)
    Out.B[K] = K < P ? A.B[K] : B.B[K];
  return Out;
}

namespace simdize_x86_detail {

template <typename Lane, typename Fn> inline vx_t lanewise(vx_t A, vx_t B,
                                                           Fn F) {
  vx_t Out;
  for (unsigned K = 0; K < SIMDIZE_NATIVE_V / sizeof(Lane); ++K) {
    Lane X, Y;
    std::memcpy(&X, A.B + K * sizeof(Lane), sizeof(Lane));
    std::memcpy(&Y, B.B + K * sizeof(Lane), sizeof(Lane));
    Lane R = F(X, Y);
    std::memcpy(Out.B + K * sizeof(Lane), &R, sizeof(Lane));
  }
  return Out;
}

template <typename Lane> inline vx_t splat(long Value) {
  vx_t Out;
  Lane V = static_cast<Lane>(Value);
  for (unsigned K = 0; K < SIMDIZE_NATIVE_V / sizeof(Lane); ++K)
    std::memcpy(Out.B + K * sizeof(Lane), &V, sizeof(Lane));
  return Out;
}

} // namespace simdize_x86_detail

#define SIMDIZE_X86_BINOP(NAME, LANE, EXPR)                                  \
  inline vx_t NAME(vx_t A, vx_t B) {                                         \
    return simdize_x86_detail::lanewise<LANE>(                               \
        A, B, [](LANE X, LANE Y) -> LANE { return EXPR; });                  \
  }

SIMDIZE_X86_BINOP(vx_add_i8, uint8_t, X + Y)
SIMDIZE_X86_BINOP(vx_sub_i8, uint8_t, X - Y)
SIMDIZE_X86_BINOP(vx_mul_i8, uint8_t, X *Y)
SIMDIZE_X86_BINOP(vx_and_i8, uint8_t, X &Y)
SIMDIZE_X86_BINOP(vx_or_i8, uint8_t, X | Y)
SIMDIZE_X86_BINOP(vx_xor_i8, uint8_t, X ^ Y)
SIMDIZE_X86_BINOP(vx_add_i16, uint16_t, X + Y)
SIMDIZE_X86_BINOP(vx_sub_i16, uint16_t, X - Y)
SIMDIZE_X86_BINOP(vx_mul_i16, uint16_t, X *Y)
SIMDIZE_X86_BINOP(vx_and_i16, uint16_t, X &Y)
SIMDIZE_X86_BINOP(vx_or_i16, uint16_t, X | Y)
SIMDIZE_X86_BINOP(vx_xor_i16, uint16_t, X ^ Y)
SIMDIZE_X86_BINOP(vx_add_i32, uint32_t, X + Y)
SIMDIZE_X86_BINOP(vx_sub_i32, uint32_t, X - Y)
SIMDIZE_X86_BINOP(vx_mul_i32, uint32_t, X *Y)
SIMDIZE_X86_BINOP(vx_and_i32, uint32_t, X &Y)
SIMDIZE_X86_BINOP(vx_or_i32, uint32_t, X | Y)
SIMDIZE_X86_BINOP(vx_xor_i32, uint32_t, X ^ Y)
SIMDIZE_X86_BINOP(vx_min_i8, int8_t, X < Y ? X : Y)
SIMDIZE_X86_BINOP(vx_max_i8, int8_t, X > Y ? X : Y)
SIMDIZE_X86_BINOP(vx_min_i16, int16_t, X < Y ? X : Y)
SIMDIZE_X86_BINOP(vx_max_i16, int16_t, X > Y ? X : Y)
SIMDIZE_X86_BINOP(vx_min_i32, int32_t, X < Y ? X : Y)
SIMDIZE_X86_BINOP(vx_max_i32, int32_t, X > Y ? X : Y)

#define SIMDIZE_X86_CMP(NAME, OP)                                            \
  SIMDIZE_X86_BINOP(NAME##_i8, int8_t, X OP Y ? int8_t(-1) : int8_t(0))      \
  SIMDIZE_X86_BINOP(NAME##_i16, int16_t, X OP Y ? int16_t(-1) : int16_t(0))  \
  SIMDIZE_X86_BINOP(NAME##_i32, int32_t, X OP Y ? int32_t(-1) : int32_t(0))

SIMDIZE_X86_CMP(vx_cmp_lt, <)
SIMDIZE_X86_CMP(vx_cmp_le, <=)
SIMDIZE_X86_CMP(vx_cmp_gt, >)
SIMDIZE_X86_CMP(vx_cmp_ge, >=)
SIMDIZE_X86_CMP(vx_cmp_eq, ==)
SIMDIZE_X86_CMP(vx_cmp_ne, !=)

#undef SIMDIZE_X86_CMP
#undef SIMDIZE_X86_BINOP

inline vx_t vx_sel(vx_t Mask, vx_t IfSet, vx_t IfClear) {
  vx_t Out;
  for (int K = 0; K < SIMDIZE_NATIVE_V; ++K)
    Out.B[K] = static_cast<unsigned char>((IfSet.B[K] & Mask.B[K]) |
                                          (IfClear.B[K] & ~Mask.B[K]));
  return Out;
}

inline vx_t vx_splat_i8(long V) {
  return simdize_x86_detail::splat<uint8_t>(V);
}
inline vx_t vx_splat_i16(long V) {
  return simdize_x86_detail::splat<uint16_t>(V);
}
inline vx_t vx_splat_i32(long V) {
  return simdize_x86_detail::splat<uint32_t>(V);
}

//===----------------------------------------------------------------------===//
// SSE2: __m128i, V = 16. Baseline x86-64 — always compilable there.
// SSE2 has no epi32 mullo, no signed epi8/epi32 min/max, and no byte
// mullo, so those fall back to the classic widen/compare sequences.
//===----------------------------------------------------------------------===//
#elif defined(SIMDIZE_NATIVE_ISA_SSE2)

#if SIMDIZE_NATIVE_V != 16
#error "SSE2 lowering requires V = 16"
#endif

#include <emmintrin.h>

typedef __m128i vx_t;

inline vx_t vx_ld(const unsigned char *Addr) {
  uintptr_t P =
      reinterpret_cast<uintptr_t>(Addr) & ~static_cast<uintptr_t>(15);
  return _mm_load_si128(reinterpret_cast<const __m128i *>(P));
}

inline void vx_st(unsigned char *Addr, vx_t V) {
  uintptr_t P =
      reinterpret_cast<uintptr_t>(Addr) & ~static_cast<uintptr_t>(15);
  _mm_store_si128(reinterpret_cast<__m128i *>(P), V);
}

template <int N> inline vx_t vx_sld(vx_t A, vx_t B) {
  static_assert(N >= 0 && N <= 16, "shift immediate out of range");
  if constexpr (N == 0)
    return A;
  else if constexpr (N == 16)
    return B;
  else
    return _mm_or_si128(_mm_srli_si128(A, N), _mm_slli_si128(B, 16 - N));
}

inline vx_t vx_shiftpair(vx_t A, vx_t B, long S) {
  alignas(16) unsigned char Concat[32];
  _mm_store_si128(reinterpret_cast<__m128i *>(Concat), A);
  _mm_store_si128(reinterpret_cast<__m128i *>(Concat + 16), B);
  return _mm_loadu_si128(reinterpret_cast<const __m128i *>(Concat + S));
}

/// 0xFF in bytes [0, P), 0x00 above — the vsplice select mask.
inline vx_t vx_splice_mask(long P) {
  const __m128i Idx = _mm_setr_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                    12, 13, 14, 15);
  return _mm_cmplt_epi8(Idx, _mm_set1_epi8(static_cast<char>(P)));
}

inline vx_t vx_select(vx_t Mask, vx_t IfSet, vx_t IfClear) {
  return _mm_or_si128(_mm_and_si128(Mask, IfSet),
                      _mm_andnot_si128(Mask, IfClear));
}

inline vx_t vx_splice(vx_t A, vx_t B, long P) {
  return vx_select(vx_splice_mask(P), A, B);
}

inline vx_t vx_splat_i8(long V) {
  return _mm_set1_epi8(static_cast<char>(V));
}
inline vx_t vx_splat_i16(long V) {
  return _mm_set1_epi16(static_cast<short>(V));
}
inline vx_t vx_splat_i32(long V) {
  return _mm_set1_epi32(static_cast<int>(V));
}

inline vx_t vx_add_i8(vx_t A, vx_t B) { return _mm_add_epi8(A, B); }
inline vx_t vx_sub_i8(vx_t A, vx_t B) { return _mm_sub_epi8(A, B); }
inline vx_t vx_add_i16(vx_t A, vx_t B) { return _mm_add_epi16(A, B); }
inline vx_t vx_sub_i16(vx_t A, vx_t B) { return _mm_sub_epi16(A, B); }
inline vx_t vx_add_i32(vx_t A, vx_t B) { return _mm_add_epi32(A, B); }
inline vx_t vx_sub_i32(vx_t A, vx_t B) { return _mm_sub_epi32(A, B); }
inline vx_t vx_mul_i16(vx_t A, vx_t B) { return _mm_mullo_epi16(A, B); }

/// Byte mullo: widen each half to i16, multiply, mask to the low byte,
/// and pack (exact because every lane is already in [0, 255]).
inline vx_t vx_mul_i8(vx_t A, vx_t B) {
  __m128i Z = _mm_setzero_si128();
  __m128i Lo = _mm_mullo_epi16(_mm_unpacklo_epi8(A, Z),
                               _mm_unpacklo_epi8(B, Z));
  __m128i Hi = _mm_mullo_epi16(_mm_unpackhi_epi8(A, Z),
                               _mm_unpackhi_epi8(B, Z));
  __m128i M = _mm_set1_epi16(0x00FF);
  return _mm_packus_epi16(_mm_and_si128(Lo, M), _mm_and_si128(Hi, M));
}

/// 32-bit mullo from the even/odd _mm_mul_epu32 pair (no _mm_mullo_epi32
/// before SSE4.1).
inline vx_t vx_mul_i32(vx_t A, vx_t B) {
  __m128i Even = _mm_mul_epu32(A, B);
  __m128i Odd = _mm_mul_epu32(_mm_srli_si128(A, 4), _mm_srli_si128(B, 4));
  __m128i EvenLo = _mm_shuffle_epi32(Even, _MM_SHUFFLE(0, 0, 2, 0));
  __m128i OddLo = _mm_shuffle_epi32(Odd, _MM_SHUFFLE(0, 0, 2, 0));
  return _mm_unpacklo_epi32(EvenLo, OddLo);
}

inline vx_t vx_and_i8(vx_t A, vx_t B) { return _mm_and_si128(A, B); }
inline vx_t vx_or_i8(vx_t A, vx_t B) { return _mm_or_si128(A, B); }
inline vx_t vx_xor_i8(vx_t A, vx_t B) { return _mm_xor_si128(A, B); }
inline vx_t vx_and_i16(vx_t A, vx_t B) { return _mm_and_si128(A, B); }
inline vx_t vx_or_i16(vx_t A, vx_t B) { return _mm_or_si128(A, B); }
inline vx_t vx_xor_i16(vx_t A, vx_t B) { return _mm_xor_si128(A, B); }
inline vx_t vx_and_i32(vx_t A, vx_t B) { return _mm_and_si128(A, B); }
inline vx_t vx_or_i32(vx_t A, vx_t B) { return _mm_or_si128(A, B); }
inline vx_t vx_xor_i32(vx_t A, vx_t B) { return _mm_xor_si128(A, B); }

inline vx_t vx_min_i16(vx_t A, vx_t B) { return _mm_min_epi16(A, B); }
inline vx_t vx_max_i16(vx_t A, vx_t B) { return _mm_max_epi16(A, B); }
inline vx_t vx_min_i8(vx_t A, vx_t B) {
  return vx_select(_mm_cmpgt_epi8(A, B), B, A);
}
inline vx_t vx_max_i8(vx_t A, vx_t B) {
  return vx_select(_mm_cmpgt_epi8(A, B), A, B);
}
inline vx_t vx_min_i32(vx_t A, vx_t B) {
  return vx_select(_mm_cmpgt_epi32(A, B), B, A);
}
inline vx_t vx_max_i32(vx_t A, vx_t B) {
  return vx_select(_mm_cmpgt_epi32(A, B), A, B);
}

inline vx_t vx_sel(vx_t Mask, vx_t IfSet, vx_t IfClear) {
  return vx_select(Mask, IfSet, IfClear);
}

// Signed lane compares. SSE2 has eq/gt/lt natively; the other three are
// their complements (xor with all-ones).
inline vx_t vx_not(vx_t A) { return _mm_xor_si128(A, _mm_set1_epi8(-1)); }

inline vx_t vx_cmp_eq_i8(vx_t A, vx_t B) { return _mm_cmpeq_epi8(A, B); }
inline vx_t vx_cmp_eq_i16(vx_t A, vx_t B) { return _mm_cmpeq_epi16(A, B); }
inline vx_t vx_cmp_eq_i32(vx_t A, vx_t B) { return _mm_cmpeq_epi32(A, B); }
inline vx_t vx_cmp_ne_i8(vx_t A, vx_t B) { return vx_not(vx_cmp_eq_i8(A, B)); }
inline vx_t vx_cmp_ne_i16(vx_t A, vx_t B) {
  return vx_not(vx_cmp_eq_i16(A, B));
}
inline vx_t vx_cmp_ne_i32(vx_t A, vx_t B) {
  return vx_not(vx_cmp_eq_i32(A, B));
}
inline vx_t vx_cmp_gt_i8(vx_t A, vx_t B) { return _mm_cmpgt_epi8(A, B); }
inline vx_t vx_cmp_gt_i16(vx_t A, vx_t B) { return _mm_cmpgt_epi16(A, B); }
inline vx_t vx_cmp_gt_i32(vx_t A, vx_t B) { return _mm_cmpgt_epi32(A, B); }
inline vx_t vx_cmp_lt_i8(vx_t A, vx_t B) { return _mm_cmplt_epi8(A, B); }
inline vx_t vx_cmp_lt_i16(vx_t A, vx_t B) { return _mm_cmplt_epi16(A, B); }
inline vx_t vx_cmp_lt_i32(vx_t A, vx_t B) { return _mm_cmplt_epi32(A, B); }
inline vx_t vx_cmp_le_i8(vx_t A, vx_t B) { return vx_not(vx_cmp_gt_i8(A, B)); }
inline vx_t vx_cmp_le_i16(vx_t A, vx_t B) {
  return vx_not(vx_cmp_gt_i16(A, B));
}
inline vx_t vx_cmp_le_i32(vx_t A, vx_t B) {
  return vx_not(vx_cmp_gt_i32(A, B));
}
inline vx_t vx_cmp_ge_i8(vx_t A, vx_t B) { return vx_not(vx_cmp_lt_i8(A, B)); }
inline vx_t vx_cmp_ge_i16(vx_t A, vx_t B) {
  return vx_not(vx_cmp_lt_i16(A, B));
}
inline vx_t vx_cmp_ge_i32(vx_t A, vx_t B) {
  return vx_not(vx_cmp_lt_i32(A, B));
}

//===----------------------------------------------------------------------===//
// AVX2: __m256i, V = 32. The cross-lane shift pair composes vperm2i128
// with the per-128-lane vpalignr; lanewise arithmetic is all native
// except byte mullo (widen/pack is per-lane symmetric, so the SSE2
// sequence carries over).
//===----------------------------------------------------------------------===//
#elif defined(SIMDIZE_NATIVE_ISA_AVX2)

#if SIMDIZE_NATIVE_V != 32
#error "AVX2 lowering requires V = 32"
#endif

#include <immintrin.h>

typedef __m256i vx_t;

inline vx_t vx_ld(const unsigned char *Addr) {
  uintptr_t P =
      reinterpret_cast<uintptr_t>(Addr) & ~static_cast<uintptr_t>(31);
  return _mm256_load_si256(reinterpret_cast<const __m256i *>(P));
}

inline void vx_st(unsigned char *Addr, vx_t V) {
  uintptr_t P =
      reinterpret_cast<uintptr_t>(Addr) & ~static_cast<uintptr_t>(31);
  _mm256_store_si256(reinterpret_cast<__m256i *>(P), V);
}

template <int N> inline vx_t vx_sld(vx_t A, vx_t B) {
  static_assert(N >= 0 && N <= 32, "shift immediate out of range");
  if constexpr (N == 0)
    return A;
  else if constexpr (N == 32)
    return B;
  else if constexpr (N == 16)
    return _mm256_permute2x128_si256(A, B, 0x21);
  else if constexpr (N < 16) {
    // Lane l of the result needs bytes [N, N+16) of concat(C_l, C_{l+1})
    // where C = [A_lo, A_hi, B_lo]; M = [A_hi, B_lo] supplies C_{l+1}.
    __m256i M = _mm256_permute2x128_si256(A, B, 0x21);
    return _mm256_alignr_epi8(M, A, N);
  } else {
    __m256i M = _mm256_permute2x128_si256(A, B, 0x21);
    return _mm256_alignr_epi8(B, M, N - 16);
  }
}

inline vx_t vx_shiftpair(vx_t A, vx_t B, long S) {
  alignas(32) unsigned char Concat[64];
  _mm256_store_si256(reinterpret_cast<__m256i *>(Concat), A);
  _mm256_store_si256(reinterpret_cast<__m256i *>(Concat + 32), B);
  return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Concat + S));
}

inline vx_t vx_splice(vx_t A, vx_t B, long P) {
  const __m256i Idx = _mm256_setr_epi8(
      0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19,
      20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31);
  // Idx and P are in [0, 32], so the signed byte compare is exact.
  __m256i M = _mm256_cmpgt_epi8(_mm256_set1_epi8(static_cast<char>(P)), Idx);
  return _mm256_blendv_epi8(B, A, M);
}

inline vx_t vx_splat_i8(long V) {
  return _mm256_set1_epi8(static_cast<char>(V));
}
inline vx_t vx_splat_i16(long V) {
  return _mm256_set1_epi16(static_cast<short>(V));
}
inline vx_t vx_splat_i32(long V) {
  return _mm256_set1_epi32(static_cast<int>(V));
}

inline vx_t vx_add_i8(vx_t A, vx_t B) { return _mm256_add_epi8(A, B); }
inline vx_t vx_sub_i8(vx_t A, vx_t B) { return _mm256_sub_epi8(A, B); }
inline vx_t vx_add_i16(vx_t A, vx_t B) { return _mm256_add_epi16(A, B); }
inline vx_t vx_sub_i16(vx_t A, vx_t B) { return _mm256_sub_epi16(A, B); }
inline vx_t vx_add_i32(vx_t A, vx_t B) { return _mm256_add_epi32(A, B); }
inline vx_t vx_sub_i32(vx_t A, vx_t B) { return _mm256_sub_epi32(A, B); }
inline vx_t vx_mul_i16(vx_t A, vx_t B) { return _mm256_mullo_epi16(A, B); }
inline vx_t vx_mul_i32(vx_t A, vx_t B) { return _mm256_mullo_epi32(A, B); }

inline vx_t vx_mul_i8(vx_t A, vx_t B) {
  __m256i Z = _mm256_setzero_si256();
  __m256i Lo = _mm256_mullo_epi16(_mm256_unpacklo_epi8(A, Z),
                                  _mm256_unpacklo_epi8(B, Z));
  __m256i Hi = _mm256_mullo_epi16(_mm256_unpackhi_epi8(A, Z),
                                  _mm256_unpackhi_epi8(B, Z));
  __m256i M = _mm256_set1_epi16(0x00FF);
  return _mm256_packus_epi16(_mm256_and_si256(Lo, M),
                             _mm256_and_si256(Hi, M));
}

inline vx_t vx_and_i8(vx_t A, vx_t B) { return _mm256_and_si256(A, B); }
inline vx_t vx_or_i8(vx_t A, vx_t B) { return _mm256_or_si256(A, B); }
inline vx_t vx_xor_i8(vx_t A, vx_t B) { return _mm256_xor_si256(A, B); }
inline vx_t vx_and_i16(vx_t A, vx_t B) { return _mm256_and_si256(A, B); }
inline vx_t vx_or_i16(vx_t A, vx_t B) { return _mm256_or_si256(A, B); }
inline vx_t vx_xor_i16(vx_t A, vx_t B) { return _mm256_xor_si256(A, B); }
inline vx_t vx_and_i32(vx_t A, vx_t B) { return _mm256_and_si256(A, B); }
inline vx_t vx_or_i32(vx_t A, vx_t B) { return _mm256_or_si256(A, B); }
inline vx_t vx_xor_i32(vx_t A, vx_t B) { return _mm256_xor_si256(A, B); }

inline vx_t vx_min_i8(vx_t A, vx_t B) { return _mm256_min_epi8(A, B); }
inline vx_t vx_max_i8(vx_t A, vx_t B) { return _mm256_max_epi8(A, B); }
inline vx_t vx_min_i16(vx_t A, vx_t B) { return _mm256_min_epi16(A, B); }
inline vx_t vx_max_i16(vx_t A, vx_t B) { return _mm256_max_epi16(A, B); }
inline vx_t vx_min_i32(vx_t A, vx_t B) { return _mm256_min_epi32(A, B); }
inline vx_t vx_max_i32(vx_t A, vx_t B) { return _mm256_max_epi32(A, B); }

inline vx_t vx_sel(vx_t Mask, vx_t IfSet, vx_t IfClear) {
  return _mm256_or_si256(_mm256_and_si256(Mask, IfSet),
                         _mm256_andnot_si256(Mask, IfClear));
}

// Signed lane compares: eq/gt native, the rest by complement or swap.
inline vx_t vx_not256(vx_t A) {
  return _mm256_xor_si256(A, _mm256_set1_epi8(-1));
}

inline vx_t vx_cmp_eq_i8(vx_t A, vx_t B) { return _mm256_cmpeq_epi8(A, B); }
inline vx_t vx_cmp_eq_i16(vx_t A, vx_t B) { return _mm256_cmpeq_epi16(A, B); }
inline vx_t vx_cmp_eq_i32(vx_t A, vx_t B) { return _mm256_cmpeq_epi32(A, B); }
inline vx_t vx_cmp_ne_i8(vx_t A, vx_t B) {
  return vx_not256(vx_cmp_eq_i8(A, B));
}
inline vx_t vx_cmp_ne_i16(vx_t A, vx_t B) {
  return vx_not256(vx_cmp_eq_i16(A, B));
}
inline vx_t vx_cmp_ne_i32(vx_t A, vx_t B) {
  return vx_not256(vx_cmp_eq_i32(A, B));
}
inline vx_t vx_cmp_gt_i8(vx_t A, vx_t B) { return _mm256_cmpgt_epi8(A, B); }
inline vx_t vx_cmp_gt_i16(vx_t A, vx_t B) { return _mm256_cmpgt_epi16(A, B); }
inline vx_t vx_cmp_gt_i32(vx_t A, vx_t B) { return _mm256_cmpgt_epi32(A, B); }
inline vx_t vx_cmp_lt_i8(vx_t A, vx_t B) { return _mm256_cmpgt_epi8(B, A); }
inline vx_t vx_cmp_lt_i16(vx_t A, vx_t B) { return _mm256_cmpgt_epi16(B, A); }
inline vx_t vx_cmp_lt_i32(vx_t A, vx_t B) { return _mm256_cmpgt_epi32(B, A); }
inline vx_t vx_cmp_le_i8(vx_t A, vx_t B) {
  return vx_not256(vx_cmp_gt_i8(A, B));
}
inline vx_t vx_cmp_le_i16(vx_t A, vx_t B) {
  return vx_not256(vx_cmp_gt_i16(A, B));
}
inline vx_t vx_cmp_le_i32(vx_t A, vx_t B) {
  return vx_not256(vx_cmp_gt_i32(A, B));
}
inline vx_t vx_cmp_ge_i8(vx_t A, vx_t B) {
  return vx_not256(vx_cmp_lt_i8(A, B));
}
inline vx_t vx_cmp_ge_i16(vx_t A, vx_t B) {
  return vx_not256(vx_cmp_lt_i16(A, B));
}
inline vx_t vx_cmp_ge_i32(vx_t A, vx_t B) {
  return vx_not256(vx_cmp_lt_i32(A, B));
}

//===----------------------------------------------------------------------===//
// AVX-512 (F + BW): __m512i, V = 64. vsplice is a single masked blend;
// the shift pair goes through an aligned spill of the 128-byte pair
// (correct for every S in [0, 64] and still far from the interpreter's
// cost).
//===----------------------------------------------------------------------===//
#elif defined(SIMDIZE_NATIVE_ISA_AVX512)

#if SIMDIZE_NATIVE_V != 64
#error "AVX-512 lowering requires V = 64"
#endif

#include <immintrin.h>

typedef __m512i vx_t;

inline vx_t vx_ld(const unsigned char *Addr) {
  uintptr_t P =
      reinterpret_cast<uintptr_t>(Addr) & ~static_cast<uintptr_t>(63);
  return _mm512_load_si512(reinterpret_cast<const void *>(P));
}

inline void vx_st(unsigned char *Addr, vx_t V) {
  uintptr_t P =
      reinterpret_cast<uintptr_t>(Addr) & ~static_cast<uintptr_t>(63);
  _mm512_store_si512(reinterpret_cast<void *>(P), V);
}

inline vx_t vx_shiftpair(vx_t A, vx_t B, long S) {
  alignas(64) unsigned char Concat[128];
  _mm512_store_si512(reinterpret_cast<void *>(Concat), A);
  _mm512_store_si512(reinterpret_cast<void *>(Concat + 64), B);
  return _mm512_loadu_si512(reinterpret_cast<const void *>(Concat + S));
}

template <int N> inline vx_t vx_sld(vx_t A, vx_t B) {
  static_assert(N >= 0 && N <= 64, "shift immediate out of range");
  if constexpr (N == 0)
    return A;
  else if constexpr (N == 64)
    return B;
  else
    return vx_shiftpair(A, B, N);
}

inline vx_t vx_splice(vx_t A, vx_t B, long P) {
  __mmask64 M = P >= 64 ? ~static_cast<__mmask64>(0)
                        : ((static_cast<__mmask64>(1) << P) - 1);
  return _mm512_mask_blend_epi8(M, B, A);
}

inline vx_t vx_splat_i8(long V) {
  return _mm512_set1_epi8(static_cast<char>(V));
}
inline vx_t vx_splat_i16(long V) {
  return _mm512_set1_epi16(static_cast<short>(V));
}
inline vx_t vx_splat_i32(long V) {
  return _mm512_set1_epi32(static_cast<int>(V));
}

inline vx_t vx_add_i8(vx_t A, vx_t B) { return _mm512_add_epi8(A, B); }
inline vx_t vx_sub_i8(vx_t A, vx_t B) { return _mm512_sub_epi8(A, B); }
inline vx_t vx_add_i16(vx_t A, vx_t B) { return _mm512_add_epi16(A, B); }
inline vx_t vx_sub_i16(vx_t A, vx_t B) { return _mm512_sub_epi16(A, B); }
inline vx_t vx_add_i32(vx_t A, vx_t B) { return _mm512_add_epi32(A, B); }
inline vx_t vx_sub_i32(vx_t A, vx_t B) { return _mm512_sub_epi32(A, B); }
inline vx_t vx_mul_i16(vx_t A, vx_t B) { return _mm512_mullo_epi16(A, B); }
inline vx_t vx_mul_i32(vx_t A, vx_t B) { return _mm512_mullo_epi32(A, B); }

inline vx_t vx_mul_i8(vx_t A, vx_t B) {
  __m512i Z = _mm512_setzero_si512();
  __m512i Lo = _mm512_mullo_epi16(_mm512_unpacklo_epi8(A, Z),
                                  _mm512_unpacklo_epi8(B, Z));
  __m512i Hi = _mm512_mullo_epi16(_mm512_unpackhi_epi8(A, Z),
                                  _mm512_unpackhi_epi8(B, Z));
  __m512i M = _mm512_set1_epi16(0x00FF);
  return _mm512_packus_epi16(_mm512_and_si512(Lo, M),
                             _mm512_and_si512(Hi, M));
}

inline vx_t vx_and_i8(vx_t A, vx_t B) { return _mm512_and_si512(A, B); }
inline vx_t vx_or_i8(vx_t A, vx_t B) { return _mm512_or_si512(A, B); }
inline vx_t vx_xor_i8(vx_t A, vx_t B) { return _mm512_xor_si512(A, B); }
inline vx_t vx_and_i16(vx_t A, vx_t B) { return _mm512_and_si512(A, B); }
inline vx_t vx_or_i16(vx_t A, vx_t B) { return _mm512_or_si512(A, B); }
inline vx_t vx_xor_i16(vx_t A, vx_t B) { return _mm512_xor_si512(A, B); }
inline vx_t vx_and_i32(vx_t A, vx_t B) { return _mm512_and_si512(A, B); }
inline vx_t vx_or_i32(vx_t A, vx_t B) { return _mm512_or_si512(A, B); }
inline vx_t vx_xor_i32(vx_t A, vx_t B) { return _mm512_xor_si512(A, B); }

inline vx_t vx_min_i8(vx_t A, vx_t B) { return _mm512_min_epi8(A, B); }
inline vx_t vx_max_i8(vx_t A, vx_t B) { return _mm512_max_epi8(A, B); }
inline vx_t vx_min_i16(vx_t A, vx_t B) { return _mm512_min_epi16(A, B); }
inline vx_t vx_max_i16(vx_t A, vx_t B) { return _mm512_max_epi16(A, B); }
inline vx_t vx_min_i32(vx_t A, vx_t B) { return _mm512_min_epi32(A, B); }
inline vx_t vx_max_i32(vx_t A, vx_t B) { return _mm512_max_epi32(A, B); }

/// (Mask & IfSet) | (~Mask & IfClear) in one vpternlogd (truth table 0xCA:
/// bit = a ? b : c for operand order (Mask, IfSet, IfClear)).
inline vx_t vx_sel(vx_t Mask, vx_t IfSet, vx_t IfClear) {
  return _mm512_ternarylogic_epi64(Mask, IfSet, IfClear, 0xCA);
}

// AVX-512 compares produce predicate masks; expand them back to the
// all-ones/zero lane masks the VM models (maskz_set1 of -1).
inline vx_t vx_cmp_eq_i8(vx_t A, vx_t B) {
  return _mm512_maskz_set1_epi8(_mm512_cmpeq_epi8_mask(A, B), -1);
}
inline vx_t vx_cmp_ne_i8(vx_t A, vx_t B) {
  return _mm512_maskz_set1_epi8(_mm512_cmpneq_epi8_mask(A, B), -1);
}
inline vx_t vx_cmp_lt_i8(vx_t A, vx_t B) {
  return _mm512_maskz_set1_epi8(_mm512_cmplt_epi8_mask(A, B), -1);
}
inline vx_t vx_cmp_le_i8(vx_t A, vx_t B) {
  return _mm512_maskz_set1_epi8(_mm512_cmple_epi8_mask(A, B), -1);
}
inline vx_t vx_cmp_gt_i8(vx_t A, vx_t B) {
  return _mm512_maskz_set1_epi8(_mm512_cmpgt_epi8_mask(A, B), -1);
}
inline vx_t vx_cmp_ge_i8(vx_t A, vx_t B) {
  return _mm512_maskz_set1_epi8(_mm512_cmpge_epi8_mask(A, B), -1);
}
inline vx_t vx_cmp_eq_i16(vx_t A, vx_t B) {
  return _mm512_maskz_set1_epi16(_mm512_cmpeq_epi16_mask(A, B), -1);
}
inline vx_t vx_cmp_ne_i16(vx_t A, vx_t B) {
  return _mm512_maskz_set1_epi16(_mm512_cmpneq_epi16_mask(A, B), -1);
}
inline vx_t vx_cmp_lt_i16(vx_t A, vx_t B) {
  return _mm512_maskz_set1_epi16(_mm512_cmplt_epi16_mask(A, B), -1);
}
inline vx_t vx_cmp_le_i16(vx_t A, vx_t B) {
  return _mm512_maskz_set1_epi16(_mm512_cmple_epi16_mask(A, B), -1);
}
inline vx_t vx_cmp_gt_i16(vx_t A, vx_t B) {
  return _mm512_maskz_set1_epi16(_mm512_cmpgt_epi16_mask(A, B), -1);
}
inline vx_t vx_cmp_ge_i16(vx_t A, vx_t B) {
  return _mm512_maskz_set1_epi16(_mm512_cmpge_epi16_mask(A, B), -1);
}
inline vx_t vx_cmp_eq_i32(vx_t A, vx_t B) {
  return _mm512_maskz_set1_epi32(_mm512_cmpeq_epi32_mask(A, B), -1);
}
inline vx_t vx_cmp_ne_i32(vx_t A, vx_t B) {
  return _mm512_maskz_set1_epi32(_mm512_cmpneq_epi32_mask(A, B), -1);
}
inline vx_t vx_cmp_lt_i32(vx_t A, vx_t B) {
  return _mm512_maskz_set1_epi32(_mm512_cmplt_epi32_mask(A, B), -1);
}
inline vx_t vx_cmp_le_i32(vx_t A, vx_t B) {
  return _mm512_maskz_set1_epi32(_mm512_cmple_epi32_mask(A, B), -1);
}
inline vx_t vx_cmp_gt_i32(vx_t A, vx_t B) {
  return _mm512_maskz_set1_epi32(_mm512_cmpgt_epi32_mask(A, B), -1);
}
inline vx_t vx_cmp_ge_i32(vx_t A, vx_t B) {
  return _mm512_maskz_set1_epi32(_mm512_cmpge_epi32_mask(A, B), -1);
}

#else
#error "define exactly one SIMDIZE_NATIVE_ISA_{SHIM,SSE2,AVX2,AVX512}"
#endif

#endif // SIMDIZE_NATIVE_SIMDIZE_X86_H
