//===- opt/Pipeline.h - Post-codegen optimization pipeline ---------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the code generation optimizations the evaluation toggles
/// (Section 5.5): CSE (baseline redundancy elimination, always realistic to
/// assume), memory normalization (chunk-level load unification inside CSE
/// and PC), predictive commoning, the copy-removing unroll, and DCE.
/// Software pipelining is a *code generation* option
/// (codegen::SimdizeOptions), not a pass; its back-edge copies are removed
/// by the same unroll pass used for PC's.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_OPT_PIPELINE_H
#define SIMDIZE_OPT_PIPELINE_H

namespace simdize {
namespace vir {
class VProgram;
} // namespace vir

namespace opt {

/// Which optimizations to run after code generation.
struct OptConfig {
  bool CSE = true;       ///< Within-iteration redundancy elimination.
  bool MemNorm = true;   ///< Chunk-normalized load keys (Section 5.5).
  bool PC = false;       ///< Predictive commoning.
  bool UnrollCopies = true; ///< Remove back-edge copies by unrolling twice.
};

/// Statistics of one pipeline run.
struct OptStats {
  unsigned CSERemoved = 0;
  unsigned PCReplaced = 0;
  unsigned CopiesRemoved = 0;
  unsigned DCERemoved = 0;
};

/// Runs the configured passes over \p P in order CSE, PC, unroll, DCE.
OptStats runOptPipeline(vir::VProgram &P, const OptConfig &Config);

} // namespace opt
} // namespace simdize

#endif // SIMDIZE_OPT_PIPELINE_H
