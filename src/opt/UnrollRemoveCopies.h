//===- opt/UnrollRemoveCopies.h - Unroll-by-2 carried-copy elimination ----===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Note that the copy operation can be easily removed by unrolling the
/// loop twice and forward propagating the copy operation" (Section 4.5).
/// This pass does exactly that for the back-edge copies introduced by
/// software-pipelined code generation or by predictive commoning:
///
///  * the steady body is unrolled by two (the second instance's addresses
///    advance by B and its registers are renamed);
///  * the second instance's reads of a carried register forward-propagate
///    to the first instance's freshly computed value;
///  * the copy disappears by coalescing: the second instance's producer of
///    the carried value writes the carried register directly (legal — the
///    register's last read precedes that definition by construction);
///  * the loop step doubles, its bound drops by B, and a possible leftover
///    odd iteration moves in front of the epilogue — emitted statically
///    when the trip count is known, predicated on `i < UB` otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_OPT_UNROLLREMOVECOPIES_H
#define SIMDIZE_OPT_UNROLLREMOVECOPIES_H

namespace simdize {
namespace vir {
class VProgram;
} // namespace vir

namespace opt {

/// Applies the transformation when the body ends in back-edge copies; no-op
/// otherwise (also when the loop was already unrolled). \returns the number
/// of copies eliminated.
unsigned runUnrollRemoveCopies(vir::VProgram &P);

} // namespace opt
} // namespace simdize

#endif // SIMDIZE_OPT_UNROLLREMOVECOPIES_H
