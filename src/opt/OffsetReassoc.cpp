//===- opt/OffsetReassoc.cpp ----------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "opt/OffsetReassoc.h"

#include "ir/IRPrinter.h"
#include "ir/Loop.h"
#include "reorg/StreamOffset.h"
#include "support/Format.h"
#include "support/MathExtras.h"

#include <map>
#include <vector>

using namespace simdize;
using namespace simdize::opt;

namespace {

/// Offset-class key of a subtree: operands in the same class are provably
/// relatively aligned. "u" is the wildcard splat class; "m:<text>" marks a
/// mixed subtree that only groups with itself structurally (never merged).
std::string classOf(const ir::Expr &E, unsigned V) {
  switch (E.getKind()) {
  case ir::ExprKind::Splat:
  case ir::ExprKind::Param:
    return "u";
  case ir::ExprKind::ArrayRef: {
    const auto &Ref = ir::cast<ir::ArrayRefExpr>(E);
    const ir::Array *A = Ref.getArray();
    int64_t Scaled =
        nonNegMod(Ref.getOffset() * static_cast<int64_t>(A->getElemSize()),
                  V);
    if (A->isAlignmentKnown())
      return strf("c%lld",
                  static_cast<long long>(
                      nonNegMod(A->getAlignment() +
                                    Ref.getOffset() *
                                        static_cast<int64_t>(A->getElemSize()),
                                V)));
    return strf("r%p/%lld", static_cast<const void *>(A),
                static_cast<long long>(Scaled));
  }
  case ir::ExprKind::BinOp: {
    const auto &BO = ir::cast<ir::BinOpExpr>(E);
    std::string L = classOf(BO.getLHS(), V);
    std::string R = classOf(BO.getRHS(), V);
    if (L == "u")
      return R;
    if (R == "u" || L == R)
      return L;
    return "m:" + L + "|" + R;
  }
  }
  return "m:?";
}

std::unique_ptr<ir::Expr> transform(std::unique_ptr<ir::Expr> E, unsigned V);

/// Flattens a maximal same-operator associative-commutative chain,
/// transforming each operand recursively.
void flattenChain(std::unique_ptr<ir::Expr> E, ir::BinOpKind Kind,
                  std::vector<std::unique_ptr<ir::Expr>> &Operands,
                  unsigned V) {
  if (auto *BO = ir::dyn_cast<ir::BinOpExpr>(*E); BO && BO->getOp() == Kind) {
    flattenChain(BO->takeLHS(), Kind, Operands, V);
    flattenChain(BO->takeRHS(), Kind, Operands, V);
    return;
  }
  Operands.push_back(transform(std::move(E), V));
}

std::unique_ptr<ir::Expr> transform(std::unique_ptr<ir::Expr> E, unsigned V) {
  auto *BO = ir::dyn_cast<ir::BinOpExpr>(*E);
  if (!BO)
    return E;
  if (!ir::isAssociativeCommutative(BO->getOp())) {
    BO->setLHS(transform(BO->takeLHS(), V));
    BO->setRHS(transform(BO->takeRHS(), V));
    return E;
  }

  ir::BinOpKind Kind = BO->getOp();
  std::vector<std::unique_ptr<ir::Expr>> Operands;
  flattenChain(std::move(E), Kind, Operands, V);

  // Group by offset class, preserving in-class order; the splat wildcard
  // class "u" joins the first group. std::map keeps group order
  // deterministic.
  std::map<std::string, std::vector<std::unique_ptr<ir::Expr>>> Groups;
  for (auto &Op : Operands) {
    std::string Class = classOf(*Op, V);
    Groups[Class].push_back(std::move(Op));
  }
  if (auto It = Groups.find("u");
      It != Groups.end() && Groups.size() > 1) {
    auto Splats = std::move(It->second);
    Groups.erase(It);
    auto &First = Groups.begin()->second;
    for (auto &S : Splats)
      First.push_back(std::move(S));
  }

  // Left-leaning recombination: within each group first, then across
  // groups, so every intermediate vop sees relatively aligned inputs for
  // as long as possible.
  std::unique_ptr<ir::Expr> Result;
  for (auto &[Class, Members] : Groups) {
    std::unique_ptr<ir::Expr> GroupValue;
    for (auto &M : Members) {
      GroupValue = GroupValue ? std::make_unique<ir::BinOpExpr>(
                                    Kind, std::move(GroupValue), std::move(M))
                              : std::move(M);
    }
    Result = Result ? std::make_unique<ir::BinOpExpr>(Kind, std::move(Result),
                                                      std::move(GroupValue))
                    : std::move(GroupValue);
  }
  return Result;
}

} // namespace

unsigned opt::runOffsetReassociation(ir::Loop &L, unsigned VectorLen) {
  unsigned Changed = 0;
  for (auto &S : L.getStmts()) {
    std::string Before = ir::printExpr(S->getRHS());
    S->setRHS(transform(S->takeRHS(), VectorLen));
    if (ir::printExpr(S->getRHS()) != Before)
      ++Changed;
  }
  return Changed;
}
