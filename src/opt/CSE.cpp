//===- opt/CSE.cpp --------------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "opt/CSE.h"

#include "opt/SymbolicKey.h"

#include <map>

using namespace simdize;
using namespace simdize::opt;
using namespace simdize::vir;

unsigned opt::runCSE(VProgram &P, bool MemNorm) {
  BodyKeys Keys(P, MemNorm);
  Block &Body = P.getBody();

  std::map<std::string, VRegId> Leader;
  std::map<unsigned, VRegId> Rename;
  Block NewBody;
  NewBody.reserve(Body.size());
  unsigned Removed = 0;

  auto Renamed = [&Rename](VRegId R) {
    auto It = Rename.find(R.Id);
    return It == Rename.end() ? R : It->second;
  };

  for (const VInst &I : Body) {
    VInst Copy = I;
    // Apply pending renames to the uses first.
    switch (Copy.Op) {
    case VOpcode::VStore:
    case VOpcode::VCopy:
      Copy.VSrc1 = Renamed(Copy.VSrc1);
      break;
    case VOpcode::VBinOp:
    case VOpcode::VCmp:
    case VOpcode::VShiftPair:
    case VOpcode::VSplice:
      Copy.VSrc1 = Renamed(Copy.VSrc1);
      Copy.VSrc2 = Renamed(Copy.VSrc2);
      break;
    case VOpcode::VSelect:
      Copy.VSrc1 = Renamed(Copy.VSrc1);
      Copy.VSrc2 = Renamed(Copy.VSrc2);
      Copy.VSrc3 = Renamed(Copy.VSrc3);
      break;
    default:
      break;
    }

    // Copies are the loop-carry mechanism, never redundant computation;
    // the unroll pass is responsible for removing them.
    if (Copy.isPure() && Copy.definesVector() && Copy.Op != VOpcode::VCopy) {
      std::string Key = Keys.keyOfVReg(I.VDst, 0);
      if (!Key.empty()) {
        if (auto It = Leader.find(Key); It != Leader.end()) {
          // Redundant: route uses to the leader and drop the instruction.
          Rename[I.VDst.Id] = It->second;
          ++Removed;
          continue;
        }
        Leader.emplace(std::move(Key), I.VDst);
      }
    }
    NewBody.push_back(std::move(Copy));
  }

  Body = std::move(NewBody);
  return Removed;
}
