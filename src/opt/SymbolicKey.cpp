//===- opt/SymbolicKey.cpp ------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "opt/SymbolicKey.h"

#include "ir/Array.h"
#include "support/Format.h"

using namespace simdize;
using namespace simdize::opt;
using namespace simdize::vir;

BodyKeys::BodyKeys(const VProgram &P, bool MemNorm)
    : P(P), MemNorm(MemNorm), DefIndex(P.getNumVRegs(), -1) {
  const Block &Body = P.getBody();
  for (unsigned K = 0; K < Body.size(); ++K) {
    const VInst &I = Body[K];
    if (!I.definesVector())
      continue;
    int &Slot = DefIndex[I.VDst.Id];
    Slot = Slot == -1 ? static_cast<int>(K) : -2;
  }
  // A register also defined outside the body is loop-carried (a
  // software-pipeline "old" initialized in Setup): its body value differs
  // per iteration in a way no body instruction expresses — not keyable.
  for (BlockKind Kind : {BlockKind::Setup, BlockKind::Epilogue})
    for (const VInst &I : P.getBlock(Kind))
      if (I.definesVector() && DefIndex[I.VDst.Id] != -1)
        DefIndex[I.VDst.Id] = -2;
}

int BodyKeys::defIndexOf(VRegId R) const {
  int Idx = DefIndex[R.Id];
  return Idx >= 0 ? Idx : -1;
}

/// Floor division (round toward negative infinity); chunk indices can go
/// negative for prologue-side deltas.
static int64_t floorDiv(int64_t Num, int64_t Den) {
  int64_t Q = Num / Den;
  if ((Num % Den != 0) && ((Num < 0) != (Den < 0)))
    --Q;
  return Q;
}

std::string BodyKeys::keyOfAddr(const Address &A, int64_t DeltaElems) const {
  // Body addresses are always counter-indexed; constant-index addresses
  // belong to Setup/Epilogue code.
  int64_t C = A.ElemOffset + DeltaElems;
  if (MemNorm && A.Base->isAlignmentKnown()) {
    // The truncating load reads chunk floor((align + c*D) / V) of the
    // stream at counter multiples of B; key by that chunk.
    int64_t Chunk = floorDiv(A.Base->getAlignment() +
                                 C * static_cast<int64_t>(
                                         A.Base->getElemSize()),
                             P.getVectorLen());
    return strf("%p#k%lld", static_cast<const void *>(A.Base),
                static_cast<long long>(Chunk));
  }
  return strf("%p#o%lld", static_cast<const void *>(A.Base),
              static_cast<long long>(C));
}

std::string BodyKeys::keyOfSOp(const ScalarOperand &Op) const {
  if (Op.IsReg)
    return strf("s%u", Op.Reg.Id);
  return strf("#%lld", static_cast<long long>(Op.Imm));
}

std::string BodyKeys::keyOfVReg(VRegId R, int64_t DeltaElems) {
  int Idx = DefIndex[R.Id];
  if (Idx == -2)
    return std::string(); // Multiply defined: loop-carried, not keyable.
  if (Idx == -1)
    return strf("ext:v%u", R.Id); // Loop invariant from Setup.

  auto MemoKey = std::make_pair(R.Id, DeltaElems);
  if (auto It = Memo.find(MemoKey); It != Memo.end())
    return It->second;
  std::string Key = keyOfInst(P.getBody()[static_cast<size_t>(Idx)],
                              DeltaElems);
  Memo.emplace(MemoKey, Key);
  return Key;
}

std::string BodyKeys::keyOfInst(const VInst &I, int64_t DeltaElems) {
  if (I.Predicate)
    return std::string(); // Conditional values are not keyable.

  switch (I.Op) {
  case VOpcode::VLoad:
    if (!I.Addr.Index)
      return std::string();
    // Loads of stored arrays do not bar keying: checkSimdizable admits at
    // most one storing statement per array and no explicit loads of it, so
    // the only aliasing load is an if-converted statement's own old-value
    // reload of the *same* stream — and the stream schedule stores a chunk
    // only at the iteration performing its last load, after that load. Any
    // store between two same-chunk loads therefore targets a strictly
    // earlier chunk and cannot change the loaded value.
    return "L(" + keyOfAddr(I.Addr, DeltaElems) + ")";
  case VOpcode::VSplat:
    if (I.SOp1.IsReg)
      return strf("P(s%u)", I.SOp1.Reg.Id);
    return strf("P(%lld)", static_cast<long long>(I.SOp1.Imm));
  case VOpcode::VBinOp: {
    std::string L = keyOfVReg(I.VSrc1, DeltaElems);
    std::string R = keyOfVReg(I.VSrc2, DeltaElems);
    if (L.empty() || R.empty())
      return std::string();
    return strf("B(%d,", static_cast<int>(I.VectorOp)) + L + "," + R + ")";
  }
  case VOpcode::VCmp: {
    std::string L = keyOfVReg(I.VSrc1, DeltaElems);
    std::string R = keyOfVReg(I.VSrc2, DeltaElems);
    if (L.empty() || R.empty())
      return std::string();
    return strf("C(%d,", static_cast<int>(I.CmpOp)) + L + "," + R + ")";
  }
  case VOpcode::VSelect: {
    std::string M = keyOfVReg(I.VSrc1, DeltaElems);
    std::string S = keyOfVReg(I.VSrc2, DeltaElems);
    std::string C = keyOfVReg(I.VSrc3, DeltaElems);
    if (M.empty() || S.empty() || C.empty())
      return std::string();
    return "S(" + M + "," + S + "," + C + ")";
  }
  case VOpcode::VShiftPair:
  case VOpcode::VSplice: {
    std::string L = keyOfVReg(I.VSrc1, DeltaElems);
    std::string R = keyOfVReg(I.VSrc2, DeltaElems);
    if (L.empty() || R.empty())
      return std::string();
    const char *Tag = I.Op == VOpcode::VShiftPair ? "H" : "E";
    return std::string(Tag) + "(" + keyOfSOp(I.SOp1) + "," + L + "," + R +
           ")";
  }
  case VOpcode::VCopy: {
    // A copy's value is its source's — but copies mark loop-carried
    // rotation; their dsts are multiply-defined and already filtered.
    return keyOfVReg(I.VSrc1, DeltaElems);
  }
  default:
    return std::string();
  }
}
