//===- opt/DCE.h - Dead code elimination ----------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Removes pure instructions whose results are never read. Needed after
/// predictive commoning and the copy-removing unroll, which orphan the
/// operand subtrees of replaced instructions; without DCE those would
/// still execute and inflate the measured operation counts.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_OPT_DCE_H
#define SIMDIZE_OPT_DCE_H

namespace simdize {
namespace vir {
class VProgram;
} // namespace vir

namespace opt {

/// Iterates to a fixpoint removing unused pure definitions across all three
/// blocks. \returns the number of instructions removed.
unsigned runDCE(vir::VProgram &P);

} // namespace opt
} // namespace simdize

#endif // SIMDIZE_OPT_DCE_H
