//===- opt/Pipeline.cpp ---------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "opt/Pipeline.h"

#include "obs/Trace.h"
#include "opt/CSE.h"
#include "opt/DCE.h"
#include "opt/PredictiveCommoning.h"
#include "opt/UnrollRemoveCopies.h"

using namespace simdize;
using namespace simdize::opt;

OptStats opt::runOptPipeline(vir::VProgram &P, const OptConfig &Config) {
  OptStats Stats;
  obs::Span PipelineSp("opt-pipeline", "opt");
  if (Config.CSE) {
    obs::Span Sp("opt-cse", "opt");
    Stats.CSERemoved = runCSE(P, Config.MemNorm);
    Sp.arg("removed", Stats.CSERemoved);
  }
  if (Config.PC) {
    obs::Span Sp("opt-predictive-commoning", "opt");
    Stats.PCReplaced = runPredictiveCommoning(P, Config.MemNorm);
    Sp.arg("replaced", Stats.PCReplaced);
  }
  if (Config.UnrollCopies) {
    obs::Span Sp("opt-unroll-copies", "opt");
    Stats.CopiesRemoved = runUnrollRemoveCopies(P);
    Sp.arg("removed", Stats.CopiesRemoved);
  }
  {
    obs::Span Sp("opt-dce", "opt");
    Stats.DCERemoved = runDCE(P);
    Sp.arg("removed", Stats.DCERemoved);
  }
  return Stats;
}
