//===- opt/Pipeline.cpp ---------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "opt/Pipeline.h"

#include "opt/CSE.h"
#include "opt/DCE.h"
#include "opt/PredictiveCommoning.h"
#include "opt/UnrollRemoveCopies.h"

using namespace simdize;
using namespace simdize::opt;

OptStats opt::runOptPipeline(vir::VProgram &P, const OptConfig &Config) {
  OptStats Stats;
  if (Config.CSE)
    Stats.CSERemoved = runCSE(P, Config.MemNorm);
  if (Config.PC)
    Stats.PCReplaced = runPredictiveCommoning(P, Config.MemNorm);
  if (Config.UnrollCopies)
    Stats.CopiesRemoved = runUnrollRemoveCopies(P);
  Stats.DCERemoved = runDCE(P);
  return Stats;
}
