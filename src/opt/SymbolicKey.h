//===- opt/SymbolicKey.h - Symbolic values of steady-state registers -----===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assigns each vector register defined in the steady-state body a symbolic
/// value — a canonical string over (array, address, shift amount, operator)
/// parameterized by the loop counter. Two registers with equal keys hold
/// equal values in the same iteration (CSE); a register whose key at
/// counter i+B equals another's at i holds, one iteration later, the value
/// the other holds now (predictive commoning).
///
/// With memory normalization enabled, vector load keys use the 16-byte
/// chunk the truncating load actually reads (computable when the alignment
/// is static) instead of the textual address, so a[i] and a[i+1] unify
/// whenever they fall into the same chunk.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_OPT_SYMBOLICKEY_H
#define SIMDIZE_OPT_SYMBOLICKEY_H

#include "vir/VProgram.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace simdize {
namespace opt {

/// Key computation over one program's steady-state body.
class BodyKeys {
public:
  /// \param MemNorm enables chunk-based load keys for statically aligned
  /// arrays.
  BodyKeys(const vir::VProgram &P, bool MemNorm);

  /// Canonical value of vector register \p R with the loop counter
  /// advanced by \p DeltaElems elements. Returns the empty string when the
  /// value cannot be keyed: the register is written more than once in the
  /// body (a loop-carried copy target) or by an impure path.
  ///
  /// Registers defined only outside the body are loop invariants and key
  /// as "ext:vN" independent of the delta.
  std::string keyOfVReg(vir::VRegId R, int64_t DeltaElems);

  /// Index into the body of the pure instruction defining \p R, or -1 when
  /// \p R is not (uniquely) defined in the body.
  int defIndexOf(vir::VRegId R) const;

private:
  std::string keyOfInst(const vir::VInst &I, int64_t DeltaElems);
  std::string keyOfAddr(const vir::Address &A, int64_t DeltaElems) const;
  std::string keyOfSOp(const vir::ScalarOperand &Op) const;

  const vir::VProgram &P;
  bool MemNorm;
  /// Body def index per vector register; -1 undefined here, -2 multiple.
  std::vector<int> DefIndex;
  std::map<std::pair<unsigned, int64_t>, std::string> Memo;
};

} // namespace opt
} // namespace simdize

#endif // SIMDIZE_OPT_SYMBOLICKEY_H
