//===- opt/PredictiveCommoning.h - Cross-iteration reuse as a post-pass ---===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predictive Commoning [O'Brien 1990], the TPO optimization the paper
/// leans on as the alternative to software-pipelined code generation: a
/// value computed in the steady body that equals another body value of the
/// *previous* iteration (its key at counter i+B matches the other's at i)
/// is not recomputed; it is carried across the back edge in a register,
/// initialized once before the loop. Applied to the Figure 7 lowering this
/// removes the recomputation of vector loads and whole realignment
/// subtrees, recovering the never-load-twice property without regenerating
/// code.
///
/// Loop-invariant body values (key independent of the counter) are hoisted
/// to Setup outright.
///
/// The introduced copies are subsequently eliminated by
/// runUnrollRemoveCopies, exactly like the software pipeline's.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_OPT_PREDICTIVECOMMONING_H
#define SIMDIZE_OPT_PREDICTIVECOMMONING_H

namespace simdize {
namespace vir {
class VProgram;
} // namespace vir

namespace opt {

/// Runs predictive commoning over \p P's body. Requires an SSA-shaped body
/// (no loop-carried copies yet — run before, not after, software-pipelined
/// carries exist; the pass skips multiply-defined registers). \returns the
/// number of instructions replaced by carried registers.
unsigned runPredictiveCommoning(vir::VProgram &P, bool MemNorm);

} // namespace opt
} // namespace simdize

#endif // SIMDIZE_OPT_PREDICTIVECOMMONING_H
