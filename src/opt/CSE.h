//===- opt/CSE.h - Common subexpression elimination in the steady body ---===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Removes within-iteration redundancy from the steady-state body: two pure
/// vector instructions with the same symbolic value collapse to one. The
/// non-pipelined lowering of vshiftstream recomputes whole subtrees for the
/// "other" iteration (Figure 7); sibling shifts frequently share those
/// subtrees, and this pass merges them. Store-to-load aliasing cannot occur
/// because simdizable loops never load from stored arrays
/// (codegen::checkSimdizable).
///
/// With MemNorm, loads unify by the 16-byte chunk they actually read — the
/// paper's "memory normalization" option, "always beneficial by
/// approximately 0.5%".
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_OPT_CSE_H
#define SIMDIZE_OPT_CSE_H

namespace simdize {
namespace vir {
class VProgram;
} // namespace vir

namespace opt {

/// Runs CSE over \p P's body. \returns the number of instructions removed.
unsigned runCSE(vir::VProgram &P, bool MemNorm);

} // namespace opt
} // namespace simdize

#endif // SIMDIZE_OPT_CSE_H
