//===- opt/PredictiveCommoning.cpp ----------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "opt/PredictiveCommoning.h"

#include "opt/SymbolicKey.h"
#include "support/Debug.h"

#include <map>
#include <set>
#include <vector>

using namespace simdize;
using namespace simdize::opt;
using namespace simdize::vir;

namespace {

/// Clones the body def tree of registers into Setup, evaluated at a
/// compile-time counter value — the initialization of carried registers.
class ConstCloner {
public:
  ConstCloner(VProgram &P, const Block &OrigBody, const BodyKeys &Keys)
      : P(P), OrigBody(OrigBody), Keys(Keys) {}

  /// Emits code into Setup computing the value \p R has at loop counter
  /// \p CV; returns the register holding it. Registers not defined in the
  /// body are loop invariants and are returned as-is.
  VRegId cloneAt(VRegId R, int64_t CV) {
    int DefIdx = Keys.defIndexOf(R);
    if (DefIdx < 0)
      return R; // Setup-defined loop invariant.
    auto MemoKey = std::make_pair(R.Id, CV);
    if (auto It = Memo.find(MemoKey); It != Memo.end())
      return It->second;

    VInst I = OrigBody[static_cast<size_t>(DefIdx)];
    assert(I.isPure() && "cannot clone an impure instruction");
    switch (I.Op) {
    case VOpcode::VLoad:
      assert(I.Addr.Index && "body loads are counter-indexed");
      I.Addr = Address::constant(I.Addr.Base, I.Addr.ElemOffset, CV);
      break;
    case VOpcode::VSplat:
      break;
    case VOpcode::VBinOp:
    case VOpcode::VCmp:
    case VOpcode::VShiftPair:
    case VOpcode::VSplice:
      I.VSrc1 = cloneAt(I.VSrc1, CV);
      I.VSrc2 = cloneAt(I.VSrc2, CV);
      break;
    case VOpcode::VSelect:
      I.VSrc1 = cloneAt(I.VSrc1, CV);
      I.VSrc2 = cloneAt(I.VSrc2, CV);
      I.VSrc3 = cloneAt(I.VSrc3, CV);
      break;
    case VOpcode::VCopy:
      I.VSrc1 = cloneAt(I.VSrc1, CV);
      break;
    default:
      simdize_unreachable("unexpected opcode in steady body");
    }
    I.VDst = P.allocVReg();
    I.Comment = "predictive-commoning init";
    P.getSetup().push_back(I);
    Memo.emplace(MemoKey, I.VDst);
    return I.VDst;
  }

private:
  VProgram &P;
  const Block &OrigBody;
  const BodyKeys &Keys;
  std::map<std::pair<unsigned, int64_t>, VRegId> Memo;
};

} // namespace

unsigned opt::runPredictiveCommoning(VProgram &P, bool MemNorm) {
  BodyKeys Keys(P, MemNorm);
  const Block OrigBody = P.getBody(); // Copy: rewrites must not disturb keys.
  int64_t B = P.getBlockingFactor();
  int64_t LB = P.getLowerBound().isImm() ? P.getLowerBound().getImm() : B;

  // Map each keyable value to its first defining instruction.
  std::map<std::string, int> ByKey;
  for (unsigned Idx = 0; Idx < OrigBody.size(); ++Idx) {
    const VInst &I = OrigBody[Idx];
    if (!I.isPure() || !I.definesVector())
      continue;
    std::string Key = Keys.keyOfVReg(I.VDst, 0);
    if (!Key.empty())
      ByKey.try_emplace(std::move(Key), static_cast<int>(Idx));
  }

  // Identify candidates: hoistable invariants and carried values.
  std::set<int> Hoisted;
  struct CarryInfo {
    int XIdx;
    int YIdx;
    VRegId CarryReg;
  };
  std::vector<CarryInfo> Carries;
  std::map<int, int> CarrySucc; // XIdx -> YIdx, for cycle detection.

  for (unsigned Idx = 0; Idx < OrigBody.size(); ++Idx) {
    const VInst &I = OrigBody[Idx];
    if (!I.isPure() || !I.definesVector())
      continue;
    std::string K0 = Keys.keyOfVReg(I.VDst, 0);
    if (K0.empty())
      continue;
    std::string KB = Keys.keyOfVReg(I.VDst, B);
    if (KB.empty())
      continue;

    if (KB == K0) {
      // Loop invariant; hoistable when all operands are invariant too
      // (ext regs or previously hoisted defs — guaranteed by K0 == KB
      // recursively, and body order puts operand defs first).
      Hoisted.insert(static_cast<int>(Idx));
      continue;
    }
    if (auto It = ByKey.find(KB); It != ByKey.end()) {
      int YIdx = It->second;
      if (YIdx != static_cast<int>(Idx) && !Hoisted.count(YIdx)) {
        Carries.push_back({static_cast<int>(Idx), YIdx, VRegId{}});
        CarrySucc[static_cast<int>(Idx)] = YIdx;
      }
    }
  }

  // Drop carries that participate in cycles (defensive; cannot arise from
  // stride-one codegen, where load offsets strictly increase with B).
  for (auto It = Carries.begin(); It != Carries.end();) {
    std::set<int> Seen;
    int Cur = It->XIdx;
    bool Cycle = false;
    while (CarrySucc.count(Cur)) {
      if (!Seen.insert(Cur).second) {
        Cycle = true;
        break;
      }
      Cur = CarrySucc[Cur];
    }
    if (Cycle) {
      CarrySucc.erase(It->XIdx);
      It = Carries.erase(It);
      continue;
    }
    ++It;
  }

  if (Hoisted.empty() && Carries.empty())
    return 0;

  // Materialize carried registers and their Setup initialization: the value
  // X holds in the first steady iteration, computed at counter LB.
  ConstCloner Cloner(P, OrigBody, Keys);
  std::map<unsigned, VRegId> Rename; // Old dst -> carried register.
  std::set<int> RemovedIdx;
  for (CarryInfo &C : Carries) {
    C.CarryReg = P.allocVReg();
    VRegId Init = Cloner.cloneAt(OrigBody[C.XIdx].VDst, LB);
    VInst Copy = VInst::makeVCopy(C.CarryReg, Init);
    Copy.Comment = "carried-value init";
    P.getSetup().push_back(Copy);
    Rename[OrigBody[C.XIdx].VDst.Id] = C.CarryReg;
    RemovedIdx.insert(C.XIdx);
  }

  // Hoist invariants: move them (in order) to Setup unchanged; their
  // operands are invariant registers.
  for (int Idx : Hoisted) {
    VInst I = OrigBody[static_cast<size_t>(Idx)];
    I.Comment = "hoisted loop invariant";
    P.getSetup().push_back(I);
    RemovedIdx.insert(Idx);
  }

  // Rebuild the body without the removed instructions, renaming uses.
  auto Renamed = [&Rename](VRegId R) {
    auto It = Rename.find(R.Id);
    return It == Rename.end() ? R : It->second;
  };
  Block NewBody;
  NewBody.reserve(OrigBody.size());
  for (unsigned Idx = 0; Idx < OrigBody.size(); ++Idx) {
    if (RemovedIdx.count(static_cast<int>(Idx)))
      continue;
    VInst I = OrigBody[Idx];
    switch (I.Op) {
    case VOpcode::VStore:
    case VOpcode::VCopy:
      I.VSrc1 = Renamed(I.VSrc1);
      break;
    case VOpcode::VBinOp:
    case VOpcode::VCmp:
    case VOpcode::VShiftPair:
    case VOpcode::VSplice:
      I.VSrc1 = Renamed(I.VSrc1);
      I.VSrc2 = Renamed(I.VSrc2);
      break;
    case VOpcode::VSelect:
      I.VSrc1 = Renamed(I.VSrc1);
      I.VSrc2 = Renamed(I.VSrc2);
      I.VSrc3 = Renamed(I.VSrc3);
      break;
    default:
      break;
    }
    NewBody.push_back(std::move(I));
  }

  // Back-edge copies, ordered so that a carry reading another carried
  // register is copied before that register is overwritten (chains only;
  // Kahn-style emission).
  std::map<int, const CarryInfo *> ByXIdx;
  for (const CarryInfo &C : Carries)
    ByXIdx.emplace(C.XIdx, &C);
  std::set<int> Emitted;
  // Copy source register for carry C: Y's value this iteration.
  auto SourceOf = [&](const CarryInfo &C) {
    if (auto It = ByXIdx.find(C.YIdx); It != ByXIdx.end())
      return It->second->CarryReg; // Y itself is carried.
    return OrigBody[static_cast<size_t>(C.YIdx)].VDst;
  };
  while (Emitted.size() < Carries.size()) {
    bool Progress = false;
    for (const CarryInfo &C : Carries) {
      if (Emitted.count(C.XIdx))
        continue;
      // C's copy overwrites C.CarryReg; every carry that reads that
      // register's old value (its source is C.CarryReg) must be copied
      // first.
      bool Blocked = false;
      for (const CarryInfo &Other : Carries)
        if (!Emitted.count(Other.XIdx) && Other.XIdx != C.XIdx &&
            SourceOf(Other) == C.CarryReg) {
          Blocked = true;
          break;
        }
      if (Blocked)
        continue;
      VInst Copy = VInst::makeVCopy(C.CarryReg, SourceOf(C));
      Copy.Comment = "carried-value rotate";
      NewBody.push_back(Copy);
      Emitted.insert(C.XIdx);
      Progress = true;
    }
    if (!Progress)
      simdize_unreachable("cyclic carried-copy dependence survived filter");
  }

  P.getBody() = std::move(NewBody);
  return static_cast<unsigned>(Carries.size() + Hoisted.size());
}
