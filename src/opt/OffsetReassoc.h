//===- opt/OffsetReassoc.h - Common offset reassociation ------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "Common Offset Reassociation" option of Section 5.5: uses the
/// associativity and commutativity of the computation to group operands
/// with identical stream offsets, so the lazy- and dominant-shift policies
/// find relatively aligned subtrees and insert fewer vshiftstream
/// operations. A source-level loop transformation: it runs on the scalar
/// IR before graphs are built. Exact for the wrap-around integer
/// arithmetic of the vector unit (+ and * are fully associative and
/// commutative modulo 2^n); subtraction chains are left untouched.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_OPT_OFFSETREASSOC_H
#define SIMDIZE_OPT_OFFSETREASSOC_H

namespace simdize {
namespace ir {
class Loop;
} // namespace ir

namespace opt {

/// Reassociates every statement of \p L in place. \returns the number of
/// statements whose expression changed.
unsigned runOffsetReassociation(ir::Loop &L, unsigned VectorLen);

} // namespace opt
} // namespace simdize

#endif // SIMDIZE_OPT_OFFSETREASSOC_H
