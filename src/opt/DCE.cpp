//===- opt/DCE.cpp --------------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "opt/DCE.h"

#include "vir/VProgram.h"

#include <vector>

using namespace simdize;
using namespace simdize::opt;
using namespace simdize::vir;

namespace {

/// Accumulates every register read by the program.
struct UseSets {
  std::vector<bool> V;
  std::vector<bool> S;

  explicit UseSets(const VProgram &P)
      : V(P.getNumVRegs(), false), S(P.getNumSRegs(), false) {
    if (P.getLowerBound().IsReg)
      S[P.getLowerBound().Reg.Id] = true;
    if (P.getUpperBound().IsReg)
      S[P.getUpperBound().Reg.Id] = true;
    for (BlockKind Kind :
         {BlockKind::Setup, BlockKind::Body, BlockKind::Epilogue})
      for (const VInst &I : P.getBlock(Kind))
        addUses(I);
  }

  void addSOp(const ScalarOperand &Op) {
    if (Op.IsReg)
      S[Op.Reg.Id] = true;
  }

  void addUses(const VInst &I) {
    if (I.Predicate)
      S[I.Predicate->Id] = true;
    switch (I.Op) {
    case VOpcode::VLoad:
      if (I.Addr.Index)
        S[I.Addr.Index->Id] = true;
      break;
    case VOpcode::VStore:
      V[I.VSrc1.Id] = true;
      if (I.Addr.Index)
        S[I.Addr.Index->Id] = true;
      break;
    case VOpcode::VSplat:
    case VOpcode::SConst:
    case VOpcode::SBase:
      break;
    case VOpcode::VShiftPair:
    case VOpcode::VSplice:
      V[I.VSrc1.Id] = true;
      V[I.VSrc2.Id] = true;
      addSOp(I.SOp1);
      break;
    case VOpcode::VBinOp:
    case VOpcode::VCmp:
      V[I.VSrc1.Id] = true;
      V[I.VSrc2.Id] = true;
      break;
    case VOpcode::VSelect:
      V[I.VSrc1.Id] = true;
      V[I.VSrc2.Id] = true;
      V[I.VSrc3.Id] = true;
      break;
    case VOpcode::VCopy:
      V[I.VSrc1.Id] = true;
      break;
    case VOpcode::SBinOp:
    case VOpcode::SCmp:
      addSOp(I.SOp1);
      addSOp(I.SOp2);
      break;
    }
  }
};

} // namespace

unsigned opt::runDCE(VProgram &P) {
  unsigned TotalRemoved = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    UseSets Uses(P);
    for (BlockKind Kind :
         {BlockKind::Setup, BlockKind::Body, BlockKind::Epilogue}) {
      Block &B = P.getBlock(Kind);
      Block Kept;
      Kept.reserve(B.size());
      for (VInst &I : B) {
        bool Dead = I.isPure() &&
                    ((I.definesVector() && !Uses.V[I.VDst.Id]) ||
                     (I.definesScalar() && !Uses.S[I.SDst.Id]));
        if (Dead) {
          ++TotalRemoved;
          Changed = true;
          continue;
        }
        Kept.push_back(std::move(I));
      }
      B = std::move(Kept);
    }
  }
  return TotalRemoved;
}
