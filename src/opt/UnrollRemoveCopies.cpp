//===- opt/UnrollRemoveCopies.cpp -----------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "opt/UnrollRemoveCopies.h"

#include "support/Debug.h"
#include "vir/VProgram.h"

#include <map>
#include <vector>

using namespace simdize;
using namespace simdize::opt;
using namespace simdize::vir;

namespace {

/// Remaps the registers of the unrolled second instance.
struct InstanceRenamer {
  VProgram &P;
  /// Original work-defined register -> second-instance register.
  std::map<unsigned, VRegId> Map;
  /// Carried register -> propagated first-instance source.
  std::map<unsigned, VRegId> Propagate;

  VRegId use(VRegId R) const {
    if (auto It = Propagate.find(R.Id); It != Propagate.end())
      return It->second;
    if (auto It = Map.find(R.Id); It != Map.end())
      return It->second;
    return R; // Loop invariant from Setup.
  }

  VRegId def(VRegId R) {
    VRegId Fresh = P.allocVReg();
    Map[R.Id] = Fresh;
    return Fresh;
  }
};

} // namespace

unsigned opt::runUnrollRemoveCopies(VProgram &P) {
  int64_t B = P.getBlockingFactor();
  if (P.getLoopStep() != static_cast<unsigned>(B))
    return 0; // Already unrolled.

  Block &Body = P.getBody();

  // Peel the trailing run of back-edge copies.
  size_t WorkEnd = Body.size();
  while (WorkEnd > 0 && Body[WorkEnd - 1].Op == VOpcode::VCopy &&
         !Body[WorkEnd - 1].Predicate)
    --WorkEnd;
  if (WorkEnd == Body.size())
    return 0; // Nothing to remove.

  std::vector<std::pair<VRegId, VRegId>> Copies; // (carried, source)
  for (size_t K = WorkEnd; K < Body.size(); ++K)
    Copies.emplace_back(Body[K].VDst, Body[K].VSrc1);
  Block Work(Body.begin(), Body.begin() + static_cast<long>(WorkEnd));

  // The transformation requires a well-formed steady body: vector-only,
  // unpredicated, counter-indexed addresses.
  for (const VInst &I : Work) {
    if (I.definesScalar() || I.Predicate)
      return 0;
    if ((I.Op == VOpcode::VLoad || I.Op == VOpcode::VStore) && !I.Addr.Index)
      return 0;
  }

  // Carried registers whose copy source is itself a carried register form
  // chains (predictive commoning produces them when one array is read at
  // offsets B apart). The second instance must then read the *body-entry*
  // value of the source carry, which coalescing overwrites mid-body; a
  // snapshot copy at the top of the body preserves it.
  std::map<unsigned, VRegId> CarryOf; // carried reg -> its copy source
  for (auto [Old, Src] : Copies)
    CarryOf[Old.Id] = Src;

  std::map<unsigned, VRegId> Snapshot; // carried reg -> top-of-body snap
  Block Snaps;
  auto SnapshotOf = [&](VRegId Carried) {
    if (auto It = Snapshot.find(Carried.Id); It != Snapshot.end())
      return It->second;
    VRegId Snap = P.allocVReg();
    VInst Copy = VInst::makeVCopy(Snap, Carried);
    Copy.Comment = "carry-chain snapshot";
    Snaps.push_back(Copy);
    Snapshot.emplace(Carried.Id, Snap);
    return Snap;
  };

  // Build the second instance: registers renamed, addresses advanced by B,
  // carried-register reads forward-propagated — to the first instance's
  // freshly computed source when the source is body-computed, or to the
  // body-entry snapshot when the source is another carry.
  InstanceRenamer Renamer{P, {}, {}};
  for (auto [Old, Src] : Copies)
    Renamer.Propagate[Old.Id] =
        CarryOf.count(Src.Id) ? SnapshotOf(Src) : Src;

  Block Second;
  Second.reserve(Work.size());
  for (const VInst &Orig : Work) {
    VInst I = Orig;
    switch (I.Op) {
    case VOpcode::VLoad:
      I.Addr.ElemOffset += B;
      break;
    case VOpcode::VStore:
      I.VSrc1 = Renamer.use(I.VSrc1);
      I.Addr.ElemOffset += B;
      break;
    case VOpcode::VBinOp:
    case VOpcode::VCmp:
    case VOpcode::VShiftPair:
    case VOpcode::VSplice:
      I.VSrc1 = Renamer.use(I.VSrc1);
      I.VSrc2 = Renamer.use(I.VSrc2);
      break;
    case VOpcode::VSelect:
      I.VSrc1 = Renamer.use(I.VSrc1);
      I.VSrc2 = Renamer.use(I.VSrc2);
      I.VSrc3 = Renamer.use(I.VSrc3);
      break;
    case VOpcode::VSplat:
      break;
    case VOpcode::VCopy:
      I.VSrc1 = Renamer.use(I.VSrc1);
      break;
    default:
      simdize_unreachable("unexpected opcode in steady body");
    }
    if (I.definesVector())
      I.VDst = Renamer.def(Orig.VDst);
    Second.push_back(std::move(I));
  }

  // Coalesce and update the carries for the next double iteration. For a
  // copy Old <- Src:
  //  * Src body-computed: Old must end up with the second instance's Src.
  //    Its producer writes Old directly (legal: after propagation nothing
  //    reads Old past the first instance, and snapshots were taken at the
  //    top). Several Olds sharing one source keep explicit copies beyond
  //    the first.
  //  * Src is itself a carry Old_j: two composed rotations give Old the
  //    value Old_j would have received after the first instance — the
  //    first instance's value of Src_j when that is body-computed, or the
  //    body-entry snapshot of Src_j when the chain is deeper.
  //  * Src loop-invariant: the carry never changes; drop the copy.
  std::map<unsigned, std::vector<VRegId>> BySource; // source -> carried regs
  for (auto [Old, Src] : Copies)
    BySource[Src.Id].push_back(Old);

  Block Extra;
  for (auto &[SrcId, Olds] : BySource) {
    if (auto ChainIt = CarryOf.find(SrcId); ChainIt != CarryOf.end()) {
      VRegId SrcOfSrc = ChainIt->second;
      VRegId Value = CarryOf.count(SrcOfSrc.Id) ? SnapshotOf(SrcOfSrc)
                                                : SrcOfSrc;
      for (VRegId Old : Olds) {
        VInst Copy = VInst::makeVCopy(Old, Value);
        Copy.Comment = "carry-chain rotate";
        Extra.push_back(Copy);
      }
      continue;
    }
    auto MappedIt = Renamer.Map.find(SrcId);
    if (MappedIt == Renamer.Map.end())
      continue; // Loop-invariant source: the carry never changes.
    VRegId SrcR = MappedIt->second;
    VRegId Primary = Olds.front();
    // Rename SrcR -> Primary throughout the second instance.
    for (VInst &I : Second) {
      if (I.definesVector() && I.VDst == SrcR)
        I.VDst = Primary;
      for (VRegId *Use : {&I.VSrc1, &I.VSrc2})
        if (*Use == SrcR)
          *Use = Primary;
      if (I.Op == VOpcode::VSelect && I.VSrc3 == SrcR)
        I.VSrc3 = Primary;
    }
    for (size_t K = 1; K < Olds.size(); ++K)
      Extra.push_back(VInst::makeVCopy(Olds[K], Primary));
  }

  Block NewBody;
  NewBody.reserve(Snaps.size() + Work.size() + Second.size() + Extra.size());
  NewBody.insert(NewBody.end(), Snaps.begin(), Snaps.end());
  NewBody.insert(NewBody.end(), Work.begin(), Work.end());
  NewBody.insert(NewBody.end(), Second.begin(), Second.end());
  NewBody.insert(NewBody.end(), Extra.begin(), Extra.end());

  // Loop control: step 2B, bound dropped by B so both sub-iterations stay
  // within the original range.
  ScalarOperand OrigUB = P.getUpperBound();
  ScalarOperand NewUB;
  if (OrigUB.isImm()) {
    NewUB = ScalarOperand::imm(OrigUB.getImm() - B);
  } else {
    SRegId R = P.allocSReg();
    VInst Sub = VInst::makeSBinOp(SBinOpKind::Sub, R, OrigUB,
                                  ScalarOperand::imm(B));
    Sub.Comment = "unrolled-loop bound";
    P.getSetup().push_back(Sub);
    NewUB = ScalarOperand::reg(R);
  }

  // Leftover odd iteration, in front of the existing epilogue.
  Block NewEpilogue;
  int64_t LB = P.getLowerBound().getImm();
  if (OrigUB.isImm()) {
    // Steady iterations of the original loop: i = LB, LB+B, ... < UB.
    int64_t UB = OrigUB.getImm();
    assert(UB > LB && "simdized loops always have steady iterations");
    int64_t N = (UB - 1 - LB) / B + 1;
    bool Leftover = (N % 2) != 0;
    if (Leftover) {
      NewEpilogue.insert(NewEpilogue.end(), Work.begin(), Work.end());
      // The epilogue reads the carried registers (pipeline "old" values,
      // reduction accumulators); replay the peeled back-edge copies so
      // they reflect the consumed leftover block.
      for (auto [Old, Src] : Copies)
        NewEpilogue.push_back(VInst::makeVCopy(Old, Src));
    }
    // The statement epilogues expected the counter at the first unexecuted
    // iteration; with a consumed leftover that is one more block ahead.
    for (VInst I : P.getEpilogue()) {
      if (Leftover && I.Addr.Index &&
          *I.Addr.Index == P.getIndexReg())
        I.Addr.ElemOffset += B;
      NewEpilogue.push_back(std::move(I));
    }
  } else {
    // Runtime bound: predicate the leftover on i < UB and index the
    // existing epilogue with iEpi = i + B * leftover.
    SRegId Flag = P.allocSReg();
    {
      VInst Cmp =
          VInst::makeSCmp(SCmpKind::LT, Flag,
                          ScalarOperand::reg(P.getIndexReg()), OrigUB);
      Cmp.Comment = "odd leftover iteration?";
      NewEpilogue.push_back(Cmp);
    }
    for (VInst I : Work) {
      I.Predicate = Flag;
      NewEpilogue.push_back(std::move(I));
    }
    // Carried registers must advance with the consumed block; the copies
    // share the leftover's predicate so they fire only when it ran.
    for (auto [Old, Src] : Copies) {
      VInst Copy = VInst::makeVCopy(Old, Src);
      Copy.Predicate = Flag;
      NewEpilogue.push_back(std::move(Copy));
    }
    SRegId Scaled = P.allocSReg();
    NewEpilogue.push_back(VInst::makeSBinOp(SBinOpKind::Mul, Scaled,
                                            ScalarOperand::reg(Flag),
                                            ScalarOperand::imm(B)));
    SRegId IEpi = P.allocSReg();
    {
      VInst Add = VInst::makeSBinOp(SBinOpKind::Add, IEpi,
                                    ScalarOperand::reg(P.getIndexReg()),
                                    ScalarOperand::reg(Scaled));
      Add.Comment = "epilogue counter";
      NewEpilogue.push_back(Add);
    }
    for (VInst I : P.getEpilogue()) {
      if (I.Addr.Index && *I.Addr.Index == P.getIndexReg())
        I.Addr.Index = IEpi;
      NewEpilogue.push_back(std::move(I));
    }
  }

  P.getBody() = std::move(NewBody);
  P.getEpilogue() = std::move(NewEpilogue);
  P.setLoopBounds(P.getLowerBound(), NewUB);
  P.setLoopStep(static_cast<unsigned>(2 * B));
  return static_cast<unsigned>(Copies.size());
}
