//===- codegen/StmtEmitter.h - Prologue / steady / epilogue emission -----===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-statement code emission (Figure 9, generalized to the
/// multiple-statement scheme of Section 4.3):
///
///  * Prologue (into Setup): the store stream's first, possibly partial,
///    chunk — old bytes below ProSplice preserved with vsplice (Eq. 8);
///  * Steady state (into Body): one full-vector store per iteration, at the
///    truncated address of the loop counter (the Eq. 12 trick);
///  * Epilogue: the EpiLeftOver bytes (Eq. 14/16) — possibly one full store
///    followed by a partial one; with runtime bounds or alignments the
///    variants are predicated (Section 4.4).
///
/// Reduction statements (`a[k] op= expr`) replace the store stream with a
/// vector of lane-wise partial sums: initialized from the first chunk in
/// Setup, accumulated once per steady iteration, and finalized in the
/// epilogue (residual lanes masked with the operation's identity, a
/// log2(V/D) shiftpair fold, then a read-modify-write of the accumulator's
/// cell that touches only its D bytes).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_CODEGEN_STMTEMITTER_H
#define SIMDIZE_CODEGEN_STMTEMITTER_H

#include "codegen/ExprCodeGen.h"

namespace simdize {
namespace codegen {

/// Emits one statement's three code pieces from its valid (policy-placed,
/// offset-computed, verified) data reorganization graph.
class StmtEmitter {
public:
  StmtEmitter(CodeGenContext &Ctx, bool SoftwarePipeline)
      : Ctx(Ctx), ExprGen(Ctx, SoftwarePipeline) {}

  void emit(const reorg::Graph &G);

private:
  void emitReduce(const reorg::Graph &G);
  void emitPrologue(const reorg::Graph &G);
  void emitSteady(const reorg::Graph &G);
  void emitEpilogue(const reorg::Graph &G);
  void emitEpilogueStatic(const reorg::Graph &G, int64_t EpiLeftOver);
  void emitEpilogueDynamic(const reorg::Graph &G,
                           vir::ScalarOperand AlignOp,
                           vir::ScalarOperand UBOp);

  CodeGenContext &Ctx;
  ExprCodeGen ExprGen;
};

} // namespace codegen
} // namespace simdize

#endif // SIMDIZE_CODEGEN_STMTEMITTER_H
