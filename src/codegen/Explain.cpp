//===- codegen/Explain.cpp ------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "codegen/Explain.h"

#include "ir/IRPrinter.h"
#include "ir/Loop.h"
#include "support/Format.h"

using namespace simdize;
using namespace simdize::codegen;

static std::string operandStr(const vir::ScalarOperand &Op) {
  return Op.IsReg ? strf("sreg:%u", Op.Reg.Id)
                  : strf("%lld", static_cast<long long>(Op.Imm));
}

/// The Blend node of an if-converted graph (children [mask, value, old]),
/// or null. At most one exists: the guard lowers to exactly one blend
/// directly under the store (possibly behind a policy-inserted shift).
static const reorg::Node *findBlend(const reorg::Node &N) {
  if (N.getKind() == reorg::NodeKind::Op &&
      N.Class == reorg::OpClass::Blend)
    return &N;
  for (const auto &C : N.Children)
    if (const reorg::Node *B = findBlend(*C))
      return B;
  return nullptr;
}

/// Collects the accesses and placed shifts of one post-placement graph.
static void collectNodes(const reorg::Node &N, obs::StmtDecision &Out) {
  switch (N.getKind()) {
  case reorg::NodeKind::Load: {
    obs::AccessDecision A;
    A.Array = N.Arr->getName();
    A.ElemOffset = N.ElemOffset;
    A.StreamOffset = N.Offset.str();
    Out.Accesses.push_back(std::move(A));
    break;
  }
  case reorg::NodeKind::ShiftStream: {
    obs::ShiftDecision Sh;
    Sh.From = N.child(0).Offset.str();
    Sh.To = N.TargetOffset.str();
    Out.Shifts.push_back(std::move(Sh));
    break;
  }
  case reorg::NodeKind::Store: {
    obs::AccessDecision A;
    A.Array = N.Arr->getName();
    A.ElemOffset = N.ElemOffset;
    A.StreamOffset = N.Offset.str();
    A.IsStore = true;
    Out.Accesses.push_back(std::move(A));
    break;
  }
  case reorg::NodeKind::Splat:
  case reorg::NodeKind::Op:
    break;
  }
  for (const auto &C : N.Children)
    collectNodes(*C, Out);
}

obs::DecisionLog codegen::explainSimdization(const ir::Loop &L,
                                             const SimdizeOptions &Opts,
                                             const SimdizeResult &R) {
  obs::DecisionLog Log;
  Log.Policy = policies::policyName(Opts.Policy);
  Log.SoftwarePipelining = Opts.SoftwarePipelining;
  Log.VectorLen = Opts.vectorLen();
  Log.Simdized = R.ok();
  if (!R.ok()) {
    Log.Error = R.Error;
    switch (R.ErrorKind) {
    case SimdizeErrorKind::None:
      break;
    case SimdizeErrorKind::NotSimdizable:
      Log.ErrorKind = "not-simdizable";
      break;
    case SimdizeErrorKind::PolicyInapplicable:
      Log.ErrorKind = "policy-inapplicable";
      break;
    case SimdizeErrorKind::Internal:
      Log.ErrorKind = "internal";
      break;
    }
    return Log;
  }

  std::unique_ptr<policies::ShiftPolicy> Policy =
      policies::createPolicy(Opts.Policy, Opts.SoftwarePipelining);
  const auto &Stmts = L.getStmts();
  for (size_t K = 0; K < Stmts.size(); ++K) {
    obs::StmtDecision D;
    D.Index = static_cast<unsigned>(K);
    D.Text = ir::printStmt(*Stmts[K]);

    // Re-derive the graph once per statement: predict on it while it is
    // still shift-free, then place on the same graph (simdize() already
    // proved the policy applicable, so place() cannot fail here).
    reorg::Graph G = reorg::buildGraph(*Stmts[K], Opts.vectorLen());
    D.PredictedShifts = policies::predictShiftCount(Opts.Policy, G,
                                                    Opts.SoftwarePipelining);
    auto PlaceErr = Policy->place(G);
    assert(!PlaceErr && "policy applicable in simdize() but not here");
    (void)PlaceErr;
    collectNodes(G.root(), D);

    switch (Stmts[K]->getKind()) {
    case ir::StmtKind::Assign:
      break;
    case ir::StmtKind::If: {
      D.Kind = "if";
      D.GuardCmp = ir::cmpMnemonic(Stmts[K]->getCmpKind());
      const reorg::Node *Blend = findBlend(G.root());
      assert(Blend && "if-converted graph has no blend node");
      D.PredicateStream = Blend->child(0).Offset.str();
      break;
    }
    case ir::StmtKind::Reduce: {
      D.Kind = "reduce";
      D.ReduceOp = ir::binOpMnemonic(Stmts[K]->getReduceOp());
      // One rotate-and-combine per halving from V/2 down to D
      // (StmtEmitter::emitReduce's epilogue lane fold): log2(V/D).
      for (unsigned S = Opts.vectorLen() / 2; S >= G.ElemSize; S /= 2)
        ++D.FinalShuffles;
      break;
    }
    }

    D.PlacedShifts = K < R.StmtPlacedShifts.size() ? R.StmtPlacedShifts[K] : 0;
    D.SteadyShifts = K < R.StmtSteadyShifts.size() ? R.StmtSteadyShifts[K] : 0;
    Log.Stmts.push_back(std::move(D));
  }

  const vir::VProgram &P = *R.Program;
  Log.Shape.LowerBound = operandStr(P.getLowerBound());
  Log.Shape.UpperBound = operandStr(P.getUpperBound());
  Log.Shape.VectorLen = P.getVectorLen();
  Log.Shape.ElemSize = P.getElemSize();
  Log.Shape.BlockingFactor = P.getBlockingFactor();
  Log.Shape.LoopStep = P.getLoopStep();
  Log.Shape.TripCountKnown = L.isUpperBoundKnown();
  Log.Shape.TripCount = L.getUpperBound();
  Log.Shape.SetupInsts = static_cast<unsigned>(P.getSetup().size());
  Log.Shape.BodyInsts = static_cast<unsigned>(P.getBody().size());
  Log.Shape.EpilogueInsts = static_cast<unsigned>(P.getEpilogue().size());
  Log.Shape.PrologueStores =
      vir::countOps(P.getSetup(), vir::VOpcode::VStore);
  Log.Shape.EpilogueStores =
      vir::countOps(P.getEpilogue(), vir::VOpcode::VStore);
  return Log;
}
