//===- codegen/Simdizer.h - Top-level simdization entry point ------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public compiler API. simdize() turns a scalar loop into a vector IR
/// program in the paper's two phases: per statement, a data reorganization
/// graph is built shift-free, a placement policy inserts vshiftstream
/// nodes, the graph is validated against constraints (C.2)/(C.3), and the
/// SIMD code generator emits prologue / steady state / epilogue.
///
/// \code
///   SimdizeOptions Opts;
///   Opts.Policy = policies::PolicyKind::Lazy;
///   Opts.SoftwarePipelining = true;
///   SimdizeResult R = simdize(L, Opts);
///   if (!R.ok()) { ... R.Error ... }
///   sim::CheckResult C = sim::checkSimdization(L, *R.Program, Seed);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_CODEGEN_SIMDIZER_H
#define SIMDIZE_CODEGEN_SIMDIZER_H

#include "policies/ShiftPolicy.h"
#include "simdize/Target.h"
#include "vir/VProgram.h"

#include <optional>
#include <string>
#include <vector>

namespace simdize {

namespace ir {
class Loop;
} // namespace ir

namespace codegen {

/// Configuration of one simdization run.
struct SimdizeOptions {
  /// Shift placement policy. Policies other than zero-shift require all
  /// alignments to be compile-time known; simdize() reports an error
  /// otherwise (callers typically fall back to zero-shift, as the paper's
  /// evaluation does).
  policies::PolicyKind Policy = policies::PolicyKind::Zero;

  /// Software-pipelined steady-state generation (Figure 10); the values
  /// that realign streams are carried across iterations instead of being
  /// recomputed, guaranteeing each stream chunk is loaded exactly once.
  bool SoftwarePipelining = false;

  /// The machine being compiled for — in particular its vector byte-width
  /// V. Defaults to the paper's 16-byte AltiVec-class target.
  Target Tgt;

  /// Shorthand for the target's vector register width in bytes.
  unsigned vectorLen() const { return Tgt.VectorLen; }
};

/// Classifies why simdize() produced no program. Rejections (a loop the
/// framework declines by design, or a policy that does not apply) are
/// expected outcomes; Internal means the simdizer broke one of its own
/// invariants and is always a bug. The differential fuzzer keys on this
/// to separate clean rejections from failures worth shrinking.
enum class SimdizeErrorKind {
  None,              ///< Success.
  NotSimdizable,     ///< checkSimdizable() declined the loop.
  PolicyInapplicable,///< The placement policy declined (e.g. runtime
                     ///< alignments under eager/lazy/dominant-shift).
  Internal,          ///< Invalid graph or program generated — a bug.
};

/// Result of simdize(): the program on success, a diagnostic otherwise,
/// plus per-statement graph dumps for inspection.
struct SimdizeResult {
  std::optional<vir::VProgram> Program;
  std::string Error;
  SimdizeErrorKind ErrorKind = SimdizeErrorKind::None;

  /// Post-placement data reorganization graph of each statement.
  std::vector<std::string> GraphDumps;

  /// Total vshiftstream nodes placed across all statements — the quantity
  /// the policies compete on.
  unsigned ShiftCount = 0;

  /// Per-statement vshiftstream nodes the policy placed, and the number of
  /// vshiftpair instructions one raw steady-state iteration executes for
  /// them (reorg::countSteadyShifts). The property-oracle layer compares
  /// these against policies::predictShiftCount and against the emitted
  /// body.
  std::vector<unsigned> StmtPlacedShifts;
  std::vector<unsigned> StmtSteadyShifts;

  bool ok() const { return Program.has_value(); }
};

/// Checks the preconditions beyond ir::verifyLoop that the generated code
/// relies on: distinct store arrays that are never read in the loop (no
/// loop-carried dependences; full dependence analysis is out of scope) and
/// a trip count above 3B, the paper's validity guard for the simdized fast
/// path. \returns std::nullopt when simdizable.
std::optional<std::string> checkSimdizable(const ir::Loop &L,
                                           unsigned VectorLen);

/// Simdizes \p L under \p Opts.
SimdizeResult simdize(const ir::Loop &L, const SimdizeOptions &Opts);

} // namespace codegen
} // namespace simdize

#endif // SIMDIZE_CODEGEN_SIMDIZER_H
