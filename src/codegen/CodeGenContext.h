//===- codegen/CodeGenContext.h - Shared state of SIMD code generation ---===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Book-keeping shared across the per-statement code generators: the
/// program under construction, hoisted loop invariants (splat registers,
/// runtime-alignment scalars — all emitted once into Setup and cached), the
/// trip-count operand, and the software-pipeline copies to be placed at the
/// bottom of the steady loop.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_CODEGEN_CODEGENCONTEXT_H
#define SIMDIZE_CODEGEN_CODEGENCONTEXT_H

#include "ir/Loop.h"
#include "vir/VProgram.h"

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace simdize {
namespace codegen {

/// Mutable state threaded through expression and statement emission.
class CodeGenContext {
public:
  CodeGenContext(const ir::Loop &L, vir::VProgram &P);

  const ir::Loop &getLoop() const { return Loop; }
  vir::VProgram &getProgram() { return Program; }
  unsigned getVectorLen() const { return Program.getVectorLen(); }
  unsigned getElemSize() const { return Program.getElemSize(); }
  unsigned getBlockingFactor() const { return Program.getBlockingFactor(); }

  /// The original trip count ub as an operand: an immediate when
  /// compile-time known, otherwise the program's trip-count parameter
  /// register.
  vir::ScalarOperand getUpperBoundOperand();

  /// The memory alignment of access Base[i+\p ElemOffset] as an operand:
  /// an immediate when the array's alignment is statically known, else a
  /// scalar register holding "(base + c*D) mod V" computed once in Setup
  /// (Section 4.4: "Ox is a register value computed at runtime by anding
  /// memory addresses with literal V - 1").
  vir::ScalarOperand getAlignmentOperand(const ir::Array *A,
                                         int64_t ElemOffset);

  /// Register for a left-shift amount of a runtime-offset stream: the
  /// stream offset itself.
  vir::SRegId getRuntimeLeftShiftReg(const ir::Array *A, int64_t ElemOffset);

  /// Register for a right-shift amount toward a runtime-offset store
  /// stream: V - offset, in [1, V] so that an actually-aligned store
  /// degenerates to selecting the current register whole.
  vir::SRegId getRuntimeRightShiftReg(const ir::Array *A, int64_t ElemOffset);

  /// Vector register replicating the loop invariant \p Value, hoisted to
  /// Setup and cached.
  vir::VRegId getSplatReg(int64_t Value);

  /// Vector register replicating the runtime scalar parameter \p P,
  /// hoisted to Setup and cached; the parameter's scalar register is
  /// declared on first use.
  vir::VRegId getParamSplatReg(const ir::Param *P);

  /// Defers "old <- new" to the bottom of the steady loop (Figure 10,
  /// line 19).
  void addLoopBottomCopy(vir::VRegId Old, vir::VRegId New) {
    PendingCopies.emplace_back(Old, New);
  }

  /// Emits the deferred software-pipeline copies; called once after all
  /// statements' steady code has been generated.
  void flushLoopBottomCopies();

private:
  /// The scalar register caching "(base(A) + c*D) mod V"; keyed by the
  /// congruence class of c modulo the blocking factor, which fully
  /// determines the value.
  vir::SRegId getRuntimeOffsetReg(const ir::Array *A, int64_t ElemOffset);

  const ir::Loop &Loop;
  vir::VProgram &Program;

  std::map<std::pair<const ir::Array *, int64_t>, vir::SRegId> OffsetRegs;
  std::map<std::pair<const ir::Array *, int64_t>, vir::SRegId> RightShiftRegs;
  std::map<int64_t, vir::VRegId> SplatRegs;
  std::map<const ir::Param *, vir::VRegId> ParamSplatRegs;
  std::vector<std::pair<vir::VRegId, vir::VRegId>> PendingCopies;
};

} // namespace codegen
} // namespace simdize

#endif // SIMDIZE_CODEGEN_CODEGENCONTEXT_H
