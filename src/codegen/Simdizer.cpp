//===- codegen/Simdizer.cpp -----------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "codegen/Simdizer.h"

#include "codegen/CodeGenContext.h"
#include "codegen/StmtEmitter.h"
#include "ir/IRVerifier.h"
#include "ir/Loop.h"
#include "obs/Trace.h"
#include "support/Format.h"
#include "vir/VVerifier.h"

#include <set>

using namespace simdize;
using namespace simdize::codegen;
using namespace simdize::vir;

std::optional<std::string> codegen::checkSimdizable(const ir::Loop &L,
                                                    unsigned VectorLen) {
  if (auto Err = ir::verifyLoop(L))
    return Err;

  if (VectorLen % L.getElemSize() != 0)
    return std::string("element size does not divide the vector length");

  // No loop-carried dependences: every store array must be distinct and
  // never appear as a load.
  std::set<const ir::Array *> StoreArrays;
  for (const auto &S : L.getStmts())
    if (!StoreArrays.insert(S->getStoreArray()).second)
      return strf("array '%s' is stored by more than one statement",
                  S->getStoreArray()->getName().c_str());
  std::optional<std::string> DepErr;
  for (const auto &S : L.getStmts())
    S->forEachExpr([&](const ir::Expr &Root) {
      Root.walk([&](const ir::Expr &E) {
        if (const auto *Ref = ir::dyn_cast<ir::ArrayRefExpr>(E))
          if (StoreArrays.count(Ref->getArray()) && !DepErr)
            DepErr = strf("array '%s' is both stored and loaded",
                          Ref->getArray()->getName().c_str());
      });
    });
  if (DepErr)
    return DepErr;

  // A reduction privatizes its accumulator cell in a vector register and
  // read-modify-writes it once after the loop; that final vsplice needs
  // the cell inside a single chunk at a compile-time position, i.e. a
  // naturally aligned base with known alignment.
  for (const auto &S : L.getStmts()) {
    if (!S->isReduce())
      continue;
    const ir::Array *A = S->getStoreArray();
    if (!A->isAlignmentKnown())
      return strf("reduction accumulator '%s' needs a compile-time known "
                  "alignment",
                  A->getName().c_str());
    if (A->getAlignment() % A->getElemSize() != 0)
      return strf("reduction accumulator '%s' must be naturally aligned",
                  A->getName().c_str());
  }

  // The paper guards the simdized path with ub > 3B (Section 4.4); the
  // prologue/steady/epilogue structure needs at least one full steady
  // iteration.
  int64_t B = VectorLen / L.getElemSize();
  if (L.getUpperBound() <= 3 * B)
    return strf("trip count %lld not above the 3B = %lld validity guard",
                static_cast<long long>(L.getUpperBound()),
                static_cast<long long>(3 * B));
  return std::nullopt;
}

SimdizeResult codegen::simdize(const ir::Loop &L, const SimdizeOptions &Opts) {
  SimdizeResult Result;
  obs::Span SimdizeSp("simdize");
  SimdizeSp.argStr("policy", policies::policyName(Opts.Policy));
  SimdizeSp.argStr("target", Opts.Tgt.str());

  if (!Opts.Tgt.valid()) {
    Result.Error = strf("target %s is not usable: V must be a power of two "
                        "in [4, %u]",
                        Opts.Tgt.str().c_str(), Target::MaxVectorLen);
    Result.ErrorKind = SimdizeErrorKind::NotSimdizable;
    return Result;
  }
  if (auto Err = checkSimdizable(L, Opts.vectorLen())) {
    Result.Error = *Err;
    Result.ErrorKind = SimdizeErrorKind::NotSimdizable;
    return Result;
  }

  std::unique_ptr<policies::ShiftPolicy> Policy =
      policies::createPolicy(Opts.Policy, Opts.SoftwarePipelining);

  VProgram Program(Opts.vectorLen(), L.getElemSize());
  CodeGenContext Ctx(L, Program);
  int64_t B = Program.getBlockingFactor();

  // Steady-loop bounds: LB = B (Eq. 12); UB = ub - B + 1 (Eq. 15), which is
  // safe for every statement regardless of its store alignment.
  Program.setLoopBounds(ScalarOperand::imm(B), ScalarOperand::imm(0));
  ScalarOperand UBOrig = Ctx.getUpperBoundOperand();
  if (UBOrig.isImm()) {
    Program.setLoopBounds(ScalarOperand::imm(B),
                          ScalarOperand::imm(UBOrig.getImm() - B + 1));
  } else {
    SRegId UBReg = Program.allocSReg();
    VInst Sub = VInst::makeSBinOp(SBinOpKind::Sub, UBReg, UBOrig,
                                  ScalarOperand::imm(B - 1));
    Sub.Comment = "steady-state upper bound (Eq. 15)";
    Program.getSetup().push_back(Sub);
    Program.setLoopBounds(ScalarOperand::imm(B), ScalarOperand::reg(UBReg));
  }

  // Phase 1 + 2 per statement: graph, placement, validation, emission.
  StmtEmitter Emitter(Ctx, Opts.SoftwarePipelining);
  for (const auto &S : L.getStmts()) {
    reorg::Graph G = [&] {
      obs::Span Sp("reorg-graph");
      return reorg::buildGraph(*S, Opts.vectorLen());
    }();
    {
      obs::Span Sp("shift-placement");
      Sp.argStr("policy", Policy->name());
      if (auto Err = Policy->place(G)) {
        Result.Error =
            strf("policy %s inapplicable: %s", Policy->name(), Err->c_str());
        Result.ErrorKind = SimdizeErrorKind::PolicyInapplicable;
        return Result;
      }
      if (auto Err = reorg::verifyGraph(G)) {
        Result.Error = strf("internal error: invalid reorganization graph: %s",
                            Err->c_str());
        Result.ErrorKind = SimdizeErrorKind::Internal;
        return Result;
      }
    }
    Result.GraphDumps.push_back(reorg::printGraph(G));
    unsigned Placed = reorg::countShifts(G);
    Result.ShiftCount += Placed;
    Result.StmtPlacedShifts.push_back(Placed);
    Result.StmtSteadyShifts.push_back(
        reorg::countSteadyShifts(G, Opts.SoftwarePipelining));
    obs::Span Sp("codegen-emit");
    Emitter.emit(G);
  }
  Ctx.flushLoopBottomCopies();

  {
    obs::Span Sp("vverify");
    if (auto Err = vir::verifyProgram(Program)) {
      Result.Error = strf("internal error: generated program is invalid: %s",
                          Err->c_str());
      Result.ErrorKind = SimdizeErrorKind::Internal;
      return Result;
    }
  }

  Result.Program.emplace(std::move(Program));
  return Result;
}
