//===- codegen/StmtEmitter.cpp --------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "codegen/StmtEmitter.h"

#include "support/MathExtras.h"

using namespace simdize;
using namespace simdize::codegen;
using namespace simdize::reorg;
using namespace simdize::vir;

void StmtEmitter::emit(const Graph &G) {
  emitPrologue(G);
  emitSteady(G);
  emitEpilogue(G);
}

void StmtEmitter::emitPrologue(const Graph &G) {
  VProgram &P = Ctx.getProgram();
  Block &Setup = P.getSetup();
  const ir::Array *A = G.root().Arr;
  int64_t C = G.root().ElemOffset;

  // Value vector for simdized iteration i = 0 (standard, non-pipelined
  // generation: GenSimdStmt-Prologue uses GenSimdExpr).
  VRegId New =
      ExprGen.gen(G.root().child(0), Counter::atConst(0), Setup, false);

  // ProSplice = addr(0) mod V (Eq. 8). Bytes below it hold earlier data
  // that the first chunk's store must preserve.
  ScalarOperand Point = Ctx.getAlignmentOperand(A, C);
  Address Addr = Address::constant(A, C, 0);

  if (Point.isImm() && Point.getImm() == 0) {
    // Aligned store stream: the first chunk is already full.
    VInst Store = VInst::makeVStore(Addr, New);
    Store.Comment = "prologue store (full)";
    Setup.push_back(Store);
    return;
  }

  VRegId Old = P.allocVReg();
  Setup.push_back(VInst::makeVLoad(Old, Addr));
  VRegId Spliced = P.allocVReg();
  // vsplice(old, new, point): first `point` bytes preserved from memory.
  // A runtime point of 0 degenerates to copying `new`, which stays correct.
  Setup.push_back(VInst::makeVSplice(Spliced, Old, New, Point));
  VInst Store = VInst::makeVStore(Addr, Spliced);
  Store.Comment = "prologue store (partial)";
  Setup.push_back(Store);
}

void StmtEmitter::emitSteady(const Graph &G) {
  VProgram &P = Ctx.getProgram();
  Block &Body = P.getBody();
  VRegId New =
      ExprGen.gen(G.root().child(0), Counter::atIndex(0), Body, true);
  Body.push_back(VInst::makeVStore(
      Address::indexed(G.root().Arr, G.root().ElemOffset, P.getIndexReg()),
      New));
}

void StmtEmitter::emitEpilogue(const Graph &G) {
  const ir::Array *A = G.root().Arr;
  int64_t C = G.root().ElemOffset;
  ScalarOperand AlignOp = Ctx.getAlignmentOperand(A, C);
  ScalarOperand UBOp = Ctx.getUpperBoundOperand();

  if (AlignOp.isImm() && UBOp.isImm()) {
    // EpiLeftOver = ProSplice + (ub mod B) * D (Eq. 16).
    int64_t ELO = AlignOp.getImm() +
                  nonNegMod(UBOp.getImm(), Ctx.getBlockingFactor()) *
                      static_cast<int64_t>(Ctx.getElemSize());
    emitEpilogueStatic(G, ELO);
    return;
  }
  emitEpilogueDynamic(G, AlignOp, UBOp);
}

void StmtEmitter::emitEpilogueStatic(const Graph &G, int64_t EpiLeftOver) {
  VProgram &P = Ctx.getProgram();
  Block &Epi = P.getEpilogue();
  const ir::Array *A = G.root().Arr;
  int64_t C = G.root().ElemOffset;
  int64_t V = Ctx.getVectorLen();
  int64_t B = Ctx.getBlockingFactor();
  const Node &Value = G.root().child(0);
  // The loop counter now holds the first unexecuted value; the epilogue's
  // chunks sit at counter offsets +0 and +B.
  SRegId I = P.getIndexReg();

  assert(EpiLeftOver >= 0 && EpiLeftOver < 2 * V &&
         "EpiLeftOver must be below 2V (Section 4.3)");
  if (EpiLeftOver == 0)
    return;

  if (EpiLeftOver >= V) {
    // One more full chunk fits entirely inside the store stream.
    VRegId New = ExprGen.gen(Value, Counter::atIndex(0), Epi, false);
    VInst Store = VInst::makeVStore(Address::indexed(A, C, I), New);
    Store.Comment = "epilogue store (full)";
    Epi.push_back(Store);
  }

  int64_t Rest = EpiLeftOver >= V ? EpiLeftOver - V : EpiLeftOver;
  int64_t Delta = EpiLeftOver >= V ? B : 0;
  if (Rest == 0)
    return;

  VRegId New = ExprGen.gen(Value, Counter::atIndex(Delta), Epi, false);
  Address Addr = Address::indexed(A, C + Delta, I);
  VRegId Old = P.allocVReg();
  Epi.push_back(VInst::makeVLoad(Old, Addr));
  VRegId Spliced = P.allocVReg();
  // vsplice(new, old, point): the first `Rest` bytes are the last computed
  // values; everything after the stream's end is preserved.
  Epi.push_back(
      VInst::makeVSplice(Spliced, New, Old, ScalarOperand::imm(Rest)));
  VInst Store = VInst::makeVStore(Addr, Spliced);
  Store.Comment = "epilogue store (partial)";
  Epi.push_back(Store);
}

void StmtEmitter::emitEpilogueDynamic(const Graph &G, ScalarOperand AlignOp,
                                      ScalarOperand UBOp) {
  VProgram &P = Ctx.getProgram();
  Block &Setup = P.getSetup();
  Block &Epi = P.getEpilogue();
  const ir::Array *A = G.root().Arr;
  int64_t C = G.root().ElemOffset;
  int64_t V = Ctx.getVectorLen();
  int64_t B = Ctx.getBlockingFactor();
  const Node &Value = G.root().child(0);
  SRegId I = P.getIndexReg();

  // Setup: ELO = ProSplice + (ub mod B) * D, a loop invariant.
  ScalarOperand Residue;
  if (UBOp.isImm()) {
    Residue = ScalarOperand::imm(nonNegMod(UBOp.getImm(), B) *
                                 static_cast<int64_t>(Ctx.getElemSize()));
  } else {
    SRegId Mod = P.allocSReg();
    Setup.push_back(
        VInst::makeSBinOp(SBinOpKind::Mod, Mod, UBOp, ScalarOperand::imm(B)));
    SRegId Scaled = P.allocSReg();
    Setup.push_back(VInst::makeSBinOp(
        SBinOpKind::Mul, Scaled, ScalarOperand::reg(Mod),
        ScalarOperand::imm(static_cast<int64_t>(Ctx.getElemSize()))));
    Residue = ScalarOperand::reg(Scaled);
  }
  SRegId ELO = P.allocSReg();
  VInst Sum = VInst::makeSBinOp(SBinOpKind::Add, ELO, AlignOp, Residue);
  Sum.Comment = "EpiLeftOver";
  Setup.push_back(Sum);
  ScalarOperand ELOOp = ScalarOperand::reg(ELO);

  // Epilogue variant selection, all driven by ELO in [0, 2V):
  //   ELO >= V       -> full store of the chunk at counter +0;
  //   0 < ELO < V    -> partial store at counter +0 with point ELO;
  //   ELO > V        -> partial store at counter +B with point ELO - V.
  VRegId New0 = ExprGen.gen(Value, Counter::atIndex(0), Epi, false);
  VRegId NewB = ExprGen.gen(Value, Counter::atIndex(B), Epi, false);

  SRegId FullPred = P.allocSReg();
  Epi.push_back(VInst::makeSCmp(SCmpKind::GE, FullPred, ELOOp,
                                ScalarOperand::imm(V)));
  {
    VInst Store = VInst::makeVStore(Address::indexed(A, C, I), New0);
    Store.Predicate = FullPred;
    Store.Comment = "epilogue store (full, predicated)";
    Epi.push_back(Store);
  }

  // Partial at +0 when 0 < ELO < V.
  SRegId NonEmpty = P.allocSReg();
  Epi.push_back(VInst::makeSCmp(SCmpKind::GT, NonEmpty, ELOOp,
                                ScalarOperand::imm(0)));
  SRegId BelowV = P.allocSReg();
  Epi.push_back(
      VInst::makeSCmp(SCmpKind::LT, BelowV, ELOOp, ScalarOperand::imm(V)));
  SRegId Part0Pred = P.allocSReg();
  Epi.push_back(VInst::makeSBinOp(SBinOpKind::And, Part0Pred,
                                  ScalarOperand::reg(NonEmpty),
                                  ScalarOperand::reg(BelowV)));
  {
    Address Addr = Address::indexed(A, C, I);
    VRegId Old = P.allocVReg();
    VInst Load = VInst::makeVLoad(Old, Addr);
    Load.Predicate = Part0Pred;
    Epi.push_back(Load);
    VRegId Spliced = P.allocVReg();
    VInst Splice = VInst::makeVSplice(Spliced, New0, Old, ELOOp);
    Splice.Predicate = Part0Pred; // Point must stay within [0, V].
    Epi.push_back(Splice);
    VInst Store = VInst::makeVStore(Addr, Spliced);
    Store.Predicate = Part0Pred;
    Store.Comment = "epilogue store (partial at +0, predicated)";
    Epi.push_back(Store);
  }

  // Partial at +B when ELO > V.
  SRegId PartBPred = P.allocSReg();
  Epi.push_back(VInst::makeSCmp(SCmpKind::GT, PartBPred, ELOOp,
                                ScalarOperand::imm(V)));
  SRegId PointB = P.allocSReg();
  Epi.push_back(VInst::makeSBinOp(SBinOpKind::Sub, PointB, ELOOp,
                                  ScalarOperand::imm(V)));
  {
    Address Addr = Address::indexed(A, C + B, I);
    VRegId Old = P.allocVReg();
    VInst Load = VInst::makeVLoad(Old, Addr);
    Load.Predicate = PartBPred;
    Epi.push_back(Load);
    VRegId Spliced = P.allocVReg();
    VInst Splice =
        VInst::makeVSplice(Spliced, NewB, Old, ScalarOperand::reg(PointB));
    Splice.Predicate = PartBPred;
    Epi.push_back(Splice);
    VInst Store = VInst::makeVStore(Addr, Spliced);
    Store.Predicate = PartBPred;
    Store.Comment = "epilogue store (partial at +B, predicated)";
    Epi.push_back(Store);
  }
}
