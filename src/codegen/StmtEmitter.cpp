//===- codegen/StmtEmitter.cpp --------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "codegen/StmtEmitter.h"

#include "support/Debug.h"
#include "support/MathExtras.h"

using namespace simdize;
using namespace simdize::codegen;
using namespace simdize::reorg;
using namespace simdize::vir;

void StmtEmitter::emit(const Graph &G) {
  if (G.Kind == ir::StmtKind::Reduce) {
    emitReduce(G);
    return;
  }
  emitPrologue(G);
  emitSteady(G);
  emitEpilogue(G);
}

/// The neutral element of an associative-commutative lane operation: lanes
/// holding it do not perturb the fold (Min/Max use the lane type's signed
/// extremes).
static int64_t reduceIdentity(ir::BinOpKind Op, unsigned D) {
  switch (Op) {
  case ir::BinOpKind::Add:
  case ir::BinOpKind::Or:
  case ir::BinOpKind::Xor:
    return 0;
  case ir::BinOpKind::Mul:
    return 1;
  case ir::BinOpKind::And:
    return -1;
  case ir::BinOpKind::Min:
    return (static_cast<int64_t>(1) << (8 * D - 1)) - 1;
  case ir::BinOpKind::Max:
    return -(static_cast<int64_t>(1) << (8 * D - 1));
  case ir::BinOpKind::Sub:
    break;
  }
  simdize_unreachable("not an associative-commutative reduction op");
}

void StmtEmitter::emitReduce(const Graph &G) {
  VProgram &P = Ctx.getProgram();
  Block &Setup = P.getSetup();
  Block &Body = P.getBody();
  Block &Epi = P.getEpilogue();
  const ir::Array *A = G.root().Arr;
  int64_t K = G.root().ElemOffset; // Absolute accumulator cell index.
  unsigned D = Ctx.getElemSize();
  int64_t V = Ctx.getVectorLen();
  int64_t B = Ctx.getBlockingFactor();
  ir::BinOpKind Op = G.ReduceOp;
  const Node &Value = G.root().child(0);

  // Setup: the partial-sum vector starts as the value chunk of iterations
  // [0, B) — the counterpart of the assign prologue's first chunk.
  VRegId Init = ExprGen.gen(Value, Counter::atConst(0), Setup, false);
  VRegId Acc = P.allocVReg();
  VInst InitCopy = VInst::makeVCopy(Acc, Init);
  InitCopy.Comment = "reduction accumulator init";
  Setup.push_back(InitCopy);

  // Steady state: lane-wise accumulate one chunk per iteration; the partial
  // sums are carried over the back edge exactly like a software-pipeline
  // carry (Acc is multiply-defined: Setup init + loop-bottom copy).
  VRegId Val = ExprGen.gen(Value, Counter::atIndex(0), Body, true);
  VRegId Next = P.allocVReg();
  Body.push_back(VInst::makeVBinOp(Op, Next, Acc, Val, D));
  Ctx.addLoopBottomCopy(Acc, Next);

  // Epilogue 1/3: fold in the residual chunk at the first unexecuted
  // counter qB. Its lanes past ub are replaced with the identity, so an
  // empty residue (ub mod B == 0, splice point 0) degenerates to a no-op
  // accumulate — no predication needed.
  ScalarOperand UBOp = Ctx.getUpperBoundOperand();
  ScalarOperand Residue; // r * D: the byte count of live residual lanes.
  if (UBOp.isImm()) {
    Residue = ScalarOperand::imm(nonNegMod(UBOp.getImm(), B) *
                                 static_cast<int64_t>(D));
  } else {
    SRegId Mod = P.allocSReg();
    Setup.push_back(
        VInst::makeSBinOp(SBinOpKind::Mod, Mod, UBOp, ScalarOperand::imm(B)));
    SRegId Scaled = P.allocSReg();
    VInst Scale = VInst::makeSBinOp(SBinOpKind::Mul, Scaled,
                                    ScalarOperand::reg(Mod),
                                    ScalarOperand::imm(static_cast<int64_t>(D)));
    Scale.Comment = "reduction residue bytes";
    Setup.push_back(Scale);
    Residue = ScalarOperand::reg(Scaled);
  }
  VRegId Ident = Ctx.getSplatReg(reduceIdentity(Op, D));
  VRegId ValE = ExprGen.gen(Value, Counter::atIndex(0), Epi, false);
  VRegId Masked = P.allocVReg();
  VInst MaskSplice = VInst::makeVSplice(Masked, ValE, Ident, Residue);
  MaskSplice.Comment = "mask residual lanes with the identity";
  Epi.push_back(MaskSplice);
  VRegId Folded = P.allocVReg();
  Epi.push_back(VInst::makeVBinOp(Op, Folded, Acc, Masked, D));
  Acc = Folded;

  // Epilogue 2/3: log2(V/D) rotate-and-combine rounds leave the grand
  // total in every lane (a vshiftpair of a register with itself rotates).
  for (int64_t S = V / 2; S >= static_cast<int64_t>(D); S /= 2) {
    VRegId Rot = P.allocVReg();
    VInst Shift = VInst::makeVShiftPair(Rot, Acc, Acc, ScalarOperand::imm(S));
    Shift.Comment = "lane-fold rotate";
    Epi.push_back(Shift);
    VRegId Sum = P.allocVReg();
    Epi.push_back(VInst::makeVBinOp(Op, Sum, Acc, Rot, D));
    Acc = Sum;
  }

  // Epilogue 3/3: read-modify-write the accumulator's chunk, disturbing
  // only its own D bytes at lane position p = (align + k*D) mod V:
  //   result = Old[0,p) ++ (Old op total)[p,p+D) ++ Old[p+D,V).
  Address Addr = Address::constant(A, K, 0);
  ScalarOperand PointOp = Ctx.getAlignmentOperand(A, K);
  assert(PointOp.isImm() &&
         "checkSimdizable guarantees a known accumulator alignment");
  int64_t Point = PointOp.getImm();
  assert(Point % static_cast<int64_t>(D) == 0 && Point + D <= V &&
         "accumulator cell must sit on a lane boundary");
  VRegId Old = P.allocVReg();
  Epi.push_back(VInst::makeVLoad(Old, Addr));
  VRegId New = P.allocVReg();
  Epi.push_back(VInst::makeVBinOp(Op, New, Old, Acc, D));
  VRegId Low = P.allocVReg();
  Epi.push_back(VInst::makeVSplice(Low, Old, New, ScalarOperand::imm(Point)));
  VRegId Spliced = P.allocVReg();
  Epi.push_back(VInst::makeVSplice(Spliced, Low, Old,
                                   ScalarOperand::imm(Point + D)));
  VInst Store = VInst::makeVStore(Addr, Spliced);
  Store.Comment = "reduction read-modify-write";
  Epi.push_back(Store);
}

void StmtEmitter::emitPrologue(const Graph &G) {
  VProgram &P = Ctx.getProgram();
  Block &Setup = P.getSetup();
  const ir::Array *A = G.root().Arr;
  int64_t C = G.root().ElemOffset;

  // Value vector for simdized iteration i = 0 (standard, non-pipelined
  // generation: GenSimdStmt-Prologue uses GenSimdExpr).
  VRegId New =
      ExprGen.gen(G.root().child(0), Counter::atConst(0), Setup, false);

  // ProSplice = addr(0) mod V (Eq. 8). Bytes below it hold earlier data
  // that the first chunk's store must preserve.
  ScalarOperand Point = Ctx.getAlignmentOperand(A, C);
  Address Addr = Address::constant(A, C, 0);

  if (Point.isImm() && Point.getImm() == 0) {
    // Aligned store stream: the first chunk is already full.
    VInst Store = VInst::makeVStore(Addr, New);
    Store.Comment = "prologue store (full)";
    Setup.push_back(Store);
    return;
  }

  VRegId Old = P.allocVReg();
  Setup.push_back(VInst::makeVLoad(Old, Addr));
  VRegId Spliced = P.allocVReg();
  // vsplice(old, new, point): first `point` bytes preserved from memory.
  // A runtime point of 0 degenerates to copying `new`, which stays correct.
  Setup.push_back(VInst::makeVSplice(Spliced, Old, New, Point));
  VInst Store = VInst::makeVStore(Addr, Spliced);
  Store.Comment = "prologue store (partial)";
  Setup.push_back(Store);
}

void StmtEmitter::emitSteady(const Graph &G) {
  VProgram &P = Ctx.getProgram();
  Block &Body = P.getBody();
  VRegId New =
      ExprGen.gen(G.root().child(0), Counter::atIndex(0), Body, true);
  Body.push_back(VInst::makeVStore(
      Address::indexed(G.root().Arr, G.root().ElemOffset, P.getIndexReg()),
      New));
}

void StmtEmitter::emitEpilogue(const Graph &G) {
  const ir::Array *A = G.root().Arr;
  int64_t C = G.root().ElemOffset;
  ScalarOperand AlignOp = Ctx.getAlignmentOperand(A, C);
  ScalarOperand UBOp = Ctx.getUpperBoundOperand();

  if (AlignOp.isImm() && UBOp.isImm()) {
    // EpiLeftOver = ProSplice + (ub mod B) * D (Eq. 16).
    int64_t ELO = AlignOp.getImm() +
                  nonNegMod(UBOp.getImm(), Ctx.getBlockingFactor()) *
                      static_cast<int64_t>(Ctx.getElemSize());
    emitEpilogueStatic(G, ELO);
    return;
  }
  emitEpilogueDynamic(G, AlignOp, UBOp);
}

void StmtEmitter::emitEpilogueStatic(const Graph &G, int64_t EpiLeftOver) {
  VProgram &P = Ctx.getProgram();
  Block &Epi = P.getEpilogue();
  const ir::Array *A = G.root().Arr;
  int64_t C = G.root().ElemOffset;
  int64_t V = Ctx.getVectorLen();
  int64_t B = Ctx.getBlockingFactor();
  const Node &Value = G.root().child(0);
  // The loop counter now holds the first unexecuted value; the epilogue's
  // chunks sit at counter offsets +0 and +B.
  SRegId I = P.getIndexReg();

  assert(EpiLeftOver >= 0 && EpiLeftOver < 2 * V &&
         "EpiLeftOver must be below 2V (Section 4.3)");
  if (EpiLeftOver == 0)
    return;

  if (EpiLeftOver >= V) {
    // One more full chunk fits entirely inside the store stream.
    VRegId New = ExprGen.gen(Value, Counter::atIndex(0), Epi, false);
    VInst Store = VInst::makeVStore(Address::indexed(A, C, I), New);
    Store.Comment = "epilogue store (full)";
    Epi.push_back(Store);
  }

  int64_t Rest = EpiLeftOver >= V ? EpiLeftOver - V : EpiLeftOver;
  int64_t Delta = EpiLeftOver >= V ? B : 0;
  if (Rest == 0)
    return;

  VRegId New = ExprGen.gen(Value, Counter::atIndex(Delta), Epi, false);
  Address Addr = Address::indexed(A, C + Delta, I);
  VRegId Old = P.allocVReg();
  Epi.push_back(VInst::makeVLoad(Old, Addr));
  VRegId Spliced = P.allocVReg();
  // vsplice(new, old, point): the first `Rest` bytes are the last computed
  // values; everything after the stream's end is preserved.
  Epi.push_back(
      VInst::makeVSplice(Spliced, New, Old, ScalarOperand::imm(Rest)));
  VInst Store = VInst::makeVStore(Addr, Spliced);
  Store.Comment = "epilogue store (partial)";
  Epi.push_back(Store);
}

void StmtEmitter::emitEpilogueDynamic(const Graph &G, ScalarOperand AlignOp,
                                      ScalarOperand UBOp) {
  VProgram &P = Ctx.getProgram();
  Block &Setup = P.getSetup();
  Block &Epi = P.getEpilogue();
  const ir::Array *A = G.root().Arr;
  int64_t C = G.root().ElemOffset;
  int64_t V = Ctx.getVectorLen();
  int64_t B = Ctx.getBlockingFactor();
  const Node &Value = G.root().child(0);
  SRegId I = P.getIndexReg();

  // Setup: ELO = ProSplice + (ub mod B) * D, a loop invariant.
  ScalarOperand Residue;
  if (UBOp.isImm()) {
    Residue = ScalarOperand::imm(nonNegMod(UBOp.getImm(), B) *
                                 static_cast<int64_t>(Ctx.getElemSize()));
  } else {
    SRegId Mod = P.allocSReg();
    Setup.push_back(
        VInst::makeSBinOp(SBinOpKind::Mod, Mod, UBOp, ScalarOperand::imm(B)));
    SRegId Scaled = P.allocSReg();
    Setup.push_back(VInst::makeSBinOp(
        SBinOpKind::Mul, Scaled, ScalarOperand::reg(Mod),
        ScalarOperand::imm(static_cast<int64_t>(Ctx.getElemSize()))));
    Residue = ScalarOperand::reg(Scaled);
  }
  SRegId ELO = P.allocSReg();
  VInst Sum = VInst::makeSBinOp(SBinOpKind::Add, ELO, AlignOp, Residue);
  Sum.Comment = "EpiLeftOver";
  Setup.push_back(Sum);
  ScalarOperand ELOOp = ScalarOperand::reg(ELO);

  // Epilogue variant selection, all driven by ELO in [0, 2V):
  //   ELO >= V       -> full store of the chunk at counter +0;
  //   0 < ELO < V    -> partial store at counter +0 with point ELO;
  //   ELO > V        -> partial store at counter +B with point ELO - V.
  VRegId New0 = ExprGen.gen(Value, Counter::atIndex(0), Epi, false);
  VRegId NewB = ExprGen.gen(Value, Counter::atIndex(B), Epi, false);

  SRegId FullPred = P.allocSReg();
  Epi.push_back(VInst::makeSCmp(SCmpKind::GE, FullPred, ELOOp,
                                ScalarOperand::imm(V)));
  {
    VInst Store = VInst::makeVStore(Address::indexed(A, C, I), New0);
    Store.Predicate = FullPred;
    Store.Comment = "epilogue store (full, predicated)";
    Epi.push_back(Store);
  }

  // Partial at +0 when 0 < ELO < V.
  SRegId NonEmpty = P.allocSReg();
  Epi.push_back(VInst::makeSCmp(SCmpKind::GT, NonEmpty, ELOOp,
                                ScalarOperand::imm(0)));
  SRegId BelowV = P.allocSReg();
  Epi.push_back(
      VInst::makeSCmp(SCmpKind::LT, BelowV, ELOOp, ScalarOperand::imm(V)));
  SRegId Part0Pred = P.allocSReg();
  Epi.push_back(VInst::makeSBinOp(SBinOpKind::And, Part0Pred,
                                  ScalarOperand::reg(NonEmpty),
                                  ScalarOperand::reg(BelowV)));
  {
    Address Addr = Address::indexed(A, C, I);
    VRegId Old = P.allocVReg();
    VInst Load = VInst::makeVLoad(Old, Addr);
    Load.Predicate = Part0Pred;
    Epi.push_back(Load);
    VRegId Spliced = P.allocVReg();
    VInst Splice = VInst::makeVSplice(Spliced, New0, Old, ELOOp);
    Splice.Predicate = Part0Pred; // Point must stay within [0, V].
    Epi.push_back(Splice);
    VInst Store = VInst::makeVStore(Addr, Spliced);
    Store.Predicate = Part0Pred;
    Store.Comment = "epilogue store (partial at +0, predicated)";
    Epi.push_back(Store);
  }

  // Partial at +B when ELO > V.
  SRegId PartBPred = P.allocSReg();
  Epi.push_back(VInst::makeSCmp(SCmpKind::GT, PartBPred, ELOOp,
                                ScalarOperand::imm(V)));
  SRegId PointB = P.allocSReg();
  Epi.push_back(VInst::makeSBinOp(SBinOpKind::Sub, PointB, ELOOp,
                                  ScalarOperand::imm(V)));
  {
    Address Addr = Address::indexed(A, C + B, I);
    VRegId Old = P.allocVReg();
    VInst Load = VInst::makeVLoad(Old, Addr);
    Load.Predicate = PartBPred;
    Epi.push_back(Load);
    VRegId Spliced = P.allocVReg();
    VInst Splice =
        VInst::makeVSplice(Spliced, NewB, Old, ScalarOperand::reg(PointB));
    Splice.Predicate = PartBPred;
    Epi.push_back(Splice);
    VInst Store = VInst::makeVStore(Addr, Spliced);
    Store.Predicate = PartBPred;
    Store.Comment = "epilogue store (partial at +B, predicated)";
    Epi.push_back(Store);
  }
}
