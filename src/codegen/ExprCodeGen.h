//===- codegen/ExprCodeGen.h - SIMD code generation for expressions ------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements GenSimdExpr (Figure 7) and its software-pipelined variant
/// GenSimdExprSP (Figure 10) over a policy-annotated data reorganization
/// graph.
///
/// A vshiftstream node lowers to one vshiftpair combining the values of two
/// consecutive simdized iterations: (current, next) when shifting left,
/// (previous, current) when shifting right. Without software pipelining
/// both values are recomputed per iteration; with it, the value of the
/// larger iteration count is carried across the back edge in an "old"
/// register initialized in Setup, so that each vector load of a stream
/// executes exactly once per iteration — the paper's never-load-twice
/// guarantee.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_CODEGEN_EXPRCODEGEN_H
#define SIMDIZE_CODEGEN_EXPRCODEGEN_H

#include "codegen/CodeGenContext.h"
#include "reorg/ReorgGraph.h"

namespace simdize {
namespace codegen {

/// The loop-counter value at which an expression is evaluated: the steady
/// counter register plus a delta, or a compile-time constant (prologue,
/// software-pipeline initialization). All counters are multiples of the
/// blocking factor, which the vshiftpair lowering relies on.
struct Counter {
  bool UsesIndex = false;
  int64_t Delta = 0;

  /// Steady-loop counter plus \p Delta (also used in the epilogue, where
  /// the counter register holds the first unexecuted value).
  static Counter atIndex(int64_t Delta) { return {true, Delta}; }

  /// The compile-time counter value \p Value.
  static Counter atConst(int64_t Value) { return {false, Value}; }

  Counter plus(int64_t D) const { return {UsesIndex, Delta + D}; }
};

/// Generates vector IR for expression subtrees of one statement's graph.
class ExprCodeGen {
public:
  /// \param SoftwarePipeline enables the Figure 10 scheme for steady-state
  /// generation (gen calls with InBody = true).
  ExprCodeGen(CodeGenContext &Ctx, bool SoftwarePipeline)
      : Ctx(Ctx), SP(SoftwarePipeline) {}

  /// Emits code computing \p N's register stream value at counter \p C into
  /// \p Out; returns the result register. \p InBody selects steady-state
  /// generation (software-pipelined when enabled); Setup/Epilogue callers
  /// pass false.
  vir::VRegId gen(const reorg::Node &N, Counter C, vir::Block &Out,
                  bool InBody);

private:
  vir::VRegId genShiftStream(const reorg::Node &N, Counter C, vir::Block &Out,
                             bool InBody);

  vir::Address makeAddress(const ir::Array *A, int64_t ElemOffset,
                           Counter C) const;

  CodeGenContext &Ctx;
  bool SP;
};

} // namespace codegen
} // namespace simdize

#endif // SIMDIZE_CODEGEN_EXPRCODEGEN_H
