//===- codegen/Explain.h - Decision log construction ---------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the obs::DecisionLog for a simdization run: per-statement stream
/// offsets, the vshiftstream nodes the policy placed, predicted-vs-placed
/// shift counts, and the shape of the emitted program. The obs library is
/// a leaf and holds only plain-data records; this is the one place that
/// knows both the compiler types and the record schema.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_CODEGEN_EXPLAIN_H
#define SIMDIZE_CODEGEN_EXPLAIN_H

#include "codegen/Simdizer.h"
#include "obs/DecisionLog.h"

namespace simdize {
namespace codegen {

/// Explains the run that produced \p R from \p L under \p Opts: re-derives
/// each statement's reorganization graph (cheap — graphs are statement-
/// sized trees) to record offsets and placed shifts, queries
/// policies::predictShiftCount for the policy's own contract, and reads
/// the emitted program's shape out of \p R. Opt-pass rewrites are not
/// known here; callers that run opt::runOptPipeline append them to the
/// returned log themselves (the records are plain data).
obs::DecisionLog explainSimdization(const ir::Loop &L,
                                    const SimdizeOptions &Opts,
                                    const SimdizeResult &R);

} // namespace codegen
} // namespace simdize

#endif // SIMDIZE_CODEGEN_EXPLAIN_H
