//===- codegen/ExprCodeGen.cpp --------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "codegen/ExprCodeGen.h"

#include "support/Debug.h"

using namespace simdize;
using namespace simdize::codegen;
using namespace simdize::reorg;
using namespace simdize::vir;

static SCmpKind toSCmp(ir::CmpKind Kind) {
  switch (Kind) {
  case ir::CmpKind::LT:
    return SCmpKind::LT;
  case ir::CmpKind::LE:
    return SCmpKind::LE;
  case ir::CmpKind::GT:
    return SCmpKind::GT;
  case ir::CmpKind::GE:
    return SCmpKind::GE;
  case ir::CmpKind::EQ:
    return SCmpKind::EQ;
  case ir::CmpKind::NE:
    return SCmpKind::NE;
  }
  simdize_unreachable("unknown comparison kind");
}

Address ExprCodeGen::makeAddress(const ir::Array *A, int64_t ElemOffset,
                                 Counter C) const {
  if (C.UsesIndex)
    return Address::indexed(A, ElemOffset + C.Delta,
                            Ctx.getProgram().getIndexReg());
  return Address::constant(A, ElemOffset, C.Delta);
}

VRegId ExprCodeGen::gen(const Node &N, Counter C, Block &Out, bool InBody) {
  VProgram &P = Ctx.getProgram();
  switch (N.getKind()) {
  case NodeKind::Load: {
    VRegId Dst = P.allocVReg();
    Out.push_back(VInst::makeVLoad(Dst, makeAddress(N.Arr, N.ElemOffset, C)));
    return Dst;
  }
  case NodeKind::Splat:
    // Loop invariant: hoisted to Setup once and cached.
    if (N.ParamRef)
      return Ctx.getParamSplatReg(N.ParamRef);
    return Ctx.getSplatReg(N.SplatValue);
  case NodeKind::Op: {
    if (N.Class == OpClass::Blend) {
      // If-conversion blend: children are [mask, taken, untaken].
      VRegId Mask = gen(N.child(0), C, Out, InBody);
      VRegId IfSet = gen(N.child(1), C, Out, InBody);
      VRegId IfClear = gen(N.child(2), C, Out, InBody);
      VRegId Dst = P.allocVReg();
      Out.push_back(VInst::makeVSelect(Dst, Mask, IfSet, IfClear));
      return Dst;
    }
    VRegId LHS = gen(N.child(0), C, Out, InBody);
    VRegId RHS = gen(N.child(1), C, Out, InBody);
    VRegId Dst = P.allocVReg();
    if (N.Class == OpClass::Cmp)
      Out.push_back(VInst::makeVCmp(toSCmp(N.CmpOp), Dst, LHS, RHS,
                                    Ctx.getElemSize()));
    else
      Out.push_back(
          VInst::makeVBinOp(N.OpKind, Dst, LHS, RHS, Ctx.getElemSize()));
    return Dst;
  }
  case NodeKind::ShiftStream:
    return genShiftStream(N, C, Out, InBody);
  case NodeKind::Store:
    break;
  }
  simdize_unreachable("store nodes are emitted by StmtEmitter");
}

VRegId ExprCodeGen::genShiftStream(const Node &N, Counter C, Block &Out,
                                   bool InBody) {
  VProgram &P = Ctx.getProgram();
  const Node &Child = N.child(0);
  const StreamOffset &From = Child.Offset;
  const StreamOffset &To = N.TargetOffset;
  int64_t V = Ctx.getVectorLen();

  // Resolve the shift direction at compile time (Figure 7: left shifts
  // combine current+next, right shifts previous+current). Runtime offsets
  // only occur in the zero-shift patterns, whose directions are fixed.
  bool Left;
  ScalarOperand Shift;
  if (From.isConstant() && To.isConstant()) {
    int64_t F = From.getConstant(), T = To.getConstant();
    if (F == T)
      return gen(Child, C, Out, InBody); // Degenerate no-op shift.
    Left = F > T;
    Shift = ScalarOperand::imm(Left ? F - T : V - (T - F));
  } else if (From.isRuntime() && To.isConstant() && To.getConstant() == 0) {
    Left = true;
    Shift = ScalarOperand::reg(Ctx.getRuntimeLeftShiftReg(
        From.getRuntimeArray(), From.getRuntimeElemOffset()));
  } else if (From.isConstant() && From.getConstant() == 0 && To.isRuntime()) {
    Left = false;
    Shift = ScalarOperand::reg(Ctx.getRuntimeRightShiftReg(
        To.getRuntimeArray(), To.getRuntimeElemOffset()));
  } else {
    simdize_unreachable("shift between unsupported offset combinations");
  }

  int64_t B = Ctx.getBlockingFactor();

  if (!InBody || !SP) {
    // Standard scheme (Figure 7): both combined values are computed here,
    // introducing the redundancy that PC or SP later exploit.
    VRegId First, Second;
    if (Left) {
      First = gen(Child, C, Out, InBody);
      Second = gen(Child, C.plus(B), Out, InBody);
    } else {
      First = gen(Child, C.plus(-B), Out, InBody);
      Second = gen(Child, C, Out, InBody);
    }
    VRegId Dst = P.allocVReg();
    Out.push_back(VInst::makeVShiftPair(Dst, First, Second, Shift));
    return Dst;
  }

  // Software-pipelined scheme (Figure 10). The value with the smaller
  // iteration count lives in a carried "old" register: initialized in Setup
  // at the loop-entry counter (non-pipelined), recomputed in the loop only
  // for the larger iteration count ("second"), and carried over the back
  // edge with a copy.
  assert(C.UsesIndex && "software pipelining applies to steady state only");

  VRegId OldReg = P.allocVReg();
  // Loop-entry counter is LB = B; 'old' must hold child(entry + Delta) for
  // left shifts, child(entry + Delta - B) for right shifts.
  int64_t InitCounter = B + C.Delta + (Left ? 0 : -B);
  Block &Setup = P.getSetup();
  VRegId First =
      gen(Child, Counter::atConst(InitCounter), Setup, /*InBody=*/false);
  VInst Init = VInst::makeVCopy(OldReg, First);
  Init.Comment = "software-pipeline init";
  Setup.push_back(Init);

  VRegId Second =
      gen(Child, Left ? C.plus(B) : C, Out, /*InBody=*/true);
  VRegId Dst = P.allocVReg();
  Out.push_back(VInst::makeVShiftPair(Dst, OldReg, Second, Shift));
  Ctx.addLoopBottomCopy(OldReg, Second);
  return Dst;
}
