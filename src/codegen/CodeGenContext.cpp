//===- codegen/CodeGenContext.cpp -----------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGenContext.h"

#include "support/MathExtras.h"

using namespace simdize;
using namespace simdize::codegen;
using namespace simdize::vir;

CodeGenContext::CodeGenContext(const ir::Loop &L, VProgram &P)
    : Loop(L), Program(P) {}

ScalarOperand CodeGenContext::getUpperBoundOperand() {
  if (Loop.isUpperBoundKnown())
    return ScalarOperand::imm(Loop.getUpperBound());
  if (!Program.hasTripCountParam())
    Program.declareTripCountParam(Loop.getUpperBound());
  return ScalarOperand::reg(Program.getTripCountParam());
}

ScalarOperand CodeGenContext::getAlignmentOperand(const ir::Array *A,
                                                  int64_t ElemOffset) {
  unsigned V = getVectorLen();
  if (A->isAlignmentKnown())
    return ScalarOperand::imm(nonNegMod(
        A->getAlignment() + ElemOffset * static_cast<int64_t>(A->getElemSize()),
        V));
  return ScalarOperand::reg(getRuntimeOffsetReg(A, ElemOffset));
}

SRegId CodeGenContext::getRuntimeOffsetReg(const ir::Array *A,
                                           int64_t ElemOffset) {
  unsigned V = getVectorLen();
  // (base + c*D) mod V depends only on c*D mod V; cache per class so
  // relatively aligned accesses of one array share the register.
  int64_t Class =
      nonNegMod(ElemOffset * static_cast<int64_t>(A->getElemSize()), V);
  auto Key = std::make_pair(A, Class);
  if (auto It = OffsetRegs.find(Key); It != OffsetRegs.end())
    return It->second;

  Block &Setup = Program.getSetup();
  SRegId BaseReg = Program.allocSReg();
  Setup.push_back(VInst::makeSBase(BaseReg, A));
  SRegId SumReg = Program.allocSReg();
  Setup.push_back(VInst::makeSBinOp(SBinOpKind::Add, SumReg,
                                    ScalarOperand::reg(BaseReg),
                                    ScalarOperand::imm(Class)));
  SRegId OffsetReg = Program.allocSReg();
  VInst And =
      VInst::makeSBinOp(SBinOpKind::And, OffsetReg, ScalarOperand::reg(SumReg),
                        ScalarOperand::imm(static_cast<int64_t>(V) - 1));
  And.Comment = "runtime stream offset of " + A->getName();
  Setup.push_back(And);

  OffsetRegs.emplace(Key, OffsetReg);
  return OffsetReg;
}

SRegId CodeGenContext::getRuntimeLeftShiftReg(const ir::Array *A,
                                              int64_t ElemOffset) {
  // Left shift to offset 0: the amount is the stream offset itself.
  return getRuntimeOffsetReg(A, ElemOffset);
}

SRegId CodeGenContext::getRuntimeRightShiftReg(const ir::Array *A,
                                               int64_t ElemOffset) {
  unsigned V = getVectorLen();
  int64_t Class =
      nonNegMod(ElemOffset * static_cast<int64_t>(A->getElemSize()), V);
  auto Key = std::make_pair(A, Class);
  if (auto It = RightShiftRegs.find(Key); It != RightShiftRegs.end())
    return It->second;

  SRegId OffsetReg = getRuntimeOffsetReg(A, ElemOffset);
  SRegId ShiftReg = Program.allocSReg();
  VInst Sub = VInst::makeSBinOp(
      SBinOpKind::Sub, ShiftReg, ScalarOperand::imm(static_cast<int64_t>(V)),
      ScalarOperand::reg(OffsetReg));
  Sub.Comment = "right-shift amount toward " + A->getName();
  Program.getSetup().push_back(Sub);

  RightShiftRegs.emplace(Key, ShiftReg);
  return ShiftReg;
}

VRegId CodeGenContext::getSplatReg(int64_t Value) {
  if (auto It = SplatRegs.find(Value); It != SplatRegs.end())
    return It->second;
  VRegId Reg = Program.allocVReg();
  Program.getSetup().push_back(
      VInst::makeVSplat(Reg, Value, getElemSize()));
  SplatRegs.emplace(Value, Reg);
  return Reg;
}

VRegId CodeGenContext::getParamSplatReg(const ir::Param *P) {
  if (auto It = ParamSplatRegs.find(P); It != ParamSplatRegs.end())
    return It->second;
  SRegId Scalar = Program.declareScalarParam(P->getActualValue());
  VRegId Reg = Program.allocVReg();
  VInst Splat = VInst::makeVSplatReg(Reg, Scalar, getElemSize());
  Splat.Comment = "splat of parameter " + P->getName();
  Program.getSetup().push_back(Splat);
  ParamSplatRegs.emplace(P, Reg);
  return Reg;
}

void CodeGenContext::flushLoopBottomCopies() {
  for (auto [Old, New] : PendingCopies)
    Program.getBody().push_back(VInst::makeVCopy(Old, New));
  PendingCopies.clear();
}
