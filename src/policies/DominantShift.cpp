//===- policies/DominantShift.cpp -----------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "policies/Policies.h"
#include "policies/PolicyCommon.h"

#include <map>

using namespace simdize;
using namespace simdize::policies;
using namespace simdize::reorg;

int64_t DominantShiftPolicy::dominantOffset(const Graph &G) {
  unsigned V = G.VectorLen;
  int64_t D = G.ElemSize;
  std::map<int64_t, unsigned> Freq;

  // Only lane-multiple offsets can host the arithmetic; streams of
  // non-naturally-aligned arrays never become the dominant target.
  auto Tally = [&](int64_t Offset) {
    if (Offset % D == 0)
      ++Freq[Offset];
  };
  std::function<void(const Node &)> Walk = [&](const Node &N) {
    if (N.getKind() == NodeKind::Load)
      Tally(offsetOfAccess(N.Arr, N.ElemOffset, V).getConstant());
    for (const auto &C : N.Children)
      Walk(*C);
  };
  Walk(G.root());
  Tally(G.storeOffset().getConstant());

  // Most frequent offset; std::map iteration breaks ties toward the
  // smaller offset deterministically.
  int64_t Best = 0;
  unsigned BestCount = 0;
  for (const auto &[Offset, Count] : Freq)
    if (Count > BestCount) {
      Best = Offset;
      BestCount = Count;
    }
  return Best;
}

std::optional<std::string> DominantShiftPolicy::place(Graph &G) const {
  if (auto Err = detail::requireCompileTimeAlignments(G))
    return Err;

  unsigned V = G.VectorLen;
  StreamOffset Dom = StreamOffset::constant(dominantOffset(G));
  StreamOffset StoreOff = G.storeOffset();

  // Lazy placement toward the dominant offset, then one final shift to the
  // store alignment if needed (Figure 6b).
  StreamOffset Result =
      detail::lazyPlace(G.root().Children[0], Dom, V, G.ElemSize);
  if (Result.isDefined() && !StreamOffset::provablyEqual(Result, StoreOff, V))
    wrapWithShift(G.root().Children[0], StoreOff);

  computeStreamOffsets(G);
  return std::nullopt;
}
