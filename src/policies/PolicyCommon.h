//===- policies/PolicyCommon.h - Shared helpers for placement policies ---===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal helpers shared by the policy implementations. Not part of the
/// public API.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_POLICIES_POLICYCOMMON_H
#define SIMDIZE_POLICIES_POLICYCOMMON_H

#include "reorg/ReorgGraph.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>

namespace simdize {
namespace policies {
namespace detail {

/// Invokes \p Fn on the owning slot of every Load node below \p Slot
/// (inclusive). The slot reference lets \p Fn wrap the load in place.
void forEachLoadSlot(
    std::unique_ptr<reorg::Node> &Slot,
    const std::function<void(std::unique_ptr<reorg::Node> &)> &Fn);

/// Returns an error when any access of \p G (loads or store) has a runtime
/// alignment; eager-, lazy-, and dominant-shift require compile-time
/// offsets because their shift directions depend on actual values.
std::optional<std::string> requireCompileTimeAlignments(const reorg::Graph &G);

/// Lazy placement engine: places shifts bottom-up so that every vop's
/// inputs become relatively aligned *on a lane boundary*, retargeting
/// conflicting (or lane-misaligned, for non-naturally-aligned arrays)
/// children to \p Target. Returns the offset of the subtree rooted at
/// \p Slot after placement. Used by both lazy-shift (Target = store
/// offset) and dominant-shift (Target = dominant offset); Target must be a
/// lane multiple.
reorg::StreamOffset lazyPlace(std::unique_ptr<reorg::Node> &Slot,
                              const reorg::StreamOffset &Target, unsigned V,
                              unsigned ElemSize);

/// The store alignment when it is a usable compute target (a lane
/// multiple), offset 0 otherwise — the fallback that keeps eager/lazy
/// correct for non-naturally-aligned stores.
reorg::StreamOffset laneTargetFor(const reorg::Graph &G);

/// Whether \p O is a compile-time offset on a lane boundary (a multiple of
/// the element size \p ElemSize), i.e. usable as a vop input offset. The
/// single definition shared by placement (lazyPlace) and the count-only
/// prediction mirrors, so the two sides cannot drift on the lane test.
bool isLaneMultiple(const reorg::StreamOffset &O, unsigned ElemSize);

} // namespace detail
} // namespace policies
} // namespace simdize

#endif // SIMDIZE_POLICIES_POLICYCOMMON_H
