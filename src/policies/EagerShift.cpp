//===- policies/EagerShift.cpp --------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "policies/Policies.h"
#include "policies/PolicyCommon.h"

using namespace simdize;
using namespace simdize::policies;
using namespace simdize::reorg;

std::optional<std::string> EagerShiftPolicy::place(Graph &G) const {
  if (auto Err = detail::requireCompileTimeAlignments(G))
    return Err;

  unsigned V = G.VectorLen;
  StreamOffset StoreOff = G.storeOffset();
  // Shift each load stream directly to the alignment of the store; loads
  // that already match need no shift, and every vop then sees uniform
  // offsets. A non-lane-multiple store alignment (non-naturally-aligned
  // array) cannot host arithmetic, so the loads target offset 0 instead
  // and one final shift realigns the result for the store.
  StreamOffset Target = detail::laneTargetFor(G);

  detail::forEachLoadSlot(
      G.root().Children[0], [&](std::unique_ptr<Node> &Slot) {
        StreamOffset O = offsetOfAccess(Slot->Arr, Slot->ElemOffset, V);
        if (StreamOffset::provablyEqual(O, Target, V))
          return;
        wrapWithShift(Slot, Target);
      });

  computeStreamOffsets(G);
  const StreamOffset &Src = G.root().child(0).Offset;
  if (Src.isDefined() && !StreamOffset::provablyEqual(Src, StoreOff, V)) {
    wrapWithShift(G.root().Children[0], StoreOff);
    computeStreamOffsets(G);
  }
  return std::nullopt;
}
