//===- policies/ShiftPolicy.cpp -------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "policies/ShiftPolicy.h"

#include "policies/Policies.h"
#include "support/Debug.h"

using namespace simdize;
using namespace simdize::policies;

const char *policies::policyName(PolicyKind Kind) {
  switch (Kind) {
  case PolicyKind::Zero:
    return "ZERO";
  case PolicyKind::Eager:
    return "EAGER";
  case PolicyKind::Lazy:
    return "LAZY";
  case PolicyKind::Dominant:
    return "DOM";
  }
  simdize_unreachable("unknown policy kind");
}

std::unique_ptr<ShiftPolicy> policies::createPolicy(PolicyKind Kind) {
  switch (Kind) {
  case PolicyKind::Zero:
    return std::make_unique<ZeroShiftPolicy>();
  case PolicyKind::Eager:
    return std::make_unique<EagerShiftPolicy>();
  case PolicyKind::Lazy:
    return std::make_unique<LazyShiftPolicy>();
  case PolicyKind::Dominant:
    return std::make_unique<DominantShiftPolicy>();
  }
  simdize_unreachable("unknown policy kind");
}

std::vector<PolicyKind> policies::allPolicies() {
  return {PolicyKind::Zero, PolicyKind::Eager, PolicyKind::Lazy,
          PolicyKind::Dominant};
}
