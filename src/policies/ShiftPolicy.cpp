//===- policies/ShiftPolicy.cpp -------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "policies/ShiftPolicy.h"

#include "policies/Policies.h"
#include "support/Debug.h"

using namespace simdize;
using namespace simdize::policies;

const char *policies::policyName(PolicyKind Kind) {
  switch (Kind) {
  case PolicyKind::Zero:
    return "ZERO";
  case PolicyKind::Eager:
    return "EAGER";
  case PolicyKind::Lazy:
    return "LAZY";
  case PolicyKind::Dominant:
    return "DOM";
  case PolicyKind::Optimal:
    return "OPT";
  }
  simdize_unreachable("unknown policy kind");
}

const char *policies::policyCliName(PolicyKind Kind) {
  switch (Kind) {
  case PolicyKind::Zero:
    return "zero";
  case PolicyKind::Eager:
    return "eager";
  case PolicyKind::Lazy:
    return "lazy";
  case PolicyKind::Dominant:
    return "dom";
  case PolicyKind::Optimal:
    return "optimal";
  }
  simdize_unreachable("unknown policy kind");
}

std::optional<PolicyKind> policies::parsePolicyCliName(const std::string &Name) {
  for (PolicyKind Kind : allPolicies())
    if (Name == policyCliName(Kind))
      return Kind;
  return std::nullopt;
}

std::unique_ptr<ShiftPolicy> policies::createPolicy(PolicyKind Kind,
                                                    bool SoftwarePipelining) {
  switch (Kind) {
  case PolicyKind::Zero:
    return std::make_unique<ZeroShiftPolicy>();
  case PolicyKind::Eager:
    return std::make_unique<EagerShiftPolicy>();
  case PolicyKind::Lazy:
    return std::make_unique<LazyShiftPolicy>();
  case PolicyKind::Dominant:
    return std::make_unique<DominantShiftPolicy>();
  case PolicyKind::Optimal:
    return std::make_unique<OptimalShiftPolicy>(SoftwarePipelining);
  }
  simdize_unreachable("unknown policy kind");
}

std::vector<PolicyKind> policies::allPolicies() {
  return {PolicyKind::Zero, PolicyKind::Eager, PolicyKind::Lazy,
          PolicyKind::Dominant, PolicyKind::Optimal};
}

std::vector<PolicyKind> policies::paperPolicies() {
  return {PolicyKind::Zero, PolicyKind::Eager, PolicyKind::Lazy,
          PolicyKind::Dominant};
}
