//===- policies/PolicyCommon.cpp ------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "policies/PolicyCommon.h"

#include "ir/Array.h"
#include "support/Debug.h"
#include "support/Format.h"

using namespace simdize;
using namespace simdize::policies;
using namespace simdize::reorg;

void detail::forEachLoadSlot(
    std::unique_ptr<Node> &Slot,
    const std::function<void(std::unique_ptr<Node> &)> &Fn) {
  if (Slot->getKind() == NodeKind::Load) {
    Fn(Slot);
    return;
  }
  for (auto &C : Slot->Children)
    forEachLoadSlot(C, Fn);
}

std::optional<std::string>
detail::requireCompileTimeAlignments(const Graph &G) {
  std::optional<std::string> Err;
  // Collect the store and every load; any runtime offset disqualifies.
  auto Check = [&](const ir::Array *A) {
    if (!A->isAlignmentKnown() && !Err)
      Err = strf("alignment of array '%s' is not known at compile time",
                 A->getName().c_str());
  };
  Check(G.root().Arr);
  std::function<void(const Node &)> Walk = [&](const Node &N) {
    if (N.getKind() == NodeKind::Load)
      Check(N.Arr);
    for (const auto &C : N.Children)
      Walk(*C);
  };
  Walk(G.root());
  return Err;
}

StreamOffset detail::lazyPlace(std::unique_ptr<Node> &Slot,
                               const StreamOffset &Target, unsigned V,
                               unsigned ElemSize) {
  Node &N = *Slot;
  switch (N.getKind()) {
  case NodeKind::Load:
    return offsetOfAccess(N.Arr, N.ElemOffset, V);
  case NodeKind::Splat:
    return StreamOffset::undef();
  case NodeKind::Op: {
    // Place within the children first, then check relative alignment.
    std::vector<StreamOffset> Offsets;
    Offsets.reserve(N.Children.size());
    for (auto &C : N.Children)
      Offsets.push_back(lazyPlace(C, Target, V, ElemSize));

    const StreamOffset *First = nullptr;
    bool Conflict = false;
    for (const StreamOffset &O : Offsets) {
      if (!O.isDefined())
        continue;
      if (!First)
        First = &O;
      else if (!StreamOffset::provablyEqual(*First, O, V))
        Conflict = true;
    }
    if (!First)
      return StreamOffset::undef();
    // Element-wise arithmetic needs lane-multiple offsets; a uniform but
    // lane-misaligned offset (non-naturally-aligned arrays) forces the
    // shifts here just like a conflict does.
    if (!Conflict && isLaneMultiple(*First, ElemSize))
      return *First;

    // This is the latest point the shifts can be placed. Retarget every
    // defined, non-matching child to Target.
    for (unsigned K = 0; K < N.Children.size(); ++K)
      if (Offsets[K].isDefined() &&
          !StreamOffset::provablyEqual(Offsets[K], Target, V))
        wrapWithShift(N.Children[K], Target);
    return Target;
  }
  case NodeKind::ShiftStream:
  case NodeKind::Store:
    break;
  }
  simdize_unreachable("policy ran on a graph that already contains shifts");
}

StreamOffset detail::laneTargetFor(const Graph &G) {
  if (isLaneMultiple(G.storeOffset(), G.ElemSize))
    return G.storeOffset();
  return StreamOffset::constant(0);
}

bool detail::isLaneMultiple(const StreamOffset &O, unsigned ElemSize) {
  // Stream offsets are normalized into [0, V) when built, but the test
  // must stay correct for any signed constant a caller hands in: C++
  // truncated % keeps the zero-remainder class symmetric around 0, so no
  // separate negative-value handling is needed.
  return O.isConstant() &&
         O.getConstant() % static_cast<int64_t>(ElemSize) == 0;
}
