//===- policies/LazyShift.cpp ---------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "policies/Policies.h"
#include "policies/PolicyCommon.h"

using namespace simdize;
using namespace simdize::policies;
using namespace simdize::reorg;

std::optional<std::string> LazyShiftPolicy::place(Graph &G) const {
  if (auto Err = detail::requireCompileTimeAlignments(G))
    return Err;

  unsigned V = G.VectorLen;
  StreamOffset StoreOff = G.storeOffset();

  // Delay shifts while vop inputs stay relatively aligned; when forced,
  // retarget directly to the store alignment (the eager target, placed as
  // late as possible) — or to offset 0 when the store alignment is not a
  // lane multiple. One final shift under the store if the surviving offset
  // still differs.
  StreamOffset Result = detail::lazyPlace(G.root().Children[0],
                                          detail::laneTargetFor(G), V,
                                          G.ElemSize);
  if (Result.isDefined() && !StreamOffset::provablyEqual(Result, StoreOff, V))
    wrapWithShift(G.root().Children[0], StoreOff);

  computeStreamOffsets(G);
  return std::nullopt;
}
