//===- policies/OptimalShift.cpp - Exact DP shift placement ---------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic program behind OptimalShiftPolicy. States are the constant
/// stream offsets occurring in the statement plus the store offset plus 0
/// (0 guarantees every vop has at least one feasible lane-multiple input
/// target). For each node N and state o, Cost[N][o] is the cheapest way
/// for N's subtree to produce stream offset o:
///
///   Load at natural offset p:  direct only at o = p (cost 0);
///   Op:                        direct at lane-multiple o, every defined
///                              child produces o (sum of child costs);
///   any node:                  one vshiftstream on top of the node's
///                              cheapest *direct* production (two stacked
///                              shifts are never cheaper than one).
///
/// A shift costs 1 plus its operand subtree's cost scaled by the
/// countSteadyShifts multiplier: ×1 under software pipelining, ×2 without
/// it (the standard scheme re-evaluates a shift's operand subtree, so
/// every shift below executes once more per ancestry level). Because that
/// multiplier scales all candidate sub-plans of a subtree equally, local
/// minimization is exact. Pure-splat subtrees are ⊥ and cost nothing;
/// they are skipped entirely. The root answer is Cost[source][storeOff]
/// — constraint (C.2) — and ties break lexicographically by (steady
/// cost, placed nodes, smaller offset, direct before shift), making the
/// plan deterministic so the count-only prediction equals the placement
/// by construction.
///
//===----------------------------------------------------------------------===//

#include "policies/Policies.h"
#include "policies/PolicyCommon.h"
#include "support/Debug.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>

using namespace simdize;
using namespace simdize::policies;
using namespace simdize::reorg;

namespace {

/// One DP cell: cheapest plan for (node, target offset).
struct Sol {
  uint64_t Steady = UINT64_MAX; ///< Steady vshiftpairs, with nesting.
  unsigned Nodes = 0;           ///< vshiftstream nodes placed.
  bool ViaShift = false;        ///< Shift on top of the direct plan?
  int64_t Inner = 0;            ///< ViaShift: offset shifted from.

  bool valid() const { return Steady != UINT64_MAX; }

  /// Lexicographic (steady, nodes): minimal re-execution cost first, then
  /// the sparser placement.
  bool betterThan(const Sol &O) const {
    if (!O.valid())
      return valid();
    if (Steady != O.Steady)
      return Steady < O.Steady;
    return Nodes < O.Nodes;
  }
};

/// Per-node DP table over the shared state set.
struct NodeTable {
  bool Defined = false;          ///< Subtree contains a load.
  std::map<int64_t, Sol> Cells;  ///< Only populated when Defined.
};

struct Solver {
  unsigned V;
  unsigned ElemSize;
  uint64_t Mult; ///< Shift-operand re-evaluation factor: 1 under SP, 2 not.
  std::vector<int64_t> States;
  std::map<const Node *, NodeTable> Tables;

  Solver(const Graph &G, bool SoftwarePipelining)
      : V(G.VectorLen), ElemSize(G.ElemSize), Mult(SoftwarePipelining ? 1 : 2) {
    collectStates(G);
    solve(G.root().child(0));
  }

  /// The finite state set: every load's stream offset, the store offset,
  /// and 0. requireCompileTimeAlignments has run, so every offset is a
  /// constant.
  void collectStates(const Graph &G) {
    States.push_back(0);
    States.push_back(G.storeOffset().getConstant());
    std::function<void(const Node &)> Walk = [&](const Node &N) {
      if (N.getKind() == NodeKind::Load)
        States.push_back(
            offsetOfAccess(N.Arr, N.ElemOffset, V).getConstant());
      for (const auto &C : N.Children)
        Walk(*C);
    };
    Walk(G.root());
    std::sort(States.begin(), States.end());
    States.erase(std::unique(States.begin(), States.end()), States.end());
  }

  /// Cheapest valid direct production of \p N (for the shift-on-top rule);
  /// iteration over Cells visits offsets ascending, so ties already break
  /// toward the smaller inner offset.
  static std::pair<int64_t, Sol>
  bestDirect(const std::map<int64_t, Sol> &Direct) {
    std::pair<int64_t, Sol> Best{0, Sol()};
    for (const auto &[Off, S] : Direct)
      if (S.valid() && S.betterThan(Best.second)) {
        Best.first = Off;
        Best.second = S;
      }
    return Best;
  }

  void solve(const Node &N) {
    NodeTable T;
    // Direct productions, before the shift-on-top alternative.
    std::map<int64_t, Sol> Direct;
    switch (N.getKind()) {
    case NodeKind::Load: {
      T.Defined = true;
      int64_t P = offsetOfAccess(N.Arr, N.ElemOffset, V).getConstant();
      Direct[P] = Sol{0, 0, false, 0};
      break;
    }
    case NodeKind::Splat:
      break; // ⊥: costless, unconstrained, no table.
    case NodeKind::Op: {
      std::vector<const NodeTable *> Kids;
      for (const auto &C : N.Children) {
        solve(*C);
        const NodeTable &CT = Tables[C.get()];
        if (CT.Defined)
          Kids.push_back(&CT);
      }
      if (Kids.empty())
        break; // Pure-splat vop: stays ⊥.
      T.Defined = true;
      for (int64_t O : States) {
        // A vop computes at the common offset of its inputs, which must
        // sit on a lane boundary (the (C.3) lane rule).
        if (!detail::isLaneMultiple(StreamOffset::constant(O), ElemSize))
          continue;
        Sol Sum{0, 0, false, 0};
        for (const NodeTable *K : Kids) {
          const Sol &CS = K->Cells.at(O);
          if (!CS.valid()) {
            Sum.Steady = UINT64_MAX;
            break;
          }
          Sum.Steady += CS.Steady;
          Sum.Nodes += CS.Nodes;
        }
        if (Sum.valid())
          Direct[O] = Sum;
      }
      break;
    }
    case NodeKind::ShiftStream:
    case NodeKind::Store:
      simdize_unreachable("optimal DP runs below the store of a "
                          "shift-free graph");
    }

    if (T.Defined) {
      auto [InnerOff, Inner] = bestDirect(Direct);
      if (!Inner.valid())
        simdize_unreachable("every defined node has a direct plan "
                            "(0 is always a feasible vop target)");
      // One shift on top re-targets the cheapest direct production to any
      // state; the shift executes once, everything below once more per
      // Mult (countSteadyShifts' nesting rule).
      Sol Shifted{1 + Mult * Inner.Steady, 1 + Inner.Nodes, true, InnerOff};
      for (int64_t O : States) {
        auto It = Direct.find(O);
        Sol Best = It != Direct.end() ? It->second : Sol();
        // On a full tie, direct wins: no reason to place a shift that
        // changes nothing.
        if (Shifted.betterThan(Best))
          Best = Shifted;
        T.Cells[O] = Best;
      }
    }
    Tables[&N] = std::move(T);
  }

  /// The statement's answer: the source must reach the store offset
  /// ((C.2)); a ⊥ source satisfies it for free.
  Sol rootSol(const Graph &G) const {
    const Node &Src = G.root().child(0);
    const NodeTable &T = Tables.at(&Src);
    if (!T.Defined)
      return Sol{0, 0, false, 0};
    return T.Cells.at(G.storeOffset().getConstant());
  }

  /// Materializes the chosen plan: wraps slots bottom-up exactly as the
  /// tables dictate. \p O is the offset this subtree must produce.
  void apply(std::unique_ptr<Node> &Slot, int64_t O) {
    const NodeTable &T = Tables.at(Slot.get());
    if (!T.Defined)
      return;
    Sol S = T.Cells.at(O);
    if (!S.valid())
      simdize_unreachable("applying an unreachable DP state");
    int64_t DirectOff = S.ViaShift ? S.Inner : O;
    if (Slot->getKind() == NodeKind::Op)
      for (auto &C : Slot->Children)
        apply(C, DirectOff);
    // Loads produce their natural offset; nothing to do below them.
    if (S.ViaShift)
      wrapWithShift(Slot, StreamOffset::constant(O));
  }
};

} // namespace

std::optional<std::string> OptimalShiftPolicy::place(Graph &G) const {
  if (auto Err = detail::requireCompileTimeAlignments(G))
    return Err;

  Solver S(G, SoftwarePipelining);
  const Node &Src = G.root().child(0);
  if (S.Tables.at(&Src).Defined)
    S.apply(G.root().Children[0], G.storeOffset().getConstant());

  computeStreamOffsets(G);
  return std::nullopt;
}

unsigned OptimalShiftPolicy::minimalSteadyShifts(const Graph &G,
                                                 bool SoftwarePipelining) {
  if (detail::requireCompileTimeAlignments(G))
    simdize_unreachable("optimal DP needs compile-time alignments");
  Solver S(G, SoftwarePipelining);
  return static_cast<unsigned>(S.rootSol(G).Steady);
}

unsigned OptimalShiftPolicy::plannedShiftCount(const Graph &G,
                                               bool SoftwarePipelining) {
  if (detail::requireCompileTimeAlignments(G))
    simdize_unreachable("optimal DP needs compile-time alignments");
  Solver S(G, SoftwarePipelining);
  return S.rootSol(G).Nodes;
}
