//===- policies/ShiftPrediction.cpp - Predicted per-policy shift counts --===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Count-only mirrors of the four placement policies. Each function walks
/// the shift-free reorganization graph and counts the shifts the policy's
/// rules demand, without mutating the graph — deliberately not sharing the
/// placement code paths (forEachLoadSlot / lazyPlace), so a regression in
/// either side shows up as a disagreement the shift-count oracle reports.
///
//===----------------------------------------------------------------------===//

#include "policies/Policies.h"
#include "policies/PolicyCommon.h"
#include "support/Debug.h"

using namespace simdize;
using namespace simdize::policies;
using namespace simdize::reorg;

namespace {

/// Whether the subtree at \p N contains a Load leaf — i.e. whether its
/// stream offset is defined after realignment (a pure-splat subtree is ⊥
/// and satisfies (C.2) without a store shift).
bool hasLoad(const Node &N) {
  if (N.getKind() == NodeKind::Load)
    return true;
  for (const auto &C : N.Children)
    if (hasLoad(*C))
      return true;
  return false;
}

/// Zero-shift: one shift per load leaf not provably at offset 0 (runtime
/// offsets always count — the amount is runtime, the direction fixed),
/// plus one store shift when the realigned source (offset 0) differs from
/// the store alignment.
unsigned predictZero(const Graph &G) {
  unsigned V = G.VectorLen;
  unsigned Count = 0;
  std::function<void(const Node &)> Walk = [&](const Node &N) {
    if (N.getKind() == NodeKind::Load) {
      StreamOffset O = offsetOfAccess(N.Arr, N.ElemOffset, V);
      if (!(O.isConstant() && O.getConstant() == 0))
        ++Count;
    }
    for (const auto &C : N.Children)
      Walk(*C);
  };
  Walk(G.root().child(0));

  if (hasLoad(G.root().child(0)) &&
      !StreamOffset::provablyEqual(StreamOffset::constant(0),
                                   G.storeOffset(), V))
    ++Count;
  return Count;
}

/// Eager-shift: one shift per load leaf whose offset differs from the
/// compute target (the store alignment, or 0 when that is not a lane
/// multiple), plus a final store shift when target and store alignment
/// differ and the source is defined.
unsigned predictEager(const Graph &G) {
  unsigned V = G.VectorLen;
  StreamOffset Target = detail::laneTargetFor(G);
  unsigned Count = 0;
  std::function<void(const Node &)> Walk = [&](const Node &N) {
    if (N.getKind() == NodeKind::Load) {
      StreamOffset O = offsetOfAccess(N.Arr, N.ElemOffset, V);
      if (!StreamOffset::provablyEqual(O, Target, V))
        ++Count;
    }
    for (const auto &C : N.Children)
      Walk(*C);
  };
  Walk(G.root().child(0));

  if (hasLoad(G.root().child(0)) &&
      !StreamOffset::provablyEqual(Target, G.storeOffset(), V))
    ++Count;
  return Count;
}

/// Count-only mirror of detail::lazyPlace: returns the offset the subtree
/// would have after placement and accumulates the shifts placed below.
StreamOffset lazyCount(const Node &N, const StreamOffset &Target, unsigned V,
                       unsigned ElemSize, unsigned &Count) {
  switch (N.getKind()) {
  case NodeKind::Load:
    return offsetOfAccess(N.Arr, N.ElemOffset, V);
  case NodeKind::Splat:
    return StreamOffset::undef();
  case NodeKind::Op: {
    std::vector<StreamOffset> Offsets;
    Offsets.reserve(N.Children.size());
    for (const auto &C : N.Children)
      Offsets.push_back(lazyCount(*C, Target, V, ElemSize, Count));

    const StreamOffset *First = nullptr;
    bool Conflict = false;
    for (const StreamOffset &O : Offsets) {
      if (!O.isDefined())
        continue;
      if (!First)
        First = &O;
      else if (!StreamOffset::provablyEqual(*First, O, V))
        Conflict = true;
    }
    if (!First)
      return StreamOffset::undef();
    bool LaneOK = First->isConstant() &&
                  First->getConstant() % static_cast<int64_t>(ElemSize) == 0;
    if (!Conflict && LaneOK)
      return *First;

    for (const StreamOffset &O : Offsets)
      if (O.isDefined() && !StreamOffset::provablyEqual(O, Target, V))
        ++Count;
    return Target;
  }
  case NodeKind::ShiftStream:
  case NodeKind::Store:
    break;
  }
  simdize_unreachable("prediction runs on shift-free graphs");
}

/// Lazy/dominant shared shape: lazy placement toward \p Target, then one
/// final shift when the surviving offset still differs from the store.
unsigned predictLazyToward(const Graph &G, const StreamOffset &Target) {
  unsigned V = G.VectorLen;
  unsigned Count = 0;
  StreamOffset Result =
      lazyCount(G.root().child(0), Target, V, G.ElemSize, Count);
  if (Result.isDefined() &&
      !StreamOffset::provablyEqual(Result, G.storeOffset(), V))
    ++Count;
  return Count;
}

} // namespace

unsigned policies::predictShiftCount(PolicyKind Kind, const ir::Stmt &S,
                                     unsigned V) {
  Graph G = buildGraph(S, V);
  switch (Kind) {
  case PolicyKind::Zero:
    return predictZero(G);
  case PolicyKind::Eager:
    return predictEager(G);
  case PolicyKind::Lazy:
    return predictLazyToward(G, detail::laneTargetFor(G));
  case PolicyKind::Dominant:
    return predictLazyToward(
        G, StreamOffset::constant(DominantShiftPolicy::dominantOffset(G)));
  }
  simdize_unreachable("unknown policy kind");
}
