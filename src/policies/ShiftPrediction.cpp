//===- policies/ShiftPrediction.cpp - Predicted per-policy shift counts --===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Count-only mirrors of the four placement policies. Each function walks
/// the shift-free reorganization graph and counts the shifts the policy's
/// rules demand, without mutating the graph — deliberately not sharing the
/// placement code paths (forEachLoadSlot / lazyPlace), so a regression in
/// either side shows up as a disagreement the shift-count oracle reports.
/// (The lane-boundary test itself is the shared detail::isLaneMultiple —
/// the two sides must agree on *what* a lane multiple is, just not on how
/// they traverse the tree.) The optimal policy is the exception: its
/// prediction shares the DP solver with placement (see ShiftPolicy.h).
///
/// Every greedy placement produces at most two levels of shift nesting:
/// the inner shifts (at loads or vop inputs) never wrap one another, and
/// only the final store realignment sits above them. The steady-state
/// mirrors exploit that shape: with a store shift present and no software
/// pipelining, each inner shift's operand re-evaluation doubles it once.
///
//===----------------------------------------------------------------------===//

#include "policies/Policies.h"
#include "policies/PolicyCommon.h"
#include "support/Debug.h"

using namespace simdize;
using namespace simdize::policies;
using namespace simdize::reorg;

namespace {

/// Whether the subtree at \p N contains a Load leaf — i.e. whether its
/// stream offset is defined after realignment (a pure-splat subtree is ⊥
/// and satisfies (C.2) without a store shift).
bool hasLoad(const Node &N) {
  if (N.getKind() == NodeKind::Load)
    return true;
  for (const auto &C : N.Children)
    if (hasLoad(*C))
      return true;
  return false;
}

/// A greedy policy's predicted placement shape: inner shifts (all
/// siblings, never nested in each other) plus an optional store
/// realignment above them.
struct PredCounts {
  unsigned Inner = 0;
  bool StoreShift = false;

  /// vshiftstream nodes placed.
  unsigned total() const { return Inner + (StoreShift ? 1 : 0); }

  /// Steady-state vshiftpairs (reorg::countSteadyShifts of the placed
  /// graph): without SP, the store shift re-evaluates its operand
  /// subtree, executing every inner shift twice.
  unsigned steady(bool SoftwarePipelining) const {
    unsigned InnerMult = StoreShift && !SoftwarePipelining ? 2 : 1;
    return (StoreShift ? 1 : 0) + Inner * InnerMult;
  }
};

/// Zero-shift: one shift per load leaf not provably at offset 0 (runtime
/// offsets always count — the amount is runtime, the direction fixed),
/// plus one store shift when the realigned source (offset 0) differs from
/// the store alignment.
PredCounts predictZero(const Graph &G) {
  unsigned V = G.VectorLen;
  PredCounts P;
  std::function<void(const Node &)> Walk = [&](const Node &N) {
    if (N.getKind() == NodeKind::Load) {
      StreamOffset O = offsetOfAccess(N.Arr, N.ElemOffset, V);
      if (!(O.isConstant() && O.getConstant() == 0))
        ++P.Inner;
    }
    for (const auto &C : N.Children)
      Walk(*C);
  };
  Walk(G.root().child(0));

  if (hasLoad(G.root().child(0)) &&
      !StreamOffset::provablyEqual(StreamOffset::constant(0),
                                   G.storeOffset(), V))
    P.StoreShift = true;
  return P;
}

/// Eager-shift: one shift per load leaf whose offset differs from the
/// compute target (the store alignment, or 0 when that is not a lane
/// multiple), plus a final store shift when target and store alignment
/// differ and the source is defined.
PredCounts predictEager(const Graph &G) {
  unsigned V = G.VectorLen;
  StreamOffset Target = detail::laneTargetFor(G);
  PredCounts P;
  std::function<void(const Node &)> Walk = [&](const Node &N) {
    if (N.getKind() == NodeKind::Load) {
      StreamOffset O = offsetOfAccess(N.Arr, N.ElemOffset, V);
      if (!StreamOffset::provablyEqual(O, Target, V))
        ++P.Inner;
    }
    for (const auto &C : N.Children)
      Walk(*C);
  };
  Walk(G.root().child(0));

  if (hasLoad(G.root().child(0)) &&
      !StreamOffset::provablyEqual(Target, G.storeOffset(), V))
    P.StoreShift = true;
  return P;
}

/// Count-only mirror of detail::lazyPlace: returns the offset the subtree
/// would have after placement and accumulates the shifts placed below.
StreamOffset lazyCount(const Node &N, const StreamOffset &Target, unsigned V,
                       unsigned ElemSize, unsigned &Count) {
  switch (N.getKind()) {
  case NodeKind::Load:
    return offsetOfAccess(N.Arr, N.ElemOffset, V);
  case NodeKind::Splat:
    return StreamOffset::undef();
  case NodeKind::Op: {
    std::vector<StreamOffset> Offsets;
    Offsets.reserve(N.Children.size());
    for (const auto &C : N.Children)
      Offsets.push_back(lazyCount(*C, Target, V, ElemSize, Count));

    const StreamOffset *First = nullptr;
    bool Conflict = false;
    for (const StreamOffset &O : Offsets) {
      if (!O.isDefined())
        continue;
      if (!First)
        First = &O;
      else if (!StreamOffset::provablyEqual(*First, O, V))
        Conflict = true;
    }
    if (!First)
      return StreamOffset::undef();
    if (!Conflict && detail::isLaneMultiple(*First, ElemSize))
      return *First;

    for (const StreamOffset &O : Offsets)
      if (O.isDefined() && !StreamOffset::provablyEqual(O, Target, V))
        ++Count;
    return Target;
  }
  case NodeKind::ShiftStream:
  case NodeKind::Store:
    break;
  }
  simdize_unreachable("prediction runs on shift-free graphs");
}

/// Lazy/dominant shared shape: lazy placement toward \p Target, then one
/// final shift when the surviving offset still differs from the store.
PredCounts predictLazyToward(const Graph &G, const StreamOffset &Target) {
  unsigned V = G.VectorLen;
  PredCounts P;
  StreamOffset Result =
      lazyCount(G.root().child(0), Target, V, G.ElemSize, P.Inner);
  if (Result.isDefined() &&
      !StreamOffset::provablyEqual(Result, G.storeOffset(), V))
    P.StoreShift = true;
  return P;
}

/// Dispatches to a greedy policy's count mirror; Optimal is handled by the
/// callers (its predictions go through the DP solver, not a mirror).
PredCounts predictGreedy(PolicyKind Kind, const Graph &G) {
  switch (Kind) {
  case PolicyKind::Zero:
    return predictZero(G);
  case PolicyKind::Eager:
    return predictEager(G);
  case PolicyKind::Lazy:
    return predictLazyToward(G, detail::laneTargetFor(G));
  case PolicyKind::Dominant:
    return predictLazyToward(
        G, StreamOffset::constant(DominantShiftPolicy::dominantOffset(G)));
  case PolicyKind::Optimal:
    break;
  }
  simdize_unreachable("not a greedy policy");
}

} // namespace

unsigned policies::predictShiftCount(PolicyKind Kind, const ir::Stmt &S,
                                     unsigned V, bool SoftwarePipelining) {
  Graph G = buildGraph(S, V);
  return predictShiftCount(Kind, G, SoftwarePipelining);
}

unsigned policies::predictShiftCount(PolicyKind Kind, const Graph &ShiftFree,
                                     bool SoftwarePipelining) {
  if (Kind == PolicyKind::Optimal)
    return OptimalShiftPolicy::plannedShiftCount(ShiftFree,
                                                 SoftwarePipelining);
  return predictGreedy(Kind, ShiftFree).total();
}

unsigned policies::predictSteadyShiftCount(PolicyKind Kind,
                                           const Graph &ShiftFree,
                                           bool SoftwarePipelining) {
  if (Kind == PolicyKind::Optimal)
    return OptimalShiftPolicy::minimalSteadyShifts(ShiftFree,
                                                   SoftwarePipelining);
  return predictGreedy(Kind, ShiftFree).steady(SoftwarePipelining);
}
