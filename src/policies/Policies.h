//===- policies/Policies.h - The four placement policy implementations ---===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete shift placement policies (Section 3.4). Exposed as classes —
/// rather than only through createPolicy — so tests can exercise policy
/// internals such as dominant-offset selection.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_POLICIES_POLICIES_H
#define SIMDIZE_POLICIES_POLICIES_H

#include "policies/ShiftPolicy.h"

namespace simdize {
namespace policies {

/// Zero-shift: realign every misaligned load stream to offset 0 right
/// after the load, and the stored stream from 0 to the store alignment
/// right before the store. Least optimized, but the only policy whose
/// shift directions are compile-time fixed, hence the only one valid for
/// runtime alignments.
class ZeroShiftPolicy : public ShiftPolicy {
public:
  PolicyKind getKind() const override { return PolicyKind::Zero; }
  bool supportsRuntimeAlignment() const override { return true; }
  std::optional<std::string> place(reorg::Graph &G) const override;
};

/// Eager-shift: realign every load stream directly to the store alignment.
class EagerShiftPolicy : public ShiftPolicy {
public:
  PolicyKind getKind() const override { return PolicyKind::Eager; }
  std::optional<std::string> place(reorg::Graph &G) const override;
};

/// Lazy-shift: like eager-shift, but shifts are pushed up the tree while
/// the inputs of each vop remain relatively aligned (Figure 6a).
class LazyShiftPolicy : public ShiftPolicy {
public:
  PolicyKind getKind() const override { return PolicyKind::Lazy; }
  std::optional<std::string> place(reorg::Graph &G) const override;
};

/// Dominant-shift: like lazy-shift, but streams are realigned to the most
/// frequent offset in the graph instead of the store alignment, with one
/// final shift before the store (Figure 6b).
class DominantShiftPolicy : public ShiftPolicy {
public:
  PolicyKind getKind() const override { return PolicyKind::Dominant; }
  std::optional<std::string> place(reorg::Graph &G) const override;

  /// The most frequent compile-time offset among the graph's load streams
  /// and its store; ties break toward the smaller offset. Exposed for
  /// testing.
  static int64_t dominantOffset(const reorg::Graph &G);
};

/// Optimal-shift (beyond the paper, ROADMAP item 4): exact minimization of
/// the steady-state vshiftpair count by dynamic programming over the
/// expression tree. For every node and every reachable "current offset"
/// state — the constant stream offsets occurring in the statement, the
/// store offset, and the fallback 0 — the DP computes the cheapest way for
/// the subtree to produce that offset, either directly (a vop at a
/// lane-multiple offset all defined children reach, or a load at its
/// natural offset) or by one vshiftstream on top of the subtree's cheapest
/// direct production. The cost model is exactly reorg::countSteadyShifts:
/// under software pipelining every placed shift executes once per steady
/// iteration; without it a shift's operand subtree is re-evaluated, so a
/// nested shift counts double per level of shift ancestry. Ties break
/// toward fewer placed nodes, then smaller offsets, keeping the plan — and
/// hence the shared prediction mirror — deterministic. Requires
/// compile-time alignments, like every policy but zero-shift.
class OptimalShiftPolicy : public ShiftPolicy {
public:
  explicit OptimalShiftPolicy(bool SoftwarePipelining = false)
      : SoftwarePipelining(SoftwarePipelining) {}
  PolicyKind getKind() const override { return PolicyKind::Optimal; }
  std::optional<std::string> place(reorg::Graph &G) const override;

  /// The DP's minimal steady-state vshiftpair count for the shift-free
  /// graph \p G — the certified floor every placement is measured
  /// against. Requires compile-time alignments.
  static unsigned minimalSteadyShifts(const reorg::Graph &G,
                                      bool SoftwarePipelining);

  /// vshiftstream nodes the DP's chosen plan places on \p G (the
  /// count-only side of predictShiftCount for this policy; shares the
  /// solver with place(), see ShiftPolicy.h).
  static unsigned plannedShiftCount(const reorg::Graph &G,
                                    bool SoftwarePipelining);

private:
  bool SoftwarePipelining;
};

} // namespace policies
} // namespace simdize

#endif // SIMDIZE_POLICIES_POLICIES_H
