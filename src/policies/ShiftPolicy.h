//===- policies/ShiftPolicy.h - Shift placement policy interface ---------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four vshiftstream placement policies of Section 3.4. Each policy
/// transforms a shift-free data reorganization graph into a valid one; they
/// differ in how many shifts they insert:
///
///   zero-shift     every misaligned stream realigned to offset 0 — the
///                  only policy applicable to runtime alignments;
///   eager-shift    every load realigned directly to the store alignment;
///   lazy-shift     shifts delayed while inputs stay relatively aligned;
///   dominant-shift streams realigned to the graph's most frequent offset.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_POLICIES_SHIFTPOLICY_H
#define SIMDIZE_POLICIES_SHIFTPOLICY_H

#include "reorg/ReorgGraph.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace simdize {

namespace ir {
class Stmt;
} // namespace ir

namespace policies {

/// Identifies a policy; the harness reports results under these names.
enum class PolicyKind {
  Zero,
  Eager,
  Lazy,
  Dominant,
};

/// Printable policy name ("ZERO", "EAGER", "LAZY", "DOM") as used in the
/// paper's figures and tables.
const char *policyName(PolicyKind Kind);

/// Abstract shift placement policy.
class ShiftPolicy {
public:
  virtual ~ShiftPolicy() = default;

  virtual PolicyKind getKind() const = 0;

  /// Whether the policy can handle runtime alignments. Only zero-shift can:
  /// its shift directions (loads left, stores right) are fixed at compile
  /// time regardless of the actual offsets (Section 4.4).
  virtual bool supportsRuntimeAlignment() const { return false; }

  /// Inserts vshiftstream nodes to make \p G valid, then recomputes stream
  /// offsets. \returns std::nullopt on success, or a reason the policy is
  /// inapplicable (e.g. runtime alignments under eager-shift).
  virtual std::optional<std::string> place(reorg::Graph &G) const = 0;

  const char *name() const { return policyName(getKind()); }
};

/// Predicts, without running a placement, how many vshiftstream nodes
/// placing \p Kind on the shift-free graph of \p S inserts (Section 3.4):
/// zero-shift realigns every misaligned load leaf plus the store; eager
/// every leaf off the store alignment plus a final store shift when the
/// compute target had to fall back to offset 0; lazy/dominant the
/// minimized placement of Figure 6. Implemented as an independent
/// count-only mirror of the placement rules, so the property-oracle layer
/// can hold each policy to its own contract. The policy must be
/// applicable to \p S (compile-time alignments for all but zero-shift).
unsigned predictShiftCount(PolicyKind Kind, const ir::Stmt &S, unsigned V);

/// Creates the policy implementation for \p Kind.
std::unique_ptr<ShiftPolicy> createPolicy(PolicyKind Kind);

/// All policies, in the paper's order.
std::vector<PolicyKind> allPolicies();

} // namespace policies
} // namespace simdize

#endif // SIMDIZE_POLICIES_SHIFTPOLICY_H
