//===- policies/ShiftPolicy.h - Shift placement policy interface ---------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four vshiftstream placement policies of Section 3.4. Each policy
/// transforms a shift-free data reorganization graph into a valid one; they
/// differ in how many shifts they insert:
///
///   zero-shift     every misaligned stream realigned to offset 0 — the
///                  only policy applicable to runtime alignments;
///   eager-shift    every load realigned directly to the store alignment;
///   lazy-shift     shifts delayed while inputs stay relatively aligned;
///   dominant-shift streams realigned to the graph's most frequent offset.
///
/// Beyond the paper, optimal-shift (ROADMAP item 4) replaces the greedy
/// rules with a dynamic program over the expression tree that provably
/// minimizes the steady-state vshiftpair count reorg::countSteadyShifts
/// models — including the non-SP 2× re-evaluation of shift operand
/// subtrees, which makes the optimum depend on the reuse scheme.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_POLICIES_SHIFTPOLICY_H
#define SIMDIZE_POLICIES_SHIFTPOLICY_H

#include "reorg/ReorgGraph.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace simdize {

namespace ir {
class Stmt;
} // namespace ir

namespace policies {

/// Identifies a policy; the harness reports results under these names.
enum class PolicyKind {
  Zero,
  Eager,
  Lazy,
  Dominant,
  Optimal, ///< Exact DP placement (beyond the paper).
};

/// Printable policy name ("ZERO", "EAGER", "LAZY", "DOM", "OPT") as used
/// in the paper's figures and tables.
const char *policyName(PolicyKind Kind);

/// The CLI spelling of \p Kind ("zero", "eager", "lazy", "dom",
/// "optimal") — the values simdize-tool and simdize-fuzz accept for
/// --policy=; parsePolicyCliName is the shared inverse, so the two tools
/// cannot diverge on the accepted set.
const char *policyCliName(PolicyKind Kind);

/// Parses a --policy= value; std::nullopt for anything outside the
/// policyCliName set (the pipeline-level "auto" mode is not a PolicyKind
/// and is handled by the callers).
std::optional<PolicyKind> parsePolicyCliName(const std::string &Name);

/// Abstract shift placement policy.
class ShiftPolicy {
public:
  virtual ~ShiftPolicy() = default;

  virtual PolicyKind getKind() const = 0;

  /// Whether the policy can handle runtime alignments. Only zero-shift can:
  /// its shift directions (loads left, stores right) are fixed at compile
  /// time regardless of the actual offsets (Section 4.4).
  virtual bool supportsRuntimeAlignment() const { return false; }

  /// Inserts vshiftstream nodes to make \p G valid, then recomputes stream
  /// offsets. \returns std::nullopt on success, or a reason the policy is
  /// inapplicable (e.g. runtime alignments under eager-shift).
  virtual std::optional<std::string> place(reorg::Graph &G) const = 0;

  const char *name() const { return policyName(getKind()); }
};

/// Predicts, without running a placement, how many vshiftstream nodes
/// placing \p Kind on the shift-free graph of \p S inserts (Section 3.4):
/// zero-shift realigns every misaligned load leaf plus the store; eager
/// every leaf off the store alignment plus a final store shift when the
/// compute target had to fall back to offset 0; lazy/dominant the
/// minimized placement of Figure 6; optimal the DP's chosen plan. For the
/// greedy policies the mirror is an independent count-only walk of the
/// placement rules, so the property-oracle layer can hold each policy to
/// its own contract; for optimal, prediction and placement deliberately
/// share the DP solver (two greedy-equivalent implementations of an exact
/// optimizer cannot be kept tie-break-identical), and the oracle instead
/// cross-checks the optimum against the four greedy policies' counts.
/// \p SoftwarePipelining selects the cost model the optimal DP minimizes
/// (the greedy placements and their counts are SP-independent). The
/// policy must be applicable to \p S (compile-time alignments for all but
/// zero-shift).
unsigned predictShiftCount(PolicyKind Kind, const ir::Stmt &S, unsigned V,
                           bool SoftwarePipelining = false);

/// Overload on a prebuilt shift-free graph of the statement: one
/// runPipeline invocation predicts per statement from the oracle, the
/// decision log, and explainSimdization, and each used to rebuild the
/// graph via reorg::buildGraph; callers on that path build it once and
/// predict from it (reorg::graphBuildCount counts the savings).
unsigned predictShiftCount(PolicyKind Kind, const reorg::Graph &ShiftFree,
                           bool SoftwarePipelining = false);

/// Predicts the steady-state vshiftpair count (reorg::countSteadyShifts)
/// of placing \p Kind on the prebuilt shift-free graph \p ShiftFree —
/// the quantity the optimal policy minimizes and the auto mode selects
/// on. For the greedy policies this mirrors placement nesting; for
/// optimal it is the DP's minimal cost.
unsigned predictSteadyShiftCount(PolicyKind Kind,
                                 const reorg::Graph &ShiftFree,
                                 bool SoftwarePipelining);

/// Creates the policy implementation for \p Kind. \p SoftwarePipelining
/// parameterizes the optimal policy's cost model (under SP every placed
/// shift executes once per steady iteration; without it a shift nested
/// under k shifts executes 2^k times); the paper's four policies ignore
/// it.
std::unique_ptr<ShiftPolicy> createPolicy(PolicyKind Kind,
                                          bool SoftwarePipelining = false);

/// All policies, in the paper's order, plus the beyond-paper optimal
/// placement last.
std::vector<PolicyKind> allPolicies();

/// The paper's four greedy policies only — the baselines optimal-shift is
/// held to by the shift-count oracle and bench_policies.
std::vector<PolicyKind> paperPolicies();

} // namespace policies
} // namespace simdize

#endif // SIMDIZE_POLICIES_SHIFTPOLICY_H
