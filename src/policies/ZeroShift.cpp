//===- policies/ZeroShift.cpp ---------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "policies/Policies.h"
#include "policies/PolicyCommon.h"

using namespace simdize;
using namespace simdize::policies;
using namespace simdize::reorg;

std::optional<std::string> ZeroShiftPolicy::place(Graph &G) const {
  unsigned V = G.VectorLen;
  StreamOffset Zero = StreamOffset::constant(0);

  // (1) Realign every misaligned load stream to offset 0 right after the
  // load. Runtime offsets are always shifted: the shift amount becomes a
  // runtime value, but the direction (left) is fixed.
  detail::forEachLoadSlot(G.root().Children[0],
                          [&](std::unique_ptr<Node> &Slot) {
                            StreamOffset O = offsetOfAccess(
                                Slot->Arr, Slot->ElemOffset, V);
                            if (O.isConstant() && O.getConstant() == 0)
                              return;
                            wrapWithShift(Slot, Zero);
                          });

  // (2) Realign the stored stream from 0 to the store alignment right
  // before the store (direction right; amount may be runtime). A ⊥-offset
  // source (pure splat) satisfies C.2 as-is.
  computeStreamOffsets(G);
  StreamOffset StoreOff = G.storeOffset();
  const StreamOffset &Src = G.root().child(0).Offset;
  if (Src.isDefined() && !StreamOffset::provablyEqual(Src, StoreOff, V))
    wrapWithShift(G.root().Children[0], StoreOff);

  computeStreamOffsets(G);
  return std::nullopt;
}
