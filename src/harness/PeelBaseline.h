//===- harness/PeelBaseline.h - The prior-work loop-peeling baseline -----===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison point the paper's introduction argues against: "in the
/// presence of misaligned references, one common technique is to peel the
/// loop until all memory references inside the loop become aligned [3,4].
/// However, this approach will not simdize the loop in Figure 1 since any
/// peeling scheme can only make at most one reference in the loop
/// aligned."
///
/// Peeling k iterations advances every stream by k*D bytes, so it succeeds
/// exactly when all references share one compile-time alignment class (the
/// loop is "congruent"): k = (V - offset)/D mod B then aligns everything
/// at once. This module implements that baseline faithfully — peeled
/// iterations execute scalar, the remainder is simdized (shift-free) — and
/// reports inapplicability otherwise, so benches can measure how rarely it
/// applies on the paper's loop distributions.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_HARNESS_PEELBASELINE_H
#define SIMDIZE_HARNESS_PEELBASELINE_H

#include "harness/Experiment.h"

namespace simdize {
namespace harness {

/// Result of attempting the peeling baseline.
struct PeelResult {
  bool Applicable = false;
  std::string Reason;      ///< Why it did not apply.
  int64_t PeeledIterations = 0;
  Measurement M;           ///< Valid when Applicable and M.Ok.
};

/// Attempts to vectorize \p L by alignment peeling on target \p Tgt. On
/// success the measurement covers the scalar peeled iterations plus the
/// simdized remainder, and is verified bit-for-bit like every other
/// scheme.
PeelResult runPeelingBaseline(const ir::Loop &L, uint64_t CheckSeed,
                              const Target &Tgt = {});

} // namespace harness
} // namespace simdize

#endif // SIMDIZE_HARNESS_PEELBASELINE_H
