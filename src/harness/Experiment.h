//===- harness/Experiment.h - Measuring simdization schemes ---------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation driver of Section 5: a *scheme* is a shift placement
/// policy combined with a reuse mechanism (none, predictive commoning, or
/// software pipelining) and the MemNorm / OffsetReassoc toggles. Running a
/// scheme on a loop simdizes it, optimizes it, verifies it bit-for-bit
/// against the scalar oracle, and reports operations per datum and speedup
/// against the ideal scalar count, alongside the Section 5.3 lower bound.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_HARNESS_EXPERIMENT_H
#define SIMDIZE_HARNESS_EXPERIMENT_H

#include "pipeline/Pipeline.h"
#include "policies/ShiftPolicy.h"
#include "sim/Machine.h"
#include "synth/LoopSynth.h"
#include "synth/LowerBound.h"

#include <string>
#include <vector>

namespace simdize {

namespace ir {
class Loop;
} // namespace ir

namespace harness {

/// How cross-iteration reuse is exploited.
enum class ReuseKind {
  None, ///< Figure 7 codegen as-is.
  PC,   ///< Predictive commoning post-pass.
  SP,   ///< Software-pipelined codegen (Figure 10).
};

/// Builds the facade request for one of the paper's evaluation schemes: a
/// placement policy plus a reuse mechanism on target \p Tgt. PC maps to
/// the predictive-commoning optimization level, SP to the Figure 10
/// codegen option; both run the standard cleanup pipeline, as Section 5.5
/// does. Tweak MemNorm / OffsetReassoc on the returned request directly.
pipeline::CompileRequest scheme(policies::PolicyKind Policy, ReuseKind Reuse,
                                const Target &Tgt = {});

/// The reuse mechanism a request employs (SP wins over PC when a caller
/// enabled both, which no paper scheme does).
ReuseKind reuseOf(const pipeline::CompileRequest &C);

/// Paper-style scheme name: "ZERO", "LAZY-pc", "DOM-sp", ... with an
/// "@32"/"@64" suffix for non-default targets.
std::string schemeName(const pipeline::CompileRequest &C);

/// Result of one scheme on one loop.
struct Measurement {
  bool Ok = false;
  std::string Error;

  double Opd = 0.0;        ///< Measured operations per datum.
  double OpdReorg = 0.0;   ///< Measured data reorganization share.
  double OpdLB = 0.0;      ///< Section 5.3 lower bound.
  double OpdLBShift = 0.0; ///< The bound's reorganization share.
  double Speedup = 0.0;    ///< Ideal scalar opd / measured opd.
  double SpeedupLB = 0.0;  ///< Ideal scalar opd / lower bound.
  double ScalarOpd = 0.0;  ///< The SEQ reference.
  unsigned StaticShifts = 0; ///< vshiftstream nodes the policy placed.
  sim::OpCounts Counts;
  int64_t Datums = 0;
};

/// Runs \p S on the already-synthesized \p L (offset reassociation, when
/// requested, happens on the pipeline's private clone).
Measurement runSchemeOnLoop(const ir::Loop &L,
                            const pipeline::CompileRequest &S,
                            uint64_t CheckSeed);

/// Synthesizes the loop for \p P and runs \p S on it.
Measurement runScheme(const synth::SynthParams &P,
                      const pipeline::CompileRequest &S);

/// Aggregate over a benchmark of LoopCount loops with identical parameters
/// (seeds vary), as in Section 5.5.
struct SuiteResult {
  unsigned LoopCount = 0;
  unsigned Failures = 0;
  std::string FirstError;

  double HarmonicSpeedup = 0.0;
  double HarmonicSpeedupLB = 0.0;
  double MeanOpd = 0.0;
  double MeanOpdLB = 0.0;
  /// Stacked-bar components (Figure 11/12): lower bound, reorganization
  /// overhead above the bound, and everything else.
  double MeanShiftOverhead = 0.0;
  double MeanCompilerOverhead = 0.0;
  double MeanScalarOpd = 0.0;
};

/// Runs \p S over \p LoopCount loops drawn from \p Base (per-loop seeds via
/// benchmarkLoopSeed).
SuiteResult runSuite(const synth::SynthParams &Base, unsigned LoopCount,
                     const pipeline::CompileRequest &S);

/// Harmonic mean; zero for empty input.
double harmonicMean(const std::vector<double> &Values);

} // namespace harness
} // namespace simdize

#endif // SIMDIZE_HARNESS_EXPERIMENT_H
