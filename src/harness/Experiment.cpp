//===- harness/Experiment.cpp ---------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"

#include "ir/Loop.h"
#include "ir/ScalarCost.h"

#include <cmath>

using namespace simdize;
using namespace simdize::harness;

pipeline::CompileRequest harness::scheme(policies::PolicyKind Policy,
                                         ReuseKind Reuse, const Target &Tgt) {
  pipeline::CompileRequest C;
  C.Simd.Policy = Policy;
  C.Simd.SoftwarePipelining = Reuse == ReuseKind::SP;
  C.Simd.Tgt = Tgt;
  C.Opt = Reuse == ReuseKind::PC ? pipeline::OptLevel::PC
                                 : pipeline::OptLevel::Std;
  return C;
}

ReuseKind harness::reuseOf(const pipeline::CompileRequest &C) {
  if (C.Simd.SoftwarePipelining)
    return ReuseKind::SP;
  if (C.Opt == pipeline::OptLevel::PC)
    return ReuseKind::PC;
  return ReuseKind::None;
}

std::string harness::schemeName(const pipeline::CompileRequest &C) {
  std::string Name = policies::policyName(C.Simd.Policy);
  switch (reuseOf(C)) {
  case ReuseKind::None:
    break;
  case ReuseKind::PC:
    Name += "-pc";
    break;
  case ReuseKind::SP:
    Name += "-sp";
    break;
  }
  if (C.Simd.Tgt.VectorLen != 16)
    Name += "@" + std::to_string(C.Simd.Tgt.VectorLen);
  return Name;
}

Measurement harness::runSchemeOnLoop(const ir::Loop &L,
                                     const pipeline::CompileRequest &S,
                                     uint64_t CheckSeed) {
  Measurement M;
  const unsigned V = S.Simd.vectorLen();

  pipeline::CompileResult R = pipeline::runPipeline(L, S);
  if (!R.ok()) {
    M.Error = R.error();
    return M;
  }

  sim::CheckResult Check =
      pipeline::checkCompiled(L, R, CheckSeed, schemeName(S));
  if (!Check.Ok) {
    M.Error = Check.Message;
    return M;
  }

  // Measurements are taken against the loop the program was compiled from
  // (the reassociated clone when the scheme asked for it).
  const ir::Loop &Run = R.ReassocLoop ? *R.ReassocLoop : L;

  M.Ok = true;
  M.Counts = Check.Stats.Counts;
  M.Datums = Run.getUpperBound() * static_cast<int64_t>(Run.getStmts().size());
  M.Opd = M.Counts.opd(M.Datums);
  M.OpdReorg = static_cast<double>(M.Counts.Reorg) /
               static_cast<double>(M.Datums);

  synth::LowerBound LB = synth::computeLowerBound(Run, V, S.Simd.Policy);
  unsigned B = V / Run.getElemSize();
  M.OpdLB = LB.opd(B, static_cast<unsigned>(Run.getStmts().size()));
  M.OpdLBShift = static_cast<double>(LB.Shifts) /
                 (static_cast<double>(B) *
                  static_cast<double>(Run.getStmts().size()));
  M.ScalarOpd = ir::scalarOpd(Run);
  M.Speedup = M.Opd > 0.0 ? M.ScalarOpd / M.Opd : 0.0;
  M.SpeedupLB = M.OpdLB > 0.0 ? M.ScalarOpd / M.OpdLB : 0.0;
  M.StaticShifts = R.Simd.ShiftCount;
  return M;
}

Measurement harness::runScheme(const synth::SynthParams &P,
                               const pipeline::CompileRequest &S) {
  synth::SynthParams Params = P;
  // The loop must be synthesized for the width it will be compiled at.
  Params.VectorLen = S.Simd.vectorLen();
  return runSchemeOnLoop(synth::synthesizeLoop(Params), S,
                         P.Seed ^ 0xc0ffee);
}

SuiteResult harness::runSuite(const synth::SynthParams &Base,
                              unsigned LoopCount,
                              const pipeline::CompileRequest &S) {
  SuiteResult Result;
  Result.LoopCount = LoopCount;

  std::vector<double> Speedups, SpeedupLBs;
  unsigned Skipped = 0;
  for (unsigned K = 0; K < LoopCount; ++K) {
    synth::SynthParams P = Base;
    P.Seed = synth::benchmarkLoopSeed(Base.Seed, K);
    Measurement M = runScheme(P, S);
    if (!M.Ok) {
      ++Result.Failures;
      if (Result.FirstError.empty())
        Result.FirstError = M.Error;
      continue;
    }
    // opd is NaN when the loop executed zero datums (the opd-unset
    // convention): the run verified, but it carries no rate to average.
    if (std::isnan(M.Opd)) {
      ++Skipped;
      continue;
    }
    Speedups.push_back(M.Speedup);
    SpeedupLBs.push_back(M.SpeedupLB);
    Result.MeanOpd += M.Opd;
    Result.MeanOpdLB += M.OpdLB;
    double ShiftOver = M.OpdReorg - M.OpdLBShift;
    if (ShiftOver < 0.0)
      ShiftOver = 0.0;
    Result.MeanShiftOverhead += ShiftOver;
    Result.MeanCompilerOverhead += M.Opd - M.OpdLB - ShiftOver;
    Result.MeanScalarOpd += M.ScalarOpd;
  }

  unsigned Succeeded = LoopCount - Result.Failures - Skipped;
  if (Succeeded > 0) {
    Result.MeanOpd /= Succeeded;
    Result.MeanOpdLB /= Succeeded;
    Result.MeanShiftOverhead /= Succeeded;
    Result.MeanCompilerOverhead /= Succeeded;
    Result.MeanScalarOpd /= Succeeded;
    Result.HarmonicSpeedup = harmonicMean(Speedups);
    Result.HarmonicSpeedupLB = harmonicMean(SpeedupLBs);
  }
  return Result;
}

double harness::harmonicMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Denom = 0.0;
  for (double V : Values) {
    if (V <= 0.0)
      return 0.0;
    Denom += 1.0 / V;
  }
  return static_cast<double>(Values.size()) / Denom;
}
