//===- harness/Experiment.cpp ---------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"

#include "codegen/Simdizer.h"
#include "ir/Loop.h"
#include "ir/ScalarCost.h"
#include "opt/OffsetReassoc.h"
#include "opt/Pipeline.h"
#include "sim/Checker.h"
#include "vir/VVerifier.h"

#include <cmath>

using namespace simdize;
using namespace simdize::harness;

std::string Scheme::name() const {
  std::string Name = policies::policyName(Policy);
  switch (Reuse) {
  case ReuseKind::None:
    break;
  case ReuseKind::PC:
    Name += "-pc";
    break;
  case ReuseKind::SP:
    Name += "-sp";
    break;
  }
  return Name;
}

Measurement harness::runSchemeOnLoop(ir::Loop L, const Scheme &S,
                                     uint64_t CheckSeed) {
  Measurement M;
  const unsigned V = 16;

  if (S.OffsetReassoc)
    opt::runOffsetReassociation(L, V);

  codegen::SimdizeOptions Opts;
  Opts.Policy = S.Policy;
  Opts.SoftwarePipelining = S.Reuse == ReuseKind::SP;
  Opts.VectorLen = V;
  codegen::SimdizeResult R = codegen::simdize(L, Opts);
  if (!R.ok()) {
    M.Error = R.Error;
    return M;
  }

  opt::OptConfig Config;
  Config.CSE = true;
  Config.MemNorm = S.MemNorm;
  Config.PC = S.Reuse == ReuseKind::PC;
  Config.UnrollCopies = true;
  opt::runOptPipeline(*R.Program, Config);

  if (auto Err = vir::verifyProgram(*R.Program)) {
    M.Error = "optimized program is invalid: " + *Err;
    return M;
  }

  sim::CheckContext Ctx{S.name()};
  sim::CheckResult Check =
      sim::checkSimdization(L, *R.Program, CheckSeed, &Ctx);
  if (!Check.Ok) {
    M.Error = Check.Message;
    return M;
  }

  M.Ok = true;
  M.Counts = Check.Stats.Counts;
  M.Datums = L.getUpperBound() * static_cast<int64_t>(L.getStmts().size());
  M.Opd = M.Counts.opd(M.Datums);
  M.OpdReorg = static_cast<double>(M.Counts.Reorg) /
               static_cast<double>(M.Datums);

  synth::LowerBound LB = synth::computeLowerBound(L, V, S.Policy);
  unsigned B = V / L.getElemSize();
  M.OpdLB = LB.opd(B, static_cast<unsigned>(L.getStmts().size()));
  M.OpdLBShift = static_cast<double>(LB.Shifts) /
                 (static_cast<double>(B) *
                  static_cast<double>(L.getStmts().size()));
  M.ScalarOpd = ir::scalarOpd(L);
  M.Speedup = M.Opd > 0.0 ? M.ScalarOpd / M.Opd : 0.0;
  M.SpeedupLB = M.OpdLB > 0.0 ? M.ScalarOpd / M.OpdLB : 0.0;
  M.StaticShifts = R.ShiftCount;
  return M;
}

Measurement harness::runScheme(const synth::SynthParams &P, const Scheme &S) {
  return runSchemeOnLoop(synth::synthesizeLoop(P), S, P.Seed ^ 0xc0ffee);
}

SuiteResult harness::runSuite(const synth::SynthParams &Base,
                              unsigned LoopCount, const Scheme &S) {
  SuiteResult Result;
  Result.LoopCount = LoopCount;

  std::vector<double> Speedups, SpeedupLBs;
  unsigned Skipped = 0;
  for (unsigned K = 0; K < LoopCount; ++K) {
    synth::SynthParams P = Base;
    P.Seed = synth::benchmarkLoopSeed(Base.Seed, K);
    Measurement M = runScheme(P, S);
    if (!M.Ok) {
      ++Result.Failures;
      if (Result.FirstError.empty())
        Result.FirstError = M.Error;
      continue;
    }
    // opd is NaN when the loop executed zero datums (the opd-unset
    // convention): the run verified, but it carries no rate to average.
    if (std::isnan(M.Opd)) {
      ++Skipped;
      continue;
    }
    Speedups.push_back(M.Speedup);
    SpeedupLBs.push_back(M.SpeedupLB);
    Result.MeanOpd += M.Opd;
    Result.MeanOpdLB += M.OpdLB;
    double ShiftOver = M.OpdReorg - M.OpdLBShift;
    if (ShiftOver < 0.0)
      ShiftOver = 0.0;
    Result.MeanShiftOverhead += ShiftOver;
    Result.MeanCompilerOverhead += M.Opd - M.OpdLB - ShiftOver;
    Result.MeanScalarOpd += M.ScalarOpd;
  }

  unsigned Succeeded = LoopCount - Result.Failures - Skipped;
  if (Succeeded > 0) {
    Result.MeanOpd /= Succeeded;
    Result.MeanOpdLB /= Succeeded;
    Result.MeanShiftOverhead /= Succeeded;
    Result.MeanCompilerOverhead /= Succeeded;
    Result.MeanScalarOpd /= Succeeded;
    Result.HarmonicSpeedup = harmonicMean(Speedups);
    Result.HarmonicSpeedupLB = harmonicMean(SpeedupLBs);
  }
  return Result;
}

double harness::harmonicMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Denom = 0.0;
  for (double V : Values) {
    if (V <= 0.0)
      return 0.0;
    Denom += 1.0 / V;
  }
  return static_cast<double>(Values.size()) / Denom;
}
