//===- harness/PeelBaseline.cpp -------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "harness/PeelBaseline.h"

#include "codegen/Simdizer.h"
#include "ir/Loop.h"
#include "ir/ScalarCost.h"
#include "opt/Pipeline.h"
#include "reorg/ReorgGraph.h"
#include "sim/Checker.h"
#include "support/MathExtras.h"

#include <map>
#include <optional>

using namespace simdize;
using namespace simdize::harness;

namespace {

/// Collects the single compile-time alignment shared by every access, or
/// an explanation why none exists.
std::optional<int64_t> commonAlignment(const ir::Loop &L, unsigned V,
                                       std::string &Reason) {
  std::optional<int64_t> Common;
  bool Mixed = false, Runtime = false;
  auto Visit = [&](const ir::Array *A, int64_t C) {
    reorg::StreamOffset O = reorg::offsetOfAccess(A, C, V);
    if (!O.isConstant()) {
      Runtime = true;
      return;
    }
    if (!Common)
      Common = O.getConstant();
    else if (*Common != O.getConstant())
      Mixed = true;
  };
  for (const auto &S : L.getStmts()) {
    Visit(S->getStoreArray(), S->getStoreOffset());
    S->getRHS().walk([&](const ir::Expr &E) {
      if (const auto *Ref = ir::dyn_cast<ir::ArrayRefExpr>(E))
        Visit(Ref->getArray(), Ref->getOffset());
    });
  }
  if (Runtime) {
    Reason = "peeling needs compile-time alignments";
    return std::nullopt;
  }
  if (Mixed) {
    Reason = "references have different alignments; no peel count can "
             "align more than one of them";
    return std::nullopt;
  }
  return Common;
}

/// Rebuilds \p L with every array's base alignment advanced by
/// \p PeelBytes and the trip count reduced by \p Peeled — the loop the
/// steady simdized code runs after peeling.
ir::Loop buildPeeledLoop(const ir::Loop &L, int64_t Peeled,
                         int64_t PeelBytes, unsigned V) {
  ir::Loop Out;
  std::map<const ir::Array *, ir::Array *> Remap;
  std::map<const ir::Param *, ir::Param *> ParamRemap;
  for (const auto &P : L.getParams())
    ParamRemap[P.get()] =
        Out.createParam(P->getName(), P->getActualValue());
  for (const auto &A : L.getArrays())
    Remap[A.get()] = Out.createArray(
        A->getName(), A->getElemType(), A->getNumElems(),
        static_cast<unsigned>(nonNegMod(A->getAlignment() + PeelBytes, V)),
        /*AlignmentKnown=*/true);

  std::function<std::unique_ptr<ir::Expr>(const ir::Expr &)> CloneExpr =
      [&](const ir::Expr &E) -> std::unique_ptr<ir::Expr> {
    switch (E.getKind()) {
    case ir::ExprKind::ArrayRef: {
      const auto &Ref = ir::cast<ir::ArrayRefExpr>(E);
      return std::make_unique<ir::ArrayRefExpr>(Remap.at(Ref.getArray()),
                                                Ref.getOffset());
    }
    case ir::ExprKind::Splat:
      return E.clone();
    case ir::ExprKind::Param:
      return std::make_unique<ir::ParamExpr>(
          ParamRemap.at(ir::cast<ir::ParamExpr>(E).getParam()));
    case ir::ExprKind::BinOp: {
      const auto &BO = ir::cast<ir::BinOpExpr>(E);
      return std::make_unique<ir::BinOpExpr>(BO.getOp(),
                                             CloneExpr(BO.getLHS()),
                                             CloneExpr(BO.getRHS()));
    }
    }
    return nullptr;
  };

  for (const auto &S : L.getStmts())
    Out.addStmt(Remap.at(S->getStoreArray()), S->getStoreOffset(),
                CloneExpr(S->getRHS()));
  Out.setUpperBound(L.getUpperBound() - Peeled, L.isUpperBoundKnown());
  return Out;
}

} // namespace

PeelResult harness::runPeelingBaseline(const ir::Loop &L, uint64_t CheckSeed,
                                       const Target &Tgt) {
  PeelResult Result;
  const unsigned V = Tgt.VectorLen;
  unsigned D = L.getElemSize();
  int64_t B = V / D;

  auto Common = commonAlignment(L, V, Result.Reason);
  if (!Common)
    return Result;

  // Peel until the shared alignment reaches 0.
  int64_t Peeled =
      *Common == 0 ? 0 : (static_cast<int64_t>(V) - *Common) / D;
  if (L.getUpperBound() - Peeled <= 3 * B) {
    Result.Reason = "trip count too small after peeling";
    return Result;
  }

  ir::Loop Peeledloop = buildPeeledLoop(L, Peeled, Peeled * D, V);

  codegen::SimdizeOptions Opts;
  Opts.Policy = policies::PolicyKind::Lazy; // Everything aligned: no shifts.
  Opts.SoftwarePipelining = true;
  Opts.Tgt = Tgt;
  codegen::SimdizeResult R = codegen::simdize(Peeledloop, Opts);
  if (!R.ok()) {
    Result.Reason = R.Error;
    return Result;
  }
  opt::runOptPipeline(*R.Program, opt::OptConfig());

  sim::CheckResult Check = sim::checkSimdization(Peeledloop, *R.Program,
                                                 CheckSeed);
  if (!Check.Ok) {
    Result.Reason = Check.Message;
    return Result;
  }

  Result.Applicable = true;
  Result.PeeledIterations = Peeled;
  Measurement &M = Result.M;
  M.Ok = true;
  M.Counts = Check.Stats.Counts;
  // Charge the peeled iterations as scalar work: the ideal per-iteration
  // ops plus the same 2-op loop control the machine charges.
  ir::ScalarCost PerIter = ir::scalarCostOfLoop(L);
  M.Counts.Scalar += Peeled * PerIter.total();
  M.Counts.LoopCtl += Peeled * 2;
  M.Datums = L.getUpperBound() * static_cast<int64_t>(L.getStmts().size());
  M.Opd = M.Counts.opd(M.Datums);
  M.ScalarOpd = ir::scalarOpd(L);
  M.Speedup = M.Opd > 0.0 ? M.ScalarOpd / M.Opd : 0.0;
  M.StaticShifts = R.ShiftCount;
  return Result;
}
