//===- oracle/Oracle.cpp --------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "oracle/Oracle.h"

#include "ir/Loop.h"
#include "sim/Memory.h"
#include "support/Debug.h"
#include "support/Format.h"
#include "support/MathExtras.h"
#include "synth/LowerBound.h"

#include <map>
#include <set>

using namespace simdize;
using namespace simdize::oracle;

const char *oracle::failureKindName(FailureKind Kind) {
  switch (Kind) {
  case FailureKind::None:
    return "none";
  case FailureKind::Internal:
    return "internal";
  case FailureKind::Verifier:
    return "verifier";
  case FailureKind::Mismatch:
    return "mismatch";
  case FailureKind::DoubleLoad:
    return "double-load";
  case FailureKind::ShiftCount:
    return "shift-count";
  case FailureKind::OpdBound:
    return "opd-bound";
  }
  simdize_unreachable("unknown failure kind");
}

std::optional<Violation>
oracle::checkShiftCounts(const ir::Loop &L, const codegen::SimdizeResult &R,
                         policies::PolicyKind Policy,
                         bool SoftwarePipelining) {
  const auto &Stmts = L.getStmts();
  if (R.StmtPlacedShifts.size() != Stmts.size() ||
      R.StmtSteadyShifts.size() != Stmts.size())
    return Violation{FailureKind::ShiftCount,
                     strf("simdize recorded shift counts for %zu of %zu "
                          "statements",
                          R.StmtPlacedShifts.size(), Stmts.size())};

  unsigned V = R.Program->getVectorLen();
  unsigned ExpectedBody = 0;
  for (size_t K = 0; K < Stmts.size(); ++K) {
    // One graph build per statement serves every per-statement check.
    reorg::Graph G = reorg::buildGraph(*Stmts[K], V);
    unsigned Predicted =
        policies::predictShiftCount(Policy, G, SoftwarePipelining);
    if (R.StmtPlacedShifts[K] != Predicted)
      return Violation{
          FailureKind::ShiftCount,
          strf("statement %zu: policy %s placed %u vshiftstream nodes, "
               "prediction says %u",
               K, policies::policyName(Policy), R.StmtPlacedShifts[K],
               Predicted)};

    // The optimal policy's defining contract: never more steady-state
    // shift work than any of the paper's four greedy placements.
    if (Policy == policies::PolicyKind::Optimal)
      for (policies::PolicyKind Paper : policies::paperPolicies()) {
        unsigned Greedy =
            policies::predictSteadyShiftCount(Paper, G, SoftwarePipelining);
        if (R.StmtSteadyShifts[K] > Greedy)
          return Violation{
              FailureKind::ShiftCount,
              strf("statement %zu: OPT placement executes %u steady "
                   "vshiftpairs but %s would execute only %u (sp=%d) — "
                   "the DP is not optimal",
                   K, R.StmtSteadyShifts[K], policies::policyName(Paper),
                   Greedy, SoftwarePipelining)};
      }
    ExpectedBody += R.StmtSteadyShifts[K];
  }

  // The raw steady loop advances by B, so the body holds exactly one
  // instance of every statement's emission (the unroll that changes the
  // step is an optimizer pass, and this oracle runs pre-optimization).
  unsigned Emitted =
      vir::countOps(R.Program->getBody(), vir::VOpcode::VShiftPair);
  if (Emitted != ExpectedBody)
    return Violation{
        FailureKind::ShiftCount,
        strf("steady body executes %u vshiftpairs per iteration, emission "
             "model (%s, sp=%d) predicts %u",
             Emitted, policies::policyName(Policy), SoftwarePipelining,
             ExpectedBody)};
  return std::nullopt;
}

std::optional<Violation>
oracle::checkNeverLoadTwice(const ir::Loop &L, unsigned VectorLen,
                            const sim::ExecStats &Stats) {
  // Static accesses and accessed element-offset range per loaded array;
  // chunks of store arrays (touched by the prologue/epilogue partial-store
  // reads) are exempt.
  struct ArrayInfo {
    int64_t Accesses = 0;
    int64_t MinOff = INT64_MAX;
    int64_t MaxOff = INT64_MIN;
  };
  std::map<const ir::Array *, ArrayInfo> Arrays;
  auto AddAccess = [&Arrays](const ir::Array *A, int64_t Off) {
    ArrayInfo &AI = Arrays[A];
    ++AI.Accesses;
    AI.MinOff = std::min(AI.MinOff, Off);
    AI.MaxOff = std::max(AI.MaxOff, Off);
  };
  for (const auto &S : L.getStmts()) {
    S->forEachExpr([&](const ir::Expr &Root) {
      Root.walk([&](const ir::Expr &E) {
        if (const auto *Ref = ir::dyn_cast<ir::ArrayRefExpr>(E))
          AddAccess(Ref->getArray(), Ref->getOffset());
      });
    });
    // An if-converted statement reloads its target stream every iteration
    // to blend untaken lanes: one legitimate extra access.
    if (S->isIf())
      AddAccess(S->getStoreArray(), S->getStoreOffset());
  }

  // The checker's layout is deterministic in (loop, V): rebuild it to map
  // chunk addresses back to array positions. The Section 4.3 guarantee is
  // about the steady state, so "interior" chunks must be margin vectors
  // away from *every* stream's prologue/epilogue zone, not just the bytes
  // the loop touches overall: when one array is read at several element
  // offsets, each offset is its own stream with its own boundary region,
  // so the window starts after the latest-starting stream's prologue
  // (MaxOff) and ends before the earliest-ending stream's epilogue
  // (MinOff). For a single-offset array this is the accessed byte range.
  sim::MemoryLayout Layout(L, VectorLen);
  const int64_t Margin = 4 * static_cast<int64_t>(VectorLen);
  const int64_t UB = L.getUpperBound();
  for (const auto &[Key, Count] : Stats.ChunkLoads) {
    const auto &[Arr, ChunkAddr] = Key;
    auto It = Arrays.find(Arr);
    if (It == Arrays.end())
      continue;
    int64_t Elem = Arr->getElemSize();
    int64_t Base = Layout.baseOf(Arr);
    int64_t Lo = Base + It->second.MaxOff * Elem;
    int64_t End = Base + (UB - 1 + It->second.MinOff) * Elem + Elem;
    bool Interior = ChunkAddr >= Lo + Margin &&
                    ChunkAddr + VectorLen <= End - Margin;
    if (Interior && Count > It->second.Accesses)
      return Violation{
          FailureKind::DoubleLoad,
          strf("interior chunk @%lld of array '%s' loaded %lld times for "
               "%lld static accesses: steady state reloaded stream data "
               "(Section 4.3)",
               static_cast<long long>(ChunkAddr), Arr->getName().c_str(),
               static_cast<long long>(Count),
               static_cast<long long>(It->second.Accesses))};
  }
  return std::nullopt;
}

namespace {

/// Byte-offset alignment class of an access modulo V: the constant class
/// when the base is known, the congruence class of the scaled offset alone
/// otherwise (the unknown base cancels between congruent accesses).
int64_t alignClassModV(const ir::Array *A, int64_t C, unsigned V) {
  int64_t Scaled = C * static_cast<int64_t>(A->getElemSize());
  if (A->isAlignmentKnown())
    return nonNegMod(A->getAlignment() + Scaled, V);
  return nonNegMod(Scaled, V);
}

bool isMisalignedAccess(const ir::Array *A, int64_t C, unsigned V) {
  if (!A->isAlignmentKnown())
    return true; // Must be treated (and is realigned) as misaligned.
  return alignClassModV(A, C, V) != 0;
}

/// Structural key of an expression subtree. \p FoldB > 0 folds element
/// offsets modulo B: predictive commoning carries values across
/// iterations, so subtrees whose references differ by whole blocking
/// factors produce the same stream and may legitimately be merged.
void exprKey(const ir::Expr &E, int64_t FoldB, std::string &Out) {
  switch (E.getKind()) {
  case ir::ExprKind::ArrayRef: {
    const auto &Ref = ir::cast<ir::ArrayRefExpr>(E);
    int64_t Off = FoldB > 0 ? nonNegMod(Ref.getOffset(), FoldB)
                            : Ref.getOffset();
    Out += strf("a%p@%lld;", static_cast<const void *>(Ref.getArray()),
                static_cast<long long>(Off));
    return;
  }
  case ir::ExprKind::Splat:
    Out += strf("s%lld;",
                static_cast<long long>(ir::cast<ir::SplatExpr>(E).getValue()));
    return;
  case ir::ExprKind::Param:
    Out += strf("p%p;", static_cast<const void *>(
                            ir::cast<ir::ParamExpr>(E).getParam()));
    return;
  case ir::ExprKind::BinOp: {
    const auto &Bin = ir::cast<ir::BinOpExpr>(E);
    Out += strf("(%d;", static_cast<int>(Bin.getOp()));
    exprKey(Bin.getLHS(), FoldB, Out);
    exprKey(Bin.getRHS(), FoldB, Out);
    Out += ")";
    return;
  }
  }
  simdize_unreachable("unknown expression kind");
}

bool containsRef(const ir::Expr &E) {
  bool Found = false;
  E.walk([&](const ir::Expr &Sub) { Found |= ir::isa<ir::ArrayRefExpr>(Sub); });
  return Found;
}

} // namespace

double oracle::opdFloor(const ir::Loop &L, unsigned VectorLen,
                        policies::PolicyKind Policy, OptLevel Opt) {
  unsigned Stmts = static_cast<unsigned>(L.getStmts().size());
  int64_t B = VectorLen / L.getElemSize();

  // Unoptimized programs execute at least the full Section 5.3 bound per
  // steady iteration: a load per distinct stream, the placed shifts, every
  // compute node, a store per statement.
  if (Opt == OptLevel::Raw)
    return synth::computeLowerBound(L, VectorLen, Policy).opd(B, Stmts);

  // Optimized configurations can legitimately beat components of that
  // bound, so each component is floored at the optimizer's capability:
  //
  //  * loads — CSE/MemNorm merge only same-chunk loads (already one per
  //    stream); predictive commoning additionally carries chunks across
  //    iterations, and any two references of one array walk the same
  //    consecutive chunk sequence merely phase-shifted, so under PC every
  //    array can collapse to a single load per iteration;
  //  * compute — CSE merges identical subtrees across statements; PC
  //    merges subtrees congruent modulo B. Loop-invariant (splat-only)
  //    subtrees are excluded: no pass hoists them today, but the floor
  //    must stay sound if one ever does;
  //  * shifts — only zero-shift keeps a deterministic floor: realignment
  //    is per misaligned stream class, plus per distinct (RHS key, store
  //    class) store realignment (identical statements' store shifts are
  //    CSE-mergeable). Other policies' placements can collapse under CSE
  //    in graph-dependent ways, so their optimized floor is 0;
  //  * stores — never removed: one per statement.
  bool PC = Opt == OptLevel::PC;
  int64_t FoldB = PC ? B : 0;

  std::set<const ir::Array *> LoadedArrays;
  std::set<std::pair<const ir::Array *, int64_t>> MisalignedClasses;
  std::set<std::string> ComputeKeys;
  for (size_t Idx = 0; Idx < L.getStmts().size(); ++Idx) {
    const ir::Stmt &S = *L.getStmts()[Idx];
    S.forEachExpr([&](const ir::Expr &Root) {
      Root.walk([&](const ir::Expr &E) {
        if (const auto *Ref = ir::dyn_cast<ir::ArrayRefExpr>(E)) {
          const ir::Array *A = Ref->getArray();
          LoadedArrays.insert(A);
          if (isMisalignedAccess(A, Ref->getOffset(), VectorLen))
            MisalignedClasses.insert(
                {A, alignClassModV(A, Ref->getOffset(), VectorLen)});
        }
        if (ir::isa<ir::BinOpExpr>(E) && containsRef(E)) {
          std::string Key;
          exprKey(E, FoldB, Key);
          ComputeKeys.insert(std::move(Key));
        }
      });
    });
    if (S.isIf()) {
      // The implicit old-value reload is a per-iteration load of the store
      // target; loads of stored arrays are never keyable, so the blend can
      // never merge — one per statement. The comparison reads only guard
      // streams and does dedup structurally.
      LoadedArrays.insert(S.getStoreArray());
      if (isMisalignedAccess(S.getStoreArray(), S.getStoreOffset(),
                             VectorLen))
        MisalignedClasses.insert(
            {S.getStoreArray(),
             alignClassModV(S.getStoreArray(), S.getStoreOffset(),
                            VectorLen)});
      std::string CmpKey = strf("cmp(%d;", static_cast<int>(S.getCmpKind()));
      exprKey(S.getGuardLHS(), FoldB, CmpKey);
      exprKey(S.getGuardRHS(), FoldB, CmpKey);
      CmpKey += ")";
      ComputeKeys.insert(std::move(CmpKey));
      ComputeKeys.insert(strf("blend#%zu", Idx));
    }
    if (S.isReduce()) {
      // The accumulate reads a multiply-defined carry register: unkeyable,
      // one per statement per iteration.
      ComputeKeys.insert(strf("acc#%zu", Idx));
    }
  }

  int64_t Loads =
      PC ? static_cast<int64_t>(LoadedArrays.size())
         : synth::computeLowerBound(L, VectorLen, Policy).DistinctLoads;

  int64_t Shifts = 0;
  if (Policy == policies::PolicyKind::Zero) {
    Shifts = static_cast<int64_t>(MisalignedClasses.size());
    std::set<std::string> StoreShiftKeys;
    for (size_t Idx = 0; Idx < L.getStmts().size(); ++Idx) {
      const ir::Stmt &S = *L.getStmts()[Idx];
      if (S.isReduce())
        continue; // Accumulated in a register: no steady store stream.
      const ir::Array *A = S.getStoreArray();
      if (!isMisalignedAccess(A, S.getStoreOffset(), VectorLen))
        continue;
      if (S.isIf()) {
        // The blended value feeds the store shift and the blend is never
        // mergeable, so the shift executes per statement.
        StoreShiftKeys.insert(strf("if#%zu", Idx));
        continue;
      }
      if (!containsRef(S.getRHS()))
        continue; // Pure-splat source: ⊥ satisfies C.2, no store shift.
      std::string Key;
      exprKey(S.getRHS(), FoldB, Key);
      if (A->isAlignmentKnown())
        Key += strf("|c%lld", static_cast<long long>(alignClassModV(
                                  A, S.getStoreOffset(), VectorLen)));
      else
        Key += strf("|r%p", static_cast<const void *>(A));
      StoreShiftKeys.insert(std::move(Key));
    }
    Shifts += static_cast<int64_t>(StoreShiftKeys.size());
  }

  unsigned StoringStmts = 0;
  for (const auto &S : L.getStmts())
    if (!S->isReduce())
      ++StoringStmts;

  synth::LowerBound Floor;
  Floor.DistinctLoads = Loads;
  Floor.Stores = StoringStmts;
  Floor.Shifts = Shifts;
  Floor.Compute = static_cast<int64_t>(ComputeKeys.size());
  return Floor.opd(static_cast<unsigned>(B), Stmts);
}

std::optional<Violation>
oracle::checkOpdBound(const ir::Loop &L, unsigned VectorLen,
                      policies::PolicyKind Policy, OptLevel Opt,
                      const sim::ExecStats &Stats) {
  int64_t Datums =
      L.getUpperBound() * static_cast<int64_t>(L.getStmts().size());
  double Floor = opdFloor(L, VectorLen, Policy, Opt);
  double Measured = Stats.Counts.opd(Datums);
  if (Measured + 1e-9 < Floor)
    return Violation{
        FailureKind::OpdBound,
        strf("measured %.4f operations per datum, below the Section 5.3 "
             "floor %.4f (policy %s, opt level %d)",
             Measured, Floor, policies::policyName(Policy),
             static_cast<int>(Opt))};
  return std::nullopt;
}
