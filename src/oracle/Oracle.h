//===- oracle/Oracle.h - Property oracles for the paper's invariants -----===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's guarantees are stronger than "output matches scalar". The
/// oracles here hold every fuzzed run to them:
///
///  * never-load-twice (Section 4.3): with reuse exploitation (software
///    pipelining or predictive commoning), no interior 16-byte chunk of a
///    loaded array is loaded more often than the array has static
///    accesses — the steady state never revisits a stream's data;
///  * shift counts (Section 3.4): each placement policy inserts exactly
///    the number of vshiftstream nodes its rules predict, and the raw
///    steady state executes exactly the emission-model count of
///    vshiftpair instructions;
///  * the OPD lower bound (Section 5.3): measured dynamic operations per
///    datum never fall below a per-configuration floor derived from
///    synth::computeLowerBound;
///  * program validity: every program — including deliberately mutated
///    ones — passes the VVerifier before execution (hooked into the fuzz
///    loop, which tags verifier rejections with their own failure kind).
///
/// Each oracle returns std::nullopt on success or a Violation carrying a
/// FailureKind; the fuzzer shrinks violations exactly like memory
/// mismatches and tags corpus files with failureKindName().
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_ORACLE_ORACLE_H
#define SIMDIZE_ORACLE_ORACLE_H

#include "codegen/Simdizer.h"
#include "sim/Machine.h"

#include <optional>
#include <string>

namespace simdize {

namespace ir {
class Loop;
} // namespace ir

namespace oracle {

/// Why a fuzzed run failed. Extends the bit-equality verdict with the
/// property oracles' verdicts; corpus files carry these as tags.
enum class FailureKind {
  None,       ///< No failure.
  Internal,   ///< simdize() broke one of its own invariants.
  Verifier,   ///< The VVerifier rejected a generated/mutated program.
  Mismatch,   ///< Memory differs from the scalar reference.
  DoubleLoad, ///< Never-load-twice violated (Section 4.3).
  ShiftCount, ///< Realignment count off the policy prediction (S. 3.4).
  OpdBound,   ///< Measured OPD below the Section 5.3 floor.
};

/// Stable tag for \p Kind ("mismatch", "double-load", "shift-count",
/// "opd-bound", ...) as used in corpus file names and headers.
const char *failureKindName(FailureKind Kind);

/// Optimization level of the configuration under check (mirrors
/// fuzz::OptMode without depending on the fuzzer).
enum class OptLevel {
  Raw, ///< No cleanup passes.
  Std, ///< CSE + memory normalization + unroll + DCE.
  PC,  ///< Std plus predictive commoning.
};

/// One oracle violation: which property broke, and a diagnostic suitable
/// for a corpus-file header.
struct Violation {
  FailureKind Kind = FailureKind::None;
  std::string Message;
};

/// Shift-count oracle (Section 3.4). Checks, per statement, that the
/// policy placed exactly predictShiftCount() vshiftstream nodes, and that
/// the raw program's steady body contains exactly the emission-model
/// vshiftpair count (reorg::countSteadyShifts). \p R must be a successful
/// simdization of \p L — run this on the *unoptimized* program, since CSE
/// and predictive commoning legitimately merge realignment operations.
std::optional<Violation> checkShiftCounts(const ir::Loop &L,
                                          const codegen::SimdizeResult &R,
                                          policies::PolicyKind Policy,
                                          bool SoftwarePipelining);

/// Never-load-twice oracle (Section 4.3). \p Stats must come from a run
/// with chunk-load tracking enabled; only meaningful for configurations
/// that exploit reuse (software pipelining or predictive commoning) —
/// the standard scheme re-loads shift operands by design. Interior chunks
/// (more than 4 vectors from either array end, outside the
/// prologue/epilogue/pipeline-init influence zone) of every loaded array
/// must be loaded at most once per static access.
std::optional<Violation> checkNeverLoadTwice(const ir::Loop &L,
                                             unsigned VectorLen,
                                             const sim::ExecStats &Stats);

/// The floor the OPD-bound oracle enforces for (loop, policy, opt level).
/// For raw programs this is exactly synth::computeLowerBound; optimized
/// configurations can legitimately beat individual components of that
/// bound (predictive commoning merges chunk-congruent streams, CSE
/// merges identical compute and realignment across statements), so the
/// floor re-derives each component at the optimizer's capability level.
double opdFloor(const ir::Loop &L, unsigned VectorLen,
                policies::PolicyKind Policy, OptLevel Opt);

/// OPD-bound oracle (Section 5.3): measured dynamic operations per datum
/// must not fall below opdFloor(). Datums = trip count x statements.
std::optional<Violation> checkOpdBound(const ir::Loop &L, unsigned VectorLen,
                                       policies::PolicyKind Policy,
                                       OptLevel Opt,
                                       const sim::ExecStats &Stats);

} // namespace oracle
} // namespace simdize

#endif // SIMDIZE_ORACLE_ORACLE_H
