//===- server/BuildInfo.cpp -----------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "server/BuildInfo.h"

#include "native/NativeISA.h"

using namespace simdize;
using namespace simdize::server;

// Injected by CMake from `git describe --always --dirty`; "unknown" when
// the source tree is not a git checkout.
#ifndef SIMDIZE_GIT_DESCRIBE
#define SIMDIZE_GIT_DESCRIBE "unknown"
#endif

namespace {

BuildInfo computeBuildInfo() {
  BuildInfo B;
  B.GitDescribe = SIMDIZE_GIT_DESCRIBE;
#ifdef __VERSION__
  B.Compiler = __VERSION__;
#else
  B.Compiler = "unknown";
#endif
  // The widest vector width whose best ISA is a real one is the tier the
  // native backend races with; Shim means no usable SIMD on this host.
  native::ISA Best = native::ISA::Shim;
  for (unsigned Width : {16u, 32u, 64u}) {
    native::ISA I = native::bestISAForWidth(Width);
    if (I != native::ISA::Shim)
      Best = I;
  }
  B.BestISA = native::isaName(Best);
  return B;
}

} // namespace

const BuildInfo &server::buildInfo() {
  static const BuildInfo Info = computeBuildInfo();
  return Info;
}
