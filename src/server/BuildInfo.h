//===- server/BuildInfo.h - Build/host identification for stats ----------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Build and host identification surfaced through the server's `stats`
/// response and the Prometheus `build_info` family: the git describe
/// string baked in at configure time, the compiler version string, and
/// the best native ISA the host supports (the tier the native execution
/// backend would pick). Makes a metrics dump or flight-recorder artifact
/// self-identifying — which binary, built from what, running where.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SERVER_BUILDINFO_H
#define SIMDIZE_SERVER_BUILDINFO_H

#include <string>

namespace simdize {
namespace server {

struct BuildInfo {
  std::string GitDescribe; ///< `git describe --always --dirty`, or "unknown".
  std::string Compiler;    ///< The compiler's __VERSION__ string.
  std::string BestISA;     ///< Best host-supported native ISA name.
};

/// Returns the process-wide build info (computed once).
const BuildInfo &buildInfo();

} // namespace server
} // namespace simdize

#endif // SIMDIZE_SERVER_BUILDINFO_H
