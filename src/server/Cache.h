//===- server/Cache.h - Content-addressed compile/verdict cache ----------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server's memory: compiled programs and oracle verdicts keyed by
/// content, not by identity. The key is an FNV-1a hash (the same scheme
/// native::NativeCompile uses for its .so cache) over
///
///   canonical loop print \x1f CompileRequest::name() \x1f memnorm/reassoc
///
/// — the canonical ir::printLoop text, so whitespace and comment
/// variations of one loop collapse to one entry, joined with every
/// compilation-relevant request axis. CompileRequest::name() already
/// encodes policy, software pipelining, opt level, width, and tier; the
/// two evaluation toggles it omits (MemNorm, OffsetReassoc) are appended
/// explicitly so no two distinct configurations can collide.
///
/// An entry owns the parsed loop, the full pipeline::CompileResult (the
/// live VProgram — check requests re-run it without recompiling), the
/// canonical program text, and a map of per-seed check verdicts. Entries
/// carry an integrity checksum over their immutable payload; a hit whose
/// bytes no longer match (a poisoned entry) is evicted and surfaced as a
/// structured error, never served. Capacity is bounded with LRU eviction;
/// entries are shared_ptr so eviction never invalidates an in-flight
/// request. Deterministic compilation makes races benign: concurrent
/// misses on one key build byte-identical entries and the first insert
/// wins.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SERVER_CACHE_H
#define SIMDIZE_SERVER_CACHE_H

#include "ir/Loop.h"
#include "pipeline/Pipeline.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

namespace simdize {
namespace server {

class CompileCache {
public:
  /// A cached check outcome for one seed.
  struct Verdict {
    bool Ok = false;
    std::string Message;
  };

  /// One compiled (loop, request) pair. Immutable after insert() — the
  /// verdict map lives under the cache lock, not in the entry.
  struct Entry {
    std::shared_ptr<const ir::Loop> SourceLoop;
    pipeline::CompileResult Result;
    /// Canonical vir::printProgram text; empty when the pipeline rejected
    /// the loop (rejections are deterministic and cached too).
    std::string ProgramText;
    /// FNV-1a over the immutable payload (checksumOf); verified on every
    /// hit so a corrupted entry is detected instead of served.
    uint64_t Checksum = 0;
  };

  struct Stats {
    int64_t Hits = 0;
    int64_t Misses = 0;
    int64_t Evictions = 0;
    int64_t Poisoned = 0;
    int64_t VerdictHits = 0;
    int64_t VerdictMisses = 0;
  };

  enum class Outcome { Miss, Hit, Poisoned };

  explicit CompileCache(size_t MaxEntries = 1024) : Max(MaxEntries) {}

  /// FNV-1a continuation over \p S (offset-basis seeded by the caller).
  static uint64_t hashBytes(uint64_t H, const std::string &S);

  /// The content key of (canonical loop text, request).
  static uint64_t keyOf(const std::string &CanonicalLoopText,
                        const pipeline::CompileRequest &Req);

  /// The integrity checksum an entry must carry.
  static uint64_t checksumOf(const Entry &E);

  /// Looks up \p Key. Hit: \p Out is set and the entry's LRU tick
  /// refreshed. Poisoned: the entry failed its checksum; it is evicted
  /// (so the next identical request recompiles) and \p Out left empty.
  Outcome find(uint64_t Key, std::shared_ptr<Entry> &Out);

  /// Validity probe for the rendered-response memo: like find(), but a
  /// Poisoned or Miss outcome mutates nothing and counts nothing — the
  /// caller falls through to the full path, where find() evicts, counts,
  /// and surfaces the structured error exactly as it always did. Only a
  /// clean Hit counts (and refreshes the LRU tick), since it answers the
  /// request.
  Outcome peek(uint64_t Key);

  /// Inserts \p E under \p Key, evicting the least-recently-used entry
  /// when over capacity. First writer wins: if a concurrent miss already
  /// inserted this key, the existing entry is returned instead, so every
  /// caller responds from one canonical entry.
  std::shared_ptr<Entry> insert(uint64_t Key, std::shared_ptr<Entry> E);

  /// Per-seed verdict lookup/record for an entry still present under
  /// \p Key. Recording against an evicted key is a no-op.
  bool findVerdict(uint64_t Key, uint64_t Seed, Verdict &Out);
  void recordVerdict(uint64_t Key, uint64_t Seed, const Verdict &V);

  /// First-level memo from the key of a request's RAW loop text (keyOf
  /// over the unparsed spelling) to the canonical content key, letting a
  /// byte-identical resubmission skip the parse and canonical print that
  /// otherwise dominate a warm hit. Purely an accelerator: a memo miss,
  /// or an alias whose target has been evicted, only costs the slow path.
  std::optional<uint64_t> findAlias(uint64_t TextKey);
  void recordAlias(uint64_t TextKey, uint64_t Key);

  Stats stats() const;
  size_t size() const;
  void clear();

  /// Test hook: silently corrupts the cached program text of \p Key
  /// without updating the checksum, simulating a poisoned entry.
  void poisonForTest(uint64_t Key);

private:
  struct Slot {
    std::shared_ptr<Entry> E;
    std::map<uint64_t, Verdict> Verdicts;
    uint64_t Tick = 0;
  };

  void evictOverflowLocked();

  mutable std::mutex Mu;
  std::map<uint64_t, Slot> Map;
  std::map<uint64_t, uint64_t> Aliases; ///< raw-text key -> canonical key.
  size_t Max;
  uint64_t Tick = 0;
  Stats St;
};

} // namespace server
} // namespace simdize

#endif // SIMDIZE_SERVER_CACHE_H
