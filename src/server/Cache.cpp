//===- server/Cache.cpp ---------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "server/Cache.h"

using namespace simdize;
using namespace simdize::server;

uint64_t CompileCache::hashBytes(uint64_t H, const std::string &S) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ULL;
  }
  return H;
}

uint64_t CompileCache::keyOf(const std::string &CanonicalLoopText,
                             const pipeline::CompileRequest &Req) {
  // CompileRequest::name() covers policy/sp/opt/width/tier (and AUTO);
  // MemNorm and OffsetReassoc are evaluation toggles it omits, appended
  // here so distinct configurations can never share a key.
  std::string Tail = Req.name();
  Tail += '\x1f';
  Tail += Req.MemNorm ? 'm' : '-';
  Tail += Req.OffsetReassoc ? 'r' : '-';
  uint64_t H = hashBytes(14695981039346656037ULL, CanonicalLoopText);
  H = hashBytes(H, "\x1f");
  return hashBytes(H, Tail);
}

uint64_t CompileCache::checksumOf(const Entry &E) {
  uint64_t H = hashBytes(14695981039346656037ULL, E.ProgramText);
  H = hashBytes(H, "\x1f");
  H = hashBytes(H, E.Result.ConfigName);
  H = hashBytes(H, "\x1f");
  return hashBytes(H, E.Result.error());
}

CompileCache::Outcome CompileCache::find(uint64_t Key,
                                         std::shared_ptr<Entry> &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(Key);
  if (It == Map.end()) {
    ++St.Misses;
    return Outcome::Miss;
  }
  if (checksumOf(*It->second.E) != It->second.E->Checksum) {
    // Poisoned: evict so the next identical request recompiles cleanly.
    Map.erase(It);
    ++St.Poisoned;
    return Outcome::Poisoned;
  }
  ++St.Hits;
  It->second.Tick = ++Tick;
  Out = It->second.E;
  return Outcome::Hit;
}

CompileCache::Outcome CompileCache::peek(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(Key);
  if (It == Map.end())
    return Outcome::Miss;
  if (checksumOf(*It->second.E) != It->second.E->Checksum)
    return Outcome::Poisoned;
  ++St.Hits;
  It->second.Tick = ++Tick;
  return Outcome::Hit;
}

std::shared_ptr<CompileCache::Entry>
CompileCache::insert(uint64_t Key, std::shared_ptr<Entry> E) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto [It, Inserted] = Map.try_emplace(Key);
  if (Inserted)
    It->second.E = std::move(E);
  It->second.Tick = ++Tick;
  evictOverflowLocked();
  return It->second.E;
}

bool CompileCache::findVerdict(uint64_t Key, uint64_t Seed, Verdict &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(Key);
  if (It != Map.end()) {
    auto V = It->second.Verdicts.find(Seed);
    if (V != It->second.Verdicts.end()) {
      ++St.VerdictHits;
      Out = V->second;
      return true;
    }
  }
  ++St.VerdictMisses;
  return false;
}

void CompileCache::recordVerdict(uint64_t Key, uint64_t Seed,
                                 const Verdict &V) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(Key);
  if (It != Map.end())
    It->second.Verdicts.emplace(Seed, V);
}

std::optional<uint64_t> CompileCache::findAlias(uint64_t TextKey) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Aliases.find(TextKey);
  if (It == Aliases.end())
    return std::nullopt;
  return It->second;
}

void CompileCache::recordAlias(uint64_t TextKey, uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  // The memo is rebuilt on demand, so the bound is a crude wholesale
  // reset — correctness never depends on what survives here.
  if (Aliases.size() >= 4096 + 4 * Max)
    Aliases.clear();
  Aliases[TextKey] = Key;
}

void CompileCache::evictOverflowLocked() {
  while (Max != 0 && Map.size() > Max) {
    auto Oldest = Map.begin();
    for (auto I = Map.begin(); I != Map.end(); ++I)
      if (I->second.Tick < Oldest->second.Tick)
        Oldest = I;
    Map.erase(Oldest);
    ++St.Evictions;
  }
}

CompileCache::Stats CompileCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return St;
}

size_t CompileCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Map.size();
}

void CompileCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Map.clear();
}

void CompileCache::poisonForTest(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(Key);
  if (It != Map.end())
    It->second.E->ProgramText += " ";
}
