//===- server/Protocol.cpp ------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include "obs/Json.h"
#include "policies/ShiftPolicy.h"
#include "support/Format.h"

#include <cmath>

using namespace simdize;
using namespace simdize::server;

const char *server::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::BadFrame:
    return "bad_frame";
  case ErrorCode::OversizedFrame:
    return "oversized_frame";
  case ErrorCode::TruncatedFrame:
    return "truncated_frame";
  case ErrorCode::BadJson:
    return "bad_json";
  case ErrorCode::BadRequest:
    return "bad_request";
  case ErrorCode::UnknownField:
    return "unknown_field";
  case ErrorCode::UnknownKind:
    return "unknown_kind";
  case ErrorCode::ParseError:
    return "parse_error";
  case ErrorCode::CompileError:
    return "compile_error";
  case ErrorCode::PoisonedCache:
    return "poisoned_cache";
  case ErrorCode::Internal:
    return "internal_error";
  }
  return "internal_error";
}

const char *server::requestKindName(RequestKind Kind) {
  switch (Kind) {
  case RequestKind::Compile:
    return "compile";
  case RequestKind::Check:
    return "check";
  case RequestKind::Explain:
    return "explain";
  case RequestKind::Stats:
    return "stats";
  case RequestKind::Batch:
    return "batch";
  case RequestKind::Dump:
    return "dump";
  }
  return "stats";
}

std::string server::encodeFrame(const std::string &Payload) {
  return std::to_string(Payload.size()) + "\n" + Payload;
}

bool FrameReader::fail(ErrorCode Code, std::string Message) {
  Failed = true;
  Err.Code = Code;
  Err.Message = std::move(Message);
  return false;
}

bool FrameReader::feed(const char *Data, size_t N,
                       std::vector<std::string> &Out) {
  if (Failed)
    return false;
  for (size_t K = 0; K < N; ++K) {
    if (InPayload) {
      // Bulk-copy as much of the payload as this chunk holds.
      size_t Take = std::min(Expected - Payload.size(), N - K);
      Payload.append(Data + K, Take);
      K += Take - 1;
      if (Payload.size() == Expected) {
        Out.push_back(std::move(Payload));
        Payload.clear();
        InPayload = false;
      }
      continue;
    }
    char C = Data[K];
    if (C == '\n') {
      if (Header.empty())
        return fail(ErrorCode::BadFrame, "empty length prefix");
      // Header is all digits (checked on append) and bounded at 8 chars,
      // so it fits a size_t without overflow checks.
      Expected = 0;
      for (char D : Header)
        Expected = Expected * 10 + static_cast<size_t>(D - '0');
      if (Expected > MaxFrameBytes)
        return fail(ErrorCode::OversizedFrame,
                    strf("frame of %zu bytes exceeds the %zu-byte limit",
                         Expected, MaxFrameBytes));
      Header.clear();
      Payload.clear();
      if (Expected == 0)
        Out.push_back(std::string());
      else
        InPayload = true;
    } else if (C >= '0' && C <= '9') {
      if (Header.size() >= 8)
        return fail(ErrorCode::OversizedFrame,
                    "length prefix longer than 8 digits");
      Header += C;
    } else {
      return fail(ErrorCode::BadFrame,
                  strf("length prefix contains non-digit byte 0x%02x",
                       static_cast<unsigned char>(C)));
    }
  }
  return true;
}

bool FrameReader::finish() {
  if (Failed)
    return false;
  if (InPayload)
    return fail(ErrorCode::TruncatedFrame,
                strf("stream ended %zu bytes into a %zu-byte payload",
                     Payload.size(), Expected));
  if (!Header.empty())
    return fail(ErrorCode::TruncatedFrame,
                "stream ended inside a frame length prefix");
  return true;
}

namespace {

using obs::json::Value;

/// Reads a non-negative integral JSON number; doubles above 2^53 or with
/// fractional parts are rejected (the wire cannot carry them faithfully).
bool asUInt(const Value &V, uint64_t &Out) {
  if (!V.isNumber() || V.Num < 0 || V.Num != std::floor(V.Num) ||
      V.Num > 9007199254740992.0)
    return false;
  Out = static_cast<uint64_t>(V.Num);
  return true;
}

bool err(ErrorInfo &Err, ErrorCode Code, std::string Message) {
  Err.Code = Code;
  Err.Message = std::move(Message);
  return false;
}

/// Strictly validates a "config" object into \p Req. Unknown keys and
/// malformed values are structured errors.
bool parseConfig(const Value &Obj, pipeline::CompileRequest &Req,
                 ErrorInfo &E) {
  if (!Obj.isObject())
    return err(E, ErrorCode::BadRequest, "'config' must be an object");
  for (const auto &[K, V] : Obj.Obj) {
    if (K == "policy") {
      if (!V.isString())
        return err(E, ErrorCode::BadRequest, "'policy' must be a string");
      if (V.Str == "auto") {
        Req.AutoPolicy = true;
      } else if (auto P = policies::parsePolicyCliName(V.Str)) {
        Req.Simd.Policy = *P;
      } else {
        return err(E, ErrorCode::BadRequest,
                   "unknown policy '" + V.Str +
                       "' (zero|eager|lazy|dom|optimal|auto)");
      }
    } else if (K == "sp") {
      if (!V.isBool())
        return err(E, ErrorCode::BadRequest, "'sp' must be a boolean");
      Req.Simd.SoftwarePipelining = V.Bool;
    } else if (K == "width") {
      uint64_t W = 0;
      if (!asUInt(V, W) || !Target(static_cast<unsigned>(W)).valid())
        return err(E, ErrorCode::BadRequest,
                   "'width' must be a power of two in [4, 64]");
      Req.Simd.Tgt = Target(static_cast<unsigned>(W));
    } else if (K == "opt") {
      if (!V.isString())
        return err(E, ErrorCode::BadRequest, "'opt' must be a string");
      if (V.Str == "raw")
        Req.Opt = pipeline::OptLevel::Raw;
      else if (V.Str == "std")
        Req.Opt = pipeline::OptLevel::Std;
      else if (V.Str == "pc")
        Req.Opt = pipeline::OptLevel::PC;
      else
        return err(E, ErrorCode::BadRequest,
                   "unknown opt level '" + V.Str + "' (raw|std|pc)");
    } else if (K == "memnorm") {
      if (!V.isBool())
        return err(E, ErrorCode::BadRequest, "'memnorm' must be a boolean");
      Req.MemNorm = V.Bool;
    } else if (K == "reassoc") {
      if (!V.isBool())
        return err(E, ErrorCode::BadRequest, "'reassoc' must be a boolean");
      Req.OffsetReassoc = V.Bool;
    } else if (K == "tier") {
      if (!V.isString())
        return err(E, ErrorCode::BadRequest, "'tier' must be a string");
      if (V.Str == "vm")
        Req.Tier = pipeline::ExecTier::VM;
      else if (V.Str == "native")
        Req.Tier = pipeline::ExecTier::Native;
      else
        return err(E, ErrorCode::BadRequest,
                   "unknown tier '" + V.Str + "' (vm|native)");
    } else {
      return err(E, ErrorCode::UnknownField,
                 "unknown config field '" + K + "'");
    }
  }
  return true;
}

/// Validates one request object (already parsed JSON).
bool parseRequestValue(const Value &Obj, Request &R, ErrorInfo &E,
                       bool AllowBatch) {
  if (!Obj.isObject())
    return err(E, ErrorCode::BadRequest, "request must be a JSON object");

  bool HaveId = false, HaveKind = false, HaveLoop = false;
  bool HaveConfig = false, HaveSeed = false, HaveRequests = false;
  const Value *Requests = nullptr;

  for (const auto &[K, V] : Obj.Obj) {
    if (K == "id") {
      if (!asUInt(V, R.Id))
        return err(E, ErrorCode::BadRequest,
                   "'id' must be a non-negative integer");
      HaveId = true;
    } else if (K == "kind") {
      if (!V.isString())
        return err(E, ErrorCode::BadRequest, "'kind' must be a string");
      if (V.Str == "compile")
        R.Kind = RequestKind::Compile;
      else if (V.Str == "check")
        R.Kind = RequestKind::Check;
      else if (V.Str == "explain")
        R.Kind = RequestKind::Explain;
      else if (V.Str == "stats")
        R.Kind = RequestKind::Stats;
      else if (V.Str == "batch")
        R.Kind = RequestKind::Batch;
      else if (V.Str == "dump")
        R.Kind = RequestKind::Dump;
      else
        return err(E, ErrorCode::UnknownKind,
                   "unknown request kind '" + V.Str +
                       "' (compile|check|explain|stats|batch|dump)");
      HaveKind = true;
    } else if (K == "loop") {
      if (!V.isString())
        return err(E, ErrorCode::BadRequest, "'loop' must be a string");
      R.LoopText = V.Str;
      HaveLoop = true;
    } else if (K == "config") {
      if (!parseConfig(V, R.Config, E))
        return false;
      HaveConfig = true;
    } else if (K == "seed") {
      if (!asUInt(V, R.Seed))
        return err(E, ErrorCode::BadRequest,
                   "'seed' must be a non-negative integer");
      HaveSeed = true;
    } else if (K == "requests") {
      if (!V.isArray())
        return err(E, ErrorCode::BadRequest, "'requests' must be an array");
      Requests = &V;
      HaveRequests = true;
    } else {
      return err(E, ErrorCode::UnknownField, "unknown field '" + K + "'");
    }
  }

  if (!HaveKind)
    return err(E, ErrorCode::BadRequest, "missing field 'kind'");
  if (!HaveId)
    return err(E, ErrorCode::BadRequest, "missing field 'id'");

  const char *Kind = requestKindName(R.Kind);
  bool WantsLoop = R.Kind == RequestKind::Compile ||
                   R.Kind == RequestKind::Check ||
                   R.Kind == RequestKind::Explain;
  if (WantsLoop && !HaveLoop)
    return err(E, ErrorCode::BadRequest,
               strf("missing field 'loop' for kind '%s'", Kind));
  if (!WantsLoop && HaveLoop)
    return err(E, ErrorCode::BadRequest,
               strf("field 'loop' is not valid for kind '%s'", Kind));
  if (!WantsLoop && HaveConfig)
    return err(E, ErrorCode::BadRequest,
               strf("field 'config' is not valid for kind '%s'", Kind));
  if (HaveSeed && R.Kind != RequestKind::Check)
    return err(E, ErrorCode::BadRequest,
               strf("field 'seed' is not valid for kind '%s'", Kind));
  if (HaveRequests != (R.Kind == RequestKind::Batch))
    return err(E, ErrorCode::BadRequest,
               HaveRequests
                   ? strf("field 'requests' is not valid for kind '%s'", Kind)
                   : "missing field 'requests' for kind 'batch'");

  if (R.Kind == RequestKind::Batch) {
    if (!AllowBatch)
      return err(E, ErrorCode::BadRequest, "batch requests cannot nest");
    R.Batch.reserve(Requests->Arr.size());
    for (size_t K = 0; K < Requests->Arr.size(); ++K) {
      Request Sub;
      if (!parseRequestValue(Requests->Arr[K], Sub, E,
                             /*AllowBatch=*/false)) {
        E.Message = strf("requests[%zu]: ", K) + E.Message;
        return false;
      }
      R.Batch.push_back(std::move(Sub));
    }
  }
  return true;
}

} // namespace

std::optional<Request> server::parseRequest(const std::string &Payload,
                                            ErrorInfo &Err, bool AllowBatch) {
  std::string JsonErr;
  std::optional<Value> V = obs::json::parse(Payload, &JsonErr);
  if (!V) {
    Err.Code = ErrorCode::BadJson;
    Err.Message = JsonErr;
    return std::nullopt;
  }
  Request R;
  if (!parseRequestValue(*V, R, Err, AllowBatch))
    return std::nullopt;
  return R;
}

std::string server::errorResponse(uint64_t Id, const ErrorInfo &Err) {
  std::string Out;
  obs::json::Writer W(Out);
  W.beginObject()
      .field("id", Id)
      .field("kind", "error")
      .field("schema_version", ProtocolSchemaVersion)
      .field("ok", false)
      .key("error")
      .beginObject()
      .field("code", errorCodeName(Err.Code))
      .field("message", Err.Message)
      .endObject()
      .endObject();
  return Out;
}
