//===- server/Service.h - Request dispatch over the pipeline -------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport-independent core of the compile server: one payload in,
/// one response out. handle() parses, validates, consults the
/// content-addressed CompileCache, runs pipeline::runPipeline on misses,
/// and renders deterministic JSON — responses depend only on the request
/// (compilation, verification, and explanation are all deterministic),
/// never on cache state, timing, or scheduling, which is what makes
/// parallel serving byte-identical to serial.
///
/// Every failure path is isolated per request: malformed payloads, loops
/// that do not parse, pipeline rejections, poisoned cache entries, and
/// exceptions escaping a worker all become structured error records; no
/// request can take the service down. Batch requests shard their
/// sub-requests across BatchJobs threads from an atomic cursor and merge
/// responses in index order — the simdize-fuzz --jobs discipline.
///
/// Telemetry is strictly a side channel — none of it feeds back into
/// response bytes:
///
///  - per-request tracing: when a trace sink is configured each request
///    gets its own obs::Tracer (trace id = request sequence number),
///    installed as the thread's TraceContext for the duration of
///    dispatch, so the pipeline's spans build one well-nested tree per
///    request even under concurrent serving; completed trees stream to
///    the Chrome-trace file as they finish;
///  - flight recorder: a bounded ring of request summaries (payload
///    hash, kind, which cache layer answered, duration, outcome, policy,
///    predicted shifts), dumped to JSON automatically when a worker
///    throws or a poisoned entry is detected, and on demand via the
///    `dump` request kind;
///  - metrics: hit rates, compile latency, and per-request latency flow
///    into the embedded obs::Registry ("server.*" namespace, with
///    per-cache-layer attribution); `stats` serializes the registry and
///    prometheusText() renders it in exposition format, plus a bounded
///    slow-request log gated on Opts.SlowMs.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SERVER_SERVICE_H
#define SIMDIZE_SERVER_SERVICE_H

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "obs/TraceSink.h"
#include "server/Cache.h"
#include "server/FlightRecorder.h"
#include "server/Protocol.h"
#include "sim/Checker.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace simdize {
namespace server {

struct ServiceOptions {
  /// Compile-cache capacity (entries); 0 means unbounded.
  size_t MaxCacheEntries = 1024;
  /// Reference-image (scalar oracle) cache capacity; 0 means unbounded.
  size_t MaxRefImages = 256;
  /// Worker threads a batch request shards its sub-requests across.
  unsigned BatchJobs = 1;
  /// When set, completed request traces stream here as Chrome trace-event
  /// JSON (one pid row per request).
  std::string TraceFile;
  /// Flight-recorder ring capacity (requests).
  size_t FlightCapacity = 256;
  /// When set, the flight recorder dumps here automatically on a worker
  /// fault or poisoned-entry detection (and at simdized shutdown).
  std::string FlightDumpFile;
  /// Requests at least this slow (milliseconds) are counted and kept in
  /// the bounded slow-request log; negative disables the log.
  double SlowMs = -1.0;
};

class Service {
public:
  explicit Service(const ServiceOptions &Opts = {})
      : Opts(Opts), Cache(Opts.MaxCacheEntries), RefImages(Opts.MaxRefImages),
        Flight(Opts.FlightCapacity),
        Start(std::chrono::steady_clock::now()) {
    if (!Opts.TraceFile.empty())
      TraceOut.open(Opts.TraceFile);
  }

  /// Handles one frame payload end to end. Never throws: every failure,
  /// including an exception escaping the pipeline, returns a structured
  /// error record. Safe to call concurrently.
  std::string handle(const std::string &Payload);

  obs::Registry &registry() { return Reg; }
  CompileCache &cache() { return Cache; }
  sim::ReferenceImageCache &refImages() { return RefImages; }
  FlightRecorder &flightRecorder() { return Flight; }
  const ServiceOptions &options() const { return Opts; }

  /// Seconds since this service was constructed.
  double uptimeSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  }

  /// The registry plus per-cache-layer attribution, build info, and
  /// uptime in Prometheus text exposition format.
  std::string prometheusText() const;

  /// Dumps the flight recorder to Opts.FlightDumpFile if one is set.
  void dumpFlightRecorder();

  /// Test-only fault injection: invoked with every validated request
  /// before dispatch (batch sub-requests included); anything it throws
  /// must surface as an internal_error record for that request alone.
  std::function<void(const Request &)> FaultHook;

  /// Test-only trace sink: invoked with each request's completed tracer
  /// (in addition to the trace file, if any). Set before serving starts.
  std::function<void(const obs::Tracer &)> TraceHook;

private:
  /// What obtain() learned about how a request resolved; feeds the flight
  /// recorder and per-layer counters, never the response.
  struct RequestTelemetry {
    CacheLayer Layer = CacheLayer::None;
    std::string Policy;
    int64_t PredictedShifts = -1;
  };

  /// One slow-request log entry.
  struct SlowEntry {
    uint64_t TraceId = 0;
    std::string Kind;
    double DurationMs = 0.0;
    std::string Outcome;
  };

  /// Full per-request dispatch; never throws. When the request resolved
  /// through a live cache entry, \p MemoKey (if given) receives its
  /// content key — the validity anchor for the rendered-response memo.
  std::string dispatch(const Request &R, bool AllowBatch,
                       uint64_t *MemoKey = nullptr,
                       RequestTelemetry *Tel = nullptr);

  /// Parse + cache-or-compile; the shared front half of compile / check /
  /// explain. False fills \p Err.
  bool obtain(const Request &R, uint64_t &Key,
              std::shared_ptr<CompileCache::Entry> &E, ErrorInfo &Err,
              RequestTelemetry *Tel);

  std::string doCompile(const Request &R, uint64_t *MemoKey,
                        RequestTelemetry *Tel);
  std::string doCheck(const Request &R, uint64_t *MemoKey,
                      RequestTelemetry *Tel);
  std::string doExplain(const Request &R, uint64_t *MemoKey,
                        RequestTelemetry *Tel);
  std::string doStats(const Request &R);
  std::string doBatch(const Request &R);
  std::string doDump(const Request &R);

  /// Post-dispatch bookkeeping shared by both handle() paths: flight
  /// record, slow log, trace flush, fault-triggered auto-dump.
  void finishRequest(const char *Kind, uint64_t PayloadHash,
                     uint64_t TraceId, double DurationMs,
                     const std::string &Response,
                     const RequestTelemetry &Tel, const obs::Tracer *Tr);

  /// The last content-addressing layer: rendered responses memoized by
  /// exact payload bytes for the pure request kinds (compile / check /
  /// explain — their responses are deterministic functions of the
  /// payload; stats and batch are never memoized). Every hit is
  /// re-validated against the live compile-cache entry under its content
  /// key, so eviction and poisoning invalidate memoized bytes for free.
  struct MemoEntry {
    std::string Payload; ///< Exact bytes — hash collisions cannot serve.
    RequestKind Kind = RequestKind::Stats;
    uint64_t Key = 0; ///< Compile-cache key anchoring validity.
    std::string Response;
  };

  ServiceOptions Opts;
  CompileCache Cache;
  sim::ReferenceImageCache RefImages;
  obs::Registry Reg;
  FlightRecorder Flight;
  obs::ChromeTraceWriter TraceOut;
  std::chrono::steady_clock::time_point Start;
  std::atomic<uint64_t> NextTraceId{1};
  /// Set on the paths that warrant an automatic flight dump (worker
  /// fault, poisoned entry); checked-and-cleared once per request.
  std::atomic<bool> FaultPending{false};
  std::mutex SlowMu;
  std::deque<SlowEntry> SlowLog; ///< Bounded at SlowLogCap, newest last.
  static constexpr size_t SlowLogCap = 32;
  std::mutex MemoMu;
  std::map<uint64_t, MemoEntry> ResponseMemo;
};

} // namespace server
} // namespace simdize

#endif // SIMDIZE_SERVER_SERVICE_H
