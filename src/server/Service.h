//===- server/Service.h - Request dispatch over the pipeline -------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport-independent core of the compile server: one payload in,
/// one response out. handle() parses, validates, consults the
/// content-addressed CompileCache, runs pipeline::runPipeline on misses,
/// and renders deterministic JSON — responses depend only on the request
/// (compilation, verification, and explanation are all deterministic),
/// never on cache state, timing, or scheduling, which is what makes
/// parallel serving byte-identical to serial.
///
/// Every failure path is isolated per request: malformed payloads, loops
/// that do not parse, pipeline rejections, poisoned cache entries, and
/// exceptions escaping a worker all become structured error records; no
/// request can take the service down. Batch requests shard their
/// sub-requests across BatchJobs threads from an atomic cursor and merge
/// responses in index order — the simdize-fuzz --jobs discipline.
///
/// Hit rates, compile latency, and per-request latency flow into the
/// embedded obs::Registry ("server.*" namespace, docs/SERVER.md); the
/// stats request kind serializes the registry and cache counters.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SERVER_SERVICE_H
#define SIMDIZE_SERVER_SERVICE_H

#include "obs/Metrics.h"
#include "server/Cache.h"
#include "server/Protocol.h"
#include "sim/Checker.h"

#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace simdize {
namespace server {

struct ServiceOptions {
  /// Compile-cache capacity (entries); 0 means unbounded.
  size_t MaxCacheEntries = 1024;
  /// Reference-image (scalar oracle) cache capacity; 0 means unbounded.
  size_t MaxRefImages = 256;
  /// Worker threads a batch request shards its sub-requests across.
  unsigned BatchJobs = 1;
};

class Service {
public:
  explicit Service(const ServiceOptions &Opts = {}) : Opts(Opts),
        Cache(Opts.MaxCacheEntries), RefImages(Opts.MaxRefImages) {}

  /// Handles one frame payload end to end. Never throws: every failure,
  /// including an exception escaping the pipeline, returns a structured
  /// error record. Safe to call concurrently.
  std::string handle(const std::string &Payload);

  obs::Registry &registry() { return Reg; }
  CompileCache &cache() { return Cache; }
  sim::ReferenceImageCache &refImages() { return RefImages; }
  const ServiceOptions &options() const { return Opts; }

  /// Test-only fault injection: invoked with every validated request
  /// before dispatch (batch sub-requests included); anything it throws
  /// must surface as an internal_error record for that request alone.
  std::function<void(const Request &)> FaultHook;

private:
  /// Full per-request dispatch; never throws. When the request resolved
  /// through a live cache entry, \p MemoKey (if given) receives its
  /// content key — the validity anchor for the rendered-response memo.
  std::string dispatch(const Request &R, bool AllowBatch,
                       uint64_t *MemoKey = nullptr);

  /// Parse + cache-or-compile; the shared front half of compile / check /
  /// explain. False fills \p Err.
  bool obtain(const Request &R, uint64_t &Key,
              std::shared_ptr<CompileCache::Entry> &E, ErrorInfo &Err);

  std::string doCompile(const Request &R, uint64_t *MemoKey);
  std::string doCheck(const Request &R, uint64_t *MemoKey);
  std::string doExplain(const Request &R, uint64_t *MemoKey);
  std::string doStats(const Request &R);
  std::string doBatch(const Request &R);

  /// The last content-addressing layer: rendered responses memoized by
  /// exact payload bytes for the pure request kinds (compile / check /
  /// explain — their responses are deterministic functions of the
  /// payload; stats and batch are never memoized). Every hit is
  /// re-validated against the live compile-cache entry under its content
  /// key, so eviction and poisoning invalidate memoized bytes for free.
  struct MemoEntry {
    std::string Payload; ///< Exact bytes — hash collisions cannot serve.
    RequestKind Kind = RequestKind::Stats;
    uint64_t Key = 0; ///< Compile-cache key anchoring validity.
    std::string Response;
  };

  ServiceOptions Opts;
  CompileCache Cache;
  sim::ReferenceImageCache RefImages;
  obs::Registry Reg;
  std::mutex MemoMu;
  std::map<uint64_t, MemoEntry> ResponseMemo;
};

} // namespace server
} // namespace simdize

#endif // SIMDIZE_SERVER_SERVICE_H
