//===- server/Protocol.h - Wire protocol of the compile server -----------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `simdized` wire protocol: length-prefixed JSON frames carrying
/// compile / check / explain / stats / batch / dump requests and their
/// responses. One frame is
///
///   <decimal byte length> '\n' <exactly that many bytes of JSON>
///
/// in both directions. Framing is deliberately dumb — no escaping, no
/// continuation — so any language can speak it with a readline and a
/// counted read. Payload schema, error codes, and examples are specified
/// in docs/SERVER.md.
///
/// The layer splits in two:
///
///  - framing: encodeFrame() and the incremental FrameReader, which turns
///    an arbitrary byte stream into complete payloads and classifies the
///    three ways a stream can die (malformed length, oversized frame,
///    truncation mid-frame);
///  - schema: parseRequest(), a strict validator over obs::json — unknown
///    fields, fields misplaced for the request kind, and malformed values
///    are all structured errors, never silently ignored.
///
/// Every failure is an ErrorInfo with a stable machine-readable code;
/// errorResponse() renders the golden error-record shape tests pin down.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SERVER_PROTOCOL_H
#define SIMDIZE_SERVER_PROTOCOL_H

#include "pipeline/Pipeline.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace simdize {
namespace server {

/// Hard ceiling on one frame's payload; a length above this is rejected
/// before any allocation, so a hostile or corrupted length prefix cannot
/// balloon the daemon.
constexpr size_t MaxFrameBytes = 8u << 20;

/// Version of the response record schema. Every response envelope — ok
/// and error alike — carries it as "schema_version", so a client can
/// detect a daemon speaking a newer schema before interpreting any other
/// field. Bumped on any change to response shapes or field semantics:
///
///   1  initial versioned schema (implicit in all pre-versioned daemons);
///   2  kinded-statement release: decision logs gained per-statement
///      guard/reduction records (docs/SERVER.md, "Schema versioning").
constexpr uint64_t ProtocolSchemaVersion = 2;

/// Stable machine-readable failure classification. Framing-level codes
/// (BadFrame, OversizedFrame, TruncatedFrame) terminate the connection
/// after one error record — the stream cannot be resynchronized; all
/// payload-level codes are per-request and leave the connection serving.
enum class ErrorCode {
  BadFrame,       ///< Length prefix is not a plain decimal number.
  OversizedFrame, ///< Length prefix exceeds MaxFrameBytes.
  TruncatedFrame, ///< Stream ended mid-frame (client disconnect).
  BadJson,        ///< Payload is not well-formed JSON.
  BadRequest,     ///< Schema violation: missing/misplaced/mistyped field.
  UnknownField,   ///< A field no request kind defines.
  UnknownKind,    ///< "kind" is not one of the six request kinds.
  ParseError,     ///< The loop text does not parse.
  CompileError,   ///< The pipeline rejected the loop (deterministic).
  PoisonedCache,  ///< A cache entry failed its integrity checksum.
  Internal,       ///< Exception escaped a worker; the request is isolated.
};

/// The wire spelling of \p Code ("bad_frame", "compile_error", ...).
const char *errorCodeName(ErrorCode Code);

/// One structured failure: code plus human-readable detail.
struct ErrorInfo {
  ErrorCode Code = ErrorCode::Internal;
  std::string Message;
};

/// Renders \p Payload as one wire frame.
std::string encodeFrame(const std::string &Payload);

/// Incremental frame decoder: feed() it raw bytes as they arrive and it
/// appends every completed payload to the caller's vector. A framing
/// error (bad length, oversized length) poisons the reader permanently —
/// feed() returns false and error() describes why. finish() signals EOF
/// and reports truncation when the stream died mid-frame.
class FrameReader {
public:
  /// Consumes \p N bytes. Returns false once the stream is poisoned.
  bool feed(const char *Data, size_t N, std::vector<std::string> &Out);

  /// Signals end of stream. Returns true for a clean boundary; false
  /// (and poisons the reader with TruncatedFrame) when EOF hit inside a
  /// frame header or payload.
  bool finish();

  bool failed() const { return Failed; }
  const ErrorInfo &error() const { return Err; }

private:
  bool fail(ErrorCode Code, std::string Message);

  std::string Header;  ///< Accumulated length prefix (digits before \n).
  std::string Payload; ///< Accumulated payload bytes.
  size_t Expected = 0; ///< Payload length once the header is complete.
  bool InPayload = false;
  bool Failed = false;
  ErrorInfo Err;
};

/// The six request kinds. Dump returns the flight recorder's ring of
/// recent request summaries (docs/SERVER.md, "Flight recorder").
enum class RequestKind { Compile, Check, Explain, Stats, Batch, Dump };

/// The wire spelling of \p Kind ("compile", "check", ...).
const char *requestKindName(RequestKind Kind);

/// One validated request. Config carries the complete
/// pipeline::CompileRequest; an omitted "config" object (or omitted
/// members) means the struct's own defaults — zero-shift policy, no
/// software pipelining, V = 16, Std opt level, VM tier.
struct Request {
  uint64_t Id = 0;
  RequestKind Kind = RequestKind::Stats;
  std::string LoopText;              ///< compile / check / explain.
  pipeline::CompileRequest Config;   ///< compile / check / explain.
  uint64_t Seed = 1;                 ///< check.
  std::vector<Request> Batch;        ///< batch (sub-requests, never nested).
};

/// Parses and strictly validates one payload. On any violation returns
/// std::nullopt with \p Err filled. \p AllowBatch is cleared when parsing
/// batch sub-requests so nesting is rejected.
std::optional<Request> parseRequest(const std::string &Payload,
                                    ErrorInfo &Err, bool AllowBatch = true);

/// The golden error record:
/// {"id":N,"kind":"error","schema_version":2,"ok":false,
///  "error":{"code":...,"message":...}}.
std::string errorResponse(uint64_t Id, const ErrorInfo &Err);

} // namespace server
} // namespace simdize

#endif // SIMDIZE_SERVER_PROTOCOL_H
