//===- server/Server.h - Framed transport: connections, daemon, client ---===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport around server::Service: runConnection() serves one
/// framed byte stream (stdin/stdout, a pipe pair, or an accepted socket)
/// with a worker pool and strict response ordering; UnixServer accepts
/// connections on a Unix-domain socket, one connection thread each, all
/// sharing one Service (and therefore one cache); Client speaks the frame
/// protocol from the other end for tools and harnesses that route through
/// a daemon.
///
/// Ordering discipline: the reader assigns each frame a sequence number
/// on arrival, workers compute responses in parallel, and a writer emits
/// them strictly in sequence — so a pipelining client reads responses in
/// the order it sent requests regardless of per-request cost, and the
/// byte stream a parallel daemon produces is identical to a serial one.
///
/// Failure behavior: payload-level errors are per-request records and the
/// connection keeps serving; framing errors (malformed length, oversized
/// frame, truncation from a client disconnect mid-frame) produce one
/// final error record and end that connection only — the Service, its
/// caches, and every other connection keep going.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SERVER_SERVER_H
#define SIMDIZE_SERVER_SERVER_H

#include "server/Protocol.h"
#include "server/Service.h"

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace simdize {
namespace server {

struct ServeOptions {
  /// Worker threads decoding requests for one connection.
  unsigned Jobs = 1;
};

/// Serves frames from \p InFd to \p OutFd until EOF or a framing error.
/// Returns true on a clean EOF at a frame boundary with every response
/// written; false when the stream died (framing error, truncated frame,
/// or a write failure to a vanished client).
bool runConnection(int InFd, int OutFd, Service &S,
                   const ServeOptions &O = {});

/// A Unix-domain-socket daemon around one shared Service. start() binds
/// (unlinking a stale socket first), listens, and accepts on a background
/// thread; every connection is served by its own thread over
/// runConnection. stop() stops accepting, waits for live connections to
/// drain, and removes the socket file.
class UnixServer {
public:
  UnixServer(Service &S, std::string Path, ServeOptions O = {})
      : Svc(S), Path(std::move(Path)), O(O) {}
  ~UnixServer() { stop(); }

  bool start(std::string *Err = nullptr);
  void stop();

  const std::string &path() const { return Path; }

private:
  void acceptLoop();

  Service &Svc;
  std::string Path;
  ServeOptions O;
  int ListenFd = -1;
  std::atomic<bool> Stopping{false};
  std::thread Acceptor;
  std::mutex ConnMu;
  std::vector<std::thread> Conns;
};

/// A synchronous frame-protocol client: one request out, one response in.
class Client {
public:
  ~Client() { close(); }

  bool connect(const std::string &Path, std::string *Err = nullptr);
  void close();
  bool connected() const { return Fd >= 0; }

  /// Sends \p RequestJson as one frame and blocks for the matching
  /// response payload. False on any transport failure.
  bool call(const std::string &RequestJson, std::string &ResponseJson,
            std::string *Err = nullptr);

  /// The raw socket, for tests that need to misbehave (partial frames).
  int fd() const { return Fd; }

private:
  int Fd = -1;
  FrameReader Reader;
  std::vector<std::string> Pending;
};

/// write() loop handling partial writes and EINTR; false on error.
bool writeAll(int Fd, const std::string &Bytes);

} // namespace server
} // namespace simdize

#endif // SIMDIZE_SERVER_SERVER_H
