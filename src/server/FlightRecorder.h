//===- server/FlightRecorder.h - Bounded ring of request summaries -------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile server's flight recorder: a bounded, lock-protected ring
/// of recent request summaries — payload hash, kind, which cache layer
/// answered (rendered-response memo / raw-text alias memo / live compile
/// cache entry / full miss), duration with a coarse bucket, outcome, the
/// resolved placement policy and its predicted steady-shift count, and
/// the request's trace id. The ring dumps to JSON automatically when an
/// exception escapes a worker or a poisoned cache entry is detected, and
/// on demand through the `dump` request kind — the last N requests before
/// an incident, always available, never in the response path.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SERVER_FLIGHTRECORDER_H
#define SIMDIZE_SERVER_FLIGHTRECORDER_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace simdize {
namespace server {

/// Which content-addressing layer answered a request (docs/SERVER.md
/// "Content-addressed caching"); None for kinds that never consult the
/// cache (stats / dump / batch envelopes) and for rejected payloads.
enum class CacheLayer { None, ResponseMemo, Alias, Live, Miss };

/// Stable wire spelling: "none" / "memo" / "alias" / "live" / "miss".
const char *cacheLayerName(CacheLayer L);

/// Coarse log-scale latency class ("lt1ms" ... "ge1s") for \p Ms.
const char *durationBucket(double Ms);

/// One request summary in the ring.
struct FlightRecord {
  uint64_t Seq = 0;         ///< Assigned by record(); monotone.
  uint64_t TraceId = 0;     ///< 0 when tracing was off.
  uint64_t PayloadHash = 0; ///< FNV-1a over the raw payload bytes.
  std::string Kind;         ///< Request kind, or "error" for rejects.
  CacheLayer Layer = CacheLayer::None;
  double DurationMs = 0.0;
  std::string Outcome; ///< "ok" or the structured error code.
  std::string Policy;  ///< Resolved placement policy; empty when n/a.
  /// Predicted steady-state shifts of the compiled program; -1 when the
  /// request never reached a successful compilation.
  int64_t PredictedShifts = -1;
};

/// The bounded ring. All methods are thread-safe.
class FlightRecorder {
public:
  explicit FlightRecorder(size_t Capacity = 256)
      : Cap(Capacity ? Capacity : 1) {
    Ring.reserve(Cap);
  }

  /// Appends \p R (assigning its sequence number), overwriting the oldest
  /// record once the ring is full. Returns the assigned sequence.
  uint64_t record(FlightRecord R);

  size_t capacity() const { return Cap; }
  uint64_t recorded() const;
  /// Records lost to the bound (recorded() - what the ring still holds).
  uint64_t dropped() const;

  /// {"capacity":...,"recorded":...,"dropped":...,"records":[...]} with
  /// records oldest-first. Deterministic given the same history.
  std::string toJson() const;

  /// Writes toJson() to \p Path (truncating). False with \p Err filled on
  /// I/O failure.
  bool dumpToFile(const std::string &Path, std::string *Err = nullptr) const;

private:
  mutable std::mutex Mu;
  size_t Cap;
  uint64_t Next = 0;              ///< Total records ever appended.
  std::vector<FlightRecord> Ring; ///< Slot = Seq % Cap once warm.
};

} // namespace server
} // namespace simdize

#endif // SIMDIZE_SERVER_FLIGHTRECORDER_H
