//===- server/FlightRecorder.cpp ------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "server/FlightRecorder.h"

#include "obs/Json.h"
#include "support/Format.h"

#include <cstdio>

using namespace simdize;
using namespace simdize::server;

const char *server::cacheLayerName(CacheLayer L) {
  switch (L) {
  case CacheLayer::None:
    return "none";
  case CacheLayer::ResponseMemo:
    return "memo";
  case CacheLayer::Alias:
    return "alias";
  case CacheLayer::Live:
    return "live";
  case CacheLayer::Miss:
    return "miss";
  }
  return "none";
}

const char *server::durationBucket(double Ms) {
  if (Ms < 1.0)
    return "lt1ms";
  if (Ms < 10.0)
    return "lt10ms";
  if (Ms < 100.0)
    return "lt100ms";
  if (Ms < 1000.0)
    return "lt1s";
  return "ge1s";
}

uint64_t FlightRecorder::record(FlightRecord R) {
  std::lock_guard<std::mutex> L(Mu);
  R.Seq = Next++;
  size_t Slot = static_cast<size_t>(R.Seq % Cap);
  if (Slot < Ring.size())
    Ring[Slot] = std::move(R);
  else
    Ring.push_back(std::move(R));
  return Next - 1;
}

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> L(Mu);
  return Next;
}

uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> L(Mu);
  return Next > Cap ? Next - Cap : 0;
}

std::string FlightRecorder::toJson() const {
  std::lock_guard<std::mutex> L(Mu);
  std::string Out;
  obs::json::Writer W(Out);
  W.beginObject()
      .field("capacity", static_cast<uint64_t>(Cap))
      .field("recorded", Next)
      .field("dropped", Next > Cap ? Next - Cap : uint64_t(0));
  W.key("records").beginArray();
  // Oldest live record first: once the ring wraps that is Seq = Next - Cap.
  uint64_t First = Next > Cap ? Next - Cap : 0;
  for (uint64_t Seq = First; Seq < Next; ++Seq) {
    const FlightRecord &R = Ring[static_cast<size_t>(Seq % Cap)];
    W.beginObject()
        .field("seq", R.Seq)
        .field("trace_id", R.TraceId)
        .field("payload_hash", strf("%016llx",
                                    static_cast<unsigned long long>(
                                        R.PayloadHash)))
        .field("kind", R.Kind)
        .field("cache_layer", cacheLayerName(R.Layer))
        .field("duration_ms", R.DurationMs)
        .field("duration_bucket", durationBucket(R.DurationMs))
        .field("outcome", R.Outcome)
        .field("policy", R.Policy)
        .field("predicted_shifts", R.PredictedShifts)
        .endObject();
  }
  W.endArray().endObject();
  return Out;
}

bool FlightRecorder::dumpToFile(const std::string &Path,
                                std::string *Err) const {
  std::string Json = toJson();
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    if (Err)
      *Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  bool Ok = std::fwrite(Json.data(), 1, Json.size(), F) == Json.size();
  Ok = std::fwrite("\n", 1, 1, F) == 1 && Ok;
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok && Err)
    *Err = "short write to '" + Path + "'";
  return Ok;
}
