//===- server/Service.cpp -------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "server/Service.h"

#include "codegen/Explain.h"
#include "ir/IRPrinter.h"
#include "native/NativeRun.h"
#include "obs/Json.h"
#include "parser/LoopParser.h"
#include "policies/ShiftPolicy.h"
#include "support/Format.h"
#include "vir/VPrinter.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

using namespace simdize;
using namespace simdize::server;

namespace {

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// Opens the uniform response envelope: {"id":N,"kind":K,"ok":true,...
obs::json::Writer &beginOk(obs::json::Writer &W, const Request &R) {
  return W.beginObject()
      .field("id", R.Id)
      .field("kind", requestKindName(R.Kind))
      .field("ok", true);
}

} // namespace

bool Service::obtain(const Request &R, uint64_t &Key,
                     std::shared_ptr<CompileCache::Entry> &E, ErrorInfo &Err) {
  // Fast path: a byte-identical resubmission resolves through the
  // raw-text memo without parsing or printing anything. keyOf over the
  // unparsed spelling is a valid memo key — distinct spellings get
  // distinct memo slots that converge on one canonical entry.
  uint64_t TextKey = CompileCache::keyOf(R.LoopText, R.Config);
  if (std::optional<uint64_t> Memo = Cache.findAlias(TextKey)) {
    switch (Cache.find(*Memo, E)) {
    case CompileCache::Outcome::Hit:
      Key = *Memo;
      Reg.count("server.cache.hits");
      return true;
    case CompileCache::Outcome::Poisoned:
      Key = *Memo;
      Reg.count("server.cache.poisoned");
      Err.Code = ErrorCode::PoisonedCache;
      Err.Message = strf("cache entry %016llx failed its integrity checksum; "
                         "evicted — retry the request",
                         static_cast<unsigned long long>(Key));
      return false;
    case CompileCache::Outcome::Miss:
      break; // Alias outlived its entry; fall through to the slow path.
    }
  }

  parser::ParseResult P =
      parser::parseLoop(R.LoopText, R.Config.target().VectorLen);
  if (!P.ok()) {
    Err.Code = ErrorCode::ParseError;
    Err.Message = P.Error;
    return false;
  }

  // Content addressing: the canonical print collapses whitespace/comment
  // variants of one loop to one key.
  Key = CompileCache::keyOf(ir::printLoop(*P.Loop), R.Config);
  Cache.recordAlias(TextKey, Key);

  switch (Cache.find(Key, E)) {
  case CompileCache::Outcome::Hit:
    Reg.count("server.cache.hits");
    return true;
  case CompileCache::Outcome::Poisoned:
    Reg.count("server.cache.poisoned");
    Err.Code = ErrorCode::PoisonedCache;
    Err.Message = strf("cache entry %016llx failed its integrity checksum; "
                       "evicted — retry the request",
                       static_cast<unsigned long long>(Key));
    return false;
  case CompileCache::Outcome::Miss:
    break;
  }
  Reg.count("server.cache.misses");

  auto Loop = std::make_shared<const ir::Loop>(std::move(*P.Loop));
  auto Fresh = std::make_shared<CompileCache::Entry>();
  Fresh->SourceLoop = Loop;

  auto T0 = std::chrono::steady_clock::now();
  Fresh->Result = pipeline::runPipeline(*Loop, R.Config);
  Reg.observe("server.compile_ms", msSince(T0));

  if (Fresh->Result.ok())
    Fresh->ProgramText = vir::printProgram(*Fresh->Result.Simd.Program);
  Fresh->Checksum = CompileCache::checksumOf(*Fresh);

  // First writer wins under concurrent misses; compilation is
  // deterministic, so every caller responds from equivalent bytes either
  // way, but responding from the canonical entry keeps one live copy.
  E = Cache.insert(Key, std::move(Fresh));
  return true;
}

std::string Service::doCompile(const Request &R, uint64_t *MemoKey) {
  uint64_t Key = 0;
  std::shared_ptr<CompileCache::Entry> E;
  ErrorInfo Err;
  if (!obtain(R, Key, E, Err))
    return errorResponse(R.Id, Err);
  if (MemoKey)
    *MemoKey = Key;
  if (!E->Result.ok())
    return errorResponse(
        R.Id, {ErrorCode::CompileError,
               "[" + E->Result.ConfigName + "] " + E->Result.error()});

  const codegen::SimdizeResult &S = E->Result.Simd;
  unsigned SteadyShifts =
      std::accumulate(S.StmtSteadyShifts.begin(), S.StmtSteadyShifts.end(), 0u);
  std::string Out;
  obs::json::Writer W(Out);
  beginOk(W, R)
      .field("config", E->Result.ConfigName)
      .field("policy", policies::policyName(E->Result.ResolvedPolicy))
      .field("width", R.Config.target().VectorLen)
      .field("reassociated", E->Result.Reassociated)
      .field("placed_shifts", S.ShiftCount)
      .field("steady_shifts", SteadyShifts)
      .field("program", E->ProgramText)
      .endObject();
  return Out;
}

std::string Service::doCheck(const Request &R, uint64_t *MemoKey) {
  uint64_t Key = 0;
  std::shared_ptr<CompileCache::Entry> E;
  ErrorInfo Err;
  if (!obtain(R, Key, E, Err))
    return errorResponse(R.Id, Err);
  if (MemoKey)
    *MemoKey = Key;
  if (!E->Result.ok())
    return errorResponse(
        R.Id, {ErrorCode::CompileError,
               "[" + E->Result.ConfigName + "] " + E->Result.error()});

  CompileCache::Verdict V;
  if (Cache.findVerdict(Key, R.Seed, V)) {
    Reg.count("server.verdict.hits");
  } else {
    Reg.count("server.verdict.misses");
    auto T0 = std::chrono::steady_clock::now();
    // Mirrors pipeline::checkCompiled, but the scalar oracle comes from
    // the shared content-addressed reference-image cache: when the
    // request reassociated offsets the rewritten loop is the one the
    // program computes, so both the image and its key follow it.
    const ir::Loop &Checked =
        E->Result.ReassocLoop ? *E->Result.ReassocLoop : *E->SourceLoop;
    uint64_t LoopKey =
        CompileCache::hashBytes(14695981039346656037ULL, ir::printLoop(Checked));
    std::shared_ptr<const sim::ReferenceImage> Ref = RefImages.get(
        LoopKey, Checked, E->Result.Simd.Program->getVectorLen(), R.Seed);
    sim::CheckContext Ctx{E->Result.ConfigName};
    sim::CheckResult C =
        sim::checkSimdization(Checked, *E->Result.Simd.Program, *Ref, &Ctx);
    if (C.Ok && E->Result.Tier == pipeline::ExecTier::Native) {
      if (auto NErr = native::diffNativeAgainstOracle(
              Checked, *E->Result.Simd.Program, *Ref)) {
        C.Ok = false;
        C.Message = "[" + Ctx.Scheme + "] " + *NErr;
      }
    }
    V.Ok = C.Ok;
    V.Message = C.Message;
    Cache.recordVerdict(Key, R.Seed, V);
    Reg.observe("server.check_ms", msSince(T0));
  }

  std::string Out;
  obs::json::Writer W(Out);
  beginOk(W, R)
      .field("config", E->Result.ConfigName)
      .field("seed", R.Seed)
      .key("verdict")
      .beginObject()
      .field("ok", V.Ok)
      .field("message", V.Message)
      .endObject()
      .endObject();
  return Out;
}

std::string Service::doExplain(const Request &R, uint64_t *MemoKey) {
  uint64_t Key = 0;
  std::shared_ptr<CompileCache::Entry> E;
  ErrorInfo Err;
  if (!obtain(R, Key, E, Err))
    return errorResponse(R.Id, Err);
  if (MemoKey)
    *MemoKey = Key;

  // Explanation is legitimate for rejected loops too — the log carries
  // the classified error — so no CompileError gate here.
  const ir::Loop &Run =
      E->Result.ReassocLoop ? *E->Result.ReassocLoop : *E->SourceLoop;
  codegen::SimdizeOptions Used = R.Config.Simd;
  Used.Policy = E->Result.ResolvedPolicy;
  obs::DecisionLog Log = codegen::explainSimdization(Run, Used, E->Result.Simd);
  if (E->Result.OptRan) {
    Log.OptRan = true;
    Log.OptRewrites = {
        {"cse", "removed", E->Result.Opt.CSERemoved},
        {"predictive-commoning", "replaced", E->Result.Opt.PCReplaced},
        {"unroll-copies", "removed", E->Result.Opt.CopiesRemoved},
        {"dce", "removed", E->Result.Opt.DCERemoved},
    };
  }

  std::string Out;
  obs::json::Writer W(Out);
  beginOk(W, R)
      .field("config", E->Result.ConfigName)
      .key("decisions")
      .raw(Log.toJson())
      .endObject();
  return Out;
}

std::string Service::doStats(const Request &R) {
  CompileCache::Stats CS = Cache.stats();
  sim::ReferenceImageCache::Stats RS = RefImages.stats();
  std::string Out;
  obs::json::Writer W(Out);
  beginOk(W, R)
      .key("cache")
      .beginObject()
      .field("entries", static_cast<uint64_t>(Cache.size()))
      .field("hits", CS.Hits)
      .field("misses", CS.Misses)
      .field("evictions", CS.Evictions)
      .field("poisoned", CS.Poisoned)
      .field("verdict_hits", CS.VerdictHits)
      .field("verdict_misses", CS.VerdictMisses)
      .endObject()
      .key("ref_images")
      .beginObject()
      .field("entries", static_cast<uint64_t>(RefImages.size()))
      .field("hits", RS.Hits)
      .field("misses", RS.Misses)
      .field("evictions", RS.Evictions)
      .field("rebinds", RS.Rebinds)
      .endObject()
      .key("metrics")
      .raw(Reg.toJson())
      .endObject();
  return Out;
}

std::string Service::doBatch(const Request &R) {
  // The simdize-fuzz --jobs discipline: workers pull sub-requests from an
  // atomic cursor, results land by index, and the merge walks them in
  // order — responses are byte-identical whatever BatchJobs is.
  std::vector<std::string> Sub(R.Batch.size());
  std::atomic<size_t> Cursor{0};
  auto Work = [&]() {
    for (;;) {
      size_t I = Cursor.fetch_add(1);
      if (I >= R.Batch.size())
        return;
      Sub[I] = dispatch(R.Batch[I], /*AllowBatch=*/false);
    }
  };
  unsigned Jobs =
      static_cast<unsigned>(std::min<size_t>(std::max(1u, Opts.BatchJobs),
                                             std::max<size_t>(1, R.Batch.size())));
  if (Jobs <= 1) {
    Work();
  } else {
    std::vector<std::thread> Workers;
    Workers.reserve(Jobs);
    for (unsigned T = 0; T < Jobs; ++T)
      Workers.emplace_back(Work);
    for (std::thread &W : Workers)
      W.join();
  }

  std::string Out;
  obs::json::Writer W(Out);
  beginOk(W, R).key("responses").beginArray();
  for (const std::string &S : Sub)
    W.raw(S);
  W.endArray().endObject();
  return Out;
}

std::string Service::dispatch(const Request &R, bool AllowBatch,
                              uint64_t *MemoKey) {
  auto T0 = std::chrono::steady_clock::now();
  Reg.count("server.requests");
  Reg.count(std::string("server.requests.") + requestKindName(R.Kind));
  std::string Out;
  try {
    if (FaultHook)
      FaultHook(R);
    switch (R.Kind) {
    case RequestKind::Compile:
      Out = doCompile(R, MemoKey);
      break;
    case RequestKind::Check:
      Out = doCheck(R, MemoKey);
      break;
    case RequestKind::Explain:
      Out = doExplain(R, MemoKey);
      break;
    case RequestKind::Stats:
      Out = doStats(R);
      break;
    case RequestKind::Batch:
      Out = AllowBatch
                ? doBatch(R)
                : errorResponse(R.Id, {ErrorCode::BadRequest,
                                       "batch requests cannot nest"});
      break;
    }
  } catch (const std::exception &Ex) {
    Reg.count("server.errors.internal");
    if (MemoKey)
      *MemoKey = 0; // Never memoize a response shaped by a fault.
    Out = errorResponse(
        R.Id, {ErrorCode::Internal,
               std::string("exception escaped the worker: ") + Ex.what()});
  } catch (...) {
    Reg.count("server.errors.internal");
    if (MemoKey)
      *MemoKey = 0;
    Out = errorResponse(R.Id, {ErrorCode::Internal,
                               "non-standard exception escaped the worker"});
  }
  Reg.observe("server.request_ms", msSince(T0));
  return Out;
}

std::string Service::handle(const std::string &Payload) {
  // Rendered-response fast path: exact payload bytes seen before, for a
  // pure kind, anchored to a compile-cache entry that is still live and
  // checksum-clean — skip parsing, dispatch, and rendering entirely. The
  // re-validation through Cache.find keeps poisoning and eviction
  // observable: a dead anchor falls through to the full path.
  uint64_t PayloadHash = CompileCache::hashBytes(14695981039346656037ULL,
                                                 Payload);
  {
    MemoEntry Hit;
    bool Found = false;
    {
      std::lock_guard<std::mutex> Lock(MemoMu);
      auto It = ResponseMemo.find(PayloadHash);
      if (It != ResponseMemo.end() && It->second.Payload == Payload) {
        Hit = It->second;
        Found = true;
      }
    }
    if (Found && Cache.peek(Hit.Key) == CompileCache::Outcome::Hit) {
      Reg.count("server.requests");
      Reg.count(std::string("server.requests.") + requestKindName(Hit.Kind));
      Reg.count("server.cache.hits");
      return Hit.Response;
    }
  }

  ErrorInfo Err;
  std::optional<Request> R = parseRequest(Payload, Err);
  if (!R) {
    Reg.count("server.requests");
    Reg.count("server.errors.rejected");
    // Malformed payloads carry no trustworthy id; the record uses 0.
    return errorResponse(0, Err);
  }

  uint64_t MemoKey = 0;
  std::string Out = dispatch(*R, /*AllowBatch=*/true, &MemoKey);
  // Check responses stay un-memoized: they are pure too, but routing
  // repeats through the verdict cache keeps that layer exercised and its
  // hit counters meaningful; the alias fast path already skips the parse.
  if (MemoKey != 0 &&
      (R->Kind == RequestKind::Compile || R->Kind == RequestKind::Explain)) {
    std::lock_guard<std::mutex> Lock(MemoMu);
    // Rebuilt on demand, so the bound is a crude wholesale reset.
    if (ResponseMemo.size() >= 4096 + 4 * Opts.MaxCacheEntries)
      ResponseMemo.clear();
    ResponseMemo[PayloadHash] = {Payload, R->Kind, MemoKey, Out};
  }
  return Out;
}
