//===- server/Service.cpp -------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "server/Service.h"

#include "codegen/Explain.h"
#include "ir/IRPrinter.h"
#include "native/NativeRun.h"
#include "obs/Json.h"
#include "obs/Prometheus.h"
#include "parser/LoopParser.h"
#include "policies/ShiftPolicy.h"
#include "server/BuildInfo.h"
#include "support/Format.h"
#include "vir/VPrinter.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <optional>
#include <thread>

using namespace simdize;
using namespace simdize::server;

namespace {

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// Opens the uniform response envelope:
/// {"id":N,"kind":K,"schema_version":V,"ok":true,...
obs::json::Writer &beginOk(obs::json::Writer &W, const Request &R) {
  return W.beginObject()
      .field("id", R.Id)
      .field("kind", requestKindName(R.Kind))
      .field("schema_version", ProtocolSchemaVersion)
      .field("ok", true);
}

/// Classifies a rendered response for the flight recorder: "ok", or the
/// structured error code. The envelope's kind is the first "kind" field
/// in the document (string values escape their quotes, so a program text
/// cannot spoof it); batch envelopes are always ok regardless of what
/// their sub-responses carry.
std::string outcomeOf(const std::string &Response) {
  size_t K = Response.find("\"kind\":\"");
  if (K == std::string::npos ||
      Response.compare(K + 8, 6, "error\"") != 0)
    return "ok";
  size_t C = Response.find("\"code\":\"");
  if (C == std::string::npos)
    return "error";
  C += 8;
  size_t End = Response.find('"', C);
  return Response.substr(C, End == std::string::npos ? std::string::npos
                                                     : End - C);
}

} // namespace

bool Service::obtain(const Request &R, uint64_t &Key,
                     std::shared_ptr<CompileCache::Entry> &E, ErrorInfo &Err,
                     RequestTelemetry *Tel) {
  // Telemetry is write-only here: which layer answered, and what the
  // compiled result predicts. Never read back into the response.
  auto NoteLayer = [&](CacheLayer L, const char *Counter) {
    Reg.count(Counter);
    if (Tel)
      Tel->Layer = L;
  };
  auto NoteResult = [&]() {
    if (!Tel || !E || !E->Result.ok())
      return;
    const codegen::SimdizeResult &S = E->Result.Simd;
    Tel->Policy = policies::policyName(E->Result.ResolvedPolicy);
    Tel->PredictedShifts = static_cast<int64_t>(std::accumulate(
        S.StmtSteadyShifts.begin(), S.StmtSteadyShifts.end(), 0u));
  };

  // Fast path: a byte-identical resubmission resolves through the
  // raw-text memo without parsing or printing anything. keyOf over the
  // unparsed spelling is a valid memo key — distinct spellings get
  // distinct memo slots that converge on one canonical entry.
  uint64_t TextKey = CompileCache::keyOf(R.LoopText, R.Config);
  if (std::optional<uint64_t> Memo = Cache.findAlias(TextKey)) {
    switch (Cache.find(*Memo, E)) {
    case CompileCache::Outcome::Hit:
      Key = *Memo;
      Reg.count("server.cache.hits");
      NoteLayer(CacheLayer::Alias, "server.cache.alias_hits");
      NoteResult();
      return true;
    case CompileCache::Outcome::Poisoned:
      Key = *Memo;
      Reg.count("server.cache.poisoned");
      FaultPending.store(true);
      Err.Code = ErrorCode::PoisonedCache;
      Err.Message = strf("cache entry %016llx failed its integrity checksum; "
                         "evicted — retry the request",
                         static_cast<unsigned long long>(Key));
      return false;
    case CompileCache::Outcome::Miss:
      break; // Alias outlived its entry; fall through to the slow path.
    }
  }

  parser::ParseResult P =
      parser::parseLoop(R.LoopText, R.Config.target().VectorLen);
  if (!P.ok()) {
    Err.Code = ErrorCode::ParseError;
    Err.Message = P.Error;
    return false;
  }

  // Content addressing: the canonical print collapses whitespace/comment
  // variants of one loop to one key.
  Key = CompileCache::keyOf(ir::printLoop(*P.Loop), R.Config);
  Cache.recordAlias(TextKey, Key);

  switch (Cache.find(Key, E)) {
  case CompileCache::Outcome::Hit:
    Reg.count("server.cache.hits");
    NoteLayer(CacheLayer::Live, "server.cache.live_hits");
    NoteResult();
    return true;
  case CompileCache::Outcome::Poisoned:
    Reg.count("server.cache.poisoned");
    FaultPending.store(true);
    Err.Code = ErrorCode::PoisonedCache;
    Err.Message = strf("cache entry %016llx failed its integrity checksum; "
                       "evicted — retry the request",
                       static_cast<unsigned long long>(Key));
    return false;
  case CompileCache::Outcome::Miss:
    break;
  }
  Reg.count("server.cache.misses");
  NoteLayer(CacheLayer::Miss, "server.cache.miss_compiles");

  auto Loop = std::make_shared<const ir::Loop>(std::move(*P.Loop));
  auto Fresh = std::make_shared<CompileCache::Entry>();
  Fresh->SourceLoop = Loop;

  auto T0 = std::chrono::steady_clock::now();
  Fresh->Result = pipeline::runPipeline(*Loop, R.Config);
  Reg.observe("server.compile_ms", msSince(T0));

  if (Fresh->Result.ok())
    Fresh->ProgramText = vir::printProgram(*Fresh->Result.Simd.Program);
  Fresh->Checksum = CompileCache::checksumOf(*Fresh);

  // First writer wins under concurrent misses; compilation is
  // deterministic, so every caller responds from equivalent bytes either
  // way, but responding from the canonical entry keeps one live copy.
  E = Cache.insert(Key, std::move(Fresh));
  NoteResult();
  return true;
}

std::string Service::doCompile(const Request &R, uint64_t *MemoKey,
                               RequestTelemetry *Tel) {
  uint64_t Key = 0;
  std::shared_ptr<CompileCache::Entry> E;
  ErrorInfo Err;
  if (!obtain(R, Key, E, Err, Tel))
    return errorResponse(R.Id, Err);
  if (MemoKey)
    *MemoKey = Key;
  if (!E->Result.ok())
    return errorResponse(
        R.Id, {ErrorCode::CompileError,
               "[" + E->Result.ConfigName + "] " + E->Result.error()});

  const codegen::SimdizeResult &S = E->Result.Simd;
  unsigned SteadyShifts =
      std::accumulate(S.StmtSteadyShifts.begin(), S.StmtSteadyShifts.end(), 0u);
  std::string Out;
  obs::json::Writer W(Out);
  beginOk(W, R)
      .field("config", E->Result.ConfigName)
      .field("policy", policies::policyName(E->Result.ResolvedPolicy))
      .field("width", R.Config.target().VectorLen)
      .field("reassociated", E->Result.Reassociated)
      .field("placed_shifts", S.ShiftCount)
      .field("steady_shifts", SteadyShifts)
      .field("program", E->ProgramText)
      .endObject();
  return Out;
}

std::string Service::doCheck(const Request &R, uint64_t *MemoKey,
                             RequestTelemetry *Tel) {
  uint64_t Key = 0;
  std::shared_ptr<CompileCache::Entry> E;
  ErrorInfo Err;
  if (!obtain(R, Key, E, Err, Tel))
    return errorResponse(R.Id, Err);
  if (MemoKey)
    *MemoKey = Key;
  if (!E->Result.ok())
    return errorResponse(
        R.Id, {ErrorCode::CompileError,
               "[" + E->Result.ConfigName + "] " + E->Result.error()});

  CompileCache::Verdict V;
  if (Cache.findVerdict(Key, R.Seed, V)) {
    Reg.count("server.verdict.hits");
  } else {
    Reg.count("server.verdict.misses");
    auto T0 = std::chrono::steady_clock::now();
    // Mirrors pipeline::checkCompiled, but the scalar oracle comes from
    // the shared content-addressed reference-image cache: when the
    // request reassociated offsets the rewritten loop is the one the
    // program computes, so both the image and its key follow it.
    const ir::Loop &Checked =
        E->Result.ReassocLoop ? *E->Result.ReassocLoop : *E->SourceLoop;
    uint64_t LoopKey =
        CompileCache::hashBytes(14695981039346656037ULL, ir::printLoop(Checked));
    std::shared_ptr<const sim::ReferenceImage> Ref = RefImages.get(
        LoopKey, Checked, E->Result.Simd.Program->getVectorLen(), R.Seed);
    sim::CheckContext Ctx{E->Result.ConfigName};
    sim::CheckResult C =
        sim::checkSimdization(Checked, *E->Result.Simd.Program, *Ref, &Ctx);
    if (C.Ok && E->Result.Tier == pipeline::ExecTier::Native) {
      if (auto NErr = native::diffNativeAgainstOracle(
              Checked, *E->Result.Simd.Program, *Ref)) {
        C.Ok = false;
        C.Message = "[" + Ctx.Scheme + "] " + *NErr;
      }
    }
    V.Ok = C.Ok;
    V.Message = C.Message;
    Cache.recordVerdict(Key, R.Seed, V);
    Reg.observe("server.check_ms", msSince(T0));
  }

  std::string Out;
  obs::json::Writer W(Out);
  beginOk(W, R)
      .field("config", E->Result.ConfigName)
      .field("seed", R.Seed)
      .key("verdict")
      .beginObject()
      .field("ok", V.Ok)
      .field("message", V.Message)
      .endObject()
      .endObject();
  return Out;
}

std::string Service::doExplain(const Request &R, uint64_t *MemoKey,
                               RequestTelemetry *Tel) {
  uint64_t Key = 0;
  std::shared_ptr<CompileCache::Entry> E;
  ErrorInfo Err;
  if (!obtain(R, Key, E, Err, Tel))
    return errorResponse(R.Id, Err);
  if (MemoKey)
    *MemoKey = Key;

  // Explanation is legitimate for rejected loops too — the log carries
  // the classified error — so no CompileError gate here.
  const ir::Loop &Run =
      E->Result.ReassocLoop ? *E->Result.ReassocLoop : *E->SourceLoop;
  codegen::SimdizeOptions Used = R.Config.Simd;
  Used.Policy = E->Result.ResolvedPolicy;
  obs::DecisionLog Log = codegen::explainSimdization(Run, Used, E->Result.Simd);
  if (E->Result.OptRan) {
    Log.OptRan = true;
    Log.OptRewrites = {
        {"cse", "removed", E->Result.Opt.CSERemoved},
        {"predictive-commoning", "replaced", E->Result.Opt.PCReplaced},
        {"unroll-copies", "removed", E->Result.Opt.CopiesRemoved},
        {"dce", "removed", E->Result.Opt.DCERemoved},
    };
  }

  std::string Out;
  obs::json::Writer W(Out);
  beginOk(W, R)
      .field("config", E->Result.ConfigName)
      .key("decisions")
      .raw(Log.toJson())
      .endObject();
  return Out;
}

std::string Service::doStats(const Request &R) {
  CompileCache::Stats CS = Cache.stats();
  sim::ReferenceImageCache::Stats RS = RefImages.stats();
  const BuildInfo &B = buildInfo();
  std::string Out;
  obs::json::Writer W(Out);
  beginOk(W, R)
      .key("cache")
      .beginObject()
      .field("entries", static_cast<uint64_t>(Cache.size()))
      .field("hits", CS.Hits)
      .field("misses", CS.Misses)
      .field("evictions", CS.Evictions)
      .field("poisoned", CS.Poisoned)
      .field("verdict_hits", CS.VerdictHits)
      .field("verdict_misses", CS.VerdictMisses)
      .endObject()
      .key("ref_images")
      .beginObject()
      .field("entries", static_cast<uint64_t>(RefImages.size()))
      .field("hits", RS.Hits)
      .field("misses", RS.Misses)
      .field("evictions", RS.Evictions)
      .field("rebinds", RS.Rebinds)
      .endObject()
      .key("build")
      .beginObject()
      .field("git", B.GitDescribe)
      .field("compiler", B.Compiler)
      .field("isa", B.BestISA)
      .field("uptime_seconds", uptimeSeconds())
      .endObject()
      .key("flight")
      .beginObject()
      .field("capacity", static_cast<uint64_t>(Flight.capacity()))
      .field("recorded", Flight.recorded())
      .field("dropped", Flight.dropped())
      .endObject();
  W.key("slow").beginObject().field("threshold_ms", Opts.SlowMs).field(
      "count", Reg.counterValue("server.requests.slow"));
  W.key("recent").beginArray();
  {
    std::lock_guard<std::mutex> L(SlowMu);
    for (const SlowEntry &S : SlowLog)
      W.beginObject()
          .field("trace_id", S.TraceId)
          .field("kind", S.Kind)
          .field("duration_ms", S.DurationMs)
          .field("outcome", S.Outcome)
          .endObject();
  }
  W.endArray().endObject();
  W.key("metrics").raw(Reg.toJson()).endObject();
  return Out;
}

std::string Service::doDump(const Request &R) {
  // Rendered before this request's own record lands (finishRequest runs
  // after dispatch), so the dump never contains itself.
  std::string Out;
  obs::json::Writer W(Out);
  beginOk(W, R).key("flight").raw(Flight.toJson()).endObject();
  return Out;
}

std::string Service::doBatch(const Request &R) {
  // The simdize-fuzz --jobs discipline: workers pull sub-requests from an
  // atomic cursor, results land by index, and the merge walks them in
  // order — responses are byte-identical whatever BatchJobs is.
  std::vector<std::string> Sub(R.Batch.size());
  std::atomic<size_t> Cursor{0};
  // Thread-local trace contexts do not propagate; each worker re-installs
  // this request's tracer so sub-request spans land in the same tree.
  obs::Tracer *Tr = obs::currentTracer();
  auto Work = [&, Tr]() {
    obs::TraceContext Ctx(Tr);
    for (;;) {
      size_t I = Cursor.fetch_add(1);
      if (I >= R.Batch.size())
        return;
      Sub[I] = dispatch(R.Batch[I], /*AllowBatch=*/false);
    }
  };
  unsigned Jobs =
      static_cast<unsigned>(std::min<size_t>(std::max(1u, Opts.BatchJobs),
                                             std::max<size_t>(1, R.Batch.size())));
  if (Jobs <= 1) {
    Work();
  } else {
    std::vector<std::thread> Workers;
    Workers.reserve(Jobs);
    for (unsigned T = 0; T < Jobs; ++T)
      Workers.emplace_back(Work);
    for (std::thread &W : Workers)
      W.join();
  }

  std::string Out;
  obs::json::Writer W(Out);
  beginOk(W, R).key("responses").beginArray();
  for (const std::string &S : Sub)
    W.raw(S);
  W.endArray().endObject();
  return Out;
}

std::string Service::dispatch(const Request &R, bool AllowBatch,
                              uint64_t *MemoKey, RequestTelemetry *Tel) {
  auto T0 = std::chrono::steady_clock::now();
  Reg.count("server.requests");
  Reg.count(std::string("server.requests.") + requestKindName(R.Kind));
  std::string Out;
  {
    obs::Span S("request", "server");
    if (S.active()) {
      S.arg("id", static_cast<int64_t>(R.Id));
      S.argStr("kind", requestKindName(R.Kind));
    }
    try {
      if (FaultHook)
        FaultHook(R);
      switch (R.Kind) {
      case RequestKind::Compile:
        Out = doCompile(R, MemoKey, Tel);
        break;
      case RequestKind::Check:
        Out = doCheck(R, MemoKey, Tel);
        break;
      case RequestKind::Explain:
        Out = doExplain(R, MemoKey, Tel);
        break;
      case RequestKind::Stats:
        Out = doStats(R);
        break;
      case RequestKind::Batch:
        Out = AllowBatch
                  ? doBatch(R)
                  : errorResponse(R.Id, {ErrorCode::BadRequest,
                                         "batch requests cannot nest"});
        break;
      case RequestKind::Dump:
        Out = doDump(R);
        break;
      }
    } catch (const std::exception &Ex) {
      Reg.count("server.errors.internal");
      FaultPending.store(true);
      if (MemoKey)
        *MemoKey = 0; // Never memoize a response shaped by a fault.
      Out = errorResponse(
          R.Id, {ErrorCode::Internal,
                 std::string("exception escaped the worker: ") + Ex.what()});
    } catch (...) {
      Reg.count("server.errors.internal");
      FaultPending.store(true);
      if (MemoKey)
        *MemoKey = 0;
      Out = errorResponse(R.Id, {ErrorCode::Internal,
                                 "non-standard exception escaped the worker"});
    }
  }
  Reg.observe("server.request_ms", msSince(T0));
  return Out;
}

void Service::finishRequest(const char *Kind, uint64_t PayloadHash,
                            uint64_t TraceId, double DurationMs,
                            const std::string &Response,
                            const RequestTelemetry &Tel,
                            const obs::Tracer *Tr) {
  std::string Outcome = outcomeOf(Response);

  FlightRecord FR;
  FR.TraceId = TraceId;
  FR.PayloadHash = PayloadHash;
  FR.Kind = Kind;
  FR.Layer = Tel.Layer;
  FR.DurationMs = DurationMs;
  FR.Outcome = Outcome;
  FR.Policy = Tel.Policy;
  FR.PredictedShifts = Tel.PredictedShifts;
  Flight.record(std::move(FR));

  if (Opts.SlowMs >= 0.0 && DurationMs >= Opts.SlowMs) {
    Reg.count("server.requests.slow");
    std::lock_guard<std::mutex> L(SlowMu);
    SlowLog.push_back({TraceId, Kind, DurationMs, Outcome});
    while (SlowLog.size() > SlowLogCap)
      SlowLog.pop_front();
  }

  if (Tr) {
    if (TraceHook)
      TraceHook(*Tr);
    TraceOut.append(*Tr);
  }

  // Incident auto-dump: a worker fault or poisoned entry anywhere in the
  // request (batch sub-requests set the flag from the nested dispatch)
  // snapshots the ring right after the offending record landed.
  bool Fault = FaultPending.exchange(false) || Outcome == "internal_error" ||
               Outcome == "poisoned_cache";
  if (Fault) {
    Reg.count("server.flight.auto_dumps");
    if (!Opts.FlightDumpFile.empty())
      Flight.dumpToFile(Opts.FlightDumpFile);
  }
}

void Service::dumpFlightRecorder() {
  if (!Opts.FlightDumpFile.empty())
    Flight.dumpToFile(Opts.FlightDumpFile);
}

std::string Service::prometheusText() const {
  std::string Out = obs::toPrometheusText(Reg);
  obs::PromWriter W(Out, "simdize_");

  // Per-layer cache attribution under one family, labeled by cache and
  // event, so a scrape can graph the full content-addressing funnel.
  CompileCache::Stats CS = Cache.stats();
  sim::ReferenceImageCache::Stats RS = RefImages.stats();
  W.type("cache_events_total", "counter");
  auto Event = [&](const char *CacheName, const char *EventName, double V) {
    W.sample("cache_events_total", V,
             {{"cache", CacheName}, {"event", EventName}});
  };
  Event("compile", "hit", static_cast<double>(CS.Hits));
  Event("compile", "miss", static_cast<double>(CS.Misses));
  Event("compile", "evict", static_cast<double>(CS.Evictions));
  Event("compile", "poison", static_cast<double>(CS.Poisoned));
  Event("verdict", "hit", static_cast<double>(CS.VerdictHits));
  Event("verdict", "miss", static_cast<double>(CS.VerdictMisses));
  Event("ref_image", "hit", static_cast<double>(RS.Hits));
  Event("ref_image", "miss", static_cast<double>(RS.Misses));
  Event("ref_image", "evict", static_cast<double>(RS.Evictions));
  Event("ref_image", "rebind", static_cast<double>(RS.Rebinds));
  W.type("cache_entries", "gauge");
  W.sample("cache_entries", static_cast<double>(Cache.size()),
           {{"cache", "compile"}});
  W.sample("cache_entries", static_cast<double>(RefImages.size()),
           {{"cache", "ref_image"}});

  W.type("flight_recorded_total", "counter");
  W.sample("flight_recorded_total", static_cast<double>(Flight.recorded()));
  W.type("flight_dropped_total", "counter");
  W.sample("flight_dropped_total", static_cast<double>(Flight.dropped()));

  const BuildInfo &B = buildInfo();
  W.type("build_info", "gauge");
  W.sample("build_info", 1.0,
           {{"git", B.GitDescribe},
            {"compiler", B.Compiler},
            {"isa", B.BestISA}});
  W.type("uptime_seconds", "gauge");
  W.sample("uptime_seconds", uptimeSeconds());
  return Out;
}

std::string Service::handle(const std::string &Payload) {
  auto T0 = std::chrono::steady_clock::now();
  uint64_t PayloadHash = CompileCache::hashBytes(14695981039346656037ULL,
                                                 Payload);

  // Per-request tracing: a tracer exists only when a sink wants it, and
  // installs as this thread's context so concurrent requests each grow
  // their own well-nested span tree. Purely a side channel — response
  // bytes are identical with tracing on or off.
  std::optional<obs::Tracer> Tr;
  std::optional<obs::TraceContext> Ctx;
  if (TraceOut.isOpen() || TraceHook) {
    Tr.emplace();
    Tr->setTraceId(NextTraceId.fetch_add(1));
    Ctx.emplace(&*Tr);
  }
  uint64_t TraceId = Tr ? Tr->traceId() : 0;
  const obs::Tracer *TrPtr = Tr ? &*Tr : nullptr;

  // Rendered-response fast path: exact payload bytes seen before, for a
  // pure kind, anchored to a compile-cache entry that is still live and
  // checksum-clean — skip parsing, dispatch, and rendering entirely. The
  // re-validation through Cache.find keeps poisoning and eviction
  // observable: a dead anchor falls through to the full path.
  {
    MemoEntry Hit;
    bool Found = false;
    {
      std::lock_guard<std::mutex> Lock(MemoMu);
      auto It = ResponseMemo.find(PayloadHash);
      if (It != ResponseMemo.end() && It->second.Payload == Payload) {
        Hit = It->second;
        Found = true;
      }
    }
    if (Found && Cache.peek(Hit.Key) == CompileCache::Outcome::Hit) {
      Reg.count("server.requests");
      Reg.count(std::string("server.requests.") + requestKindName(Hit.Kind));
      Reg.count("server.cache.hits");
      Reg.count("server.cache.memo_hits");
      RequestTelemetry Tel;
      Tel.Layer = CacheLayer::ResponseMemo;
      finishRequest(requestKindName(Hit.Kind), PayloadHash, TraceId,
                    msSince(T0), Hit.Response, Tel, TrPtr);
      return Hit.Response;
    }
  }

  ErrorInfo Err;
  std::optional<Request> R = parseRequest(Payload, Err);
  if (!R) {
    Reg.count("server.requests");
    Reg.count("server.errors.rejected");
    // Malformed payloads carry no trustworthy id; the record uses 0.
    std::string Out = errorResponse(0, Err);
    finishRequest("error", PayloadHash, TraceId, msSince(T0), Out,
                  RequestTelemetry(), TrPtr);
    return Out;
  }

  uint64_t MemoKey = 0;
  RequestTelemetry Tel;
  std::string Out = dispatch(*R, /*AllowBatch=*/true, &MemoKey, &Tel);
  // Check responses stay un-memoized: they are pure too, but routing
  // repeats through the verdict cache keeps that layer exercised and its
  // hit counters meaningful; the alias fast path already skips the parse.
  if (MemoKey != 0 &&
      (R->Kind == RequestKind::Compile || R->Kind == RequestKind::Explain)) {
    std::lock_guard<std::mutex> Lock(MemoMu);
    // Rebuilt on demand, so the bound is a crude wholesale reset.
    if (ResponseMemo.size() >= 4096 + 4 * Opts.MaxCacheEntries)
      ResponseMemo.clear();
    ResponseMemo[PayloadHash] = {Payload, R->Kind, MemoKey, Out};
  }
  finishRequest(requestKindName(R->Kind), PayloadHash, TraceId, msSince(T0),
                Out, Tel, TrPtr);
  return Out;
}
