//===- server/Server.cpp --------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace simdize;
using namespace simdize::server;

bool server::writeAll(int Fd, const std::string &Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    // send(MSG_NOSIGNAL) so a vanished socket peer is EPIPE, not a
    // process-killing SIGPIPE; plain pipes fall back to write().
    ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0 && errno == ENOTSOCK)
      N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool server::runConnection(int InFd, int OutFd, Service &S,
                           const ServeOptions &O) {
  struct State {
    std::mutex Mu;
    std::condition_variable WorkCv, WriteCv;
    std::deque<std::pair<uint64_t, std::string>> Work; ///< (seq, payload).
    std::map<uint64_t, std::string> Ready;             ///< seq -> response.
    uint64_t NextSeq = 0;  ///< Next sequence number to assign.
    bool Done = false;     ///< No more work will be enqueued.
    bool WriteOk = true;
  } St;

  unsigned Jobs = std::max(1u, O.Jobs);
  std::vector<std::thread> Workers;
  Workers.reserve(Jobs);
  for (unsigned T = 0; T < Jobs; ++T)
    Workers.emplace_back([&St, &S] {
      for (;;) {
        std::pair<uint64_t, std::string> Item;
        {
          std::unique_lock<std::mutex> Lock(St.Mu);
          St.WorkCv.wait(Lock, [&] { return St.Done || !St.Work.empty(); });
          if (St.Work.empty())
            return;
          Item = std::move(St.Work.front());
          St.Work.pop_front();
        }
        std::string Resp = S.handle(Item.second);
        {
          std::lock_guard<std::mutex> Lock(St.Mu);
          St.Ready.emplace(Item.first, std::move(Resp));
        }
        St.WriteCv.notify_one();
      }
    });

  // The writer drains responses strictly in sequence order; pre-rendered
  // error records enqueued by the reader flow through the same path.
  std::thread Writer([&St, OutFd] {
    uint64_t NextWrite = 0;
    for (;;) {
      std::string Resp;
      {
        std::unique_lock<std::mutex> Lock(St.Mu);
        St.WriteCv.wait(Lock, [&] {
          return St.Ready.count(NextWrite) ||
                 (St.Done && St.Work.empty() && NextWrite == St.NextSeq);
        });
        auto It = St.Ready.find(NextWrite);
        if (It == St.Ready.end())
          return; // All assigned sequence numbers written.
        Resp = std::move(It->second);
        St.Ready.erase(It);
      }
      ++NextWrite;
      if (!writeAll(OutFd, encodeFrame(Resp))) {
        // Client is gone; keep draining so workers never block on a full
        // reorder buffer, but record the failure.
        std::lock_guard<std::mutex> Lock(St.Mu);
        St.WriteOk = false;
      }
    }
  });

  // Reader: this thread. Frames become work items in arrival order.
  FrameReader FR;
  bool CleanEof = false;
  char Buf[64 * 1024];
  for (;;) {
    ssize_t N = ::read(InFd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break; // Treated like EOF; finish() classifies any partial frame.
    }
    std::vector<std::string> Payloads;
    bool Ok = N > 0 ? FR.feed(Buf, static_cast<size_t>(N), Payloads)
                    : FR.finish();
    if (!Payloads.empty()) {
      std::lock_guard<std::mutex> Lock(St.Mu);
      for (std::string &P : Payloads)
        St.Work.emplace_back(St.NextSeq++, std::move(P));
      St.WorkCv.notify_all();
    }
    if (!Ok) {
      // Framing error: one final structured record, then the stream ends
      // (there is no way to resynchronize a length-prefixed stream).
      std::string Record = errorResponse(0, FR.error());
      std::lock_guard<std::mutex> Lock(St.Mu);
      St.Ready.emplace(St.NextSeq++, std::move(Record));
      St.WriteCv.notify_one();
      break;
    }
    if (N == 0) {
      CleanEof = true;
      break;
    }
  }

  {
    std::lock_guard<std::mutex> Lock(St.Mu);
    St.Done = true;
  }
  St.WorkCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
  St.WriteCv.notify_all();
  Writer.join();

  return CleanEof && St.WriteOk;
}

bool UnixServer::start(std::string *Err) {
  sockaddr_un Addr{};
  if (Path.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + Path;
    return false;
  }

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    if (Err)
      *Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }

  ::unlink(Path.c_str()); // Replace a stale socket from a dead daemon.
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(ListenFd, 64) < 0) {
    if (Err)
      *Err = "bind/listen on " + Path + ": " + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }

  Stopping = false;
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void UnixServer::acceptLoop() {
  while (!Stopping) {
    pollfd P{ListenFd, POLLIN, 0};
    int R = ::poll(&P, 1, /*timeout ms=*/200);
    if (R <= 0)
      continue; // Timeout or EINTR: re-check the stop flag.
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    std::lock_guard<std::mutex> Lock(ConnMu);
    Conns.emplace_back([this, Fd] {
      // A dying connection (disconnect mid-frame, write to a vanished
      // client) ends only itself; the shared Service keeps serving.
      runConnection(Fd, Fd, Svc, O);
      ::close(Fd);
    });
  }
}

void UnixServer::stop() {
  if (ListenFd < 0)
    return;
  Stopping = true;
  if (Acceptor.joinable())
    Acceptor.join();
  ::close(ListenFd);
  ListenFd = -1;
  std::vector<std::thread> Live;
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    Live.swap(Conns);
  }
  for (std::thread &T : Live)
    T.join();
  ::unlink(Path.c_str());
}

bool Client::connect(const std::string &Path, std::string *Err) {
  close();
  sockaddr_un Addr{};
  if (Path.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + Path;
    return false;
  }
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Err)
      *Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    if (Err)
      *Err = "connect to " + Path + ": " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Reader = FrameReader();
  Pending.clear();
}

bool Client::call(const std::string &RequestJson, std::string &ResponseJson,
                  std::string *Err) {
  if (Fd < 0) {
    if (Err)
      *Err = "not connected";
    return false;
  }
  if (!writeAll(Fd, encodeFrame(RequestJson))) {
    if (Err)
      *Err = std::string("write: ") + std::strerror(errno);
    return false;
  }
  char Buf[64 * 1024];
  while (Pending.empty()) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0) {
      if (Err)
        *Err = N == 0 ? "server closed the connection"
                      : std::string("read: ") + std::strerror(errno);
      return false;
    }
    if (!Reader.feed(Buf, static_cast<size_t>(N), Pending)) {
      if (Err)
        *Err = "response stream corrupt: " + Reader.error().Message;
      return false;
    }
  }
  ResponseJson = std::move(Pending.front());
  Pending.erase(Pending.begin());
  return true;
}
