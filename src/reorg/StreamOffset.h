//===- reorg/StreamOffset.h - The stream offset lattice ------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stream offset (Section 3.2) is the byte offset of the first desired
/// value of a register stream — equivalently, the byte offset of the i=0
/// datum within its vector register. It is one of:
///
///  * a compile-time constant in [0, V);
///  * a runtime value, "(base(Array) + ElemOffset*D) mod V", when the
///    array's alignment is not known statically (Section 4.4);
///  * undefined (⊥) for vsplat streams, which satisfy any alignment
///    constraint ("⊥ can be any defined value in (C.2) and (C.3)").
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_REORG_STREAMOFFSET_H
#define SIMDIZE_REORG_STREAMOFFSET_H

#include <cassert>
#include <cstdint>
#include <string>

namespace simdize {

namespace ir {
class Array;
} // namespace ir

namespace reorg {

/// One point of the stream offset lattice.
class StreamOffset {
public:
  enum class Kind { Constant, Runtime, Undef };

  /// Default-constructs the undefined (⊥) offset.
  StreamOffset() = default;

  static StreamOffset constant(int64_t Value) {
    assert(Value >= 0 && "stream offsets are nonnegative by definition");
    StreamOffset O;
    O.TheKind = Kind::Constant;
    O.Value = Value;
    return O;
  }

  static StreamOffset runtime(const ir::Array *A, int64_t ElemOffset) {
    assert(A && "runtime offset needs its source access");
    StreamOffset O;
    O.TheKind = Kind::Runtime;
    O.Arr = A;
    O.ElemOff = ElemOffset;
    return O;
  }

  static StreamOffset undef() { return StreamOffset(); }

  Kind getKind() const { return TheKind; }
  bool isConstant() const { return TheKind == Kind::Constant; }
  bool isRuntime() const { return TheKind == Kind::Runtime; }
  bool isUndef() const { return TheKind == Kind::Undef; }
  bool isDefined() const { return TheKind != Kind::Undef; }

  int64_t getConstant() const {
    assert(isConstant() && "not a compile-time offset");
    return Value;
  }

  const ir::Array *getRuntimeArray() const {
    assert(isRuntime() && "not a runtime offset");
    return Arr;
  }

  int64_t getRuntimeElemOffset() const {
    assert(isRuntime() && "not a runtime offset");
    return ElemOff;
  }

  /// Whether \p A and \p B can be proven equal at compile time, for vector
  /// length \p V. Two runtime offsets of the same array are provably equal
  /// when their element offsets differ by a multiple of the blocking factor
  /// — the unknown base cancels out.
  static bool provablyEqual(const StreamOffset &A, const StreamOffset &B,
                            unsigned V);

  /// Printable form for diagnostics: "12", "rt(b+1)", or "undef".
  std::string str() const;

private:
  Kind TheKind = Kind::Undef;
  int64_t Value = 0;
  const ir::Array *Arr = nullptr;
  int64_t ElemOff = 0;
};

} // namespace reorg
} // namespace simdize

#endif // SIMDIZE_REORG_STREAMOFFSET_H
