//===- reorg/StreamOffset.cpp ---------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "reorg/StreamOffset.h"

#include "ir/Array.h"
#include "support/Format.h"
#include "support/MathExtras.h"

using namespace simdize;
using namespace simdize::reorg;

bool StreamOffset::provablyEqual(const StreamOffset &A, const StreamOffset &B,
                                 unsigned V) {
  if (A.isConstant() && B.isConstant())
    return A.getConstant() == B.getConstant();
  if (A.isRuntime() && B.isRuntime()) {
    const ir::Array *Arr = A.getRuntimeArray();
    if (Arr != B.getRuntimeArray())
      return false;
    // (base + c1*D) mod V == (base + c2*D) mod V  <=>  (c1-c2)*D ≡ 0 mod V.
    int64_t Delta =
        (A.getRuntimeElemOffset() - B.getRuntimeElemOffset()) *
        static_cast<int64_t>(Arr->getElemSize());
    return nonNegMod(Delta, V) == 0;
  }
  return false;
}

std::string StreamOffset::str() const {
  switch (TheKind) {
  case Kind::Constant:
    return strf("%lld", static_cast<long long>(Value));
  case Kind::Runtime:
    return strf("rt(%s%+lld)", Arr->getName().c_str(),
                static_cast<long long>(ElemOff));
  case Kind::Undef:
    return "undef";
  }
  return "invalid";
}
