//===- reorg/ReorgGraph.cpp -----------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "reorg/ReorgGraph.h"

#include "ir/Stmt.h"
#include "obs/Trace.h"
#include "support/Debug.h"
#include "support/Format.h"
#include "support/MathExtras.h"

#include <atomic>

using namespace simdize;
using namespace simdize::reorg;

StreamOffset Graph::storeOffset() const {
  // A reduction's root feeds a vector accumulator register, not a memory
  // stream; the accumulator's lanes are indexed from 0.
  if (Kind == ir::StmtKind::Reduce)
    return StreamOffset::constant(0);
  return offsetOfAccess(Root->Arr, Root->ElemOffset, VectorLen);
}

StreamOffset reorg::offsetOfAccess(const ir::Array *A, int64_t ElemOffset,
                                   unsigned V) {
  if (A->isAlignmentKnown())
    return StreamOffset::constant(nonNegMod(
        A->getAlignment() + ElemOffset * static_cast<int64_t>(A->getElemSize()),
        V));
  return StreamOffset::runtime(A, ElemOffset);
}

static std::unique_ptr<Node> buildExpr(const ir::Expr &E) {
  switch (E.getKind()) {
  case ir::ExprKind::ArrayRef: {
    const auto &Ref = ir::cast<ir::ArrayRefExpr>(E);
    auto N = std::make_unique<Node>(NodeKind::Load);
    N->Arr = Ref.getArray();
    N->ElemOffset = Ref.getOffset();
    return N;
  }
  case ir::ExprKind::Splat: {
    auto N = std::make_unique<Node>(NodeKind::Splat);
    N->SplatValue = ir::cast<ir::SplatExpr>(E).getValue();
    return N;
  }
  case ir::ExprKind::Param: {
    auto N = std::make_unique<Node>(NodeKind::Splat);
    N->ParamRef = ir::cast<ir::ParamExpr>(E).getParam();
    return N;
  }
  case ir::ExprKind::BinOp: {
    const auto &BO = ir::cast<ir::BinOpExpr>(E);
    auto N = std::make_unique<Node>(NodeKind::Op);
    N->OpKind = BO.getOp();
    N->Children.push_back(buildExpr(BO.getLHS()));
    N->Children.push_back(buildExpr(BO.getRHS()));
    return N;
  }
  }
  simdize_unreachable("unknown expression kind");
}

static std::atomic<uint64_t> GraphBuilds{0};

uint64_t reorg::graphBuildCount() {
  return GraphBuilds.load(std::memory_order_relaxed);
}

Graph reorg::buildGraph(const ir::Stmt &S, unsigned V) {
  GraphBuilds.fetch_add(1, std::memory_order_relaxed);
  Graph G;
  G.VectorLen = V;
  G.ElemSize = S.getStoreArray()->getElemSize();
  G.Kind = S.getKind();
  if (S.isReduce())
    G.ReduceOp = S.getReduceOp();
  G.Root = std::make_unique<Node>(NodeKind::Store);
  G.Root->Arr = S.getStoreArray();
  G.Root->ElemOffset = S.getStoreOffset();
  switch (S.getKind()) {
  case ir::StmtKind::Assign:
  case ir::StmtKind::Reduce:
    // A reduction's tree is just its RHS; the accumulate and the final
    // read-modify-write of the accumulator cell are emitted around the
    // graph by codegen, not represented in it.
    G.Root->Children.push_back(buildExpr(S.getRHS()));
    break;
  case ir::StmtKind::If: {
    // If-conversion at graph-construction time: blend the new value with
    // the target's old value under the guard mask, then store every lane.
    //   Store <- Blend(Cmp(GuardLHS, GuardRHS), RHS, OldLoad)
    auto Mask = std::make_unique<Node>(NodeKind::Op);
    Mask->Class = OpClass::Cmp;
    Mask->CmpOp = S.getCmpKind();
    Mask->Children.push_back(buildExpr(S.getGuardLHS()));
    Mask->Children.push_back(buildExpr(S.getGuardRHS()));

    auto OldLoad = std::make_unique<Node>(NodeKind::Load);
    OldLoad->Arr = S.getStoreArray();
    OldLoad->ElemOffset = S.getStoreOffset();

    auto Blend = std::make_unique<Node>(NodeKind::Op);
    Blend->Class = OpClass::Blend;
    Blend->Children.push_back(std::move(Mask));
    Blend->Children.push_back(buildExpr(S.getRHS()));
    Blend->Children.push_back(std::move(OldLoad));
    G.Root->Children.push_back(std::move(Blend));
    break;
  }
  }
  return G;
}

static void computeOffsetsRec(Node &N, unsigned V) {
  for (auto &C : N.Children)
    computeOffsetsRec(*C, V);

  switch (N.getKind()) {
  case NodeKind::Load:
    N.Offset = offsetOfAccess(N.Arr, N.ElemOffset, V);
    break;
  case NodeKind::Splat:
    N.Offset = StreamOffset::undef();
    break;
  case NodeKind::ShiftStream:
    N.Offset = N.TargetOffset; // Eq. 5.
    break;
  case NodeKind::Op: {
    // Eq. 4: the uniform offset of the inputs; pick the first defined one
    // (verifyGraph checks that they all agree).
    N.Offset = StreamOffset::undef();
    for (const auto &C : N.Children)
      if (C->Offset.isDefined()) {
        N.Offset = C->Offset;
        break;
      }
    break;
  }
  case NodeKind::Store:
    // Stores produce no register stream; record the source's offset so the
    // printer can show it.
    N.Offset = N.child(0).Offset;
    break;
  }
}

void reorg::computeStreamOffsets(Graph &G) {
  obs::Span Sp("stream-offsets");
  computeOffsetsRec(G.root(), G.VectorLen);
}

static std::optional<std::string> verifyRec(const Node &N, unsigned V,
                                            unsigned D) {
  for (const auto &C : N.Children)
    if (auto Err = verifyRec(*C, V, D))
      return Err;

  if (N.getKind() == NodeKind::Op) {
    // C.3: all defined input offsets must be provably equal.
    const StreamOffset *First = nullptr;
    for (const auto &C : N.Children) {
      if (!C->Offset.isDefined())
        continue;
      if (!First) {
        First = &C->Offset;
        continue;
      }
      if (!StreamOffset::provablyEqual(*First, C->Offset, V))
        return strf("C.3 violated: vop inputs have offsets %s and %s",
                    First->str().c_str(), C->Offset.str().c_str());
    }
    // Lane rule: element-wise arithmetic needs its data on lane
    // boundaries. Constant offsets must be multiples of D; runtime offsets
    // are unverifiable here and must have been realigned (the zero-shift
    // patterns always realign them to 0).
    if (First && First->isRuntime())
      return std::string(
          "vop input has a runtime offset; realign it before computing");
    if (First && First->isConstant() &&
        First->getConstant() % static_cast<int64_t>(D) != 0)
      return strf("vop input offset %s is not a lane multiple",
                  First->str().c_str());
  }

  if (N.getKind() == NodeKind::ShiftStream) {
    if (N.Children.size() != 1)
      return std::string("vshiftstream must have exactly one input");
    if (!N.TargetOffset.isDefined())
      return std::string("vshiftstream target offset is undefined");
  }
  return std::nullopt;
}

std::optional<std::string> reorg::verifyGraph(const Graph &G) {
  const Node &Root = G.root();
  if (Root.getKind() != NodeKind::Store || Root.Children.size() != 1)
    return std::string("graph root must be a store with one input");

  if (auto Err = verifyRec(Root, G.VectorLen, G.ElemSize))
    return Err;

  // C.2: the stored stream's offset must match the store alignment.
  const StreamOffset &Src = Root.child(0).Offset;
  StreamOffset StoreOff = G.storeOffset();
  if (Src.isDefined() &&
      !StreamOffset::provablyEqual(Src, StoreOff, G.VectorLen))
    return strf("C.2 violated: stored stream has offset %s, store needs %s",
                Src.str().c_str(), StoreOff.str().c_str());
  return std::nullopt;
}

static void printRec(const Node &N, unsigned Depth, std::string &Out) {
  Out.append(2 * Depth, ' ');
  switch (N.getKind()) {
  case NodeKind::Load:
    Out += strf("vload %s[i%+lld]", N.Arr->getName().c_str(),
                static_cast<long long>(N.ElemOffset));
    break;
  case NodeKind::Splat:
    if (N.ParamRef)
      Out += strf("vsplat %s", N.ParamRef->getName().c_str());
    else
      Out += strf("vsplat %lld", static_cast<long long>(N.SplatValue));
    break;
  case NodeKind::Op:
    if (N.Class == OpClass::Cmp)
      Out += strf("vcmp %s", ir::cmpSpelling(N.CmpOp));
    else if (N.Class == OpClass::Blend)
      Out += "vblend";
    else
      Out += strf("vop %s", ir::binOpSpelling(N.OpKind));
    break;
  case NodeKind::ShiftStream:
    Out += strf("vshiftstream -> %s", N.TargetOffset.str().c_str());
    break;
  case NodeKind::Store:
    Out += strf("vstore %s[i%+lld]", N.Arr->getName().c_str(),
                static_cast<long long>(N.ElemOffset));
    break;
  }
  Out += strf("  @offset %s\n", N.Offset.str().c_str());
  for (const auto &C : N.Children)
    printRec(*C, Depth + 1, Out);
}

std::string reorg::printGraph(const Graph &G) {
  std::string Out;
  printRec(G.root(), 0, Out);
  return Out;
}

/// Emits \p N as DOT node \p Id and connects it to its children, numbering
/// nodes in DFS preorder so output is deterministic.
static unsigned dotRec(const Node &N, unsigned Id, std::string &Out) {
  std::string Label;
  const char *Shape = "box";
  const char *Style = "";
  switch (N.getKind()) {
  case NodeKind::Load:
    Label = strf("vload %s[i%+lld]", N.Arr->getName().c_str(),
                 static_cast<long long>(N.ElemOffset));
    Shape = "ellipse";
    break;
  case NodeKind::Splat:
    if (N.ParamRef)
      Label = strf("vsplat %s", N.ParamRef->getName().c_str());
    else
      Label = strf("vsplat %lld", static_cast<long long>(N.SplatValue));
    Shape = "ellipse";
    break;
  case NodeKind::Op:
    if (N.Class == OpClass::Cmp)
      Label = strf("vcmp %s", ir::cmpSpelling(N.CmpOp));
    else if (N.Class == OpClass::Blend)
      Label = "vblend";
    else
      Label = strf("vop %s", ir::binOpSpelling(N.OpKind));
    break;
  case NodeKind::ShiftStream:
    Label = strf("vshiftstream -> %s", N.TargetOffset.str().c_str());
    Style = ", style=filled, fillcolor=lightsalmon";
    break;
  case NodeKind::Store:
    Label = strf("vstore %s[i%+lld]", N.Arr->getName().c_str(),
                 static_cast<long long>(N.ElemOffset));
    Style = ", style=filled, fillcolor=lightblue";
    break;
  }
  Out += strf("  n%u [shape=%s%s, label=\"%s\\n@%s\"];\n", Id, Shape, Style,
              Label.c_str(), N.Offset.str().c_str());
  unsigned Next = Id + 1;
  for (const auto &C : N.Children) {
    Out += strf("  n%u -> n%u;\n", Id, Next);
    Next = dotRec(*C, Next, Out);
  }
  return Next;
}

std::string reorg::printGraphDot(const Graph &G, const std::string &Name) {
  std::string Out = strf("digraph \"%s\" {\n", Name.c_str());
  Out += "  rankdir=TB;\n";
  dotRec(G.root(), 0, Out);
  Out += "}\n";
  return Out;
}

static unsigned countRec(const Node &N) {
  unsigned Count = N.getKind() == NodeKind::ShiftStream ? 1 : 0;
  for (const auto &C : N.Children)
    Count += countRec(*C);
  return Count;
}

unsigned reorg::countShifts(const Graph &G) { return countRec(G.root()); }

static unsigned countSteadyRec(const Node &N, bool SP, unsigned Mult) {
  bool IsShift = N.getKind() == NodeKind::ShiftStream;
  unsigned Count = IsShift ? Mult : 0;
  // The standard scheme evaluates a shift's operand subtree at two
  // iteration counts; SP evaluates it once and carries the other value.
  unsigned ChildMult = IsShift && !SP ? 2 * Mult : Mult;
  for (const auto &C : N.Children)
    Count += countSteadyRec(*C, SP, ChildMult);
  return Count;
}

unsigned reorg::countSteadyShifts(const Graph &G, bool SoftwarePipelining) {
  return countSteadyRec(G.root(), SoftwarePipelining, 1);
}

void reorg::wrapWithShift(std::unique_ptr<Node> &ChildSlot, StreamOffset To) {
  auto Shift = std::make_unique<Node>(NodeKind::ShiftStream);
  Shift->TargetOffset = To;
  Shift->Children.push_back(std::move(ChildSlot));
  ChildSlot = std::move(Shift);
}
