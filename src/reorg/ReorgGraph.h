//===- reorg/ReorgGraph.h - The data reorganization graph ----------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central abstraction (Section 3.3): an expression tree whose
/// nodes carry stream offsets, augmented with vshiftstream nodes that
/// retarget a register stream to a different offset. A graph is built
/// "as if for a machine with no alignment constraints" from one statement;
/// a shift placement policy then inserts vshiftstream nodes until the
/// validity constraints hold:
///
///   (C.2)  the store's source stream offset equals the store alignment;
///   (C.3)  all inputs of a vop have provably equal stream offsets
///          (⊥, the vsplat offset, matches anything).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_REORG_REORGGRAPH_H
#define SIMDIZE_REORG_REORGGRAPH_H

#include "ir/Stmt.h"
#include "reorg/StreamOffset.h"
#include "simdize/Target.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace simdize {

namespace ir {
class Stmt;
} // namespace ir

namespace reorg {

/// Discriminator for graph nodes.
enum class NodeKind {
  Load,        ///< vload of a stride-one reference (leaf)
  Splat,       ///< replicated loop invariant (leaf)
  Op,          ///< element-wise vector operation
  ShiftStream, ///< stream offset retargeting (inserted by a policy)
  Store,       ///< vstore of the root value (root, exactly one per graph)
};

/// Refines NodeKind::Op. All three classes are element-wise vector
/// computations with identical stream-offset behavior, so the placement
/// policies treat them uniformly; only codegen dispatches on the class.
enum class OpClass {
  Arith, ///< binary arithmetic (OpKind applies)
  Cmp,   ///< per-lane comparison producing an all-ones/all-zeros mask
  Blend, ///< per-lane select: children [Mask, IfSet, IfClear]
};

/// One node of a data reorganization graph. Plain aggregate navigated by
/// kind; builders and policies are the only mutators.
class Node {
public:
  Node(NodeKind Kind) : Kind(Kind) {}
  Node(const Node &) = delete;
  Node &operator=(const Node &) = delete;

  NodeKind getKind() const { return Kind; }

  /// \name Load / Store fields
  /// @{
  const ir::Array *Arr = nullptr; ///< Accessed array.
  int64_t ElemOffset = 0;         ///< The c of A[i+c].
  /// @}

  /// \name Op fields
  /// @{
  OpClass Class = OpClass::Arith;
  ir::BinOpKind OpKind = ir::BinOpKind::Add; ///< Arith only.
  ir::CmpKind CmpOp = ir::CmpKind::LT;       ///< Cmp only.
  /// @}

  /// \name Splat fields (ParamRef set for runtime invariants, otherwise
  /// the compile-time SplatValue applies)
  /// @{
  int64_t SplatValue = 0;
  const ir::Param *ParamRef = nullptr;
  /// @}

  /// \name ShiftStream fields
  /// @{
  StreamOffset TargetOffset; ///< The offset this shift retargets to.
  /// @}

  /// Stream offset of the value this node produces; set by
  /// computeStreamOffsets.
  StreamOffset Offset;

  std::vector<std::unique_ptr<Node>> Children;

  Node &child(unsigned K) { return *Children[K]; }
  const Node &child(unsigned K) const { return *Children[K]; }

private:
  NodeKind Kind;
};

/// A data reorganization graph for one statement: a Store-rooted tree.
struct Graph {
  std::unique_ptr<Node> Root;   ///< Always a Store node.
  /// V, from the target the statement is being compiled for; buildGraph
  /// stamps it, nothing assumes the default beyond "a valid width".
  unsigned VectorLen = Target().VectorLen;
  unsigned ElemSize = 4;        ///< D; vop inputs need lane-multiple offsets.
  /// Statement kind the graph was built from. If-converted statements
  /// shape the tree (Blend over [mask, value, old]); reductions change
  /// what the root "store" means (a vector accumulator, kept at offset 0).
  ir::StmtKind Kind = ir::StmtKind::Assign;
  /// Reduce only: the accumulation operation.
  ir::BinOpKind ReduceOp = ir::BinOpKind::Add;

  Node &root() { return *Root; }
  const Node &root() const { return *Root; }

  /// The offset the stored stream must have: the store's memory alignment
  /// for assignments, or the fixed offset 0 of the vector accumulator
  /// register for reductions.
  StreamOffset storeOffset() const;
};

/// Stream offset of the memory stream of reference \p A [i + \p ElemOffset],
/// for vector length \p V: the constant (align + c*D) mod V when the
/// array's alignment is statically known, a runtime offset otherwise
/// (Eq. 1).
StreamOffset offsetOfAccess(const ir::Array *A, int64_t ElemOffset,
                            unsigned V);

/// Builds the shift-free graph of \p S, mirroring its expression tree
/// ("first, the loop is simdized as if for a machine with no alignment
/// constraints").
Graph buildGraph(const ir::Stmt &S, unsigned V);

/// Process-wide count of buildGraph invocations. Graph construction is the
/// piece the pipeline used to repeat — prediction, decision logging, and
/// explain each rebuilt the same statement's graph — so the benchmark
/// suite watches this counter to keep the build-once discipline honest.
uint64_t graphBuildCount();

/// Recomputes the Offset field of every node, bottom-up: loads get their
/// access offset, splats ⊥, shifts their target, ops the unique defined
/// offset of their children (any defined child chosen; verifyGraph checks
/// uniqueness).
void computeStreamOffsets(Graph &G);

/// Checks constraints (C.2) and (C.3). Call after a policy has placed
/// shifts and computeStreamOffsets has run.
/// \returns std::nullopt when valid, else a description of the violation.
std::optional<std::string> verifyGraph(const Graph &G);

/// Renders the graph as an indented tree with offsets, for diagnostics and
/// golden tests.
std::string printGraph(const Graph &G);

/// Renders the graph as a Graphviz DOT digraph (`simdize-tool
/// --dump-graph=dot`). Every node shows its kind and stream offset;
/// policy-inserted vshiftstream nodes are drawn filled so placement
/// decisions stand out. \p Name labels the digraph (statement index).
std::string printGraphDot(const Graph &G, const std::string &Name);

/// Counts the ShiftStream nodes in the graph (the quantity the placement
/// policies minimize).
unsigned countShifts(const Graph &G);

/// Counts the vshiftpair instructions one raw steady-state iteration
/// executes for the graph's ShiftStream nodes. Under the standard scheme
/// (Figure 7) a shift's operand subtree is generated twice (once per
/// combined iteration count), so a shift nested under k shift ancestors
/// is emitted 2^k times; under software pipelining (Figure 10) every
/// shift is emitted exactly once, its other operand carried across
/// iterations. The shift-count oracle compares this prediction against
/// the unoptimized program.
unsigned countSteadyShifts(const Graph &G, bool SoftwarePipelining);

/// Wraps \p G.root's descendant \p ChildSlot (a unique_ptr in some node's
/// Children) with a new ShiftStream node targeting \p To. Helper shared by
/// the placement policies.
void wrapWithShift(std::unique_ptr<Node> &ChildSlot, StreamOffset To);

} // namespace reorg
} // namespace simdize

#endif // SIMDIZE_REORG_REORGGRAPH_H
