//===- support/Format.cpp -------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cstdarg>
#include <cstdio>
#include <vector>

using namespace simdize;

std::string simdize::strf(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Out(static_cast<size_t>(Needed), '\0');
  // +1 for the terminating NUL vsnprintf always writes.
  std::vsnprintf(Out.data(), static_cast<size_t>(Needed) + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}

std::string simdize::padLeft(const std::string &S, unsigned Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string simdize::padRight(const std::string &S, unsigned Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}
