//===- support/RNG.cpp ----------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "support/RNG.h"

#include <cassert>

using namespace simdize;

uint64_t RNG::next() {
  // splitmix64: excellent statistical quality for its size, fully portable.
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

int64_t RNG::uniformInt(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  if (Span == 0) // Full 64-bit range.
    return static_cast<int64_t>(next());
  // Rejection sampling to avoid modulo bias.
  uint64_t Limit = UINT64_MAX - UINT64_MAX % Span;
  uint64_t V = next();
  while (V >= Limit)
    V = next();
  return Lo + static_cast<int64_t>(V % Span);
}

double RNG::uniformReal() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool RNG::withProbability(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return uniformReal() < P;
}
