//===- support/RNG.h - Deterministic random number generation ------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (splitmix64/xoshiro-style) so the loop
/// synthesizer produces identical benchmark suites on every platform and
/// run. std::mt19937 would also be deterministic, but the distributions
/// (uniform_int_distribution et al.) are not portable across standard
/// library implementations; we implement our own.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SUPPORT_RNG_H
#define SIMDIZE_SUPPORT_RNG_H

#include <cstdint>

namespace simdize {

/// Deterministic 64-bit PRNG with convenience draws used by the loop
/// synthesizer (uniform integers, probabilities, biased choices).
class RNG {
public:
  explicit RNG(uint64_t Seed) : State(Seed == 0 ? 0x9e3779b97f4a7c15ULL
                                                : Seed) {}

  /// Returns the next raw 64-bit value (splitmix64 step).
  uint64_t next();

  /// Returns a uniform integer in [Lo, Hi], inclusive. Requires Lo <= Hi.
  int64_t uniformInt(int64_t Lo, int64_t Hi);

  /// Returns a uniform double in [0, 1).
  double uniformReal();

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool withProbability(double P);

private:
  uint64_t State;
};

} // namespace simdize

#endif // SIMDIZE_SUPPORT_RNG_H
