//===- support/Debug.h - Programmatic error helpers -----------------------===//
//
// Part of the simdize project: reproduction of Eichenberger, Wu & O'Brien,
// "Vectorization for SIMD Architectures with Alignment Constraints",
// PLDI 2004.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for reporting violated invariants. Modeled after LLVM's
/// llvm_unreachable: marks code paths that must never execute if the
/// program's invariants hold.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SUPPORT_DEBUG_H
#define SIMDIZE_SUPPORT_DEBUG_H

#include <cstdio>
#include <cstdlib>

namespace simdize {

/// Prints a diagnostic and aborts. Used by simdize_unreachable.
[[noreturn]] inline void reportUnreachable(const char *Msg, const char *File,
                                           unsigned Line) {
  std::fprintf(stderr, "%s:%u: unreachable executed: %s\n", File, Line, Msg);
  std::abort();
}

} // namespace simdize

/// Marks a point in code that should never be reached.
#define simdize_unreachable(MSG)                                              \
  ::simdize::reportUnreachable(MSG, __FILE__, __LINE__)

#endif // SIMDIZE_SUPPORT_DEBUG_H
