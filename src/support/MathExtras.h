//===- support/MathExtras.h - Alignment arithmetic ------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small integer helpers for the alignment arithmetic that pervades the
/// simdization algorithms: truncation to vector boundaries, nonnegative
/// modulus, and ceiling division.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SUPPORT_MATHEXTRAS_H
#define SIMDIZE_SUPPORT_MATHEXTRAS_H

#include <cassert>
#include <cstdint>

namespace simdize {

/// Rounds \p Value down to the nearest multiple of \p Align.
/// This mirrors what an AltiVec-style load/store unit does to addresses:
/// the low log2(Align) bits are ignored.
inline int64_t alignDown(int64_t Value, int64_t Align) {
  assert(Align > 0 && (Align & (Align - 1)) == 0 && "alignment must be 2^k");
  return Value & ~(Align - 1);
}

/// Rounds \p Value up to the nearest multiple of \p Align.
inline int64_t alignTo(int64_t Value, int64_t Align) {
  assert(Align > 0 && (Align & (Align - 1)) == 0 && "alignment must be 2^k");
  return (Value + Align - 1) & ~(Align - 1);
}

/// Returns \p Value mod \p Mod, always in [0, Mod). C++ % is
/// implementation-friendly but sign-following; stream offsets are defined
/// nonnegative (Section 3.2 of the paper).
inline int64_t nonNegMod(int64_t Value, int64_t Mod) {
  assert(Mod > 0 && "modulus must be positive");
  int64_t R = Value % Mod;
  return R < 0 ? R + Mod : R;
}

/// Ceiling division for nonnegative numerators.
inline int64_t ceilDiv(int64_t Num, int64_t Den) {
  assert(Num >= 0 && Den > 0 && "ceilDiv expects nonnegative / positive");
  return (Num + Den - 1) / Den;
}

} // namespace simdize

#endif // SIMDIZE_SUPPORT_MATHEXTRAS_H
