//===- support/CLIOptions.h - Shared command-line parsing -----------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one place the tools' common flag axes are parsed. simdize-tool,
/// simdize-fuzz, and simdized historically each carried their own strict
/// numeric parsers and their own --policy/--vlen/--tier/--sp handling;
/// the copies had begun to drift. This header owns:
///
///  - parseU64 / parseF64: strict whole-argument numeric parsing that
///    rejects everything strtoull/strtod silently accept (empty strings,
///    stray signs on integers, trailing garbage, overflow);
///  - parseWidthList: a comma-separated list of Target-valid vector
///    widths (--widths=);
///  - CLIOptions: the shared pipeline axes (--policy=, --vlen=, --sp,
///    --tier=), consumed one argument at a time with a tri-state result
///    so each tool keeps its own unknown-flag and stray-argument
///    handling — and with it the CLI contract pinned by the tools'
///    exit-code ctests: usage errors exit 2, runtime failures exit 1.
///
/// Everything here is header-only; a tool that only uses the numeric
/// parsers (simdized) does not pull in a policy or pipeline link
/// dependency.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SUPPORT_CLIOPTIONS_H
#define SIMDIZE_SUPPORT_CLIOPTIONS_H

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace simdize {
namespace support {

/// Strict decimal parse of a whole argument value: rejects empty strings,
/// trailing garbage, signs, and overflow (strtoull silently accepts all
/// four).
inline bool parseU64(const char *Text, uint64_t &Out) {
  if (*Text == '\0' || *Text == '-' || *Text == '+')
    return false;
  char *End = nullptr;
  errno = 0;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (errno != 0 || End == Text || *End != '\0')
    return false;
  Out = V;
  return true;
}

/// Strict floating-point parse of a whole argument value: rejects empty
/// strings, trailing garbage, and out-of-range magnitudes. Signs are
/// legitimate here; range checks stay with the caller.
inline bool parseF64(const char *Text, double &Out) {
  if (*Text == '\0')
    return false;
  char *End = nullptr;
  errno = 0;
  double V = std::strtod(Text, &End);
  if (errno != 0 || End == Text || *End != '\0')
    return false;
  Out = V;
  return true;
}

} // namespace support
} // namespace simdize

// The width and policy helpers need Target and the policy registry; kept
// below the numeric parsers so the comment above stays honest about what
// a numerics-only includer pays for (headers, never link symbols — all
// functions here are inline and unreferenced ones are not emitted).
#include "pipeline/Pipeline.h"
#include "policies/ShiftPolicy.h"
#include "simdize/Target.h"

namespace simdize {
namespace support {

/// Parses a comma-separated vector-width list (--widths=); every element
/// must be a valid Target width (power of two in [4, Target::MaxVectorLen]).
inline bool parseWidthList(const char *Text, std::vector<unsigned> &Out) {
  Out.clear();
  std::string Item;
  for (const char *P = Text;; ++P) {
    if (*P == ',' || *P == '\0') {
      uint64_t V = 0;
      if (!parseU64(Item.c_str(), V) ||
          !Target(static_cast<unsigned>(V)).valid())
        return false;
      Out.push_back(static_cast<unsigned>(V));
      Item.clear();
      if (*P == '\0')
        break;
    } else {
      Item += *P;
    }
  }
  return !Out.empty();
}

/// The shared pipeline flag axes. A tool declares which axes it serves
/// (simdize-tool takes all four; simdize-fuzz only the policy axis, as a
/// sweep filter) and funnels each argument through consume() before its
/// own flag handling.
struct CLIOptions {
  /// Which of the shared axes this tool accepts. An axis a tool does not
  /// declare is NotMine, so e.g. --sp stays an unknown flag (exit 2) for
  /// simdize-fuzz exactly as before the extraction.
  enum Axis : unsigned {
    PolicyAxis = 1u << 0, ///< --policy=zero|eager|lazy|dom|optimal|auto
    VlenAxis = 1u << 1,   ///< --vlen=N (a valid Target width)
    SPAxis = 1u << 2,     ///< --sp
    TierAxis = 1u << 3,   ///< --tier=vm|native
    AllAxes = PolicyAxis | VlenAxis | SPAxis | TierAxis,
  };

  explicit CLIOptions(unsigned Axes = AllAxes) : Axes(Axes) {}

  unsigned Axes;

  policies::PolicyKind Policy = policies::PolicyKind::Lazy;
  bool AutoPolicy = false;  ///< --policy=auto: the pipeline picks per loop.
  std::string PolicyName;   ///< CLI spelling as given; empty until seen.
  unsigned VectorLen = 16;  ///< --vlen= (power of two, 4..64).
  bool SP = false;          ///< --sp: software-pipelined codegen.
  pipeline::ExecTier Tier = pipeline::ExecTier::VM;

  enum class Consume {
    NotMine, ///< Not a declared shared flag; the caller handles it.
    Ok,      ///< Parsed and recorded.
    Bad,     ///< A declared shared flag with an invalid value: usage,
             ///< exit 2. Error carries the diagnostic.
  };

  /// Diagnostic for the last Bad result, for tools that print a message
  /// before their usage text.
  std::string Error;

  Consume consume(const std::string &Arg) {
    if ((Axes & SPAxis) && Arg == "--sp") {
      SP = true;
      return Consume::Ok;
    }
    if ((Axes & TierAxis) && Arg.rfind("--tier=", 0) == 0) {
      std::string Name = Arg.substr(7);
      if (Name == "vm")
        Tier = pipeline::ExecTier::VM;
      else if (Name == "native")
        Tier = pipeline::ExecTier::Native;
      else
        return bad("--tier needs vm or native");
      return Consume::Ok;
    }
    if ((Axes & VlenAxis) && Arg.rfind("--vlen=", 0) == 0) {
      // Reject invalid widths at parse time (usage, exit 2) instead of
      // letting the pipeline fail later with a confusing exit 1.
      uint64_t V = 0;
      if (!parseU64(Arg.c_str() + 7, V) || V == 0 ||
          !Target(static_cast<unsigned>(V)).valid())
        return bad("--vlen needs a power of two in [4, 64]");
      VectorLen = static_cast<unsigned>(V);
      return Consume::Ok;
    }
    if ((Axes & PolicyAxis) && Arg.rfind("--policy=", 0) == 0) {
      std::string Name = Arg.substr(9);
      if (Name == "auto") {
        AutoPolicy = true;
      } else if (auto Kind = policies::parsePolicyCliName(Name)) {
        Policy = *Kind;
        AutoPolicy = false;
      } else {
        return bad("--policy needs one of zero|eager|lazy|dom|optimal|auto");
      }
      PolicyName = Name;
      return Consume::Ok;
    }
    return Consume::NotMine;
  }

private:
  Consume bad(const char *Message) {
    Error = Message;
    return Consume::Bad;
  }
};

} // namespace support
} // namespace simdize

#endif // SIMDIZE_SUPPORT_CLIOPTIONS_H
