//===- support/Format.h - printf-style std::string formatting ------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// strf(): a printf-style formatter returning std::string, used by the IR
/// printers and the experiment harness (libstdc++ 12 lacks std::format).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SUPPORT_FORMAT_H
#define SIMDIZE_SUPPORT_FORMAT_H

#include <string>

namespace simdize {

/// Formats \p Fmt printf-style into a std::string.
[[gnu::format(printf, 1, 2)]] std::string strf(const char *Fmt, ...);

/// Left-pads \p S with spaces to width \p Width (no-op if already wider).
std::string padLeft(const std::string &S, unsigned Width);

/// Right-pads \p S with spaces to width \p Width (no-op if already wider).
std::string padRight(const std::string &S, unsigned Width);

} // namespace simdize

#endif // SIMDIZE_SUPPORT_FORMAT_H
