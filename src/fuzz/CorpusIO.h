//===- fuzz/CorpusIO.h - Reading and writing corpus reproducers ----------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes loops into the LoopParser dialect so that fuzzing
/// reproducers live in `tests/corpus/` as plain text: human-readable,
/// diffable, and loadable by simdize-tool, simdize-fuzz --replay, and the
/// corpus regression test. printParseable() is a strict inverse of
/// parser::parseLoop — print, parse, print reaches a fixpoint after one
/// round (verified by RoundTripTest).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_FUZZ_CORPUSIO_H
#define SIMDIZE_FUZZ_CORPUSIO_H

#include "ir/Loop.h"

#include <optional>
#include <string>
#include <vector>

namespace simdize {
namespace fuzz {

/// Renders \p L in the LoopParser dialect. \p Header lines (if any) are
/// emitted first as '#' comments; newlines inside \p Header split it into
/// multiple comment lines.
std::string printParseable(const ir::Loop &L, const std::string &Header = "");

/// Writes \p Text to \p Dir/\p FileName, creating \p Dir if needed.
/// \returns the full path on success, std::nullopt on I/O failure.
std::optional<std::string> writeCorpusFile(const std::string &Dir,
                                           const std::string &FileName,
                                           const std::string &Text);

/// All regular files under \p Dir whose name ends in ".loop", sorted by
/// name; empty when the directory is missing.
std::vector<std::string> listCorpusFiles(const std::string &Dir);

/// Reads a whole file; std::nullopt when unreadable.
std::optional<std::string> readCorpusFile(const std::string &Path);

} // namespace fuzz
} // namespace simdize

#endif // SIMDIZE_FUZZ_CORPUSIO_H
