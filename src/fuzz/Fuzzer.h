//===- fuzz/Fuzzer.h - Differential fuzzing of the simdizer --------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standing correctness gate behind the paper's central claim: for
/// *every* combination of alignments, offsets, trip counts, element types,
/// shift policies, and optimization settings, the simdized program must be
/// bit-identical to the scalar loop. The fuzzer sweeps randomized
/// SynthParams (including degenerate trip counts the validity guard must
/// reject cleanly) across every applicable pipeline configuration, runs
/// the scalar interpreter against the SIMD VM through
/// sim::checkSimdization, and on any mismatch or verifier failure invokes
/// the Shrinker and emits the minimized loop as parseable corpus text.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_FUZZ_FUZZER_H
#define SIMDIZE_FUZZ_FUZZER_H

#include "oracle/Oracle.h"
#include "pipeline/Pipeline.h"
#include "policies/ShiftPolicy.h"
#include "synth/LoopSynth.h"

#include <cstdint>
#include <cstdio>
#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace simdize {

namespace ir {
class Loop;
} // namespace ir
namespace vir {
class VProgram;
} // namespace vir
namespace sim {
class OracleCache;
} // namespace sim

namespace fuzz {

/// One pipeline configuration the fuzzer differentials against the scalar
/// oracle — exactly a facade CompileRequest (policy, software pipelining,
/// Target, optimization level); the fuzzer adds nothing of its own.
using FuzzConfig = pipeline::CompileRequest;

/// Post-codegen optimization level (pipeline::OptLevel re-export):
/// Raw / Std / PC.
using OptLevel = pipeline::OptLevel;

/// Every configuration applicable to \p L at vector width \p VectorLen:
/// all five policies (the paper's four plus the optimal DP) when every
/// alignment is compile-time known, zero-shift otherwise, each crossed
/// with software pipelining on/off and the optimizer pipeline raw/std/PC
/// — plus the same cross for the pipeline's auto-selection mode, which is
/// always applicable (it resolves to zero-shift under runtime
/// alignments). \p PolicyFilter restricts the axis to one policy by its
/// CLI spelling ("zero".."optimal", or "auto" for only the auto configs);
/// empty means all.
std::vector<FuzzConfig> configsForLoop(const ir::Loop &L,
                                       unsigned VectorLen = 16,
                                       const std::string &PolicyFilter = "");

/// Outcome classification of one (loop, config) run.
enum class RunStatus {
  Verified, ///< Simdized and bit-identical to the scalar loop.
  Rejected, ///< Declined by design (validity guard, policy gate).
  Failed,   ///< Internal error, verifier failure, or memory mismatch.
};

struct RunResult {
  RunStatus Status = RunStatus::Rejected;
  std::string Message; ///< Diagnostic for Rejected / Failed.
  /// What failed, when Status is Failed (oracle::failureKindName tags the
  /// corpus file): internal error, verifier rejection, memory mismatch,
  /// or a property-oracle violation.
  oracle::FailureKind Kind = oracle::FailureKind::None;
  /// vshiftstream nodes placed across the loop's statements; 0 until the
  /// run reaches code generation.
  unsigned ShiftCount = 0;
  /// Measured operations per datum of a Verified run. NaN when the run
  /// never executed, or executed zero datums (the opd-unset convention);
  /// metrics consumers skip NaN rather than averaging in a zero.
  double Opd = std::numeric_limits<double>::quiet_NaN();
};

/// Test hook: corrupts the program between code generation and the
/// property oracles / optimizer, so the oracles and the shrinker can be
/// exercised against a deliberately injected bug.
using ProgramMutator = std::function<void(vir::VProgram &)>;

/// Runs one configuration end to end (simdize, mutate, property-check,
/// optimize, simulate, check) and classifies the outcome. Deterministic
/// in (\p L, \p C, \p CheckSeed). When \p Oracle is given it must be
/// built from (\p L, \p CheckSeed); the scalar reference run and memory
/// image are then shared across every configuration checked through it
/// instead of being recomputed per call. \p Oracles enables the property
/// oracles (never-load-twice, shift counts, OPD bound, VVerifier on the
/// mutated program) on top of the bit-equality check.
/// \p NativeDiff additionally compiles every checked program to host
/// intrinsics (native backend, best host ISA), runs the dlopen'd kernel,
/// and requires the full memory image to match the scalar expected image.
RunResult runConfigOnLoop(const ir::Loop &L, const FuzzConfig &C,
                          uint64_t CheckSeed,
                          const ProgramMutator &Mutator = {},
                          sim::OracleCache *Oracle = nullptr,
                          bool Oracles = true, bool NativeDiff = false);

/// The fuzzer's input distribution: derives the synthesizer parameters for
/// one seed. Exposed so a failure is reproducible from its seed alone.
/// Covers 1-4 statements, 1-6 loads, all three element types, biased and
/// reused alignments, compile-time and runtime alignment/bound knowledge,
/// non-naturally-aligned bases, and trip counts spiked toward the
/// {0, 1, B-1, B, 2B, 3B, 3B+1} edge set. \p MaxVectorLen is the widest
/// width of the sweep: alignments and trip counts scale with it, and the
/// resulting loop is valid at every narrower width (identical draw
/// sequence at 16, so seed N reproduces historical loops exactly).
/// \p Guards and \p Reductions enable the guarded-statement and reduction
/// axes: a per-seed probability of generating each new statement kind.
/// Disabled axes draw nothing, so seed N with both off reproduces
/// historical loops exactly.
synth::SynthParams paramsForSeed(uint64_t Seed, unsigned MaxVectorLen = 16,
                                 bool Guards = false,
                                 bool Reductions = false);

struct FuzzOptions {
  uint64_t StartSeed = 1;
  uint64_t NumSeeds = 1000;
  double TimeBudgetSeconds = 0.0; ///< 0 disables the budget.
  std::string CorpusDir;    ///< When set, minimized repros are written here.
  unsigned MaxFailures = 16; ///< Stop shrinking after this many failures.
  bool Verbose = false;
  std::FILE *Log = nullptr; ///< Progress stream; null silences the fuzzer.
  /// Worker threads sharding the seed range. Results are merged in seed
  /// order, so with no time budget the FuzzStats, failure list, minimized
  /// reproducers, and corpus files are bit-identical to a Jobs=1 run. With
  /// a budget, workers stop at the deadline and the completed seed set
  /// (hence determinism) depends on scheduling.
  unsigned Jobs = 1;
  /// Applied to every generated program before checking (test hook for
  /// injected bugs). Must be safe to call concurrently when Jobs > 1.
  ProgramMutator Mutator;
  /// Run the property oracles on every run (the --oracles flag; on by
  /// default). Bit-equality checking is unconditional.
  bool Oracles = true;
  /// The native differential axis (the --native flag): every verified run
  /// is additionally lowered to host intrinsics, compiled, dlopen'd, and
  /// raced against the scalar expected image. Off by default — it invokes
  /// the system compiler per generated program.
  bool NativeDiff = false;
  /// When set, one JSON record per (seed, config) run is written here as
  /// JSONL, followed by a final aggregate record with histogram
  /// percentiles. Records are emitted during the seed-order merge, so the
  /// stream is bit-identical across Jobs values (without a time budget),
  /// and the aggregate histograms merge order-independently regardless.
  std::FILE *MetricsOut = nullptr;
  /// The width axis: each seed's loop is synthesized once at the widest
  /// width, then every configuration is run at every width here against
  /// the width-independent scalar oracle. The default sweeps only the
  /// paper's 16-byte target, reproducing historical sweeps byte for byte.
  std::vector<unsigned> Widths = {16};
  /// Restrict the policy axis (the --policy= flag): a CLI policy name or
  /// "auto"; empty sweeps every policy plus auto.
  std::string PolicyFilter;
  /// The guarded-statement axis (the --guards flag): seeds draw a per-loop
  /// probability of generating if-converted conditional assignments.
  bool Guards = false;
  /// The reduction axis (the --reductions flag): seeds draw a per-loop
  /// probability of generating accumulation statements.
  bool Reductions = false;
};

/// One recorded failure with its minimized reproducer.
struct FuzzFailure {
  uint64_t Seed = 0;
  FuzzConfig Config;
  oracle::FailureKind Kind = oracle::FailureKind::None;
  std::string Message;       ///< Original diagnostic.
  std::string MinimizedText; ///< printParseable() of the shrunken loop.
  std::string CorpusFile;    ///< Path written under CorpusDir, if any.
};

struct FuzzStats {
  uint64_t SeedsRun = 0;
  uint64_t RunsVerified = 0;
  uint64_t RunsRejected = 0;
  /// Failures whose minimized reproducer (and failure kind) matched an
  /// earlier failure of the sweep: logged and counted here, but not
  /// recorded in Failures or written to the corpus again.
  uint64_t DuplicateFailures = 0;
  bool HitTimeBudget = false;
  std::vector<FuzzFailure> Failures;

  bool ok() const { return Failures.empty(); }
};

/// Sweeps seeds [StartSeed, StartSeed + NumSeeds) through every applicable
/// configuration.
FuzzStats runFuzz(const FuzzOptions &Opts);

} // namespace fuzz
} // namespace simdize

#endif // SIMDIZE_FUZZ_FUZZER_H
