//===- fuzz/Fuzzer.cpp ----------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "fuzz/CorpusIO.h"
#include "fuzz/Shrinker.h"
#include "ir/Loop.h"
#include "native/NativeRun.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "support/Format.h"
#include "support/RNG.h"
#include "vir/VVerifier.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>

using namespace simdize;
using namespace simdize::fuzz;

std::vector<FuzzConfig> fuzz::configsForLoop(const ir::Loop &L,
                                             unsigned VectorLen,
                                             const std::string &PolicyFilter) {
  bool AllAlignKnown = true;
  for (const auto &A : L.getArrays())
    AllAlignKnown &= A->isAlignmentKnown();

  std::vector<FuzzConfig> Configs;
  auto PushCross = [&](policies::PolicyKind Policy, bool Auto) {
    for (bool SP : {false, true})
      for (OptLevel Opt : {OptLevel::Raw, OptLevel::Std, OptLevel::PC}) {
        FuzzConfig C;
        C.Simd.Policy = Policy;
        C.Simd.SoftwarePipelining = SP;
        C.Simd.Tgt = Target(VectorLen);
        C.Opt = Opt;
        C.AutoPolicy = Auto;
        Configs.push_back(std::move(C));
      }
  };

  for (auto Policy : policies::allPolicies()) {
    if (!PolicyFilter.empty() &&
        PolicyFilter != policies::policyCliName(Policy))
      continue;
    if (!AllAlignKnown &&
        !policies::createPolicy(Policy)->supportsRuntimeAlignment())
      continue;
    PushCross(Policy, /*Auto=*/false);
  }

  // The auto axis: the pipeline resolves the policy per compilation, so
  // these configs are applicable to every loop (runtime alignments
  // resolve to zero-shift). The Simd.Policy seed value is ignored.
  if (PolicyFilter.empty() || PolicyFilter == "auto")
    PushCross(policies::PolicyKind::Dominant, /*Auto=*/true);
  return Configs;
}

RunResult fuzz::runConfigOnLoop(const ir::Loop &L, const FuzzConfig &C,
                                uint64_t CheckSeed,
                                const ProgramMutator &Mutator,
                                sim::OracleCache *Oracle, bool Oracles,
                                bool NativeDiff) {
  // The raw-program window of the facade: mutations hit the program
  // before the property oracles and the optimizer — an injected bug can
  // hide behind neither.
  RunResult HookFailure;
  pipeline::PipelineHooks Hooks;
  Hooks.RawProgram = [&](codegen::SimdizeResult &R,
                         const codegen::SimdizeOptions &Simd) {
    if (Mutator)
      Mutator(*R.Program);
    if (!Oracles)
      return true;
    auto Fail = [&](std::string Message, oracle::FailureKind Kind) {
      HookFailure.Status = RunStatus::Failed;
      HookFailure.Message = std::move(Message);
      HookFailure.Kind = Kind;
      HookFailure.ShiftCount = R.ShiftCount;
      return false;
    };
    // VVerifier-on-everything hook: simdize() verified its own output,
    // but the mutated program must be re-proven valid before anything
    // downstream consumes it.
    if (Mutator)
      if (auto Err = vir::verifyProgram(*R.Program))
        return Fail(strf("program fails verification under scheme %s: %s",
                         C.name().c_str(), Err->c_str()),
                    oracle::FailureKind::Verifier);
    // Shift counts are checked on the raw program: CSE and predictive
    // commoning may legitimately merge realignment operations later. The
    // hook's options carry the auto-resolved policy, so auto configs are
    // held to the contract of the policy the pipeline actually chose.
    if (auto V = oracle::checkShiftCounts(L, R, Simd.Policy,
                                          Simd.SoftwarePipelining))
      return Fail(V->Message, V->Kind);
    return true;
  };

  pipeline::CompileResult P = pipeline::runPipeline(L, C, Hooks);
  if (!P.Simd.ok()) {
    RunStatus Status = P.Simd.ErrorKind == codegen::SimdizeErrorKind::Internal
                           ? RunStatus::Failed
                           : RunStatus::Rejected;
    return {Status, P.Simd.Error,
            Status == RunStatus::Failed ? oracle::FailureKind::Internal
                                        : oracle::FailureKind::None};
  }
  if (P.HookAborted)
    return HookFailure;

  // Everything past code generation reports the placed-shift count, so
  // metrics see it even for runs that go on to fail.
  auto Tagged = [&P](RunStatus Status, std::string Message,
                     oracle::FailureKind Kind) {
    RunResult Res;
    Res.Status = Status;
    Res.Message = std::move(Message);
    Res.Kind = Kind;
    Res.ShiftCount = P.Simd.ShiftCount;
    return Res;
  };

  if (P.PostOptVerifyError)
    return Tagged(RunStatus::Failed, *P.PostOptVerifyError,
                  oracle::FailureKind::Verifier);

  unsigned VectorLen = P.Simd.Program->getVectorLen();
  // Chunk-load provenance is collected only when the never-load-twice
  // oracle will consume it.
  sim::CheckOptions CO;
  CO.TrackChunkLoads = Oracles && C.exploitsReuse();
  sim::CheckResult Check;
  if (Oracle) {
    // Bulk path: the scalar reference run is shared across configurations
    // (and, on a width sweep, across vector lengths).
    sim::CheckContext Ctx{C.name()};
    Check = sim::checkSimdization(L, *P.Simd.Program, Oracle->get(VectorLen),
                                  &Ctx, CO);
  } else {
    Check = pipeline::checkCompiled(L, P, CheckSeed, "", CO);
  }
  if (!Check.Ok)
    return Tagged(RunStatus::Failed, Check.Message,
                  Check.VerifierFailed ? oracle::FailureKind::Verifier
                                       : oracle::FailureKind::Mismatch);

  // The native axis: the dlopen'd kernel must reproduce the expected image
  // the VM was just verified against. The no-cache branch rebuilds the
  // reference exactly as checkCompiled does, so the shrinker (which runs
  // without a shared oracle) reproduces native-only failures faithfully.
  if (NativeDiff) {
    auto Diff = [&](const sim::ReferenceImage &Ref) {
      return native::diffNativeAgainstOracle(L, *P.Simd.Program, Ref);
    };
    auto Err = Oracle ? Diff(Oracle->get(VectorLen))
                      : Diff(sim::ReferenceImage(L, VectorLen, CheckSeed));
    if (Err)
      return Tagged(RunStatus::Failed, "[" + C.name() + "] " + *Err,
                    oracle::FailureKind::Mismatch);
  }

  if (Oracles) {
    if (C.exploitsReuse())
      if (auto V = oracle::checkNeverLoadTwice(L, VectorLen, Check.Stats))
        return Tagged(RunStatus::Failed, V->Message, V->Kind);
    if (auto V = oracle::checkOpdBound(L, VectorLen, P.ResolvedPolicy, C.Opt,
                                       Check.Stats))
      return Tagged(RunStatus::Failed, V->Message, V->Kind);
  }
  RunResult Res = Tagged(RunStatus::Verified, "", oracle::FailureKind::None);
  // NaN for zero-trip loops by the opd convention; metrics skip it.
  Res.Opd = Check.Stats.Counts.opd(
      L.getUpperBound() * static_cast<int64_t>(L.getStmts().size()));
  return Res;
}

synth::SynthParams fuzz::paramsForSeed(uint64_t Seed, unsigned MaxVectorLen,
                                       bool Guards, bool Reductions) {
  // Decorrelate neighboring seeds; the SynthParams seed itself is a fresh
  // draw so the synthesizer's stream is independent of ours.
  RNG Rng(Seed * 0x9e3779b97f4a7c15ULL + 0xf0220bu);

  synth::SynthParams P;
  P.Statements = static_cast<unsigned>(Rng.uniformInt(1, 4));
  P.LoadsPerStmt = static_cast<unsigned>(Rng.uniformInt(1, 6));
  switch (Rng.uniformInt(0, 3)) { // i32 twice as likely, as in the paper
  case 0:
    P.Ty = ir::ElemType::Int8;
    break;
  case 1:
    P.Ty = ir::ElemType::Int16;
    break;
  default:
    P.Ty = ir::ElemType::Int32;
    break;
  }
  P.Bias = Rng.uniformReal();
  P.Reuse = Rng.uniformReal();
  P.AlignKnown = Rng.withProbability(0.5);
  P.UBKnown = Rng.withProbability(0.5);
  P.NaturalAlignment = Rng.withProbability(0.75);
  P.MaxExtraOffset = static_cast<unsigned>(Rng.uniformInt(0, 6));

  // Trip counts: spike the degenerate values the 3B validity guard must
  // reject without crashing, otherwise sample the simdizable range with
  // emphasis near the guard (hardest prologue/epilogue interplay). B is
  // the widest width's blocking factor, so the edge set covers the
  // hardest width of the sweep; narrower widths see these trip counts as
  // comfortably-past-guard values, which the uniform ranges cover too.
  P.VectorLen = MaxVectorLen;
  int64_t B = static_cast<int64_t>(MaxVectorLen) / ir::elemSize(P.Ty);
  if (Rng.withProbability(0.25)) {
    const int64_t Edges[] = {0, 1, B - 1, B, 2 * B, 3 * B, 3 * B + 1};
    P.TripCount = Edges[Rng.uniformInt(0, 6)];
  } else if (Rng.withProbability(0.5)) {
    P.TripCount = Rng.uniformInt(3 * B + 1, 5 * B);
  } else {
    P.TripCount = Rng.uniformInt(3 * B + 1, 16 * B);
  }
  // The new statement-kind axes draw only when enabled, trailing every
  // historical draw: legacy seeds keep reproducing byte-identical loops.
  if (Guards)
    P.GuardProb = 0.2 + 0.6 * Rng.uniformReal();
  if (Reductions)
    P.ReduceProb = 0.15 + 0.35 * Rng.uniformReal();
  P.Seed = Rng.next();
  return P;
}

namespace {

/// One Failed (loop, config) run as recorded by a worker. Shrinking and
/// corpus output are deferred to the seed-order merge, so a worker carries
/// only the config and the diagnostic.
struct PendingFailure {
  FuzzConfig Config;
  oracle::FailureKind Kind = oracle::FailureKind::None;
  std::string Message;
};

/// Everything a worker records for one seed. Workers never touch the
/// shared FuzzStats; outcomes are merged strictly in seed order, making
/// every observable of the run independent of scheduling.
struct SeedOutcome {
  uint64_t Verified = 0;
  uint64_t Rejected = 0;
  std::vector<PendingFailure> Failures;
  /// Pre-rendered JSONL records (one per config run), collected only when
  /// FuzzOptions::MetricsOut is set; written out during the seed-order
  /// merge so the stream is independent of worker scheduling.
  std::vector<std::string> Metrics;
  /// Verified-run opd samples (NaN already filtered) and placed-shift
  /// counts, folded into the sweep-level histograms at merge time.
  std::vector<double> OpdSamples;
  std::vector<unsigned> ShiftSamples;
  bool Ran = false;
};

const char *statusName(RunStatus S) {
  switch (S) {
  case RunStatus::Verified:
    return "verified";
  case RunStatus::Rejected:
    return "rejected";
  case RunStatus::Failed:
    return "failed";
  }
  return "unknown";
}

/// One {"seed":...,"config":...,"status":...,...} JSONL record. The writer
/// turns the NaN opd of rejected/zero-datum runs into null.
std::string renderRunRecord(uint64_t Seed, const FuzzConfig &C,
                            const RunResult &R) {
  std::string Out;
  obs::json::Writer W(Out);
  W.beginObject()
      .field("seed", Seed)
      .field("config", C.name())
      .field("status", statusName(R.Status))
      .field("kind", oracle::failureKindName(R.Kind))
      .field("shift_count", R.ShiftCount)
      .field("opd", R.Opd)
      .endObject();
  return Out;
}

} // namespace

/// Runs every applicable configuration at every width of the sweep for one
/// seed. Pure in the seed (and the mutator): resynthesizes the loop from
/// paramsForSeed at the widest width — so all widths exercise the *same*
/// loop — and shares one OracleCache (keyed by width) across every run.
static SeedOutcome runOneSeed(uint64_t Seed, const FuzzOptions &Opts,
                              const std::vector<unsigned> &Widths,
                              unsigned MaxWidth) {
  SeedOutcome Out;
  ir::Loop L = synth::synthesizeLoop(
      paramsForSeed(Seed, MaxWidth, Opts.Guards, Opts.Reductions));
  uint64_t CheckSeed = Seed ^ 0xc0ffee;
  sim::OracleCache Oracle(L, CheckSeed);

  for (unsigned W : Widths) {
    for (const FuzzConfig &C : configsForLoop(L, W, Opts.PolicyFilter)) {
      RunResult R = runConfigOnLoop(L, C, CheckSeed, Opts.Mutator, &Oracle,
                                    Opts.Oracles, Opts.NativeDiff);
      if (Opts.MetricsOut) {
        Out.Metrics.push_back(renderRunRecord(Seed, C, R));
        if (R.Status == RunStatus::Verified) {
          if (!std::isnan(R.Opd))
            Out.OpdSamples.push_back(R.Opd);
          Out.ShiftSamples.push_back(R.ShiftCount);
        }
      }
      switch (R.Status) {
      case RunStatus::Verified:
        ++Out.Verified;
        break;
      case RunStatus::Rejected:
        ++Out.Rejected;
        break;
      case RunStatus::Failed:
        Out.Failures.push_back({C, R.Kind, std::move(R.Message)});
        break;
      }
    }
  }
  Out.Ran = true;
  return Out;
}

FuzzStats fuzz::runFuzz(const FuzzOptions &Opts) {
  using Clock = std::chrono::steady_clock;
  auto Start = Clock::now();
  auto Elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  };

  FuzzStats Stats;

  // Normalize the width axis once: an empty list means the default
  // 16-byte target; the loop generator always runs at the widest width.
  std::vector<unsigned> Widths =
      Opts.Widths.empty() ? std::vector<unsigned>{16} : Opts.Widths;
  unsigned MaxWidth = *std::max_element(Widths.begin(), Widths.end());

  // Sticky budget flag shared by all workers; checked before each seed so a
  // worker never starts work past the deadline.
  std::atomic<bool> OutOfBudget{false};
  auto BudgetHit = [&] {
    if (OutOfBudget.load(std::memory_order_relaxed))
      return true;
    if (Opts.TimeBudgetSeconds > 0 && Elapsed() > Opts.TimeBudgetSeconds) {
      OutOfBudget.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  // Minimized reproducers already emitted this sweep, keyed by failure
  // kind plus the bare loop text: one codegen bug typically fires on many
  // seeds and configurations, but is worth writing (and recording) once.
  std::set<std::string> SeenReproducers;

  // Sweep-level distributions for the final aggregate record. Histogram
  // merging is order-independent, so these are bit-identical across
  // --jobs values even though per-record order already guarantees it.
  obs::Histogram OpdHist, ShiftHist;

  // Folds one seed's outcome into Stats. All logging, shrinking, and corpus
  // output happen here — in seed order — so Jobs=N reproduces Jobs=1
  // bit-for-bit (timing text aside). Shrinking resynthesizes the loop from
  // its seed; only the first MaxFailures failures are shrunk, exactly as a
  // serial sweep would select them.
  auto MergeSeed = [&](uint64_t Seed, SeedOutcome &Out) {
    if (Opts.Verbose && Opts.Log) {
      synth::SynthParams P =
          paramsForSeed(Seed, MaxWidth, Opts.Guards, Opts.Reductions);
      std::fprintf(Opts.Log,
                   "seed %llu: s=%u l=%u n=%lld ty=%s align=%s ub=%s%s"
                   " guard=%.2f reduce=%.2f\n",
                   static_cast<unsigned long long>(Seed), P.Statements,
                   P.LoadsPerStmt, static_cast<long long>(P.TripCount),
                   ir::elemTypeName(P.Ty), P.AlignKnown ? "ct" : "rt",
                   P.UBKnown ? "ct" : "rt",
                   P.NaturalAlignment ? "" : " byte-misaligned", P.GuardProb,
                   P.ReduceProb);
    }

    Stats.RunsVerified += Out.Verified;
    Stats.RunsRejected += Out.Rejected;

    if (Opts.MetricsOut) {
      for (const std::string &Rec : Out.Metrics) {
        std::fputs(Rec.c_str(), Opts.MetricsOut);
        std::fputc('\n', Opts.MetricsOut);
      }
      for (double V : Out.OpdSamples)
        OpdHist.add(V);
      for (unsigned V : Out.ShiftSamples)
        ShiftHist.add(static_cast<double>(V));
    }

    for (PendingFailure &PF : Out.Failures) {
      FuzzFailure F;
      F.Seed = Seed;
      F.Config = PF.Config;
      F.Kind = PF.Kind;
      F.Message = std::move(PF.Message);
      if (Opts.Log)
        std::fprintf(Opts.Log, "FAILURE seed %llu config %s [%s]: %s\n",
                     static_cast<unsigned long long>(Seed),
                     F.Config.name().c_str(),
                     oracle::failureKindName(F.Kind), F.Message.c_str());

      if (Stats.Failures.size() < Opts.MaxFailures) {
        ir::Loop L = synth::synthesizeLoop(
            paramsForSeed(Seed, MaxWidth, Opts.Guards, Opts.Reductions));
        uint64_t CheckSeed = Seed ^ 0xc0ffee;
        // A candidate must fail with the *same* kind: a mismatch must not
        // shrink into, say, an unrelated OPD violation. Shrinking runs at
        // the failing configuration's width (its validity guard).
        ir::Loop Minimized = shrinkLoop(
            L,
            [&](const ir::Loop &Cand) {
              RunResult R = runConfigOnLoop(Cand, F.Config, CheckSeed,
                                            Opts.Mutator, nullptr,
                                            Opts.Oracles, Opts.NativeDiff);
              return R.Status == RunStatus::Failed && R.Kind == F.Kind;
            },
            nullptr, F.Config.Simd.vectorLen());
        std::string Why =
            runConfigOnLoop(Minimized, F.Config, CheckSeed, Opts.Mutator,
                            nullptr, Opts.Oracles, Opts.NativeDiff)
                .Message;
        // The same minimized loop failing the same way is one bug, no
        // matter how many seeds or configurations hit it: keep the first,
        // count the rest.
        std::string Bare = printParseable(Minimized);
        if (!SeenReproducers
                 .insert(strf("%s|", oracle::failureKindName(F.Kind)) + Bare)
                 .second) {
          ++Stats.DuplicateFailures;
          if (Opts.Log)
            std::fprintf(Opts.Log,
                         "duplicate of an earlier minimized reproducer\n");
          continue;
        }
        F.MinimizedText = printParseable(
            Minimized,
            strf("fuzz seed %llu, config %s, kind %s\n%s",
                 static_cast<unsigned long long>(Seed),
                 F.Config.name().c_str(), oracle::failureKindName(F.Kind),
                 Why.c_str()));
        if (!Opts.CorpusDir.empty()) {
          std::string CfgSlug = F.Config.name();
          for (char &Ch : CfgSlug)
            if (Ch == '/')
              Ch = '_';
          if (auto Path = writeCorpusFile(
                  Opts.CorpusDir,
                  strf("seed%llu-%s-%s.loop",
                       static_cast<unsigned long long>(Seed), CfgSlug.c_str(),
                       oracle::failureKindName(F.Kind)),
                  F.MinimizedText))
            F.CorpusFile = *Path;
        }
        if (Opts.Log && !F.MinimizedText.empty())
          std::fprintf(Opts.Log, "minimized reproducer:\n%s",
                       F.MinimizedText.c_str());
      }
      Stats.Failures.push_back(std::move(F));
    }
    ++Stats.SeedsRun;

    if (Opts.Log && !Opts.Verbose && Stats.SeedsRun % 500 == 0)
      std::fprintf(Opts.Log,
                   "... %llu seeds, %llu verified, %llu rejected, %zu "
                   "failures, %.1fs\n",
                   static_cast<unsigned long long>(Stats.SeedsRun),
                   static_cast<unsigned long long>(Stats.RunsVerified),
                   static_cast<unsigned long long>(Stats.RunsRejected),
                   Stats.Failures.size(), Elapsed());
  };

  // Seeds are processed in waves so outcome storage stays bounded for huge
  // --seeds sweeps under a time budget. Within a wave, workers claim seeds
  // from an atomic cursor; the merge then walks the wave in seed order and
  // stops at the first seed the budget prevented from running — exactly
  // where a serial sweep would have stopped.
  const uint64_t EndSeed = Opts.StartSeed + Opts.NumSeeds;
  const unsigned Jobs = std::max(1u, Opts.Jobs);
  const uint64_t WaveSize = 8192;

  for (uint64_t WaveBegin = Opts.StartSeed;
       WaveBegin < EndSeed && !Stats.HitTimeBudget; WaveBegin += WaveSize) {
    const uint64_t WaveLen = std::min(WaveSize, EndSeed - WaveBegin);
    std::vector<SeedOutcome> Outcomes(WaveLen);
    std::atomic<uint64_t> Cursor{0};

    auto Worker = [&] {
      for (;;) {
        if (BudgetHit())
          return;
        uint64_t I = Cursor.fetch_add(1, std::memory_order_relaxed);
        if (I >= WaveLen)
          return;
        Outcomes[I] = runOneSeed(WaveBegin + I, Opts, Widths, MaxWidth);
      }
    };

    if (Jobs <= 1) {
      Worker();
    } else {
      std::vector<std::thread> Workers;
      Workers.reserve(Jobs);
      for (unsigned T = 0; T < Jobs; ++T)
        Workers.emplace_back(Worker);
      for (std::thread &W : Workers)
        W.join();
    }

    for (uint64_t I = 0; I < WaveLen; ++I) {
      if (!Outcomes[I].Ran) {
        Stats.HitTimeBudget = true;
        break;
      }
      MergeSeed(WaveBegin + I, Outcomes[I]);
    }
  }

  if (Opts.MetricsOut) {
    // Final JSONL line: sweep totals plus the verified-run distributions
    // with percentiles. Wall time is deliberately absent — the stream must
    // be reproducible byte for byte.
    std::string Agg;
    obs::json::Writer W(Agg);
    W.beginObject()
        .field("aggregate", true)
        .field("seeds_run", Stats.SeedsRun)
        .field("runs_verified", Stats.RunsVerified)
        .field("runs_rejected", Stats.RunsRejected)
        .field("failures", static_cast<uint64_t>(Stats.Failures.size()))
        .field("duplicate_failures", Stats.DuplicateFailures)
        .field("hit_time_budget", Stats.HitTimeBudget);
    W.key("opd");
    OpdHist.writeJson(W);
    W.key("shift_count");
    ShiftHist.writeJson(W);
    W.endObject();
    std::fputs(Agg.c_str(), Opts.MetricsOut);
    std::fputc('\n', Opts.MetricsOut);
    std::fflush(Opts.MetricsOut);
  }
  return Stats;
}
