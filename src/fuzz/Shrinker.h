//===- fuzz/Shrinker.h - Test-case minimization for failing loops --------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy delta-debugging over scalar loops: given a loop on which some
/// pipeline configuration fails (mismatch against the scalar oracle or a
/// verifier error) and a predicate that re-runs that configuration, the
/// shrinker repeatedly tries simplifying transformations — drop a
/// statement, replace an expression by one of its operands, shrink the
/// trip count, zero offsets and alignments, prune unused arrays, make
/// runtime knowledge compile-time — keeping a candidate only if the
/// failure reproduces on it. Every accepted step strictly decreases a
/// finite measure, so shrinking terminates; the result is the fixpoint
/// where no single step keeps the loop failing.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_FUZZ_SHRINKER_H
#define SIMDIZE_FUZZ_SHRINKER_H

#include "ir/Loop.h"

#include <functional>

namespace simdize {
namespace fuzz {

/// Re-runs the failing configuration on a candidate loop; must return true
/// iff the failure still reproduces. Candidates that no longer fail (or no
/// longer even simdize) are discarded by returning false.
using FailurePredicate = std::function<bool(const ir::Loop &)>;

/// Counters for reporting and tests.
struct ShrinkStats {
  unsigned CandidatesTried = 0; ///< Predicate invocations.
  unsigned StepsApplied = 0;    ///< Accepted simplifications.
};

/// Minimizes \p L with respect to \p StillFails. \p L itself must satisfy
/// the predicate; the returned loop always does. \p VectorLen is the
/// width of the failing configuration — the trip-count shrink aims for
/// its 3B + 1 validity guard.
ir::Loop shrinkLoop(const ir::Loop &L, const FailurePredicate &StillFails,
                    ShrinkStats *Stats = nullptr, unsigned VectorLen = 16);

/// Number of array-reference (load) leaves across all statement RHS
/// expressions; the measure the ISSUE's minimality criteria are stated in.
unsigned countLoads(const ir::Loop &L);

} // namespace fuzz
} // namespace simdize

#endif // SIMDIZE_FUZZ_SHRINKER_H
