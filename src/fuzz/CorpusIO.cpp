//===- fuzz/CorpusIO.cpp --------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "fuzz/CorpusIO.h"

#include "ir/IRPrinter.h"
#include "support/Format.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace simdize;
using namespace simdize::fuzz;

static std::string printIndex(int64_t Offset) {
  if (Offset == 0)
    return "i";
  if (Offset > 0)
    return strf("i+%lld", static_cast<long long>(Offset));
  return strf("i-%lld", static_cast<long long>(-Offset));
}

/// The parser's compound-assignment spelling of a reduction operator.
static const char *reduceOpSpelling(ir::BinOpKind Op) {
  switch (Op) {
  case ir::BinOpKind::Add:
    return "+=";
  case ir::BinOpKind::Mul:
    return "*=";
  case ir::BinOpKind::And:
    return "&=";
  case ir::BinOpKind::Or:
    return "|=";
  case ir::BinOpKind::Xor:
    return "^=";
  case ir::BinOpKind::Min:
    return "min=";
  case ir::BinOpKind::Max:
    return "max=";
  default:
    return "+=";
  }
}

std::string fuzz::printParseable(const ir::Loop &L,
                                 const std::string &Header) {
  std::string Out;
  if (!Header.empty()) {
    std::istringstream In(Header);
    std::string Line;
    while (std::getline(In, Line))
      Out += "# " + Line + "\n";
  }

  for (const auto &A : L.getArrays()) {
    // The "byte" marker is required exactly when the base is not an
    // element-size multiple (the Section 7 extension).
    std::string Align = A->isNaturallyAligned() ? "" : "byte ";
    if (A->isAlignmentKnown())
      Align += strf("%u", A->getAlignment());
    else
      Align += strf("? %u", A->getAlignment());
    Out += strf("array %s %s %lld align %s\n", A->getName().c_str(),
                ir::elemTypeName(A->getElemType()),
                static_cast<long long>(A->getNumElems()), Align.c_str());
  }
  for (const auto &P : L.getParams())
    Out += strf("param %s %lld\n", P->getName().c_str(),
                static_cast<long long>(P->getActualValue()));
  Out += strf("loop %s%lld\n", L.isUpperBoundKnown() ? "" : "runtime ",
              static_cast<long long>(L.getUpperBound()));
  for (const auto &S : L.getStmts()) {
    switch (S->getKind()) {
    case ir::StmtKind::Assign:
      Out += strf("%s[%s] = %s\n", S->getStoreArray()->getName().c_str(),
                  printIndex(S->getStoreOffset()).c_str(),
                  ir::printExpr(S->getRHS()).c_str());
      break;
    case ir::StmtKind::If:
      Out += strf("if (%s %s %s) %s[%s] = %s\n",
                  ir::printExpr(S->getGuardLHS()).c_str(),
                  ir::cmpSpelling(S->getCmpKind()),
                  ir::printExpr(S->getGuardRHS()).c_str(),
                  S->getStoreArray()->getName().c_str(),
                  printIndex(S->getStoreOffset()).c_str(),
                  ir::printExpr(S->getRHS()).c_str());
      break;
    case ir::StmtKind::Reduce:
      Out += strf("%s[%lld] %s %s\n", S->getStoreArray()->getName().c_str(),
                  static_cast<long long>(S->getStoreOffset()),
                  reduceOpSpelling(S->getReduceOp()),
                  ir::printExpr(S->getRHS()).c_str());
      break;
    }
  }
  return Out;
}

std::optional<std::string> fuzz::writeCorpusFile(const std::string &Dir,
                                                 const std::string &FileName,
                                                 const std::string &Text) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    return std::nullopt;
  std::string Path = (std::filesystem::path(Dir) / FileName).string();
  std::ofstream Out(Path, std::ios::trunc);
  Out << Text;
  if (!Out.good())
    return std::nullopt;
  return Path;
}

std::vector<std::string> fuzz::listCorpusFiles(const std::string &Dir) {
  std::vector<std::string> Files;
  std::error_code EC;
  std::filesystem::directory_iterator It(Dir, EC), End;
  if (EC)
    return Files;
  for (; It != End; It.increment(EC)) {
    if (EC)
      break;
    if (It->is_regular_file() && It->path().extension() == ".loop")
      Files.push_back(It->path().string());
  }
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::optional<std::string> fuzz::readCorpusFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In.good())
    return std::nullopt;
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}
