//===- fuzz/Shrinker.cpp --------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Shrinker.h"

#include "ir/IRBuilder.h"

#include <optional>
#include <set>

using namespace simdize;
using namespace simdize::fuzz;

namespace {

/// One candidate transformation, applied while re-building a loop from
/// scratch. Unused arrays and params of the rebuilt loop are always
/// pruned, so the corpus never stores declarations nothing references.
struct Edit {
  std::optional<size_t> DropStmt;
  /// Replace statement RHSStmt's RHS by a clone of *NewRHS (a subtree of
  /// the source loop's expression, or any expression over its arrays).
  std::optional<size_t> RHSStmt;
  const ir::Expr *NewRHS = nullptr;
  std::optional<size_t> ZeroStoreOffset;
  /// Zero the offset of the N-th ArrayRef (preorder) of statement K.
  std::optional<std::pair<size_t, unsigned>> ZeroRef;
  std::optional<int64_t> TripCount;
  std::optional<bool> UBKnown;
  /// Zero the base alignment of the N-th array (by source index).
  std::optional<size_t> ZeroAlign;
  /// Make the N-th array's alignment compile-time known.
  std::optional<size_t> MakeAlignKnown;
  /// Degrade statement K's kind to a plain assignment: drop an If's guard,
  /// or turn a Reduce into a store of its RHS at the accumulator cell.
  std::optional<size_t> ToAssign;
};

/// Total ArrayRef count across a statement's expressions in forEachExpr
/// order (guard operands first, then the RHS) — the preorder space the
/// ZeroRef edit indexes into.
unsigned stmtRefCount(const ir::Stmt &S) {
  unsigned N = 0;
  S.forEachExpr([&](const ir::Expr &E) {
    E.walk([&](const ir::Expr &Node) {
      if (ir::isa<ir::ArrayRefExpr>(Node))
        ++N;
    });
  });
  return N;
}

/// Clones \p E remapping arrays/params onto the rebuilt loop's copies,
/// zeroing the offset of preorder reference number *ZeroRef (counted down
/// across the walk) when requested.
std::unique_ptr<ir::Expr>
cloneEdited(const ir::Expr &E,
            const std::unordered_map<const ir::Array *, const ir::Array *>
                &ArrayMap,
            const std::unordered_map<const ir::Param *, const ir::Param *>
                &ParamMap,
            std::optional<unsigned> &ZeroRef) {
  switch (E.getKind()) {
  case ir::ExprKind::ArrayRef: {
    const auto &Ref = ir::cast<ir::ArrayRefExpr>(E);
    int64_t Offset = Ref.getOffset();
    if (ZeroRef) {
      if (*ZeroRef == 0) {
        Offset = 0;
        ZeroRef.reset();
      } else {
        --*ZeroRef;
      }
    }
    return std::make_unique<ir::ArrayRefExpr>(ArrayMap.at(Ref.getArray()),
                                              Offset);
  }
  case ir::ExprKind::Splat:
  case ir::ExprKind::Param:
    return ir::cloneExprRemap(E, ArrayMap, ParamMap);
  case ir::ExprKind::BinOp: {
    const auto &BO = ir::cast<ir::BinOpExpr>(E);
    auto LHS = cloneEdited(BO.getLHS(), ArrayMap, ParamMap, ZeroRef);
    auto RHS = cloneEdited(BO.getRHS(), ArrayMap, ParamMap, ZeroRef);
    return std::make_unique<ir::BinOpExpr>(BO.getOp(), std::move(LHS),
                                           std::move(RHS));
  }
  }
  return nullptr;
}

/// Rebuilds \p L with \p E applied and dead declarations pruned.
ir::Loop applyEdit(const ir::Loop &L, const Edit &E) {
  const auto &Stmts = L.getStmts();

  // Effective RHS per kept statement (pointing into L's trees).
  std::vector<std::pair<size_t, const ir::Expr *>> Kept;
  for (size_t K = 0; K < Stmts.size(); ++K) {
    if (E.DropStmt && *E.DropStmt == K)
      continue;
    const ir::Expr *RHS = &Stmts[K]->getRHS();
    if (E.RHSStmt && *E.RHSStmt == K)
      RHS = E.NewRHS;
    Kept.emplace_back(K, RHS);
  }

  // Liveness over the source declarations. Guard operands stay live only
  // when the statement keeps its guard.
  std::set<const ir::Array *> UsedArrays;
  std::set<const ir::Param *> UsedParams;
  auto MarkLive = [&](const ir::Expr &E) {
    E.walk([&](const ir::Expr &Node) {
      if (const auto *Ref = ir::dyn_cast<ir::ArrayRefExpr>(Node))
        UsedArrays.insert(Ref->getArray());
      if (const auto *P = ir::dyn_cast<ir::ParamExpr>(Node))
        UsedParams.insert(P->getParam());
    });
  };
  for (const auto &[K, RHS] : Kept) {
    UsedArrays.insert(Stmts[K]->getStoreArray());
    if (Stmts[K]->isIf() && !(E.ToAssign && *E.ToAssign == K)) {
      MarkLive(Stmts[K]->getGuardLHS());
      MarkLive(Stmts[K]->getGuardRHS());
    }
    MarkLive(*RHS);
  }

  ir::Loop Copy;
  std::unordered_map<const ir::Array *, const ir::Array *> ArrayMap;
  std::unordered_map<const ir::Param *, const ir::Param *> ParamMap;
  const auto &Arrays = L.getArrays();
  for (size_t A = 0; A < Arrays.size(); ++A) {
    if (!UsedArrays.count(Arrays[A].get()))
      continue;
    unsigned Align = Arrays[A]->getAlignment();
    bool Known = Arrays[A]->isAlignmentKnown();
    if (E.ZeroAlign && *E.ZeroAlign == A)
      Align = 0;
    if (E.MakeAlignKnown && *E.MakeAlignKnown == A)
      Known = true;
    ArrayMap[Arrays[A].get()] =
        Copy.createArray(Arrays[A]->getName(), Arrays[A]->getElemType(),
                         Arrays[A]->getNumElems(), Align, Known);
  }
  for (const auto &P : L.getParams())
    if (UsedParams.count(P.get()))
      ParamMap[P.get()] = Copy.createParam(P->getName(), P->getActualValue());

  for (const auto &[K, RHS] : Kept) {
    const ir::Stmt &Src = *Stmts[K];
    int64_t StoreOff = Src.getStoreOffset();
    if (E.ZeroStoreOffset && *E.ZeroStoreOffset == K)
      StoreOff = 0;
    // ZeroRef indexes references in forEachExpr order: a kept guard's
    // operands consume indices before the RHS.
    std::optional<unsigned> ZeroRef;
    if (E.ZeroRef && E.ZeroRef->first == K)
      ZeroRef = E.ZeroRef->second;
    const ir::Array *Store = ArrayMap.at(Src.getStoreArray());
    bool Degrade = E.ToAssign && *E.ToAssign == K;
    if (Src.isIf() && !Degrade) {
      auto GL = cloneEdited(Src.getGuardLHS(), ArrayMap, ParamMap, ZeroRef);
      auto GR = cloneEdited(Src.getGuardRHS(), ArrayMap, ParamMap, ZeroRef);
      Copy.addIfStmt(Store, StoreOff,
                     cloneEdited(*RHS, ArrayMap, ParamMap, ZeroRef),
                     std::move(GL), Src.getCmpKind(), std::move(GR));
    } else if (Src.isReduce() && !Degrade) {
      Copy.addReduceStmt(Store, StoreOff, Src.getReduceOp(),
                         cloneEdited(*RHS, ArrayMap, ParamMap, ZeroRef));
    } else {
      Copy.addStmt(Store, StoreOff,
                   cloneEdited(*RHS, ArrayMap, ParamMap, ZeroRef));
    }
  }

  Copy.setUpperBound(E.TripCount ? *E.TripCount : L.getUpperBound(),
                     E.UBKnown ? *E.UBKnown : L.isUpperBoundKnown());
  return Copy;
}

/// Number of ArrayRef leaves in one expression tree.
unsigned countRefs(const ir::Expr &E) {
  unsigned N = 0;
  E.walk([&](const ir::Expr &Node) {
    if (ir::isa<ir::ArrayRefExpr>(Node))
      ++N;
  });
  return N;
}

} // namespace

unsigned fuzz::countLoads(const ir::Loop &L) {
  unsigned N = 0;
  for (const auto &S : L.getStmts())
    N += stmtRefCount(*S);
  return N;
}

ir::Loop fuzz::shrinkLoop(const ir::Loop &L,
                          const FailurePredicate &StillFails,
                          ShrinkStats *Stats, unsigned VectorLen) {
  ShrinkStats Local;
  ShrinkStats &S = Stats ? *Stats : Local;

  ir::Loop Best = ir::cloneLoop(L);
  auto Try = [&](const Edit &E) {
    ir::Loop Cand = applyEdit(Best, E);
    ++S.CandidatesTried;
    if (!StillFails(Cand))
      return false;
    Best = std::move(Cand);
    ++S.StepsApplied;
    return true;
  };

  // Start by pruning declarations nothing references (only counts as a
  // step if the failure survives the resulting layout change).
  if (Best.getArrays().size() > applyEdit(Best, {}).getArrays().size())
    Try({});

  bool Changed = true;
  while (Changed) {
    Changed = false;

    // Drop whole statements, greedily from the front.
    for (size_t K = 0; Best.getStmts().size() > 1 &&
                       K < Best.getStmts().size();) {
      Edit E;
      E.DropStmt = K;
      if (Try(E))
        Changed = true; // same index now names the next statement
      else
        ++K;
    }

    // Degrade statement kinds toward the plain-assign baseline: drop an
    // If's guard, turn a Reduce into a store of its RHS.
    for (size_t K = 0; K < Best.getStmts().size(); ++K) {
      if (Best.getStmts()[K]->isAssign())
        continue;
      Edit E;
      E.ToAssign = K;
      if (Try(E))
        Changed = true;
    }

    // Shrink each RHS: replace a binop by one of its operands, or the
    // whole tree by a constant.
    for (size_t K = 0; K < Best.getStmts().size(); ++K) {
      bool Shrunk = true;
      while (Shrunk) {
        Shrunk = false;
        const ir::Expr &RHS = Best.getStmts()[K]->getRHS();
        if (const auto *BO = ir::dyn_cast<ir::BinOpExpr>(RHS)) {
          for (const ir::Expr *Sub : {&BO->getLHS(), &BO->getRHS()}) {
            Edit E;
            E.RHSStmt = K;
            E.NewRHS = Sub;
            if (Try(E)) {
              Shrunk = Changed = true;
              break;
            }
          }
        }
        if (!Shrunk && !ir::isa<ir::SplatExpr>(RHS) && countRefs(RHS) > 0) {
          ir::SplatExpr Zero(0);
          Edit E;
          E.RHSStmt = K;
          E.NewRHS = &Zero;
          if (Try(E))
            Shrunk = Changed = true;
        }
      }
    }

    // Shrink the trip count toward the 3B+1 validity guard.
    {
      int64_t B = static_cast<int64_t>(VectorLen) / Best.getElemSize();
      int64_t Cur = Best.getUpperBound();
      for (int64_t Cand : {3 * B + 1, Cur / 2, Cur - 1}) {
        if (Cand >= Cur || Cand < 0)
          continue;
        Edit E;
        E.TripCount = Cand;
        if (Try(E)) {
          Changed = true;
          break;
        }
      }
    }

    // Zero store offsets, then load offsets, one reference at a time.
    for (size_t K = 0; K < Best.getStmts().size(); ++K) {
      if (Best.getStmts()[K]->getStoreOffset() != 0) {
        Edit E;
        E.ZeroStoreOffset = K;
        if (Try(E))
          Changed = true;
      }
      for (unsigned R = 0; R < stmtRefCount(*Best.getStmts()[K]); ++R) {
        // Locate the R-th reference's current offset (forEachExpr order:
        // guard operands first, then the RHS).
        unsigned Idx = 0;
        int64_t Offset = 0;
        Best.getStmts()[K]->forEachExpr([&](const ir::Expr &Root) {
          Root.walk([&](const ir::Expr &Node) {
            if (const auto *Ref = ir::dyn_cast<ir::ArrayRefExpr>(Node)) {
              if (Idx == R)
                Offset = Ref->getOffset();
              ++Idx;
            }
          });
        });
        if (Offset == 0)
          continue;
        Edit E;
        E.ZeroRef = {K, R};
        if (Try(E))
          Changed = true;
      }
    }

    // Simplify array properties: zero alignments, make them known.
    for (size_t A = 0; A < Best.getArrays().size(); ++A) {
      if (Best.getArrays()[A]->getAlignment() != 0) {
        Edit E;
        E.ZeroAlign = A;
        if (Try(E))
          Changed = true;
      }
      if (!Best.getArrays()[A]->isAlignmentKnown()) {
        Edit E;
        E.MakeAlignKnown = A;
        if (Try(E))
          Changed = true;
      }
    }

    // Prefer a compile-time bound.
    if (!Best.isUpperBoundKnown()) {
      Edit E;
      E.UBKnown = true;
      if (Try(E))
        Changed = true;
    }
  }
  return Best;
}
