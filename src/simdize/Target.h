//===- simdize/Target.h - Parametric vector-width target descriptor ------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's algorithms (stream offsets, vshiftstream placement, the
/// prologue/steady/epilogue codegen of Figures 7 and 10) are written in
/// terms of a symbolic vector byte-width V; only the AltiVec lowering is
/// pinned to V = 16. Target captures everything the simdizer needs to know
/// about the machine it is compiling for: the vector byte-width, which
/// element sizes it can pack, and the alignment-truncation rule that maps
/// an arbitrary byte address onto a vector-boundary offset (Section 2.1,
/// "the memory architecture only supports V-byte aligned accesses").
///
/// Every compile-path layer consumes a Target (or its VectorLen) instead
/// of a hard-coded 16: the reorg graph, the shift policies, codegen, the
/// VM, the synthesizer, the property oracles, and the fuzzer's config
/// matrix. The two execution engines size their registers statically at
/// Target::MaxVectorLen and execute dynamically at the program's V.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_TARGET_H
#define SIMDIZE_TARGET_H

#include "support/MathExtras.h"

#include <cstdint>
#include <string>

namespace simdize {

/// Describes a SIMD target for the simdizer: the vector byte-width V and
/// the rules derived from it. Default-constructed it is the paper's
/// machine (V = 16, AltiVec-class); V = 32 and V = 64 model AVX2- and
/// AVX-512-class widths.
struct Target {
  /// Vector register width in bytes (the paper's V).
  unsigned VectorLen = 16;

  /// The widest vector any target may request: the static register size
  /// of both execution engines. Raising this is a recompile, not a
  /// redesign.
  static constexpr unsigned MaxVectorLen = 64;

  Target() = default;
  explicit Target(unsigned V) : VectorLen(V) {}

  /// A usable target has a power-of-2 width between one full i32 element
  /// and the engines' register size. Power-of-2 is load-bearing: the
  /// runtime-alignment codegen computes offsets with `addr & (V - 1)`.
  bool valid() const {
    return VectorLen >= 4 && VectorLen <= MaxVectorLen &&
           (VectorLen & (VectorLen - 1)) == 0;
  }

  /// Whether D-byte elements pack evenly into a vector. All supported
  /// element sizes divide any valid power-of-2 width, but codegen checks
  /// against the target rather than assuming it.
  bool supportsElemSize(unsigned D) const {
    return D > 0 && VectorLen % D == 0;
  }

  /// The paper's truncation rule: an arbitrary byte offset reduced to its
  /// position within a vector register. Used for array base alignment
  /// (memory layout) and stream-offset computation alike.
  int64_t truncateAlignment(int64_t Offset) const {
    return nonNegMod(Offset, VectorLen);
  }

  /// Blocking factor B = V / D (Section 4.1): elements per vector.
  int64_t blockingFactor(unsigned D) const { return VectorLen / D; }

  bool operator==(const Target &O) const { return VectorLen == O.VectorLen; }
  bool operator!=(const Target &O) const { return VectorLen != O.VectorLen; }

  /// "v16" / "v32" / "v64" — used in config names and diagnostics.
  std::string str() const { return "v" + std::to_string(VectorLen); }
};

} // namespace simdize

#endif // SIMDIZE_TARGET_H
