//===- simdize/Simdize.h - Umbrella header for the simdize library --------===//
//
// Part of the simdize project: reproduction of Eichenberger, Wu & O'Brien,
// "Vectorization for SIMD Architectures with Alignment Constraints",
// PLDI 2004.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single include for the whole public API. Typical flow:
///
/// \code
///   #include "simdize/Simdize.h"
///   using namespace simdize;
///
///   // 1. Describe the loop (Figure 1 of the paper).
///   ir::Loop L;
///   ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 0, true);
///   ir::Array *B = L.createArray("b", ir::ElemType::Int32, 128, 0, true);
///   ir::Array *C = L.createArray("c", ir::ElemType::Int32, 128, 0, true);
///   L.addStmt(A, 3, ir::add(ir::ref(B, 1), ir::ref(C, 2)));
///   L.setUpperBound(100, /*Known=*/true);
///
///   // 2. Configure one compilation: placement policy, software
///   //    pipelining, optimization level, and the target vector width
///   //    (Target(16) is the paper's AltiVec-class machine; 32 and 64
///   //    model wider register files).
///   pipeline::CompileRequest Req;
///   Req.Simd.Policy = policies::PolicyKind::Lazy;
///   Req.Simd.SoftwarePipelining = true;
///   Req.Simd.Tgt = Target(16);
///
///   // 3. Run the compile path (simdize -> optimize -> verify) and check
///   //    bit-equality against the scalar oracle on the simulated machine.
///   pipeline::CompileResult R = pipeline::runPipeline(L, Req);
///   assert(R.ok());
///   sim::CheckResult Check = pipeline::checkCompiled(L, R, 42);
///   assert(Check.Ok);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_SIMDIZE_H
#define SIMDIZE_SIMDIZE_H

#include "codegen/Simdizer.h"
#include "fuzz/CorpusIO.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Shrinker.h"
#include "harness/Experiment.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/IRVerifier.h"
#include "ir/Loop.h"
#include "ir/ScalarCost.h"
#include "opt/OffsetReassoc.h"
#include "opt/Pipeline.h"
#include "pipeline/Pipeline.h"
#include "policies/Policies.h"
#include "reorg/ReorgGraph.h"
#include "simdize/Target.h"
#include "sim/Checker.h"
#include "sim/Machine.h"
#include "sim/Memory.h"
#include "sim/ScalarInterp.h"
#include "synth/LoopSynth.h"
#include "synth/LowerBound.h"
#include "vir/VPrinter.h"
#include "vir/VProgram.h"
#include "vir/VVerifier.h"

#endif // SIMDIZE_SIMDIZE_H
