//===- pipeline/Pipeline.h - The one compile-path facade ------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single wiring of the paper's compile path: offset reassociation
/// (Section 5.5, optional) -> simdize (Sections 3-4) -> optimization
/// pipeline -> verification. The CLI tool, the fuzzer, the experiment
/// harness, and every bench used to duplicate this sequence with slightly
/// different option structs; they now all build a CompileRequest and call
/// runPipeline().
///
/// A CompileRequest is the complete configuration of one compilation:
/// the codegen options (placement policy, software pipelining, and the
/// Target carrying the vector width V) appear exactly once, embedded as
/// SimdizeOptions, plus the post-codegen optimization level and the
/// MemNorm / OffsetReassoc evaluation toggles.
///
/// \code
///   pipeline::CompileRequest Req;
///   Req.Simd.Policy = policies::PolicyKind::Lazy;
///   Req.Simd.SoftwarePipelining = true;
///   Req.Simd.Tgt = Target(32);
///   pipeline::CompileResult R = pipeline::runPipeline(L, Req);
///   if (!R.ok()) { ... R.error() ... }
///   sim::CheckResult C = pipeline::checkCompiled(L, R, Seed);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_PIPELINE_PIPELINE_H
#define SIMDIZE_PIPELINE_PIPELINE_H

#include "codegen/Simdizer.h"
#include "ir/Loop.h"
#include "opt/Pipeline.h"
#include "oracle/Oracle.h"
#include "sim/Checker.h"

#include <functional>
#include <optional>
#include <string>

namespace simdize {

namespace ir {
class Loop;
} // namespace ir

namespace pipeline {

/// Post-codegen optimization level. One enum for the whole project: the
/// property-oracle layer defines it (its OPD floors are stated per level)
/// and the pipeline, fuzzer, and harness share it.
using OptLevel = oracle::OptLevel;

/// How checkCompiled executes the compiled program: the decoded VM
/// (simulation, the default), or the native host-SIMD backend
/// (src/native) *in addition* — the VM check runs first, then the
/// program is lowered to intrinsics, compiled, dlopen'd, and the full
/// memory image is required to match the oracle bit-for-bit, making the
/// native run transitively bit-identical to the VM. The backend picks
/// the best CPUID-admissible ISA for the width and degrades to the
/// portable shim when the host lacks it.
enum class ExecTier { VM, Native };

/// The complete configuration of one compilation through the pipeline.
struct CompileRequest {
  /// Placement policy, software pipelining, and the Target (vector width
  /// V) — the codegen half of the request, stored exactly once.
  codegen::SimdizeOptions Simd;

  /// Raw Figure 7/10 codegen, the standard cleanup pipeline, or standard
  /// plus predictive commoning.
  OptLevel Opt = OptLevel::Std;

  /// Chunk-normalized load keys inside CSE/PC (Section 5.5).
  bool MemNorm = true;

  /// Common offset reassociation on the scalar loop before simdization
  /// (Section 5.5).
  bool OffsetReassoc = false;

  /// Auto policy selection: ignore Simd.Policy and let runPipeline pick
  /// the placement policy with the fewest predicted steady-state shifts
  /// for this loop (resolved per compilation, after offset reassociation;
  /// ties prefer the paper's greedy policies over the optimal DP, and
  /// dominant-shift first among them). Runtime alignments resolve to
  /// zero-shift, the only applicable policy. The chosen policy is
  /// reported in CompileResult::ResolvedPolicy.
  bool AutoPolicy = false;

  /// Execution tier for checkCompiled; compilation itself is unaffected.
  ExecTier Tier = ExecTier::VM;

  /// Canonical config name: "LAZY-sp/opt", "ZERO/raw", "DOM-pc/opt", ...
  /// ("AUTO" in place of the policy when AutoPolicy is set) with an
  /// "@32"/"@64" width suffix for non-default targets (V = 16
  /// names are unchanged from the pre-Target era, keeping corpus file
  /// names and metrics streams stable) and a "+native" suffix for the
  /// native execution tier.
  std::string name() const;

  /// Whether this configuration exploits cross-iteration reuse (software
  /// pipelining or predictive commoning) — the configurations the
  /// never-load-twice guarantee of Section 4.3 applies to.
  bool exploitsReuse() const {
    return Simd.SoftwarePipelining || Opt == OptLevel::PC;
  }

  /// Shorthand for the request's target.
  const Target &target() const { return Simd.Tgt; }
};

/// Caller windows into the pipeline.
struct PipelineHooks {
  /// Invoked on the raw program right after simdize() succeeds, before
  /// the optimizer. The fuzzer mutates the program and runs its
  /// raw-program oracles here. The second argument is the SimdizeOptions
  /// the program was actually compiled with — under AutoPolicy its Policy
  /// is the resolved one, so per-policy oracles hold the program to the
  /// right contract. Returning false aborts the pipeline
  /// (CompileResult::HookAborted); the hook owns reporting why.
  std::function<bool(codegen::SimdizeResult &,
                     const codegen::SimdizeOptions &)>
      RawProgram;
};

/// Everything one runPipeline() call produced.
struct CompileResult {
  /// The simdizer's result: program + placed-shift accounting on success,
  /// classified diagnostic otherwise.
  codegen::SimdizeResult Simd;

  /// When the request asked for offset reassociation, the rewritten loop
  /// the program was compiled from (the caller's loop is left untouched);
  /// checkCompiled() selects it automatically.
  std::optional<ir::Loop> ReassocLoop;

  /// Statements offset reassociation rewrote.
  unsigned Reassociated = 0;

  /// The RawProgram hook returned false.
  bool HookAborted = false;

  /// The placement policy the program was compiled with: the request's
  /// own under normal operation, the auto-selected one under AutoPolicy.
  policies::PolicyKind ResolvedPolicy = policies::PolicyKind::Zero;

  bool OptRan = false;     ///< The optimization pipeline ran.
  opt::OptStats Opt;       ///< Its per-pass statistics (valid when OptRan).

  /// The request's execution tier, carried so checkCompiled knows whether
  /// to run the native differential after the VM check.
  ExecTier Tier = ExecTier::VM;

  /// Set when the *optimized* program failed re-verification — always a
  /// pipeline bug. (simdize() verifies its own raw output separately.)
  std::optional<std::string> PostOptVerifyError;

  /// The request's name(), for diagnostics attribution.
  std::string ConfigName;

  bool ok() const {
    return Simd.ok() && !HookAborted && !PostOptVerifyError;
  }

  /// Flattened failure diagnostic: the simdizer's error or the post-opt
  /// verification error. Empty when ok() (or when the hook aborted — the
  /// hook reports its own reason).
  std::string error() const {
    if (!Simd.ok())
      return Simd.Error;
    if (PostOptVerifyError)
      return *PostOptVerifyError;
    return std::string();
  }
};

/// Runs the compile path on \p L under \p Req: offset reassociation (on a
/// private copy of the loop), simdization, the RawProgram hook, the
/// optimization pipeline, and post-optimization verification. \p L is
/// only read; it must outlive uses of the result that reference it
/// (checkCompiled takes it again explicitly).
CompileResult runPipeline(const ir::Loop &L, const CompileRequest &Req,
                          const PipelineHooks &Hooks = {});

/// Bit-equality check of a compiled result against the scalar oracle
/// (sim::checkSimdization over a patterned image seeded with
/// \p CheckSeed). \p L must be the loop \p R was compiled from; when the
/// request reassociated offsets the rewritten loop is used instead.
/// \p SchemeName overrides the diagnostic attribution (defaults to the
/// request's config name); \p Opts forwards per-check switches.
sim::CheckResult checkCompiled(const ir::Loop &L, const CompileResult &R,
                               uint64_t CheckSeed,
                               const std::string &SchemeName = "",
                               const sim::CheckOptions &Opts = {});

} // namespace pipeline
} // namespace simdize

#endif // SIMDIZE_PIPELINE_PIPELINE_H
