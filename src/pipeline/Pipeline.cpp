//===- pipeline/Pipeline.cpp ----------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"

#include "ir/Array.h"
#include "ir/Loop.h"
#include "native/NativeRun.h"
#include "obs/Trace.h"
#include "opt/OffsetReassoc.h"
#include "reorg/ReorgGraph.h"
#include "vir/VVerifier.h"

using namespace simdize;
using namespace simdize::pipeline;

std::string CompileRequest::name() const {
  std::string Name =
      AutoPolicy ? "AUTO" : policies::policyName(Simd.Policy);
  if (Simd.SoftwarePipelining)
    Name += "-sp";
  switch (Opt) {
  case OptLevel::Raw:
    Name += "/raw";
    break;
  case OptLevel::Std:
    Name += "/opt";
    break;
  case OptLevel::PC:
    Name += "-pc/opt";
    break;
  }
  if (Simd.Tgt.VectorLen != 16)
    Name += "@" + std::to_string(Simd.Tgt.VectorLen);
  if (Tier == ExecTier::Native)
    Name += "+native";
  return Name;
}

/// Picks the policy with the fewest predicted steady-state shifts for
/// \p L, summed over its statements on once-built shift-free graphs.
/// Candidates are scanned dominant-first with strict-improvement
/// replacement, so ties resolve to the paper's greedy policies (and to
/// dominant-shift among those) — the optimal DP is chosen only when its
/// exactness buys an actual shift. Runtime alignments leave zero-shift as
/// the only applicable policy.
static policies::PolicyKind
resolveAutoPolicy(const ir::Loop &L, const codegen::SimdizeOptions &Simd) {
  bool AllAlignKnown = true;
  for (const auto &A : L.getArrays())
    AllAlignKnown &= A->isAlignmentKnown();
  if (!AllAlignKnown)
    return policies::PolicyKind::Zero;

  std::vector<reorg::Graph> Graphs;
  Graphs.reserve(L.getStmts().size());
  for (const auto &S : L.getStmts())
    Graphs.push_back(reorg::buildGraph(*S, Simd.vectorLen()));

  const policies::PolicyKind Order[] = {
      policies::PolicyKind::Dominant, policies::PolicyKind::Zero,
      policies::PolicyKind::Eager, policies::PolicyKind::Lazy,
      policies::PolicyKind::Optimal};
  policies::PolicyKind Best = policies::PolicyKind::Dominant;
  uint64_t BestTotal = UINT64_MAX;
  for (policies::PolicyKind Kind : Order) {
    uint64_t Total = 0;
    for (const reorg::Graph &G : Graphs)
      Total += policies::predictSteadyShiftCount(Kind, G,
                                                 Simd.SoftwarePipelining);
    if (Total < BestTotal) {
      Best = Kind;
      BestTotal = Total;
    }
  }
  return Best;
}

CompileResult pipeline::runPipeline(const ir::Loop &L,
                                    const CompileRequest &Req,
                                    const PipelineHooks &Hooks) {
  CompileResult Res;
  Res.ConfigName = Req.name();
  Res.Tier = Req.Tier;

  obs::Span PipelineSpan("pipeline");
  if (PipelineSpan.active())
    PipelineSpan.argStr("config", Res.ConfigName);

  // Offset reassociation is a scalar source transformation; it runs on a
  // private clone so one loop can be compiled under many requests (the
  // fuzzer's config matrix shares loop identity with its oracle cache).
  const ir::Loop *Compiled = &L;
  if (Req.OffsetReassoc) {
    Res.ReassocLoop.emplace(ir::cloneLoop(L));
    Res.Reassociated =
        opt::runOffsetReassociation(*Res.ReassocLoop, Req.Simd.vectorLen());
    Compiled = &*Res.ReassocLoop;
  }

  // Auto selection resolves against the loop actually compiled, so a
  // reassociated offset pattern is judged in its rewritten form.
  codegen::SimdizeOptions Simd = Req.Simd;
  if (Req.AutoPolicy)
    Simd.Policy = resolveAutoPolicy(*Compiled, Simd);
  Res.ResolvedPolicy = Simd.Policy;

  Res.Simd = codegen::simdize(*Compiled, Simd);
  if (!Res.Simd.ok())
    return Res;

  if (Hooks.RawProgram && !Hooks.RawProgram(Res.Simd, Simd)) {
    Res.HookAborted = true;
    return Res;
  }

  if (Req.Opt != OptLevel::Raw) {
    opt::OptConfig Config;
    Config.CSE = true;
    Config.MemNorm = Req.MemNorm;
    Config.PC = Req.Opt == OptLevel::PC;
    Config.UnrollCopies = true;
    Res.Opt = opt::runOptPipeline(*Res.Simd.Program, Config);
    Res.OptRan = true;

    // The raw program was verified by simdize(); re-prove the optimized
    // one so a pass bug cannot masquerade as a simulation mismatch.
    if (auto Err = vir::verifyProgram(*Res.Simd.Program))
      Res.PostOptVerifyError = "optimized program is invalid: " + *Err;
  }
  return Res;
}

sim::CheckResult pipeline::checkCompiled(const ir::Loop &L,
                                         const CompileResult &R,
                                         uint64_t CheckSeed,
                                         const std::string &SchemeName,
                                         const sim::CheckOptions &Opts) {
  const ir::Loop &Checked = R.ReassocLoop ? *R.ReassocLoop : L;
  sim::CheckContext Ctx{SchemeName.empty() ? R.ConfigName : SchemeName};
  sim::ReferenceImage Ref(Checked, R.Simd.Program->getVectorLen(), CheckSeed);
  sim::CheckResult C =
      sim::checkSimdization(Checked, *R.Simd.Program, Ref, &Ctx, Opts);
  if (C.Ok && R.Tier == ExecTier::Native) {
    // The native differential rides on the VM-verified result: the same
    // reference image must come back bit-identical from the dlopen'd
    // kernel, so VM and native agree transitively on the whole image.
    if (auto Err = native::diffNativeAgainstOracle(Checked, *R.Simd.Program,
                                                   Ref)) {
      C.Ok = false;
      C.Message = "[" + Ctx.Scheme + "] " + *Err;
    }
  }
  return C;
}
