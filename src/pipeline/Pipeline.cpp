//===- pipeline/Pipeline.cpp ----------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"

#include "ir/Loop.h"
#include "opt/OffsetReassoc.h"
#include "vir/VVerifier.h"

using namespace simdize;
using namespace simdize::pipeline;

std::string CompileRequest::name() const {
  std::string Name = policies::policyName(Simd.Policy);
  if (Simd.SoftwarePipelining)
    Name += "-sp";
  switch (Opt) {
  case OptLevel::Raw:
    Name += "/raw";
    break;
  case OptLevel::Std:
    Name += "/opt";
    break;
  case OptLevel::PC:
    Name += "-pc/opt";
    break;
  }
  if (Simd.Tgt.VectorLen != 16)
    Name += "@" + std::to_string(Simd.Tgt.VectorLen);
  return Name;
}

CompileResult pipeline::runPipeline(const ir::Loop &L,
                                    const CompileRequest &Req,
                                    const PipelineHooks &Hooks) {
  CompileResult Res;
  Res.ConfigName = Req.name();

  // Offset reassociation is a scalar source transformation; it runs on a
  // private clone so one loop can be compiled under many requests (the
  // fuzzer's config matrix shares loop identity with its oracle cache).
  const ir::Loop *Compiled = &L;
  if (Req.OffsetReassoc) {
    Res.ReassocLoop.emplace(ir::cloneLoop(L));
    Res.Reassociated =
        opt::runOffsetReassociation(*Res.ReassocLoop, Req.Simd.vectorLen());
    Compiled = &*Res.ReassocLoop;
  }

  Res.Simd = codegen::simdize(*Compiled, Req.Simd);
  if (!Res.Simd.ok())
    return Res;

  if (Hooks.RawProgram && !Hooks.RawProgram(Res.Simd)) {
    Res.HookAborted = true;
    return Res;
  }

  if (Req.Opt != OptLevel::Raw) {
    opt::OptConfig Config;
    Config.CSE = true;
    Config.MemNorm = Req.MemNorm;
    Config.PC = Req.Opt == OptLevel::PC;
    Config.UnrollCopies = true;
    Res.Opt = opt::runOptPipeline(*Res.Simd.Program, Config);
    Res.OptRan = true;

    // The raw program was verified by simdize(); re-prove the optimized
    // one so a pass bug cannot masquerade as a simulation mismatch.
    if (auto Err = vir::verifyProgram(*Res.Simd.Program))
      Res.PostOptVerifyError = "optimized program is invalid: " + *Err;
  }
  return Res;
}

sim::CheckResult pipeline::checkCompiled(const ir::Loop &L,
                                         const CompileResult &R,
                                         uint64_t CheckSeed,
                                         const std::string &SchemeName,
                                         const sim::CheckOptions &Opts) {
  const ir::Loop &Checked = R.ReassocLoop ? *R.ReassocLoop : L;
  sim::CheckContext Ctx{SchemeName.empty() ? R.ConfigName : SchemeName};
  sim::ReferenceImage Ref(Checked, R.Simd.Program->getVectorLen(), CheckSeed);
  return sim::checkSimdization(Checked, *R.Simd.Program, Ref, &Ctx, Opts);
}
