//===- vir/VInst.cpp ------------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "vir/VProgram.h"

#include "support/Debug.h"

using namespace simdize;
using namespace simdize::vir;

VInst VInst::makeVLoad(VRegId Dst, Address A) {
  assert(Dst.isValid() && A.Base && "malformed vload");
  VInst I;
  I.Op = VOpcode::VLoad;
  I.VDst = Dst;
  I.Addr = A;
  return I;
}

VInst VInst::makeVStore(Address A, VRegId Src) {
  assert(Src.isValid() && A.Base && "malformed vstore");
  VInst I;
  I.Op = VOpcode::VStore;
  I.VSrc1 = Src;
  I.Addr = A;
  return I;
}

VInst VInst::makeVSplat(VRegId Dst, int64_t Value, unsigned ElemSize) {
  assert(Dst.isValid() && "malformed vsplat");
  VInst I;
  I.Op = VOpcode::VSplat;
  I.VDst = Dst;
  // The splatted value is a scalar operand like any other (makeVSplatReg
  // puts a register there); consumers go through SOp1 uniformly.
  I.SOp1 = ScalarOperand::imm(Value);
  I.ElemSize = ElemSize;
  return I;
}

VInst VInst::makeVSplatReg(VRegId Dst, SRegId Value, unsigned ElemSize) {
  assert(Dst.isValid() && Value.isValid() && "malformed vsplat");
  VInst I;
  I.Op = VOpcode::VSplat;
  I.VDst = Dst;
  I.SOp1 = ScalarOperand::reg(Value);
  I.ElemSize = ElemSize;
  return I;
}

VInst VInst::makeVShiftPair(VRegId Dst, VRegId Src1, VRegId Src2,
                            ScalarOperand Shift) {
  assert(Dst.isValid() && Src1.isValid() && Src2.isValid() &&
         "malformed vshiftpair");
  VInst I;
  I.Op = VOpcode::VShiftPair;
  I.VDst = Dst;
  I.VSrc1 = Src1;
  I.VSrc2 = Src2;
  I.SOp1 = Shift;
  return I;
}

VInst VInst::makeVSplice(VRegId Dst, VRegId Src1, VRegId Src2,
                         ScalarOperand Point) {
  assert(Dst.isValid() && Src1.isValid() && Src2.isValid() &&
         "malformed vsplice");
  VInst I;
  I.Op = VOpcode::VSplice;
  I.VDst = Dst;
  I.VSrc1 = Src1;
  I.VSrc2 = Src2;
  I.SOp1 = Point;
  return I;
}

VInst VInst::makeVBinOp(ir::BinOpKind Kind, VRegId Dst, VRegId Src1,
                        VRegId Src2, unsigned ElemSize) {
  assert(Dst.isValid() && Src1.isValid() && Src2.isValid() &&
         "malformed vbinop");
  VInst I;
  I.Op = VOpcode::VBinOp;
  I.VectorOp = Kind;
  I.VDst = Dst;
  I.VSrc1 = Src1;
  I.VSrc2 = Src2;
  I.ElemSize = ElemSize;
  return I;
}

VInst VInst::makeVCmp(SCmpKind Kind, VRegId Dst, VRegId Src1, VRegId Src2,
                      unsigned ElemSize) {
  assert(Dst.isValid() && Src1.isValid() && Src2.isValid() &&
         "malformed vcmp");
  VInst I;
  I.Op = VOpcode::VCmp;
  I.CmpOp = Kind;
  I.VDst = Dst;
  I.VSrc1 = Src1;
  I.VSrc2 = Src2;
  I.ElemSize = ElemSize;
  return I;
}

VInst VInst::makeVSelect(VRegId Dst, VRegId Mask, VRegId IfSet,
                         VRegId IfClear) {
  assert(Dst.isValid() && Mask.isValid() && IfSet.isValid() &&
         IfClear.isValid() && "malformed vselect");
  VInst I;
  I.Op = VOpcode::VSelect;
  I.VDst = Dst;
  I.VSrc1 = Mask;
  I.VSrc2 = IfSet;
  I.VSrc3 = IfClear;
  return I;
}

VInst VInst::makeVCopy(VRegId Dst, VRegId Src) {
  assert(Dst.isValid() && Src.isValid() && "malformed vcopy");
  VInst I;
  I.Op = VOpcode::VCopy;
  I.VDst = Dst;
  I.VSrc1 = Src;
  return I;
}

VInst VInst::makeSConst(SRegId Dst, int64_t Value) {
  assert(Dst.isValid() && "malformed sconst");
  VInst I;
  I.Op = VOpcode::SConst;
  I.SDst = Dst;
  I.Imm = Value;
  return I;
}

VInst VInst::makeSBase(SRegId Dst, const ir::Array *Base) {
  assert(Dst.isValid() && Base && "malformed sbase");
  VInst I;
  I.Op = VOpcode::SBase;
  I.SDst = Dst;
  I.Addr.Base = Base;
  return I;
}

VInst VInst::makeSBinOp(SBinOpKind Kind, SRegId Dst, ScalarOperand LHS,
                        ScalarOperand RHS) {
  assert(Dst.isValid() && "malformed sbinop");
  VInst I;
  I.Op = VOpcode::SBinOp;
  I.ScalarOp = Kind;
  I.SDst = Dst;
  I.SOp1 = LHS;
  I.SOp2 = RHS;
  return I;
}

VInst VInst::makeSCmp(SCmpKind Kind, SRegId Dst, ScalarOperand LHS,
                      ScalarOperand RHS) {
  assert(Dst.isValid() && "malformed scmp");
  VInst I;
  I.Op = VOpcode::SCmp;
  I.CmpOp = Kind;
  I.SDst = Dst;
  I.SOp1 = LHS;
  I.SOp2 = RHS;
  return I;
}

OpCategory VInst::category() const {
  switch (Op) {
  case VOpcode::VLoad:
    return OpCategory::Load;
  case VOpcode::VStore:
    return OpCategory::Store;
  case VOpcode::VSplat:
  case VOpcode::VShiftPair:
  case VOpcode::VSplice:
    return OpCategory::Reorg;
  case VOpcode::VBinOp:
  case VOpcode::VCmp:
  case VOpcode::VSelect:
    return OpCategory::Compute;
  case VOpcode::VCopy:
    return OpCategory::Copy;
  case VOpcode::SConst:
  case VOpcode::SBase:
  case VOpcode::SBinOp:
  case VOpcode::SCmp:
    return OpCategory::Scalar;
  }
  simdize_unreachable("unknown opcode");
}

bool VInst::definesVector() const {
  switch (Op) {
  case VOpcode::VLoad:
  case VOpcode::VSplat:
  case VOpcode::VShiftPair:
  case VOpcode::VSplice:
  case VOpcode::VBinOp:
  case VOpcode::VCmp:
  case VOpcode::VSelect:
  case VOpcode::VCopy:
    return true;
  default:
    return false;
  }
}

bool VInst::definesScalar() const {
  switch (Op) {
  case VOpcode::SConst:
  case VOpcode::SBase:
  case VOpcode::SBinOp:
  case VOpcode::SCmp:
    return true;
  default:
    return false;
  }
}

const char *vir::opcodeName(VOpcode Op) {
  switch (Op) {
  case VOpcode::VLoad:
    return "vload";
  case VOpcode::VStore:
    return "vstore";
  case VOpcode::VSplat:
    return "vsplat";
  case VOpcode::VShiftPair:
    return "vshiftpair";
  case VOpcode::VSplice:
    return "vsplice";
  case VOpcode::VBinOp:
    return "vbinop";
  case VOpcode::VCmp:
    return "vcmp";
  case VOpcode::VSelect:
    return "vselect";
  case VOpcode::VCopy:
    return "vcopy";
  case VOpcode::SConst:
    return "sconst";
  case VOpcode::SBase:
    return "sbase";
  case VOpcode::SBinOp:
    return "sbinop";
  case VOpcode::SCmp:
    return "scmp";
  }
  simdize_unreachable("unknown opcode");
}

const char *vir::sBinOpName(SBinOpKind Kind) {
  switch (Kind) {
  case SBinOpKind::Add:
    return "add";
  case SBinOpKind::Sub:
    return "sub";
  case SBinOpKind::Mul:
    return "mul";
  case SBinOpKind::And:
    return "and";
  case SBinOpKind::Mod:
    return "mod";
  }
  simdize_unreachable("unknown scalar binop");
}

const char *vir::sCmpName(SCmpKind Kind) {
  switch (Kind) {
  case SCmpKind::LT:
    return "lt";
  case SCmpKind::LE:
    return "le";
  case SCmpKind::GT:
    return "gt";
  case SCmpKind::GE:
    return "ge";
  case SCmpKind::EQ:
    return "eq";
  case SCmpKind::NE:
    return "ne";
  }
  simdize_unreachable("unknown scalar cmp");
}

unsigned vir::countOps(const Block &B, VOpcode Op) {
  unsigned Count = 0;
  for (const VInst &I : B)
    if (I.Op == Op)
      ++Count;
  return Count;
}
