//===- vir/VInst.h - Instructions of the vector IR -----------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The target-machine instruction set of Section 2: truncating vector
/// loads/stores, element-wise arithmetic, and the three generic data
/// reorganization operations (vsplat, vshiftpair, vsplice) that map onto
/// AltiVec's vec_splat / vec_perm / vec_sel. A small scalar instruction set
/// carries runtime-alignment and runtime-bound computations (Section 4.4).
///
/// Instructions are a flat struct (MachineInstr-style) with factory
/// functions that enforce per-opcode field discipline; VVerifier checks the
/// invariants wholesale.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_VIR_VINST_H
#define SIMDIZE_VIR_VINST_H

#include "ir/Expr.h"
#include "vir/VReg.h"

#include <cstdint>
#include <optional>
#include <string>

namespace simdize {
namespace vir {

/// Opcodes of the vector IR.
enum class VOpcode {
  // Vector memory (addresses truncated to V-byte boundaries).
  VLoad,      ///< VDst = 16 aligned bytes at Addr
  VStore,     ///< 16 aligned bytes at Addr = VSrc1
  // Vector data reorganization (Section 2.2).
  VSplat,     ///< VDst = replicate SOp1 across ElemSize lanes
  VShiftPair, ///< VDst = bytes [S, S+V) of VSrc1 ++ VSrc2, S = SOp1 in [0,V];
              ///< S == V selects VSrc2 whole (vec_perm indices wrap mod 2V,
              ///< which runtime right-shifts by V - offset rely on)
  VSplice,    ///< VDst = first S bytes of VSrc1, last V-S of VSrc2, S = SOp1
  // Vector compute.
  VBinOp,     ///< VDst = VSrc1 <VectorOp> VSrc2, element-wise on ElemSize
  VCmp,       ///< VDst = per-lane VSrc1 <CmpOp> VSrc2 ? all-ones : zero
              ///< (signed, ElemSize lanes; the if-conversion mask)
  VSelect,    ///< VDst = bytewise (VSrc2 & VSrc1) | (VSrc3 & ~VSrc1);
              ///< VSrc1 is a lane mask, VSrc2 taken lanes, VSrc3 untaken
  VCopy,      ///< VDst = VSrc1 (software-pipelining carries, Section 4.5)
  // Scalar support.
  SConst,     ///< SDst = Imm
  SBase,      ///< SDst = runtime byte address of Addr.Base
  SBinOp,     ///< SDst = SOp1 <ScalarOp> SOp2
  SCmp,       ///< SDst = SOp1 <CmpOp> SOp2 ? 1 : 0
};

/// Scalar ALU operations.
enum class SBinOpKind { Add, Sub, Mul, And, Mod };

/// Scalar comparisons (producing 0/1 for use as predicates).
enum class SCmpKind { LT, LE, GT, GE, EQ, NE };

/// Cost/measurement category of an instruction; the evaluation (Section 5)
/// splits operations per datum into these buckets.
enum class OpCategory {
  Load,
  Store,
  Reorg,   ///< vshiftpair / vsplice / vsplat
  Compute, ///< vector arithmetic
  Copy,    ///< register copies introduced by software pipelining
  Scalar,  ///< address / alignment / bound computation, predicates
};

/// One vector-IR instruction.
struct VInst {
  VOpcode Op = VOpcode::VCopy;

  VRegId VDst;
  VRegId VSrc1;
  VRegId VSrc2;
  VRegId VSrc3; ///< VSelect's untaken-lane input only.

  SRegId SDst;
  ScalarOperand SOp1; ///< Shift amount / splice point / scalar lhs.
  ScalarOperand SOp2; ///< Scalar rhs.

  Address Addr;                     ///< VLoad / VStore / SBase.
  ir::BinOpKind VectorOp = ir::BinOpKind::Add;
  SBinOpKind ScalarOp = SBinOpKind::Add;
  SCmpKind CmpOp = SCmpKind::EQ;
  int64_t Imm = 0;                  ///< SConst payload.
  unsigned ElemSize = 4;            ///< Lane width for VSplat / VBinOp.

  /// When set, the instruction executes only if the register is nonzero
  /// (used by the runtime-bound epilogue, Section 4.4).
  std::optional<SRegId> Predicate;

  /// Free-form annotation carried into the printer.
  std::string Comment;

  /// \name Factories
  /// @{
  static VInst makeVLoad(VRegId Dst, Address A);
  static VInst makeVStore(Address A, VRegId Src);
  static VInst makeVSplat(VRegId Dst, int64_t Value, unsigned ElemSize);
  static VInst makeVSplatReg(VRegId Dst, SRegId Value, unsigned ElemSize);
  static VInst makeVShiftPair(VRegId Dst, VRegId Src1, VRegId Src2,
                              ScalarOperand Shift);
  static VInst makeVSplice(VRegId Dst, VRegId Src1, VRegId Src2,
                           ScalarOperand Point);
  static VInst makeVBinOp(ir::BinOpKind Kind, VRegId Dst, VRegId Src1,
                          VRegId Src2, unsigned ElemSize);
  static VInst makeVCmp(SCmpKind Kind, VRegId Dst, VRegId Src1, VRegId Src2,
                        unsigned ElemSize);
  static VInst makeVSelect(VRegId Dst, VRegId Mask, VRegId IfSet,
                           VRegId IfClear);
  static VInst makeVCopy(VRegId Dst, VRegId Src);
  static VInst makeSConst(SRegId Dst, int64_t Value);
  static VInst makeSBase(SRegId Dst, const ir::Array *Base);
  static VInst makeSBinOp(SBinOpKind Kind, SRegId Dst, ScalarOperand LHS,
                          ScalarOperand RHS);
  static VInst makeSCmp(SCmpKind Kind, SRegId Dst, ScalarOperand LHS,
                        ScalarOperand RHS);
  /// @}

  /// Returns the measurement bucket of this instruction.
  OpCategory category() const;

  /// Returns true for instructions that write a vector register.
  bool definesVector() const;

  /// Returns true for instructions that write a scalar register.
  bool definesScalar() const;

  /// Returns true if the instruction has no side effects (everything but
  /// VStore); pure instructions are eligible for CSE, predictive commoning,
  /// and dead-code elimination.
  bool isPure() const { return Op != VOpcode::VStore; }
};

/// Printable mnemonic of an opcode.
const char *opcodeName(VOpcode Op);

/// Printable mnemonic of a scalar ALU operation.
const char *sBinOpName(SBinOpKind Kind);

/// Printable mnemonic of a scalar comparison.
const char *sCmpName(SCmpKind Kind);

} // namespace vir
} // namespace simdize

#endif // SIMDIZE_VIR_VINST_H
