//===- vir/VPrinter.h - Textual form of vector IR programs ---------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints vector IR programs in an assembly-like syntax for diagnostics
/// and golden tests:
///
///   setup:
///     v0 = vload &b[(0)+1]
///   loop i = 4, i < 97, i += 4:
///     v1 = vload &b[(i)+5]
///     v2 = vshiftpair v0, v1, 4
///     ...
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_VIR_VPRINTER_H
#define SIMDIZE_VIR_VPRINTER_H

#include <string>

namespace simdize {
namespace vir {

struct VInst;
class VProgram;

/// Renders one instruction (no trailing newline).
std::string printInst(const VInst &I);

/// Renders the whole program.
std::string printProgram(const VProgram &P);

} // namespace vir
} // namespace simdize

#endif // SIMDIZE_VIR_VPRINTER_H
