//===- vir/VPrinter.cpp ---------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "vir/VPrinter.h"

#include "ir/Array.h"
#include "support/Debug.h"
#include "support/Format.h"
#include "vir/VProgram.h"

using namespace simdize;
using namespace simdize::vir;

static std::string printSOp(const ScalarOperand &Op) {
  if (Op.IsReg)
    return strf("s%u", Op.Reg.Id);
  return strf("%lld", static_cast<long long>(Op.Imm));
}

static std::string printAddr(const Address &A) {
  std::string Index =
      A.Index ? strf("s%u", A.Index->Id)
              : strf("%lld", static_cast<long long>(A.ConstIndex));
  if (A.ElemOffset == 0)
    return strf("&%s[%s]", A.Base->getName().c_str(), Index.c_str());
  return strf("&%s[(%s)%+lld]", A.Base->getName().c_str(), Index.c_str(),
              static_cast<long long>(A.ElemOffset));
}

std::string vir::printInst(const VInst &I) {
  std::string S;
  switch (I.Op) {
  case VOpcode::VLoad:
    S = strf("v%u = vload %s", I.VDst.Id, printAddr(I.Addr).c_str());
    break;
  case VOpcode::VStore:
    S = strf("vstore %s, v%u", printAddr(I.Addr).c_str(), I.VSrc1.Id);
    break;
  case VOpcode::VSplat:
    if (I.SOp1.IsReg)
      S = strf("v%u = vsplat s%u x i%u", I.VDst.Id, I.SOp1.Reg.Id,
               I.ElemSize * 8);
    else
      S = strf("v%u = vsplat %lld x i%u", I.VDst.Id,
               static_cast<long long>(I.SOp1.Imm), I.ElemSize * 8);
    break;
  case VOpcode::VShiftPair:
    S = strf("v%u = vshiftpair v%u, v%u, %s", I.VDst.Id, I.VSrc1.Id,
             I.VSrc2.Id, printSOp(I.SOp1).c_str());
    break;
  case VOpcode::VSplice:
    S = strf("v%u = vsplice v%u, v%u, %s", I.VDst.Id, I.VSrc1.Id, I.VSrc2.Id,
             printSOp(I.SOp1).c_str());
    break;
  case VOpcode::VBinOp:
    S = strf("v%u = v%s.i%u v%u, v%u", I.VDst.Id,
             ir::binOpMnemonic(I.VectorOp), I.ElemSize * 8, I.VSrc1.Id,
             I.VSrc2.Id);
    break;
  case VOpcode::VCmp:
    S = strf("v%u = vcmp.%s.i%u v%u, v%u", I.VDst.Id, sCmpName(I.CmpOp),
             I.ElemSize * 8, I.VSrc1.Id, I.VSrc2.Id);
    break;
  case VOpcode::VSelect:
    S = strf("v%u = vselect v%u, v%u, v%u", I.VDst.Id, I.VSrc1.Id, I.VSrc2.Id,
             I.VSrc3.Id);
    break;
  case VOpcode::VCopy:
    S = strf("v%u = vcopy v%u", I.VDst.Id, I.VSrc1.Id);
    break;
  case VOpcode::SConst:
    S = strf("s%u = sconst %lld", I.SDst.Id, static_cast<long long>(I.Imm));
    break;
  case VOpcode::SBase:
    S = strf("s%u = sbase %s", I.SDst.Id, I.Addr.Base->getName().c_str());
    break;
  case VOpcode::SBinOp:
    S = strf("s%u = s%s %s, %s", I.SDst.Id, sBinOpName(I.ScalarOp),
             printSOp(I.SOp1).c_str(), printSOp(I.SOp2).c_str());
    break;
  case VOpcode::SCmp:
    S = strf("s%u = scmp.%s %s, %s", I.SDst.Id, sCmpName(I.CmpOp),
             printSOp(I.SOp1).c_str(), printSOp(I.SOp2).c_str());
    break;
  }
  if (I.Predicate)
    S = strf("[if s%u] ", I.Predicate->Id) + S;
  if (!I.Comment.empty())
    S += "  ; " + I.Comment;
  return S;
}

static void printBlock(std::string &Out, const Block &B) {
  for (const VInst &I : B)
    Out += "  " + printInst(I) + "\n";
}

std::string vir::printProgram(const VProgram &P) {
  std::string Out;
  Out += "setup:\n";
  printBlock(Out, P.getSetup());
  Out += strf("loop s%u = %s, s%u < %s, s%u += %u:\n", P.getIndexReg().Id,
              printSOp(P.getLowerBound()).c_str(), P.getIndexReg().Id,
              printSOp(P.getUpperBound()).c_str(), P.getIndexReg().Id,
              P.getLoopStep());
  printBlock(Out, P.getBody());
  Out += "epilogue:\n";
  printBlock(Out, P.getEpilogue());
  return Out;
}
