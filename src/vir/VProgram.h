//===- vir/VProgram.h - A simdized loop program ---------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unit of execution produced by the simdizer:
///
///   <Setup>                          // once: constants, runtime alignment
///                                    // computation, prologue stores,
///                                    // software-pipeline initialization
///   for (i = LB; i < UB; i += B)     // steady state, full vector stores
///     <Body>
///   <Epilogue>                       // once: residual (partial) stores;
///                                    // i holds the first unexecuted value
///
/// matching Figures 8-10 of the paper. LB/UB are immediates when the trip
/// count is compile-time known and scalar registers computed in Setup
/// otherwise (Section 4.4).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_VIR_VPROGRAM_H
#define SIMDIZE_VIR_VPROGRAM_H

#include "support/Debug.h"
#include "vir/VInst.h"

#include <cassert>
#include <utility>
#include <vector>

namespace simdize {
namespace vir {

/// Names the three sections of a VProgram.
enum class BlockKind { Setup, Body, Epilogue };

/// A straight-line sequence of instructions.
using Block = std::vector<VInst>;

/// A complete simdized program for one loop.
class VProgram {
public:
  /// \param VectorLen register width V in bytes (16 for all experiments).
  /// \param ElemSize data length D in bytes.
  VProgram(unsigned VectorLen, unsigned ElemSize)
      : VectorLen(VectorLen), ElemSize(ElemSize) {
    assert(VectorLen % ElemSize == 0 && "V must be a multiple of D");
    IndexReg = allocSReg();
  }

  unsigned getVectorLen() const { return VectorLen; }
  unsigned getElemSize() const { return ElemSize; }

  /// The blocking factor B = V / D: data per vector (Eq. 7).
  unsigned getBlockingFactor() const { return VectorLen / ElemSize; }

  /// Allocates a fresh vector register.
  VRegId allocVReg() { return VRegId{NumVRegs++}; }

  /// Allocates a fresh scalar register.
  SRegId allocSReg() { return SRegId{NumSRegs++}; }

  unsigned getNumVRegs() const { return NumVRegs; }
  unsigned getNumSRegs() const { return NumSRegs; }

  /// The scalar register holding the steady-loop counter; also live in the
  /// epilogue, where it holds the first unexecuted counter value.
  SRegId getIndexReg() const { return IndexReg; }

  Block &getBlock(BlockKind Kind) {
    switch (Kind) {
    case BlockKind::Setup:
      return Setup;
    case BlockKind::Body:
      return Body;
    case BlockKind::Epilogue:
      return Epilogue;
    }
    simdize_unreachable("unknown block kind");
  }
  const Block &getBlock(BlockKind Kind) const {
    return const_cast<VProgram *>(this)->getBlock(Kind);
  }

  Block &getSetup() { return Setup; }
  Block &getBody() { return Body; }
  Block &getEpilogue() { return Epilogue; }
  const Block &getSetup() const { return Setup; }
  const Block &getBody() const { return Body; }
  const Block &getEpilogue() const { return Epilogue; }

  /// Sets the steady-loop counter range [LB, UB) with step B.
  void setLoopBounds(ScalarOperand LB, ScalarOperand UB) {
    LowerBound = LB;
    UpperBound = UB;
  }

  /// Steady-loop counter increment; B by default, 2B after the
  /// copy-removing unroll.
  unsigned getLoopStep() const {
    return LoopStep ? LoopStep : getBlockingFactor();
  }
  void setLoopStep(unsigned Step) {
    assert(Step > 0 && Step % getBlockingFactor() == 0 &&
           "step must be a positive multiple of B");
    LoopStep = Step;
  }

  ScalarOperand getLowerBound() const { return LowerBound; }
  ScalarOperand getUpperBound() const { return UpperBound; }

  /// Declares a runtime trip-count parameter. Like a function argument, it
  /// costs no instructions: the machine binds \p ActualValue to the
  /// returned register before Setup runs. The generated code must not
  /// constant-fold it (that is the point of "unknown loop bounds",
  /// Section 4.4); the actual value exists only so the simulator can run.
  SRegId declareTripCountParam(int64_t ActualValue) {
    assert(!TripCountParam.isValid() && "trip count already declared");
    TripCountParam = allocSReg();
    TripCountValue = ActualValue;
    return TripCountParam;
  }

  /// Declares a runtime scalar parameter (a kernel argument such as a
  /// blend factor); the machine binds \p ActualValue to the returned
  /// register before Setup runs, at zero cost.
  SRegId declareScalarParam(int64_t ActualValue) {
    SRegId R = allocSReg();
    ScalarParams.emplace_back(R, ActualValue);
    return R;
  }

  const std::vector<std::pair<SRegId, int64_t>> &getScalarParams() const {
    return ScalarParams;
  }

  bool hasTripCountParam() const { return TripCountParam.isValid(); }
  SRegId getTripCountParam() const {
    assert(hasTripCountParam() && "no trip-count parameter");
    return TripCountParam;
  }
  int64_t getTripCountValue() const {
    assert(hasTripCountParam() && "no trip-count parameter");
    return TripCountValue;
  }

private:
  unsigned VectorLen;
  unsigned ElemSize;
  unsigned NumVRegs = 0;
  unsigned NumSRegs = 0;
  SRegId IndexReg;
  SRegId TripCountParam;
  int64_t TripCountValue = 0;
  std::vector<std::pair<SRegId, int64_t>> ScalarParams;
  unsigned LoopStep = 0;

  Block Setup;
  Block Body;
  Block Epilogue;

  ScalarOperand LowerBound = ScalarOperand::imm(0);
  ScalarOperand UpperBound = ScalarOperand::imm(0);
};

/// Number of instructions in \p B with opcode \p Op — the static counting
/// primitive behind the property oracles and the reuse tests.
unsigned countOps(const Block &B, VOpcode Op);

} // namespace vir
} // namespace simdize

#endif // SIMDIZE_VIR_VPROGRAM_H
