//===- vir/VVerifier.h - Structural checks on vector IR programs ---------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates a VProgram before execution: registers in range and defined
/// before use (accounting for loop-carried values initialized in Setup),
/// immediate shift amounts within [0, V), splice points within [0, V],
/// consistent lane widths, and an unclobbered loop counter. Every simdized
/// program in the test suite and every synthesized benchmark goes through
/// this before it is simulated.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_VIR_VVERIFIER_H
#define SIMDIZE_VIR_VVERIFIER_H

#include <optional>
#include <string>

namespace simdize {
namespace vir {

class VProgram;

/// Verifies \p P. \returns std::nullopt on success, or a description of the
/// first violation found.
std::optional<std::string> verifyProgram(const VProgram &P);

} // namespace vir
} // namespace simdize

#endif // SIMDIZE_VIR_VVERIFIER_H
