//===- vir/VReg.h - Virtual registers and operands of the vector IR ------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operand types of the vector IR: vector registers (V = 16 bytes wide),
/// scalar registers (64-bit), scalar operands (immediate or register — used
/// for shift amounts and splice points that may only be known at runtime,
/// Section 4.4), and stride-one addresses base + (index + c) * D whose index
/// is either the steady-loop counter register or a constant (prologue and
/// epilogue code).
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_VIR_VREG_H
#define SIMDIZE_VIR_VREG_H

#include <cassert>
#include <cstdint>
#include <optional>

namespace simdize {

namespace ir {
class Array;
} // namespace ir

namespace vir {

/// Identifies a 16-byte vector register.
struct VRegId {
  unsigned Id = ~0u;

  bool isValid() const { return Id != ~0u; }
  bool operator==(const VRegId &O) const { return Id == O.Id; }
};

/// Identifies a 64-bit scalar register.
struct SRegId {
  unsigned Id = ~0u;

  bool isValid() const { return Id != ~0u; }
  bool operator==(const SRegId &O) const { return Id == O.Id; }
};

/// A scalar value that is either a compile-time immediate or lives in a
/// scalar register (runtime alignments, runtime loop bounds).
struct ScalarOperand {
  bool IsReg = false;
  SRegId Reg;
  int64_t Imm = 0;

  static ScalarOperand imm(int64_t Value) {
    ScalarOperand Op;
    Op.IsReg = false;
    Op.Imm = Value;
    return Op;
  }

  static ScalarOperand reg(SRegId R) {
    assert(R.isValid() && "scalar operand needs a valid register");
    ScalarOperand Op;
    Op.IsReg = true;
    Op.Reg = R;
    return Op;
  }

  bool isImm() const { return !IsReg; }
  int64_t getImm() const {
    assert(isImm() && "not an immediate");
    return Imm;
  }
};

/// A stride-one address: &Base[(index) + ElemOffset], where index is the
/// value of Index (a scalar register, normally the loop counter) when
/// present, or the constant ConstIndex otherwise. Vector memory operations
/// truncate the resulting byte address to a multiple of V, exactly like an
/// AltiVec lvx/stvx.
struct Address {
  const ir::Array *Base = nullptr;
  int64_t ElemOffset = 0;
  std::optional<SRegId> Index;
  int64_t ConstIndex = 0;

  static Address indexed(const ir::Array *Base, int64_t ElemOffset,
                         SRegId Index) {
    Address A;
    A.Base = Base;
    A.ElemOffset = ElemOffset;
    A.Index = Index;
    return A;
  }

  static Address constant(const ir::Array *Base, int64_t ElemOffset,
                          int64_t ConstIndex) {
    Address A;
    A.Base = Base;
    A.ElemOffset = ElemOffset;
    A.ConstIndex = ConstIndex;
    return A;
  }
};

} // namespace vir
} // namespace simdize

#endif // SIMDIZE_VIR_VREG_H
