//===- vir/VVerifier.cpp --------------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "vir/VVerifier.h"

#include "support/Format.h"
#include "vir/VPrinter.h"
#include "vir/VProgram.h"

#include <vector>

using namespace simdize;
using namespace simdize::vir;

namespace {

/// Walks the three blocks in execution order, tracking which registers have
/// been defined. Body reads may additionally rely on Setup definitions
/// (loop-carried values are initialized there); Epilogue reads may rely on
/// Setup and Body definitions, since the `ub > 3B` validity guard
/// guarantees at least one steady iteration.
class ProgramVerifier {
public:
  explicit ProgramVerifier(const VProgram &P)
      : P(P), VDefined(P.getNumVRegs(), false),
        SDefined(P.getNumSRegs(), false) {}

  std::optional<std::string> run() {
    // The loop counter is defined by the loop construct itself.
    if (auto Err = checkSReg(P.getIndexReg(), "loop counter"))
      return Err;
    SDefined[P.getIndexReg().Id] = true;

    // The trip-count parameter is bound by the machine before Setup runs.
    if (P.hasTripCountParam()) {
      if (auto Err = checkSReg(P.getTripCountParam(), "trip-count parameter"))
        return Err;
      SDefined[P.getTripCountParam().Id] = true;
    }

    // So are the scalar parameters.
    for (auto [Reg, Value] : P.getScalarParams()) {
      (void)Value;
      if (auto Err = checkSReg(Reg, "scalar parameter"))
        return Err;
      SDefined[Reg.Id] = true;
    }

    if (auto Err = checkBound(P.getLowerBound(), "lower bound"))
      return Err;
    if (auto Err = checkBound(P.getUpperBound(), "upper bound"))
      return Err;

    for (BlockKind Kind :
         {BlockKind::Setup, BlockKind::Body, BlockKind::Epilogue})
      for (const VInst &I : P.getBlock(Kind))
        if (auto Err = checkInst(I))
          return strf("%s: in '%s'", Err->c_str(), printInst(I).c_str());
    return std::nullopt;
  }

private:
  std::optional<std::string> checkVReg(VRegId R, const char *What) {
    if (!R.isValid() || R.Id >= P.getNumVRegs())
      return strf("%s names vector register out of range", What);
    return std::nullopt;
  }

  std::optional<std::string> checkSReg(SRegId R, const char *What) {
    if (!R.isValid() || R.Id >= P.getNumSRegs())
      return strf("%s names scalar register out of range", What);
    return std::nullopt;
  }

  std::optional<std::string> checkBound(const ScalarOperand &Op,
                                        const char *What) {
    // Register bounds must be produced in Setup; we defer the def check to
    // the machine, but the register must at least be in range.
    if (Op.IsReg)
      return checkSReg(Op.Reg, What);
    return std::nullopt;
  }

  std::optional<std::string> useVReg(VRegId R) {
    if (auto Err = checkVReg(R, "use"))
      return Err;
    if (!VDefined[R.Id])
      return strf("v%u used before definition", R.Id);
    return std::nullopt;
  }

  std::optional<std::string> useSReg(SRegId R) {
    if (auto Err = checkSReg(R, "use"))
      return Err;
    if (!SDefined[R.Id])
      return strf("s%u used before definition", R.Id);
    return std::nullopt;
  }

  std::optional<std::string> useSOp(const ScalarOperand &Op) {
    if (Op.IsReg)
      return useSReg(Op.Reg);
    return std::nullopt;
  }

  std::optional<std::string> useAddr(const Address &A) {
    if (!A.Base)
      return std::string("address has no base array");
    if (A.Index)
      return useSReg(*A.Index);
    return std::nullopt;
  }

  std::optional<std::string> checkInst(const VInst &I) {
    if (I.Predicate)
      if (auto Err = useSReg(*I.Predicate))
        return Err;

    unsigned V = P.getVectorLen();
    switch (I.Op) {
    case VOpcode::VLoad:
      if (auto Err = useAddr(I.Addr))
        return Err;
      break;
    case VOpcode::VStore:
      if (auto Err = useAddr(I.Addr))
        return Err;
      if (auto Err = useVReg(I.VSrc1))
        return Err;
      break;
    case VOpcode::VSplat:
      if (I.ElemSize == 0 || V % I.ElemSize != 0)
        return std::string("vsplat lane width does not divide V");
      if (auto Err = useSOp(I.SOp1))
        return Err;
      break;
    case VOpcode::VShiftPair:
      if (auto Err = useVReg(I.VSrc1))
        return Err;
      if (auto Err = useVReg(I.VSrc2))
        return Err;
      if (auto Err = useSOp(I.SOp1))
        return Err;
      if (I.SOp1.isImm() &&
          (I.SOp1.getImm() < 0 || I.SOp1.getImm() > static_cast<int64_t>(V)))
        return std::string("vshiftpair amount outside [0, V]");
      break;
    case VOpcode::VSplice:
      if (auto Err = useVReg(I.VSrc1))
        return Err;
      if (auto Err = useVReg(I.VSrc2))
        return Err;
      if (auto Err = useSOp(I.SOp1))
        return Err;
      if (I.SOp1.isImm() &&
          (I.SOp1.getImm() < 0 || I.SOp1.getImm() > static_cast<int64_t>(V)))
        return std::string("vsplice point outside [0, V]");
      break;
    case VOpcode::VBinOp:
      if (auto Err = useVReg(I.VSrc1))
        return Err;
      if (auto Err = useVReg(I.VSrc2))
        return Err;
      if (I.ElemSize != P.getElemSize())
        return std::string("vbinop lane width differs from the program's D");
      break;
    case VOpcode::VCmp:
      if (auto Err = useVReg(I.VSrc1))
        return Err;
      if (auto Err = useVReg(I.VSrc2))
        return Err;
      if (I.ElemSize != P.getElemSize())
        return std::string("vcmp lane width differs from the program's D");
      break;
    case VOpcode::VSelect:
      if (auto Err = useVReg(I.VSrc1))
        return Err;
      if (auto Err = useVReg(I.VSrc2))
        return Err;
      if (auto Err = useVReg(I.VSrc3))
        return Err;
      break;
    case VOpcode::VCopy:
      if (auto Err = useVReg(I.VSrc1))
        return Err;
      break;
    case VOpcode::SConst:
      break;
    case VOpcode::SBase:
      if (!I.Addr.Base)
        return std::string("sbase has no base array");
      break;
    case VOpcode::SBinOp:
    case VOpcode::SCmp:
      if (auto Err = useSOp(I.SOp1))
        return Err;
      if (auto Err = useSOp(I.SOp2))
        return Err;
      break;
    }

    // Definitions happen after all uses are checked (an instruction may not
    // read its own result).
    if (I.definesVector()) {
      if (auto Err = checkVReg(I.VDst, "def"))
        return Err;
      VDefined[I.VDst.Id] = true;
    }
    if (I.definesScalar()) {
      if (auto Err = checkSReg(I.SDst, "def"))
        return Err;
      if (I.SDst == P.getIndexReg())
        return std::string("instruction clobbers the loop counter");
      SDefined[I.SDst.Id] = true;
    }
    return std::nullopt;
  }

  const VProgram &P;
  std::vector<bool> VDefined;
  std::vector<bool> SDefined;
};

} // namespace

std::optional<std::string> vir::verifyProgram(const VProgram &P) {
  return ProgramVerifier(P).run();
}
