//===- parser/LoopParser.cpp ----------------------------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "parser/LoopParser.h"

#include "ir/IRBuilder.h"
#include "obs/Trace.h"
#include "support/Format.h"

#include <cctype>
#include <map>
#include <sstream>

using namespace simdize;
using namespace simdize::parser;

namespace {

/// Character-level cursor over one line with diagnostics.
class LineLexer {
public:
  LineLexer(const std::string &Line, unsigned LineNo)
      : Line(Line), LineNo(LineNo) {}

  void skipSpace() {
    while (Pos < Line.size() && std::isspace(static_cast<unsigned char>(
                                    Line[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Line.size() || Line[Pos] == '#';
  }

  char peek() {
    skipSpace();
    return Pos < Line.size() ? Line[Pos] : '\0';
  }

  bool consume(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }

  std::optional<std::string> ident() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Line.size() &&
           (std::isalnum(static_cast<unsigned char>(Line[Pos])) ||
            Line[Pos] == '_'))
      ++Pos;
    if (Pos == Start)
      return std::nullopt;
    return Line.substr(Start, Pos - Start);
  }

  std::optional<int64_t> number() {
    skipSpace();
    size_t Start = Pos;
    if (Pos < Line.size() && (Line[Pos] == '-' || Line[Pos] == '+'))
      ++Pos;
    size_t DigitsStart = Pos;
    while (Pos < Line.size() &&
           std::isdigit(static_cast<unsigned char>(Line[Pos])))
      ++Pos;
    if (Pos == DigitsStart) {
      Pos = Start;
      return std::nullopt;
    }
    return std::stoll(Line.substr(Start, Pos - Start));
  }

  std::string errorAt(const std::string &Msg) const {
    return strf("line %u, column %zu: %s", LineNo, Pos + 1, Msg.c_str());
  }

private:
  const std::string &Line;
  unsigned LineNo;
  size_t Pos = 0;
};

/// Stateful parser accumulating arrays and statements into a loop.
class Parser {
public:
  explicit Parser(unsigned VectorLen) : VectorLen(VectorLen) {}

  ParseResult run(const std::string &Text) {
    std::istringstream In(Text);
    std::string Line;
    unsigned LineNo = 0;
    while (std::getline(In, Line)) {
      ++LineNo;
      LineLexer Lex(Line, LineNo);
      if (Lex.atEnd())
        continue;
      if (auto Err = parseLine(Lex))
        return {std::nullopt, *Err};
    }
    if (!SawLoop)
      return {std::nullopt, "missing 'loop <trip count>' directive"};
    if (Result.getStmts().empty())
      return {std::nullopt, "no statements"};
    return {std::move(Result), ""};
  }

private:
  std::optional<std::string> parseLine(LineLexer &Lex) {
    // Statements start with NAME '['; directives with a keyword.
    LineLexer Probe = Lex;
    auto First = Probe.ident();
    if (!First)
      return Lex.errorAt("expected 'array', 'loop', or a statement");
    if (*First == "array")
      return parseArray(Lex);
    if (*First == "param")
      return parseParam(Lex);
    if (*First == "loop")
      return parseLoopDirective(Lex);
    if (*First == "if" && Probe.peek() == '(')
      return parseIfStmt(Lex);
    return parseStmt(Lex);
  }

  std::optional<std::string> parseArray(LineLexer &Lex) {
    Lex.ident(); // "array"
    auto Name = Lex.ident();
    if (!Name)
      return Lex.errorAt("expected array name");
    if (Arrays.count(*Name))
      return Lex.errorAt("array '" + *Name + "' redefined");

    auto TyName = Lex.ident();
    ir::ElemType Ty;
    if (TyName == std::optional<std::string>("i8"))
      Ty = ir::ElemType::Int8;
    else if (TyName == std::optional<std::string>("i16"))
      Ty = ir::ElemType::Int16;
    else if (TyName == std::optional<std::string>("i32"))
      Ty = ir::ElemType::Int32;
    else
      return Lex.errorAt("expected element type i8, i16, or i32");

    auto Size = Lex.number();
    if (!Size || *Size <= 0)
      return Lex.errorAt("expected positive array size");

    auto KW = Lex.ident();
    if (KW != std::optional<std::string>("align"))
      return Lex.errorAt("expected 'align'");

    // "byte" opts this array into byte-misaligned bases (Section 7).
    bool ByteGranular = false;
    LineLexer Probe = Lex;
    if (Probe.ident() == std::optional<std::string>("byte")) {
      Lex.ident();
      ByteGranular = true;
    }

    bool Known = true;
    int64_t Align = 0;
    if (Lex.consume('?')) {
      Known = false;
      // Optional actual placement for runtime-alignment arrays.
      if (auto Actual = Lex.number())
        Align = *Actual;
    } else {
      auto A = Lex.number();
      if (!A)
        return Lex.errorAt("expected alignment value or '?'");
      Align = *A;
    }
    if (Align < 0 || Align >= static_cast<int64_t>(VectorLen))
      return Lex.errorAt("alignment must be in [0," +
                         std::to_string(VectorLen) + ")");
    if (!ByteGranular && Align % static_cast<int64_t>(ir::elemSize(Ty)) != 0)
      return Lex.errorAt("alignment must be a multiple of the element size "
                         "(use 'align byte' for byte-misaligned bases)");
    if (!Lex.atEnd())
      return Lex.errorAt("trailing characters after array declaration");

    Arrays[*Name] = Result.createArray(
        *Name, Ty, *Size, static_cast<unsigned>(Align), Known);
    return std::nullopt;
  }

  std::optional<std::string> parseParam(LineLexer &Lex) {
    Lex.ident(); // "param"
    auto Name = Lex.ident();
    if (!Name)
      return Lex.errorAt("expected parameter name");
    if (Params.count(*Name) || Arrays.count(*Name))
      return Lex.errorAt("name '" + *Name + "' already in use");
    auto Actual = Lex.number();
    if (!Actual)
      return Lex.errorAt("expected the parameter's actual value (used by "
                         "the simulator)");
    if (!Lex.atEnd())
      return Lex.errorAt("trailing characters after param declaration");
    Params[*Name] = Result.createParam(*Name, *Actual);
    return std::nullopt;
  }

  std::optional<std::string> parseLoopDirective(LineLexer &Lex) {
    Lex.ident(); // "loop"
    bool Known = true;
    LineLexer Probe = Lex;
    if (Probe.ident() == std::optional<std::string>("runtime")) {
      Lex.ident();
      Known = false;
    }
    auto UB = Lex.number();
    if (!UB || *UB < 0)
      return Lex.errorAt("expected nonnegative trip count");
    if (!Lex.atEnd())
      return Lex.errorAt("trailing characters after loop directive");
    Result.setUpperBound(*UB, Known);
    SawLoop = true;
    return std::nullopt;
  }

  /// NAME '[' 'i' ['+' NUM] ']' — shared by statements and references.
  /// When \p Absolute is non-null, NAME '[' NUM ']' is also accepted (a
  /// reduction accumulator cell) and *Absolute reports which form was seen.
  std::optional<std::string> parseAccess(LineLexer &Lex, const ir::Array *&A,
                                         int64_t &Offset,
                                         bool *Absolute = nullptr) {
    auto Name = Lex.ident();
    if (!Name)
      return Lex.errorAt("expected array name");
    auto It = Arrays.find(*Name);
    if (It == Arrays.end())
      return Lex.errorAt("unknown array '" + *Name + "'");
    A = It->second;
    if (!Lex.consume('['))
      return Lex.errorAt("expected '['");
    if (Absolute)
      *Absolute = false;
    LineLexer Probe = Lex;
    if (Probe.ident() != std::optional<std::string>("i")) {
      if (!Absolute)
        return Lex.errorAt("expected loop counter 'i'");
      auto Idx = Lex.number();
      if (!Idx || *Idx < 0)
        return Lex.errorAt("expected loop counter 'i' or a nonnegative "
                           "accumulator index");
      *Absolute = true;
      Offset = *Idx;
      if (!Lex.consume(']'))
        return Lex.errorAt("expected ']'");
      return std::nullopt;
    }
    Lex.ident(); // "i"
    Offset = 0;
    char Sign = Lex.peek();
    if (Sign == '+' || Sign == '-') {
      Lex.consume(Sign);
      auto C = Lex.number();
      if (!C || *C < 0)
        return Lex.errorAt("expected nonnegative offset");
      Offset = Sign == '-' ? -*C : *C;
    }
    if (!Lex.consume(']'))
      return Lex.errorAt("expected ']'");
    return std::nullopt;
  }

  /// One of '<' '<=' '>' '>=' '==' '!=' inside an if-guard.
  std::optional<std::string> parseCmpOp(LineLexer &Lex, ir::CmpKind &Out) {
    char C = Lex.peek();
    if (C == '<' || C == '>') {
      Lex.consume(C);
      bool OrEqual = Lex.consume('=');
      Out = C == '<' ? (OrEqual ? ir::CmpKind::LE : ir::CmpKind::LT)
                     : (OrEqual ? ir::CmpKind::GE : ir::CmpKind::GT);
      return std::nullopt;
    }
    if (C == '=' || C == '!') {
      Lex.consume(C);
      if (!Lex.consume('='))
        return Lex.errorAt("expected comparison operator");
      Out = C == '=' ? ir::CmpKind::EQ : ir::CmpKind::NE;
      return std::nullopt;
    }
    return Lex.errorAt("expected comparison operator");
  }

  /// 'if' '(' expr CMP expr ')' access '=' expr.
  std::optional<std::string> parseIfStmt(LineLexer &Lex) {
    Lex.ident(); // "if"
    if (!Lex.consume('('))
      return Lex.errorAt("expected '(' after 'if'");
    std::unique_ptr<ir::Expr> GuardLHS, GuardRHS;
    if (auto Err = parseExpr(Lex, GuardLHS))
      return Err;
    ir::CmpKind Cmp = ir::CmpKind::LT;
    if (auto Err = parseCmpOp(Lex, Cmp))
      return Err;
    if (auto Err = parseExpr(Lex, GuardRHS))
      return Err;
    if (!Lex.consume(')'))
      return Lex.errorAt("expected ')' after guard");
    const ir::Array *Store = nullptr;
    int64_t Offset = 0;
    if (auto Err = parseAccess(Lex, Store, Offset))
      return Err;
    if (!Lex.consume('='))
      return Lex.errorAt("expected '='");
    std::unique_ptr<ir::Expr> RHS;
    if (auto Err = parseExpr(Lex, RHS))
      return Err;
    if (!Lex.atEnd())
      return Lex.errorAt("trailing characters after statement");
    Result.addIfStmt(Store, Offset, std::move(RHS), std::move(GuardLHS), Cmp,
                     std::move(GuardRHS));
    return std::nullopt;
  }

  /// '+=' '*=' '&=' '|=' '^=' 'min=' 'max=' after an accumulator access.
  std::optional<std::string> parseReduceOp(LineLexer &Lex, ir::BinOpKind &Out) {
    char C = Lex.peek();
    switch (C) {
    case '+':
      Out = ir::BinOpKind::Add;
      break;
    case '*':
      Out = ir::BinOpKind::Mul;
      break;
    case '&':
      Out = ir::BinOpKind::And;
      break;
    case '|':
      Out = ir::BinOpKind::Or;
      break;
    case '^':
      Out = ir::BinOpKind::Xor;
      break;
    default: {
      LineLexer Probe = Lex;
      auto Name = Probe.ident();
      if (Name == std::optional<std::string>("min"))
        Out = ir::BinOpKind::Min;
      else if (Name == std::optional<std::string>("max"))
        Out = ir::BinOpKind::Max;
      else
        return Lex.errorAt("expected a reduction operator (+=, *=, &=, |=, "
                           "^=, min=, max=)");
      Lex.ident();
      if (!Lex.consume('='))
        return Lex.errorAt("expected '=' after reduction operator");
      return std::nullopt;
    }
    }
    Lex.consume(C);
    if (!Lex.consume('='))
      return Lex.errorAt("expected '=' after reduction operator");
    return std::nullopt;
  }

  std::optional<std::string> parseStmt(LineLexer &Lex) {
    const ir::Array *Store = nullptr;
    int64_t Offset = 0;
    bool Absolute = false;
    if (auto Err = parseAccess(Lex, Store, Offset, &Absolute))
      return Err;
    std::unique_ptr<ir::Expr> RHS;
    if (Absolute) {
      // ACC '[' NUM ']' OP '=' expr — a reduction statement.
      ir::BinOpKind Op = ir::BinOpKind::Add;
      if (auto Err = parseReduceOp(Lex, Op))
        return Err;
      if (auto Err = parseExpr(Lex, RHS))
        return Err;
      if (!Lex.atEnd())
        return Lex.errorAt("trailing characters after statement");
      Result.addReduceStmt(Store, Offset, Op, std::move(RHS));
      return std::nullopt;
    }
    if (!Lex.consume('='))
      return Lex.errorAt("expected '='");
    if (auto Err = parseExpr(Lex, RHS))
      return Err;
    if (!Lex.atEnd())
      return Lex.errorAt("trailing characters after statement");
    Result.addStmt(Store, Offset, std::move(RHS));
    return std::nullopt;
  }

  /// Chains one precedence level: Sub ('Op' Sub)*.
  template <typename SubParser>
  std::optional<std::string> parseChain(LineLexer &Lex,
                                        std::unique_ptr<ir::Expr> &Out,
                                        char Op, ir::BinOpKind Kind,
                                        SubParser Sub) {
    if (auto Err = (this->*Sub)(Lex, Out))
      return Err;
    while (Lex.peek() == Op) {
      Lex.consume(Op);
      std::unique_ptr<ir::Expr> RHS;
      if (auto Err = (this->*Sub)(Lex, RHS))
        return Err;
      Out = ir::binOp(Kind, std::move(Out), std::move(RHS));
    }
    return std::nullopt;
  }

  // C-like precedence: | < ^ < & < +,- < *.
  std::optional<std::string> parseExpr(LineLexer &Lex,
                                       std::unique_ptr<ir::Expr> &Out) {
    return parseChain(Lex, Out, '|', ir::BinOpKind::Or, &Parser::parseXor);
  }

  std::optional<std::string> parseXor(LineLexer &Lex,
                                      std::unique_ptr<ir::Expr> &Out) {
    return parseChain(Lex, Out, '^', ir::BinOpKind::Xor, &Parser::parseAnd);
  }

  std::optional<std::string> parseAnd(LineLexer &Lex,
                                      std::unique_ptr<ir::Expr> &Out) {
    return parseChain(Lex, Out, '&', ir::BinOpKind::And,
                      &Parser::parseAddSub);
  }

  std::optional<std::string> parseAddSub(LineLexer &Lex,
                                         std::unique_ptr<ir::Expr> &Out) {
    if (auto Err = parseTerm(Lex, Out))
      return Err;
    while (true) {
      char Op = Lex.peek();
      if (Op != '+' && Op != '-')
        return std::nullopt;
      Lex.consume(Op);
      std::unique_ptr<ir::Expr> RHS;
      if (auto Err = parseTerm(Lex, RHS))
        return Err;
      Out = ir::binOp(Op == '+' ? ir::BinOpKind::Add : ir::BinOpKind::Sub,
                      std::move(Out), std::move(RHS));
    }
  }

  std::optional<std::string> parseTerm(LineLexer &Lex,
                                       std::unique_ptr<ir::Expr> &Out) {
    if (auto Err = parseFactor(Lex, Out))
      return Err;
    while (Lex.peek() == '*') {
      Lex.consume('*');
      std::unique_ptr<ir::Expr> RHS;
      if (auto Err = parseFactor(Lex, RHS))
        return Err;
      Out = ir::mul(std::move(Out), std::move(RHS));
    }
    return std::nullopt;
  }

  std::optional<std::string> parseFactor(LineLexer &Lex,
                                         std::unique_ptr<ir::Expr> &Out) {
    if (Lex.consume('(')) {
      if (auto Err = parseExpr(Lex, Out))
        return Err;
      if (!Lex.consume(')'))
        return Lex.errorAt("expected ')'");
      return std::nullopt;
    }
    if (auto Num = Lex.number()) {
      Out = ir::splat(*Num);
      return std::nullopt;
    }
    // min(a, b) / max(a, b) calls, unless the name is an array reference.
    LineLexer Probe = Lex;
    auto Name = Probe.ident();
    if ((Name == std::optional<std::string>("min") ||
         Name == std::optional<std::string>("max")) &&
        Probe.peek() == '(') {
      Lex.ident();
      Lex.consume('(');
      std::unique_ptr<ir::Expr> LHS, RHS;
      if (auto Err = parseExpr(Lex, LHS))
        return Err;
      if (!Lex.consume(','))
        return Lex.errorAt("expected ','");
      if (auto Err = parseExpr(Lex, RHS))
        return Err;
      if (!Lex.consume(')'))
        return Lex.errorAt("expected ')'");
      Out = ir::binOp(*Name == "min" ? ir::BinOpKind::Min
                                     : ir::BinOpKind::Max,
                      std::move(LHS), std::move(RHS));
      return std::nullopt;
    }
    // A declared parameter name used as a scalar.
    if (Name) {
      if (auto It = Params.find(*Name);
          It != Params.end() && Probe.peek() != '[') {
        Lex.ident();
        Out = ir::param(It->second);
        return std::nullopt;
      }
    }
    const ir::Array *A = nullptr;
    int64_t Offset = 0;
    if (auto Err = parseAccess(Lex, A, Offset))
      return Err;
    Out = ir::ref(A, Offset);
    return std::nullopt;
  }

  unsigned VectorLen;
  ir::Loop Result;
  std::map<std::string, ir::Param *> Params;
  std::map<std::string, ir::Array *> Arrays;
  bool SawLoop = false;
};

} // namespace

ParseResult parser::parseLoop(const std::string &Text, unsigned VectorLen) {
  obs::Span Sp("parse");
  return Parser(VectorLen).run(Text);
}
