//===- parser/LoopParser.h - Textual loop descriptions --------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small line-oriented language for describing loops, used by the
/// simdize-tool CLI and handy in tests:
///
/// \code
///   # Figure 1 of the paper.
///   array a i32 128 align 0
///   array b i32 128 align 0
///   array c i32 128 align ?     # runtime alignment (? places it at 0)
///   loop 100                    # or: loop runtime 100
///   a[i+3] = b[i+1] + c[i+2]
/// \endcode
///
/// Grammar:
///   file  := line*
///   line  := array | loop | stmt | comment | blank
///   array := "array" NAME type NUM "align" ["byte"] (NUM | "?" NUM?)
///   type  := "i8" | "i16" | "i32"
///   loop  := "loop" ["runtime"] NUM
///   stmt  := NAME "[" "i" [("+"|"-") NUM] "]" "=" expr
///   expr  := term (("+" | "-") term)*
///   term  := factor ("*" factor)*
///   factor:= NUM | NAME "[" "i" [("+"|"-") NUM] "]" | "(" expr ")"
///
/// Alignments are element-size multiples unless the "byte" marker opts a
/// declaration into the Section 7 byte-misaligned-base extension
/// ("array a i32 64 align byte 5"); the fuzzing corpus relies on this to
/// store non-naturally-aligned reproducers as text.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDIZE_PARSER_LOOPPARSER_H
#define SIMDIZE_PARSER_LOOPPARSER_H

#include "ir/Loop.h"

#include <optional>
#include <string>

namespace simdize {
namespace parser {

/// Result of parsing: the loop on success, a line-attributed diagnostic
/// otherwise.
struct ParseResult {
  std::optional<ir::Loop> Loop;
  std::string Error;

  bool ok() const { return Loop.has_value(); }
};

/// Parses a whole loop description. Alignments are validated against the
/// vector width the loop is destined for: `align` values must lie in
/// [0, \p VectorLen). The default is the paper's 16-byte target; pass the
/// request's width when compiling for wider vectors so declarations like
/// `align 48` are accepted (V = 64) or rejected (V = 16) consistently.
ParseResult parseLoop(const std::string &Text, unsigned VectorLen = 16);

} // namespace parser
} // namespace simdize

#endif // SIMDIZE_PARSER_LOOPPARSER_H
