//===- tools/simdize-tool.cpp - Command-line driver ------------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simdizes a textual loop description (see parser/LoopParser.h) and shows
/// every stage of the pipeline. Usage:
///
///   simdize-tool [options] [file]        (stdin when no file)
///     --policy=zero|eager|lazy|dom|optimal|auto
///                                    shift placement policy (default lazy;
///                                    optimal = exact DP, auto = pipeline
///                                    picks per loop)
///     --vlen=N                       vector register width in bytes
///                                    (power of two, 4..64; default 16)
///     --sp                           software-pipelined codegen
///     --pc                           predictive commoning post-pass
///     --reassoc                      common offset reassociation
///     --no-memnorm                   disable memory normalization
///     --dump-graph[=dot]             print data reorganization graphs
///                                    (text, or Graphviz DOT)
///     --dump-vir                     print the vector IR program
///     --emit-c                       print AltiVec-style C++ for the loop
///     --lower=altivec|native         emit a kernel for the given backend
///                                    (altivec is --emit-c; native emits
///                                    x86 intrinsics over simdize_x86.h)
///     --native-isa=auto|shim|sse2|avx2|avx512
///                                    wrapper ISA for --lower=native
///                                    (auto picks the hardware ISA that
///                                    pins --vlen; emission never needs
///                                    host support). Hardware ISAs must
///                                    match --vlen: sse2=16, avx2=32,
///                                    avx512=64 — exit 2 otherwise
///     --lower-out=FILE               write the emitted kernel to FILE
///                                    instead of stdout
///     --tier=vm|native               execution tier for --run: the
///                                    decoded VM (default), or the VM
///                                    check plus the native differential
///                                    (compile, dlopen, run, compare the
///                                    full image; best host ISA, shim
///                                    fallback)
///     --run                          simulate, verify, and report opd
///     --trace=FILE                   write a Chrome trace-event JSON of
///                                    the pipeline phases to FILE and print
///                                    a per-phase summary
///     --explain[=FILE]               print the simdization decision log;
///                                    with =FILE also write it as JSON
///     --validate-json=FILE           standalone: parse FILE as JSON and
///                                    exit 0 iff well-formed
///
/// CLI contract (shared with simdize-fuzz, enforced by ctests): unknown
/// flags, stray arguments, and unreadable inputs exit 2 with usage; a
/// pipeline or verification failure exits 1.
///
/// Example:
///   echo 'array a i32 128 align 0
///         array b i32 128 align 0
///         array c i32 128 align 0
///         loop 100
///         a[i+3] = b[i+1] + c[i+2]' | simdize-tool --sp --run --dump-vir
///
//===----------------------------------------------------------------------===//

#include "codegen/Explain.h"
#include "lower/AltiVecEmitter.h"
#include "native/NativeEmitter.h"
#include "obs/Json.h"
#include "obs/Trace.h"
#include "parser/LoopParser.h"
#include "simdize/Simdize.h"
#include "support/CLIOptions.h"
#include "support/Format.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <optional>
#include <sstream>

using namespace simdize;

namespace {

struct ToolOptions {
  /// The shared --policy/--vlen/--sp/--tier axes (support::CLIOptions).
  support::CLIOptions Shared;
  bool PC = false;
  bool Reassoc = false;
  bool MemNorm = true;
  bool DumpGraph = false;
  bool DumpGraphDot = false;
  bool DumpVir = false;
  bool EmitC = false;
  bool LowerNative = false; ///< --lower=native: emit the intrinsic kernel.
  /// Explicit --native-isa (nullopt = auto: the hardware ISA pinning
  /// --vlen, shim for widths with no hardware mapping).
  std::optional<native::ISA> NativeISA;
  std::string LowerOut;     ///< Kernel emission target, with --lower-out=F.
  bool Run = false;
  bool Explain = false;
  std::string ExplainFile;  ///< JSON decision log target, with --explain=F.
  std::string TraceFile;    ///< Chrome trace target, with --trace=F.
  std::string ValidateFile; ///< Standalone JSON validation mode.
  std::string InputFile;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--policy=zero|eager|lazy|dom|optimal|auto] "
               "[--vlen=N (power of two, 4..64)] [--sp] "
               "[--pc] [--reassoc] [--no-memnorm] [--dump-graph[=dot]] "
               "[--dump-vir] [--emit-c] [--lower=altivec|native] "
               "[--native-isa=auto|shim|sse2|avx2|avx512] "
               "[--lower-out=FILE] [--tier=vm|native] [--run] "
               "[--trace=FILE] "
               "[--explain[=FILE]] [--validate-json=FILE] [file]\n",
               Argv0);
  return 2;
}

bool parseArgs(int Argc, char **Argv, ToolOptions &Opts) {
  for (int K = 1; K < Argc; ++K) {
    std::string Arg = Argv[K];
    switch (Opts.Shared.consume(Arg)) {
    case support::CLIOptions::Consume::Ok:
      continue;
    case support::CLIOptions::Consume::Bad:
      return false;
    case support::CLIOptions::Consume::NotMine:
      break;
    }
    if (Arg == "--pc")
      Opts.PC = true;
    else if (Arg == "--reassoc")
      Opts.Reassoc = true;
    else if (Arg == "--no-memnorm")
      Opts.MemNorm = false;
    else if (Arg == "--dump-graph")
      Opts.DumpGraph = true;
    else if (Arg == "--dump-graph=dot")
      Opts.DumpGraph = Opts.DumpGraphDot = true;
    else if (Arg == "--dump-vir")
      Opts.DumpVir = true;
    else if (Arg == "--emit-c")
      Opts.EmitC = true;
    else if (Arg == "--lower=altivec")
      Opts.EmitC = true;
    else if (Arg == "--lower=native")
      Opts.LowerNative = true;
    else if (Arg.rfind("--native-isa=", 0) == 0) {
      std::string Name = Arg.substr(13);
      if (Name != "auto") {
        Opts.NativeISA = native::parseISAName(Name);
        if (!Opts.NativeISA)
          return false;
      }
    } else if (Arg.rfind("--lower-out=", 0) == 0) {
      Opts.LowerOut = Arg.substr(12);
      if (Opts.LowerOut.empty())
        return false;
    } else if (Arg == "--run")
      Opts.Run = true;
    else if (Arg == "--explain")
      Opts.Explain = true;
    else if (Arg.rfind("--explain=", 0) == 0) {
      Opts.Explain = true;
      Opts.ExplainFile = Arg.substr(10);
      if (Opts.ExplainFile.empty())
        return false;
    } else if (Arg.rfind("--trace=", 0) == 0) {
      Opts.TraceFile = Arg.substr(8);
      if (Opts.TraceFile.empty())
        return false;
    } else if (Arg.rfind("--validate-json=", 0) == 0) {
      Opts.ValidateFile = Arg.substr(16);
      if (Opts.ValidateFile.empty())
        return false;
    } else if (Arg.rfind("--", 0) == 0) {
      return false;
    } else if (Opts.InputFile.empty()) {
      Opts.InputFile = Arg;
    } else {
      return false;
    }
  }
  // --native-isa only modifies --lower=native, and a hardware ISA that
  // cannot realize the requested width is a usage error — caught here at
  // parse time (exit 2) rather than surfacing as a late pipeline failure.
  if (Opts.NativeISA &&
      (!Opts.LowerNative ||
       !native::isaSupportsWidth(*Opts.NativeISA, Opts.Shared.VectorLen)))
    return false;
  if (!Opts.LowerOut.empty() && !Opts.EmitC && !Opts.LowerNative)
    return false;
  return true;
}

/// Reads \p Path entirely; false when unreadable.
bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In.good())
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return true;
}

bool writeFile(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out.good())
    return false;
  Out << Content;
  return Out.good();
}

/// Delivers an emitted kernel to --lower-out, or stdout without it.
bool deliverKernel(const ToolOptions &Opts, const std::string &Code) {
  if (Opts.LowerOut.empty()) {
    std::printf("%s\n", Code.c_str());
    return true;
  }
  if (!writeFile(Opts.LowerOut, Code + "\n")) {
    std::fprintf(stderr, "error: cannot write %s\n", Opts.LowerOut.c_str());
    return false;
  }
  return true;
}

/// --validate-json mode: exit 0 iff the file parses as one JSON document.
int validateJson(const std::string &Path) {
  std::string Text;
  if (!readFile(Path, Text)) {
    std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
    return 2;
  }
  std::string Err;
  if (!obs::json::parse(Text, &Err)) {
    std::fprintf(stderr, "invalid JSON in %s: %s\n", Path.c_str(),
                 Err.c_str());
    return 1;
  }
  std::printf("%s: valid JSON\n", Path.c_str());
  return 0;
}

int runTool(const ToolOptions &Opts) {
  std::string Text;
  if (Opts.InputFile.empty()) {
    Text.assign(std::istreambuf_iterator<char>(std::cin),
                std::istreambuf_iterator<char>());
  } else if (!readFile(Opts.InputFile, Text)) {
    std::fprintf(stderr, "error: cannot open %s\n", Opts.InputFile.c_str());
    return 2;
  }

  parser::ParseResult Parsed = parser::parseLoop(Text, Opts.Shared.VectorLen);
  if (!Parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", Parsed.Error.c_str());
    return 1;
  }
  const ir::Loop &L = *Parsed.Loop;
  std::printf("%s\n", ir::printLoop(L).c_str());

  pipeline::CompileRequest Req;
  Req.Simd.Policy = Opts.Shared.Policy;
  Req.Simd.SoftwarePipelining = Opts.Shared.SP;
  Req.Simd.Tgt = Target(Opts.Shared.VectorLen);
  Req.Opt = Opts.PC ? pipeline::OptLevel::PC : pipeline::OptLevel::Std;
  Req.MemNorm = Opts.MemNorm;
  Req.OffsetReassoc = Opts.Reassoc;
  Req.AutoPolicy = Opts.Shared.AutoPolicy;
  Req.Tier = Opts.Shared.Tier;
  pipeline::CompileResult R = pipeline::runPipeline(L, Req);

  if (Opts.Shared.AutoPolicy)
    std::printf("-- auto policy: %s --\n",
                policies::policyName(R.ResolvedPolicy));
  // Stages below that re-derive graphs or explain decisions must use the
  // policy the pipeline actually compiled with.
  codegen::SimdizeOptions UsedSimd = Req.Simd;
  UsedSimd.Policy = R.ResolvedPolicy;

  // The loop the program was actually compiled from (the reassociated
  // clone when --reassoc changed anything).
  const ir::Loop &Run = R.ReassocLoop ? *R.ReassocLoop : L;
  if (R.Reassociated)
    std::printf("reassociated %u statement(s):\n%s\n", R.Reassociated,
                ir::printLoop(Run).c_str());

  if (!R.Simd.ok()) {
    if (Opts.Explain) {
      obs::DecisionLog Log = codegen::explainSimdization(Run, UsedSimd, R.Simd);
      std::printf("%s", Log.explainText().c_str());
      if (!Opts.ExplainFile.empty() &&
          !writeFile(Opts.ExplainFile, Log.toJson() + "\n"))
        std::fprintf(stderr, "error: cannot write %s\n",
                     Opts.ExplainFile.c_str());
    }
    std::fprintf(stderr, "error: %s\n", R.error().c_str());
    return 1;
  }

  if (Opts.DumpGraph) {
    if (Opts.DumpGraphDot) {
      // Re-derive the post-placement graphs for structured DOT output (the
      // text dumps in R are pre-rendered).
      std::unique_ptr<policies::ShiftPolicy> Policy =
          policies::createPolicy(UsedSimd.Policy, UsedSimd.SoftwarePipelining);
      const auto &Stmts = Run.getStmts();
      for (size_t K = 0; K < Stmts.size(); ++K) {
        reorg::Graph G = reorg::buildGraph(*Stmts[K], Req.Simd.vectorLen());
        if (Policy->place(G))
          continue; // proven applicable by simdize() above
        std::printf("%s\n",
                    reorg::printGraphDot(G, strf("stmt%zu", K)).c_str());
      }
    } else {
      std::printf("-- data reorganization graphs (%s, %u vshiftstream) --\n",
                  policies::policyName(R.ResolvedPolicy), R.Simd.ShiftCount);
      for (const std::string &Dump : R.Simd.GraphDumps)
        std::printf("%s\n", Dump.c_str());
    }
  }

  std::printf("-- pipeline: %u CSE'd, %u carried, %u copies removed, "
              "%u dead --\n",
              R.Opt.CSERemoved, R.Opt.PCReplaced, R.Opt.CopiesRemoved,
              R.Opt.DCERemoved);
  if (R.PostOptVerifyError) {
    std::fprintf(stderr, "error: %s\n", R.PostOptVerifyError->c_str());
    return 1;
  }

  if (Opts.Explain) {
    obs::DecisionLog Log = codegen::explainSimdization(Run, UsedSimd, R.Simd);
    Log.OptRan = R.OptRan;
    Log.OptRewrites = {
        {"cse", "removed", R.Opt.CSERemoved},
        {"predictive-commoning", "replaced", R.Opt.PCReplaced},
        {"unroll-copies", "removed", R.Opt.CopiesRemoved},
        {"dce", "removed", R.Opt.DCERemoved},
    };
    std::printf("%s", Log.explainText().c_str());
    if (!Opts.ExplainFile.empty() &&
        !writeFile(Opts.ExplainFile, Log.toJson() + "\n")) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   Opts.ExplainFile.c_str());
      return 1;
    }
  }

  if (Opts.DumpVir)
    std::printf("%s\n", vir::printProgram(*R.Simd.Program).c_str());

  if (Opts.EmitC) {
    lower::LowerResult C =
        lower::emitAltiVecKernel(*R.Simd.Program, Run, "kernel");
    if (!C.ok()) {
      std::fprintf(stderr, "error: %s\n", C.Error.c_str());
      return 1;
    }
    if (!deliverKernel(Opts, C.Code))
      return 1;
  }

  if (Opts.LowerNative) {
    native::ISA Isa = Opts.NativeISA
                          ? *Opts.NativeISA
                          : native::canonicalISAForWidth(Opts.Shared.VectorLen);
    lower::LowerResult C =
        native::emitNativeKernel(*R.Simd.Program, Run, "kernel", Isa);
    if (!C.ok()) {
      std::fprintf(stderr, "error: %s\n", C.Error.c_str());
      return 1;
    }
    if (!deliverKernel(Opts, C.Code))
      return 1;
  }

  if (Opts.Run) {
    sim::CheckResult Check = pipeline::checkCompiled(L, R, 2004);
    if (!Check.Ok) {
      std::fprintf(stderr, "verification FAILED: %s\n",
                   Check.Message.c_str());
      return 1;
    }
    int64_t Datums =
        Run.getUpperBound() * static_cast<int64_t>(Run.getStmts().size());
    std::printf("verified OK; %lld ops for %lld datums: opd %.3f "
                "(ideal scalar %.1f, speedup %.2fx)\n",
                static_cast<long long>(Check.Stats.Counts.total()),
                static_cast<long long>(Datums),
                Check.Stats.Counts.opd(Datums), ir::scalarOpd(Run),
                ir::scalarOpd(Run) / Check.Stats.Counts.opd(Datums));
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage(Argv[0]);

  if (!Opts.ValidateFile.empty())
    return validateJson(Opts.ValidateFile);

  obs::Tracer Tracer;
  if (!Opts.TraceFile.empty())
    obs::installTracer(&Tracer);

  int Ret = runTool(Opts);

  if (!Opts.TraceFile.empty()) {
    obs::installTracer(nullptr);
    if (!writeFile(Opts.TraceFile, Tracer.toChromeJson() + "\n")) {
      std::fprintf(stderr, "error: cannot write %s\n", Opts.TraceFile.c_str());
      return Ret ? Ret : 1;
    }
    std::printf("-- trace: %zu events -> %s --\n%s", Tracer.eventCount(),
                Opts.TraceFile.c_str(), Tracer.summary().c_str());
  }
  return Ret;
}
