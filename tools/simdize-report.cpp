//===- tools/simdize-report.cpp - Aggregate telemetry into a report -------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repo's perf trajectory in one place: aggregates the artifacts the
/// benches and the compile server emit — BENCH_*.json envelopes (the
/// shared BenchCommon.h writer), google-benchmark BENCH_speed.json,
/// flight-recorder dumps, obs::Registry metrics JSON, and metrics JSONL
/// streams — into one markdown report with a gate table and, given a
/// baseline envelope, run-over-run deltas.
///
///   simdize-report [--out=FILE] [--baseline=FILE] [--max-regress=R]
///                  INPUT...
///
/// Inputs are classified by content, not by name, so any mix of files
/// works. --baseline=FILE names a previous BENCH envelope (or a file
/// holding several, one per line); a current gate whose value fell more
/// than R (default 0.10) below its baseline counts as a regression —
/// gate values are scaled higher-is-better by the benches, which is what
/// makes one direction check sound.
///
/// Exit status: 0 clean; 1 when any gate failed or any regression
/// exceeded the threshold (the CI contract); 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "support/Format.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace simdize;
using obs::json::Value;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--out=FILE] [--baseline=FILE] [--max-regress=R] "
               "INPUT...\n",
               Argv0);
  return 2;
}

struct GateRow {
  std::string Bench;
  std::string Name;
  double Value = 0.0;
  double Threshold = 0.0;
  bool Passed = false;
};

std::string fmtNum(double V) { return strf("%.4g", V); }

const Value *member(const Value &V, const char *Key) { return V.find(Key); }

double numOr(const Value *V, double Default) {
  return V && V->isNumber() ? V->Num : Default;
}

std::string strOr(const Value *V, const std::string &Default) {
  return V && V->isString() ? V->Str : Default;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// What one input file turned out to be.
enum class InputKind { Envelope, GoogleBenchmark, Flight, Registry, Jsonl };

const char *inputKindName(InputKind K) {
  switch (K) {
  case InputKind::Envelope:
    return "bench envelope";
  case InputKind::GoogleBenchmark:
    return "google-benchmark";
  case InputKind::Flight:
    return "flight-recorder dump";
  case InputKind::Registry:
    return "metrics registry";
  case InputKind::Jsonl:
    return "metrics JSONL";
  }
  return "unknown";
}

struct Input {
  std::string Path;
  InputKind Kind = InputKind::Registry;
  Value Doc;                ///< Whole-document inputs.
  std::vector<Value> Lines; ///< JSONL inputs.
};

/// Content classification: the flight dump may arrive bare (dumpToFile)
/// or wrapped in a `dump` response envelope.
std::optional<InputKind> classify(const Value &V) {
  if (!V.isObject())
    return std::nullopt;
  if (member(V, "bench") && member(V, "gates") && member(V, "rows"))
    return InputKind::Envelope;
  if (member(V, "context") && member(V, "benchmarks"))
    return InputKind::GoogleBenchmark;
  if (member(V, "capacity") && member(V, "records"))
    return InputKind::Flight;
  if (member(V, "flight"))
    return InputKind::Flight;
  if (member(V, "counters") || member(V, "histograms"))
    return InputKind::Registry;
  return std::nullopt;
}

/// The flight payload itself, unwrapping a `dump` response if needed.
const Value &flightOf(const Value &Doc) {
  const Value *Wrapped = member(Doc, "flight");
  return Wrapped && Wrapped->isObject() ? *Wrapped : Doc;
}

bool loadInput(const std::string &Path, Input &In, std::string &Err) {
  std::string Text;
  if (!readFile(Path, Text)) {
    Err = "cannot read " + Path;
    return false;
  }
  In.Path = Path;
  std::string ParseErr;
  if (std::optional<Value> V = obs::json::parse(Text, &ParseErr)) {
    std::optional<InputKind> K = classify(*V);
    if (!K) {
      Err = Path + ": unrecognized JSON shape";
      return false;
    }
    In.Kind = *K;
    In.Doc = std::move(*V);
    return true;
  }
  // Not one document: try JSONL — every non-empty line its own record.
  std::istringstream SS(Text);
  std::string Line;
  while (std::getline(SS, Line)) {
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    std::optional<Value> LV = obs::json::parse(Line);
    if (!LV) {
      Err = Path + ": neither JSON (" + ParseErr + ") nor JSONL";
      return false;
    }
    In.Lines.push_back(std::move(*LV));
  }
  if (In.Lines.empty()) {
    Err = Path + ": empty input";
    return false;
  }
  In.Kind = InputKind::Jsonl;
  return true;
}

void collectGates(const Value &Doc, std::vector<GateRow> &Gates) {
  std::string Bench = strOr(member(Doc, "bench"), "?");
  const Value *GV = member(Doc, "gates");
  if (!GV || !GV->isArray())
    return;
  for (const Value &G : GV->Arr) {
    GateRow R;
    R.Bench = Bench;
    R.Name = strOr(member(G, "name"), "?");
    R.Value = numOr(member(G, "value"), 0.0);
    R.Threshold = numOr(member(G, "threshold"), 0.0);
    const Value *P = member(G, "passed");
    R.Passed = P && P->isBool() && P->Bool;
    Gates.push_back(std::move(R));
  }
}

void sectionEnvelope(std::string &Md, const Input &In) {
  const Value &Doc = In.Doc;
  Md += strf("Bench `%s`", strOr(member(Doc, "bench"), "?").c_str());
  if (const Value *TS = member(Doc, "timestamp"))
    if (TS->isNumber())
      Md += strf(", timestamp %.0f", TS->Num);
  const Value *Rows = member(Doc, "rows");
  size_t N = Rows && Rows->isArray() ? Rows->Arr.size() : 0;
  Md += strf(", %zu row%s.\n\n", N, N == 1 ? "" : "s");
  if (!N)
    return;
  // Rows are flat objects of scalars; render the first few as a table
  // keyed by the first row's fields.
  const Value &First = Rows->Arr[0];
  if (!First.isObject() || First.Obj.empty())
    return;
  Md += "|";
  for (const auto &[K, V] : First.Obj)
    Md += " " + K + " |";
  Md += "\n|";
  for (size_t K = 0; K < First.Obj.size(); ++K)
    Md += "---|";
  Md += "\n";
  size_t Shown = std::min<size_t>(N, 20);
  for (size_t R = 0; R < Shown; ++R) {
    const Value &Row = Rows->Arr[R];
    Md += "|";
    for (const auto &[K, _] : First.Obj) {
      const Value *C = member(Row, K.c_str());
      if (C && C->isNumber())
        Md += " " + fmtNum(C->Num) + " |";
      else if (C && C->isString())
        Md += " " + C->Str + " |";
      else if (C && C->isBool())
        Md += C->Bool ? " true |" : " false |";
      else
        Md += " |";
    }
    Md += "\n";
  }
  if (Shown < N)
    Md += strf("\n(%zu more rows not shown)\n", N - Shown);
  Md += "\n";
}

void sectionGoogleBenchmark(std::string &Md, const Input &In) {
  const Value *BM = member(In.Doc, "benchmarks");
  if (!BM || !BM->isArray())
    return;
  Md += "| benchmark | real_time | unit | items/s |\n|---|---|---|---|\n";
  for (const Value &B : BM->Arr) {
    const Value *Items = member(B, "items_per_second");
    Md += strf("| %s | %s | %s | %s |\n",
               strOr(member(B, "name"), "?").c_str(),
               fmtNum(numOr(member(B, "real_time"), 0.0)).c_str(),
               strOr(member(B, "time_unit"), "ns").c_str(),
               Items && Items->isNumber() ? fmtNum(Items->Num).c_str() : "");
  }
  Md += "\n";
}

void sectionFlight(std::string &Md, const Input &In) {
  const Value &F = flightOf(In.Doc);
  Md += strf("Capacity %.0f, recorded %.0f, dropped %.0f.\n\n",
             numOr(member(F, "capacity"), 0.0),
             numOr(member(F, "recorded"), 0.0),
             numOr(member(F, "dropped"), 0.0));
  const Value *Recs = member(F, "records");
  if (!Recs || !Recs->isArray() || Recs->Arr.empty())
    return;
  Md += "| seq | kind | layer | outcome | policy | shifts | ms |\n"
        "|---|---|---|---|---|---|---|\n";
  // The most recent requests are what an incident dump is read for.
  size_t N = Recs->Arr.size();
  size_t From = N > 15 ? N - 15 : 0;
  for (size_t K = From; K < N; ++K) {
    const Value &R = Recs->Arr[K];
    Md += strf("| %.0f | %s | %s | %s | %s | %.0f | %s |\n",
               numOr(member(R, "seq"), 0.0),
               strOr(member(R, "kind"), "?").c_str(),
               strOr(member(R, "cache_layer"), "?").c_str(),
               strOr(member(R, "outcome"), "?").c_str(),
               strOr(member(R, "policy"), "").c_str(),
               numOr(member(R, "predicted_shifts"), -1.0),
               fmtNum(numOr(member(R, "duration_ms"), 0.0)).c_str());
  }
  if (From > 0)
    Md += strf("\n(%zu earlier records not shown)\n", From);
  Md += "\n";
}

void registryTables(std::string &Md, const Value &Doc) {
  const Value *Counters = member(Doc, "counters");
  if (Counters && Counters->isObject() && !Counters->Obj.empty()) {
    Md += "| counter | value |\n|---|---|\n";
    for (const auto &[K, V] : Counters->Obj)
      if (V.isNumber())
        Md += strf("| %s | %.0f |\n", K.c_str(), V.Num);
    Md += "\n";
  }
  const Value *Hists = member(Doc, "histograms");
  if (Hists && Hists->isObject() && !Hists->Obj.empty()) {
    Md += "| histogram | count | mean | p50 | p99 |\n|---|---|---|---|---|\n";
    for (const auto &[K, V] : Hists->Obj)
      Md += strf("| %s | %.0f | %s | %s | %s |\n", K.c_str(),
                 numOr(member(V, "count"), 0.0),
                 fmtNum(numOr(member(V, "mean"), 0.0)).c_str(),
                 fmtNum(numOr(member(V, "p50"), 0.0)).c_str(),
                 fmtNum(numOr(member(V, "p99"), 0.0)).c_str());
    Md += "\n";
  }
  const Value *Gauges = member(Doc, "gauges");
  if (Gauges && Gauges->isObject() && !Gauges->Obj.empty()) {
    Md += "| gauge | value |\n|---|---|\n";
    for (const auto &[K, V] : Gauges->Obj)
      Md += strf("| %s | %s |\n", K.c_str(),
                 V.isNumber() ? fmtNum(V.Num).c_str() : "null");
    Md += "\n";
  }
}

void sectionJsonl(std::string &Md, const Input &In) {
  Md += strf("%zu records.\n\n", In.Lines.size());
  // The last record is the freshest snapshot; render it like a registry.
  if (!In.Lines.empty())
    registryTables(Md, In.Lines.back());
}

} // namespace

int main(int Argc, char **Argv) {
  std::string OutPath;
  std::string BaselinePath;
  double MaxRegress = 0.10;
  std::vector<std::string> Paths;
  for (int K = 1; K < Argc; ++K) {
    std::string Arg = Argv[K];
    if (Arg.rfind("--out=", 0) == 0 && Arg.size() > 6) {
      OutPath = Arg.substr(6);
    } else if (Arg.rfind("--baseline=", 0) == 0 && Arg.size() > 11) {
      BaselinePath = Arg.substr(11);
    } else if (Arg.rfind("--max-regress=", 0) == 0) {
      char *End = nullptr;
      MaxRegress = std::strtod(Arg.c_str() + 14, &End);
      if (*End != '\0' || End == Arg.c_str() + 14 || MaxRegress < 0.0)
        return usage(Argv[0]);
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage(Argv[0]);
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Paths.empty())
    return usage(Argv[0]);

  std::vector<Input> Inputs;
  for (const std::string &P : Paths) {
    Input In;
    std::string Err;
    if (!loadInput(P, In, Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 2;
    }
    Inputs.push_back(std::move(In));
  }

  // Baseline gate values, keyed "bench/gate". The baseline file is one
  // envelope or a JSONL of several.
  std::map<std::string, double> Baseline;
  if (!BaselinePath.empty()) {
    Input Base;
    std::string Err;
    if (!loadInput(BaselinePath, Base, Err)) {
      std::fprintf(stderr, "error: baseline: %s\n", Err.c_str());
      return 2;
    }
    std::vector<GateRow> BaseGates;
    if (Base.Kind == InputKind::Envelope)
      collectGates(Base.Doc, BaseGates);
    else if (Base.Kind == InputKind::Jsonl)
      for (const Value &L : Base.Lines)
        collectGates(L, BaseGates);
    for (const GateRow &G : BaseGates)
      Baseline[G.Bench + "/" + G.Name] = G.Value;
  }

  std::vector<GateRow> Gates;
  for (const Input &In : Inputs)
    if (In.Kind == InputKind::Envelope)
      collectGates(In.Doc, Gates);

  bool AnyFailed = false, AnyRegressed = false;
  std::string Md = "# simdize report\n\n";

  if (!Gates.empty()) {
    Md += "## Gates\n\n";
    Md += BaselinePath.empty()
              ? "| bench | gate | value | threshold | status |\n"
                "|---|---|---|---|---|\n"
              : "| bench | gate | value | threshold | status | baseline | "
                "delta |\n|---|---|---|---|---|---|---|\n";
    for (const GateRow &G : Gates) {
      AnyFailed |= !G.Passed;
      Md += strf("| %s | %s | %s | %s | %s |", G.Bench.c_str(),
                 G.Name.c_str(), fmtNum(G.Value).c_str(),
                 fmtNum(G.Threshold).c_str(), G.Passed ? "pass" : "FAIL");
      if (!BaselinePath.empty()) {
        auto It = Baseline.find(G.Bench + "/" + G.Name);
        if (It == Baseline.end()) {
          Md += " new | |";
        } else {
          double Base = It->second;
          double Delta = Base != 0.0 ? (G.Value - Base) / Base : 0.0;
          bool Regressed = Delta < -MaxRegress;
          AnyRegressed |= Regressed;
          Md += strf(" %s | %+.1f%%%s |", fmtNum(Base).c_str(), 100.0 * Delta,
                     Regressed ? " REGRESSED" : "");
        }
      }
      Md += "\n";
    }
    Md += "\n";
  }

  for (const Input &In : Inputs) {
    Md += strf("## %s (%s)\n\n", In.Path.c_str(), inputKindName(In.Kind));
    switch (In.Kind) {
    case InputKind::Envelope:
      sectionEnvelope(Md, In);
      break;
    case InputKind::GoogleBenchmark:
      sectionGoogleBenchmark(Md, In);
      break;
    case InputKind::Flight:
      sectionFlight(Md, In);
      break;
    case InputKind::Registry:
      registryTables(Md, In.Doc);
      break;
    case InputKind::Jsonl:
      sectionJsonl(Md, In);
      break;
    }
  }

  if (AnyFailed)
    Md += "**Verdict: at least one gate FAILED.**\n";
  else if (AnyRegressed)
    Md += strf("**Verdict: gate regression beyond the %.0f%% threshold.**\n",
               100.0 * MaxRegress);
  else
    Md += "Verdict: all gates passed.\n";

  if (OutPath.empty()) {
    std::fputs(Md.c_str(), stdout);
  } else {
    std::ofstream Out(OutPath, std::ios::trunc | std::ios::binary);
    Out << Md;
    if (!Out.good()) {
      std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
      return 1;
    }
    std::printf("wrote %s\n", OutPath.c_str());
  }
  return (AnyFailed || AnyRegressed) ? 1 : 0;
}
