//===- tools/simdize-fuzz.cpp - Differential fuzzing driver ---------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end of the differential fuzzer (src/fuzz/): sweeps
/// synthesized loops across every applicable pipeline configuration and
/// checks each simdization bit-for-bit against the scalar oracle. Any
/// failure is minimized by the shrinker and written as parseable text.
///
///   simdize-fuzz [options]
///     --seeds=N         number of seeds to sweep (default 1000)
///     --start-seed=N    first seed (default 1)
///     --budget=SECONDS  stop early after this much wall time
///     --corpus-dir=DIR  write minimized reproducers into DIR
///     --max-failures=N  stop shrinking after N failures (16)
///     --jobs=N          worker threads sharding the seed range (default 1);
///                       results are merged in seed order, so without a
///                       budget the output is identical to --jobs=1
///     --verbose         log every seed's parameters
///     --replay FILE...  instead of fuzzing, run each corpus file through
///                       all applicable configurations
///
/// Exit status: 0 when every run verified or was cleanly rejected, 1 on
/// any failure, 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "fuzz/CorpusIO.h"
#include "fuzz/Fuzzer.h"
#include "ir/IRPrinter.h"
#include "ir/Loop.h"
#include "parser/LoopParser.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace simdize;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds=N] [--start-seed=N] [--budget=SEC] "
               "[--corpus-dir=DIR] [--max-failures=N] [--jobs=N] "
               "[--verbose]\n"
               "       %s --replay FILE...\n",
               Argv0, Argv0);
  return 2;
}

/// Runs one corpus file through every applicable configuration; returns
/// false on any Failed outcome.
bool replayFile(const std::string &Path) {
  auto Text = fuzz::readCorpusFile(Path);
  if (!Text) {
    std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return false;
  }
  parser::ParseResult Parsed = parser::parseLoop(*Text);
  if (!Parsed.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(),
                 Parsed.Error.c_str());
    return false;
  }
  const ir::Loop &L = *Parsed.Loop;
  std::printf("%s:\n%s", Path.c_str(), ir::printLoop(L).c_str());

  bool Ok = true;
  for (const fuzz::FuzzConfig &C : fuzz::configsForLoop(L)) {
    fuzz::RunResult R = fuzz::runConfigOnLoop(L, C, 2004);
    const char *Verdict = R.Status == fuzz::RunStatus::Verified ? "ok"
                          : R.Status == fuzz::RunStatus::Rejected
                              ? "rejected"
                              : "FAILED";
    std::printf("  %-14s %s%s%s\n", C.name().c_str(), Verdict,
                R.Message.empty() ? "" : ": ", R.Message.c_str());
    Ok &= R.Status != fuzz::RunStatus::Failed;
  }
  return Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  fuzz::FuzzOptions Opts;
  Opts.Log = stderr;
  std::vector<std::string> ReplayFiles;
  bool Replay = false;

  for (int K = 1; K < Argc; ++K) {
    std::string Arg = Argv[K];
    auto Value = [&](const char *Prefix) -> const char * {
      return Arg.c_str() + std::strlen(Prefix);
    };
    if (Arg == "--verbose")
      Opts.Verbose = true;
    else if (Arg == "--replay")
      Replay = true;
    else if (Arg.rfind("--seeds=", 0) == 0)
      Opts.NumSeeds = std::strtoull(Value("--seeds="), nullptr, 10);
    else if (Arg.rfind("--start-seed=", 0) == 0)
      Opts.StartSeed = std::strtoull(Value("--start-seed="), nullptr, 10);
    else if (Arg.rfind("--budget=", 0) == 0)
      Opts.TimeBudgetSeconds = std::strtod(Value("--budget="), nullptr);
    else if (Arg.rfind("--corpus-dir=", 0) == 0)
      Opts.CorpusDir = Value("--corpus-dir=");
    else if (Arg.rfind("--max-failures=", 0) == 0)
      Opts.MaxFailures = static_cast<unsigned>(
          std::strtoul(Value("--max-failures="), nullptr, 10));
    else if (Arg.rfind("--jobs=", 0) == 0)
      Opts.Jobs = static_cast<unsigned>(
          std::strtoul(Value("--jobs="), nullptr, 10));
    else if (Arg.rfind("--", 0) == 0)
      return usage(Argv[0]);
    else if (Replay)
      ReplayFiles.push_back(Arg);
    else
      return usage(Argv[0]);
  }

  if (Replay) {
    if (ReplayFiles.empty())
      return usage(Argv[0]);
    bool Ok = true;
    for (const std::string &Path : ReplayFiles)
      Ok &= replayFile(Path);
    return Ok ? 0 : 1;
  }

  fuzz::FuzzStats Stats = fuzz::runFuzz(Opts);
  std::printf("%llu seeds: %llu runs verified, %llu rejected, %zu "
              "failures%s\n",
              static_cast<unsigned long long>(Stats.SeedsRun),
              static_cast<unsigned long long>(Stats.RunsVerified),
              static_cast<unsigned long long>(Stats.RunsRejected),
              Stats.Failures.size(),
              Stats.HitTimeBudget ? " (time budget hit)" : "");
  for (const auto &F : Stats.Failures)
    std::printf("  seed %llu %s: %s%s%s\n",
                static_cast<unsigned long long>(F.Seed),
                F.Config.name().c_str(), F.Message.c_str(),
                F.CorpusFile.empty() ? "" : " -> ",
                F.CorpusFile.c_str());
  return Stats.ok() ? 0 : 1;
}
