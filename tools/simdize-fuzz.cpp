//===- tools/simdize-fuzz.cpp - Differential fuzzing driver ---------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end of the differential fuzzer (src/fuzz/): sweeps
/// synthesized loops across every applicable pipeline configuration and
/// checks each simdization bit-for-bit against the scalar oracle, plus
/// the property oracles (never-load-twice, shift counts, OPD bound)
/// unless --no-oracles is given. Any failure is minimized by the
/// shrinker, tagged with its failure kind, and written as parseable text.
///
///   simdize-fuzz [options]
///     --seeds=N         number of seeds to sweep (default 1000, N >= 1)
///     --start-seed=N    first seed (default 1)
///     --budget=SECONDS  stop early after this much wall time
///     --corpus-dir=DIR  write minimized reproducers into DIR
///     --max-failures=N  stop shrinking after N failures (16)
///     --jobs=N          worker threads sharding the seed range (default 1,
///                       1 <= N <= 256); results are merged in seed order,
///                       so without a budget the output is identical to
///                       --jobs=1
///     --metrics=FILE    write one JSONL record per (seed, config) run plus
///                       a final aggregate record with opd / shift-count
///                       percentiles; byte-identical across --jobs values
///     --widths=V,...    comma-separated vector widths to sweep (each a
///                       power of two in [4, 64]; default 16). Loops are
///                       synthesized once per seed at the widest width and
///                       every width runs against the same width-independent
///                       scalar oracle
///     --policy=NAME     restrict the policy axis to one policy
///                       (zero|eager|lazy|dom|optimal) or to the pipeline's
///                       auto-selection mode (auto); default sweeps all
///                       policies plus auto
///     --guards          enable the guarded-statement axis: seeds draw a
///                       per-loop probability of if-converted conditional
///                       assignments (if (x[i] > k) a[i] = ...)
///     --reductions      enable the reduction axis: seeds draw a per-loop
///                       probability of accumulation statements
///                       (s[k] += ...)
///     --no-oracles      bit-equality checking only, skip property oracles
///     --native          also lower every verified run to host intrinsics
///                       (best ISA the CPU supports, portable shim as the
///                       floor), compile + dlopen it, and require the full
///                       memory image to match the scalar expected image
///     --verbose         log every seed's parameters
///     --replay FILE...  instead of fuzzing, run each corpus file through
///                       all applicable configurations at every width
///                       (honors --native)
///
/// Unknown flags, malformed numbers, and out-of-range --jobs/--seeds are
/// rejected with the usage text.
///
/// Exit status: 0 when every run verified or was cleanly rejected, 1 on
/// any failure, 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "fuzz/CorpusIO.h"
#include "fuzz/Fuzzer.h"
#include "ir/IRPrinter.h"
#include "ir/Loop.h"
#include "parser/LoopParser.h"
#include "support/CLIOptions.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace simdize;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds=N] [--start-seed=N] [--budget=SEC] "
               "[--corpus-dir=DIR] [--max-failures=N] [--jobs=N] "
               "[--metrics=FILE] [--widths=V,...] "
               "[--policy=zero|eager|lazy|dom|optimal|auto] [--guards] "
               "[--reductions] [--no-oracles] [--native] [--verbose]\n"
               "       %s [--widths=V,...] --replay FILE...\n",
               Argv0, Argv0);
  return 2;
}

// Strict numeric parsing and the --policy axis come from the shared CLI
// layer (support/CLIOptions.h), which pins the same contract this tool's
// exit-code ctests do: malformed values are usage errors, exit 2.
using support::parseF64;
using support::parseU64;
using support::parseWidthList;

/// Runs one corpus file through every applicable configuration at every
/// requested width; returns false on any Failed outcome.
bool replayFile(const std::string &Path, bool Oracles, bool NativeDiff,
                const std::vector<unsigned> &Widths) {
  auto Text = fuzz::readCorpusFile(Path);
  if (!Text) {
    std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return false;
  }
  unsigned MaxWidth = *std::max_element(Widths.begin(), Widths.end());
  parser::ParseResult Parsed = parser::parseLoop(*Text, MaxWidth);
  if (!Parsed.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(),
                 Parsed.Error.c_str());
    return false;
  }
  const ir::Loop &L = *Parsed.Loop;
  std::printf("%s:\n%s", Path.c_str(), ir::printLoop(L).c_str());

  bool Ok = true;
  for (unsigned W : Widths) {
    for (const fuzz::FuzzConfig &C : fuzz::configsForLoop(L, W)) {
      fuzz::RunResult R =
          fuzz::runConfigOnLoop(L, C, 2004, {}, nullptr, Oracles, NativeDiff);
      bool Failed = R.Status == fuzz::RunStatus::Failed;
      std::string Verdict = R.Status == fuzz::RunStatus::Verified ? "ok"
                            : R.Status == fuzz::RunStatus::Rejected
                                ? "rejected"
                                : std::string("FAILED [") +
                                      oracle::failureKindName(R.Kind) + "]";
      std::printf("  %-14s %s%s%s\n", C.name().c_str(), Verdict.c_str(),
                  R.Message.empty() ? "" : ": ", R.Message.c_str());
      Ok &= !Failed;
    }
  }
  return Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  fuzz::FuzzOptions Opts;
  Opts.Log = stderr;
  std::vector<std::string> ReplayFiles;
  std::string MetricsPath;
  bool Replay = false;

  // Only the policy axis is shared with simdize-tool; --vlen/--sp/--tier
  // stay unknown flags here (the fuzzer sweeps those axes itself).
  support::CLIOptions Shared(support::CLIOptions::PolicyAxis);

  for (int K = 1; K < Argc; ++K) {
    std::string Arg = Argv[K];
    switch (Shared.consume(Arg)) {
    case support::CLIOptions::Consume::Ok:
      Opts.PolicyFilter = Shared.PolicyName;
      continue;
    case support::CLIOptions::Consume::Bad:
      std::fprintf(stderr, "error: %s\n", Shared.Error.c_str());
      return usage(Argv[0]);
    case support::CLIOptions::Consume::NotMine:
      break;
    }
    auto Value = [&](const char *Prefix) -> const char * {
      return Arg.c_str() + std::strlen(Prefix);
    };
    uint64_t N = 0;
    if (Arg == "--verbose")
      Opts.Verbose = true;
    else if (Arg == "--no-oracles")
      Opts.Oracles = false;
    else if (Arg == "--native")
      Opts.NativeDiff = true;
    else if (Arg == "--guards")
      Opts.Guards = true;
    else if (Arg == "--reductions")
      Opts.Reductions = true;
    else if (Arg == "--replay")
      Replay = true;
    else if (Arg.rfind("--seeds=", 0) == 0) {
      if (!parseU64(Value("--seeds="), N) || N < 1) {
        std::fprintf(stderr, "error: --seeds needs a whole number >= 1\n");
        return usage(Argv[0]);
      }
      Opts.NumSeeds = N;
    } else if (Arg.rfind("--start-seed=", 0) == 0) {
      if (!parseU64(Value("--start-seed="), N)) {
        std::fprintf(stderr, "error: --start-seed needs a whole number\n");
        return usage(Argv[0]);
      }
      Opts.StartSeed = N;
    } else if (Arg.rfind("--budget=", 0) == 0) {
      double Sec = 0;
      if (!parseF64(Value("--budget="), Sec) || Sec < 0) {
        std::fprintf(stderr, "error: --budget needs seconds >= 0\n");
        return usage(Argv[0]);
      }
      Opts.TimeBudgetSeconds = Sec;
    } else if (Arg.rfind("--corpus-dir=", 0) == 0)
      Opts.CorpusDir = Value("--corpus-dir=");
    else if (Arg.rfind("--max-failures=", 0) == 0) {
      if (!parseU64(Value("--max-failures="), N) || N > 100000) {
        std::fprintf(stderr,
                     "error: --max-failures needs a whole number <= 100000\n");
        return usage(Argv[0]);
      }
      Opts.MaxFailures = static_cast<unsigned>(N);
    } else if (Arg.rfind("--metrics=", 0) == 0) {
      if (*Value("--metrics=") == '\0') {
        std::fprintf(stderr, "error: --metrics needs a file path\n");
        return usage(Argv[0]);
      }
      MetricsPath = Value("--metrics=");
    } else if (Arg.rfind("--widths=", 0) == 0) {
      if (!parseWidthList(Value("--widths="), Opts.Widths)) {
        std::fprintf(stderr,
                     "error: --widths needs a comma-separated list of "
                     "powers of two in [4, %u]\n",
                     Target::MaxVectorLen);
        return usage(Argv[0]);
      }
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      if (!parseU64(Value("--jobs="), N) || N < 1 || N > 256) {
        std::fprintf(stderr, "error: --jobs needs a whole number in "
                             "[1, 256]\n");
        return usage(Argv[0]);
      }
      Opts.Jobs = static_cast<unsigned>(N);
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    } else if (Replay)
      ReplayFiles.push_back(Arg);
    else {
      std::fprintf(stderr, "error: stray argument '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    }
  }

  if (Replay) {
    if (ReplayFiles.empty())
      return usage(Argv[0]);
    bool Ok = true;
    for (const std::string &Path : ReplayFiles)
      Ok &= replayFile(Path, Opts.Oracles, Opts.NativeDiff, Opts.Widths);
    return Ok ? 0 : 1;
  }

  std::FILE *MetricsFile = nullptr;
  if (!MetricsPath.empty()) {
    MetricsFile = std::fopen(MetricsPath.c_str(), "wb");
    if (!MetricsFile) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   MetricsPath.c_str());
      return 2;
    }
    Opts.MetricsOut = MetricsFile;
  }

  fuzz::FuzzStats Stats = fuzz::runFuzz(Opts);
  if (MetricsFile)
    std::fclose(MetricsFile);
  std::printf("%llu seeds: %llu runs verified, %llu rejected, %zu "
              "failures, %llu duplicates%s\n",
              static_cast<unsigned long long>(Stats.SeedsRun),
              static_cast<unsigned long long>(Stats.RunsVerified),
              static_cast<unsigned long long>(Stats.RunsRejected),
              Stats.Failures.size(),
              static_cast<unsigned long long>(Stats.DuplicateFailures),
              Stats.HitTimeBudget ? " (time budget hit)" : "");
  for (const auto &F : Stats.Failures)
    std::printf("  seed %llu %s [%s]: %s%s%s\n",
                static_cast<unsigned long long>(F.Seed),
                F.Config.name().c_str(), oracle::failureKindName(F.Kind),
                F.Message.c_str(), F.CorpusFile.empty() ? "" : " -> ",
                F.CorpusFile.c_str());
  return Stats.ok() ? 0 : 1;
}
