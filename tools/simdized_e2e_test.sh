#!/bin/sh
# Live-server telemetry round trip (ISSUE 9 acceptance path): start the
# socket daemon with every telemetry flag, drive it through the client
# mode with a compile + dump + stats workload, shut it down with
# SIGTERM, and require the side-channel files (Prometheus exposition,
# flight-recorder dump, Chrome trace) to exist with the expected
# content. Responses themselves must stay telemetry-free.
#
# Usage: simdized_e2e_test.sh /path/to/simdized
set -u

SIMDIZED=$1
SOCK=./e2e.sock
PROM=./e2e.prom
FLIGHT=./e2e.flight.json
TRACE=./e2e.trace.json

rm -f "$SOCK" "$PROM" "$FLIGHT" "$TRACE"

fail() {
  echo "FAIL: $1" >&2
  [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null
  exit 1
}

"$SIMDIZED" --socket="$SOCK" --jobs=2 --prom="$PROM" \
  --flight-dump="$FLIGHT" --trace="$TRACE" --slow-ms=0 &
PID=$!

# Wait for the daemon to accept connections (stats round trip succeeds).
READY=1
I=0
while [ $I -lt 100 ]; do
  if printf '{"id":1,"kind":"stats"}\n' |
    "$SIMDIZED" --connect="$SOCK" >/dev/null 2>&1; then
    READY=0
    break
  fi
  kill -0 "$PID" 2>/dev/null || fail "daemon exited during startup"
  sleep 0.1
  I=$((I + 1))
done
[ $READY -eq 0 ] || fail "daemon never became ready"

# A compile (populates the cache and the flight ring), repeated so the
# second hit attributes to a warm layer, then a dump and a stats read.
REQ='{"id":2,"kind":"compile","loop":"array a i32 128 align 0\narray b i32 128 align 0\nloop 100\na[i+1] = b[i+3]\n","config":{"policy":"lazy","sp":true}}'
printf '%s\n' "$REQ" | "$SIMDIZED" --connect="$SOCK" > e2e_compile.out ||
  fail "compile request failed"
grep -q '"ok":true' e2e_compile.out || fail "compile response not ok"
printf '%s\n' "$REQ" | "$SIMDIZED" --connect="$SOCK" > e2e_compile2.out ||
  fail "repeat compile request failed"
cmp -s e2e_compile.out e2e_compile2.out ||
  fail "warm response differs from cold response"

printf '{"id":3,"kind":"dump"}\n' | "$SIMDIZED" --connect="$SOCK" \
  > e2e_dump.out || fail "dump request failed"
grep -q '"flight"' e2e_dump.out || fail "dump response lacks flight block"
grep -q '"cache_layer"' e2e_dump.out || fail "dump records lack cache_layer"

printf '{"id":4,"kind":"stats"}\n' | "$SIMDIZED" --connect="$SOCK" \
  > e2e_stats.out || fail "stats request failed"
grep -q '"build"' e2e_stats.out || fail "stats lacks build block"
grep -q '"uptime_seconds"' e2e_stats.out || fail "stats lacks uptime"
grep -q '"flight"' e2e_stats.out || fail "stats lacks flight block"

kill -TERM "$PID"
wait "$PID" || fail "daemon exited non-zero"
PID=

grep -q 'simdize_server_requests_total' "$PROM" ||
  fail "prom file lacks request counter"
grep -q '# TYPE' "$PROM" || fail "prom file lacks TYPE lines"
grep -q 'simdize_cache_events_total' "$PROM" ||
  fail "prom file lacks cache attribution"
grep -q '"records"' "$FLIGHT" || fail "flight dump lacks records"
grep -q '"memo"\|"alias"\|"live"\|"miss"' "$FLIGHT" ||
  fail "flight dump lacks cache-layer attribution"
grep -q 'traceEvents' "$TRACE" || fail "trace file lacks traceEvents"
exit 0
