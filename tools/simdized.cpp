//===- tools/simdized.cpp - The simdization-as-a-service daemon -----------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end of the compile server (src/server/): serves
/// compile / check / explain / stats / batch requests over the
/// length-prefixed JSON frame protocol (docs/SERVER.md), backed by the
/// content-addressed compile cache and a worker pool with deterministic
/// response ordering.
///
///   simdized [options]                serve stdin/stdout until EOF
///     --socket=PATH   serve a Unix-domain socket instead (until SIGINT
///                     or SIGTERM; connections share one cache)
///     --jobs=N        worker threads per connection and per batch
///                     (default 1, 1 <= N <= 256)
///     --cache-max=N   compile-cache capacity in entries (default 1024,
///                     0 = unbounded)
///     --ref-max=N     reference-image cache capacity (default 256)
///
///   Telemetry (serve modes only; side channels, never response bytes):
///     --trace=FILE        stream per-request Chrome trace-event JSON
///     --prom=FILE         write Prometheus text exposition periodically
///                         (socket daemon) and at shutdown (all modes)
///     --flight-dump=FILE  flight-recorder JSON destination: written
///                         automatically on worker faults / poisoned
///                         entries and once at shutdown
///     --flight-cap=N      flight-recorder ring capacity (default 256)
///     --slow-ms=T         log and count requests slower than T ms
///
///   simdized --connect=PATH [FILE...]  client mode: each input line is
///                     one request payload, sent as a frame to the daemon
///                     at PATH; responses print one per line. Blank lines
///                     and #-comments are skipped. Exits 1 if any
///                     response reports ok:false.
///
///   simdized --soak=N [--jobs=N] [--min-hit-rate=R]
///                     self-soak: N synthetic compile/check requests over
///                     a cycling working set are pushed through the full
///                     frame -> pool -> ordered-writer path in-process;
///                     prints throughput and cache hit rate, exits 1 when
///                     any request fails or the hit rate is below R.
///
/// Exit status: 0 clean; 1 on stream/request failures or a failed soak
/// gate; 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "server/Server.h"
#include "support/CLIOptions.h"
#include "support/Format.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

using namespace simdize;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--jobs=N] [--cache-max=N] [--ref-max=N] [--socket=PATH]\n"
      "          [--trace=FILE] [--prom=FILE] [--flight-dump=FILE]\n"
      "          [--flight-cap=N] [--slow-ms=T]\n"
      "       %s --connect=PATH [FILE...]\n"
      "       %s --soak=N [--jobs=N] [--cache-max=N] [--min-hit-rate=R]\n",
      Argv0, Argv0, Argv0);
  return 2;
}

// Strict numeric parsing (same exit-2 contract as the other tools) comes
// from the shared CLI layer; the daemon has no use for the pipeline flag
// axes, so it takes only the parsers.
using support::parseF64;
using support::parseU64;

bool parseRate(const char *Text, double &Out) {
  return parseF64(Text, Out) && Out >= 0.0 && Out <= 1.0;
}

struct Options {
  unsigned Jobs = 1;
  uint64_t CacheMax = 1024;
  uint64_t RefMax = 256;
  std::string SocketPath;  ///< --socket: daemon mode.
  std::string ConnectPath; ///< --connect: client mode.
  uint64_t Soak = 0;       ///< --soak: self-soak request count.
  double MinHitRate = -1.0;
  std::string TraceFile;      ///< --trace: Chrome trace stream.
  std::string PromFile;       ///< --prom: Prometheus exposition file.
  std::string FlightDumpFile; ///< --flight-dump: flight-recorder JSON.
  uint64_t FlightCap = 256;   ///< --flight-cap: ring capacity.
  double SlowMs = -1.0;       ///< --slow-ms: slow-request threshold.
  std::vector<std::string> Files;
};

bool parseArgs(int Argc, char **Argv, Options &O) {
  bool HaveMinRate = false, HaveSoak = false, HaveTelemetry = false;
  for (int K = 1; K < Argc; ++K) {
    std::string Arg = Argv[K];
    uint64_t V = 0;
    if (Arg.rfind("--jobs=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 7, V) || V < 1 || V > 256)
        return false;
      O.Jobs = static_cast<unsigned>(V);
    } else if (Arg.rfind("--cache-max=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 12, V))
        return false;
      O.CacheMax = V;
    } else if (Arg.rfind("--ref-max=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 10, V))
        return false;
      O.RefMax = V;
    } else if (Arg.rfind("--socket=", 0) == 0) {
      O.SocketPath = Arg.substr(9);
      if (O.SocketPath.empty())
        return false;
    } else if (Arg.rfind("--connect=", 0) == 0) {
      O.ConnectPath = Arg.substr(10);
      if (O.ConnectPath.empty())
        return false;
    } else if (Arg.rfind("--soak=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 7, V) || V < 1)
        return false;
      O.Soak = V;
      HaveSoak = true;
    } else if (Arg.rfind("--min-hit-rate=", 0) == 0) {
      if (!parseRate(Arg.c_str() + 15, O.MinHitRate))
        return false;
      HaveMinRate = true;
    } else if (Arg.rfind("--trace=", 0) == 0) {
      O.TraceFile = Arg.substr(8);
      if (O.TraceFile.empty())
        return false;
      HaveTelemetry = true;
    } else if (Arg.rfind("--prom=", 0) == 0) {
      O.PromFile = Arg.substr(7);
      if (O.PromFile.empty())
        return false;
      HaveTelemetry = true;
    } else if (Arg.rfind("--flight-dump=", 0) == 0) {
      O.FlightDumpFile = Arg.substr(14);
      if (O.FlightDumpFile.empty())
        return false;
      HaveTelemetry = true;
    } else if (Arg.rfind("--flight-cap=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 13, V) || V < 1 || V > (1u << 20))
        return false;
      O.FlightCap = V;
      HaveTelemetry = true;
    } else if (Arg.rfind("--slow-ms=", 0) == 0) {
      if (!parseF64(Arg.c_str() + 10, O.SlowMs) || O.SlowMs < 0.0)
        return false;
      HaveTelemetry = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return false;
    } else {
      O.Files.push_back(Arg);
    }
  }
  // Mode exclusivity and per-mode flag validity.
  int Modes = (O.SocketPath.empty() ? 0 : 1) + (O.ConnectPath.empty() ? 0 : 1) +
              (HaveSoak ? 1 : 0);
  if (Modes > 1)
    return false;
  if (!O.Files.empty() && O.ConnectPath.empty())
    return false; // Stray arguments are only inputs in client mode.
  if (HaveMinRate && !HaveSoak)
    return false;
  // The telemetry flags configure a service; client mode has none.
  if (HaveTelemetry && !O.ConnectPath.empty())
    return false;
  return true;
}

server::ServiceOptions serviceOptions(const Options &O) {
  server::ServiceOptions S;
  S.MaxCacheEntries = O.CacheMax;
  S.MaxRefImages = O.RefMax;
  S.BatchJobs = O.Jobs;
  S.TraceFile = O.TraceFile;
  S.FlightCapacity = O.FlightCap;
  S.FlightDumpFile = O.FlightDumpFile;
  S.SlowMs = O.SlowMs;
  return S;
}

/// Writes the current exposition text to \p Path (truncating); used both
/// by the daemon's periodic writer and the one-shot write at shutdown.
bool writePromFile(server::Service &Svc, const std::string &Path) {
  std::string Text = Svc.prometheusText();
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return false;
  }
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  Ok = std::fclose(F) == 0 && Ok;
  return Ok;
}

/// Shutdown telemetry shared by every serve mode: a final exposition
/// write and a final flight-recorder dump.
void flushTelemetry(server::Service &Svc, const Options &O) {
  if (!O.PromFile.empty())
    writePromFile(Svc, O.PromFile);
  Svc.dumpFlightRecorder();
}

volatile std::sig_atomic_t StopRequested = 0;
void onStopSignal(int) { StopRequested = 1; }

int runSocketDaemon(const Options &O) {
  server::Service Svc(serviceOptions(O));
  server::UnixServer Daemon(Svc, O.SocketPath, {O.Jobs});
  std::string Err;
  if (!Daemon.start(&Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  std::signal(SIGINT, onStopSignal);
  std::signal(SIGTERM, onStopSignal);
  std::fprintf(stderr, "simdized: serving %s (jobs=%u, cache-max=%llu)\n",
               O.SocketPath.c_str(), O.Jobs,
               static_cast<unsigned long long>(O.CacheMax));
  // The idle loop doubles as the periodic exposition writer: every ~2 s
  // of 100 ms ticks the current registry lands in --prom=FILE, so a
  // scraper can read a fresh snapshot without speaking the protocol.
  unsigned Tick = 0;
  while (!StopRequested) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (!O.PromFile.empty() && ++Tick % 20 == 0)
      writePromFile(Svc, O.PromFile);
  }
  Daemon.stop();
  flushTelemetry(Svc, O);
  return 0;
}

int runClient(const Options &O) {
  server::Client C;
  std::string Err;
  if (!C.connect(O.ConnectPath, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }

  auto CallLine = [&](const std::string &Line, bool &AnyFailed) -> bool {
    std::string Resp;
    if (!C.call(Line, Resp, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return false;
    }
    std::printf("%s\n", Resp.c_str());
    std::optional<obs::json::Value> V = obs::json::parse(Resp);
    const obs::json::Value *Ok = V ? V->find("ok") : nullptr;
    if (!Ok || !Ok->isBool() || !Ok->Bool)
      AnyFailed = true;
    return true;
  };

  bool AnyFailed = false;
  auto Pump = [&](std::istream &In) -> bool {
    std::string Line;
    while (std::getline(In, Line)) {
      size_t First = Line.find_first_not_of(" \t");
      if (First == std::string::npos || Line[First] == '#')
        continue;
      if (!CallLine(Line, AnyFailed))
        return false;
    }
    return true;
  };

  if (O.Files.empty()) {
    if (!Pump(std::cin))
      return 1;
  } else {
    for (const std::string &Path : O.Files) {
      std::ifstream In(Path);
      if (!In) {
        std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
        return 1;
      }
      if (!Pump(In))
        return 1;
    }
  }
  return AnyFailed ? 1 : 0;
}

/// One of the soak working set's loops: offsets, alignments, and trip
/// counts all cycle so distinct indices give distinct canonical loops.
std::string soakLoop(uint64_t K) {
  unsigned Align = static_cast<unsigned>(K % 4) * 4;
  return strf("array a i32 256 align %u\n"
              "array b i32 256 align %u\n"
              "array c i32 256 align %u\n"
              "loop %llu\n"
              "a[i+%llu] = b[i+%llu] * c[i] + c[i+%llu]\n",
              Align, (Align + 4) % 16, (Align + 8) % 16,
              static_cast<unsigned long long>(64 + (K % 5) * 16),
              static_cast<unsigned long long>(K % 3),
              static_cast<unsigned long long>((K / 3) % 3),
              static_cast<unsigned long long>((K / 9) % 3));
}

/// The soak's request payload for global index \p I over a working set of
/// \p Distinct (loop, config) pairs: compile and check alternate, so the
/// sweep exercises the compile cache, the verdict cache, and the shared
/// reference-image cache together.
std::string soakRequest(uint64_t I, uint64_t Distinct) {
  uint64_t D = I % Distinct;
  static const char *Policies[] = {"lazy", "dom", "auto", "eager"};
  std::string Out;
  obs::json::Writer W(Out);
  W.beginObject()
      .field("id", I + 1)
      .field("kind", (I % 2 == 0) ? "compile" : "check")
      .field("loop", soakLoop(D));
  if (I % 2 != 0)
    W.field("seed", uint64_t{1} + (I / Distinct) % 2);
  W.key("config")
      .beginObject()
      .field("policy", Policies[D % 4])
      .field("sp", D % 2 == 0)
      .field("width", unsigned{(D % 3 == 0) ? 32u : 16u})
      .endObject()
      .endObject();
  return Out;
}

int runSoak(const Options &O) {
  server::Service Svc(serviceOptions(O));
  const uint64_t N = O.Soak;
  const uint64_t Distinct = std::max<uint64_t>(1, N / 8);

  // Full daemon path in-process: a feeder thread streams frames into one
  // end of a socketpair, runConnection serves it with the worker pool,
  // and a collector verifies every framed response on the other pair.
  int Up[2], Down[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Up) < 0 ||
      ::socketpair(AF_UNIX, SOCK_STREAM, 0, Down) < 0) {
    std::fprintf(stderr, "error: socketpair: %s\n", std::strerror(errno));
    return 1;
  }

  std::thread Feeder([&] {
    for (uint64_t I = 0; I < N; ++I)
      if (!server::writeAll(Up[1], server::encodeFrame(soakRequest(I, Distinct))))
        break;
    ::shutdown(Up[1], SHUT_WR);
  });

  std::atomic<uint64_t> Responses{0}, Failed{0};
  std::thread Collector([&] {
    server::FrameReader FR;
    std::vector<std::string> Payloads;
    char Buf[64 * 1024];
    for (;;) {
      ssize_t R = ::read(Down[0], Buf, sizeof(Buf));
      if (R < 0 && errno == EINTR)
        continue;
      if (R <= 0)
        break;
      Payloads.clear();
      if (!FR.feed(Buf, static_cast<size_t>(R), Payloads))
        break;
      for (const std::string &P : Payloads) {
        ++Responses;
        // String values escape quotes, so a raw "ok":false can only be
        // the response's own field.
        if (P.find("\"ok\":false") != std::string::npos)
          ++Failed;
      }
    }
  });

  auto T0 = std::chrono::steady_clock::now();
  bool Clean = server::runConnection(Up[0], Down[1], Svc, {O.Jobs});
  double Sec = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             T0)
                   .count();
  ::shutdown(Down[1], SHUT_WR);
  ::close(Down[1]);
  Feeder.join();
  Collector.join();
  ::close(Up[0]);
  ::close(Up[1]);
  ::close(Down[0]);

  server::CompileCache::Stats CS = Svc.cache().stats();
  double HitRate =
      (CS.Hits + CS.Misses) > 0
          ? static_cast<double>(CS.Hits) / static_cast<double>(CS.Hits + CS.Misses)
          : 0.0;
  std::printf("soak: %llu requests (%llu distinct), %llu responses, "
              "%llu failed, %.2f s, %.0f req/s\n",
              static_cast<unsigned long long>(N),
              static_cast<unsigned long long>(Distinct),
              static_cast<unsigned long long>(Responses.load()),
              static_cast<unsigned long long>(Failed.load()), Sec,
              Sec > 0 ? static_cast<double>(N) / Sec : 0.0);
  std::printf("soak: compile-cache hit rate %.1f%% (%lld hits / %lld misses), "
              "verdict hits %lld, ref-image hits %lld\n",
              100.0 * HitRate, static_cast<long long>(CS.Hits),
              static_cast<long long>(CS.Misses),
              static_cast<long long>(CS.VerdictHits),
              static_cast<long long>(Svc.refImages().stats().Hits));
  flushTelemetry(Svc, O);

  if (!Clean || Responses.load() != N || Failed.load() != 0) {
    std::fprintf(stderr, "error: soak stream did not complete cleanly\n");
    return 1;
  }
  if (O.MinHitRate >= 0.0 && HitRate < O.MinHitRate) {
    std::fprintf(stderr, "error: hit rate %.3f below the %.3f gate\n", HitRate,
                 O.MinHitRate);
    return 1;
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O))
    return usage(Argv[0]);
  std::signal(SIGPIPE, SIG_IGN);

  if (!O.ConnectPath.empty())
    return runClient(O);
  if (O.Soak > 0)
    return runSoak(O);
  if (!O.SocketPath.empty())
    return runSocketDaemon(O);

  // Default: serve stdin/stdout until EOF. A framing error or a vanished
  // peer exits 1 after the final structured error record.
  server::Service Svc(serviceOptions(O));
  bool Clean = server::runConnection(STDIN_FILENO, STDOUT_FILENO, Svc, {O.Jobs});
  flushTelemetry(Svc, O);
  return Clean ? 0 : 1;
}
