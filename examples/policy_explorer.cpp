//===- examples/policy_explorer.cpp - Compare policies on random loops ----===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interactive-ish exploration tool: synthesizes a loop from command-line
/// (s, l, bias, reuse, seed), prints it, and shows for every policy the
/// placed data reorganization graph, the static vshiftstream count against
/// the per-statement minimum, and the measured operations per datum. Run
/// with no arguments for a default 2-statement loop.
///
///   policy_explorer [s] [l] [bias%] [reuse%] [seed]
///
//===----------------------------------------------------------------------===//

#include "simdize/Simdize.h"

#include <cstdio>
#include <cstdlib>

using namespace simdize;

int main(int Argc, char **Argv) {
  synth::SynthParams P;
  P.Statements = Argc > 1 ? static_cast<unsigned>(std::atoi(Argv[1])) : 2;
  P.LoadsPerStmt = Argc > 2 ? static_cast<unsigned>(std::atoi(Argv[2])) : 3;
  P.Bias = Argc > 3 ? std::atof(Argv[3]) / 100.0 : 0.3;
  P.Reuse = Argc > 4 ? std::atof(Argv[4]) / 100.0 : 0.3;
  P.Seed = Argc > 5 ? static_cast<uint64_t>(std::atoll(Argv[5])) : 11;
  P.TripCount = 1000;

  ir::Loop L = synth::synthesizeLoop(P);
  std::printf("Synthesized loop (s=%u, l=%u, bias=%.0f%%, reuse=%.0f%%, "
              "seed=%llu):\n%s\n",
              P.Statements, P.LoadsPerStmt, P.Bias * 100, P.Reuse * 100,
              static_cast<unsigned long long>(P.Seed),
              ir::printLoop(L).c_str());

  for (policies::PolicyKind Kind : policies::allPolicies()) {
    auto Policy = policies::createPolicy(Kind);
    unsigned Placed = 0;
    std::string Dumps;
    bool Failed = false;
    for (const auto &S : L.getStmts()) {
      reorg::Graph G = reorg::buildGraph(*S, 16);
      if (auto Err = Policy->place(G)) {
        std::printf("%s: %s\n\n", Policy->name(), Err->c_str());
        Failed = true;
        break;
      }
      Placed += reorg::countShifts(G);
      Dumps += reorg::printGraph(G);
    }
    if (Failed)
      continue;

    synth::LowerBound LB =
        synth::computeLowerBound(L, 16, Kind);
    pipeline::CompileRequest S =
        harness::scheme(Kind, harness::ReuseKind::SP);
    harness::Measurement M = harness::runScheme(P, S);

    std::printf("%s: %u vshiftstream placed (minimum %lld); with software "
                "pipelining: opd %.3f, speedup %.2fx\n%s\n",
                Policy->name(), Placed,
                static_cast<long long>(LB.Shifts),
                M.Ok ? M.Opd : 0.0, M.Ok ? M.Speedup : 0.0, Dumps.c_str());
  }
  return 0;
}
