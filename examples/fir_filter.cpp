//===- examples/fir_filter.cpp - A 16-bit FIR stencil and load reuse ------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 4-tap FIR filter over 16-bit samples:
///
///   y[i] = c0*x[i] + c1*x[i+1] + c2*x[i+2] + c3*x[i+3]
///
/// — the classic DSP kernel for the paper's headline guarantee. The four
/// taps read the *same* array at four consecutive offsets, so naive
/// misalignment handling loads every 16-byte chunk of x up to eight times.
/// The software-pipelined scheme (or predictive commoning) brings that
/// down to exactly one steady-state load per chunk: "our code generation
/// scheme guarantees to never load the same data associated with a single
/// static access twice." The example counts the steady-state loads to show
/// it.
///
//===----------------------------------------------------------------------===//

#include "simdize/Simdize.h"

#include <cstdio>

using namespace simdize;

namespace {

ir::Loop makeFirLoop(int64_t N) {
  ir::Loop L;
  ir::Array *Y = L.createArray("y", ir::ElemType::Int16, N + 32, 2, true);
  ir::Array *X = L.createArray("x", ir::ElemType::Int16, N + 32, 6, true);
  // Taps 7, -3, 5, 2 as vector splats (wrap-around arithmetic).
  auto Tap = [&](int64_t Coeff, int64_t Offset) {
    return ir::mul(ir::splat(Coeff), ir::ref(X, Offset));
  };
  L.addStmt(Y, 0,
            ir::add(ir::add(Tap(7, 0), Tap(-3, 1)),
                    ir::add(Tap(5, 2), Tap(2, 3))));
  L.setUpperBound(N, /*Known=*/true);
  return L;
}

/// Steady-state vector loads per original loop iteration.
double steadyLoadsPerIteration(const vir::VProgram &P) {
  int64_t Loads = 0;
  for (const vir::VInst &I : P.getBody())
    if (I.Op == vir::VOpcode::VLoad)
      ++Loads;
  return static_cast<double>(Loads) * P.getBlockingFactor() /
         static_cast<double>(P.getLoopStep());
}

} // namespace

int main() {
  const int64_t N = 4096;
  std::printf("4-tap FIR over %lld i16 samples; x and y deliberately "
              "misaligned (8 samples per vector, peak 8x)\n\n",
              static_cast<long long>(N));

  std::printf("%-10s %14s %8s %9s\n", "scheme", "loads/iter", "opd",
              "speedup");
  for (harness::ReuseKind Reuse :
       {harness::ReuseKind::None, harness::ReuseKind::PC,
        harness::ReuseKind::SP}) {
    ir::Loop L = makeFirLoop(N);

    codegen::SimdizeOptions Opts;
    Opts.Policy = policies::PolicyKind::Dominant;
    Opts.SoftwarePipelining = Reuse == harness::ReuseKind::SP;
    codegen::SimdizeResult R = codegen::simdize(L, Opts);
    if (!R.ok()) {
      std::printf("simdization failed: %s\n", R.Error.c_str());
      return 1;
    }
    opt::OptConfig Config;
    Config.PC = Reuse == harness::ReuseKind::PC;
    opt::runOptPipeline(*R.Program, Config);

    sim::CheckResult Check = sim::checkSimdization(L, *R.Program, 3);
    if (!Check.Ok) {
      std::printf("verification FAILED: %s\n", Check.Message.c_str());
      return 1;
    }

    pipeline::CompileRequest S =
        harness::scheme(policies::PolicyKind::Dominant, Reuse);
    std::printf("%-10s %14.2f %8.3f %8.2fx\n",
                harness::schemeName(S).c_str(),
                steadyLoadsPerIteration(*R.Program),
                Check.Stats.Counts.opd(N),
                ir::scalarOpd(L) / Check.Stats.Counts.opd(N));
  }

  std::printf("\nThe x stream is one distinct aligned load; with reuse "
              "exploitation the steady state performs exactly one x load "
              "and one y store per iteration (plus shifts and arithmetic) "
              "- the never-load-twice guarantee.\n");
  return 0;
}
