//===- examples/quickstart.cpp - The paper's running example, end to end --===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Walks the Figure 1 loop, a[i+3] = b[i+1] + c[i+2], through the whole
/// pipeline: the stream offsets that make a naive simdization invalid
/// (Figure 3), the data reorganization graph each placement policy
/// produces (Figures 4-6), the generated vector program with its prologue,
/// steady state, and epilogue (Figures 8-9), and finally execution on the
/// simulated alignment-constrained SIMD machine with bit-exact
/// verification and the operations-per-datum metric of Section 5.
///
//===----------------------------------------------------------------------===//

#include "simdize/Simdize.h"

#include <cstdio>

using namespace simdize;

int main() {
  // All three arrays have 16-byte aligned bases, so the references carry
  // offsets 4, 8, and 12 within their vector registers — every single one
  // misaligned, and no amount of loop peeling can fix more than one.
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 0, true);
  ir::Array *B = L.createArray("b", ir::ElemType::Int32, 128, 0, true);
  ir::Array *C = L.createArray("c", ir::ElemType::Int32, 128, 0, true);
  L.addStmt(A, 3, ir::add(ir::ref(B, 1), ir::ref(C, 2)));
  L.setUpperBound(100, /*Known=*/true);

  std::printf("Source loop (Figure 1):\n%s\n", ir::printLoop(L).c_str());

  std::printf("Stream offsets (Section 3.2):\n");
  for (auto [Arr, Off] : {std::pair{B, 1}, {C, 2}, {A, 3}})
    std::printf("  %s[i+%d] -> offset %s\n", Arr->getName().c_str(), Off,
                reorg::offsetOfAccess(Arr, Off, 16).str().c_str());

  // How each policy realigns the streams.
  for (policies::PolicyKind Kind : policies::allPolicies()) {
    reorg::Graph G = reorg::buildGraph(*L.getStmts().front(), 16);
    auto Policy = policies::createPolicy(Kind);
    if (auto Err = Policy->place(G)) {
      std::printf("%s: %s\n", Policy->name(), Err->c_str());
      continue;
    }
    std::printf("%s places %u vshiftstream(s):\n%s\n", Policy->name(),
                reorg::countShifts(G), reorg::printGraph(G).c_str());
  }

  // Full simdization with the lazy policy and software pipelining.
  codegen::SimdizeOptions Opts;
  Opts.Policy = policies::PolicyKind::Lazy;
  Opts.SoftwarePipelining = true;
  codegen::SimdizeResult R = codegen::simdize(L, Opts);
  if (!R.ok()) {
    std::printf("simdization failed: %s\n", R.Error.c_str());
    return 1;
  }
  opt::runOptPipeline(*R.Program, opt::OptConfig());

  std::printf("Generated program (LAZY-sp, after copy-removing unroll):\n%s\n",
              vir::printProgram(*R.Program).c_str());

  // Execute against the scalar oracle.
  sim::CheckResult Check = sim::checkSimdization(L, *R.Program, /*Seed=*/1);
  if (!Check.Ok) {
    std::printf("verification FAILED: %s\n", Check.Message.c_str());
    return 1;
  }

  int64_t Datums = L.getUpperBound();
  const sim::OpCounts &Counts = Check.Stats.Counts;
  std::printf("Verified bit-identical to the scalar loop.\n");
  std::printf("Dynamic counts: %lld loads, %lld stores, %lld reorg, "
              "%lld compute, %lld scalar+loop ops\n",
              static_cast<long long>(Counts.Loads),
              static_cast<long long>(Counts.Stores),
              static_cast<long long>(Counts.Reorg),
              static_cast<long long>(Counts.Compute),
              static_cast<long long>(Counts.Scalar + Counts.LoopCtl +
                                     Counts.CallRet));
  std::printf("Operations per datum: %.3f (ideal scalar: %.1f) -> "
              "speedup %.2fx of a peak 4x\n",
              Counts.opd(Datums), ir::scalarOpd(L),
              ir::scalarOpd(L) / Counts.opd(Datums));
  return 0;
}
