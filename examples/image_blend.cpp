//===- examples/image_blend.cpp - Misaligned 8-bit image compositing ------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multimedia workload the paper's introduction motivates: compositing
/// two 8-bit image rows into a third. Rows of a sub-image almost never
/// start on a 16-byte boundary — cropping shifts each row's base by its x
/// coordinate — so all three references are misaligned, differently per
/// array. With 16 pixels per vector register the peak speedup is 16x; the
/// example measures how close each placement policy gets, and that the
/// common "simdize only if everything is aligned" policy would simply give
/// up here.
///
/// The blend is out = alpha*a + b with alpha a *runtime* kernel parameter
/// (wrap-around arithmetic; saturation is orthogonal to alignment
/// handling): the generated code splats alpha once from its parameter
/// register, outside the loop.
///
//===----------------------------------------------------------------------===//

#include "simdize/Simdize.h"

#include <cstdio>

using namespace simdize;

namespace {

/// Builds one row-blend loop: Out[x0+i] = alpha*A[x1+i] + B[x2+i], with
/// the bases aligned but the crop offsets x0..x2 making every access
/// misaligned.
ir::Loop makeBlendLoop(int64_t Width, int64_t X0, int64_t X1, int64_t X2,
                       int64_t Alpha) {
  ir::Loop L;
  int64_t RowBytes = Width + 64;
  ir::Array *Out =
      L.createArray("out", ir::ElemType::Int8, RowBytes, 0, true);
  ir::Array *SrcA =
      L.createArray("srcA", ir::ElemType::Int8, RowBytes, 0, true);
  ir::Array *SrcB =
      L.createArray("srcB", ir::ElemType::Int8, RowBytes, 0, true);
  ir::Param *AlphaParam = L.createParam("alpha", Alpha);
  L.addStmt(Out, X0,
            ir::add(ir::mul(ir::param(AlphaParam), ir::ref(SrcA, X1)),
                    ir::ref(SrcB, X2)));
  L.setUpperBound(Width, /*Known=*/true);
  return L;
}

} // namespace

int main() {
  const int64_t Width = 1920; // One full-HD row.
  const int64_t X0 = 5, X1 = 11, X2 = 2, Alpha = 3;

  std::printf("Blending a %lld-pixel row: out[%lld+i] = alpha*srcA[%lld+i] + "
              "srcB[%lld+i]\n",
              static_cast<long long>(Width), static_cast<long long>(X0),
              static_cast<long long>(X1), static_cast<long long>(X2));
  {
    ir::Loop L = makeBlendLoop(Width, X0, X1, X2, Alpha);
    std::printf("Reference alignments: out %s, srcA %s, srcB %s "
                "(16 pixels per vector, peak 16x)\n\n",
                reorg::offsetOfAccess(L.getArrays()[0].get(), X0, 16)
                    .str()
                    .c_str(),
                reorg::offsetOfAccess(L.getArrays()[1].get(), X1, 16)
                    .str()
                    .c_str(),
                reorg::offsetOfAccess(L.getArrays()[2].get(), X2, 16)
                    .str()
                    .c_str());
  }

  std::printf("%-10s %8s %9s %s\n", "scheme", "opd", "speedup", "notes");
  for (policies::PolicyKind Kind : policies::allPolicies()) {
    for (harness::ReuseKind Reuse :
         {harness::ReuseKind::None, harness::ReuseKind::SP}) {
      pipeline::CompileRequest S = harness::scheme(Kind, Reuse);
      ir::Loop Blend = makeBlendLoop(Width, X0, X1, X2, Alpha);
      harness::Measurement M =
          harness::runSchemeOnLoop(Blend, S, /*CheckSeed=*/7);
      std::string Name = harness::schemeName(S);
      if (!M.Ok) {
        std::printf("%-10s failed: %s\n", Name.c_str(), M.Error.c_str());
        continue;
      }
      std::printf("%-10s %8.3f %8.2fx %s\n", Name.c_str(), M.Opd,
                  M.Speedup,
                  Reuse == harness::ReuseKind::SP
                      ? "each 16-byte chunk loaded once"
                      : "realignment recomputes neighbors");
    }
  }

  std::printf("\nScalar code needs %.1f ops per pixel; the lower bound here "
              "is %.3f.\n",
              [&] {
                ir::Loop L = makeBlendLoop(Width, X0, X1, X2, Alpha);
                return ir::scalarOpd(L);
              }(),
              [&] {
                ir::Loop L = makeBlendLoop(Width, X0, X1, X2, Alpha);
                return synth::computeLowerBound(L, 16,
                                                policies::PolicyKind::Lazy)
                    .opd(16, 1);
              }());
  return 0;
}
