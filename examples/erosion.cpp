//===- examples/erosion.cpp - Morphological erosion over a byte image -----===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Grayscale morphological erosion with a 1x3 structuring element:
///
///   out[i] = min(x[i], min(x[i+1], x[i+2]))
///
/// — a staple of image processing and a perfect storm for alignment
/// handling: three reads of ONE array at consecutive byte offsets (16
/// pixels per vector, so all three land at different offsets inside the
/// same chunks), plus a cropped, misaligned output row. Predictive
/// commoning reduces the three overlapping streams to a single steady-
/// state load: the neighboring chunks needed by x[i+1] and x[i+2] are
/// exactly the ones x[i] loads one iteration later.
///
//===----------------------------------------------------------------------===//

#include "simdize/Simdize.h"

#include <cstdio>

using namespace simdize;

namespace {

ir::Loop makeErosionLoop(int64_t Width, int64_t CropX) {
  ir::Loop L;
  ir::Array *Out =
      L.createArray("out", ir::ElemType::Int8, Width + 64, 0, true);
  ir::Array *X = L.createArray("x", ir::ElemType::Int8, Width + 64, 0, true);
  L.addStmt(Out, CropX,
            ir::min(ir::ref(X, CropX),
                    ir::min(ir::ref(X, CropX + 1), ir::ref(X, CropX + 2))));
  L.setUpperBound(Width, /*Known=*/true);
  return L;
}

} // namespace

int main() {
  const int64_t Width = 1920, CropX = 7;
  std::printf("1x3 erosion of a %lld-pixel row cropped at x=%lld: "
              "out[%lld+i] = min of x[%lld..%lld +i]\n\n",
              static_cast<long long>(Width), static_cast<long long>(CropX),
              static_cast<long long>(CropX), static_cast<long long>(CropX),
              static_cast<long long>(CropX + 2));

  std::printf("%-10s %12s %8s %9s\n", "scheme", "loads/iter", "opd",
              "speedup");
  for (harness::ReuseKind Reuse :
       {harness::ReuseKind::None, harness::ReuseKind::PC,
        harness::ReuseKind::SP}) {
    ir::Loop L = makeErosionLoop(Width, CropX);
    codegen::SimdizeOptions Opts;
    Opts.Policy = policies::PolicyKind::Lazy;
    Opts.SoftwarePipelining = Reuse == harness::ReuseKind::SP;
    codegen::SimdizeResult R = codegen::simdize(L, Opts);
    if (!R.ok()) {
      std::printf("simdization failed: %s\n", R.Error.c_str());
      return 1;
    }
    opt::OptConfig Config;
    Config.PC = Reuse == harness::ReuseKind::PC;
    opt::runOptPipeline(*R.Program, Config);
    sim::CheckResult Check = sim::checkSimdization(L, *R.Program, 99);
    if (!Check.Ok) {
      std::printf("verification FAILED: %s\n", Check.Message.c_str());
      return 1;
    }

    int64_t Loads = 0;
    for (const vir::VInst &I : R.Program->getBody())
      if (I.Op == vir::VOpcode::VLoad)
        ++Loads;
    double LoadsPerIter = static_cast<double>(Loads) *
                          R.Program->getBlockingFactor() /
                          static_cast<double>(R.Program->getLoopStep());

    pipeline::CompileRequest S =
        harness::scheme(policies::PolicyKind::Lazy, Reuse);
    std::printf("%-10s %12.2f %8.3f %8.2fx\n", harness::schemeName(S).c_str(),
                LoadsPerIter, Check.Stats.Counts.opd(Width),
                ir::scalarOpd(L) / Check.Stats.Counts.opd(Width));
  }

  std::printf("\nAll of x[i], x[i+1], x[i+2] read the same chunk stream "
              "one byte apart; predictive commoning brings the steady "
              "state to a single x load per 16 pixels.\n");
  return 0;
}
