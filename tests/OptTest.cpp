//===- tests/OptTest.cpp - Unit tests for the optimization passes --------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "codegen/Simdizer.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Loop.h"
#include "opt/CSE.h"
#include "opt/DCE.h"
#include "opt/OffsetReassoc.h"
#include "opt/Pipeline.h"
#include "opt/PredictiveCommoning.h"
#include "opt/UnrollRemoveCopies.h"
#include "sim/Checker.h"

#include <gtest/gtest.h>

using namespace simdize;
using namespace simdize::opt;

namespace {

using vir::countOps;

/// Simdizes under \p Policy (optionally SP) without any optimization.
codegen::SimdizeResult rawSimdize(const ir::Loop &L,
                                  policies::PolicyKind Policy,
                                  bool SP = false) {
  codegen::SimdizeOptions Opts;
  Opts.Policy = Policy;
  Opts.SoftwarePipelining = SP;
  codegen::SimdizeResult R = codegen::simdize(L, Opts);
  EXPECT_TRUE(R.ok()) << R.Error;
  return R;
}

/// Figure 1 with all three references misaligned.
ir::Loop fig1() {
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 0, true);
  ir::Array *B = L.createArray("b", ir::ElemType::Int32, 128, 0, true);
  ir::Array *C = L.createArray("c", ir::ElemType::Int32, 128, 0, true);
  L.addStmt(A, 3, ir::add(ir::ref(B, 1), ir::ref(C, 2)));
  L.setUpperBound(100, true);
  return L;
}

TEST(CSE, MergesDuplicatedNextIterationSubtrees) {
  // Zero-shift without reuse: the store-side right shift re-evaluates the
  // whole expression at i-B; sibling load-shifts re-evaluate loads at i+B.
  // Identical (array, offset) loads within one iteration must collapse.
  ir::Loop L = fig1();
  codegen::SimdizeResult R = rawSimdize(L, policies::PolicyKind::Zero);
  unsigned Before = countOps(R.Program->getBody(), vir::VOpcode::VLoad);
  unsigned Removed = runCSE(*R.Program, /*MemNorm=*/false);
  unsigned After = countOps(R.Program->getBody(), vir::VOpcode::VLoad);
  EXPECT_GT(Removed, 0u);
  EXPECT_LT(After, Before);
  sim::CheckResult Check = sim::checkSimdization(L, *R.Program, 21);
  EXPECT_TRUE(Check.Ok) << Check.Message;
}

TEST(CSE, MemNormMergesSameChunkLoads) {
  // x[i+1] and x[i+2] sit in one 16-byte chunk (x aligned 0, D=4: bytes
  // 4..11): with MemNorm their truncating loads are one value; without,
  // they stay distinct.
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 0, true);
  ir::Array *X = L.createArray("x", ir::ElemType::Int32, 128, 0, true);
  L.addStmt(A, 0, ir::add(ir::ref(X, 1), ir::ref(X, 2)));
  L.setUpperBound(100, true);

  codegen::SimdizeResult R1 = rawSimdize(L, policies::PolicyKind::Zero);
  runCSE(*R1.Program, /*MemNorm=*/false);
  unsigned WithoutNorm = countOps(R1.Program->getBody(), vir::VOpcode::VLoad);

  codegen::SimdizeResult R2 = rawSimdize(L, policies::PolicyKind::Zero);
  runCSE(*R2.Program, /*MemNorm=*/true);
  runDCE(*R2.Program);
  unsigned WithNorm = countOps(R2.Program->getBody(), vir::VOpcode::VLoad);

  EXPECT_LT(WithNorm, WithoutNorm);
  sim::CheckResult Check = sim::checkSimdization(L, *R2.Program, 22);
  EXPECT_TRUE(Check.Ok) << Check.Message;
}

TEST(CSE, MemNormNeedsStaticAlignment) {
  // With runtime alignments the chunk relation is unprovable for
  // non-congruent offsets; MemNorm must not merge x[i+1] and x[i+2].
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 0, false);
  ir::Array *X = L.createArray("x", ir::ElemType::Int32, 128, 0, false);
  L.addStmt(A, 0, ir::add(ir::ref(X, 1), ir::ref(X, 2)));
  L.setUpperBound(100, true);
  codegen::SimdizeResult R = rawSimdize(L, policies::PolicyKind::Zero);
  unsigned Before = countOps(R.Program->getBody(), vir::VOpcode::VLoad);
  runCSE(*R.Program, /*MemNorm=*/true);
  runDCE(*R.Program);
  // The two x streams load distinct offsets; nothing to merge beyond the
  // duplicates CSE removes for other reasons. Specifically the x[i+1] and
  // x[i+2] current-iteration loads must both survive.
  unsigned After = countOps(R.Program->getBody(), vir::VOpcode::VLoad);
  EXPECT_GE(After, 2u);
  (void)Before;
  sim::CheckResult Check = sim::checkSimdization(L, *R.Program, 23);
  EXPECT_TRUE(Check.Ok) << Check.Message;
}

TEST(PC, RestoresNeverLoadTwice) {
  // After CSE + PC + unroll + DCE, the steady state of the Figure 1 loop
  // performs exactly one load per distinct stream per iteration: 2 streams
  // x 2 unrolled iterations = 4 body loads.
  ir::Loop L = fig1();
  codegen::SimdizeResult R = rawSimdize(L, policies::PolicyKind::Zero);
  OptConfig Config;
  Config.PC = true;
  runOptPipeline(*R.Program, Config);
  EXPECT_EQ(countOps(R.Program->getBody(), vir::VOpcode::VLoad), 4u);
  EXPECT_EQ(countOps(R.Program->getBody(), vir::VOpcode::VCopy), 0u);
  EXPECT_EQ(R.Program->getLoopStep(), 8u);
  sim::CheckResult Check = sim::checkSimdization(L, *R.Program, 24);
  EXPECT_TRUE(Check.Ok) << Check.Message;
}

TEST(PC, HoistsLoopInvariantComputation) {
  // splat(3) * splat(4) is invariant: PC hoists the multiply to Setup.
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 4, true);
  ir::Array *B = L.createArray("b", ir::ElemType::Int32, 128, 4, true);
  L.addStmt(A, 0,
            ir::add(ir::ref(B, 0), ir::mul(ir::splat(3), ir::splat(4))));
  L.setUpperBound(100, true);
  codegen::SimdizeResult R = rawSimdize(L, policies::PolicyKind::Lazy);
  EXPECT_EQ(countOps(R.Program->getBody(), vir::VOpcode::VBinOp), 2u);
  unsigned Replaced = runPredictiveCommoning(*R.Program, true);
  EXPECT_GE(Replaced, 1u);
  // Only the add with the loaded stream remains in the body.
  EXPECT_EQ(countOps(R.Program->getBody(), vir::VOpcode::VBinOp), 1u);
  sim::CheckResult Check = sim::checkSimdization(L, *R.Program, 25);
  EXPECT_TRUE(Check.Ok) << Check.Message;
}

TEST(PC, CarryChainsAcrossMultipleChunks) {
  // x[i], x[i+4], x[i+8]: three loads of one stream exactly B apart form a
  // carry chain x(i) <- x(i+4) <- x(i+8); after the pipeline only one load
  // per iteration remains and everything still verifies.
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 0, true);
  ir::Array *X = L.createArray("x", ir::ElemType::Int32, 128, 4, true);
  L.addStmt(A, 0,
            ir::add(ir::add(ir::ref(X, 0), ir::ref(X, 4)), ir::ref(X, 8)));
  L.setUpperBound(100, true);
  codegen::SimdizeResult R = rawSimdize(L, policies::PolicyKind::Lazy);
  OptConfig Config;
  Config.PC = true;
  runOptPipeline(*R.Program, Config);
  // Two unrolled iterations, one genuinely new chunk each.
  EXPECT_EQ(countOps(R.Program->getBody(), vir::VOpcode::VLoad), 2u);
  sim::CheckResult Check = sim::checkSimdization(L, *R.Program, 26);
  EXPECT_TRUE(Check.Ok) << Check.Message;
}

TEST(SP, UnrollRemovesAllCopies) {
  ir::Loop L = fig1();
  codegen::SimdizeResult R =
      rawSimdize(L, policies::PolicyKind::Zero, /*SP=*/true);
  unsigned CopiesBefore = countOps(R.Program->getBody(), vir::VOpcode::VCopy);
  EXPECT_GT(CopiesBefore, 0u);
  unsigned Removed = runUnrollRemoveCopies(*R.Program);
  EXPECT_EQ(Removed, CopiesBefore);
  EXPECT_EQ(countOps(R.Program->getBody(), vir::VOpcode::VCopy), 0u);
  EXPECT_EQ(R.Program->getLoopStep(), 8u);
  sim::CheckResult Check = sim::checkSimdization(L, *R.Program, 27);
  EXPECT_TRUE(Check.Ok) << Check.Message;
}

TEST(SP, UnrollIsIdempotent) {
  ir::Loop L = fig1();
  codegen::SimdizeResult R =
      rawSimdize(L, policies::PolicyKind::Zero, /*SP=*/true);
  EXPECT_GT(runUnrollRemoveCopies(*R.Program), 0u);
  EXPECT_EQ(runUnrollRemoveCopies(*R.Program), 0u); // Already unrolled.
}

TEST(SP, UnrollNoOpWithoutCopies) {
  ir::Loop L = fig1();
  codegen::SimdizeResult R = rawSimdize(L, policies::PolicyKind::Zero);
  EXPECT_EQ(runUnrollRemoveCopies(*R.Program), 0u);
  EXPECT_EQ(R.Program->getLoopStep(), 4u);
}

TEST(SP, OddAndEvenSteadyIterationCounts) {
  // Unrolling must handle both parities of the steady iteration count,
  // statically and dynamically.
  for (int64_t UB : {20, 21, 22, 23, 24, 25}) {
    for (bool UBKnown : {true, false}) {
      ir::Loop L;
      ir::Array *A = L.createArray("a", ir::ElemType::Int32, 64, 12, true);
      ir::Array *B = L.createArray("b", ir::ElemType::Int32, 64, 8, true);
      L.addStmt(A, 0, ir::ref(B, 0));
      L.setUpperBound(UB, UBKnown);
      codegen::SimdizeResult R =
          rawSimdize(L, policies::PolicyKind::Zero, /*SP=*/true);
      runOptPipeline(*R.Program, OptConfig());
      sim::CheckResult Check = sim::checkSimdization(L, *R.Program, UB);
      EXPECT_TRUE(Check.Ok) << "ub=" << UB << " known=" << UBKnown << ": "
                            << Check.Message;
    }
  }
}

TEST(DCE, RemovesOrphanedOperands) {
  // Hand-plant a dead load + dead scalar chain.
  ir::Loop L = fig1();
  codegen::SimdizeResult R = rawSimdize(L, policies::PolicyKind::Lazy);
  vir::VProgram &P = *R.Program;
  vir::VRegId Dead = P.allocVReg();
  P.getBody().push_back(vir::VInst::makeVLoad(
      Dead, vir::Address::indexed(L.getArrays()[1].get(), 0,
                                  P.getIndexReg())));
  vir::SRegId DeadS = P.allocSReg();
  P.getSetup().push_back(vir::VInst::makeSConst(DeadS, 42));
  unsigned BodySize = static_cast<unsigned>(P.getBody().size());
  unsigned Removed = runDCE(P);
  EXPECT_GE(Removed, 2u);
  EXPECT_LT(P.getBody().size(), BodySize);
  sim::CheckResult Check = sim::checkSimdization(L, P, 28);
  EXPECT_TRUE(Check.Ok) << Check.Message;
}

TEST(DCE, KeepsStoresAndTheirOperands) {
  ir::Loop L = fig1();
  codegen::SimdizeResult R = rawSimdize(L, policies::PolicyKind::Lazy);
  unsigned Stores = countOps(R.Program->getBody(), vir::VOpcode::VStore);
  runDCE(*R.Program);
  EXPECT_EQ(countOps(R.Program->getBody(), vir::VOpcode::VStore), Stores);
  sim::CheckResult Check = sim::checkSimdization(L, *R.Program, 29);
  EXPECT_TRUE(Check.Ok) << Check.Message;
}

TEST(Reassoc, GroupsEqualOffsets) {
  // (b4 + c8) + d4 regroups so the two offset-4 operands combine first.
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 0, true);
  ir::Array *B = L.createArray("b", ir::ElemType::Int32, 128, 0, true);
  ir::Array *C = L.createArray("c", ir::ElemType::Int32, 128, 0, true);
  ir::Array *D = L.createArray("d", ir::ElemType::Int32, 128, 0, true);
  L.addStmt(A, 3,
            ir::add(ir::add(ir::ref(B, 1), ir::ref(C, 2)), ir::ref(D, 1)));
  L.setUpperBound(100, true);

  EXPECT_EQ(runOffsetReassociation(L, 16), 1u);
  EXPECT_EQ(ir::printExpr(L.getStmts().front()->getRHS()),
            "(b[i+1] + d[i+1]) + c[i+2]");
}

TEST(Reassoc, ReducesLazyShiftCount) {
  ir::Loop MakeTwice[2];
  for (ir::Loop &L : MakeTwice) {
    ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 12, true);
    ir::Array *B = L.createArray("b", ir::ElemType::Int32, 128, 4, true);
    ir::Array *C = L.createArray("c", ir::ElemType::Int32, 128, 8, true);
    ir::Array *D = L.createArray("d", ir::ElemType::Int32, 128, 4, true);
    L.addStmt(A, 0,
              ir::add(ir::add(ir::ref(B, 0), ir::ref(C, 0)), ir::ref(D, 0)));
    L.setUpperBound(100, true);
  }
  codegen::SimdizeOptions Opts;
  Opts.Policy = policies::PolicyKind::Lazy;
  codegen::SimdizeResult Plain = codegen::simdize(MakeTwice[0], Opts);
  ASSERT_TRUE(Plain.ok());

  runOffsetReassociation(MakeTwice[1], 16);
  codegen::SimdizeResult Grouped = codegen::simdize(MakeTwice[1], Opts);
  ASSERT_TRUE(Grouped.ok());
  EXPECT_LT(Grouped.ShiftCount, Plain.ShiftCount);
}

TEST(Reassoc, PreservesSemantics) {
  // Reassociation is exact under wrap-around arithmetic: simdize the
  // rewritten loop and verify against the ORIGINAL scalar loop.
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 12, true);
  ir::Array *B = L.createArray("b", ir::ElemType::Int32, 128, 4, true);
  ir::Array *C = L.createArray("c", ir::ElemType::Int32, 128, 8, true);
  ir::Array *D = L.createArray("d", ir::ElemType::Int32, 128, 4, true);
  L.addStmt(A, 0,
            ir::mul(ir::mul(ir::ref(B, 0), ir::ref(C, 0)),
                    ir::mul(ir::ref(D, 0), ir::splat(-5))));
  L.setUpperBound(100, true);

  runOffsetReassociation(L, 16);
  codegen::SimdizeResult R = rawSimdize(L, policies::PolicyKind::Lazy);
  sim::CheckResult Check = sim::checkSimdization(L, *R.Program, 30);
  EXPECT_TRUE(Check.Ok) << Check.Message;
}

TEST(Reassoc, LeavesSubtractionChainsAlone) {
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 0, true);
  ir::Array *B = L.createArray("b", ir::ElemType::Int32, 128, 0, true);
  ir::Array *C = L.createArray("c", ir::ElemType::Int32, 128, 0, true);
  L.addStmt(A, 0, ir::sub(ir::ref(B, 1), ir::ref(C, 2)));
  L.setUpperBound(100, true);
  EXPECT_EQ(runOffsetReassociation(L, 16), 0u);
  EXPECT_EQ(ir::printExpr(L.getStmts().front()->getRHS()),
            "b[i+1] - c[i+2]");
}

TEST(Pipeline, FullConfigurationsStayCorrect) {
  for (auto Policy : policies::allPolicies()) {
    for (bool SP : {false, true}) {
      for (bool PC : {false, true}) {
        ir::Loop L = fig1();
        codegen::SimdizeResult R = rawSimdize(L, Policy, SP);
        OptConfig Config;
        Config.PC = PC;
        runOptPipeline(*R.Program, Config);
        sim::CheckResult Check = sim::checkSimdization(L, *R.Program, 31);
        EXPECT_TRUE(Check.Ok)
            << policies::policyName(Policy) << " sp=" << SP << " pc=" << PC
            << ": " << Check.Message;
      }
    }
  }
}

} // namespace
