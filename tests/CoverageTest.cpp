//===- tests/CoverageTest.cpp - Section 5.4 coverage as a property test ---===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A scaled-down version of the paper's coverage analysis, kept fast for
/// ctest (the full 1200-loop sweep is bench_coverage): random (l, s, n, b,
/// r) loops across all policies, reuse schemes, data types, compile-time
/// and runtime alignments and bounds — every generated loop must simdize
/// and verify bit-identical to the scalar oracle.
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "ir/IRPrinter.h"
#include "ir/Loop.h"
#include "support/RNG.h"
#include "synth/LoopSynth.h"

#include <gtest/gtest.h>

using namespace simdize;

namespace {

struct CoverageSlice {
  bool AlignKnown;
  bool UBKnown;
};

class CoverageTest : public ::testing::TestWithParam<CoverageSlice> {};

TEST_P(CoverageTest, RandomLoopsVerifyBitIdentical) {
  CoverageSlice Slice = GetParam();
  RNG Rng(Slice.AlignKnown * 2 + Slice.UBKnown + 100);

  for (unsigned Iter = 0; Iter < 60; ++Iter) {
    synth::SynthParams P;
    P.Statements = static_cast<unsigned>(Rng.uniformInt(1, 4));
    P.LoadsPerStmt = static_cast<unsigned>(Rng.uniformInt(1, 8));
    // Small trip counts exercise the epilogue paths harder than the
    // paper's ~1000 while staying fast.
    P.Bias = Rng.uniformReal();
    P.Reuse = Rng.uniformReal();
    P.Ty = Rng.withProbability(0.5) ? ir::ElemType::Int32
                                    : ir::ElemType::Int16;
    int64_t B = 16 / ir::elemSize(P.Ty);
    P.TripCount = Rng.uniformInt(3 * B + 1, 8 * B);
    P.AlignKnown = Slice.AlignKnown;
    P.UBKnown = Slice.UBKnown;
    P.Seed = Rng.next();

    policies::PolicyKind Policy = policies::PolicyKind::Zero;
    if (P.AlignKnown) {
      auto Policies = policies::allPolicies();
      Policy = Policies[static_cast<size_t>(
          Rng.uniformInt(0, static_cast<int64_t>(Policies.size()) - 1))];
    }
    auto Reuse = static_cast<harness::ReuseKind>(Rng.uniformInt(0, 2));
    pipeline::CompileRequest S = harness::scheme(Policy, Reuse);
    S.MemNorm = Rng.withProbability(0.5);
    S.OffsetReassoc = Rng.withProbability(0.5);

    harness::Measurement M = harness::runScheme(P, S);
    ASSERT_TRUE(M.Ok) << "scheme " << harness::schemeName(S)
                      << " on s=" << P.Statements
                      << " l=" << P.LoadsPerStmt << " n=" << P.TripCount
                      << " seed=" << P.Seed << ":\n"
                      << ir::printLoop(synth::synthesizeLoop(P)) << M.Error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSlices, CoverageTest,
    ::testing::Values(CoverageSlice{true, true}, CoverageSlice{true, false},
                      CoverageSlice{false, true},
                      CoverageSlice{false, false}),
    [](const ::testing::TestParamInfo<CoverageSlice> &Info) {
      return std::string(Info.param.AlignKnown ? "CtAlign" : "RtAlign") +
             (Info.param.UBKnown ? "CtBound" : "RtBound");
    });

} // namespace
