//===- tests/NativeEmitterTest.cpp - The native host-SIMD execution tier -===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native backend end to end: structural checks on the emitted
/// intrinsic text, ISA/width admissibility and CPUID-based degradation,
/// the portable shim at V = 32/64 (vshiftpair/vsplice edge lanes,
/// truncating loads/stores, predicated epilogue stores) compiled and run
/// like LowerToCTest, the hardware ISAs gated on host support, the
/// content-hash compile cache, batched multi-kernel modules, and the
/// pipeline facade's native execution tier.
///
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Loop.h"
#include "lower/AltiVecEmitter.h"
#include "lower/KernelEmitter.h"
#include "native/NativeCompile.h"
#include "native/NativeEmitter.h"
#include "native/NativeRun.h"
#include "pipeline/Pipeline.h"
#include "sim/Checker.h"
#include "synth/LoopSynth.h"

#include <gtest/gtest.h>

using namespace simdize;

namespace {

/// Figure 1's loop shape at an arbitrary element type / alignment set.
ir::Loop figureOneLoop(ir::ElemType Ty) {
  ir::Loop L;
  ir::Array *A = L.createArray("a", Ty, 256, 0, true);
  ir::Array *B = L.createArray("b", Ty, 256, 0, true);
  ir::Array *C = L.createArray("c", Ty, 256, 0, true);
  L.addStmt(A, 3, ir::add(ir::ref(B, 1), ir::ref(C, 2)));
  L.setUpperBound(100, true);
  return L;
}

vir::VProgram compileFor(const ir::Loop &L, unsigned V,
                         policies::PolicyKind Policy, bool SP) {
  pipeline::CompileRequest Req;
  Req.Simd.Policy = Policy;
  Req.Simd.SoftwarePipelining = SP;
  Req.Simd.Tgt = Target(V);
  pipeline::CompileResult R = pipeline::runPipeline(L, Req);
  EXPECT_TRUE(R.ok()) << R.error();
  return std::move(*R.Simd.Program);
}

TEST(NativeEmitter, StructuralMapping) {
  ir::Loop L = figureOneLoop(ir::ElemType::Int32);
  vir::VProgram P = compileFor(L, 32, policies::PolicyKind::Eager, false);
  lower::LowerResult Lowered =
      native::emitNativeKernel(P, L, "kern", native::ISA::AVX2);
  ASSERT_TRUE(Lowered.ok()) << Lowered.Error;
  const std::string &Src = Lowered.Code;

  // The module selects the wrapper ISA/width and maps every vector op
  // onto vx_* calls; the signature is the shared KernelEmitter one.
  EXPECT_NE(Src.find("#define SIMDIZE_NATIVE_V 32"), std::string::npos);
  EXPECT_NE(Src.find("#define SIMDIZE_NATIVE_ISA_AVX2 1"),
            std::string::npos);
  EXPECT_NE(Src.find("#include \"simdize_x86.h\""), std::string::npos);
  EXPECT_NE(Src.find("void kern(unsigned char *a, unsigned char *b, "
                     "unsigned char *c, long ub)"),
            std::string::npos);
  EXPECT_NE(Src.find("vx_ld("), std::string::npos);
  EXPECT_NE(Src.find("vx_st("), std::string::npos);
  EXPECT_NE(Src.find("vx_sld<"), std::string::npos);
  EXPECT_NE(Src.find("vx_splice("), std::string::npos);
  EXPECT_NE(Src.find("vx_add_i32("), std::string::npos);
  // Emission is host-independent: no image adapter was requested.
  EXPECT_EQ(Src.find("_image"), std::string::npos);
}

TEST(NativeEmitter, SharesSignatureWithAltiVec) {
  ir::Loop L = figureOneLoop(ir::ElemType::Int32);
  vir::VProgram P = compileFor(L, 16, policies::PolicyKind::Zero, false);
  lower::LowerResult Alti = lower::emitAltiVecKernel(P, L, "kern");
  lower::LowerResult Nat =
      native::emitNativeKernel(P, L, "kern", native::ISA::SSE2);
  ASSERT_TRUE(Alti.ok());
  ASSERT_TRUE(Nat.ok());
  std::string Sig = lower::KernelEmitter::signature(L, "kern");
  EXPECT_NE(Alti.Code.find(Sig), std::string::npos);
  EXPECT_NE(Nat.Code.find(Sig), std::string::npos);
}

TEST(NativeEmitter, RejectsWidthISAMismatch) {
  ir::Loop L = figureOneLoop(ir::ElemType::Int32);
  vir::VProgram P = compileFor(L, 32, policies::PolicyKind::Zero, false);
  lower::LowerResult R =
      native::emitNativeKernel(P, L, "kern", native::ISA::SSE2);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("cannot realize V = 32"), std::string::npos);

  // Mixed widths inside one module are rejected too.
  vir::VProgram P16 = compileFor(L, 16, policies::PolicyKind::Zero, false);
  native::KernelSpec K1{&P, &L, "k0", {}};
  native::KernelSpec K2{&P16, &L, "k1", {}};
  lower::LowerResult Mixed =
      native::emitNativeModule({K1, K2}, 32, native::ISA::Shim);
  EXPECT_FALSE(Mixed.ok());
  EXPECT_NE(Mixed.Error.find("simdized for V = 16"), std::string::npos);
}

TEST(NativeISA, WidthAdmissibilityAndNames) {
  using native::ISA;
  EXPECT_TRUE(native::isaSupportsWidth(ISA::SSE2, 16));
  EXPECT_FALSE(native::isaSupportsWidth(ISA::SSE2, 32));
  EXPECT_TRUE(native::isaSupportsWidth(ISA::AVX2, 32));
  EXPECT_FALSE(native::isaSupportsWidth(ISA::AVX2, 64));
  EXPECT_TRUE(native::isaSupportsWidth(ISA::AVX512, 64));
  EXPECT_FALSE(native::isaSupportsWidth(ISA::AVX512, 16));
  for (unsigned V : {4u, 8u, 16u, 32u, 64u})
    EXPECT_TRUE(native::isaSupportsWidth(ISA::Shim, V)) << V;
  EXPECT_FALSE(native::isaSupportsWidth(ISA::Shim, 24));

  for (ISA I : native::AllISAs)
    EXPECT_EQ(native::parseISAName(native::isaName(I)), I);
  EXPECT_FALSE(native::parseISAName("avx1024").has_value());

  EXPECT_EQ(native::canonicalISAForWidth(16), ISA::SSE2);
  EXPECT_EQ(native::canonicalISAForWidth(32), ISA::AVX2);
  EXPECT_EQ(native::canonicalISAForWidth(64), ISA::AVX512);
  EXPECT_EQ(native::canonicalISAForWidth(8), ISA::Shim);
}

TEST(NativeISA, DegradationIsAlwaysRunnable) {
  // Whatever the host, every width resolves to an ISA that both supports
  // the width and runs here — the graceful-degradation guarantee.
  for (unsigned V : {16u, 32u, 64u}) {
    for (native::ISA Req : native::AllISAs) {
      native::ISA Used = native::resolveISAForRun(V, Req);
      EXPECT_TRUE(native::isaSupportsWidth(Used, V));
      EXPECT_TRUE(native::hostSupportsISA(Used));
    }
    native::ISA Best = native::bestISAForWidth(V);
    EXPECT_TRUE(native::hostSupportsISA(Best));
    EXPECT_TRUE(native::isaSupportsWidth(Best, V));
  }
}

/// Compiles \p L at width \p V under \p Policy, then runs it natively on
/// the reference image with \p Isa and requires bit-identity with the
/// scalar oracle.
void expectNativeMatches(const ir::Loop &L, unsigned V,
                         policies::PolicyKind Policy, bool SP,
                         native::ISA Isa, uint64_t Seed = 7) {
  vir::VProgram P = compileFor(L, V, Policy, SP);
  sim::ReferenceImage Ref(L, V, Seed);
  std::optional<std::string> Err =
      native::diffNativeAgainstOracle(L, P, Ref, Isa);
  EXPECT_FALSE(Err.has_value()) << *Err;
}

// Satellite coverage: the portable shim at V = 32/64 — immediate
// vshiftpair (edge lanes included via offsets spanning a whole register),
// vsplice on the first/last lanes of prologue/epilogue stores, and
// truncating loads/stores on misaligned streams.
TEST(NativeShimWide, ShiftAndSpliceV32) {
  ir::Loop L = figureOneLoop(ir::ElemType::Int32);
  expectNativeMatches(L, 32, policies::PolicyKind::Eager, false,
                      native::ISA::Shim);
  expectNativeMatches(L, 32, policies::PolicyKind::Lazy, true,
                      native::ISA::Shim);
}

TEST(NativeShimWide, ByteLanesSpanningRegisterV64) {
  // i8 lanes with offsets up to a full 64-byte register: immediate
  // shifts land on 0, 1, and V-1 boundary lanes across the shift network.
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int8, 512, 0, true);
  ir::Array *B = L.createArray("b", ir::ElemType::Int8, 512, 63, true);
  ir::Array *C = L.createArray("c", ir::ElemType::Int8, 512, 1, true);
  L.addStmt(A, 5, ir::mul(ir::ref(B, 64), ir::ref(C, 0)));
  L.setUpperBound(300, true);
  expectNativeMatches(L, 64, policies::PolicyKind::Eager, false,
                      native::ISA::Shim);
  expectNativeMatches(L, 64, policies::PolicyKind::Dominant, true,
                      native::ISA::Shim);
}

TEST(NativeShimWide, RuntimeAlignmentShiftsV32) {
  // Runtime alignments force SBase arithmetic plus register-operand
  // vshiftpair/vsplice — the host-pointer alignment equivalence path.
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int16, 256, 0, false);
  ir::Array *B = L.createArray("b", ir::ElemType::Int16, 256, 0, false);
  L.addStmt(A, 3, ir::add(ir::ref(B, 1), ir::splat(5)));
  L.setUpperBound(120, true);
  expectNativeMatches(L, 32, policies::PolicyKind::Zero, false,
                      native::ISA::Shim);
}

TEST(NativeShimWide, PredicatedEpilogueStoresV64) {
  // A runtime trip count keeps the epilogue's final stores predicated;
  // the emitted `if (s%u) { vx_st... }` guards must agree with the VM.
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 256, 4, true);
  ir::Array *B = L.createArray("b", ir::ElemType::Int32, 256, 8, true);
  L.addStmt(A, 1, ir::add(ir::ref(B, 2), ir::splat(9)));
  L.setUpperBound(97, false);
  expectNativeMatches(L, 64, policies::PolicyKind::Lazy, false,
                      native::ISA::Shim);
  expectNativeMatches(L, 64, policies::PolicyKind::Zero, true,
                      native::ISA::Shim);
}

// CPUID-gated smoke of each hardware ISA at its width; on hosts without
// the feature the loop body skips (degradation is covered above).
TEST(NativeHost, HardwareISAsMatchOracle) {
  struct {
    native::ISA Isa;
    unsigned V;
  } Cases[] = {{native::ISA::SSE2, 16},
               {native::ISA::AVX2, 32},
               {native::ISA::AVX512, 64}};
  for (auto [Isa, V] : Cases) {
    if (!native::hostSupportsISA(Isa))
      continue;
    ir::Loop L = figureOneLoop(ir::ElemType::Int32);
    expectNativeMatches(L, V, policies::PolicyKind::Eager, true, Isa);
  }
}

TEST(NativeHost, AutoISARunsEverywhere) {
  // The default-request path: no explicit ISA anywhere, every width runs.
  for (unsigned V : {16u, 32u, 64u}) {
    synth::SynthParams SP;
    SP.Statements = 2;
    SP.LoadsPerStmt = 3;
    SP.TripCount = 200;
    SP.Seed = 11;
    SP.VectorLen = V;
    ir::Loop L = synth::synthesizeLoop(SP);
    vir::VProgram P = compileFor(L, V, policies::PolicyKind::Dominant, true);
    sim::ReferenceImage Ref(L, V, 13);
    std::optional<std::string> Err =
        native::diffNativeAgainstOracle(L, P, Ref);
    EXPECT_FALSE(Err.has_value()) << *Err;
  }
}

TEST(NativeCache, RepeatedCompileHitsCache) {
  ir::Loop L = figureOneLoop(ir::ElemType::Int16);
  vir::VProgram P = compileFor(L, 16, policies::PolicyKind::Lazy, false);
  lower::LowerResult Lowered =
      native::emitNativeKernel(P, L, "cache_probe", native::ISA::Shim);
  ASSERT_TRUE(Lowered.ok());

  std::string Error;
  const native::CompiledModule *First =
      native::compileAndLoad(Lowered.Code, native::ISA::Shim, &Error);
  ASSERT_NE(First, nullptr) << Error;
  native::NativeCompileStats Before = native::nativeCompileStats();
  const native::CompiledModule *Second =
      native::compileAndLoad(Lowered.Code, native::ISA::Shim, &Error);
  ASSERT_NE(Second, nullptr) << Error;
  native::NativeCompileStats After = native::nativeCompileStats();
  EXPECT_EQ(Second, First); // One handle per content hash.
  EXPECT_EQ(After.MemoryHits, Before.MemoryHits + 1);
  EXPECT_EQ(After.Compiles, Before.Compiles);
}

TEST(NativeBatch, ManyKernelsOneModule) {
  // One compiler invocation serves a whole policy matrix.
  ir::Loop L = figureOneLoop(ir::ElemType::Int32);
  std::vector<vir::VProgram> Programs;
  Programs.push_back(compileFor(L, 16, policies::PolicyKind::Zero, false));
  Programs.push_back(compileFor(L, 16, policies::PolicyKind::Eager, true));
  Programs.push_back(compileFor(L, 16, policies::PolicyKind::Lazy, true));

  sim::ReferenceImage Ref(L, 16, 21);
  native::NativeBatch Batch(native::bestISAForWidth(16));
  for (const vir::VProgram &P : Programs)
    Batch.add(L, P, Ref.getLayout());
  std::string Error;
  ASSERT_TRUE(Batch.compile(&Error)) << Error;
  ASSERT_EQ(Batch.size(), Programs.size());
  for (size_t K = 0; K < Batch.size(); ++K) {
    sim::Memory M = Ref.getInitial();
    native::runNativeOnMemory(Batch.kernel(K), M);
    EXPECT_TRUE(M == Ref.getExpected()) << "kernel " << K;
  }
}

TEST(PipelineTier, NativeTierChecksClean) {
  ir::Loop L = figureOneLoop(ir::ElemType::Int32);
  pipeline::CompileRequest Req;
  Req.Simd.Policy = policies::PolicyKind::Lazy;
  Req.Simd.SoftwarePipelining = true;
  Req.Tier = pipeline::ExecTier::Native;
  EXPECT_EQ(Req.name(), "LAZY-sp/opt+native");

  pipeline::CompileResult R = pipeline::runPipeline(L, Req);
  ASSERT_TRUE(R.ok()) << R.error();
  sim::CheckResult C = pipeline::checkCompiled(L, R, 7);
  EXPECT_TRUE(C.Ok) << C.Message;
}

} // namespace
