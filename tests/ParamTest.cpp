//===- tests/ParamTest.cpp - Runtime scalar parameters --------------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's vsplat(x) covers any loop invariant, not just literals
/// ("for each loop invariant node x used as a register stream, insert
/// vsplat(x)"). Runtime scalar parameters realize that: a kernel argument
/// such as a blend factor is splat once in Setup from a parameter
/// register, carries the ⊥ stream offset, and never constant-folds.
///
//===----------------------------------------------------------------------===//

#include "codegen/Simdizer.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Loop.h"
#include "ir/ScalarCost.h"
#include "lower/AltiVecEmitter.h"
#include "opt/Pipeline.h"
#include "parser/LoopParser.h"
#include "sim/Checker.h"
#include "sim/Machine.h"
#include "sim/Memory.h"

#include <gtest/gtest.h>

using namespace simdize;

namespace {

/// out[i+1] = alpha * x[i] + y[i+2], with alpha a runtime parameter.
ir::Loop makeParamLoop(int64_t Alpha) {
  ir::Loop L;
  ir::Array *Out = L.createArray("out", ir::ElemType::Int32, 128, 4, true);
  ir::Array *X = L.createArray("x", ir::ElemType::Int32, 128, 8, true);
  ir::Array *Y = L.createArray("y", ir::ElemType::Int32, 128, 12, true);
  ir::Param *A = L.createParam("alpha", Alpha);
  L.addStmt(Out, 1,
            ir::add(ir::mul(ir::param(A), ir::ref(X, 0)), ir::ref(Y, 2)));
  L.setUpperBound(100, true);
  return L;
}

TEST(Param, PrintsByName) {
  ir::Loop L = makeParamLoop(3);
  EXPECT_EQ(ir::printStmt(*L.getStmts().front()),
            "out[i+1] = (alpha * x[i]) + y[i+2];");
}

TEST(Param, CountsAsFreeInvariantInScalarCost) {
  ir::Loop L = makeParamLoop(3);
  ir::ScalarCost Cost = ir::scalarCostOfLoop(L);
  EXPECT_EQ(Cost.Splats, 1);
  EXPECT_EQ(Cost.total(), 5); // 2 loads + 2 ops + 1 store.
}

TEST(Param, SplatsOnceFromParameterRegister) {
  ir::Loop L = makeParamLoop(3);
  codegen::SimdizeResult R = codegen::simdize(L, codegen::SimdizeOptions());
  ASSERT_TRUE(R.ok()) << R.Error;
  // One register-operand vsplat in Setup, none in the body; the program
  // records the parameter binding.
  unsigned RegSplats = 0;
  for (const vir::VInst &I : R.Program->getSetup())
    if (I.Op == vir::VOpcode::VSplat && I.SOp1.IsReg)
      ++RegSplats;
  EXPECT_EQ(RegSplats, 1u);
  ASSERT_EQ(R.Program->getScalarParams().size(), 1u);
  EXPECT_EQ(R.Program->getScalarParams()[0].second, 3);
}

TEST(Param, EndToEndAcrossPoliciesAndReuse) {
  for (auto Policy : policies::allPolicies()) {
    for (bool SP : {false, true}) {
      ir::Loop L = makeParamLoop(-7);
      codegen::SimdizeOptions Opts;
      Opts.Policy = Policy;
      Opts.SoftwarePipelining = SP;
      codegen::SimdizeResult R = codegen::simdize(L, Opts);
      ASSERT_TRUE(R.ok()) << R.Error;
      opt::OptConfig Config;
      Config.PC = !SP;
      opt::runOptPipeline(*R.Program, Config);
      sim::CheckResult Check = sim::checkSimdization(L, *R.Program, 71);
      EXPECT_TRUE(Check.Ok)
          << policies::policyName(Policy) << " sp=" << SP << ": "
          << Check.Message;
    }
  }
}

TEST(Param, ActualValueFlowsToTheResult) {
  // Same loop, two alphas: results must differ exactly by the parameter.
  ir::Loop L1 = makeParamLoop(2);
  ir::Loop L2 = makeParamLoop(5);
  codegen::SimdizeResult R1 = codegen::simdize(L1, codegen::SimdizeOptions());
  codegen::SimdizeResult R2 = codegen::simdize(L2, codegen::SimdizeOptions());
  ASSERT_TRUE(R1.ok() && R2.ok());

  auto RunOne = [](const ir::Loop &L, const vir::VProgram &P) {
    sim::MemoryLayout Layout(L, 16);
    sim::Memory Mem(Layout.getTotalSize());
    Mem.fillPattern(5);
    sim::runProgram(P, Layout, Mem);
    return Mem.readElem(Layout.baseOf(L.getArrays()[0].get()) + 5 * 4, 4);
  };
  int64_t Out1 = RunOne(L1, *R1.Program);
  int64_t Out2 = RunOne(L2, *R2.Program);
  // out = alpha*x + y: the difference is 3*x for the same pattern.
  sim::MemoryLayout Layout(L1, 16);
  sim::Memory Ref(Layout.getTotalSize());
  Ref.fillPattern(5);
  int64_t X = Ref.readElem(Layout.baseOf(L1.getArrays()[1].get()) + 4 * 4, 4);
  EXPECT_EQ(static_cast<int32_t>(Out2 - Out1), static_cast<int32_t>(3 * X));
}

TEST(Param, RuntimeEverything) {
  // Runtime alignments, runtime trip count, runtime parameter — all at
  // once (the fully dynamic kernel).
  ir::Loop L;
  ir::Array *Out = L.createArray("out", ir::ElemType::Int16, 128, 6, false);
  ir::Array *X = L.createArray("x", ir::ElemType::Int16, 128, 10, false);
  ir::Param *A = L.createParam("gain", 9);
  L.addStmt(Out, 0, ir::mul(ir::param(A), ir::ref(X, 1)));
  L.setUpperBound(90, false);
  for (bool SP : {false, true}) {
    codegen::SimdizeOptions Opts;
    Opts.SoftwarePipelining = SP;
    codegen::SimdizeResult R = codegen::simdize(L, Opts);
    ASSERT_TRUE(R.ok()) << R.Error;
    opt::runOptPipeline(*R.Program, opt::OptConfig());
    sim::CheckResult Check = sim::checkSimdization(L, *R.Program, 72);
    EXPECT_TRUE(Check.Ok) << Check.Message;
  }
}

TEST(Param, ParserDirectiveAndUse) {
  parser::ParseResult R = parser::parseLoop("array o i32 64 align 0\n"
                                            "array x i32 64 align 4\n"
                                            "param alpha 7\n"
                                            "loop 40\n"
                                            "o[i] = alpha * x[i] + alpha\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.Loop->getParams().size(), 1u);
  EXPECT_EQ(R.Loop->getParams()[0]->getActualValue(), 7);
  EXPECT_EQ(ir::printStmt(*R.Loop->getStmts().front()),
            "o[i] = (alpha * x[i]) + alpha;");
}

TEST(Param, ParserRejectsNameClashAndUnknowns) {
  EXPECT_FALSE(parser::parseLoop("array a i32 64 align 0\n"
                                 "param a 3\nloop 40\na[i] = 1\n")
                   .ok());
  // An undeclared bare identifier is treated as an array access and fails.
  EXPECT_FALSE(parser::parseLoop("array a i32 64 align 0\n"
                                 "loop 40\na[i] = beta\n")
                   .ok());
}

TEST(Param, EmittedKernelTakesParameterArgument) {
  ir::Loop L = makeParamLoop(3);
  codegen::SimdizeResult R = codegen::simdize(L, codegen::SimdizeOptions());
  ASSERT_TRUE(R.ok()) << R.Error;
  lower::LowerResult Lowered =
      lower::emitAltiVecKernel(*R.Program, L, "kern");
  ASSERT_TRUE(Lowered.ok()) << Lowered.Error;
  const std::string &Src = Lowered.Code;
  EXPECT_NE(Src.find("long alpha, long ub)"), std::string::npos);
  EXPECT_NE(Src.find("= alpha;"), std::string::npos);
}

} // namespace
