//===- tests/CodegenTest.cpp - Unit tests for SIMD code generation -------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "codegen/Simdizer.h"
#include "ir/IRBuilder.h"
#include "ir/Loop.h"
#include "sim/Checker.h"
#include "support/Format.h"
#include "vir/VPrinter.h"

#include <gtest/gtest.h>

using namespace simdize;
using namespace simdize::codegen;

namespace {

using vir::countOps;

/// One-statement loop with chosen store alignment and trip count.
ir::Loop makeLoop(unsigned StoreAlign, int64_t UB, bool UBKnown = true,
                  ir::ElemType Ty = ir::ElemType::Int32) {
  ir::Loop L;
  int64_t Size = UB + 16;
  ir::Array *A = L.createArray("a", Ty, Size, StoreAlign, true);
  ir::Array *B = L.createArray("b", Ty, Size, elemSize(Ty), true);
  L.addStmt(A, 0, ir::ref(B, 0));
  L.setUpperBound(UB, UBKnown);
  return L;
}

TEST(Simdizable, RejectsTripCountAtOrBelowGuard) {
  // B = 4; the guard is ub > 3B = 12.
  for (int64_t UB : {1, 4, 11, 12}) {
    ir::Loop L = makeLoop(0, UB);
    auto Err = checkSimdizable(L, 16);
    ASSERT_NE(Err, std::nullopt) << "ub=" << UB;
    EXPECT_NE(Err->find("validity guard"), std::string::npos);
  }
  EXPECT_EQ(checkSimdizable(makeLoop(0, 13), 16), std::nullopt);
}

TEST(Simdizable, RejectsStoreAlsoLoaded) {
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 0, true);
  ir::Array *B = L.createArray("b", ir::ElemType::Int32, 128, 0, true);
  L.addStmt(A, 1, ir::ref(A, 0)); // Loop-carried dependence risk.
  L.addStmt(B, 0, ir::splat(1));
  L.setUpperBound(100, true);
  auto Err = checkSimdizable(L, 16);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("both stored and loaded"), std::string::npos);
}

TEST(Simdizable, RejectsDoubleStoredArray) {
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 0, true);
  L.addStmt(A, 0, ir::splat(1));
  L.addStmt(A, 1, ir::splat(2));
  L.setUpperBound(100, true);
  auto Err = checkSimdizable(L, 16);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("more than one statement"), std::string::npos);
}

TEST(Bounds, SteadyStateUsesEq12AndEq15) {
  // LB = B = 4 (Eq. 12); UB = ub - B + 1 = 97 (Eq. 15).
  ir::Loop L = makeLoop(12, 100);
  SimdizeResult R= codegen::simdize(L, SimdizeOptions());
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.Program->getLowerBound().isImm());
  EXPECT_EQ(R.Program->getLowerBound().getImm(), 4);
  EXPECT_TRUE(R.Program->getUpperBound().isImm());
  EXPECT_EQ(R.Program->getUpperBound().getImm(), 97);
}

TEST(Bounds, RuntimeUpperBoundComputedInSetup) {
  ir::Loop L = makeLoop(12, 100, /*UBKnown=*/false);
  SimdizeResult R= codegen::simdize(L, SimdizeOptions());
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(R.Program->getUpperBound().isImm());
  EXPECT_TRUE(R.Program->hasTripCountParam());
  EXPECT_EQ(R.Program->getTripCountValue(), 100);
  // One subtraction in Setup produces the bound.
  EXPECT_GE(countOps(R.Program->getSetup(), vir::VOpcode::SBinOp), 1u);
}

TEST(Prologue, AlignedStoreSkipsSplice) {
  ir::Loop L = makeLoop(/*StoreAlign=*/0, 100);
  SimdizeResult R= codegen::simdize(L, SimdizeOptions());
  ASSERT_TRUE(R.ok()) << R.Error;
  // Full-vector prologue store: no vsplice in Setup.
  EXPECT_EQ(countOps(R.Program->getSetup(), vir::VOpcode::VSplice), 0u);
  EXPECT_EQ(countOps(R.Program->getSetup(), vir::VOpcode::VStore), 1u);
}

TEST(Prologue, MisalignedStoreSplicesOldBytes) {
  ir::Loop L = makeLoop(/*StoreAlign=*/8, 100);
  SimdizeResult R= codegen::simdize(L, SimdizeOptions());
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(countOps(R.Program->getSetup(), vir::VOpcode::VSplice), 1u);
}

struct EpilogueCase {
  unsigned StoreAlign;
  int64_t UB;
  unsigned ExpectFullStores;    // Unpredicated full epilogue stores.
  unsigned ExpectPartialStores; // Splice-backed epilogue stores.
};

class EpilogueShape : public ::testing::TestWithParam<EpilogueCase> {};

TEST_P(EpilogueShape, MatchesEpiLeftOver) {
  // ELO = align + (ub mod B)*D (Eq. 16); V = 16, D = 4, B = 4.
  EpilogueCase C = GetParam();
  ir::Loop L = makeLoop(C.StoreAlign, C.UB);
  SimdizeResult R= codegen::simdize(L, SimdizeOptions());
  ASSERT_TRUE(R.ok()) << R.Error;
  const vir::Block &Epi = R.Program->getEpilogue();
  EXPECT_EQ(countOps(Epi, vir::VOpcode::VStore) -
                countOps(Epi, vir::VOpcode::VSplice),
            C.ExpectFullStores);
  EXPECT_EQ(countOps(Epi, vir::VOpcode::VSplice), C.ExpectPartialStores);
  // And of course the result must be right.
  sim::CheckResult Check = sim::checkSimdization(L, *R.Program, 5);
  EXPECT_TRUE(Check.Ok) << Check.Message;
}

INSTANTIATE_TEST_SUITE_P(
    EpiLeftOverCases, EpilogueShape,
    ::testing::Values(
        EpilogueCase{0, 100, 0, 0},  // ELO = 0: no epilogue.
        EpilogueCase{4, 100, 0, 1},  // ELO = 4: partial only.
        EpilogueCase{12, 101, 1, 0}, // ELO = 12+4 = 16 = V: full only.
        EpilogueCase{12, 103, 1, 1}, // ELO = 12+12 = 24 > V: full+partial.
        EpilogueCase{0, 102, 0, 1},  // ELO = 8: partial.
        EpilogueCase{8, 102, 1, 0}   // ELO = 16: full.
        ));

TEST(Epilogue, RuntimeBoundsArePredicated) {
  ir::Loop L = makeLoop(12, 103, /*UBKnown=*/false);
  SimdizeResult R= codegen::simdize(L, SimdizeOptions());
  ASSERT_TRUE(R.ok()) << R.Error;
  const vir::Block &Epi = R.Program->getEpilogue();
  unsigned Predicated = 0;
  for (const vir::VInst &I : Epi)
    if (I.Predicate)
      ++Predicated;
  EXPECT_GT(Predicated, 0u);
  EXPECT_GT(countOps(Epi, vir::VOpcode::SCmp), 0u);
  sim::CheckResult Check = sim::checkSimdization(L, *R.Program, 6);
  EXPECT_TRUE(Check.Ok) << Check.Message;
}

TEST(Codegen, SplatsHoistedAndCached) {
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 4, true);
  ir::Array *B = L.createArray("b", ir::ElemType::Int32, 128, 4, true);
  // The same constant twice: one vsplat.
  L.addStmt(A, 0, ir::add(ir::mul(ir::splat(3), ir::ref(B, 0)), ir::splat(3)));
  L.setUpperBound(100, true);
  SimdizeResult R= codegen::simdize(L, SimdizeOptions());
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(countOps(R.Program->getSetup(), vir::VOpcode::VSplat), 1u);
  EXPECT_EQ(countOps(R.Program->getBody(), vir::VOpcode::VSplat), 0u);
  sim::CheckResult Check = sim::checkSimdization(L, *R.Program, 8);
  EXPECT_TRUE(Check.Ok) << Check.Message;
}

TEST(Codegen, RuntimeAlignmentScalarsCachedPerCongruenceClass) {
  // x[i] and x[i+4] share one runtime-offset computation; x[i+1] needs its
  // own.
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 0, false);
  ir::Array *X = L.createArray("x", ir::ElemType::Int32, 128, 0, false);
  L.addStmt(A, 0,
            ir::add(ir::add(ir::ref(X, 0), ir::ref(X, 4)), ir::ref(X, 1)));
  L.setUpperBound(100, true);
  SimdizeResult R= codegen::simdize(L, SimdizeOptions());
  ASSERT_TRUE(R.ok()) << R.Error;
  // SBase instructions: one per distinct (array, class): x class 0, x
  // class 4, and the store array a.
  EXPECT_EQ(countOps(R.Program->getSetup(), vir::VOpcode::SBase), 3u);
  sim::CheckResult Check = sim::checkSimdization(L, *R.Program, 9);
  EXPECT_TRUE(Check.Ok) << Check.Message;
}

TEST(Codegen, DegenerateShiftIsElided) {
  // Relatively aligned load and store: eager-shift inserts nothing and no
  // vshiftpair appears anywhere.
  ir::Loop L = makeLoop(/*StoreAlign=*/4, 100);
  SimdizeOptions Opts;
  Opts.Policy = policies::PolicyKind::Eager;
  SimdizeResult R= codegen::simdize(L, Opts);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.ShiftCount, 0u);
  EXPECT_EQ(countOps(R.Program->getBody(), vir::VOpcode::VShiftPair), 0u);
}

TEST(Codegen, GraphDumpsExposedPerStatement) {
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 0, true);
  ir::Array *B = L.createArray("b", ir::ElemType::Int32, 128, 4, true);
  ir::Array *X = L.createArray("x", ir::ElemType::Int32, 128, 8, true);
  L.addStmt(A, 0, ir::ref(X, 0));
  L.addStmt(B, 0, ir::ref(X, 1));
  L.setUpperBound(100, true);
  SimdizeResult R= codegen::simdize(L, SimdizeOptions());
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.GraphDumps.size(), 2u);
  EXPECT_NE(R.GraphDumps[0].find("vstore a"), std::string::npos);
  EXPECT_NE(R.GraphDumps[1].find("vstore b"), std::string::npos);
}

TEST(Codegen, MultiStatementSharedLoadStreams) {
  // Two statements reading the same array: correctness under every policy.
  for (auto Policy : policies::allPolicies()) {
    ir::Loop L;
    ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 4, true);
    ir::Array *B = L.createArray("b", ir::ElemType::Int32, 128, 8, true);
    ir::Array *X = L.createArray("x", ir::ElemType::Int32, 128, 12, true);
    L.addStmt(A, 1, ir::add(ir::ref(X, 0), ir::ref(X, 2)));
    L.addStmt(B, 3, ir::mul(ir::ref(X, 1), ir::ref(X, 0)));
    L.setUpperBound(97, true);
    SimdizeOptions Opts;
    Opts.Policy = Policy;
    SimdizeResult R= codegen::simdize(L, Opts);
    ASSERT_TRUE(R.ok()) << R.Error;
    sim::CheckResult Check = sim::checkSimdization(L, *R.Program, 11);
    EXPECT_TRUE(Check.Ok)
        << policies::policyName(Policy) << ": " << Check.Message;
  }
}

TEST(Codegen, TripCountSweepAroundBoundaries) {
  // Every trip count from 3B+1 to 6B, every store alignment, zero-shift
  // with and without SP: store coverage (prologue/steady/epilogue
  // composition) must be exact.
  for (int64_t UB = 13; UB <= 24; ++UB) {
    for (unsigned Align : {0u, 4u, 8u, 12u}) {
      for (bool SP : {false, true}) {
        ir::Loop L = makeLoop(Align, UB);
        SimdizeOptions Opts;
        Opts.SoftwarePipelining = SP;
        SimdizeResult R= codegen::simdize(L, Opts);
        ASSERT_TRUE(R.ok()) << R.Error;
        sim::CheckResult Check = sim::checkSimdization(L, *R.Program, UB);
        EXPECT_TRUE(Check.Ok) << strf("ub=%lld align=%u sp=%d: ",
                                      static_cast<long long>(UB), Align, SP)
                              << Check.Message;
      }
    }
  }
}

TEST(Codegen, Int8Lanes) {
  // 16 bytes per vector: B = 16.
  ir::Loop L = makeLoop(5, 100, true, ir::ElemType::Int8);
  SimdizeResult R= codegen::simdize(L, SimdizeOptions());
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Program->getBlockingFactor(), 16u);
  sim::CheckResult Check = sim::checkSimdization(L, *R.Program, 12);
  EXPECT_TRUE(Check.Ok) << Check.Message;
}

} // namespace
