//===- tests/LowerBoundTest.cpp - Unit tests for the LB cost model -------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Loop.h"
#include "pipeline/Pipeline.h"
#include "support/Format.h"
#include "synth/LowerBound.h"

#include <gtest/gtest.h>

using namespace simdize;
using namespace simdize::synth;
using policies::PolicyKind;

namespace {

/// s=1, l=6 loop with chosen per-reference alignments (on aligned bases,
/// via element offsets 0..3) plus a store alignment.
ir::Loop sixLoadLoop(const std::vector<int64_t> &LoadOffsets,
                     int64_t StoreOffset, bool AlignKnown = true) {
  ir::Loop L;
  std::unique_ptr<ir::Expr> E;
  unsigned K = 0;
  for (int64_t C : LoadOffsets) {
    ir::Array *A =
        L.createArray(strf("x%u", K++), ir::ElemType::Int32, 128, 0,
                      AlignKnown);
    auto R = ir::ref(A, C);
    E = E ? ir::add(std::move(E), std::move(R)) : std::move(R);
  }
  ir::Array *Out =
      L.createArray("out", ir::ElemType::Int32, 128, 0, AlignKnown);
  L.addStmt(Out, StoreOffset, std::move(E));
  L.setUpperBound(100, true);
  return L;
}

TEST(LowerBound, AllDistinctAlignments) {
  // Offsets 0,1,2,3,0,1 -> alignments {0,4,8,12}; store at 12.
  ir::Loop L = sixLoadLoop({0, 1, 2, 3, 0, 1}, 3);
  LowerBound LB = computeLowerBound(L, 16, PolicyKind::Lazy);
  EXPECT_EQ(LB.DistinctLoads, 6); // Six distinct arrays.
  EXPECT_EQ(LB.Stores, 1);
  EXPECT_EQ(LB.Compute, 5);
  // 4 distinct access alignments -> minimum 3 shifts.
  EXPECT_EQ(LB.Shifts, 3);
  EXPECT_EQ(LB.totalPerIteration(), 15);
  EXPECT_DOUBLE_EQ(LB.opd(4, 1), 3.75);
}

TEST(LowerBound, FloorsScaleWithWidthWhilePlacedShiftsDoNot) {
  // Byte alignments 0/4/8/12 are four distinct classes at every V >= 16,
  // so the shift term of the floor — and the vshiftstream count the
  // simdizer actually places — is width-independent. Only the per-datum
  // normalization changes: with B = V/4 datums per register the opd floor
  // shrinks as 1/B.
  ir::Loop L = sixLoadLoop({0, 1, 2, 3, 0, 1}, 3);
  unsigned PlacedAt16 = 0;
  for (unsigned V : {16u, 32u, 64u}) {
    LowerBound LB = computeLowerBound(L, V, PolicyKind::Lazy);
    EXPECT_EQ(LB.Shifts, 3) << "V=" << V;
    EXPECT_EQ(LB.totalPerIteration(), 15) << "V=" << V;
    EXPECT_DOUBLE_EQ(LB.opd(V / 4, 1), 15.0 / (V / 4)) << "V=" << V;

    pipeline::CompileRequest Req;
    Req.Simd.Policy = PolicyKind::Lazy;
    Req.Simd.Tgt = Target(V);
    pipeline::CompileResult R = pipeline::runPipeline(L, Req);
    ASSERT_TRUE(R.ok()) << "V=" << V << ": " << R.error();
    if (V == 16)
      PlacedAt16 = R.Simd.ShiftCount;
    else
      EXPECT_EQ(R.Simd.ShiftCount, PlacedAt16) << "V=" << V;
  }
  // The placed count sits at or above the class-count floor (lazy merges
  // by alignment class only where the operand tree allows it).
  EXPECT_GE(PlacedAt16, 3u);
}

TEST(LowerBound, ZeroShiftCountsMisalignedStreams) {
  // Same loop under zero-shift: misaligned loads 4 (offsets 1,2,3,1) plus
  // the misaligned store = 5 shifts.
  ir::Loop L = sixLoadLoop({0, 1, 2, 3, 0, 1}, 3);
  LowerBound LB = computeLowerBound(L, 16, PolicyKind::Zero);
  EXPECT_EQ(LB.Shifts, 5);
}

TEST(LowerBound, FullyAlignedLoopNeedsNoShifts) {
  ir::Loop L = sixLoadLoop({0, 4, 0, 4, 0, 4}, 0);
  for (PolicyKind Policy : policies::allPolicies()) {
    LowerBound LB = computeLowerBound(L, 16, Policy);
    EXPECT_EQ(LB.Shifts, 0) << policies::policyName(Policy);
    // With no realignment, the bound degenerates to the no-shift cost:
    // just the distinct loads, the store, and the adds.
    EXPECT_EQ(LB.totalPerIteration(),
              LB.DistinctLoads + LB.Stores + LB.Compute)
        << policies::policyName(Policy);
  }
}

TEST(LowerBound, TripCountBelowOneVectorKeepsPerIterationBound) {
  // The bound is a per-steady-iteration cost model: degenerate trip counts
  // (which the validity guard rejects at codegen time) must not perturb or
  // crash it.
  ir::Loop L = sixLoadLoop({0, 1, 2, 3, 0, 1}, 3);
  for (int64_t UB : {0, 1, 3}) { // all below B = 4
    L.setUpperBound(UB, true);
    LowerBound LB = computeLowerBound(L, 16, PolicyKind::Lazy);
    EXPECT_EQ(LB.totalPerIteration(), 15) << "ub=" << UB;
    EXPECT_DOUBLE_EQ(LB.opd(4, 1), 3.75) << "ub=" << UB;
  }
}

TEST(LowerBound, RuntimeBoundDominatesStaticBound) {
  // Losing compile-time alignment can only force more realignment: for
  // the same loop shape, the runtime-alignment bound must be at least the
  // static one (4.75 vs 3.75 on the paper's s=1 l=6 anchor).
  for (int64_t Store : {0, 3}) {
    ir::Loop Static = sixLoadLoop({0, 1, 2, 3, 0, 1}, Store);
    ir::Loop Runtime =
        sixLoadLoop({0, 1, 2, 3, 0, 1}, Store, /*AlignKnown=*/false);
    LowerBound S = computeLowerBound(Static, 16, PolicyKind::Zero);
    LowerBound R = computeLowerBound(Runtime, 16, PolicyKind::Zero);
    EXPECT_GE(R.totalPerIteration(), S.totalPerIteration())
        << "store offset " << Store;
    EXPECT_GE(R.Shifts, S.Shifts) << "store offset " << Store;
  }
}

TEST(LowerBound, RuntimeAlignmentsTreatEverythingMisaligned) {
  // The paper's runtime zero-shift bound for s=1 l=6: (6 loads + 1 store +
  // 7 shifts + 5 adds) / 4 = 4.75 opd.
  ir::Loop L = sixLoadLoop({0, 1, 2, 3, 0, 1}, 3, /*AlignKnown=*/false);
  LowerBound LB = computeLowerBound(L, 16, PolicyKind::Zero);
  EXPECT_EQ(LB.Shifts, 7);
  EXPECT_DOUBLE_EQ(LB.opd(4, 1), 4.75);
}

TEST(LowerBound, SharedChunksCountOnce) {
  // One array read at i and i+1 (same chunk when aligned): one distinct
  // 16-byte aligned load ("loading a[i] and a[i+1] anywhere in the loop
  // counts as one").
  ir::Loop L;
  ir::Array *X = L.createArray("x", ir::ElemType::Int32, 128, 0, true);
  ir::Array *Out = L.createArray("out", ir::ElemType::Int32, 128, 0, true);
  L.addStmt(Out, 0, ir::add(ir::ref(X, 1), ir::ref(X, 2)));
  L.setUpperBound(100, true);
  LowerBound LB = computeLowerBound(L, 16, PolicyKind::Lazy);
  EXPECT_EQ(LB.DistinctLoads, 1);

  // x[i+1] and x[i+4] live one whole vector apart: two chunk streams.
  ir::Loop L2;
  ir::Array *X2 = L2.createArray("x", ir::ElemType::Int32, 128, 0, true);
  ir::Array *Out2 = L2.createArray("out", ir::ElemType::Int32, 128, 0, true);
  L2.addStmt(Out2, 0, ir::add(ir::ref(X2, 1), ir::ref(X2, 4)));
  L2.setUpperBound(100, true);
  EXPECT_EQ(computeLowerBound(L2, 16, PolicyKind::Lazy).DistinctLoads, 2);
}

TEST(LowerBound, RuntimeSharingNeedsCongruence) {
  // With unknown bases, x[i] and x[i+4] provably share chunks (offsets
  // congruent mod B); x[i] and x[i+1] do not.
  ir::Loop L;
  ir::Array *X = L.createArray("x", ir::ElemType::Int32, 128, 0, false);
  ir::Array *Out = L.createArray("out", ir::ElemType::Int32, 128, 0, false);
  L.addStmt(Out, 0,
            ir::add(ir::add(ir::ref(X, 0), ir::ref(X, 4)), ir::ref(X, 1)));
  L.setUpperBound(100, true);
  EXPECT_EQ(computeLowerBound(L, 16, PolicyKind::Zero).DistinctLoads, 2);
}

TEST(LowerBound, CrossStatementLoadSharing) {
  // Two statements reading the same stream: the distinct-load count spans
  // the whole loop, but the n-1 shift minimum is per statement.
  ir::Loop L;
  ir::Array *X = L.createArray("x", ir::ElemType::Int32, 128, 0, true);
  ir::Array *O1 = L.createArray("o1", ir::ElemType::Int32, 128, 4, true);
  ir::Array *O2 = L.createArray("o2", ir::ElemType::Int32, 128, 8, true);
  L.addStmt(O1, 0, ir::ref(X, 1)); // Alignments {4, 4}: 1 class.
  L.addStmt(O2, 0, ir::ref(X, 1)); // Alignments {4, 8}: 2 classes.
  L.setUpperBound(100, true);
  LowerBound LB = computeLowerBound(L, 16, PolicyKind::Lazy);
  EXPECT_EQ(LB.DistinctLoads, 1);
  EXPECT_EQ(LB.Stores, 2);
  EXPECT_EQ(LB.Shifts, 0 + 1);
  EXPECT_DOUBLE_EQ(LB.opd(4, 2), 4.0 / 8.0);
}

TEST(LowerBound, SplatOnlyStatement) {
  ir::Loop L;
  ir::Array *Out = L.createArray("out", ir::ElemType::Int32, 128, 4, true);
  L.addStmt(Out, 0, ir::splat(3));
  L.setUpperBound(100, true);
  LowerBound LB = computeLowerBound(L, 16, PolicyKind::Lazy);
  EXPECT_EQ(LB.DistinctLoads, 0);
  EXPECT_EQ(LB.Stores, 1);
  EXPECT_EQ(LB.Shifts, 0);
  EXPECT_EQ(LB.Compute, 0);
}

TEST(LowerBound, ShortsUseBlockingFactorEight) {
  ir::Loop L;
  ir::Array *X = L.createArray("x", ir::ElemType::Int16, 128, 0, true);
  ir::Array *Out = L.createArray("out", ir::ElemType::Int16, 128, 4, true);
  L.addStmt(Out, 0, ir::ref(X, 1)); // Load at offset 2, store at 4.
  L.setUpperBound(100, true);
  LowerBound LB = computeLowerBound(L, 16, PolicyKind::Lazy);
  // 1 load + 1 store + 1 shift over 8 datums.
  EXPECT_DOUBLE_EQ(LB.opd(8, 1), 3.0 / 8.0);
}

} // namespace
