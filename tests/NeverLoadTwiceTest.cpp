//===- tests/NeverLoadTwiceTest.cpp - The headline reuse guarantee -------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Our code generation scheme guarantees to never load the same data
/// associated with a single static access twice." Two property checks over
/// random loops with reuse exploitation (SP or PC) enabled:
///
///  * statically, the steady body performs exactly one vector load per
///    distinct aligned stream per simdized iteration (the Section 5.3
///    distinct-load count);
///  * dynamically, no interior 16-byte chunk of any array is loaded more
///    often than the array has distinct streams — the steady state never
///    revisits data; only the one-time prologue/epilogue/pipeline-init
///    evaluations may re-touch chunks near a stream's ends.
///
//===----------------------------------------------------------------------===//

#include "codegen/Simdizer.h"
#include "ir/Loop.h"
#include "opt/Pipeline.h"
#include "sim/Checker.h"
#include "sim/Memory.h"
#include "synth/LoopSynth.h"
#include "synth/LowerBound.h"

#include <gtest/gtest.h>

#include <map>

using namespace simdize;

namespace {

struct ReuseCase {
  bool UseSP; // SP codegen versus PC post-pass.
  bool AlignKnown;
};

class NeverLoadTwice : public ::testing::TestWithParam<ReuseCase> {};

TEST_P(NeverLoadTwice, SteadyStateLoadsMatchDistinctStreams) {
  ReuseCase Case = GetParam();
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    synth::SynthParams P;
    P.Statements = 1 + Seed % 3;
    P.LoadsPerStmt = 1 + Seed % 6;
    P.TripCount = 200 + static_cast<int64_t>(Seed);
    P.AlignKnown = Case.AlignKnown;
    P.Seed = Seed * 1013;
    ir::Loop L = synth::synthesizeLoop(P);

    codegen::SimdizeOptions Opts;
    Opts.Policy = Case.AlignKnown ? policies::PolicyKind::Lazy
                                  : policies::PolicyKind::Zero;
    Opts.SoftwarePipelining = Case.UseSP;
    codegen::SimdizeResult R = codegen::simdize(L, Opts);
    ASSERT_TRUE(R.ok()) << R.Error;

    opt::OptConfig Config;
    Config.PC = !Case.UseSP;
    opt::runOptPipeline(*R.Program, Config);

    // Static check. Predictive commoning chains loads across iterations
    // (and even across chunk-adjacent streams, beating the per-stream
    // bound), so its steady state needs at most one load per distinct
    // stream per iteration. Software pipelining carries each vshiftstream
    // separately: when two statements realign one stream in opposite
    // directions it keeps two chunk phases alive, so the guarantee is one
    // load per (stream, direction) — at most twice the distinct streams —
    // and exactly the distinct streams for single-statement loops, where
    // every policy realigns a stream toward a single target.
    int64_t BodyLoads = 0;
    for (const vir::VInst &I : R.Program->getBody())
      if (I.Op == vir::VOpcode::VLoad)
        ++BodyLoads;
    int64_t IterationsPerBody =
        R.Program->getLoopStep() / R.Program->getBlockingFactor();
    synth::LowerBound LB = synth::computeLowerBound(L, 16, Opts.Policy);
    int64_t PerIter = BodyLoads / IterationsPerBody;
    EXPECT_EQ(BodyLoads % IterationsPerBody, 0) << "seed " << Seed;
    if (!Case.UseSP || L.getStmts().size() == 1) {
      EXPECT_LE(PerIter, LB.DistinctLoads) << "seed " << Seed;
      if (Case.UseSP) {
        EXPECT_EQ(PerIter, LB.DistinctLoads) << "seed " << Seed;
      }
    } else {
      EXPECT_LE(PerIter, 2 * LB.DistinctLoads) << "seed " << Seed;
    }

    // Dynamic check: run and inspect per-chunk load counts.
    sim::CheckResult Check = sim::checkSimdization(L, *R.Program, Seed);
    ASSERT_TRUE(Check.Ok) << Check.Message;

    std::map<const ir::Array *, int64_t> StreamsPerArray;
    for (const auto &S : L.getStmts())
      S->getRHS().walk([&](const ir::Expr &E) {
        if (const auto *Ref = ir::dyn_cast<ir::ArrayRefExpr>(E))
          ++StreamsPerArray[Ref->getArray()];
      });

    // The checker's layout is deterministic: rebuild it to map chunk
    // addresses back to array positions.
    sim::MemoryLayout Layout(L, 16);
    const int64_t Margin = 4 * 16; // Prologue/epilogue influence zone.
    for (const auto &[Key, Count] : Check.Stats.ChunkLoads) {
      const auto &[Arr, ChunkAddr] = Key;
      auto It = StreamsPerArray.find(Arr);
      if (It == StreamsPerArray.end())
        continue; // Store-array chunks (partial-store reads): exempt.
      int64_t Base = Layout.baseOf(Arr);
      int64_t End = Base + Arr->getSizeInBytes();
      bool Interior =
          ChunkAddr >= Base + Margin && ChunkAddr + 16 <= End - Margin;
      if (Interior) {
        EXPECT_LE(Count, It->second)
            << "chunk @" << ChunkAddr << " of " << Arr->getName()
            << " (seed " << Seed << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, NeverLoadTwice,
    ::testing::Values(ReuseCase{true, true}, ReuseCase{false, true},
                      ReuseCase{true, false}, ReuseCase{false, false}),
    [](const ::testing::TestParamInfo<ReuseCase> &Info) {
      return std::string(Info.param.UseSP ? "SP" : "PC") +
             (Info.param.AlignKnown ? "CtAlign" : "RtAlign");
    });

} // namespace
