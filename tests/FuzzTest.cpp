//===- tests/FuzzTest.cpp - The differential fuzzer and its shrinker ------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the fuzzing subsystem itself: the seed distribution, outcome
/// classification, a no-failure smoke sweep, and — the interesting part —
/// the shrinker, which must reduce a deliberately injected policy bug
/// (an off-by-one stream-shift amount) to a reproducer of at most two
/// statements and two loads.
///
//===----------------------------------------------------------------------===//

#include "fuzz/CorpusIO.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Shrinker.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Loop.h"
#include "parser/LoopParser.h"
#include "vir/VProgram.h"

#include <gtest/gtest.h>

using namespace simdize;

namespace {

TEST(Fuzzer, SmokeSweepFindsNoFailures) {
  fuzz::FuzzOptions Opts;
  Opts.StartSeed = 900000001;
  Opts.NumSeeds = 120;
  Opts.Log = nullptr;
  fuzz::FuzzStats Stats = fuzz::runFuzz(Opts);
  EXPECT_EQ(Stats.SeedsRun, 120u);
  EXPECT_TRUE(Stats.ok()) << Stats.Failures.front().Message;
  // Degenerate trip counts guarantee a healthy rejected share, and most
  // loops must actually verify.
  EXPECT_GT(Stats.RunsVerified, 0u);
  EXPECT_GT(Stats.RunsRejected, 0u);
}

TEST(Fuzzer, ParamsForSeedIsDeterministicAndCoversEdges) {
  for (uint64_t Seed : {1ull, 77ull, 4096ull})
    EXPECT_EQ(fuzz::printParseable(
                  synth::synthesizeLoop(fuzz::paramsForSeed(Seed))),
              fuzz::printParseable(
                  synth::synthesizeLoop(fuzz::paramsForSeed(Seed))));

  bool SawDegenerate = false, SawRuntime = false, SawByte = false;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    synth::SynthParams P = fuzz::paramsForSeed(Seed);
    int64_t B = 16 / ir::elemSize(P.Ty);
    SawDegenerate |= P.TripCount <= 3 * B;
    SawRuntime |= !P.AlignKnown || !P.UBKnown;
    SawByte |= !P.NaturalAlignment;
  }
  EXPECT_TRUE(SawDegenerate);
  EXPECT_TRUE(SawRuntime);
  EXPECT_TRUE(SawByte);
}

TEST(Fuzzer, DegenerateTripCountsAreRejectedNotFailed) {
  ir::Loop L;
  ir::Array *Out = L.createArray("out", ir::ElemType::Int32, 32, 0, true);
  ir::Array *X = L.createArray("x", ir::ElemType::Int32, 32, 4, true);
  L.addStmt(Out, 0, ir::ref(X, 0));
  for (int64_t UB : {0, 1, 3, 12}) { // all at or below the 3B = 12 guard
    L.setUpperBound(UB, true);
    for (const fuzz::FuzzConfig &C : fuzz::configsForLoop(L)) {
      fuzz::RunResult R = fuzz::runConfigOnLoop(L, C, 1);
      EXPECT_EQ(R.Status, fuzz::RunStatus::Rejected)
          << C.name() << " ub=" << UB << ": " << R.Message;
    }
  }
}

TEST(Fuzzer, RuntimeAlignmentRestrictsConfigsToZeroShift) {
  ir::Loop L;
  ir::Array *Out = L.createArray("out", ir::ElemType::Int32, 64, 0, false);
  ir::Array *X = L.createArray("x", ir::ElemType::Int32, 64, 4, false);
  L.addStmt(Out, 0, ir::ref(X, 0));
  L.setUpperBound(40, true);
  for (const fuzz::FuzzConfig &C : fuzz::configsForLoop(L)) {
    // Auto configs stay applicable (the pipeline resolves them to
    // zero-shift for this loop); every fixed-policy config must be zero.
    if (C.AutoPolicy)
      continue;
    EXPECT_EQ(C.Simd.Policy, policies::PolicyKind::Zero) << C.name();
  }
}

/// Bumps the first immediate-shift vshiftpair in the steady-state body by
/// one element — the classic off-by-one stream offset a buggy placement
/// policy would produce. Returns whether anything was mutated via *Hit.
fuzz::ProgramMutator offByOneShift(bool *Hit) {
  return [Hit](vir::VProgram &P) {
    for (vir::VInst &I : P.getBody()) {
      if (I.Op == vir::VOpcode::VShiftPair && I.SOp1.isImm()) {
        int64_t Shift = I.SOp1.getImm();
        I.SOp1 = vir::ScalarOperand::imm(
            (Shift + P.getElemSize()) % P.getVectorLen());
        if (Hit)
          *Hit = true;
        return;
      }
    }
  };
}

TEST(Shrinker, MinimizesInjectedPolicyBug) {
  // A deliberately bulky loop: 3 statements, 4 loads each, mixed
  // alignments — the kind of haystack a real fuzz failure arrives in.
  synth::SynthParams P;
  P.Statements = 3;
  P.LoadsPerStmt = 4;
  P.TripCount = 60;
  P.Bias = 0.2;
  P.Reuse = 0.4;
  P.Seed = 20040601;
  ir::Loop L = synth::synthesizeLoop(P);

  fuzz::FuzzConfig C;
  C.Simd.Policy = policies::PolicyKind::Lazy;
  C.Simd.SoftwarePipelining = false;
  C.Opt = fuzz::OptLevel::Std;

  bool Hit = false;
  fuzz::ProgramMutator Bug = offByOneShift(&Hit);
  fuzz::RunResult Broken = fuzz::runConfigOnLoop(L, C, 99, Bug);
  ASSERT_TRUE(Hit) << "expected the seed loop to need stream shifts";
  ASSERT_EQ(Broken.Status, fuzz::RunStatus::Failed)
      << "injected bug did not change behavior";
  // A wrong shift *amount* leaves the shift count intact: only the
  // bit-equality check can catch it, and it must classify as a mismatch.
  EXPECT_EQ(Broken.Kind, oracle::FailureKind::Mismatch) << Broken.Message;
  // The triage satellites: the diagnostic names the scheme and the
  // owning statement, not just a byte address.
  EXPECT_NE(Broken.Message.find("LAZY/opt"), std::string::npos)
      << Broken.Message;
  EXPECT_NE(Broken.Message.find("statement"), std::string::npos)
      << Broken.Message;

  fuzz::ShrinkStats Stats;
  ir::Loop Minimized = fuzz::shrinkLoop(
      L,
      [&](const ir::Loop &Cand) {
        fuzz::RunResult R =
            fuzz::runConfigOnLoop(Cand, C, 99, offByOneShift(nullptr));
        return R.Status == fuzz::RunStatus::Failed &&
               R.Kind == oracle::FailureKind::Mismatch;
      },
      &Stats);

  // The ISSUE's acceptance bar: at most 2 statements and 2 loads.
  EXPECT_LE(Minimized.getStmts().size(), 2u)
      << fuzz::printParseable(Minimized);
  EXPECT_LE(fuzz::countLoads(Minimized), 2u)
      << fuzz::printParseable(Minimized);
  EXPECT_GT(Stats.StepsApplied, 0u);

  // Still failing with the same kind, and still failing after a text
  // round-trip, so the committed corpus file reproduces the bug.
  fuzz::RunResult MinRun =
      fuzz::runConfigOnLoop(Minimized, C, 99, offByOneShift(nullptr));
  EXPECT_EQ(MinRun.Status, fuzz::RunStatus::Failed);
  EXPECT_EQ(MinRun.Kind, oracle::FailureKind::Mismatch) << MinRun.Message;
  parser::ParseResult Reparsed =
      parser::parseLoop(fuzz::printParseable(Minimized));
  ASSERT_TRUE(Reparsed.ok()) << Reparsed.Error;
  EXPECT_EQ(fuzz::runConfigOnLoop(*Reparsed.Loop, C, 99,
                                  offByOneShift(nullptr))
                .Status,
            fuzz::RunStatus::Failed);
}

TEST(Shrinker, ShrinkingIsIdempotent) {
  // Re-shrinking an already-minimal reproducer must be a fixpoint: no
  // steps apply and the text is unchanged. (A shrinker that keeps finding
  // "improvements" on its own output produces unstable corpus files.)
  synth::SynthParams P = fuzz::paramsForSeed(5);
  P.Ty = ir::ElemType::Int32;
  P.Statements = 4;
  P.LoadsPerStmt = 5;
  ir::Loop L = synth::synthesizeLoop(P);
  auto Pred = [](const ir::Loop &Cand) {
    return Cand.getElemType() == ir::ElemType::Int32 &&
           fuzz::countLoads(Cand) >= 1;
  };
  ir::Loop Once = fuzz::shrinkLoop(L, Pred);
  fuzz::ShrinkStats Again;
  ir::Loop Twice = fuzz::shrinkLoop(Once, Pred, &Again);
  EXPECT_EQ(fuzz::printParseable(Twice), fuzz::printParseable(Once));
  EXPECT_EQ(Again.StepsApplied, 0u);
}

TEST(Shrinker, MixedKindShrinkingIsIdempotent) {
  // Guards and reductions add shrink steps of their own (drop the guard,
  // demote the reduction); the fixpoint guarantee must survive them.
  synth::SynthParams P = fuzz::paramsForSeed(11);
  P.Ty = ir::ElemType::Int32;
  P.Statements = 5;
  P.LoadsPerStmt = 4;
  P.GuardProb = 0.6;
  P.ReduceProb = 0.4;
  ir::Loop L = synth::synthesizeLoop(P);
  auto Count = [](const ir::Loop &Cand, ir::StmtKind K) {
    unsigned N = 0;
    for (const auto &S : Cand.getStmts())
      N += S->getKind() == K;
    return N;
  };
  ASSERT_GE(Count(L, ir::StmtKind::If), 1u);
  ASSERT_GE(Count(L, ir::StmtKind::Reduce), 1u);
  auto Pred = [&](const ir::Loop &Cand) {
    return Count(Cand, ir::StmtKind::If) >= 1 &&
           Count(Cand, ir::StmtKind::Reduce) >= 1;
  };
  ir::Loop Once = fuzz::shrinkLoop(L, Pred);
  EXPECT_GE(Count(Once, ir::StmtKind::If), 1u);
  EXPECT_GE(Count(Once, ir::StmtKind::Reduce), 1u);
  fuzz::ShrinkStats Again;
  ir::Loop Twice = fuzz::shrinkLoop(Once, Pred, &Again);
  EXPECT_EQ(fuzz::printParseable(Twice), fuzz::printParseable(Once));
  EXPECT_EQ(Again.StepsApplied, 0u);
  // The minimized mixed-kind reproducer survives the corpus round trip.
  parser::ParseResult R = parser::parseLoop(fuzz::printParseable(Once));
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(fuzz::printParseable(*R.Loop), fuzz::printParseable(Once));
}

TEST(Shrinker, ReachesGlobalMinimumOnLoopLevelPredicate) {
  // Pipeline-independent check that greedy shrinking bottoms out: any
  // i32 loop with at least one load "fails", so the global minimum is a
  // single statement with a single load.
  synth::SynthParams P = fuzz::paramsForSeed(5);
  P.Ty = ir::ElemType::Int32;
  P.Statements = 4;
  P.LoadsPerStmt = 5;
  ir::Loop L = synth::synthesizeLoop(P);
  ir::Loop Minimized = fuzz::shrinkLoop(L, [](const ir::Loop &Cand) {
    return Cand.getElemType() == ir::ElemType::Int32 &&
           fuzz::countLoads(Cand) >= 1;
  });
  EXPECT_EQ(Minimized.getStmts().size(), 1u);
  EXPECT_EQ(fuzz::countLoads(Minimized), 1u);
}

TEST(Shrinker, CloneLoopIsFaithful) {
  synth::SynthParams P = fuzz::paramsForSeed(17);
  ir::Loop L = synth::synthesizeLoop(P);
  ir::Loop Copy = ir::cloneLoop(L);
  EXPECT_EQ(fuzz::printParseable(Copy), fuzz::printParseable(L));
  EXPECT_EQ(ir::printLoop(Copy), ir::printLoop(L));
}

} // namespace
