//===- tests/NativeDiffAcceptance.cpp - native-vs-VM differential gate ----===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The acceptance gate of the native execution tier: every compiled
/// program from the whole tests/corpus/ (every applicable configuration)
/// plus a fresh fuzz-seed sweep, at V = 16, 32, and 64, must come back
/// from the dlopen'd intrinsic kernel with a memory image bit-identical
/// to the scalar oracle — and each program is first re-verified on the
/// decoded VM against the same image, so native and VM agree transitively
/// byte for byte. Kernels are batched (one translation unit, one system
/// compiler invocation per ~64) to keep the wall clock sane; the ISA is
/// the best the host supports per width, so the gate runs everywhere and
/// exercises real SIMD where the CPU has it.
///
/// A standalone slow-labeled ctest, not a gtest: the interesting failure
/// output is one line per differing kernel, and the run is minutes, not
/// milliseconds.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "ir/Loop.h"
#include "native/NativeRun.h"
#include "parser/LoopParser.h"
#include "pipeline/Pipeline.h"
#include "sim/Checker.h"
#include "support/Format.h"
#include "synth/LoopSynth.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

using namespace simdize;

namespace {

constexpr unsigned Widths[] = {16, 32, 64};
/// Kernels per generated translation unit: large enough to amortize the
/// system compiler, small enough to keep each invocation snappy.
constexpr size_t BatchSize = 64;
/// Fresh seed range, disjoint from the default sweeps (which start at 1),
/// sized so the verified-run floor below holds even after degenerate
/// trip-count rejections.
constexpr uint64_t FuzzStart = 1000001, FuzzSeeds = 600;
/// Acceptance floors: the gate must actually have exercised this much —
/// a regression that silently rejects everything must not pass.
constexpr uint64_t MinFuzzRuns = 500, MinCorpusRuns = 100;

/// One compiled program awaiting its native run, with everything borrowed
/// from the stable deques below.
struct Unit {
  std::string Tag;
  const ir::Loop *L = nullptr;
  const vir::VProgram *P = nullptr;
  const sim::ReferenceImage *Ref = nullptr;
  bool Fuzz = false;
};

} // namespace

int main() {
  // Owning stores; deques so references handed to Units never move.
  std::deque<ir::Loop> Loops;
  std::deque<sim::OracleCache> Oracles;
  std::deque<pipeline::CompileResult> Results;
  std::map<unsigned, std::vector<Unit>> ByWidth;
  uint64_t Rejected = 0;
  int Failures = 0;

  // Compiles Loops.back() under configurations at every width and queues
  // the survivors. Corpus loops take the full configuration matrix; fuzz
  // seeds rotate through it (one configuration per width, offset per
  // width so the three widths of a seed differ) — across the sweep every
  // policy x SP x opt-level cell is hit many times per width.
  auto AddConfigs = [&](const std::string &TagBase, bool Fuzz,
                        uint64_t Rotate) {
    const ir::Loop &L = Loops.back();
    sim::OracleCache &Oracle = Oracles.back();
    for (size_t WI = 0; WI < 3; ++WI) {
      unsigned W = Widths[WI];
      std::vector<fuzz::FuzzConfig> Configs = fuzz::configsForLoop(L, W);
      for (size_t I = 0; I < Configs.size(); ++I) {
        if (Fuzz && I != (Rotate + WI) % Configs.size())
          continue;
        pipeline::CompileResult R = pipeline::runPipeline(L, Configs[I]);
        if (!R.Simd.ok()) {
          ++Rejected; // validity guard or policy gate, by design
          continue;
        }
        std::string Tag = TagBase + " " + Configs[I].name();
        if (R.PostOptVerifyError) {
          std::fprintf(stderr, "FAIL %s: %s\n", Tag.c_str(),
                       R.PostOptVerifyError->c_str());
          ++Failures;
          continue;
        }
        Results.push_back(std::move(R));
        ByWidth[W].push_back({std::move(Tag), &L,
                              &*Results.back().Simd.Program,
                              &Oracle.get(W), Fuzz});
      }
    }
  };

  // The whole corpus, sorted for a deterministic run order.
  namespace fs = std::filesystem;
  std::vector<fs::path> CorpusFiles;
  for (const auto &E : fs::directory_iterator(SIMDIZE_CORPUS_DIR))
    if (E.path().extension() == ".loop")
      CorpusFiles.push_back(E.path());
  std::sort(CorpusFiles.begin(), CorpusFiles.end());
  if (CorpusFiles.empty()) {
    std::fprintf(stderr, "FAIL: no .loop files under %s\n",
                 SIMDIZE_CORPUS_DIR);
    return 1;
  }
  for (const fs::path &F : CorpusFiles) {
    std::ifstream In(F);
    std::string Text(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>{});
    // Parse at the widest width of the sweep (it only bounds `align`
    // literals); narrower widths reuse the same loop, as --replay does.
    parser::ParseResult Parsed = parser::parseLoop(Text, 64);
    if (!Parsed.ok()) {
      std::fprintf(stderr, "FAIL %s: %s\n", F.filename().c_str(),
                   Parsed.Error.c_str());
      ++Failures;
      continue;
    }
    Loops.push_back(std::move(*Parsed.Loop));
    Oracles.emplace_back(Loops.back(), /*Seed=*/2004);
    AddConfigs(F.filename().string(), /*Fuzz=*/false, 0);
  }

  for (uint64_t Seed = FuzzStart; Seed < FuzzStart + FuzzSeeds; ++Seed) {
    Loops.push_back(synth::synthesizeLoop(fuzz::paramsForSeed(Seed, 64)));
    Oracles.emplace_back(Loops.back(), Seed ^ 0xc0ffee);
    AddConfigs(strf("seed%llu", static_cast<unsigned long long>(Seed)),
               /*Fuzz=*/true, Seed);
  }

  // Run everything, batched per width.
  uint64_t FuzzRuns = 0, CorpusRuns = 0;
  for (auto &[W, Units] : ByWidth) {
    native::ISA Isa = native::bestISAForWidth(W);
    for (size_t Begin = 0; Begin < Units.size(); Begin += BatchSize) {
      size_t End = std::min(Begin + BatchSize, Units.size());
      native::NativeBatch Batch(Isa);
      for (size_t I = Begin; I < End; ++I)
        Batch.add(*Units[I].L, *Units[I].P, Units[I].Ref->getLayout());
      std::string Err;
      if (!Batch.compile(&Err)) {
        std::fprintf(stderr, "FAIL batch @%u [%zu,%zu): %s\n", W, Begin, End,
                     Err.c_str());
        ++Failures;
        continue;
      }
      for (size_t I = Begin; I < End; ++I) {
        const Unit &U = Units[I];
        // VM first: the expected image is then a proven stand-in for the
        // decoded VM's output, so the native comparison below is a
        // native-vs-VM differential as well.
        sim::CheckResult C = sim::checkSimdization(*U.L, *U.P, *U.Ref);
        if (!C.Ok) {
          std::fprintf(stderr, "FAIL %s (VM): %s\n", U.Tag.c_str(),
                       C.Message.c_str());
          ++Failures;
          continue;
        }
        sim::Memory Img = U.Ref->getInitial();
        native::runNativeOnMemory(Batch.kernel(I - Begin), Img);
        if (!(Img == U.Ref->getExpected())) {
          int64_t Byte = -1;
          for (int64_t K = 0; K < Img.size(); ++K)
            if (Img.data()[K] != U.Ref->getExpected().data()[K]) {
              Byte = K;
              break;
            }
          std::fprintf(stderr,
                       "FAIL %s (%s): native image differs from oracle at "
                       "byte %lld\n",
                       U.Tag.c_str(), native::isaName(Batch.usedISA()),
                       static_cast<long long>(Byte));
          ++Failures;
          continue;
        }
        ++(U.Fuzz ? FuzzRuns : CorpusRuns);
      }
    }
    std::printf("width %2u (%s): %zu kernels\n", W, native::isaName(Isa),
                Units.size());
  }

  std::printf("native differential: %llu corpus + %llu fuzz runs "
              "bit-identical, %llu rejected by design, %d failures\n",
              static_cast<unsigned long long>(CorpusRuns),
              static_cast<unsigned long long>(FuzzRuns),
              static_cast<unsigned long long>(Rejected), Failures);
  if (CorpusRuns < MinCorpusRuns || FuzzRuns < MinFuzzRuns) {
    std::fprintf(stderr,
                 "FAIL: coverage floor not met (corpus %llu < %llu or fuzz "
                 "%llu < %llu)\n",
                 static_cast<unsigned long long>(CorpusRuns),
                 static_cast<unsigned long long>(MinCorpusRuns),
                 static_cast<unsigned long long>(FuzzRuns),
                 static_cast<unsigned long long>(MinFuzzRuns));
    return 1;
  }
  return Failures ? 1 : 0;
}
