//===- tests/ReorgTest.cpp - Unit tests for the data reorganization graph -===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Loop.h"
#include "reorg/ReorgGraph.h"

#include <gtest/gtest.h>

using namespace simdize;
using namespace simdize::reorg;

namespace {

TEST(StreamOffset, Kinds) {
  StreamOffset Default;
  EXPECT_TRUE(Default.isUndef());
  EXPECT_FALSE(Default.isDefined());

  StreamOffset C = StreamOffset::constant(12);
  EXPECT_TRUE(C.isConstant());
  EXPECT_TRUE(C.isDefined());
  EXPECT_EQ(C.getConstant(), 12);
  EXPECT_EQ(C.str(), "12");
}

TEST(StreamOffset, ConstantEquality) {
  EXPECT_TRUE(StreamOffset::provablyEqual(StreamOffset::constant(4),
                                          StreamOffset::constant(4), 16));
  EXPECT_FALSE(StreamOffset::provablyEqual(StreamOffset::constant(4),
                                           StreamOffset::constant(8), 16));
}

TEST(StreamOffset, RuntimeCongruenceEquality) {
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 64, 0, false);
  ir::Array *B = L.createArray("b", ir::ElemType::Int32, 64, 0, false);

  // Same array, offsets congruent mod B = 4: the unknown base cancels.
  EXPECT_TRUE(StreamOffset::provablyEqual(StreamOffset::runtime(A, 1),
                                          StreamOffset::runtime(A, 5), 16));
  EXPECT_TRUE(StreamOffset::provablyEqual(StreamOffset::runtime(A, 2),
                                          StreamOffset::runtime(A, 2), 16));
  EXPECT_FALSE(StreamOffset::provablyEqual(StreamOffset::runtime(A, 1),
                                           StreamOffset::runtime(A, 2), 16));
  // Different arrays: never provable.
  EXPECT_FALSE(StreamOffset::provablyEqual(StreamOffset::runtime(A, 1),
                                           StreamOffset::runtime(B, 1), 16));
  // Runtime never provably equals a constant.
  EXPECT_FALSE(StreamOffset::provablyEqual(StreamOffset::runtime(A, 0),
                                           StreamOffset::constant(0), 16));
}

TEST(StreamOffset, OffsetOfAccessMatchesEq1) {
  // Eq. 1: O = addr(i=0) mod V. The paper's Figure 3 example: aligned
  // bases, b[i+1] at 4, c[i+2] at 8, a[i+3] at 12.
  ir::Loop L;
  ir::Array *B = L.createArray("b", ir::ElemType::Int32, 64, 0, true);
  EXPECT_EQ(offsetOfAccess(B, 1, 16).getConstant(), 4);
  EXPECT_EQ(offsetOfAccess(B, 2, 16).getConstant(), 8);
  EXPECT_EQ(offsetOfAccess(B, 3, 16).getConstant(), 12);
  EXPECT_EQ(offsetOfAccess(B, 4, 16).getConstant(), 0);
  // Misaligned base folds in.
  ir::Array *M = L.createArray("m", ir::ElemType::Int32, 64, 8, true);
  EXPECT_EQ(offsetOfAccess(M, 1, 16).getConstant(), 12);
  EXPECT_EQ(offsetOfAccess(M, 2, 16).getConstant(), 0);
}

TEST(StreamOffset, RuntimeWhenAlignmentUnknown) {
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 64, 4, false);
  StreamOffset O = offsetOfAccess(A, 3, 16);
  EXPECT_TRUE(O.isRuntime());
  EXPECT_EQ(O.getRuntimeArray(), A);
  EXPECT_EQ(O.getRuntimeElemOffset(), 3);
}

/// Graph fixture around the Figure 1 statement.
class GraphTest : public ::testing::Test {
protected:
  GraphTest() {
    A = L.createArray("a", ir::ElemType::Int32, 128, 0, true);
    B = L.createArray("b", ir::ElemType::Int32, 128, 0, true);
    C = L.createArray("c", ir::ElemType::Int32, 128, 0, true);
    L.addStmt(A, 3, ir::add(ir::ref(B, 1), ir::ref(C, 2)));
    L.setUpperBound(100, true);
  }

  ir::Loop L;
  ir::Array *A = nullptr;
  ir::Array *B = nullptr;
  ir::Array *C = nullptr;
};

TEST_F(GraphTest, BuildMirrorsExpressionTree) {
  Graph G = buildGraph(*L.getStmts().front(), 16);
  const Node &Root = G.root();
  EXPECT_EQ(Root.getKind(), NodeKind::Store);
  EXPECT_EQ(Root.Arr, A);
  EXPECT_EQ(Root.ElemOffset, 3);
  ASSERT_EQ(Root.Children.size(), 1u);
  const Node &Add = Root.child(0);
  EXPECT_EQ(Add.getKind(), NodeKind::Op);
  EXPECT_EQ(Add.OpKind, ir::BinOpKind::Add);
  ASSERT_EQ(Add.Children.size(), 2u);
  EXPECT_EQ(Add.child(0).getKind(), NodeKind::Load);
  EXPECT_EQ(Add.child(0).Arr, B);
  EXPECT_EQ(Add.child(1).Arr, C);
  EXPECT_EQ(G.storeOffset().getConstant(), 12);
}

TEST_F(GraphTest, OffsetsComputedBottomUp) {
  Graph G = buildGraph(*L.getStmts().front(), 16);
  computeStreamOffsets(G);
  const Node &Add = G.root().child(0);
  EXPECT_EQ(Add.child(0).Offset.getConstant(), 4);
  EXPECT_EQ(Add.child(1).Offset.getConstant(), 8);
  // The op takes the first defined child offset (Eq. 4); C.3 is violated
  // and verifyGraph must say so.
  auto Err = verifyGraph(G);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("C.3"), std::string::npos);
}

TEST_F(GraphTest, ShiftsRestoreValidity) {
  Graph G = buildGraph(*L.getStmts().front(), 16);
  Node &Add = G.root().child(0);
  wrapWithShift(Add.Children[0], StreamOffset::constant(12));
  wrapWithShift(Add.Children[1], StreamOffset::constant(12));
  computeStreamOffsets(G);
  EXPECT_EQ(verifyGraph(G), std::nullopt);
  EXPECT_EQ(countShifts(G), 2u);
  // Eq. 5: a shift's offset is its target.
  EXPECT_EQ(Add.child(0).Offset.getConstant(), 12);
  EXPECT_EQ(Add.Offset.getConstant(), 12);
}

TEST_F(GraphTest, C2ViolationDetected) {
  Graph G = buildGraph(*L.getStmts().front(), 16);
  Node &Add = G.root().child(0);
  // Align both inputs to each other but not to the store.
  wrapWithShift(Add.Children[1], StreamOffset::constant(4));
  computeStreamOffsets(G);
  auto Err = verifyGraph(G);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("C.2"), std::string::npos);
}

TEST_F(GraphTest, SplatSatisfiesAnyConstraint) {
  // ⊥ can be any defined value in (C.2) and (C.3).
  ir::Loop L2;
  ir::Array *Out = L2.createArray("o", ir::ElemType::Int32, 128, 4, true);
  L2.addStmt(Out, 1, ir::splat(42));
  L2.setUpperBound(100, true);
  Graph G = buildGraph(*L2.getStmts().front(), 16);
  computeStreamOffsets(G);
  EXPECT_TRUE(G.root().child(0).Offset.isUndef());
  EXPECT_EQ(verifyGraph(G), std::nullopt);
}

TEST_F(GraphTest, SplatMixedWithLoad) {
  ir::Loop L2;
  ir::Array *Out = L2.createArray("o", ir::ElemType::Int32, 128, 4, true);
  ir::Array *In = L2.createArray("x", ir::ElemType::Int32, 128, 4, true);
  L2.addStmt(Out, 1, ir::mul(ir::splat(3), ir::ref(In, 1)));
  L2.setUpperBound(100, true);
  Graph G = buildGraph(*L2.getStmts().front(), 16);
  computeStreamOffsets(G);
  // The op inherits the load's offset (8); it matches the store (8): valid
  // with zero shifts.
  EXPECT_EQ(G.root().child(0).Offset.getConstant(), 8);
  EXPECT_EQ(verifyGraph(G), std::nullopt);
  EXPECT_EQ(countShifts(G), 0u);
}

TEST_F(GraphTest, PrintGraphShape) {
  Graph G = buildGraph(*L.getStmts().front(), 16);
  computeStreamOffsets(G);
  EXPECT_EQ(printGraph(G),
            "vstore a[i+3]  @offset 4\n"
            "  vop +  @offset 4\n"
            "    vload b[i+1]  @offset 4\n"
            "    vload c[i+2]  @offset 8\n");
}

} // namespace
