//===- tests/IRTest.cpp - Unit tests for the scalar loop IR --------------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/IRVerifier.h"
#include "ir/Loop.h"
#include "ir/ScalarCost.h"
#include "support/Format.h"

#include <gtest/gtest.h>

using namespace simdize;
using namespace simdize::ir;

namespace {

TEST(Type, ElemSizes) {
  EXPECT_EQ(elemSize(ElemType::Int8), 1u);
  EXPECT_EQ(elemSize(ElemType::Int16), 2u);
  EXPECT_EQ(elemSize(ElemType::Int32), 4u);
}

TEST(Type, Names) {
  EXPECT_STREQ(elemTypeName(ElemType::Int8), "i8");
  EXPECT_STREQ(elemTypeName(ElemType::Int16), "i16");
  EXPECT_STREQ(elemTypeName(ElemType::Int32), "i32");
}

TEST(Array, Accessors) {
  Loop L;
  Array *A = L.createArray("a", ElemType::Int32, 64, 12, true);
  EXPECT_EQ(A->getName(), "a");
  EXPECT_EQ(A->getElemSize(), 4u);
  EXPECT_EQ(A->getNumElems(), 64);
  EXPECT_EQ(A->getSizeInBytes(), 256);
  EXPECT_EQ(A->getAlignment(), 12u);
  EXPECT_TRUE(A->isAlignmentKnown());
}

TEST(Expr, CloneAndEquals) {
  Loop L;
  Array *A = L.createArray("a", ElemType::Int32, 64, 0, true);
  Array *B = L.createArray("b", ElemType::Int32, 64, 0, true);

  auto E = add(mul(ref(A, 1), splat(3)), ref(B, 2));
  auto C = E->clone();
  EXPECT_TRUE(E->equals(*C));
  EXPECT_TRUE(C->equals(*E));

  auto Different = add(mul(ref(A, 1), splat(4)), ref(B, 2));
  EXPECT_FALSE(E->equals(*Different));

  auto DifferentArray = add(mul(ref(B, 1), splat(3)), ref(B, 2));
  EXPECT_FALSE(E->equals(*DifferentArray));

  auto DifferentOffset = add(mul(ref(A, 2), splat(3)), ref(B, 2));
  EXPECT_FALSE(E->equals(*DifferentOffset));

  auto DifferentOp = add(add(ref(A, 1), splat(3)), ref(B, 2));
  EXPECT_FALSE(E->equals(*DifferentOp));
}

TEST(Expr, WalkVisitsEveryNodePreorder) {
  Loop L;
  Array *A = L.createArray("a", ElemType::Int32, 64, 0, true);
  auto E = add(ref(A, 0), mul(splat(2), ref(A, 1)));

  std::vector<ExprKind> Kinds;
  E->walk([&Kinds](const Expr &N) { Kinds.push_back(N.getKind()); });
  ASSERT_EQ(Kinds.size(), 5u);
  EXPECT_EQ(Kinds[0], ExprKind::BinOp);   // +
  EXPECT_EQ(Kinds[1], ExprKind::ArrayRef); // a[i]
  EXPECT_EQ(Kinds[2], ExprKind::BinOp);   // *
  EXPECT_EQ(Kinds[3], ExprKind::Splat);   // 2
  EXPECT_EQ(Kinds[4], ExprKind::ArrayRef); // a[i+1]
}

TEST(Expr, CastHelpers) {
  Loop L;
  Array *A = L.createArray("a", ElemType::Int32, 64, 0, true);
  auto E = ref(A, 5);
  EXPECT_TRUE(isa<ArrayRefExpr>(*E));
  EXPECT_FALSE(isa<SplatExpr>(*E));
  EXPECT_EQ(cast<ArrayRefExpr>(*E).getOffset(), 5);
  EXPECT_EQ(dyn_cast<SplatExpr>(*E), nullptr);
  EXPECT_NE(dyn_cast<ArrayRefExpr>(*E), nullptr);
}

TEST(Expr, BinOpProperties) {
  EXPECT_TRUE(isAssociativeCommutative(BinOpKind::Add));
  EXPECT_TRUE(isAssociativeCommutative(BinOpKind::Mul));
  EXPECT_FALSE(isAssociativeCommutative(BinOpKind::Sub));
  EXPECT_STREQ(binOpSpelling(BinOpKind::Add), "+");
  EXPECT_STREQ(binOpSpelling(BinOpKind::Sub), "-");
  EXPECT_STREQ(binOpSpelling(BinOpKind::Mul), "*");
}

TEST(Printer, Figure1Loop) {
  Loop L;
  Array *A = L.createArray("a", ElemType::Int32, 128, 0, true);
  Array *B = L.createArray("b", ElemType::Int32, 128, 0, true);
  Array *C = L.createArray("c", ElemType::Int32, 128, 0, true);
  L.addStmt(A, 3, add(ref(B, 1), ref(C, 2)));
  L.setUpperBound(100, true);

  EXPECT_EQ(printLoop(L),
            "// a: i32[128] @align 0, b: i32[128] @align 0, "
            "c: i32[128] @align 0\n"
            "for (i = 0; i < 100; ++i) {\n"
            "  a[i+3] = b[i+1] + c[i+2];\n"
            "}\n");
}

TEST(Printer, RuntimeAlignmentAndBound) {
  Loop L;
  Array *A = L.createArray("a", ElemType::Int16, 64, 2, false);
  L.addStmt(A, 0, splat(7));
  L.setUpperBound(50, false);
  std::string Text = printLoop(L);
  EXPECT_NE(Text.find("@align ?"), std::string::npos);
  EXPECT_NE(Text.find("i < ub"), std::string::npos);
}

TEST(Printer, NestedParenthesesAndOffsets) {
  Loop L;
  Array *A = L.createArray("a", ElemType::Int32, 64, 0, true);
  Array *B = L.createArray("b", ElemType::Int32, 64, 0, true);
  auto E = mul(add(ref(A, 0), splat(-2)), ref(B, 3));
  EXPECT_EQ(printExpr(*E), "(a[i] + -2) * b[i+3]");
}

TEST(Verifier, AcceptsWellFormedLoop) {
  Loop L;
  Array *A = L.createArray("a", ElemType::Int32, 110, 0, true);
  Array *B = L.createArray("b", ElemType::Int32, 110, 0, true);
  L.addStmt(A, 3, ref(B, 1));
  L.setUpperBound(100, true);
  EXPECT_EQ(verifyLoop(L), std::nullopt);
}

TEST(Verifier, RejectsEmptyLoop) {
  Loop L;
  EXPECT_NE(verifyLoop(L), std::nullopt);
}

TEST(Verifier, RejectsOutOfBoundsStore) {
  Loop L;
  Array *A = L.createArray("a", ElemType::Int32, 100, 0, true);
  Array *B = L.createArray("b", ElemType::Int32, 200, 0, true);
  L.addStmt(A, 5, ref(B, 0)); // a[104] out of bounds for 100 elements.
  L.setUpperBound(100, true);
  auto Err = verifyLoop(L);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("overruns"), std::string::npos);
}

TEST(Verifier, RejectsOutOfBoundsLoad) {
  Loop L;
  Array *A = L.createArray("a", ElemType::Int32, 200, 0, true);
  Array *B = L.createArray("b", ElemType::Int32, 100, 0, true);
  L.addStmt(A, 0, ref(B, 10));
  L.setUpperBound(100, true);
  EXPECT_NE(verifyLoop(L), std::nullopt);
}

TEST(Verifier, RejectsNegativeOffset) {
  Loop L;
  Array *A = L.createArray("a", ElemType::Int32, 200, 0, true);
  Array *B = L.createArray("b", ElemType::Int32, 200, 0, true);
  L.addStmt(A, 0, ref(B, -1));
  L.setUpperBound(100, true);
  auto Err = verifyLoop(L);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("below"), std::string::npos);
}

TEST(Verifier, RejectsMixedElementSizes) {
  // Section 4.1: all memory references access data of the same length.
  Loop L;
  Array *A = L.createArray("a", ElemType::Int32, 200, 0, true);
  Array *B = L.createArray("b", ElemType::Int16, 200, 0, true);
  L.addStmt(A, 0, ref(B, 0));
  L.setUpperBound(100, true);
  auto Err = verifyLoop(L);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("uniform data length"), std::string::npos);
}

TEST(Verifier, RejectsGuardObservingStoreTarget) {
  // If-conversion reloads the store target to blend untaken lanes, so the
  // guard (or RHS) reading it would see this iteration's own store.
  Loop L;
  Array *S = L.createArray("s", ElemType::Int32, 200, 0, true);
  Array *B = L.createArray("b", ElemType::Int32, 200, 0, true);
  L.addIfStmt(S, 0, ref(B, 1), ref(S, 2), CmpKind::GT, splat(0));
  L.setUpperBound(100, true);
  auto Err = verifyLoop(L);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("also references it"), std::string::npos) << *Err;
}

TEST(Verifier, RejectsLoadedReductionAccumulator) {
  // The accumulator cell lives in a register for the whole loop; a load
  // of the array would observe a stale memory value.
  Loop L;
  Array *A = L.createArray("a", ElemType::Int32, 200, 0, true);
  Array *Acc = L.createArray("acc", ElemType::Int32, 200, 0, true);
  L.addStmt(A, 0, ref(Acc, 1));
  L.addReduceStmt(Acc, 0, BinOpKind::Add, ref(A, 2));
  L.setUpperBound(100, true);
  auto Err = verifyLoop(L);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("also loaded"), std::string::npos) << *Err;
}

TEST(Verifier, RejectsAccumulatorStoredByAssignment) {
  Loop L;
  Array *A = L.createArray("a", ElemType::Int32, 200, 0, true);
  Array *Acc = L.createArray("acc", ElemType::Int32, 200, 0, true);
  L.addStmt(Acc, 0, ref(A, 0));
  L.addReduceStmt(Acc, 1, BinOpKind::Add, ref(A, 2));
  L.setUpperBound(100, true);
  auto Err = verifyLoop(L);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("also a store target"), std::string::npos) << *Err;
}

TEST(Verifier, RejectsOutOfBoundsReductionCell) {
  Loop L;
  Array *A = L.createArray("a", ElemType::Int32, 200, 0, true);
  Array *Acc = L.createArray("acc", ElemType::Int32, 4, 0, true);
  L.addReduceStmt(Acc, 4, BinOpKind::Add, ref(A, 0));
  L.addStmt(L.createArray("o", ElemType::Int32, 200, 0, true), 0, ref(A, 1));
  L.setUpperBound(100, true);
  auto Err = verifyLoop(L);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("out of bounds"), std::string::npos) << *Err;
}

TEST(Loop, CloneLoopPreservesEveryStatementKind) {
  Loop L;
  Array *Out = L.createArray("out", ElemType::Int32, 64, 0, true);
  Array *G = L.createArray("g", ElemType::Int32, 64, 4, true);
  Array *X = L.createArray("x", ElemType::Int32, 64, 8, true);
  Array *Acc = L.createArray("acc", ElemType::Int32, 64, 0, true);
  Param *P = L.createParam("p", 9);
  L.addStmt(Out, 0, add(ref(X, 1), param(P)));
  L.addIfStmt(G, 2, ref(X, 0), ref(X, 3), CmpKind::NE, splat(4));
  L.addReduceStmt(Acc, 3, BinOpKind::Mul, ref(X, 2));
  L.setUpperBound(48, true);

  Loop C = cloneLoop(L);
  EXPECT_EQ(printLoop(C), printLoop(L));
  ASSERT_EQ(C.getStmts().size(), 3u);
  // References are remapped onto the clone's own arrays, not shared.
  for (size_t K = 0; K < C.getStmts().size(); ++K) {
    const Stmt &A = *L.getStmts()[K], &B = *C.getStmts()[K];
    ASSERT_EQ(B.getKind(), A.getKind());
    EXPECT_NE(B.getStoreArray(), A.getStoreArray());
    EXPECT_EQ(B.getStoreArray()->getName(), A.getStoreArray()->getName());
  }
  EXPECT_EQ(C.getStmts()[1]->getCmpKind(), CmpKind::NE);
  EXPECT_EQ(C.getStmts()[2]->getReduceOp(), BinOpKind::Mul);
  EXPECT_EQ(C.getStmts()[2]->getStoreOffset(), 3);
  // Guard expressions are deep copies remapped onto the clone's arrays:
  // same spelling, distinct nodes (Expr::equals compares Array identity,
  // so the printed form is the right equality here).
  EXPECT_EQ(printExpr(C.getStmts()[1]->getGuardLHS()),
            printExpr(L.getStmts()[1]->getGuardLHS()));
  EXPECT_NE(&C.getStmts()[1]->getGuardLHS(), &L.getStmts()[1]->getGuardLHS());
}

TEST(ScalarCost, PaperExampleIs12Opd) {
  // 6 loads, 5 adds, 1 store: the paper's 12-opd scalar reference.
  Loop L;
  std::unique_ptr<Expr> E;
  for (int K = 0; K < 6; ++K) {
    Array *A = L.createArray(strf("x%d", K), ElemType::Int32, 200, 0, true);
    auto R = ref(A, 0);
    E = E ? add(std::move(E), std::move(R)) : std::move(R);
  }
  Array *Out = L.createArray("out", ElemType::Int32, 200, 0, true);
  L.addStmt(Out, 0, std::move(E));
  L.setUpperBound(100, true);

  ScalarCost Cost = scalarCostOfLoop(L);
  EXPECT_EQ(Cost.Loads, 6);
  EXPECT_EQ(Cost.Arith, 5);
  EXPECT_EQ(Cost.Stores, 1);
  EXPECT_EQ(Cost.total(), 12);
  EXPECT_DOUBLE_EQ(scalarOpd(L), 12.0);
}

TEST(ScalarCost, SplatsAreFree) {
  Loop L;
  Array *A = L.createArray("a", ElemType::Int32, 200, 0, true);
  Array *B = L.createArray("b", ElemType::Int32, 200, 0, true);
  L.addStmt(A, 0, mul(splat(3), ref(B, 0)));
  L.setUpperBound(100, true);
  ScalarCost Cost = scalarCostOfLoop(L);
  EXPECT_EQ(Cost.Loads, 1);
  EXPECT_EQ(Cost.Arith, 1);
  EXPECT_EQ(Cost.Splats, 1);
  EXPECT_EQ(Cost.total(), 3); // Splat not charged.
}

TEST(ScalarCost, MultiStatementOpd) {
  Loop L;
  Array *B = L.createArray("b", ElemType::Int32, 200, 0, true);
  Array *A1 = L.createArray("a1", ElemType::Int32, 200, 0, true);
  Array *A2 = L.createArray("a2", ElemType::Int32, 200, 0, true);
  L.addStmt(A1, 0, ref(B, 0));                  // 2 ops.
  L.addStmt(A2, 0, add(ref(B, 1), ref(B, 2))); // 4 ops.
  L.setUpperBound(100, true);
  EXPECT_DOUBLE_EQ(scalarOpd(L), 3.0); // 6 ops / 2 datums.
}

} // namespace
