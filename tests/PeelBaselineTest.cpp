//===- tests/PeelBaselineTest.cpp - The prior-work peeling comparator ----===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "harness/PeelBaseline.h"
#include "ir/IRBuilder.h"
#include "ir/Loop.h"

#include <gtest/gtest.h>

using namespace simdize;
using namespace simdize::harness;

namespace {

TEST(PeelBaseline, Figure1LoopDefeatsPeeling) {
  // The paper's motivating claim: no peel count can align more than one of
  // b[i+1] (4), c[i+2] (8), a[i+3] (12).
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 0, true);
  ir::Array *B = L.createArray("b", ir::ElemType::Int32, 128, 0, true);
  ir::Array *C = L.createArray("c", ir::ElemType::Int32, 128, 0, true);
  L.addStmt(A, 3, ir::add(ir::ref(B, 1), ir::ref(C, 2)));
  L.setUpperBound(100, true);
  PeelResult R = runPeelingBaseline(L, 1);
  EXPECT_FALSE(R.Applicable);
  EXPECT_NE(R.Reason.find("different alignments"), std::string::npos);
}

TEST(PeelBaseline, CongruentLoopPeels) {
  // All references at alignment 8: peel 2 iterations and everything lands
  // on a 16-byte boundary.
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 8, true);
  ir::Array *B = L.createArray("b", ir::ElemType::Int32, 128, 4, true);
  L.addStmt(A, 0, ir::ref(B, 1)); // Both streams at offset 8.
  L.setUpperBound(100, true);
  PeelResult R = runPeelingBaseline(L, 2);
  ASSERT_TRUE(R.Applicable) << R.Reason;
  ASSERT_TRUE(R.M.Ok) << R.M.Error;
  EXPECT_EQ(R.PeeledIterations, 2);
  EXPECT_EQ(R.M.StaticShifts, 0u); // Aligned remainder needs no shifts.
  EXPECT_GT(R.M.Speedup, 1.7); // Loop control dominates a 2-op body.
}

TEST(PeelBaseline, AlreadyAlignedNeedsNoPeel) {
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 0, true);
  ir::Array *B = L.createArray("b", ir::ElemType::Int32, 128, 0, true);
  L.addStmt(A, 0, ir::ref(B, 4));
  L.setUpperBound(100, true);
  PeelResult R = runPeelingBaseline(L, 3);
  ASSERT_TRUE(R.Applicable) << R.Reason;
  EXPECT_EQ(R.PeeledIterations, 0);
}

TEST(PeelBaseline, RuntimeAlignmentNotApplicable) {
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 128, 8, false);
  ir::Array *B = L.createArray("b", ir::ElemType::Int32, 128, 8, false);
  L.addStmt(A, 0, ir::ref(B, 0));
  L.setUpperBound(100, true);
  PeelResult R = runPeelingBaseline(L, 4);
  EXPECT_FALSE(R.Applicable);
  EXPECT_NE(R.Reason.find("compile-time"), std::string::npos);
}

TEST(PeelBaseline, PeelingCostsScalarIterations) {
  // Two otherwise-identical congruent loops, one needing a 3-iteration
  // peel: the peeled one must measure strictly more operations.
  auto Make = [](unsigned Align) {
    ir::Loop L;
    ir::Array *A = L.createArray("a", ir::ElemType::Int32, 2128, Align, true);
    ir::Array *B = L.createArray("b", ir::ElemType::Int32, 2128, Align, true);
    L.addStmt(A, 0, ir::ref(B, 0));
    L.setUpperBound(2000, true);
    return L;
  };
  ir::Loop Aligned = Make(0);
  ir::Loop Misaligned = Make(4); // Peel (16-4)/4 = 3 iterations.
  PeelResult RA = runPeelingBaseline(Aligned, 5);
  PeelResult RM = runPeelingBaseline(Misaligned, 5);
  ASSERT_TRUE(RA.Applicable && RA.M.Ok);
  ASSERT_TRUE(RM.Applicable && RM.M.Ok);
  EXPECT_EQ(RM.PeeledIterations, 3);
  EXPECT_GT(RM.M.Counts.total(), RA.M.Counts.total());
}

} // namespace
