//===- tests/SupportTest.cpp - Unit tests for support utilities ----------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"
#include "support/MathExtras.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <map>

using namespace simdize;

namespace {

TEST(MathExtras, AlignDown) {
  EXPECT_EQ(alignDown(0, 16), 0);
  EXPECT_EQ(alignDown(1, 16), 0);
  EXPECT_EQ(alignDown(15, 16), 0);
  EXPECT_EQ(alignDown(16, 16), 16);
  EXPECT_EQ(alignDown(31, 16), 16);
  EXPECT_EQ(alignDown(100, 4), 100);
  EXPECT_EQ(alignDown(103, 4), 100);
}

TEST(MathExtras, AlignDownMatchesAltiVecTruncation) {
  // The paper's example: loads from 0x1000, 0x1001, 0x100E all read the
  // same 16 bytes at 0x1000.
  for (int64_t Addr : {0x1000, 0x1001, 0x100E})
    EXPECT_EQ(alignDown(Addr, 16), 0x1000);
}

TEST(MathExtras, AlignTo) {
  EXPECT_EQ(alignTo(0, 16), 0);
  EXPECT_EQ(alignTo(1, 16), 16);
  EXPECT_EQ(alignTo(16, 16), 16);
  EXPECT_EQ(alignTo(17, 16), 32);
}

TEST(MathExtras, NonNegMod) {
  EXPECT_EQ(nonNegMod(0, 16), 0);
  EXPECT_EQ(nonNegMod(5, 16), 5);
  EXPECT_EQ(nonNegMod(16, 16), 0);
  EXPECT_EQ(nonNegMod(21, 16), 5);
  // Stream offsets are nonnegative by definition; negative inputs wrap up.
  EXPECT_EQ(nonNegMod(-1, 16), 15);
  EXPECT_EQ(nonNegMod(-16, 16), 0);
  EXPECT_EQ(nonNegMod(-17, 16), 15);
}

TEST(MathExtras, CeilDiv) {
  EXPECT_EQ(ceilDiv(0, 4), 0);
  EXPECT_EQ(ceilDiv(1, 4), 1);
  EXPECT_EQ(ceilDiv(4, 4), 1);
  EXPECT_EQ(ceilDiv(5, 4), 2);
}

TEST(RNG, Deterministic) {
  RNG A(42), B(42);
  for (int K = 0; K < 100; ++K)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNG, SeedsDiffer) {
  RNG A(1), B(2);
  bool AnyDifferent = false;
  for (int K = 0; K < 10; ++K)
    AnyDifferent |= A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(RNG, UniformIntInRange) {
  RNG Rng(7);
  std::map<int64_t, int> Hist;
  for (int K = 0; K < 4000; ++K) {
    int64_t V = Rng.uniformInt(-3, 3);
    ASSERT_GE(V, -3);
    ASSERT_LE(V, 3);
    ++Hist[V];
  }
  // Every value of a 7-wide range appears in 4000 draws.
  EXPECT_EQ(Hist.size(), 7u);
}

TEST(RNG, UniformIntDegenerateRange) {
  RNG Rng(7);
  for (int K = 0; K < 10; ++K)
    EXPECT_EQ(Rng.uniformInt(5, 5), 5);
}

TEST(RNG, UniformRealInUnitInterval) {
  RNG Rng(9);
  for (int K = 0; K < 1000; ++K) {
    double V = Rng.uniformReal();
    ASSERT_GE(V, 0.0);
    ASSERT_LT(V, 1.0);
  }
}

TEST(RNG, ProbabilityExtremes) {
  RNG Rng(11);
  for (int K = 0; K < 50; ++K) {
    EXPECT_FALSE(Rng.withProbability(0.0));
    EXPECT_TRUE(Rng.withProbability(1.0));
  }
}

TEST(RNG, ProbabilityRoughlyCalibrated) {
  RNG Rng(13);
  int Hits = 0;
  for (int K = 0; K < 10000; ++K)
    Hits += Rng.withProbability(0.3) ? 1 : 0;
  EXPECT_NEAR(Hits / 10000.0, 0.3, 0.03);
}

TEST(Format, Strf) {
  EXPECT_EQ(strf("plain"), "plain");
  EXPECT_EQ(strf("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(strf("%s", ""), "");
  EXPECT_EQ(strf("%5.2f", 3.14159), " 3.14");
}

TEST(Format, StrfLongOutput) {
  std::string Long(500, 'x');
  EXPECT_EQ(strf("%s", Long.c_str()), Long);
}

TEST(Format, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcd", 2), "abcd");
  EXPECT_EQ(padRight("abcd", 2), "abcd");
}

} // namespace
