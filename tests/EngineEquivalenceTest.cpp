//===- tests/EngineEquivalenceTest.cpp - Decoded vs reference engine ------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential gate for the pre-decoded execution engine: over the
/// committed corpus and a band of synthesized loops, every applicable
/// pipeline configuration must execute identically on the byte-at-a-time
/// reference interpreter and on runDecoded — final memory, OpCounts,
/// SteadyIterations, and per-(array, chunk) load provenance all
/// bit-for-bit. The decoded engine carries every correctness check in this
/// repository, so its equivalence to the reference is itself a tier-1
/// property.
///
//===----------------------------------------------------------------------===//

#include "codegen/Simdizer.h"
#include "fuzz/CorpusIO.h"
#include "fuzz/Fuzzer.h"
#include "ir/Loop.h"
#include "opt/Pipeline.h"
#include "parser/LoopParser.h"
#include "sim/Checker.h"
#include "sim/Decoder.h"
#include "vir/VProgram.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

using namespace simdize;

namespace {

/// Simdizes + optimizes \p L under \p C; nullopt when the pipeline
/// declines the loop (validity guard, policy gate).
std::optional<vir::VProgram> buildProgram(const ir::Loop &L,
                                          const fuzz::FuzzConfig &C) {
  codegen::SimdizeOptions Opts;
  Opts.Policy = C.Simd.Policy;
  Opts.SoftwarePipelining = C.Simd.SoftwarePipelining;
  codegen::SimdizeResult R = codegen::simdize(L, Opts);
  if (!R.ok())
    return std::nullopt;
  if (C.Opt != fuzz::OptLevel::Raw) {
    opt::OptConfig Config;
    Config.PC = C.Opt == fuzz::OptLevel::PC;
    opt::runOptPipeline(*R.Program, Config);
  }
  return std::move(*R.Program);
}

/// Runs \p P on both engines over the same initial image and demands
/// identical memory, op counts, iteration counts, and chunk provenance.
void expectEnginesAgree(const ir::Loop &L, const vir::VProgram &P,
                        uint64_t Seed) {
  sim::ReferenceImage Ref(L, P.getVectorLen(), Seed);

  sim::Memory RefMem = Ref.getInitial();
  sim::ExecStats RefStats = sim::runProgram(P, Ref.getLayout(), RefMem);

  sim::DecodedProgram DP(P, Ref.getLayout());
  sim::Memory DecMem = Ref.getInitial();
  sim::ExecOptions EO;
  EO.TrackChunkLoads = true;
  sim::ExecStats DecStats = sim::runDecoded(DP, DecMem, EO);

  EXPECT_TRUE(RefMem == DecMem) << "final memory images differ";
  EXPECT_TRUE(RefStats.Counts == DecStats.Counts)
      << "op counts differ: reference "
      << "L=" << RefStats.Counts.Loads << " S=" << RefStats.Counts.Stores
      << " R=" << RefStats.Counts.Reorg << " C=" << RefStats.Counts.Compute
      << " decoded L=" << DecStats.Counts.Loads
      << " S=" << DecStats.Counts.Stores << " R=" << DecStats.Counts.Reorg
      << " C=" << DecStats.Counts.Compute;
  EXPECT_EQ(RefStats.SteadyIterations, DecStats.SteadyIterations);
  EXPECT_TRUE(RefStats.ChunkLoads == DecStats.ChunkLoads)
      << "chunk-load provenance differs";
}

/// Every applicable configuration of \p L, both engines, two seeds.
void expectEnginesAgreeOnLoop(const ir::Loop &L, uint64_t Seed) {
  for (const fuzz::FuzzConfig &C : fuzz::configsForLoop(L)) {
    SCOPED_TRACE(C.name());
    std::optional<vir::VProgram> P = buildProgram(L, C);
    if (!P)
      continue;
    expectEnginesAgree(L, *P, Seed);
    expectEnginesAgree(L, *P, Seed ^ 0x5eedULL);
  }
}

TEST(EngineEquivalence, CommittedCorpus) {
  std::vector<std::string> Files = fuzz::listCorpusFiles(SIMDIZE_CORPUS_DIR);
  ASSERT_FALSE(Files.empty());
  for (const std::string &Path : Files) {
    SCOPED_TRACE(Path);
    auto Text = fuzz::readCorpusFile(Path);
    ASSERT_TRUE(Text.has_value());
    parser::ParseResult Parsed = parser::parseLoop(*Text);
    ASSERT_TRUE(Parsed.ok()) << Parsed.Error;
    expectEnginesAgreeOnLoop(*Parsed.Loop, 2004);
  }
}

TEST(EngineEquivalence, SynthesizedLoops) {
  // The fuzzer's own input distribution: degenerate trip counts are
  // rejected before execution, so surviving configs stress prologue,
  // steady state, epilogue, predication, and runtime alignment.
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    ir::Loop L = synth::synthesizeLoop(fuzz::paramsForSeed(Seed));
    expectEnginesAgreeOnLoop(L, Seed ^ 0xc0ffee);
  }
}

TEST(EngineEquivalence, CheckerAgreesAcrossEngines) {
  // The same program checked through checkSimdization must verify on both
  // engines (this is the API the fuzzer and all tests go through).
  ir::Loop L = synth::synthesizeLoop(fuzz::paramsForSeed(3));
  for (const fuzz::FuzzConfig &C : fuzz::configsForLoop(L)) {
    SCOPED_TRACE(C.name());
    std::optional<vir::VProgram> P = buildProgram(L, C);
    if (!P)
      continue;
    sim::ReferenceImage Ref(L, P->getVectorLen(), 7);
    sim::CheckOptions Reference;
    Reference.UseReferenceEngine = true;
    sim::CheckResult RefCheck =
        sim::checkSimdization(L, *P, Ref, nullptr, Reference);
    sim::CheckResult DecCheck = sim::checkSimdization(L, *P, Ref);
    EXPECT_EQ(RefCheck.Ok, DecCheck.Ok);
    EXPECT_TRUE(RefCheck.Ok) << RefCheck.Message;
  }
}

} // namespace
