//===- tests/ServerObsTest.cpp - Server telemetry side channel -----------===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile server's observability surface: per-cache-layer
/// attribution (miss / response memo / alias / live) in counters and
/// flight records, the bounded flight-recorder ring and its `dump`
/// request kind, the stats build/flight/slow blocks, fault-triggered
/// auto-dumps, Prometheus exposition of the service, and — the
/// load-bearing invariant — that enabling every telemetry feature leaves
/// response bytes identical to a bare service.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "server/BuildInfo.h"
#include "server/FlightRecorder.h"
#include "server/Service.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>

using namespace simdize;
using namespace simdize::server;

namespace {

/// A compile request for \p Loop with a fixed config; \p Id varies the
/// payload bytes without changing what is compiled.
std::string compileReq(uint64_t Id, const std::string &Loop) {
  std::string Out;
  obs::json::Writer W(Out);
  W.beginObject()
      .field("id", Id)
      .field("kind", "compile")
      .field("loop", Loop)
      .key("config")
      .beginObject()
      .field("policy", "lazy")
      .field("sp", true)
      .endObject()
      .endObject();
  return Out;
}

const char *kLoop = "array a i32 128 align 0\narray b i32 128 align 0\n"
                    "loop 100\na[i+1] = b[i+3]\n";

/// The flight ring's newest record, parsed. Fails the test when empty.
void lastRecord(Service &S, obs::json::Value &Out) {
  std::optional<obs::json::Value> V =
      obs::json::parse(S.flightRecorder().toJson());
  ASSERT_TRUE(V.has_value());
  const obs::json::Value *Records = V->find("records");
  ASSERT_NE(Records, nullptr);
  ASSERT_TRUE(Records->isArray());
  ASSERT_FALSE(Records->Arr.empty());
  Out = Records->Arr.back();
}

std::string strField(const obs::json::Value &V, const char *Key) {
  const obs::json::Value *F = V.find(Key);
  return F && F->isString() ? F->Str : std::string("<missing>");
}

TEST(ServerObs, CacheLayerAttribution) {
  Service S;

  // First sight of the loop: a full compile, attributed to "miss".
  std::string R1 = S.handle(compileReq(1, kLoop));
  EXPECT_NE(R1.find("\"ok\":true"), std::string::npos) << R1;
  EXPECT_EQ(S.registry().counterValue("server.cache.miss_compiles"), 1);
  {
    obs::json::Value Rec;
    lastRecord(S, Rec);
    EXPECT_EQ(strField(Rec, "cache_layer"), "miss");
    EXPECT_EQ(strField(Rec, "kind"), "compile");
    EXPECT_EQ(strField(Rec, "outcome"), "ok");
    // The resolved policy and predicted shift count ride along
    // (policyName renders the paper's uppercase spellings).
    EXPECT_EQ(strField(Rec, "policy"), "LAZY");
    const obs::json::Value *Shifts = Rec.find("predicted_shifts");
    ASSERT_NE(Shifts, nullptr);
    EXPECT_GE(Shifts->Num, 0.0);
  }

  // Byte-identical resubmission: the rendered-response memo answers.
  std::string R2 = S.handle(compileReq(1, kLoop));
  EXPECT_EQ(R2, R1);
  EXPECT_EQ(S.registry().counterValue("server.cache.memo_hits"), 1);
  {
    obs::json::Value Rec;
    lastRecord(S, Rec);
    EXPECT_EQ(strField(Rec, "cache_layer"), "memo");
  }

  // Same loop bytes under a new id: the raw-text alias resolves it
  // without parsing.
  std::string R3 = S.handle(compileReq(2, kLoop));
  EXPECT_EQ(S.registry().counterValue("server.cache.alias_hits"), 1);
  {
    obs::json::Value Rec;
    lastRecord(S, Rec);
    EXPECT_EQ(strField(Rec, "cache_layer"), "alias");
  }

  // A new spelling of the same loop (comment line): alias misses, the
  // canonical print converges on the live entry.
  std::string Respelled = std::string("# same loop, new spelling\n") + kLoop;
  std::string R4 = S.handle(compileReq(3, Respelled));
  EXPECT_NE(R4.find("\"ok\":true"), std::string::npos) << R4;
  EXPECT_EQ(S.registry().counterValue("server.cache.live_hits"), 1);
  {
    obs::json::Value Rec;
    lastRecord(S, Rec);
    EXPECT_EQ(strField(Rec, "cache_layer"), "live");
  }

  // One compile total: every later layer answered from it.
  EXPECT_EQ(S.registry().counterValue("server.cache.miss_compiles"), 1);
}

TEST(ServerObs, DumpRequestRoundTrip) {
  Service S;
  S.handle(compileReq(1, kLoop));
  std::string Resp = S.handle("{\"id\":9,\"kind\":\"dump\"}");
  EXPECT_NE(Resp.find("\"ok\":true"), std::string::npos) << Resp;
  EXPECT_NE(Resp.find("\"kind\":\"dump\""), std::string::npos) << Resp;

  std::optional<obs::json::Value> V = obs::json::parse(Resp);
  ASSERT_TRUE(V.has_value()) << Resp;
  const obs::json::Value *Flight = V->find("flight");
  ASSERT_NE(Flight, nullptr) << Resp;
  const obs::json::Value *Records = Flight->find("records");
  ASSERT_NE(Records, nullptr);
  ASSERT_TRUE(Records->isArray());
  // The compile is in the ring; the dump itself is recorded only after
  // its response renders, so it is absent from its own output.
  ASSERT_EQ(Records->Arr.size(), 1u);
  EXPECT_EQ(strField(Records->Arr[0], "kind"), "compile");
}

TEST(ServerObs, FlightRingIsBoundedAndDumpsOldestFirst) {
  FlightRecorder FR(4);
  for (uint64_t K = 0; K < 10; ++K) {
    FlightRecord R;
    R.TraceId = K;
    R.Kind = "compile";
    R.Layer = CacheLayer::Miss;
    R.DurationMs = static_cast<double>(K);
    R.Outcome = "ok";
    FR.record(R);
  }
  EXPECT_EQ(FR.capacity(), 4u);
  EXPECT_EQ(FR.recorded(), 10u);
  EXPECT_EQ(FR.dropped(), 6u);

  std::optional<obs::json::Value> V = obs::json::parse(FR.toJson());
  ASSERT_TRUE(V.has_value());
  const obs::json::Value *Records = V->find("records");
  ASSERT_NE(Records, nullptr);
  ASSERT_EQ(Records->Arr.size(), 4u);
  // The survivors are the newest four, oldest first.
  for (size_t K = 0; K < 4; ++K) {
    const obs::json::Value *Seq = Records->Arr[K].find("seq");
    ASSERT_NE(Seq, nullptr);
    EXPECT_EQ(Seq->Num, static_cast<double>(6 + K));
  }
}

TEST(ServerObs, DurationBuckets) {
  EXPECT_STREQ(durationBucket(0.5), "lt1ms");
  EXPECT_STREQ(durationBucket(5.0), "lt10ms");
  EXPECT_STREQ(durationBucket(50.0), "lt100ms");
  EXPECT_STREQ(durationBucket(500.0), "lt1s");
  EXPECT_STREQ(durationBucket(5000.0), "ge1s");
}

TEST(ServerObs, StatsCarriesBuildFlightAndSlowBlocks) {
  ServiceOptions O;
  O.SlowMs = 0.0; // Everything is "slow": the log must populate.
  Service S(O);
  S.handle(compileReq(1, kLoop));
  std::string Resp = S.handle("{\"id\":2,\"kind\":\"stats\"}");

  std::optional<obs::json::Value> V = obs::json::parse(Resp);
  ASSERT_TRUE(V.has_value()) << Resp;

  const obs::json::Value *Build = V->find("build");
  ASSERT_NE(Build, nullptr) << Resp;
  EXPECT_FALSE(strField(*Build, "git").empty());
  EXPECT_FALSE(strField(*Build, "compiler").empty());
  EXPECT_FALSE(strField(*Build, "isa").empty());
  const obs::json::Value *Up = Build->find("uptime_seconds");
  ASSERT_NE(Up, nullptr);
  EXPECT_GE(Up->Num, 0.0);

  // The build block answers from one process-wide snapshot.
  EXPECT_EQ(strField(*Build, "isa"), buildInfo().BestISA);

  const obs::json::Value *Flight = V->find("flight");
  ASSERT_NE(Flight, nullptr) << Resp;
  EXPECT_EQ(Flight->find("capacity")->Num, 256.0);
  EXPECT_GE(Flight->find("recorded")->Num, 1.0);

  const obs::json::Value *Slow = V->find("slow");
  ASSERT_NE(Slow, nullptr) << Resp;
  EXPECT_EQ(Slow->find("threshold_ms")->Num, 0.0);
  EXPECT_GE(Slow->find("count")->Num, 1.0);
  const obs::json::Value *Recent = Slow->find("recent");
  ASSERT_NE(Recent, nullptr);
  ASSERT_TRUE(Recent->isArray());
  ASSERT_FALSE(Recent->Arr.empty());
  EXPECT_EQ(strField(Recent->Arr[0], "kind"), "compile");
}

TEST(ServerObs, SlowLogDisabledByDefault) {
  Service S;
  S.handle(compileReq(1, kLoop));
  EXPECT_EQ(S.registry().counterValue("server.requests.slow"), 0);
  std::string Resp = S.handle("{\"id\":2,\"kind\":\"stats\"}");
  std::optional<obs::json::Value> V = obs::json::parse(Resp);
  ASSERT_TRUE(V.has_value());
  const obs::json::Value *Slow = V->find("slow");
  ASSERT_NE(Slow, nullptr);
  EXPECT_EQ(Slow->find("count")->Num, 0.0);
}

TEST(ServerObs, WorkerFaultTriggersAutoDump) {
  std::string Path = ::testing::TempDir() + "obs_fault_flight.json";
  std::remove(Path.c_str());

  ServiceOptions O;
  O.FlightDumpFile = Path;
  Service S(O);
  S.FaultHook = [](const Request &R) {
    if (R.Kind == RequestKind::Compile)
      throw std::runtime_error("injected");
  };

  std::string Resp = S.handle(compileReq(1, kLoop));
  EXPECT_NE(Resp.find("internal_error"), std::string::npos) << Resp;
  EXPECT_EQ(S.registry().counterValue("server.flight.auto_dumps"), 1);

  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr) << "auto-dump did not write " << Path;
  char Buf[4096];
  size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  std::string Dump(Buf, N);
  EXPECT_NE(Dump.find("\"records\""), std::string::npos);
  EXPECT_NE(Dump.find("internal_error"), std::string::npos) << Dump;

  // A healthy follow-up request does not re-dump.
  S.FaultHook = nullptr;
  S.handle(compileReq(2, kLoop));
  EXPECT_EQ(S.registry().counterValue("server.flight.auto_dumps"), 1);
  std::remove(Path.c_str());
}

TEST(ServerObs, PrometheusTextExposesServiceFamilies) {
  Service S;
  S.handle(compileReq(1, kLoop));
  S.handle(compileReq(1, kLoop));
  std::string Text = S.prometheusText();

  EXPECT_NE(Text.find("# TYPE simdize_server_requests_total counter"),
            std::string::npos)
      << Text.substr(0, 400);
  EXPECT_NE(Text.find("simdize_server_requests_total 2"), std::string::npos);
  EXPECT_NE(
      Text.find("simdize_cache_events_total{cache=\"compile\",event=\"miss\"} 1"),
      std::string::npos)
      << Text;
  EXPECT_NE(Text.find("simdize_cache_entries{cache=\"compile\"} 1"),
            std::string::npos);
  EXPECT_NE(Text.find("simdize_flight_recorded_total 2"), std::string::npos);
  EXPECT_NE(Text.find("simdize_build_info{git=\""), std::string::npos);
  EXPECT_NE(Text.find("simdize_uptime_seconds "), std::string::npos);
  // The latency histogram renders with cumulative buckets.
  EXPECT_NE(Text.find("# TYPE simdize_server_compile_ms histogram"),
            std::string::npos);
  EXPECT_NE(Text.find("simdize_server_compile_ms_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
}

TEST(ServerObs, TraceHookReceivesPerRequestTrees) {
  Service S;
  size_t Calls = 0;
  uint64_t LastId = 0;
  size_t LastEvents = 0;
  std::string LastFrag;
  S.TraceHook = [&](const obs::Tracer &T) {
    ++Calls;
    LastId = T.traceId();
    LastEvents = T.eventCount();
    LastFrag = T.chromeEventsFragment();
  };

  S.handle(compileReq(1, kLoop));
  EXPECT_EQ(Calls, 1u);
  EXPECT_EQ(LastId, 1u);
  EXPECT_GE(LastEvents, 2u) << "request + pipeline spans at minimum";
  EXPECT_NE(LastFrag.find("\"request\""), std::string::npos) << LastFrag;
  EXPECT_NE(LastFrag.find("\"pipeline\""), std::string::npos) << LastFrag;
  EXPECT_NE(LastFrag.find("\"pid\":1"), std::string::npos) << LastFrag;

  // Trace ids are per-request sequence numbers.
  S.handle(compileReq(2, kLoop));
  EXPECT_EQ(Calls, 2u);
  EXPECT_EQ(LastId, 2u);
}

TEST(ServerObs, TelemetryNeverChangesResponseBytes) {
  std::string Reqs[] = {compileReq(1, kLoop), compileReq(1, kLoop),
                        std::string("{\"id\":3,\"kind\":\"check\",\"loop\":\"") +
                            "array a i32 128 align 0\\narray b i32 128 align "
                            "0\\nloop 100\\na[i+1] = b[i+3]\\n" +
                            "\",\"seed\":1,\"config\":{\"policy\":\"lazy\"}}"};

  Service Bare;
  std::string Want[3];
  for (int K = 0; K < 3; ++K)
    Want[K] = Bare.handle(Reqs[K]);

  ServiceOptions O;
  O.SlowMs = 0.0;
  O.FlightCapacity = 8;
  Service Loud(O);
  Loud.TraceHook = [](const obs::Tracer &) {};
  for (int K = 0; K < 3; ++K)
    EXPECT_EQ(Loud.handle(Reqs[K]), Want[K]) << "request " << K;
}

TEST(ServerObs, CacheLayerNames) {
  EXPECT_STREQ(cacheLayerName(CacheLayer::None), "none");
  EXPECT_STREQ(cacheLayerName(CacheLayer::ResponseMemo), "memo");
  EXPECT_STREQ(cacheLayerName(CacheLayer::Alias), "alias");
  EXPECT_STREQ(cacheLayerName(CacheLayer::Live), "live");
  EXPECT_STREQ(cacheLayerName(CacheLayer::Miss), "miss");
}

} // namespace
