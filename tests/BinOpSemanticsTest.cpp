//===- tests/BinOpSemanticsTest.cpp - Min/Max and bitwise lane semantics -===//
//
// Part of the simdize project (PLDI 2004 alignment-constrained simdization).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full operation repertoire of a multimedia unit (vec_min, vec_max,
/// vec_and, vec_or, vec_xor alongside the arithmetic): scalar-oracle
/// agreement across policies and data widths, signedness of the ordered
/// operations, reassociation over min-chains, and parsing.
///
//===----------------------------------------------------------------------===//

#include "codegen/Simdizer.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Loop.h"
#include "opt/OffsetReassoc.h"
#include "opt/Pipeline.h"
#include "lower/AltiVecEmitter.h"
#include "parser/LoopParser.h"
#include "sim/Checker.h"
#include "sim/Machine.h"
#include "sim/Memory.h"
#include "sim/ScalarInterp.h"

#include <gtest/gtest.h>

using namespace simdize;

namespace {

TEST(BinOps, Properties) {
  for (ir::BinOpKind Op :
       {ir::BinOpKind::Min, ir::BinOpKind::Max, ir::BinOpKind::And,
        ir::BinOpKind::Or, ir::BinOpKind::Xor})
    EXPECT_TRUE(ir::isAssociativeCommutative(Op));
  EXPECT_STREQ(ir::binOpMnemonic(ir::BinOpKind::Min), "min");
  EXPECT_STREQ(ir::binOpMnemonic(ir::BinOpKind::Xor), "xor");
  EXPECT_STREQ(ir::binOpSpelling(ir::BinOpKind::And), "&");
}

TEST(BinOps, PrinterFormats) {
  ir::Loop L;
  ir::Array *A = L.createArray("a", ir::ElemType::Int32, 64, 0, true);
  auto E = ir::min(ir::ref(A, 0), ir::max(ir::splat(3), ir::ref(A, 1)));
  EXPECT_EQ(ir::printExpr(*E), "min(a[i], max(3, a[i+1]))");
  auto F = ir::bitXor(ir::ref(A, 0), ir::bitAnd(ir::ref(A, 1), ir::splat(7)));
  EXPECT_EQ(ir::printExpr(*F), "a[i] ^ (a[i+1] & 7)");
}

/// End-to-end agreement with the scalar oracle for one operator.
void roundTrip(ir::BinOpKind Op, ir::ElemType Ty, uint64_t Seed) {
  ir::Loop L;
  unsigned D = ir::elemSize(Ty);
  ir::Array *Out = L.createArray("out", Ty, 160, D, true);
  ir::Array *X = L.createArray("x", Ty, 160, 2 * D % 16, true);
  ir::Array *Y = L.createArray("y", Ty, 160, (16 - D) % 16, true);
  L.addStmt(Out, 1,
            ir::binOp(Op, ir::ref(X, 0),
                      ir::binOp(Op, ir::ref(Y, 2), ir::splat(-5))));
  L.setUpperBound(130, true);

  for (auto Policy : {policies::PolicyKind::Zero, policies::PolicyKind::Lazy}) {
    codegen::SimdizeOptions Opts;
    Opts.Policy = Policy;
    Opts.SoftwarePipelining = true;
    codegen::SimdizeResult R = codegen::simdize(L, Opts);
    ASSERT_TRUE(R.ok()) << R.Error;
    opt::runOptPipeline(*R.Program, opt::OptConfig());
    sim::CheckResult Check = sim::checkSimdization(L, *R.Program, Seed);
    EXPECT_TRUE(Check.Ok) << ir::binOpMnemonic(Op) << "/"
                          << ir::elemTypeName(Ty) << ": " << Check.Message;
  }
}

TEST(BinOps, OracleAgreementAllOpsAllWidths) {
  uint64_t Seed = 1000;
  for (ir::BinOpKind Op :
       {ir::BinOpKind::Add, ir::BinOpKind::Sub, ir::BinOpKind::Mul,
        ir::BinOpKind::Min, ir::BinOpKind::Max, ir::BinOpKind::And,
        ir::BinOpKind::Or, ir::BinOpKind::Xor})
    for (ir::ElemType Ty :
         {ir::ElemType::Int8, ir::ElemType::Int16, ir::ElemType::Int32})
      roundTrip(Op, Ty, ++Seed);
}

TEST(BinOps, MinComparesLanesSigned) {
  // 0x80 as an i8 lane is -128: min(0x80, 1) must pick 0x80.
  ir::Loop L;
  ir::Array *Out = L.createArray("out", ir::ElemType::Int8, 64, 0, true);
  ir::Array *X = L.createArray("x", ir::ElemType::Int8, 64, 0, true);
  L.addStmt(Out, 0, ir::min(ir::ref(X, 0), ir::splat(1)));
  L.setUpperBound(60, true);

  codegen::SimdizeResult R = codegen::simdize(L, codegen::SimdizeOptions());
  ASSERT_TRUE(R.ok()) << R.Error;

  sim::MemoryLayout Layout(L, 16);
  sim::Memory Mem(Layout.getTotalSize());
  // x[i] = 0x80 everywhere.
  for (int64_t K = 0; K < 64; ++K)
    Mem.writeElem(Layout.baseOf(L.getArrays()[1].get()) + K, 1, -128);
  sim::runProgram(*R.Program, Layout, Mem);
  for (int64_t K = 0; K < 60; ++K)
    EXPECT_EQ(Mem.readElem(Layout.baseOf(L.getArrays()[0].get()) + K, 1),
              -128)
        << "element " << K;
}

TEST(BinOps, TruncationBeforeMinMatters) {
  // i16 lanes: 30000 + 30000 wraps to -5536 in the vector unit; the
  // scalar oracle must agree, so min(x + x, 0) picks the wrapped value.
  ir::Loop L;
  ir::Array *Out = L.createArray("out", ir::ElemType::Int16, 64, 2, true);
  ir::Array *X = L.createArray("x", ir::ElemType::Int16, 64, 0, true);
  L.addStmt(Out, 0, ir::min(ir::add(ir::ref(X, 0), ir::ref(X, 1)),
                            ir::splat(0)));
  L.setUpperBound(30, true);

  codegen::SimdizeResult R = codegen::simdize(L, codegen::SimdizeOptions());
  ASSERT_TRUE(R.ok()) << R.Error;

  sim::MemoryLayout Layout(L, 16);
  sim::Memory Expected(Layout.getTotalSize());
  for (int64_t K = 0; K < 64; ++K)
    Expected.writeElem(Layout.baseOf(L.getArrays()[1].get()) + K * 2, 2,
                       30000);
  sim::Memory Actual = Expected;
  sim::runScalarLoop(L, Layout, Expected);
  sim::runProgram(*R.Program, Layout, Actual);
  EXPECT_TRUE(Expected == Actual);
  // And the wrapped sum is indeed what lands in memory.
  EXPECT_EQ(Expected.readElem(Layout.baseOf(L.getArrays()[0].get()), 2),
            static_cast<int16_t>(60000));
}

TEST(BinOps, ReassociationGroupsMinChains) {
  ir::Loop L;
  ir::Array *Out = L.createArray("out", ir::ElemType::Int32, 128, 0, true);
  ir::Array *B = L.createArray("b", ir::ElemType::Int32, 128, 4, true);
  ir::Array *C = L.createArray("c", ir::ElemType::Int32, 128, 8, true);
  ir::Array *D = L.createArray("d", ir::ElemType::Int32, 128, 4, true);
  L.addStmt(Out, 0,
            ir::min(ir::min(ir::ref(B, 0), ir::ref(C, 0)), ir::ref(D, 0)));
  L.setUpperBound(100, true);
  EXPECT_EQ(opt::runOffsetReassociation(L, 16), 1u);
  EXPECT_EQ(ir::printExpr(L.getStmts().front()->getRHS()),
            "min(min(b[i], d[i]), c[i])");
}

TEST(BinOps, ParserHandlesCallsAndBitwise) {
  parser::ParseResult R =
      parser::parseLoop("array o i32 64 align 0\n"
                        "array x i32 64 align 4\n"
                        "array y i32 64 align 8\n"
                        "loop 40\n"
                        "o[i] = min(x[i], y[i+1]) ^ x[i+2] & 255\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  // & binds tighter than ^.
  EXPECT_EQ(ir::printStmt(*R.Loop->getStmts().front()),
            "o[i] = min(x[i], y[i+1]) ^ (x[i+2] & 255);");
}

TEST(BinOps, EmittedKernelsStillCompileConceptually) {
  // Structural check that the emitter names the right shim calls; the
  // compile-and-run coverage lives in LowerToCTest.
  ir::Loop L;
  ir::Array *Out = L.createArray("out", ir::ElemType::Int16, 64, 2, true);
  ir::Array *X = L.createArray("x", ir::ElemType::Int16, 64, 0, true);
  L.addStmt(Out, 0, ir::max(ir::ref(X, 0), ir::splat(0)));
  L.setUpperBound(40, true);
  codegen::SimdizeResult R = codegen::simdize(L, codegen::SimdizeOptions());
  ASSERT_TRUE(R.ok()) << R.Error;
  lower::LowerResult Lowered =
      lower::emitAltiVecKernel(*R.Program, L, "kern");
  ASSERT_TRUE(Lowered.ok()) << Lowered.Error;
  const std::string &Src = Lowered.Code;
  EXPECT_NE(Src.find("sv_max_i16("), std::string::npos);
}

} // namespace
